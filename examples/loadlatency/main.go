// Loadlatency: characterise the two router substrates open-loop, the
// way standalone NoC simulators do — average packet latency against
// offered load under uniform-random traffic. The bufferless network's
// curve stays close to the buffered one until its (earlier) saturation
// point, where deflections start consuming the bandwidth; this is the
// substrate-level view behind the paper's Fig. 2(a).
//
//	go run ./examples/loadlatency
package main

import (
	"fmt"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/topology"
	"nocsim/internal/traffic"
)

func main() {
	rates := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45}
	pat := func(n noc.Network) traffic.Pattern {
		return traffic.Uniform{Nodes: n.Topology().Nodes()}
	}
	mesh := func() *topology.Topology { return topology.NewSquare(topology.Mesh, 8) }

	blessPts := traffic.Sweep(
		func() noc.Network { return bless.New(bless.Config{Topology: mesh()}) },
		pat, rates, 1, 5000, 15000, 42)
	bufPts := traffic.Sweep(
		func() noc.Network { return buffered.New(buffered.Config{Topology: mesh()}) },
		pat, rates, 1, 5000, 15000, 42)

	fmt.Println("8x8 mesh, uniform random, 1-flit packets")
	fmt.Printf("%8s %16s %16s\n", "load", "BLESS lat (cyc)", "Buffered lat (cyc)")
	for i := range rates {
		fmt.Printf("%8.2f %16.1f %16.1f\n", rates[i], blessPts[i].Latency, bufPts[i].Latency)
	}
	fmt.Printf("\nsaturation (latency > 60 cycles): BLESS %.2f, Buffered %.2f flits/node/cycle\n",
		traffic.Saturation(blessPts, 60), traffic.Saturation(bufPts, 60))
	fmt.Println("buffers buy headroom near saturation; below it the bufferless")
	fmt.Println("network is just as fast at a fraction of the area and power.")
}
