// Throttling: the paper's Fig. 5 scenario. Eight copies each of mcf
// (memory-intensive, IPF ~1) and gromacs (compute-bound, IPF ~19) share
// a 4x4 mesh. Statically throttling each application in turn by 90%
// shows why congestion control must be application-aware: throttling
// the wrong program hurts everyone, throttling the right one helps
// everyone — including, almost for free, the throttled program itself.
//
//	go run ./examples/throttling
package main

import (
	"fmt"

	"nocsim/internal/app"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

const cycles = 200_000

func main() {
	mcf := app.MustByName("mcf")
	gro := app.MustByName("gromacs")
	w := workload.Checkerboard(mcf, gro, 4, 4)

	sc := runner.DefaultScale()
	sc.Cycles = cycles
	sc.Epoch = cycles / 10

	throttled := func(name string) runner.Option {
		rates := make([]float64, len(w.Apps))
		for i, p := range w.Apps {
			if p.Name == name {
				rates[i] = 0.9
			}
		}
		return runner.WithStaticRates(rates)
	}
	plan := runner.NewPlan(sc)
	plan.Add("baseline", runner.Baseline(w, 4, 4, sc, runner.WithSeed(5)), cycles)
	plan.Add("throttle-gromacs",
		runner.Baseline(w, 4, 4, sc, runner.WithSeed(5), throttled("gromacs")), cycles)
	plan.Add("throttle-mcf",
		runner.Baseline(w, 4, 4, sc, runner.WithSeed(5), throttled("mcf")), cycles)
	ms := plan.Execute()

	fmt.Println("8x mcf + 8x gromacs on a 4x4 bufferless mesh")
	fmt.Printf("%-22s %8s %8s %8s\n", "config", "overall", "mcf", "gromacs")
	show("baseline", ms[0], w)
	show("throttle gromacs 90%", ms[1], w)
	show("throttle mcf 90%", ms[2], w)

	fmt.Println("\nthe paper's point: instruction throughput does not tell you whom")
	fmt.Println("to throttle; instructions-per-flit (IPF) does. mcf produces ~1 flit")
	fmt.Println("per instruction, so blocking its injections barely slows it while")
	fmt.Println("freeing the network for everyone else.")
}

func show(name string, m sim.Metrics, w workload.Workload) {
	var mcfIPC, groIPC float64
	for i, p := range w.Apps {
		if p.Name == "mcf" {
			mcfIPC += m.IPC[i] / 8
		} else {
			groIPC += m.IPC[i] / 8
		}
	}
	fmt.Printf("%-22s %8.3f %8.3f %8.3f\n", name, m.SystemThroughput/16, mcfIPC, groIPC)
}
