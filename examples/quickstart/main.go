// Quickstart: assemble a 4x4 bufferless CMP running a mixed workload,
// turn the paper's congestion controller on, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"nocsim/internal/core"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func main() {
	const cycles = 200_000

	// A 16-core workload mixing heavy, medium and light applications,
	// like the paper's HML category.
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 16, 7)
	fmt.Println("workload:", w.Names())

	params := core.DefaultParams()
	params.Epoch = cycles / 10

	run := func(ctl sim.ControllerKind) sim.Metrics {
		s := sim.New(sim.Config{
			Apps:       w.Apps,
			Controller: ctl,
			Params:     params,
			Seed:       1,
		})
		s.Run(cycles)
		return s.Metrics()
	}

	base := run(sim.NoControl)
	fmt.Printf("\nbaseline BLESS:      throughput %.2f IPC, utilization %.2f, starvation %.2f, latency %.1f cyc\n",
		base.SystemThroughput, base.NetUtilization, base.StarvationRate, base.AvgNetLatency)

	ctl := run(sim.Central)
	fmt.Printf("BLESS-Throttling:    throughput %.2f IPC, utilization %.2f, starvation %.2f, latency %.1f cyc\n",
		ctl.SystemThroughput, ctl.NetUtilization, ctl.StarvationRate, ctl.AvgNetLatency)

	fmt.Printf("\nsystem throughput change: %+.1f%%\n",
		100*(ctl.SystemThroughput-base.SystemThroughput)/base.SystemThroughput)
}
