// Quickstart: assemble a 4x4 bufferless CMP running a mixed workload,
// turn the paper's congestion controller on, and compare. The two
// simulations are declared on one run plan, so they execute
// concurrently when more than one CPU is available.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"nocsim/internal/runner"
	"nocsim/internal/workload"
)

func main() {
	const cycles = 200_000

	// A 16-core workload mixing heavy, medium and light applications,
	// like the paper's HML category.
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 16, 7)
	fmt.Println("workload:", w.Names())

	sc := runner.DefaultScale()
	sc.Cycles = cycles
	sc.Epoch = cycles / 10

	plan := runner.NewPlan(sc)
	plan.Add("baseline", runner.Baseline(w, 4, 4, sc, runner.WithSeed(1)), cycles)
	plan.Add("throttled", runner.Controlled(w, 4, 4, sc, runner.WithSeed(1)), cycles)
	ms := plan.Execute()
	base, ctl := ms[0], ms[1]

	fmt.Printf("\nbaseline BLESS:      throughput %.2f IPC, utilization %.2f, starvation %.2f, latency %.1f cyc\n",
		base.SystemThroughput, base.NetUtilization, base.StarvationRate, base.AvgNetLatency)
	fmt.Printf("BLESS-Throttling:    throughput %.2f IPC, utilization %.2f, starvation %.2f, latency %.1f cyc\n",
		ctl.SystemThroughput, ctl.NetUtilization, ctl.StarvationRate, ctl.AvgNetLatency)

	fmt.Printf("\nsystem throughput change: %+.1f%%\n",
		100*(ctl.SystemThroughput-base.SystemThroughput)/base.SystemThroughput)
}
