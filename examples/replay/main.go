// Replay: the PinPoints-style capture/replay methodology of §6.1 end to
// end — record a representative slice of an application's instruction
// stream to a compact trace file, then drive a core from the replayed
// file and confirm it behaves identically to the live generator.
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"nocsim/internal/app"
	"nocsim/internal/cpu"
	"nocsim/internal/trace"
)

// hitBackend services every access as an L1 hit; good enough to compare
// instruction streams.
type hitBackend struct{ accesses int64 }

func (b *hitBackend) Access(int, uint64, bool) (bool, uint64) {
	b.accesses++
	return true, 0
}

func main() {
	const slice = 200_000
	profile := app.MustByName("gromacs")

	// 1. Capture a representative slice.
	gen := trace.New(trace.Config{Profile: profile, Seed: 7})
	var file bytes.Buffer
	refs, err := trace.Record(&file, profile.Name, gen, slice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d instructions of %s: %d memory refs, %.1f KiB on disk\n",
		slice, profile.Name, refs, float64(file.Len())/1024)

	// 2. Replay it through the core model.
	replay, err := trace.ReadTrace(bytes.NewReader(file.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	replayBackend := &hitBackend{}
	replayCore := cpu.New(0, cpu.Config{}, replay, replayBackend)

	// 3. Run the live generator (same seed) side by side.
	liveBackend := &hitBackend{}
	liveCore := cpu.New(0, cpu.Config{}, trace.New(trace.Config{Profile: profile, Seed: 7}), liveBackend)

	const cycles = 60_000
	for cyc := int64(0); cyc < cycles; cyc++ {
		replayCore.Step(cyc)
		liveCore.Step(cyc)
	}
	fmt.Printf("replayed core: %d retired, %d memory accesses\n", replayCore.Retired(), replayBackend.accesses)
	fmt.Printf("live core:     %d retired, %d memory accesses\n", liveCore.Retired(), liveBackend.accesses)
	if replayCore.Retired() == liveCore.Retired() && replayBackend.accesses == liveBackend.accesses {
		fmt.Println("\nreplay is cycle-exact with the live generator — simulations are")
		fmt.Println("reproducible from trace files alone, as with the paper's PinPoints slices.")
	} else {
		fmt.Println("\nWARNING: replay diverged from the live generator")
	}
}
