// Scaling: grows the CMP from 16 to 1024 cores under a high-intensity
// workload with exponential data locality (lambda = 1, §3.2) and shows
// how congestion erodes per-node throughput in the baseline bufferless
// mesh — and how the paper's congestion controller restores near-linear
// scaling (Figs. 3 and 13). All eight simulations are declared up front
// on one run plan; the executor runs them across the available CPUs.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func main() {
	const cycles = 100_000
	sc := runner.DefaultScale()
	sc.Cycles = cycles
	sc.Epoch = cycles / 10

	cat, _ := workload.CategoryByName("H")
	sizes := []int{4, 8, 16, 32}
	plan := runner.NewPlan(sc)
	for _, k := range sizes {
		nodes := k * k
		w := workload.Generate(cat, nodes, uint64(nodes))
		opts := []runner.Option{
			runner.WithMapping(sim.ExpMap, 1),
			runner.WithSeed(uint64(nodes)),
		}
		plan.Add(fmt.Sprintf("%d/base", nodes), runner.Baseline(w, k, k, sc, opts...), cycles)
		plan.Add(fmt.Sprintf("%d/ctl", nodes), runner.Controlled(w, k, k, sc, opts...), cycles)
	}
	ms := plan.Execute()

	fmt.Printf("%8s %14s %14s %12s %12s\n",
		"cores", "BLESS IPC/node", "+CC IPC/node", "BLESS starv", "+CC starv")
	for i, k := range sizes {
		nodes := k * k
		base, ctl := ms[2*i], ms[2*i+1]
		fmt.Printf("%8d %14.3f %14.3f %12.3f %12.3f\n",
			nodes, base.ThroughputPerNode, ctl.ThroughputPerNode,
			base.StarvationRate, ctl.StarvationRate)
	}
	fmt.Println("\neven with 1-hop average locality, congestion compounds with size;")
	fmt.Println("source throttling holds per-node throughput roughly flat (Fig. 13).")
}
