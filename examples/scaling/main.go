// Scaling: grows the CMP from 16 to 1024 cores under a high-intensity
// workload with exponential data locality (lambda = 1, §3.2) and shows
// how congestion erodes per-node throughput in the baseline bufferless
// mesh — and how the paper's congestion controller restores near-linear
// scaling (Figs. 3 and 13).
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"runtime"

	"nocsim/internal/core"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func main() {
	const cycles = 100_000
	params := core.DefaultParams()
	params.Epoch = cycles / 10

	cat, _ := workload.CategoryByName("H")
	fmt.Printf("%8s %14s %14s %12s %12s\n",
		"cores", "BLESS IPC/node", "+CC IPC/node", "BLESS starv", "+CC starv")
	for _, k := range []int{4, 8, 16, 32} {
		nodes := k * k
		w := workload.Generate(cat, nodes, uint64(nodes))
		run := func(ctl sim.ControllerKind) sim.Metrics {
			s := sim.New(sim.Config{
				Width: k, Height: k,
				Apps:       w.Apps,
				Controller: ctl,
				Mapping:    sim.ExpMap, MeanHops: 1,
				Params:  params,
				Workers: runtime.NumCPU(),
				Seed:    uint64(nodes),
			})
			s.Run(cycles)
			return s.Metrics()
		}
		base := run(sim.NoControl)
		ctl := run(sim.Central)
		fmt.Printf("%8d %14.3f %14.3f %12.3f %12.3f\n",
			nodes, base.ThroughputPerNode, ctl.ThroughputPerNode,
			base.StarvationRate, ctl.StarvationRate)
	}
	fmt.Println("\neven with 1-hop average locality, congestion compounds with size;")
	fmt.Println("source throttling holds per-node throughput roughly flat (Fig. 13).")
}
