// Distributed: compares the paper's centrally-coordinated controller
// against the §6.6 "TCP-like" distributed mechanism (congestion bits on
// passing packets, AIMD self-throttling at receivers) on a congested
// workload. On a chip, where the topology is static and coordination is
// cheap (2n control packets per 100k cycles), central wins because it
// knows exactly whom to throttle.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func main() {
	const cycles = 250_000
	sc := runner.DefaultScale()
	sc.Cycles = cycles
	sc.Epoch = cycles / 10

	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, 16, 99)
	fmt.Println("congested 4x4 workload:", w.Names())
	fmt.Println()

	plan := runner.NewPlan(sc)
	plan.Add("no-control", runner.Baseline(w, 4, 4, sc, runner.WithSeed(99)), cycles)
	plan.Add("distributed",
		runner.Baseline(w, 4, 4, sc, runner.WithSeed(99), runner.WithController(sim.Distributed)), cycles)
	plan.Add("central", runner.Controlled(w, 4, 4, sc, runner.WithSeed(99)), cycles)
	ms := plan.Execute()
	base, dist, cent := ms[0], ms[1], ms[2]

	show := func(name string, m sim.Metrics) {
		fmt.Printf("%-18s throughput %7.3f  starvation %.3f  utilization %.3f\n",
			name, m.SystemThroughput, m.StarvationRate, m.NetUtilization)
	}
	show("no control", base)
	show("distributed (TCP-like)", dist)
	show("central (paper)", cent)

	g := func(m sim.Metrics) float64 {
		return 100 * (m.SystemThroughput - base.SystemThroughput) / base.SystemThroughput
	}
	fmt.Printf("\ngain over baseline: distributed %+.1f%%, central %+.1f%%\n", g(dist), g(cent))
	fmt.Println("the distributed scheme throttles whoever sees a marked packet;")
	fmt.Println("the central scheme throttles the low-IPF applications that cause congestion.")
}
