// Command nocvet runs the repository's determinism and
// simulator-invariant static analysis over package patterns and exits
// nonzero on findings. It is the compile-time complement to the
// runtime parallelism-invariance regression test: every property that
// keeps a run byte-identical at any -parallel level is encoded as a
// rule in internal/analysis.
//
// Usage:
//
//	go run ./cmd/nocvet ./...                    # whole module, human-readable
//	go run ./cmd/nocvet -json ./...              # machine-readable findings
//	go run ./cmd/nocvet -list                    # list the rule set
//	go run ./cmd/nocvet -rules hotalloc ./...    # run a rule subset
//	go run ./cmd/nocvet -explain handleleak      # long-form rule documentation
//
// Exit status: 0 clean, 1 findings, 2 tool error (bad pattern, unknown
// rule, unparseable or untypeable source).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"nocsim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nocvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array")
		listRules = fs.Bool("list", false, "list rules and exit")
		rulesCSV  = fs.String("rules", "", "comma-separated rule subset to run (default: all)")
		explain   = fs.String("explain", "", "print a rule's long-form documentation and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listRules {
		for _, a := range analysis.Rules() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *explain != "" {
		a := analysis.ByName(*explain)
		if a == nil {
			fmt.Fprintf(stderr, "nocvet: unknown rule %q; run -list for the rule set\n", *explain)
			return 2
		}
		fmt.Fprintf(stdout, "%s — %s\n", a.Name, a.Doc)
		if a.Explain != "" {
			fmt.Fprintf(stdout, "\n%s\n", a.Explain)
		}
		return 0
	}

	rules, err := analysis.Select(*rulesCSV)
	if err != nil {
		fmt.Fprintln(stderr, "nocvet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "nocvet:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "nocvet:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		pass, typeErrs, err := loader.LoadDir(dir, loader.ImportPath(dir), true)
		if err != nil {
			fmt.Fprintln(stderr, "nocvet:", err)
			return 2
		}
		if len(typeErrs) > 0 {
			fmt.Fprintf(stderr, "nocvet: type-checking %s failed:\n", loader.ImportPath(dir))
			for _, e := range typeErrs {
				fmt.Fprintf(stderr, "\t%v\n", e)
			}
			return 2
		}
		diags = append(diags, analysis.Run(pass, rules)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "nocvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "nocvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
