// Command nocvet runs the repository's determinism and
// simulator-invariant static analysis over package patterns and exits
// nonzero on findings. It is the compile-time complement to the
// runtime parallelism-invariance regression test: every property that
// keeps a run byte-identical at any -parallel level is encoded as a
// rule in internal/analysis.
//
// Usage:
//
//	go run ./cmd/nocvet ./...          # whole module, human-readable
//	go run ./cmd/nocvet -json ./...    # machine-readable findings
//	go run ./cmd/nocvet -rules         # list the rule set
//
// Exit status: 0 clean, 1 findings, 2 tool error (bad pattern,
// unparseable or untypeable source).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nocsim/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		listRules = flag.Bool("rules", false, "list rules and exit")
	)
	flag.Parse()

	if *listRules {
		for _, a := range analysis.Rules() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		pass, typeErrs, err := loader.LoadDir(dir, loader.ImportPath(dir), true)
		if err != nil {
			fatal(err)
		}
		if len(typeErrs) > 0 {
			fmt.Fprintf(os.Stderr, "nocvet: type-checking %s failed:\n", loader.ImportPath(dir))
			for _, e := range typeErrs {
				fmt.Fprintf(os.Stderr, "\t%v\n", e)
			}
			os.Exit(2)
		}
		diags = append(diags, analysis.Run(pass, analysis.Rules())...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nocvet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocvet:", err)
	os.Exit(2)
}
