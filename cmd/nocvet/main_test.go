package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUnknownRuleExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "bogus", "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), `nocvet: unknown rule "bogus"`) {
		t.Errorf("stderr = %q, want it to name the bad rule with the nocvet: prefix", errb.String())
	}
}

func TestListNamesEveryRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	for _, name := range []string{
		"wallclock", "globalrand", "maprange", "rawconfig", "goroutine",
		"panicmsg", "hotalloc", "atomicmix", "handleleak", "shardwrite", "staleallow",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing rule %s", name)
		}
	}
}

func TestExplainPrintsRuleDoc(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-explain", "handleleak"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "branch-sensitive") {
		t.Errorf("-explain handleleak output = %q, want the long-form doc", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-explain", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("-explain bogus: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `nocvet: unknown rule "bogus"`) {
		t.Errorf("stderr = %q, want the unknown-rule error", errb.String())
	}
}

func TestRuleSubsetRunsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "wallclock,goroutine", "./internal/par"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
}
