// Command tracegen records and inspects instruction trace files — the
// PinPoints-style capture/replay methodology of §6.1: generate a
// representative slice of an application's instruction stream once,
// then replay it deterministically in any number of simulations.
//
//	tracegen -app mcf -n 1000000 -o mcf.trace
//	tracegen -dump mcf.trace
//	tracegen -app gromacs -n 500000 -o /dev/null -verify
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"nocsim/internal/app"
	"nocsim/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "", "application to record (Table 1 name)")
		n       = flag.Int64("n", 1_000_000, "instructions to record")
		out     = flag.String("o", "", "output trace file")
		seed    = flag.Uint64("seed", 1, "generator seed")
		dump    = flag.String("dump", "", "print a trace file's summary and exit")
		verify  = flag.Bool("verify", false, "after recording, replay and compare against the generator")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpTrace(*dump); err != nil {
			fail(err)
		}
		return
	}
	if *appName == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -app and -o (or -dump <file>)")
		os.Exit(2)
	}
	profile, ok := app.ByName(*appName)
	if !ok {
		fail(fmt.Errorf("unknown application %q", *appName))
	}

	gen := trace.New(trace.Config{Profile: profile, Seed: *seed})
	var buf bytes.Buffer
	mems, err := trace.Record(&buf, profile.Name, gen, *n)
	if err != nil {
		fail(err)
	}
	if *verify {
		ref := trace.New(trace.Config{Profile: profile, Seed: *seed})
		rp, err := trace.ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			fail(fmt.Errorf("verify: %w", err))
		}
		for i := int64(0); i < *n; i++ {
			if rp.Next() != ref.Next() {
				fail(fmt.Errorf("verify: replay diverged at instruction %d", i))
			}
		}
		fmt.Println("verify: replay matches the generator")
	}
	size := buf.Len()
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if _, err := io.Copy(f, &buf); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	ipf := float64(*n) / (float64(mems) * 4) // 4 flits/miss at default packetisation
	fmt.Printf("recorded %d instructions of %s: %d memory refs, %.1f KiB (approx IPF %.2f if all refs missed)\n",
		*n, profile.Name, mems, float64(size)/1024, ipf)
}

func dumpTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}
	fmt.Printf("application:  %s\n", rp.Name())
	fmt.Printf("instructions: %d\n", rp.Len())
	fmt.Printf("memory refs:  %d (%.2f%% of instructions)\n",
		rp.MemRefs(), 100*float64(rp.MemRefs())/float64(rp.Len()))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
