// Command nocd is the simulation-as-a-service daemon: it accepts run
// plans over HTTP (POST /v1/runs) and parameter grids (POST
// /v1/sweeps), executes them on a bounded job queue through the
// runner, and answers repeat submissions from a content-addressed
// result cache. With -peers it becomes a fleet coordinator, fanning
// jobs out to peer daemons with work-stealing, retry-on-peer-death and
// peer-aware caching. See internal/serve for the API and the
// determinism argument that makes the cache sound, and internal/fleet
// for the distribution layer.
//
// All goroutines live inside internal/serve and internal/fleet (the
// sanctioned service layers); this entry point only parses flags,
// wires signals, and blocks.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nocsim/internal/fleet"
	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "nocd-cache", "content-addressed result cache directory")
	queueCap := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	jobs := flag.Int("jobs", 1, "concurrent jobs (with -peers, 0 or 1 auto-sizes to the fleet)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job simulation budget, 0 disables")
	sampleInterval := flag.Int64("sample-interval", 1000, "interval-sampler period for streamed run events")
	snapDir := flag.String("snapdir", "", "checkpoint store directory (enables warm starts and run extension)")
	snapCap := flag.Int64("snapcap", 0, "checkpoint store byte cap, oldest evicted first (0 = unlimited)")
	workers := flag.Int("workers", runtime.NumCPU(), "intra-sim worker shards per large fabric")
	parallel := flag.Int("parallel", 0, "concurrent simulations per job (0 = GOMAXPROCS)")
	peers := flag.String("peers", "", "comma-separated peer daemon URLs; enables coordinator mode")
	peerWindow := flag.Int("peer-window", 2, "jobs in flight per peer")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "dead-peer health probe period")
	stealAfter := flag.Duration("steal-after", 30*time.Second, "duplicate-steal a job in flight this long (<0 disables)")
	flag.Parse()

	sc := runner.DefaultScale()
	sc.Workers = *workers
	sc.Parallel = *parallel

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *jobs <= 1 {
		// A coordinator's workers mostly block on remote jobs; size the
		// queue worker pool to keep every peer window full plus slack
		// for cache-hit and local-fallback jobs.
		*jobs = len(peerList)**peerWindow + 2
	}

	srv, err := serve.New(serve.Config{
		Scale:          sc,
		CacheDir:       *cacheDir,
		QueueCap:       *queueCap,
		Jobs:           *jobs,
		JobTimeout:     *jobTimeout,
		SampleInterval: *sampleInterval,
		SnapDir:        *snapDir,
		SnapCap:        *snapCap,
		Log:            os.Stderr,
	})
	if err != nil {
		fail(err)
	}
	fl, err := fleet.Enable(srv, fleet.Config{
		Peers:         peerList,
		Window:        *peerWindow,
		ProbeInterval: *probeInterval,
		StealAfter:    *stealAfter,
		Log:           os.Stderr,
	})
	if err != nil {
		fail(err)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	err = srv.ListenAndServe(*addr, stop)
	fl.Close()
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nocd:", err)
	os.Exit(1)
}
