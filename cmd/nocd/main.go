// Command nocd is the simulation-as-a-service daemon: it accepts run
// plans over HTTP (POST /v1/runs), executes them on a bounded job queue
// through the runner, and answers repeat submissions from a
// content-addressed result cache. See internal/serve for the API and
// the determinism argument that makes the cache sound.
//
// All goroutines live inside internal/serve (the sanctioned service
// layer); this entry point only parses flags, wires signals, and
// blocks.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "nocd-cache", "content-addressed result cache directory")
	queueCap := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	jobs := flag.Int("jobs", 1, "concurrent jobs")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job simulation budget, 0 disables")
	sampleInterval := flag.Int64("sample-interval", 1000, "interval-sampler period for streamed run events")
	snapDir := flag.String("snapdir", "", "checkpoint store directory (enables warm starts and run extension)")
	snapCap := flag.Int64("snapcap", 0, "checkpoint store byte cap, oldest evicted first (0 = unlimited)")
	workers := flag.Int("workers", runtime.NumCPU(), "intra-sim worker shards per large fabric")
	parallel := flag.Int("parallel", 0, "concurrent simulations per job (0 = GOMAXPROCS)")
	flag.Parse()

	sc := runner.DefaultScale()
	sc.Workers = *workers
	sc.Parallel = *parallel

	srv, err := serve.New(serve.Config{
		Scale:          sc,
		CacheDir:       *cacheDir,
		QueueCap:       *queueCap,
		Jobs:           *jobs,
		JobTimeout:     *jobTimeout,
		SampleInterval: *sampleInterval,
		SnapDir:        *snapDir,
		SnapCap:        *snapCap,
		Log:            os.Stderr,
	})
	if err != nil {
		fail(err)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := srv.ListenAndServe(*addr, stop); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nocd:", err)
	os.Exit(1)
}
