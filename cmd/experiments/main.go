// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig5
//	experiments -run fig2a,fig2b,fig2c
//	experiments -all
//	experiments -all -scale paper        # the paper's full parameters
//	experiments -run fig13 -cycles 500000 -maxnodes 4096
//
// Output is aligned text: one block per figure/table with the same
// series/rows the paper plots, plus notes quoting the paper's numbers
// for comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nocsim/internal/exp"
	"nocsim/internal/fleet"
	"nocsim/internal/obs"
	"nocsim/internal/plot"
	"nocsim/internal/runner"
	"nocsim/internal/snap"
)

// runDriver executes one experiment driver, converting a harness panic
// — a failed remote execution against -server, a broken export dir —
// into an error so main exits non-zero with a message instead of a
// stack trace.
func runDriver(d exp.Driver, sc exp.Scale) (r *exp.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	return d(sc), nil
}

// runJSON is one simulation's report in -json output: the declarative
// label plus the measured wall clock (which the deterministic Result
// JSON deliberately omits).
type runJSON struct {
	Label     string  `json:"label"`
	Nodes     int     `json:"nodes"`
	Cycles    int64   `json:"cycles"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// resultJSON wraps a Result with the per-run and per-experiment wall
// clocks, shadowing the embedded Runs field.
type resultJSON struct {
	*exp.Result
	Runs      []runJSON `json:"runs,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

func wrapJSON(r *exp.Result, elapsed time.Duration) resultJSON {
	out := resultJSON{Result: r, ElapsedMS: float64(elapsed.Microseconds()) / 1000}
	for _, s := range r.Runs {
		out.Runs = append(out.Runs, runJSON{
			Label:     s.Label,
			Nodes:     s.Nodes,
			Cycles:    s.Cycles,
			ElapsedMS: float64(s.Elapsed.Microseconds()) / 1000,
		})
	}
	return out
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		runIDs   = flag.String("run", "", "comma-separated experiment IDs")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.String("scale", "default", "default | paper")
		cycles   = flag.Int64("cycles", 0, "override cycles per run")
		epoch    = flag.Int64("epoch", 0, "override controller epoch")
		nwl      = flag.Int("workloads", 0, "override workload batch size")
		maxNodes = flag.Int("maxnodes", 0, "override scaling cap")
		seed     = flag.Uint64("seed", 0, "override seed")
		workers  = flag.Int("workers", 0, "override intra-simulation worker shards")
		parallel = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS)")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of text")
		asPlot   = flag.Bool("plot", false, "append an ASCII chart of each figure's series")
		progress = flag.Bool("progress", false, "print a live line per completed run to stderr")

		server = flag.String("server", "", "nocd daemon URL; plain runs execute remotely through the fleet sweep API")

		warmup  = flag.Int64("warmup", 0, "simulate N unmeasured warmup cycles per run before measuring")
		snapDir = flag.String("snapdir", "", "checkpoint store directory; warm-start prefixes are shared through it")

		obsInterval = flag.Int64("obs-interval", 0, "record an interval sample every N cycles (0 = off)")
		obsTrace    = flag.Uint64("obs-trace", 0, "trace the lifecycle of ~1/N packets as Chrome trace JSON (0 = off, 1 = all)")
		obsSpatial  = flag.Bool("obs-spatial", false, "collect per-link and per-node heatmap grids")
		obsEpochs   = flag.Bool("obs-epochs", false, "record the congestion decision ledger (one record per controller epoch)")
		obsDir      = flag.String("obs-dir", "obs", "directory for observability exports and run manifests")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	sc := exp.DefaultScale()
	if *scale == "paper" {
		sc = exp.PaperScale()
	}
	if *cycles > 0 {
		sc.Cycles = *cycles
		if *epoch == 0 {
			sc.Epoch = sc.Cycles / 10
		}
	}
	if *epoch > 0 {
		sc.Epoch = *epoch
	}
	if *nwl > 0 {
		sc.Workloads = *nwl
	}
	if *maxNodes > 0 {
		sc.MaxNodes = *maxNodes
	}
	if *seed > 0 {
		sc.Seed = *seed
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *parallel > 0 {
		sc.Parallel = *parallel
	}
	sc.Obs = obs.Options{SampleInterval: *obsInterval, TraceSample: *obsTrace, Spatial: *obsSpatial, Epochs: *obsEpochs}
	if sc.Obs.Enabled() {
		sc.ObsDir = *obsDir
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *snapDir != "" {
		st, err := snap.NewStore(*snapDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		sc.Snapshots = st
	}
	if *progress {
		sc.Progress = runner.NewProgress(os.Stderr)
	}
	if *server != "" {
		sc.Remote = fleet.NewClient(*server)
	}

	var ids []string
	switch {
	case *all:
		ids = exp.IDs()
	case *runIDs != "":
		ids = strings.Split(*runIDs, ",")
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -list, -run <ids> or -all")
		os.Exit(2)
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		d, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		r, err := runDriver(d, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(wrapJSON(r, time.Since(start))); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: encoding:", err)
				os.Exit(1)
			}
		} else {
			r.Render(os.Stdout)
			if *asPlot && len(r.Series) > 0 {
				var ps []plot.Series
				for _, s := range r.Series {
					pts := make([][2]float64, len(s.Points))
					for i, p := range s.Points {
						pts[i] = [2]float64{p.X, p.Y}
					}
					ps = append(ps, plot.Series{Name: s.Name, Points: pts})
				}
				logX := id == "fig3" || id == "fig13" || id == "fig14" || id == "fig15" || id == "fig16"
				if err := plot.Render(os.Stdout, plot.Config{
					XLabel: r.XLabel, YLabel: r.YLabel, LogX: logX,
				}, ps...); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: plotting:", err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
