// Command escapecheck is the compiler-backed escape gate: it rebuilds
// the hot-path packages with -gcflags=-m, parses the escape-analysis
// diagnostics, and fails when a heap escape appears inside a watched
// hot function that the baseline does not sanction. It complements
// cmd/nocvet's hotalloc rule (AST-level) and the runtime
// allocs-per-cycle regression test: the compiler sees escapes the AST
// cannot prove, and reports them with the exact line at build time.
//
// Usage:
//
//	go run ./cmd/escapecheck        # gate the default watch list
//	go run ./cmd/escapecheck -v     # also print the diagnostic counts
//
// Exit status: 0 clean, 1 new escapes, 2 tool error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"nocsim/internal/escape"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("escapecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "print diagnostic counts even when clean")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "escapecheck:", err)
		return 2
	}
	out, err := buildDiagnostics(root)
	if err != nil {
		fmt.Fprintln(stderr, "escapecheck:", err)
		fmt.Fprintln(stderr, out)
		return 2
	}
	diags := escape.ParseDiagnostics(bytes.NewReader(out))
	findings := escape.Check(root, diags, escape.DefaultWatches(), escape.DefaultAllow())
	if *verbose {
		fmt.Fprintf(stdout, "escapecheck: %d escape diagnostics, %d in watched hot functions beyond baseline\n",
			len(diags), len(findings))
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stderr, "escapecheck: %d new heap escape(s) on the hot path\n", len(findings))
		return 1
	}
	return 0
}

// buildDiagnostics recompiles the noc packages with escape-analysis
// reporting and returns the combined compiler output. The -gcflags
// pattern pins -m to module packages so dependency rebuilds stay
// silent.
func buildDiagnostics(root string) ([]byte, error) {
	cmd := exec.Command("go", "build", "-gcflags=nocsim/internal/noc/...=-m", "./internal/noc/...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return out, fmt.Errorf("go build -gcflags=-m failed: %w", err)
	}
	return out, nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}
