package main

import (
	"bytes"
	"testing"
)

// TestTreeIsClean is the gate run against the real tree: every escape
// diagnostic inside a watched hot function must be in the baseline.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles internal/noc with -gcflags=-m")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-v"}, &out, &errb); code != 0 {
		t.Fatalf("escapecheck exit = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
}
