// Command compare runs one workload on all three network architectures
// — baseline BLESS, BLESS with the paper's congestion controller, and
// the buffered VC router — and prints a side-by-side comparison of the
// application- and network-level metrics plus the power model's verdict.
//
//	compare -size 8 -workload H -cycles 200000
//	compare -size 16 -workload HM -mapping exp
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"nocsim/internal/core"
	"nocsim/internal/power"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func main() {
	var (
		size     = flag.Int("size", 8, "mesh edge length")
		wl       = flag.String("workload", "H", "workload category")
		mapping  = flag.String("mapping", "exp", "L2 mapping: xor | exp | pow")
		meanHops = flag.Float64("mean-hops", 1, "mean hop distance for locality mappings")
		cycles   = flag.Int64("cycles", 150_000, "cycles to simulate")
		seed     = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	cat, ok := workload.CategoryByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "compare: unknown workload category %q\n", *wl)
		os.Exit(1)
	}
	n := *size * *size
	w := workload.Generate(cat, n, *seed)
	params := core.DefaultParams()
	params.Epoch = *cycles / 10

	model := power.Default()
	fmt.Printf("%-18s %10s %8s %8s %9s %10s %10s\n",
		"architecture", "IPC/node", "util", "starv", "lat(cyc)", "hops/flit", "power/cyc")
	for _, mode := range []string{"BLESS", "BLESS-Throttling", "Buffered"} {
		cfg := sim.Config{
			Width: *size, Height: *size,
			Apps:     w.Apps,
			MeanHops: *meanHops,
			Params:   params,
			Workers:  runtime.NumCPU(),
			Seed:     *seed,
		}
		switch *mapping {
		case "exp":
			cfg.Mapping = sim.ExpMap
		case "pow":
			cfg.Mapping = sim.PowMap
		}
		buffered := false
		switch mode {
		case "BLESS-Throttling":
			cfg.Controller = sim.Central
		case "Buffered":
			cfg.Router = sim.Buffered
			buffered = true
		}
		s := sim.New(cfg)
		s.Run(*cycles)
		m := s.Metrics()
		hops := 0.0
		if m.Net.FlitsEjected > 0 {
			hops = float64(m.Net.LinkTraversals) / float64(m.Net.FlitsEjected)
		}
		pwr := model.Compute(m.Net, n, buffered)
		fmt.Printf("%-18s %10.3f %8.3f %8.3f %9.1f %10.2f %10.1f\n",
			mode, m.ThroughputPerNode, m.NetUtilization, m.StarvationRate,
			m.AvgNetLatency, hops, pwr.Power)
	}
}
