// Command compare runs one workload on all three network architectures
// — baseline BLESS, BLESS with the paper's congestion controller, and
// the buffered VC router — and prints a side-by-side comparison of the
// application- and network-level metrics plus the power model's verdict.
//
//	compare -size 8 -workload H -cycles 200000
//	compare -size 16 -workload HM -mapping exp
//	compare -server http://host:8080 -size 8 -workload H
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nocsim/internal/fleet"
	"nocsim/internal/power"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/snap"
	"nocsim/internal/workload"
)

// execute runs the plan, converting a harness panic into an error.
func execute(p *runner.Plan) (ms []sim.Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return p.Execute(), nil
}

func main() {
	var (
		size     = flag.Int("size", 8, "mesh edge length")
		wl       = flag.String("workload", "H", "workload category")
		mapping  = flag.String("mapping", "exp", "L2 mapping: xor | exp | pow")
		meanHops = flag.Float64("mean-hops", 1, "mean hop distance for locality mappings")
		cycles   = flag.Int64("cycles", 150_000, "cycles to simulate")
		seed     = flag.Uint64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS)")
		warmup   = flag.Int64("warmup", 0, "shared uncontrolled warm-start prefix in cycles (0 = cold runs)")
		snapDir  = flag.String("snapdir", "", "checkpoint store directory for warm-start prefixes")
		snapCap  = flag.Int64("snapcap", 0, "checkpoint store byte cap, oldest evicted first (0 = unlimited)")
		server   = flag.String("server", "", "nocd daemon URL; executes the comparison through the fleet sweep API")
	)
	flag.Parse()

	cat, ok := workload.CategoryByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "compare: unknown workload category %q\n", *wl)
		os.Exit(1)
	}
	n := *size * *size
	w := workload.Generate(cat, n, *seed)

	sc := runner.DefaultScale()
	sc.Cycles = *cycles
	sc.Epoch = *cycles / 10
	sc.Seed = *seed
	sc.Parallel = *parallel
	sc.Warmup = *warmup
	if *snapDir != "" {
		st, err := snap.NewStore(*snapDir, *snapCap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		sc.Snapshots = st
	}

	mapKind := sim.XORMap
	switch *mapping {
	case "exp":
		mapKind = sim.ExpMap
	case "pow":
		mapKind = sim.PowMap
	}
	common := []runner.Option{
		runner.WithMapping(mapKind, *meanHops),
		runner.WithSeed(*seed),
	}

	modes := []struct {
		name     string
		cfg      sim.Config
		buffered bool
	}{
		{"BLESS", runner.Baseline(w, *size, *size, sc, common...), false},
		{"BLESS-Throttling", runner.Controlled(w, *size, *size, sc, common...), false},
		{"Buffered", runner.Baseline(w, *size, *size, sc,
			append(common[:2:2], runner.WithRouter(sim.Buffered))...), true},
	}
	// Execute before printing anything: a failed run (the runner panics
	// on infrastructure failures) or a failed sweep point exits non-zero
	// with a message instead of a partial table.
	var ms []sim.Metrics
	var err error
	if *server != "" {
		// Ship the exact assembled configurations: the daemon re-keys
		// and executes them, byte-identical to the local path.
		spec := fleet.SweepSpec{Scale: runner.ScaleSpec{Cycles: sc.Cycles, Epoch: sc.Epoch}}
		for _, mode := range modes {
			raw, merr := json.Marshal(&mode.cfg)
			if merr != nil {
				fmt.Fprintf(os.Stderr, "compare: encoding %s config: %v\n", mode.name, merr)
				os.Exit(1)
			}
			spec.Runs = append(spec.Runs, runner.RunSpec{
				Label: "compare/" + mode.name, Cycles: sc.Cycles, Config: raw,
			})
		}
		res, serr := fleet.NewClient(*server).Sweep(spec)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", serr)
			os.Exit(1)
		}
		for _, pt := range res.Points {
			if pt.Metrics == nil {
				fmt.Fprintf(os.Stderr, "compare: point %q carries no metrics\n", pt.Label)
				os.Exit(1)
			}
			ms = append(ms, *pt.Metrics)
		}
	} else {
		plan := runner.NewPlan(sc)
		for _, mode := range modes {
			plan.Add("compare/"+mode.name, mode.cfg, sc.Cycles)
		}
		ms, err = execute(plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
	}

	model := power.Default()
	fmt.Printf("%-18s %10s %8s %8s %9s %10s %10s\n",
		"architecture", "IPC/node", "util", "starv", "lat(cyc)", "hops/flit", "power/cyc")
	for i, mode := range modes {
		m := ms[i]
		hops := 0.0
		if m.Net.FlitsEjected > 0 {
			hops = float64(m.Net.LinkTraversals) / float64(m.Net.FlitsEjected)
		}
		pwr := model.Compute(m.Net, n, mode.buffered)
		fmt.Printf("%-18s %10.3f %8.3f %8.3f %9.1f %10.2f %10.1f\n",
			mode.name, m.ThroughputPerNode, m.NetUtilization, m.StarvationRate,
			m.AvgNetLatency, hops, pwr.Power)
	}
}
