// Command benchjson runs the fabric-stepping benchmark matrix
// (internal/noc/stepbench) through testing.Benchmark and writes the
// results as machine-readable JSON, so performance regressions are
// diffable across commits without parsing `go test -bench` text.
//
// Usage:
//
//	go run ./cmd/benchjson -label pr6-after  # append a labeled run
//	go run ./cmd/benchjson -fresh            # discard prior runs
//	go run ./cmd/benchjson -o results.json   # alternate path
//	go run ./cmd/benchjson -time 200ms       # longer per-case runs
//
// The output file accumulates labeled runs so before/after pairs live
// side by side in one document. Re-using a label replaces that run.
// Each record reports one (case, workers) cell: nanoseconds per
// simulated cycle, flit-hops retired per second, and steady-state
// heap allocations per cycle (which the pooled hot path keeps at
// zero; see the stepbench zero-allocation test).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"testing"
	"time"

	"nocsim/internal/noc/stepbench"
)

// record is one benchmark cell in the output file.
type record struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitHopsPerSec float64 `json:"flit_hops_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
}

// environment identifies the machine and toolchain a benchmark file was
// produced on; numbers are only comparable within one environment.
type environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// run is one labeled sweep of the benchmark matrix.
type run struct {
	Label   string   `json:"label"`
	Records []record `json:"records"`
}

// benchFile is the output document: environment metadata plus the
// accumulated labeled runs. The legacy single-run form (a top-level
// "records" array) is still read and migrated to a run labeled
// "legacy" on the next write.
type benchFile struct {
	Env  environment `json:"env"`
	Runs []run       `json:"runs"`

	// LegacyRecords captures the pre-labeled-run schema on read; it is
	// never written back.
	LegacyRecords []record `json:"records,omitempty"`
}

// load reads an existing output file and migrates the legacy schema.
// A missing file yields an empty document.
func load(path string) (benchFile, error) {
	var doc benchFile
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(doc.LegacyRecords) > 0 {
		doc.Runs = append([]run{{Label: "legacy", Records: doc.LegacyRecords}}, doc.Runs...)
		doc.LegacyRecords = nil
	}
	return doc, nil
}

// upsert replaces the run with the same label, or appends.
func upsert(runs []run, r run) []run {
	for i := range runs {
		if runs[i].Label == r.Label {
			runs[i] = r
			return runs
		}
	}
	return append(runs, r)
}

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	var (
		out      = flag.String("o", "BENCH_step.json", "output path")
		label    = flag.String("label", "run", "label for this sweep; re-using a label replaces that run")
		fresh    = flag.Bool("fresh", false, "discard runs already in the output file")
		benchFor = flag.Duration("time", 100*time.Millisecond, "minimum run time per benchmark cell")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", benchFor.String()); err != nil {
		fail(err)
	}

	doc := benchFile{}
	if !*fresh {
		var err error
		if doc, err = load(*out); err != nil {
			fail(err)
		}
	}

	workerSet := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerSet = append(workerSet, p)
	}

	var records []record
	for _, c := range stepbench.Cases() {
		for _, w := range workerSet {
			c, w := c, w
			r := testing.Benchmark(func(b *testing.B) {
				stepbench.Bench(b, c, w)
			})
			nsPerCycle := float64(r.T.Nanoseconds()) / float64(r.N)
			records = append(records, record{
				Name:           c.Name,
				Workers:        w,
				NsPerCycle:     nsPerCycle,
				CyclesPerSec:   r.Extra["cycles/s"],
				FlitHopsPerSec: r.Extra["flithops/s"],
				AllocsPerCycle: float64(r.MemAllocs) / float64(r.N),
				BytesPerCycle:  float64(r.MemBytes) / float64(r.N),
			})
			fmt.Printf("%-16s w=%-2d %12.0f ns/cycle %14.0f flit-hops/s %8.2f allocs/cycle\n",
				c.Name, w, nsPerCycle, r.Extra["flithops/s"],
				float64(r.MemAllocs)/float64(r.N))
		}
	}

	doc.Env = environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	doc.Runs = upsert(doc.Runs, run{Label: *label, Records: records})
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(js, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d runs, %d records in %q)\n", *out, len(doc.Runs), len(records), *label)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}
