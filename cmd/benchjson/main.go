// Command benchjson runs the fabric-stepping benchmark matrix
// (internal/noc/stepbench) through testing.Benchmark and writes the
// results as machine-readable JSON, so performance regressions are
// diffable across commits without parsing `go test -bench` text.
//
// Usage:
//
//	go run ./cmd/benchjson -label pr6-after  # append a labeled run
//	go run ./cmd/benchjson -fresh            # discard prior runs
//	go run ./cmd/benchjson -o results.json   # alternate path
//	go run ./cmd/benchjson -time 200ms       # longer per-case runs
//
// The output file accumulates labeled runs so before/after pairs live
// side by side in one document (schema: internal/bench; drift gate:
// cmd/benchdiff). Re-using a label replaces that run.
// Each record reports one (case, workers) cell: nanoseconds per
// simulated cycle, flit-hops retired per second, and steady-state
// heap allocations per cycle (which the pooled hot path keeps at
// zero; see the stepbench zero-allocation test).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nocsim/internal/bench"
	"nocsim/internal/noc/stepbench"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/snap"
	"nocsim/internal/workload"
)

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	var (
		out      = flag.String("o", "BENCH_step.json", "output path")
		label    = flag.String("label", "run", "label for this sweep; re-using a label replaces that run")
		fresh    = flag.Bool("fresh", false, "discard runs already in the output file")
		benchFor = flag.Duration("time", 100*time.Millisecond, "minimum run time per benchmark cell")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", benchFor.String()); err != nil {
		fail(err)
	}

	doc := bench.File{}
	if !*fresh {
		var err error
		if doc, err = bench.Load(*out); err != nil {
			fail(err)
		}
	}

	workerSet := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerSet = append(workerSet, p)
	}

	var records []bench.Record
	for _, c := range stepbench.Cases() {
		for _, w := range workerSet {
			c, w := c, w
			r := testing.Benchmark(func(b *testing.B) {
				stepbench.Bench(b, c, w)
			})
			nsPerCycle := float64(r.T.Nanoseconds()) / float64(r.N)
			records = append(records, bench.Record{
				Name:           c.Name,
				Workers:        w,
				NsPerCycle:     nsPerCycle,
				CyclesPerSec:   r.Extra["cycles/s"],
				FlitHopsPerSec: r.Extra["flithops/s"],
				AllocsPerCycle: float64(r.MemAllocs) / float64(r.N),
				BytesPerCycle:  float64(r.MemBytes) / float64(r.N),
			})
			fmt.Printf("%-16s w=%-2d %12.0f ns/cycle %14.0f flit-hops/s %8.2f allocs/cycle\n",
				c.Name, w, nsPerCycle, r.Extra["flithops/s"],
				float64(r.MemAllocs)/float64(r.N))
		}
	}

	snaps := measureSnapshots()
	sweep, err := measureSweep()
	if err != nil {
		fail(err)
	}
	fmt.Printf("sweep: %d points, cold %d cycles (%.2f points/s) vs warm %d cycles (%.2f points/s), %.1fx fewer cycles\n",
		sweep.Points, sweep.ColdTotalCycles, sweep.ColdPointsPerSec,
		sweep.WarmTotalCycles, sweep.WarmPointsPerSec, sweep.ColdOverWarmCycles)

	doc.Env = bench.Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	doc.Runs = bench.Upsert(doc.Runs, bench.Run{Label: *label, Records: records, Snapshots: snaps, Sweep: sweep})
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(js, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d runs, %d records in %q)\n", *out, len(doc.Runs), len(records), *label)
}

// measureSnapshots runs the checkpoint-codec matrix: per configuration,
// the encode cost, the rebuild cost, and the blob size.
func measureSnapshots() []bench.SnapRecord {
	var out []bench.SnapRecord
	for _, c := range stepbench.SnapCases() {
		c := c
		enc := testing.Benchmark(func(b *testing.B) { stepbench.BenchSnapshot(b, c) })
		dec := testing.Benchmark(func(b *testing.B) { stepbench.BenchRestore(b, c) })
		r := bench.SnapRecord{
			Name:       c.Name,
			BlobBytes:  enc.Extra["blob_bytes"],
			SnapshotNs: float64(enc.T.Nanoseconds()) / float64(enc.N),
			RestoreNs:  float64(dec.T.Nanoseconds()) / float64(dec.N),
		}
		out = append(out, r)
		fmt.Printf("%-20s %12.0f ns/snapshot %12.0f ns/restore %10.0f blob bytes\n",
			c.Name, r.SnapshotNs, r.RestoreNs, r.BlobBytes)
	}
	return out
}

// measureSweep times one static-rate sweep twice: cold, where every
// point re-simulates the shared warmup prefix, and warm, where every
// point forks the one checkpoint the first point files. The cycle
// totals are exact by construction (the runner's warm tests pin the
// behaviour); the store's write counter is checked so the record can
// never claim sharing that did not happen.
func measureSweep() (*bench.SweepRecord, error) {
	const (
		points       = 8
		cycles int64 = 2_000
		warmup int64 = 20_000
	)
	sc := runner.DefaultScale()
	sc.Cycles = cycles
	sc.Epoch = 200
	sc.Workers = 1
	// Two-wide pool: real sweeps have far more points than cores, so the
	// benchmark models the oversubscribed regime where saved cycles are
	// saved wall clock, not a machine wide enough to hide every redundant
	// warmup behind idle cores.
	sc.Parallel = 2
	sc.Warmup = warmup
	cat, ok := workload.CategoryByName("HM")
	if !ok {
		return nil, fmt.Errorf("sweep benchmark: unknown workload category HM")
	}
	w := workload.Generate(cat, 16, sc.Seed+11)
	cfgAt := func(i int) (string, sim.Config) {
		rate := 0.1 + 0.8*float64(i)/float64(points-1)
		return fmt.Sprintf("bench/static=%.2f", rate),
			runner.Baseline(w, 4, 4, sc, runner.WithStaticUniform(rate))
	}

	// Cold: one single-run plan per point under the same two-wide pool,
	// so nothing is shared — each point simulates its own warmup prefix,
	// exactly what independent sweep invocations (or the pre-checkpoint
	// harness) pay. A single plan would not do: the executor's in-memory
	// single-flight shares the warm prefix across a plan's points even
	// without a store.
	solo := sc
	solo.Parallel = 1
	start := time.Now()
	runner.Map(sc, points, func(i int) struct{} {
		plan := runner.NewPlan(solo)
		label, cfg := cfgAt(i)
		plan.Add(label, cfg, solo.Cycles)
		plan.Execute()
		return struct{}{}
	})
	coldSec := time.Since(start).Seconds()

	// Warm: all points in one plan over a store; the first files the
	// shared prefix, the rest fork it.
	dir, err := os.MkdirTemp("", "benchjson-snap-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := snap.NewStore(dir, 0)
	if err != nil {
		return nil, err
	}
	shared := sc
	shared.Snapshots = st
	plan := runner.NewPlan(shared)
	for i := 0; i < points; i++ {
		label, cfg := cfgAt(i)
		plan.Add(label, cfg, shared.Cycles)
	}
	start = time.Now()
	plan.Execute()
	warmSec := time.Since(start).Seconds()
	if stats := st.Stats(); stats.Writes != 1 {
		return nil, fmt.Errorf("warm sweep filed %d prefixes, want 1 shared", stats.Writes)
	}
	cold := int64(points) * (warmup + cycles)
	warm := warmup + int64(points)*cycles
	return &bench.SweepRecord{
		Points:             points,
		WarmupCycles:       warmup,
		MeasuredCycles:     cycles,
		ColdTotalCycles:    cold,
		WarmTotalCycles:    warm,
		ColdOverWarmCycles: float64(cold) / float64(warm),
		ColdPointsPerSec:   float64(points) / coldSec,
		WarmPointsPerSec:   float64(points) / warmSec,
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}
