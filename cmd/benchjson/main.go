// Command benchjson runs the fabric-stepping benchmark matrix
// (internal/noc/stepbench) through testing.Benchmark and writes the
// results as machine-readable JSON, so performance regressions are
// diffable across commits without parsing `go test -bench` text.
//
// Usage:
//
//	go run ./cmd/benchjson                  # write BENCH_step.json
//	go run ./cmd/benchjson -o results.json  # alternate path
//	go run ./cmd/benchjson -time 200ms      # longer per-case runs
//
// Each record reports one (case, workers) cell: nanoseconds per
// simulated cycle and flit-hops retired per second, the two metrics
// the stepping benchmarks emit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nocsim/internal/noc/stepbench"
)

// record is one benchmark cell in the output file.
type record struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitHopsPerSec float64 `json:"flit_hops_per_sec"`
}

// environment identifies the machine and toolchain a benchmark file was
// produced on; numbers are only comparable within one environment.
type environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// benchFile is the output document: environment metadata plus the
// benchmark matrix.
type benchFile struct {
	Env     environment `json:"env"`
	Records []record    `json:"records"`
}

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	var (
		out      = flag.String("o", "BENCH_step.json", "output path")
		benchFor = flag.Duration("time", 100*time.Millisecond, "minimum run time per benchmark cell")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", benchFor.String()); err != nil {
		fail(err)
	}

	workerSet := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerSet = append(workerSet, p)
	}

	var records []record
	for _, c := range stepbench.Cases() {
		for _, w := range workerSet {
			c, w := c, w
			r := testing.Benchmark(func(b *testing.B) {
				stepbench.Bench(b, c, w)
			})
			nsPerCycle := float64(r.T.Nanoseconds()) / float64(r.N)
			records = append(records, record{
				Name:           c.Name,
				Workers:        w,
				NsPerCycle:     nsPerCycle,
				CyclesPerSec:   r.Extra["cycles/s"],
				FlitHopsPerSec: r.Extra["flithops/s"],
			})
			fmt.Printf("%-16s w=%-2d %12.0f ns/cycle %14.0f flit-hops/s\n",
				c.Name, w, nsPerCycle, r.Extra["flithops/s"])
		}
	}

	doc := benchFile{
		Env: environment{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
		Records: records,
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(js, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, len(records))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}
