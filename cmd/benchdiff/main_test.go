package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsim/internal/bench"
)

func baselineRun() bench.Run {
	return bench.Run{
		Label: "base",
		Records: []bench.Record{
			{Name: "mesh8x8", Workers: 1, NsPerCycle: 1000, AllocsPerCycle: 0},
			{Name: "mesh8x8", Workers: 4, NsPerCycle: 400, AllocsPerCycle: 0},
			{Name: "ring16", Workers: 1, NsPerCycle: 250, AllocsPerCycle: 0.5},
		},
		Snapshots: []bench.SnapRecord{
			{Name: "mesh8x8", BlobBytes: 4096, SnapshotNs: 9000, RestoreNs: 12000},
		},
	}
}

func TestDiffCleanOnSelf(t *testing.T) {
	o, n := baselineRun(), baselineRun()
	report, regressions := diff(&o, &n, 0.25)
	if len(regressions) != 0 {
		t.Fatalf("self-comparison found regressions: %v", regressions)
	}
	if len(report) == 0 {
		t.Fatal("self-comparison produced an empty report")
	}
}

func TestDiffWithinNoise(t *testing.T) {
	o, n := baselineRun(), baselineRun()
	n.Records[0].NsPerCycle *= 1.20 // inside a 25% threshold
	if _, regressions := diff(&o, &n, 0.25); len(regressions) != 0 {
		t.Fatalf("20%% drift inside 25%% threshold flagged: %v", regressions)
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	o, n := baselineRun(), baselineRun()
	n.Records[0].NsPerCycle *= 2        // timing regression
	n.Records[1].AllocsPerCycle = 3     // zero-alloc contract broken
	n.Records = n.Records[:2]           // ring16 coverage lost
	n.Snapshots[0].BlobBytes = 3 * 4096 // checkpoint blob tripled
	_, regressions := diff(&o, &n, 0.25)
	if len(regressions) != 4 {
		t.Fatalf("want 4 regressions, got %d: %v", len(regressions), regressions)
	}
	for _, want := range []string{"ns/cycle", "allocation-free", "missing", "blob bytes"} {
		found := false
		for _, r := range regressions {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no regression mentions %q: %v", want, regressions)
		}
	}
}

// TestDiffFixtureFiles drives the same comparison through the on-disk
// document form CI uses: a baseline file and a candidate with an
// injected slowdown must disagree.
func TestDiffFixtureFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r bench.Run) string {
		doc := bench.File{Runs: []bench.Run{r}}
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	slow := baselineRun()
	slow.Label = "candidate"
	slow.Records[2].NsPerCycle *= 4
	oldPath := write("old.json", baselineRun())
	newPath := write("new.json", slow)

	oldDoc, err := bench.Load(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := bench.Load(newPath)
	if err != nil {
		t.Fatal(err)
	}
	// Empty labels select each file's most recent run, as main does.
	_, regressions := diff(oldDoc.Run(""), newDoc.Run(""), 0.25)
	if len(regressions) != 1 {
		t.Fatalf("want exactly the injected slowdown, got %v", regressions)
	}
	if !strings.Contains(regressions[0], "ring16/w1") {
		t.Fatalf("regression names wrong record: %v", regressions)
	}
}
