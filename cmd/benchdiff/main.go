// Command benchdiff is the benchmark drift gate: it compares two
// benchmark documents (cmd/benchjson output, schema internal/bench)
// record by record and exits non-zero when the new numbers regress
// beyond a noise threshold. CI runs it so a hot-path regression fails
// a build instead of being discovered three PRs later in a chart.
//
// Usage:
//
//	go run ./cmd/benchdiff old.json new.json
//	go run ./cmd/benchdiff -threshold 0.25 old.json new.json
//	go run ./cmd/benchdiff -old-run pr6-after -new-run pr8-checkpoints BENCH.json BENCH.json
//
// Both arguments may name the same file: -old-run/-new-run select
// labeled runs inside one accumulating document (empty means the most
// recent run). Records pair by (name, workers); snapshot records by
// name. A record present in the old run but missing from the new one
// is itself a regression — coverage loss hides performance loss.
//
// Exit status: 0 clean, 1 regressions found, 2 usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"nocsim/internal/bench"
)

// zeroAllocEps separates "steady-state zero allocations" from real
// per-cycle allocation: benchmark warmup can attribute a stray
// allocation or two to a run, so the gate triggers on crossing the
// epsilon, not on exact zero.
const zeroAllocEps = 0.01

func main() {
	var (
		threshold = flag.Float64("threshold", 0.25,
			"fractional slowdown tolerated before a timing counts as a regression")
		oldRun = flag.String("old-run", "", "label of the baseline run (empty: most recent)")
		newRun = flag.String("new-run", "", "label of the candidate run (empty: most recent)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-old-run l] [-new-run l] old.json new.json")
		os.Exit(2)
	}
	oldDoc, err := bench.Load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newDoc, err := bench.Load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	o := oldDoc.Run(*oldRun)
	n := newDoc.Run(*newRun)
	if o == nil {
		fail(fmt.Errorf("%s has no run labeled %q", flag.Arg(0), *oldRun))
	}
	if n == nil {
		fail(fmt.Errorf("%s has no run labeled %q", flag.Arg(1), *newRun))
	}

	report, regressions := diff(o, n, *threshold)
	for _, l := range report {
		fmt.Println(l)
	}
	if len(regressions) > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%% threshold (%q -> %q)\n",
			len(regressions), *threshold*100, o.Label, n.Label)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions beyond %.0f%% threshold (%q -> %q)\n",
		*threshold*100, o.Label, n.Label)
}

// diff compares a baseline run against a candidate and returns the
// full per-record report plus the subset that counts as regressions.
// Three rules, checked per paired record:
//
//  1. timing: new exceeds old by more than the fractional threshold
//     (ns/cycle for step records; snapshot and restore ns for
//     checkpoint records, blob bytes likewise);
//  2. allocations: a case that was at steady-state zero allocations
//     (< zeroAllocEps/cycle) now allocates — any amount; a case that
//     already allocated is held to the timing threshold;
//  3. coverage: an old record with no counterpart in the candidate.
func diff(o, n *bench.Run, threshold float64) (report, regressions []string) {
	bad := func(format string, args ...any) {
		l := fmt.Sprintf(format, args...)
		report = append(report, "REGRESSION "+l)
		regressions = append(regressions, l)
	}

	newRecs := make(map[string]bench.Record, len(n.Records))
	for _, r := range n.Records {
		newRecs[recKey(r)] = r
	}
	for _, or := range o.Records {
		nr, ok := newRecs[recKey(or)]
		if !ok {
			bad("%s: record missing from candidate run", recKey(or))
			continue
		}
		ratio := ratioOf(nr.NsPerCycle, or.NsPerCycle)
		switch {
		case ratio > 1+threshold:
			bad("%s: %.0f -> %.0f ns/cycle (%+.1f%%)",
				recKey(or), or.NsPerCycle, nr.NsPerCycle, (ratio-1)*100)
		default:
			report = append(report, fmt.Sprintf("ok %s: %.0f -> %.0f ns/cycle (%+.1f%%)",
				recKey(or), or.NsPerCycle, nr.NsPerCycle, (ratio-1)*100))
		}
		switch {
		case or.AllocsPerCycle < zeroAllocEps && nr.AllocsPerCycle >= zeroAllocEps:
			bad("%s: steady state was allocation-free, now %.2f allocs/cycle",
				recKey(or), nr.AllocsPerCycle)
		case or.AllocsPerCycle >= zeroAllocEps &&
			ratioOf(nr.AllocsPerCycle, or.AllocsPerCycle) > 1+threshold:
			bad("%s: %.2f -> %.2f allocs/cycle",
				recKey(or), or.AllocsPerCycle, nr.AllocsPerCycle)
		}
	}

	newSnaps := make(map[string]bench.SnapRecord, len(n.Snapshots))
	for _, r := range n.Snapshots {
		newSnaps[r.Name] = r
	}
	for _, sold := range o.Snapshots {
		ns, ok := newSnaps[sold.Name]
		if !ok {
			bad("snap %s: record missing from candidate run", sold.Name)
			continue
		}
		for _, m := range []struct {
			what     string
			old, new float64
		}{
			{"snapshot ns", sold.SnapshotNs, ns.SnapshotNs},
			{"restore ns", sold.RestoreNs, ns.RestoreNs},
			{"blob bytes", sold.BlobBytes, ns.BlobBytes},
		} {
			if ratioOf(m.new, m.old) > 1+threshold {
				bad("snap %s: %s %.0f -> %.0f", sold.Name, m.what, m.old, m.new)
			} else {
				report = append(report, fmt.Sprintf("ok snap %s: %s %.0f -> %.0f",
					sold.Name, m.what, m.old, m.new))
			}
		}
	}
	return report, regressions
}

func recKey(r bench.Record) string {
	return fmt.Sprintf("%s/w%d", r.Name, r.Workers)
}

// ratioOf treats a zero baseline as neutral: there is nothing to
// regress from, and dividing by it would turn noise into infinity.
func ratioOf(new, old float64) float64 {
	if old <= 0 {
		return 1
	}
	return new / old
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
