// Command nocsim runs one closed-loop CMP+NoC simulation from flags and
// prints a metrics report: the quickest way to poke at the system.
//
// Examples:
//
//	nocsim -size 4 -workload H -cycles 200000
//	nocsim -size 8 -workload HML -controller central
//	nocsim -size 16 -workload H -mapping exp -router buffered
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"nocsim/internal/app"
	"nocsim/internal/obs"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/topology"
	"nocsim/internal/workload"
)

func main() {
	var (
		size       = flag.Int("size", 4, "mesh edge length (size x size nodes)")
		topo       = flag.String("topo", "mesh", "topology: mesh | torus")
		router     = flag.String("router", "bless", "router: bless | buffered | hierring")
		wl         = flag.String("workload", "HML", "workload category (H M L HML HM HL ML), 'uniform:<app>' or 'single:<app>'")
		controller = flag.String("controller", "none", "controller: none | central | static | distributed | unaware | latency")
		staticRate = flag.Float64("static-rate", 0.5, "rate for -controller static")
		mapping    = flag.String("mapping", "xor", "L2 mapping: xor | exp | pow")
		meanHops   = flag.Float64("mean-hops", 1, "mean hop distance for locality mappings")
		cycles     = flag.Int64("cycles", 200_000, "cycles to simulate")
		epoch      = flag.Int64("epoch", 0, "controller epoch (default cycles/10)")
		seed       = flag.Uint64("seed", 42, "random seed")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker shards for large meshes")
		verbose    = flag.Bool("v", false, "per-node detail")
		adaptive   = flag.Bool("adaptive", false, "congestion-aware productive-port routing (BLESS)")
		sideBuffer = flag.Int("side-buffer", 0, "MinBD-style side buffer depth in flits (BLESS)")
		writebacks = flag.Bool("writebacks", false, "model store traffic and dirty-eviction writebacks")

		obsInterval = flag.Int64("obs-interval", 0, "record an interval sample every N cycles (0 = off)")
		obsTrace    = flag.Uint64("obs-trace", 0, "trace the lifecycle of ~1/N packets as Chrome trace JSON (0 = off, 1 = all)")
		obsSpatial  = flag.Bool("obs-spatial", false, "collect per-link and per-node heatmap grids")
		obsEpochs   = flag.Bool("obs-epochs", false, "record the congestion decision ledger (one record per controller epoch)")
		obsDir      = flag.String("obs-dir", "obs", "directory for observability exports and the run manifest")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nocsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *epoch == 0 {
		*epoch = *cycles / 10
		if *epoch < 1000 {
			*epoch = 1000
		}
	}

	n := *size * *size
	w, err := buildWorkload(*wl, n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}

	// Config assembly flows through the runner presets (nocvet's
	// rawconfig rule): Baseline supplies the Table 2 defaults, the
	// flags become With* options.
	sc := runner.Scale{Cycles: *cycles, Epoch: *epoch, Workers: *workers, Seed: *seed}
	opts := []runner.Option{
		runner.WithSeed(*seed),
		runner.WithWorkers(runner.WorkersFor(n, *workers)),
	}
	if *topo == "torus" {
		opts = append(opts, runner.WithTopo(topology.Torus))
	}
	if *adaptive {
		opts = append(opts, runner.WithAdaptive())
	}
	if *sideBuffer > 0 {
		opts = append(opts, runner.WithSideBuffer(*sideBuffer))
	}
	if *writebacks {
		opts = append(opts, runner.WithWritebacks())
	}
	switch *router {
	case "bless":
	case "buffered":
		opts = append(opts, runner.WithRouter(sim.Buffered))
	case "hierring":
		opts = append(opts, runner.WithRouter(sim.HierRing))
	default:
		fmt.Fprintf(os.Stderr, "nocsim: unknown router %q\n", *router)
		os.Exit(1)
	}
	switch *controller {
	case "none":
	case "central":
		opts = append(opts, runner.WithController(sim.Central))
	case "static":
		opts = append(opts, runner.WithStaticUniform(*staticRate))
	case "distributed":
		opts = append(opts, runner.WithController(sim.Distributed))
	case "unaware":
		opts = append(opts, runner.WithController(sim.UnawareControl))
	case "latency":
		opts = append(opts, runner.WithController(sim.LatencyControl))
	default:
		fmt.Fprintf(os.Stderr, "nocsim: unknown controller %q\n", *controller)
		os.Exit(1)
	}
	switch *mapping {
	case "xor":
	case "exp":
		opts = append(opts, runner.WithMapping(sim.ExpMap, *meanHops))
	case "pow":
		opts = append(opts, runner.WithMapping(sim.PowMap, *meanHops))
	default:
		fmt.Fprintf(os.Stderr, "nocsim: unknown mapping %q\n", *mapping)
		os.Exit(1)
	}

	obsOpt := obs.Options{SampleInterval: *obsInterval, TraceSample: *obsTrace, Spatial: *obsSpatial, Epochs: *obsEpochs}
	if obsOpt.Enabled() {
		opts = append(opts, runner.WithObs(obsOpt))
	}

	cfg := runner.Baseline(w, *size, *size, sc, opts...)
	start := time.Now()
	s := sim.New(cfg)
	s.Run(*cycles)
	elapsed := time.Since(start)
	report(s, w, *verbose)
	if obsOpt.Enabled() {
		label := fmt.Sprintf("nocsim-%dx%d-%s-%s", *size, *size, *router, *wl)
		if err := runner.ExportObs(s, *obsDir, label, cfg, elapsed); err != nil {
			fmt.Fprintln(os.Stderr, "nocsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observability exports written to %s/%s.*\n", *obsDir, label)
	}
	s.Close()

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nocsim:", err)
			os.Exit(1)
		}
	}
}

func buildWorkload(spec string, n int, seed uint64) (workload.Workload, error) {
	if len(spec) > 8 && spec[:8] == "uniform:" {
		p, ok := app.ByName(spec[8:])
		if !ok {
			return workload.Workload{}, fmt.Errorf("unknown application %q", spec[8:])
		}
		return workload.Uniform(p, n), nil
	}
	if len(spec) > 7 && spec[:7] == "single:" {
		p, ok := app.ByName(spec[7:])
		if !ok {
			return workload.Workload{}, fmt.Errorf("unknown application %q", spec[7:])
		}
		return workload.Single(p, n, n/2), nil
	}
	cat, ok := workload.CategoryByName(spec)
	if !ok {
		return workload.Workload{}, fmt.Errorf("unknown workload category %q", spec)
	}
	return workload.Generate(cat, n, seed), nil
}

func report(s *sim.Sim, w workload.Workload, verbose bool) {
	m := s.Metrics()
	fmt.Printf("cycles                 %d\n", m.Cycles)
	fmt.Printf("active nodes           %d / %d\n", m.ActiveNodes, m.Nodes)
	fmt.Printf("system throughput      %.3f (sum IPC)\n", m.SystemThroughput)
	fmt.Printf("throughput per node    %.3f IPC\n", m.ThroughputPerNode)
	fmt.Printf("network utilization    %.3f\n", m.NetUtilization)
	fmt.Printf("avg net latency        %.1f cycles\n", m.AvgNetLatency)
	fmt.Printf("avg queue latency      %.1f cycles\n", m.Net.AvgQueueLatency())
	fmt.Printf("starvation rate        %.3f\n", m.StarvationRate)
	fmt.Printf("deflection rate        %.3f\n", m.Net.DeflectionRate())
	fmt.Printf("L1 misses              %d (%d local-slice)\n", m.Misses, m.LocalMisses)
	if m.Writebacks > 0 {
		fmt.Printf("writebacks             %d\n", m.Writebacks)
	}
	fmt.Printf("flits injected/ejected %d / %d\n", m.Net.FlitsInjected, m.Net.FlitsEjected)
	fmt.Printf("packets delivered      %d\n", m.Net.PacketsDelivered)
	if m.ControlPackets > 0 {
		fmt.Printf("control packets        %d\n", m.ControlPackets)
	}
	if ds := s.Decisions(); len(ds) > 0 {
		congested := 0
		for _, d := range ds {
			if d.Congested {
				congested++
			}
		}
		fmt.Printf("controller epochs      %d (%d congested)\n", len(ds), congested)
	}
	if !verbose {
		return
	}
	fmt.Println()
	type row struct {
		node int
		name string
		ipc  float64
		ipf  float64
	}
	var rows []row
	for i := range m.IPC {
		if w.Apps[i] == nil {
			continue
		}
		rows = append(rows, row{i, w.Apps[i].Name, m.IPC[i], m.IPF[i]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	fmt.Printf("%4s  %-16s %8s %10s\n", "node", "app", "IPC", "IPF")
	for _, r := range rows {
		fmt.Printf("%4d  %-16s %8.3f %10.1f\n", r.node, r.name, r.ipc, r.ipf)
	}
}
