package main

import "testing"

func TestBuildWorkloadCategory(t *testing.T) {
	w, err := buildWorkload("H", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 16 {
		t.Errorf("apps = %d, want 16", len(w.Apps))
	}
}

func TestBuildWorkloadUniform(t *testing.T) {
	w, err := buildWorkload("uniform:mcf", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Apps {
		if p == nil || p.Name != "mcf" {
			t.Fatal("uniform workload wrong")
		}
	}
}

func TestBuildWorkloadSingle(t *testing.T) {
	w, err := buildWorkload("single:gromacs", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, p := range w.Apps {
		if p != nil {
			active++
		}
	}
	if active != 1 {
		t.Errorf("single workload has %d active apps", active)
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	for _, spec := range []string{"ZZ", "uniform:nope", "single:nope"} {
		if _, err := buildWorkload(spec, 16, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
