// Command sweep runs the §6.4 parameter-sensitivity studies: it sweeps
// one controller parameter (or the epoch length) over a congested
// workload and prints throughput at each setting.
//
//	sweep -param alpha_starve
//	sweep -param epoch -cycles 300000
//	sweep -all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"nocsim/internal/exp"
)

func main() {
	var (
		param    = flag.String("param", "", "parameter to sweep: alpha_starve beta_starve gamma_starve alpha_throt beta_throt gamma_throt epoch")
		all      = flag.Bool("all", false, "sweep every parameter")
		cycles   = flag.Int64("cycles", 150_000, "cycles per run")
		seed     = flag.Uint64("seed", 42, "random seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "intra-simulation worker shards")
		parallel = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS)")
	)
	flag.Parse()

	sc := exp.DefaultScale()
	sc.Cycles = *cycles
	sc.Epoch = *cycles / 10
	sc.Seed = *seed
	sc.Workers = *workers
	sc.Parallel = *parallel

	run := func(id string) {
		d, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: no driver %q\n", id)
			os.Exit(1)
		}
		d(sc).Render(os.Stdout)
	}

	switch {
	case *all:
		run("sens")
		run("epoch")
	case *param == "epoch":
		run("epoch")
	case *param != "":
		r, ok := exp.SweepParam(*param, sc)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *param)
			os.Exit(1)
		}
		r.Render(os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "sweep: pass -param <name> or -all")
		os.Exit(2)
	}
}
