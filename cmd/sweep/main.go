// Command sweep runs the §6.4 parameter-sensitivity studies: it sweeps
// one controller parameter (or the epoch length) over a congested
// workload and prints throughput at each setting. With -server it
// instead submits a declarative parameter grid to a nocd daemon's
// sweep API and prints the aggregated points.
//
//	sweep -param alpha_starve
//	sweep -param epoch -cycles 300000
//	sweep -all
//	sweep -server http://host:8080 -grid "preset=baseline,controlled" -grid "seed=1,2,3"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"nocsim/internal/exp"
	"nocsim/internal/fleet"
	"nocsim/internal/runner"
	"nocsim/internal/snap"
)

// gridFlags collects repeated -grid "axis=v1,v2,..." declarations.
type gridFlags []fleet.Axis

func (g *gridFlags) String() string { return fmt.Sprintf("%d axes", len(*g)) }

func (g *gridFlags) Set(s string) error {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || name == "" || vals == "" {
		return fmt.Errorf("want axis=v1,v2,..., got %q", s)
	}
	ax := fleet.Axis{Name: strings.TrimSpace(name)}
	for _, tok := range strings.Split(vals, ",") {
		ax.Values = append(ax.Values, gridValue(strings.TrimSpace(tok)))
	}
	*g = append(*g, ax)
	return nil
}

// gridValue encodes one axis value token as JSON: numbers and booleans
// pass through, everything else becomes a string.
func gridValue(tok string) json.RawMessage {
	if tok == "true" || tok == "false" {
		return json.RawMessage(tok)
	}
	if _, err := strconv.ParseFloat(tok, 64); err == nil {
		return json.RawMessage(tok)
	}
	b, _ := json.Marshal(tok)
	return b
}

// guard runs fn, converting a harness panic (the runner panics on
// infrastructure failures) into an error so main exits non-zero with a
// message instead of a stack trace.
func guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	fn()
	return nil
}

func main() {
	var (
		param    = flag.String("param", "", "parameter to sweep: alpha_starve beta_starve gamma_starve alpha_throt beta_throt gamma_throt epoch")
		all      = flag.Bool("all", false, "sweep every parameter")
		cycles   = flag.Int64("cycles", 150_000, "cycles per run")
		seed     = flag.Uint64("seed", 42, "random seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "intra-simulation worker shards")
		parallel = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS)")
		warmup   = flag.Int64("warmup", 0, "shared uncontrolled warm-start prefix in cycles (0 = cold runs)")
		snapDir  = flag.String("snapdir", "", "checkpoint store directory for warm-start prefixes")
		snapCap  = flag.Int64("snapcap", 0, "checkpoint store byte cap, oldest evicted first (0 = unlimited)")

		server   = flag.String("server", "", "nocd daemon URL; enables grid mode (-grid)")
		preset   = flag.String("preset", "controlled", "grid base preset: baseline | controlled | static")
		category = flag.String("workload", "H", "grid base workload category")
		router   = flag.String("router", "", "grid base router: bless | buffered | hierring")
		mapping  = flag.String("mapping", "", "grid base mapping: xor | exp | pow")
		size     = flag.Int("size", 4, "grid base mesh edge length")
		label    = flag.String("label", "", "grid base label")
	)
	var grid gridFlags
	flag.Var(&grid, "grid", "axis=v1,v2,... to sweep (repeatable); requires -server")
	flag.Parse()

	if len(grid) > 0 && *server == "" {
		fmt.Fprintln(os.Stderr, "sweep: -grid requires -server")
		os.Exit(2)
	}
	if *server != "" {
		runGrid(*server, grid, fleet.SweepSpec{
			Scale: runner.ScaleSpec{Cycles: *cycles, Seed: *seed},
			Base: runner.RunSpec{
				Label: *label, Preset: *preset, Workload: *category,
				Router: *router, Mapping: *mapping, Width: *size, Height: *size,
			},
		})
		return
	}

	sc := exp.DefaultScale()
	sc.Cycles = *cycles
	sc.Epoch = *cycles / 10
	sc.Seed = *seed
	sc.Workers = *workers
	sc.Parallel = *parallel
	sc.Warmup = *warmup
	if *snapDir != "" {
		st, err := snap.NewStore(*snapDir, *snapCap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		sc.Snapshots = st
	}

	// Each sweep renders into a buffer and reaches stdout only once it
	// has fully succeeded: a failed run exits non-zero with a message,
	// never with a partial table.
	run := func(id string) {
		d, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: no driver %q\n", id)
			os.Exit(1)
		}
		var buf bytes.Buffer
		if err := guard(func() { d(sc).Render(&buf) }); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(buf.Bytes())
	}

	switch {
	case *all:
		run("sens")
		run("epoch")
	case *param == "epoch":
		run("epoch")
	case *param != "":
		var buf bytes.Buffer
		err := guard(func() {
			r, ok := exp.SweepParam(*param, sc)
			if !ok {
				fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *param)
				os.Exit(1)
			}
			r.Render(&buf)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(buf.Bytes())
	default:
		fmt.Fprintln(os.Stderr, "sweep: pass -param <name>, -all, or -server with -grid")
		os.Exit(2)
	}
}

// runGrid submits the grid to the daemon's sweep API and prints the
// aggregated points. The table renders into a buffer and reaches
// stdout only after the whole sweep has succeeded: any point failing
// terminally exits non-zero with a message and no partial output.
func runGrid(server string, grid gridFlags, spec fleet.SweepSpec) {
	if len(grid) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: grid mode needs at least one -grid axis")
		os.Exit(2)
	}
	spec.Axes = grid
	res, err := fleet.NewClient(server).Sweep(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "sweep %s: %d points (%d cached, %d fresh)\n",
		res.ID, len(res.Points), res.Cached, len(res.Points)-res.Cached)
	fmt.Fprintf(&buf, "%-44s %8s %8s %9s  %s\n", "point", "IPC/node", "util", "lat(cyc)", "counters")
	for _, pt := range res.Points {
		m := pt.Metrics
		hash := pt.CountersHash
		if len(hash) > 12 {
			hash = hash[:12]
		}
		fmt.Fprintf(&buf, "%-44s %8.3f %8.3f %9.1f  %s\n",
			pt.Label, m.ThroughputPerNode, m.NetUtilization, m.AvgNetLatency, hash)
	}
	os.Stdout.Write(buf.Bytes())
}
