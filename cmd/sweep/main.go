// Command sweep runs the §6.4 parameter-sensitivity studies: it sweeps
// one controller parameter (or the epoch length) over a congested
// workload and prints throughput at each setting.
//
//	sweep -param alpha_starve
//	sweep -param epoch -cycles 300000
//	sweep -all
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	"nocsim/internal/exp"
	"nocsim/internal/snap"
)

// guard runs fn, converting a harness panic (the runner panics on
// infrastructure failures) into an error so main exits non-zero with a
// message instead of a stack trace.
func guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	fn()
	return nil
}

func main() {
	var (
		param    = flag.String("param", "", "parameter to sweep: alpha_starve beta_starve gamma_starve alpha_throt beta_throt gamma_throt epoch")
		all      = flag.Bool("all", false, "sweep every parameter")
		cycles   = flag.Int64("cycles", 150_000, "cycles per run")
		seed     = flag.Uint64("seed", 42, "random seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "intra-simulation worker shards")
		parallel = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS)")
		warmup   = flag.Int64("warmup", 0, "shared uncontrolled warm-start prefix in cycles (0 = cold runs)")
		snapDir  = flag.String("snapdir", "", "checkpoint store directory for warm-start prefixes")
		snapCap  = flag.Int64("snapcap", 0, "checkpoint store byte cap, oldest evicted first (0 = unlimited)")
	)
	flag.Parse()

	sc := exp.DefaultScale()
	sc.Cycles = *cycles
	sc.Epoch = *cycles / 10
	sc.Seed = *seed
	sc.Workers = *workers
	sc.Parallel = *parallel
	sc.Warmup = *warmup
	if *snapDir != "" {
		st, err := snap.NewStore(*snapDir, *snapCap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		sc.Snapshots = st
	}

	// Each sweep renders into a buffer and reaches stdout only once it
	// has fully succeeded: a failed run exits non-zero with a message,
	// never with a partial table.
	run := func(id string) {
		d, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: no driver %q\n", id)
			os.Exit(1)
		}
		var buf bytes.Buffer
		if err := guard(func() { d(sc).Render(&buf) }); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(buf.Bytes())
	}

	switch {
	case *all:
		run("sens")
		run("epoch")
	case *param == "epoch":
		run("epoch")
	case *param != "":
		var buf bytes.Buffer
		err := guard(func() {
			r, ok := exp.SweepParam(*param, sc)
			if !ok {
				fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q\n", *param)
				os.Exit(1)
			}
			r.Render(&buf)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(buf.Bytes())
	default:
		fmt.Fprintln(os.Stderr, "sweep: pass -param <name> or -all")
		os.Exit(2)
	}
}
