// Benchmarks: one per table and figure of the paper's evaluation, plus
// the DESIGN.md ablations. Each benchmark runs the corresponding
// experiment driver end to end at a reduced scale and reports the
// headline quantity of that figure as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates (a scaled version of) the entire evaluation. Use
// cmd/experiments for full-scale runs and the complete series/rows.
package nocsim

import (
	"testing"

	"nocsim/internal/exp"
	"nocsim/internal/stats"
)

// benchScale keeps each driver in the seconds range. The shapes (who
// wins, signs of the gains) already hold at this scale; absolute
// magnitudes grow toward the paper's at larger -cycles.
func benchScale() exp.Scale {
	return exp.Scale{
		Cycles:    40_000,
		Epoch:     5_000,
		Workloads: 7,
		MaxNodes:  256,
		Workers:   2,
		Seed:      42,
	}
}

// runExp executes a registered experiment driver b.N times.
func runExp(b *testing.B, id string) *exp.Result {
	b.Helper()
	d, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	sc := benchScale()
	var r *exp.Result
	for i := 0; i < b.N; i++ {
		r = d(sc)
	}
	return r
}

func meanY(s exp.Series) float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return stats.Mean(ys)
}

// BenchmarkFig02a — network latency vs utilization (latency stays flat).
func BenchmarkFig02a(b *testing.B) {
	r := runExp(b, "fig2a")
	b.ReportMetric(meanY(r.Series[0]), "mean-latency-cycles")
}

// BenchmarkFig02b — starvation vs utilization (superlinear growth).
func BenchmarkFig02b(b *testing.B) {
	r := runExp(b, "fig2b")
	b.ReportMetric(meanY(r.Series[0]), "mean-starvation")
}

// BenchmarkFig02c — static throttling sweep (throughput peaks mid-sweep).
func BenchmarkFig02c(b *testing.B) {
	r := runExp(b, "fig2c")
	best, first := 0.0, r.Series[0].Points[0].Y
	for _, p := range r.Series[0].Points {
		if p.Y > best {
			best = p.Y
		}
	}
	b.ReportMetric(100*(best-first)/first, "best-static-gain-%")
}

// BenchmarkFig03 — baseline scaling: latency/starvation/IPC vs size.
func BenchmarkFig03(b *testing.B) {
	r := runExp(b, "fig3")
	for _, s := range r.Series {
		if s.Name == "ipc-per-node/H" {
			first := s.Points[0].Y
			last := s.Points[len(s.Points)-1].Y
			b.ReportMetric(100*(first-last)/first, "H-ipc-drop-%")
		}
	}
}

// BenchmarkFig04 — locality sensitivity (IPC falls as hops grow).
func BenchmarkFig04(b *testing.B) {
	r := runExp(b, "fig4")
	pts := r.Series[0].Points
	b.ReportMetric(pts[0].Y/pts[len(pts)-1].Y, "ipc-ratio-1hop-vs-16hop")
}

// BenchmarkFig05 — selective throttling of mcf vs gromacs.
func BenchmarkFig05(b *testing.B) {
	runExp(b, "fig5")
}

// BenchmarkFig06 — application phase behaviour (injection over time).
func BenchmarkFig06(b *testing.B) {
	runExp(b, "fig6")
}

// BenchmarkTable1 — per-application IPF measurement.
func BenchmarkTable1(b *testing.B) {
	r := runExp(b, "table1")
	b.ReportMetric(float64(len(r.Table.Rows)), "applications")
}

// BenchmarkFig07 — throughput-gain scatter (central vs baseline).
func BenchmarkFig07(b *testing.B) {
	r := runExp(b, "fig7")
	best := 0.0
	for _, p := range r.Series[0].Points {
		if p.Y > best {
			best = p.Y
		}
	}
	b.ReportMetric(best, "max-gain-%")
}

// BenchmarkFig08 — gain breakdown by workload category.
func BenchmarkFig08(b *testing.B) {
	runExp(b, "fig8")
}

// BenchmarkFig09 — starvation CDF with/without throttling.
func BenchmarkFig09(b *testing.B) {
	runExp(b, "fig9")
}

// BenchmarkFig10 — weighted-speedup improvement.
func BenchmarkFig10(b *testing.B) {
	r := runExp(b, "fig10")
	best := 0.0
	for _, p := range r.Series[0].Points {
		if p.Y > best {
			best = p.Y
		}
	}
	b.ReportMetric(best, "max-ws-gain-%")
}

// BenchmarkFig11 — (IPF1, IPF2) pair throughput-gain surface.
func BenchmarkFig11(b *testing.B) {
	runExp(b, "fig11")
}

// BenchmarkFig12 — (IPF1, IPF2) baseline-utilization surface.
func BenchmarkFig12(b *testing.B) {
	runExp(b, "fig12")
}

// BenchmarkFig13 — per-node throughput with scale, three architectures.
func BenchmarkFig13(b *testing.B) {
	r := runExp(b, "fig13")
	for _, s := range r.Series {
		if s.Name == "BLESS-Throttling" {
			b.ReportMetric(meanY(s), "throttled-ipc-per-node")
		}
	}
}

// BenchmarkFig14 — network latency with scale.
func BenchmarkFig14(b *testing.B) {
	runExp(b, "fig14")
}

// BenchmarkFig15 — network utilization with scale.
func BenchmarkFig15(b *testing.B) {
	runExp(b, "fig15")
}

// BenchmarkFig16 — power reduction with scale.
func BenchmarkFig16(b *testing.B) {
	r := runExp(b, "fig16")
	for _, s := range r.Series {
		if s.Name == "vs Buffered" {
			b.ReportMetric(meanY(s), "power-reduction-vs-buffered-%")
		}
	}
}

// BenchmarkSensitivity — the §6.4 parameter sweeps.
func BenchmarkSensitivity(b *testing.B) {
	runExp(b, "sens")
}

// BenchmarkEpochSweep — the §6.4 epoch-length sweep.
func BenchmarkEpochSweep(b *testing.B) {
	runExp(b, "epoch")
}

// BenchmarkDistributed — §6.6 central vs distributed coordination.
func BenchmarkDistributed(b *testing.B) {
	runExp(b, "dist")
}

// BenchmarkTorus — the §6.3 torus comparison.
func BenchmarkTorus(b *testing.B) {
	runExp(b, "torus")
}

// BenchmarkAblation — DESIGN.md's design-choice ablations (arbiter,
// congestion signal, application awareness).
func BenchmarkAblation(b *testing.B) {
	r := runExp(b, "ablate")
	b.ReportMetric(float64(len(r.Table.Rows)), "variants")
}

// BenchmarkLoadLatency — open-loop load-latency curves (substrate
// characterisation, BookSim/NOCulator-style).
func BenchmarkLoadLatency(b *testing.B) {
	runExp(b, "loadlat")
}

// BenchmarkAblationArbiter — Oldest-First vs random deflection
// arbitration (DESIGN.md ablation 1).
func BenchmarkAblationArbiter(b *testing.B) {
	runExp(b, "arbiter")
}

// BenchmarkMinBD — minimal side buffering between BLESS and the VC
// router ([22], cited extension).
func BenchmarkMinBD(b *testing.B) {
	runExp(b, "minbd")
}

// BenchmarkAdaptive — §7 traffic-engineering extension: congestion-aware
// productive-port selection vs strict XY.
func BenchmarkAdaptive(b *testing.B) {
	runExp(b, "adaptive")
}

// BenchmarkFairness — slowdown metrics with and without throttling
// (§6.2 "Fairness In Throttling", quantified).
func BenchmarkFairness(b *testing.B) {
	runExp(b, "fairness")
}

// BenchmarkWriteback — the write-traffic extension: dirty evictions as
// one-way packets, with and without the controller.
func BenchmarkWriteback(b *testing.B) {
	runExp(b, "wb")
}

// BenchmarkThreads — §7's multithreaded regional-traffic scenario:
// throttling + adaptive routing on thread-group hot spots.
func BenchmarkThreads(b *testing.B) {
	runExp(b, "threads")
}

// BenchmarkRings — the hierarchical ring interconnect [21] against the
// mesh fabrics, open loop.
func BenchmarkRings(b *testing.B) {
	runExp(b, "rings")
}
