// Package nocsim reproduces "On-Chip Networks from a Networking
// Perspective: Congestion and Scalability in Many-Core Interconnects"
// (Nychis, Fallin, Moscibroda, Mutlu, Seshan — SIGCOMM 2012) as a
// complete, from-scratch Go system:
//
//   - internal/noc/bless — the bufferless deflection-routed NoC (FLIT-BLESS)
//   - internal/noc/buffered — the virtual-channel buffered baseline
//   - internal/cpu, internal/cache, internal/trace — the closed-loop
//     CMP model (out-of-order cores, private L1s, calibrated traces)
//   - internal/core — the paper's contribution: application-aware,
//     starvation-driven source throttling (Algorithms 1-3)
//   - internal/exp — drivers regenerating every table and figure
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go exercise one experiment per
// published table/figure at a reduced scale; cmd/experiments runs them
// at any scale up to the paper's own.
package nocsim
