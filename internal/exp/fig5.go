package exp

import (
	"fmt"

	"nocsim/internal/app"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func init() {
	register("fig5", fig5)
	register("fig6", fig6)
}

// fig5 reproduces Figure 5: 8 instances each of mcf (memory-intensive)
// and gromacs (non-intensive) on a 4x4 mesh; statically throttle each
// application in turn by 90% and compare per-application and overall
// instruction throughput. The paper's key insight: throttling gromacs
// drops overall throughput ~9%, throttling mcf RAISES it ~18% while
// barely hurting mcf (-3%).
func fig5(sc Scale) *Result {
	mcf := app.MustByName("mcf")
	gro := app.MustByName("gromacs")
	w := workload.Checkerboard(mcf, gro, 4, 4)

	throttled := func(name string) runner.Option {
		rates := make([]float64, 16)
		for i, p := range w.Apps {
			if p.Name == name {
				rates[i] = 0.9
			}
		}
		return runner.WithStaticRates(rates)
	}
	plan := runner.NewPlan(sc)
	plan.Add("fig5/baseline", runner.Baseline(w, 4, 4, sc, runner.WithSeed(sc.Seed+500)), sc.Cycles)
	plan.Add("fig5/throttle-gromacs",
		runner.Baseline(w, 4, 4, sc, runner.WithSeed(sc.Seed+500), throttled("gromacs")), sc.Cycles)
	plan.Add("fig5/throttle-mcf",
		runner.Baseline(w, 4, 4, sc, runner.WithSeed(sc.Seed+500), throttled("mcf")), sc.Cycles)
	ms := plan.Execute()

	split := func(m sim.Metrics) (overall, mcfT, groT float64) {
		var nM, nG int
		for i, p := range w.Apps {
			switch p.Name {
			case "mcf":
				mcfT += m.IPC[i]
				nM++
			case "gromacs":
				groT += m.IPC[i]
				nG++
			}
		}
		return m.SystemThroughput / 16, mcfT / float64(nM), groT / float64(nG)
	}
	bo, bm, bg := split(ms[0])
	go_, gm, gg := split(ms[1])
	mo, mm, mg := split(ms[2])

	t := &Table{
		Header: []string{"config", "overall", "mcf", "gromacs"},
		Rows: [][]string{
			{"baseline", f2(bo), f2(bm), f2(bg)},
			{"throttle gromacs 90%", f2(go_), f2(gm), f2(gg)},
			{"throttle mcf 90%", f2(mo), f2(mm), f2(mg)},
		},
	}
	return &Result{
		ID:    "fig5",
		Title: "Throughput after selectively throttling applications (8x mcf + 8x gromacs, 4x4)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("throttling gromacs changes overall throughput by %+.1f%% (paper: -9%%)", 100*(go_-bo)/bo),
			fmt.Sprintf("throttling mcf changes overall throughput by %+.1f%% (paper: +18%%)", 100*(mo-bo)/bo),
			fmt.Sprintf("throttling mcf changes mcf's own throughput by %+.1f%% (paper: -3%%)", 100*(mm-bm)/bm),
			fmt.Sprintf("throttling mcf changes gromacs throughput by %+.1f%% (paper: +25%%)", 100*(mg-bg)/bg),
		},
		Runs: plan.Stats(),
	}
}

// fig6 reproduces Figure 6's phase behaviour: per-application injected
// traffic intensity over time, measured as flits injected per window
// while each application runs alone on a 4x4 mesh.
func fig6(sc Scale) *Result {
	names := []string{"mcf", "sphinx3", "gromacs", "bzip2"}
	window := sc.Cycles / 50
	if window < 1000 {
		window = 1000
	}
	r := &Result{
		ID:     "fig6",
		Title:  "Injected traffic intensity over time (application phase behaviour)",
		XLabel: "cycle",
		YLabel: "flits injected per window / window",
	}
	series := make([]Series, len(names))
	plan := runner.NewPlan(sc)
	for i, name := range names {
		i := i
		series[i].Name = name
		w := workload.Single(app.MustByName(name), 16, 5)
		var prev int64
		plan.AddRun(runner.Run{
			Label:  "fig6/" + name,
			Config: runner.Baseline(w, 4, 4, sc, runner.WithSeed(sc.Seed+600)),
			Cycles: sc.Cycles,
			Stride: window,
			Observe: func(s *sim.Sim) {
				inj := s.Network().Stats().FlitsInjected
				series[i].Points = append(series[i].Points, Point{
					X: float64(s.Cycle()),
					Y: float64(inj-prev) / float64(window),
				})
				prev = inj
			},
		})
	}
	plan.Execute()
	r.Series = series
	r.Runs = plan.Stats()
	r.Notes = append(r.Notes,
		"temporal variation in injection intensity reflects application phases (cf. Fig. 6)")
	return r
}
