package exp

import (
	"fmt"

	"nocsim/internal/app"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func init() {
	register("fig5", fig5)
	register("fig6", fig6)
}

// fig5 reproduces Figure 5: 8 instances each of mcf (memory-intensive)
// and gromacs (non-intensive) on a 4x4 mesh; statically throttle each
// application in turn by 90% and compare per-application and overall
// instruction throughput. The paper's key insight: throttling gromacs
// drops overall throughput ~9%, throttling mcf RAISES it ~18% while
// barely hurting mcf (-3%).
func fig5(sc Scale) *Result {
	mcf := app.MustByName("mcf")
	gro := app.MustByName("gromacs")
	w := workload.Checkerboard(mcf, gro, 4, 4)

	run := func(throttle string) (overall, mcfT, groT float64) {
		rates := make([]float64, 16)
		for i, p := range w.Apps {
			if p.Name == throttle {
				rates[i] = 0.9
			}
		}
		cfg := sim.Config{
			Apps:   w.Apps,
			Params: sc.params(),
			Seed:   sc.Seed + 500,
		}
		if throttle != "" {
			cfg.Controller = sim.StaticPerNode
			cfg.StaticRates = rates
		}
		s := sim.New(cfg)
		s.Run(sc.Cycles)
		m := s.Metrics()
		var nM, nG int
		for i, p := range w.Apps {
			switch p.Name {
			case "mcf":
				mcfT += m.IPC[i]
				nM++
			case "gromacs":
				groT += m.IPC[i]
				nG++
			}
		}
		return m.SystemThroughput / 16, mcfT / float64(nM), groT / float64(nG)
	}

	bo, bm, bg := run("")
	go_, gm, gg := run("gromacs")
	mo, mm, mg := run("mcf")

	t := &Table{
		Header: []string{"config", "overall", "mcf", "gromacs"},
		Rows: [][]string{
			{"baseline", f2(bo), f2(bm), f2(bg)},
			{"throttle gromacs 90%", f2(go_), f2(gm), f2(gg)},
			{"throttle mcf 90%", f2(mo), f2(mm), f2(mg)},
		},
	}
	return &Result{
		ID:    "fig5",
		Title: "Throughput after selectively throttling applications (8x mcf + 8x gromacs, 4x4)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("throttling gromacs changes overall throughput by %+.1f%% (paper: -9%%)", 100*(go_-bo)/bo),
			fmt.Sprintf("throttling mcf changes overall throughput by %+.1f%% (paper: +18%%)", 100*(mo-bo)/bo),
			fmt.Sprintf("throttling mcf changes mcf's own throughput by %+.1f%% (paper: -3%%)", 100*(mm-bm)/bm),
			fmt.Sprintf("throttling mcf changes gromacs throughput by %+.1f%% (paper: +25%%)", 100*(mg-bg)/bg),
		},
	}
}

// fig6 reproduces Figure 6's phase behaviour: per-application injected
// traffic intensity over time, measured as flits injected per window
// while each application runs alone on a 4x4 mesh.
func fig6(sc Scale) *Result {
	names := []string{"mcf", "sphinx3", "gromacs", "bzip2"}
	window := sc.Cycles / 50
	if window < 1000 {
		window = 1000
	}
	r := &Result{
		ID:     "fig6",
		Title:  "Injected traffic intensity over time (application phase behaviour)",
		XLabel: "cycle",
		YLabel: "flits injected per window / window",
	}
	for _, name := range names {
		w := workload.Single(app.MustByName(name), 16, 5)
		s := sim.New(sim.Config{Apps: w.Apps, Params: sc.params(), Seed: sc.Seed + 600})
		series := Series{Name: name}
		var prev int64
		for cyc := int64(0); cyc < sc.Cycles; cyc += window {
			s.Run(window)
			inj := s.Network().Stats().FlitsInjected
			series.Points = append(series.Points, Point{
				X: float64(cyc + window),
				Y: float64(inj-prev) / float64(window),
			})
			prev = inj
		}
		r.Series = append(r.Series, series)
	}
	r.Notes = append(r.Notes,
		"temporal variation in injection intensity reflects application phases (cf. Fig. 6)")
	return r
}
