package exp

import (
	"fmt"

	"nocsim/internal/app"
	"nocsim/internal/runner"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("fig11", fig11)
	register("fig12", fig12)
}

// ipfGrid is the decade grid of Fig. 11/12's axes.
var ipfGrid = []float64{1, 10, 100, 1000, 10000}

// pairPoint is one (IPF1, IPF2) cell of the surface.
type pairPoint struct {
	ipf1, ipf2 float64
	baseUtil   float64
	gain       float64 // % overall throughput change with control
}

// runPairGrid evaluates every (IPF1, IPF2) checkerboard pair on a 4x4
// mesh, baseline and controlled, as one parallel plan.
func runPairGrid(sc Scale) ([]pairPoint, []runner.Stat) {
	plan := runner.NewPlan(sc)
	var out []pairPoint
	for _, a := range ipfGrid {
		for _, b := range ipfGrid {
			pa := app.Synthetic(a, 0)
			pb := app.Synthetic(b, 0)
			w := workload.Checkerboard(pa, pb, 4, 4)
			plan.Add(fmt.Sprintf("pair/%g-%g/base", a, b), runner.Baseline(w, 4, 4, sc), sc.Cycles)
			plan.Add(fmt.Sprintf("pair/%g-%g/ctl", a, b), runner.Controlled(w, 4, 4, sc), sc.Cycles)
			out = append(out, pairPoint{ipf1: a, ipf2: b})
		}
	}
	ms := plan.Execute()
	for i := range out {
		base, ctl := ms[2*i], ms[2*i+1]
		out[i].baseUtil = base.NetUtilization
		out[i].gain = stats.PercentGain(base.SystemThroughput, ctl.SystemThroughput)
	}
	return out, plan.Stats()
}

func pairTable(points []pairPoint, y func(pairPoint) float64) *Table {
	t := &Table{Header: []string{"IPF1 \\ IPF2"}}
	for _, b := range ipfGrid {
		t.Header = append(t.Header, fmt.Sprintf("%g", b))
	}
	for _, a := range ipfGrid {
		row := []string{fmt.Sprintf("%g", a)}
		for _, b := range ipfGrid {
			for _, p := range points {
				if p.ipf1 == a && p.ipf2 == b {
					row = append(row, f2(y(p)))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fig11 reproduces Figure 11: percentage improvement in overall
// throughput when two applications of IPF1 and IPF2 share a 4x4 mesh in
// a checkerboard, under the mechanism. Gains appear when one side is
// intensive; crucially the high-IPF application is never unfairly hurt.
func fig11(sc Scale) *Result {
	points, runStats := runPairGrid(sc)
	worst := 0.0
	for _, p := range points {
		if p.gain < worst {
			worst = p.gain
		}
	}
	return &Result{
		ID:    "fig11",
		Title: "Throughput % improvement for (IPF1, IPF2) application pairs (4x4 checkerboard)",
		Table: pairTable(points, func(p pairPoint) float64 { return p.gain }),
		Notes: []string{
			"paper Fig.11: gains when one app is intensive and the other is not; no unfair degradation",
			fmt.Sprintf("worst cell %.1f%% (paper shows no significant negative corner)", worst),
		},
		Runs: runStats,
	}
}

// fig12 reproduces Figure 12: the corresponding baseline (un-throttled)
// network utilization surface — high only when at least one side is
// network-intensive.
func fig12(sc Scale) *Result {
	points, runStats := runPairGrid(sc)
	return &Result{
		ID:    "fig12",
		Title: "Baseline network utilization for (IPF1, IPF2) application pairs (4x4 checkerboard)",
		Table: pairTable(points, func(p pairPoint) float64 { return p.baseUtil }),
		Notes: []string{
			"paper Fig.12: utilization falls as either IPF rises; both high-IPF => idle network",
		},
		Runs: runStats,
	}
}
