package exp

import (
	"fmt"
	"sync"

	"nocsim/internal/power"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func init() {
	register("fig3", fig3)
	register("fig4", fig4)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
	register("fig16", fig16)
}

// meshSizes returns the square mesh edge lengths for the scaling
// studies: 16, 64, 256, 1024, 4096 cores, capped by the scale.
func meshSizes(sc Scale) []int {
	var out []int
	for _, k := range []int{4, 8, 16, 32, 64} {
		if k*k <= sc.MaxNodes {
			out = append(out, k)
		}
	}
	return out
}

// archRun is one (size, architecture) measurement of the Fig. 13-16
// comparison, on a high-intensity workload with exponential locality.
type archRun struct {
	nodes int
	m     sim.Metrics
	pwr   power.Report
}

type scalingData struct {
	bless, throttled, buffered []archRun
	stats                      []runner.Stat
}

var (
	scalingMu   sync.Mutex
	scalingMemo = map[string]*scalingData{}
)

// runScaling produces (and memoizes, per scale) the three-architecture
// scaling comparison that Figs. 13, 14, 15 and 16 all read. All
// (size, architecture) cells are declared in one plan, so the whole
// comparison costs max-of-runs wall clock.
func runScaling(sc Scale) *scalingData {
	key := fmt.Sprintf("%d/%d/%d/%d", sc.Cycles, sc.Epoch, sc.MaxNodes, sc.Seed)
	scalingMu.Lock()
	if d, ok := scalingMemo[key]; ok {
		scalingMu.Unlock()
		return d
	}
	scalingMu.Unlock()

	sizes := meshSizes(sc)
	cat, _ := workload.CategoryByName("H")
	plan := runner.NewPlan(sc)
	for _, k := range sizes {
		nodes := k * k
		w := workload.Generate(cat, nodes, sc.Seed+uint64(nodes))
		seed := runner.WithSeed(sc.Seed + uint64(nodes))
		locality := runner.WithMapping(sim.ExpMap, 1)
		plan.Add(fmt.Sprintf("scaling/%d/bless", nodes),
			runner.Baseline(w, k, k, sc, locality, seed), sc.Cycles)
		plan.Add(fmt.Sprintf("scaling/%d/throttled", nodes),
			runner.Controlled(w, k, k, sc, locality, seed), sc.Cycles)
		plan.Add(fmt.Sprintf("scaling/%d/buffered", nodes),
			runner.Baseline(w, k, k, sc, locality, seed, runner.WithRouter(sim.Buffered)), sc.Cycles)
	}
	ms := plan.Execute()

	d := &scalingData{stats: plan.Stats()}
	model := power.Default()
	for i, k := range sizes {
		nodes := k * k
		base, thr, buf := ms[3*i], ms[3*i+1], ms[3*i+2]
		d.bless = append(d.bless, archRun{nodes, base, model.Compute(base.Net, nodes, false)})
		d.throttled = append(d.throttled, archRun{nodes, thr, model.Compute(thr.Net, nodes, false)})
		d.buffered = append(d.buffered, archRun{nodes, buf, model.Compute(buf.Net, nodes, true)})
	}

	scalingMu.Lock()
	scalingMemo[key] = d
	scalingMu.Unlock()
	return d
}

func seriesOf(name string, runs []archRun, y func(archRun) float64) Series {
	s := Series{Name: name}
	for _, r := range runs {
		s.Points = append(s.Points, Point{X: float64(r.nodes), Y: y(r)})
	}
	return s
}

// fig3 reproduces Figures 3(a)-(c): on the baseline bufferless NoC with
// exponential locality (lambda=1), growing the CMP from 16 cores up
// raises latency and starvation and erodes per-node throughput for
// high-intensity workloads, while low-intensity workloads stay flat.
func fig3(sc Scale) *Result {
	r := &Result{
		ID:     "fig3",
		Title:  "Scaling behaviour of baseline BLESS with data locality (lambda=1)",
		XLabel: "number of cores",
		YLabel: "latency (cycles) / starvation rate / IPC per node",
	}
	sizes := meshSizes(sc)
	intensities := []string{"H", "L"}
	plan := runner.NewPlan(sc)
	for _, intensity := range intensities {
		cat, _ := workload.CategoryByName(intensity)
		for _, k := range sizes {
			nodes := k * k
			w := workload.Generate(cat, nodes, sc.Seed+uint64(nodes)*3)
			plan.Add(fmt.Sprintf("fig3/%s/%d", intensity, nodes),
				runner.Baseline(w, k, k, sc,
					runner.WithMapping(sim.ExpMap, 1),
					runner.WithSeed(sc.Seed+uint64(nodes)*3)), sc.Cycles)
		}
	}
	ms := plan.Execute()
	for ii, intensity := range intensities {
		lat := Series{Name: "net-latency/" + intensity}
		sta := Series{Name: "starvation/" + intensity}
		thr := Series{Name: "ipc-per-node/" + intensity}
		for ki, k := range sizes {
			nodes := k * k
			m := ms[ii*len(sizes)+ki]
			lat.Points = append(lat.Points, Point{X: float64(nodes), Y: m.AvgNetLatency})
			sta.Points = append(sta.Points, Point{X: float64(nodes), Y: m.StarvationRate})
			thr.Points = append(thr.Points, Point{X: float64(nodes), Y: m.ThroughputPerNode})
		}
		r.Series = append(r.Series, lat, sta, thr)
	}
	r.Runs = plan.Stats()
	r.Notes = append(r.Notes,
		"paper Fig.3: latency and starvation grow with size under high intensity despite fixed locality; per-node IPC drops")
	return r
}

// fig4 reproduces Figure 4: per-node throughput on a large mesh is
// highly sensitive to the degree of locality (mean hop distance 1..16).
func fig4(sc Scale) *Result {
	k := 64
	for k*k > sc.MaxNodes && k > 4 {
		k /= 2
	}
	nodes := k * k
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, nodes, sc.Seed+404)
	hopGrid := []float64{1, 2, 4, 8, 16}
	plan := runner.NewPlan(sc)
	for _, hops := range hopGrid {
		plan.Add(fmt.Sprintf("fig4/hops=%g", hops),
			runner.Baseline(w, k, k, sc,
				runner.WithMapping(sim.ExpMap, hops),
				runner.WithSeed(sc.Seed+404)), sc.Cycles)
	}
	ms := plan.Execute()
	s := Series{Name: fmt.Sprintf("%dx%d BLESS", k, k)}
	for i, hops := range hopGrid {
		s.Points = append(s.Points, Point{X: hops, Y: ms[i].ThroughputPerNode})
	}
	return &Result{
		ID:     "fig4",
		Title:  fmt.Sprintf("Sensitivity of per-node throughput to degree of locality (%dx%d)", k, k),
		XLabel: "average hop distance (1/lambda)",
		YLabel: "throughput (IPC/node)",
		Series: []Series{s},
		Notes:  []string{"paper Fig.4: performance is highly sensitive to locality"},
		Runs:   plan.Stats(),
	}
}

// fig13 reproduces Figure 13: per-node system throughput with scale for
// baseline BLESS, BLESS with congestion control, and the buffered NoC.
// Congestion control restores near-flat scaling, comparable to buffers.
func fig13(sc Scale) *Result {
	d := runScaling(sc)
	return &Result{
		ID:     "fig13",
		Title:  "Per-node system throughput with scale (H workload, lambda=1)",
		XLabel: "number of cores",
		YLabel: "throughput (IPC/node)",
		Series: []Series{
			seriesOf("Buffered", d.buffered, func(r archRun) float64 { return r.m.ThroughputPerNode }),
			seriesOf("BLESS-Throttling", d.throttled, func(r archRun) float64 { return r.m.ThroughputPerNode }),
			seriesOf("BLESS", d.bless, func(r archRun) float64 { return r.m.ThroughputPerNode }),
		},
		Notes: []string{"paper Fig.13: throttling restores essentially flat per-node throughput"},
		Runs:  d.stats,
	}
}

// fig14 reproduces Figure 14: average network latency with scale.
func fig14(sc Scale) *Result {
	d := runScaling(sc)
	return &Result{
		ID:     "fig14",
		Title:  "Network latency with scale (H workload, lambda=1)",
		XLabel: "number of cores",
		YLabel: "avg net latency (cycles)",
		Series: []Series{
			seriesOf("BLESS", d.bless, func(r archRun) float64 { return r.m.AvgNetLatency }),
			seriesOf("BLESS-Throttling", d.throttled, func(r archRun) float64 { return r.m.AvgNetLatency }),
			seriesOf("Buffered", d.buffered, func(r archRun) float64 { return r.m.AvgNetLatency }),
		},
		Notes: []string{"paper Fig.14: congestion control flattens the latency growth"},
		Runs:  d.stats,
	}
}

// fig15 reproduces Figure 15: network utilization with scale.
func fig15(sc Scale) *Result {
	d := runScaling(sc)
	return &Result{
		ID:     "fig15",
		Title:  "Network utilization with scale (H workload, lambda=1)",
		XLabel: "number of cores",
		YLabel: "network utilization",
		Series: []Series{
			seriesOf("BLESS", d.bless, func(r archRun) float64 { return r.m.NetUtilization }),
			seriesOf("BLESS-Throttling", d.throttled, func(r archRun) float64 { return r.m.NetUtilization }),
			seriesOf("Buffered", d.buffered, func(r archRun) float64 { return r.m.NetUtilization }),
		},
		Notes: []string{"paper Fig.15: throttling holds the network at an efficient operating point"},
		Runs:  d.stats,
	}
}

// fig16 reproduces Figure 16: percentage reduction in NoC power of the
// throttled bufferless network, relative to the buffered network and to
// baseline BLESS, as size grows.
func fig16(sc Scale) *Result {
	d := runScaling(sc)
	vsBuf := Series{Name: "vs Buffered"}
	vsBless := Series{Name: "vs baseline BLESS"}
	for i := range d.throttled {
		n := float64(d.throttled[i].nodes)
		vsBuf.Points = append(vsBuf.Points, Point{X: n, Y: power.Reduction(d.buffered[i].pwr, d.throttled[i].pwr)})
		vsBless.Points = append(vsBless.Points, Point{X: n, Y: power.Reduction(d.bless[i].pwr, d.throttled[i].pwr)})
	}
	return &Result{
		ID:     "fig16",
		Title:  "Reduction in NoC power consumption with scale (BLESS-Throttling)",
		XLabel: "number of cores",
		YLabel: "% reduction in power",
		Series: []Series{vsBuf, vsBless},
		Notes: []string{
			"paper Fig.16: up to ~19% vs buffered and ~15% vs baseline BLESS at large sizes",
		},
		Runs: d.stats,
	}
}
