package exp

import (
	"nocsim/internal/app"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("table1", table1)
	register("table2", table2)
}

// table1 re-measures Table 1: each application runs alone on a 4x4
// mesh; the measured per-epoch IPF samples give its mean and variance,
// to compare against the calibration targets (the paper's trace
// measurements). Each application is one run of a shared plan; the
// Observe hook harvests the epoch samples before the simulator is
// discarded.
func table1(sc Scale) *Result {
	type measure struct {
		sum    stats.Summary
		cumIPF float64
	}
	out := make([]measure, len(app.Table1))
	plan := runner.NewPlan(sc)
	for i, p := range app.Table1 {
		i := i
		w := workload.Single(p, 16, 5)
		plan.AddRun(runner.Run{
			Label: "table1/" + p.Name,
			Config: runner.Baseline(w, 4, 4, sc,
				runner.WithRecordEpochs(), runner.WithSeed(sc.Seed+1000)),
			Cycles: sc.Cycles,
			Observe: func(s *sim.Sim) {
				for _, smp := range s.Samples() {
					if smp.Node == 5 && smp.IPF > 0 {
						out[i].sum.Add(smp.IPF)
					}
				}
				out[i].cumIPF = s.Metrics().IPF[5]
			},
		})
	}
	plan.Execute()

	t := &Table{Header: []string{"application", "class", "IPF mean (paper)", "IPF mean (measured)", "IPF var (paper)", "IPF var (measured)"}}
	for i, p := range app.Table1 {
		measured := out[i].sum.Mean()
		if out[i].sum.N() == 0 {
			// Too few misses per epoch to sample: use the cumulative IPF.
			measured = out[i].cumIPF
		}
		t.Rows = append(t.Rows, []string{
			p.Name, p.Class().String(),
			f2(p.IPFMean), f2(measured),
			f1(p.IPFVar), f1(out[i].sum.Var()),
		})
	}
	return &Result{
		ID:    "table1",
		Title: "Average IPF values and variance for evaluated applications",
		Table: t,
		Notes: []string{
			"measured = per-epoch IPF samples of the app alone on a 4x4 mesh",
			"variance is reproduced where the two-phase model can reach it; see DESIGN.md",
		},
		Runs: plan.Stats(),
	}
}

// table2 prints the simulated system parameters (the paper's Table 2).
// These are configuration constants; the table documents what the
// simulator actually uses so divergence is impossible.
func table2(Scale) *Result {
	t := &Table{
		Header: []string{"parameter", "value"},
		Rows: [][]string{
			{"Network topology", "2D mesh, 4x4 or 8x8 size (scaling: to 64x64; torus variant)"},
			{"Routing algorithm", "FLIT-BLESS deflection routing, Oldest-First arbitration"},
			{"Router (Link) latency", "2 (1) cycles"},
			{"Core model", "Out-of-order"},
			{"Issue width", "3 insns/cycle, 1 mem insn/cycle"},
			{"Instruction window size", "128 instructions"},
			{"Cache block", "32 bytes"},
			{"L1 cache", "private 128KB, 4-way, LRU"},
			{"L2 cache", "shared, distributed, perfect"},
			{"L2 address mapping", "per-block interleaving, XOR mapping; randomized exponential for locality evaluations"},
			{"Request/reply packets", "1 flit / 4 flits"},
			{"Controller epoch T", "100k cycles (scaled proportionally in short runs)"},
			{"Starvation window W", "128 cycles"},
			{"alpha/beta/gamma (starve)", "0.40 / 0.00 / 0.70"},
			{"alpha/beta/gamma (throttle)", "0.90 / 0.20 / 0.75"},
		},
	}
	return &Result{ID: "table2", Title: "System parameters for evaluation", Table: t}
}
