package exp

import (
	"fmt"
	"sync"

	"nocsim/internal/app"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("fig7", fig7)
	register("fig8", fig8)
	register("fig9", fig9)
	register("fig10", fig10)
}

// gainRun holds one workload's baseline/controlled pair.
type gainRun struct {
	w        workload.Workload
	size     int // mesh edge
	base     sim.Metrics
	ctl      sim.Metrics
	baseStar float64 // workload-average starvation (baseline)
	ctlStar  float64
}

// gainData is the memoized §6.2 batch plus its run reports.
type gainData struct {
	runs  []gainRun
	stats []runner.Stat
}

var (
	gainMu   sync.Mutex
	gainMemo = map[string]*gainData{}
)

// runGainBatch runs the §6.2 batch: Workloads workloads, split between
// 4x4 and 8x8 (the paper: 700 16-core + 175 64-core), each on baseline
// BLESS and on BLESS-Throttling. Memoized per scale: Figs. 7-10 share it.
func runGainBatch(sc Scale) *gainData {
	key := fmt.Sprintf("%d/%d/%d/%d", sc.Cycles, sc.Epoch, sc.Workloads, sc.Seed)
	gainMu.Lock()
	if g, ok := gainMemo[key]; ok {
		gainMu.Unlock()
		return g
	}
	gainMu.Unlock()

	n16 := sc.Workloads * 4 / 5 // the paper's 4:1 split of 16- vs 64-core
	if n16 < 1 {
		n16 = 1
	}
	var runs []gainRun
	batch16 := workload.Batch(n16, 16, sc.Seed)
	batch64 := workload.Batch(sc.Workloads-n16, 64, sc.Seed+777)
	for _, w := range batch16 {
		runs = append(runs, gainRun{w: w, size: 4})
	}
	for _, w := range batch64 {
		runs = append(runs, gainRun{w: w, size: 8})
	}
	plan := runner.NewPlan(sc)
	for i := range runs {
		r := &runs[i]
		plan.Add(fmt.Sprintf("gain/w%03d/base", i), runner.Baseline(r.w, r.size, r.size, sc), sc.Cycles)
		plan.Add(fmt.Sprintf("gain/w%03d/ctl", i), runner.Controlled(r.w, r.size, r.size, sc), sc.Cycles)
	}
	ms := plan.Execute()
	for i := range runs {
		r := &runs[i]
		r.base, r.ctl = ms[2*i], ms[2*i+1]
		r.baseStar = r.base.StarvationRate
		r.ctlStar = r.ctl.StarvationRate
	}
	g := &gainData{runs: runs, stats: plan.Stats()}
	gainMu.Lock()
	gainMemo[key] = g
	gainMu.Unlock()
	return g
}

// fig7 reproduces Figure 7: per-workload percentage improvement in
// overall system throughput (Central vs baseline), scattered against
// the workload's baseline network utilization. Gains concentrate in
// congested workloads (paper: up to 27.6%, avg 14.7% above 0.7 util).
func fig7(sc Scale) *Result {
	g := runGainBatch(sc)
	s := Series{Name: "4x4 and 8x8 workloads"}
	var congested []float64
	best := 0.0
	for _, r := range g.runs {
		gain := stats.PercentGain(r.base.SystemThroughput, r.ctl.SystemThroughput)
		s.Points = append(s.Points, Point{X: r.base.NetUtilization, Y: gain})
		if r.base.NetUtilization > 0.7 {
			congested = append(congested, gain)
		}
		if gain > best {
			best = gain
		}
	}
	return &Result{
		ID:     "fig7",
		Title:  "Improvement in overall system throughput (BLESS-Throttling vs BLESS)",
		XLabel: "baseline average network utilization",
		YLabel: "% improvement",
		Series: []Series{s},
		Notes: []string{
			fmt.Sprintf("max improvement %.1f%% (paper: 27.6%%)", best),
			fmt.Sprintf("average over congested (util>0.7) workloads %.1f%% (paper: 14.7%%)", stats.Mean(congested)),
		},
		Runs: g.stats,
	}
}

// fig8 reproduces Figure 8: min/avg/max throughput improvement per
// workload category, for 4x4 and 8x8 separately.
func fig8(sc Scale) *Result {
	g := runGainBatch(sc)
	t := &Table{Header: []string{"category", "mesh", "min %", "avg %", "max %", "n"}}
	cats := append([]string{"All"}, catNames()...)
	for _, cat := range cats {
		for _, size := range []int{4, 8} {
			var gains []float64
			for _, r := range g.runs {
				if r.size != size {
					continue
				}
				if cat != "All" && r.w.Category != cat {
					continue
				}
				gains = append(gains, stats.PercentGain(r.base.SystemThroughput, r.ctl.SystemThroughput))
			}
			if len(gains) == 0 {
				continue
			}
			min, avg, max := stats.MinAvgMax(gains)
			t.Rows = append(t.Rows, []string{
				cat, fmt.Sprintf("%dx%d", size, size),
				f1(min), f1(avg), f1(max), fmt.Sprint(len(gains)),
			})
		}
	}
	return &Result{
		ID:    "fig8",
		Title: "System throughput improvement breakdown by workload category",
		Table: t,
		Notes: []string{
			"paper Fig.8: largest gains for H and HM categories; ~0 for L and ML (network adequately provisioned)",
		},
		Runs: g.stats,
	}
}

func catNames() []string {
	var out []string
	for _, c := range workload.Categories {
		out = append(out, c.Name)
	}
	return out
}

// fig9 reproduces Figure 9: the CDF of workload-average starvation
// rates over congested workloads (baseline utilization > 0.6), with and
// without the mechanism.
func fig9(sc Scale) *Result {
	g := runGainBatch(sc)
	var base, ctl stats.CDF
	for _, r := range g.runs {
		if r.base.NetUtilization <= 0.6 {
			continue
		}
		base.Add(r.baseStar)
		ctl.Add(r.ctlStar)
	}
	mk := func(name string, c *stats.CDF) Series {
		s := Series{Name: name}
		for _, p := range c.Points(20) {
			s.Points = append(s.Points, Point{X: p[0], Y: p[1]})
		}
		return s
	}
	return &Result{
		ID:     "fig9",
		Title:  "CDF of average starvation rates (congested workloads, baseline util > 0.6)",
		XLabel: "average starvation rate",
		YLabel: "CDF",
		Series: []Series{mk("BLESS-Throttling", &ctl), mk("BLESS", &base)},
		Notes: []string{
			fmt.Sprintf("median starvation: baseline %.3f vs throttled %.3f (the paper's CDF shifts left the same way)",
				base.Quantile(0.5), ctl.Quantile(0.5)),
			fmt.Sprintf("P90 starvation: baseline %.3f vs throttled %.3f", base.Quantile(0.9), ctl.Quantile(0.9)),
		},
		Runs: g.stats,
	}
}

// aloneMemo caches each application's IPC running alone at the centre
// of the given mesh, keyed per (app, size, scale).
var (
	aloneMu   sync.Mutex
	aloneMemo = map[string]float64{}
)

func aloneKey(name string, size int, sc Scale) string {
	return fmt.Sprintf("%s/%d/%d/%d", name, size, sc.Cycles, sc.Seed)
}

// aloneIPCs returns, for each node of w's assignment, the IPC of that
// node's application running alone at the centre of a size x size mesh.
// Uncached applications are simulated as one parallel plan; results are
// memoized across workloads and drivers.
func aloneIPCs(w workload.Workload, size int, sc Scale) []float64 {
	// Collect the applications this workload needs but the memo lacks,
	// deduplicated in first-appearance order for a deterministic plan.
	var missing []app.Profile
	seen := map[string]bool{}
	aloneMu.Lock()
	for _, p := range w.Apps {
		if p == nil || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if _, ok := aloneMemo[aloneKey(p.Name, size, sc)]; !ok {
			missing = append(missing, *p)
		}
	}
	aloneMu.Unlock()

	if len(missing) > 0 {
		pos := size*size/2 + size/2
		plan := runner.NewPlan(sc)
		for _, p := range missing {
			ws := workload.Single(p, size*size, pos)
			plan.Add(fmt.Sprintf("alone/%s/%dx%d", p.Name, size, size),
				runner.Baseline(ws, size, size, sc, runner.WithSeed(sc.Seed+900)), sc.Cycles)
		}
		ms := plan.Execute()
		aloneMu.Lock()
		for i, p := range missing {
			aloneMemo[aloneKey(p.Name, size, sc)] = ms[i].IPC[pos]
		}
		aloneMu.Unlock()
	}

	alone := make([]float64, len(w.Apps))
	aloneMu.Lock()
	for i, p := range w.Apps {
		if p != nil {
			alone[i] = aloneMemo[aloneKey(p.Name, size, sc)]
		}
	}
	aloneMu.Unlock()
	return alone
}

// fig10 reproduces Figure 10: weighted-speedup improvement scattered
// against baseline utilization. WS = sum_i IPC_shared,i / IPC_alone,i;
// improving it shows the mechanism is not gaming raw throughput by
// starving slow applications (§6.2).
func fig10(sc Scale) *Result {
	g := runGainBatch(sc)
	s := Series{Name: "4x4 and 8x8 workloads"}
	best := 0.0
	for _, r := range g.runs {
		alone := aloneIPCs(r.w, r.size, sc)
		wsBase := sim.WeightedSpeedup(r.base.IPC, alone)
		wsCtl := sim.WeightedSpeedup(r.ctl.IPC, alone)
		gain := stats.PercentGain(wsBase, wsCtl)
		s.Points = append(s.Points, Point{X: r.base.NetUtilization, Y: gain})
		if gain > best {
			best = gain
		}
	}
	return &Result{
		ID:     "fig10",
		Title:  "Improvement in weighted speedup (BLESS-Throttling vs BLESS)",
		XLabel: "baseline average network utilization",
		YLabel: "WS % improvement",
		Series: []Series{s},
		Notes: []string{
			fmt.Sprintf("max WS improvement %.1f%% (paper: 17.2%%/18.2%% on 4x4/8x8)", best),
		},
		Runs: g.stats,
	}
}
