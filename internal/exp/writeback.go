package exp

import (
	"fmt"

	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("wb", writebackStudy)
}

// writebackStudy measures the write-traffic extension: with stores
// dirtying L1 lines and dirty evictions travelling to their home slice
// as one-way packets, how much extra load does write-back traffic add,
// and does the congestion controller still deliver its gains on top of
// it? (The paper's traffic model is request/reply only; this realises
// the cache-coherence-protocol traffic its §2.1 alludes to.)
func writebackStudy(sc Scale) *Result {
	t := &Table{Header: []string{
		"config", "IPC sum", "utilization", "writebacks", "flits injected",
	}}
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, 16, sc.Seed+800)
	var baseOff, baseOn, ctlOn float64
	run := func(name string, wb bool, ctl sim.ControllerKind) sim.Metrics {
		s := sim.New(sim.Config{
			Apps:       w.Apps,
			Writebacks: wb,
			Controller: ctl,
			Params:     sc.params(),
			Seed:       sc.Seed ^ w.Seed,
		})
		s.Run(sc.Cycles)
		m := s.Metrics()
		t.Rows = append(t.Rows, []string{
			name, f2(m.SystemThroughput), f2(m.NetUtilization),
			fmt.Sprint(m.Writebacks), fmt.Sprint(m.Net.FlitsInjected),
		})
		return m
	}
	baseOff = run("request/reply only", false, sim.NoControl).SystemThroughput
	baseOn = run("with writebacks", true, sim.NoControl).SystemThroughput
	ctlOn = run("writebacks + BLESS-Throttling", true, sim.Central).SystemThroughput
	return &Result{
		ID:    "wb",
		Title: "Write-back traffic extension (H workload, 4x4)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("write traffic costs %.1f%% throughput; throttling recovers %+.1f%% on top",
				-stats.PercentGain(baseOff, baseOn), stats.PercentGain(baseOn, ctlOn)),
			"writebacks are throttled like requests (application-generated traffic); replies still bypass",
		},
	}
}
