package exp

import (
	"fmt"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("wb", writebackStudy)
}

// writebackStudy measures the write-traffic extension: with stores
// dirtying L1 lines and dirty evictions travelling to their home slice
// as one-way packets, how much extra load does write-back traffic add,
// and does the congestion controller still deliver its gains on top of
// it? (The paper's traffic model is request/reply only; this realises
// the cache-coherence-protocol traffic its §2.1 alludes to.)
func writebackStudy(sc Scale) *Result {
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, 16, sc.Seed+800)
	variants := []struct {
		name string
		cfg  sim.Config
	}{
		{"request/reply only", runner.Baseline(w, 4, 4, sc)},
		{"with writebacks", runner.Baseline(w, 4, 4, sc, runner.WithWritebacks())},
		{"writebacks + BLESS-Throttling", runner.Controlled(w, 4, 4, sc, runner.WithWritebacks())},
	}
	plan := runner.NewPlan(sc)
	for i, v := range variants {
		plan.Add(fmt.Sprintf("wb/%d", i), v.cfg, sc.Cycles)
	}
	ms := plan.Execute()

	t := &Table{Header: []string{
		"config", "IPC sum", "utilization", "writebacks", "flits injected",
	}}
	for i, v := range variants {
		m := ms[i]
		t.Rows = append(t.Rows, []string{
			v.name, f2(m.SystemThroughput), f2(m.NetUtilization),
			fmt.Sprint(m.Writebacks), fmt.Sprint(m.Net.FlitsInjected),
		})
	}
	baseOff := ms[0].SystemThroughput
	baseOn := ms[1].SystemThroughput
	ctlOn := ms[2].SystemThroughput
	return &Result{
		ID:    "wb",
		Title: "Write-back traffic extension (H workload, 4x4)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("write traffic costs %.1f%% throughput; throttling recovers %+.1f%% on top",
				-stats.PercentGain(baseOff, baseOn), stats.PercentGain(baseOn, ctlOn)),
			"writebacks are throttled like requests (application-generated traffic); replies still bypass",
		},
		Runs: plan.Stats(),
	}
}
