package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestParallelismInvariance is the harness's core contract: a driver's
// rendered Result — text and JSON — is byte-identical no matter how
// many simulations the executor keeps in flight. fig2c is the probe
// because it is multi-run (10 simulations) and unmemoized, so both
// invocations genuinely re-execute.
func TestParallelismInvariance(t *testing.T) {
	render := func(parallel int) (text, js []byte) {
		sc := tinyScale()
		sc.Cycles = 10_000
		sc.Epoch = 2_000
		sc.Parallel = parallel
		d, ok := Lookup("fig2c")
		if !ok {
			t.Fatal("fig2c missing")
		}
		r := d(sc)
		var buf bytes.Buffer
		r.Render(&buf)
		j, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), j
	}

	text1, js1 := render(1)
	text8, js8 := render(8)
	if !bytes.Equal(text1, text8) {
		t.Errorf("rendered text differs between parallel=1 and parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("rendered JSON differs between parallel=1 and parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", js1, js8)
	}
}
