package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

// TestParallelismInvariance is the harness's core contract: a driver's
// rendered Result — text and JSON — is byte-identical no matter how
// many simulations the executor keeps in flight. fig2c is the probe
// because it is multi-run (10 simulations) and unmemoized, so both
// invocations genuinely re-execute.
func TestParallelismInvariance(t *testing.T) {
	render := func(parallel int) (text, js []byte) {
		sc := tinyScale()
		sc.Cycles = 10_000
		sc.Epoch = 2_000
		sc.Parallel = parallel
		d, ok := Lookup("fig2c")
		if !ok {
			t.Fatal("fig2c missing")
		}
		r := d(sc)
		var buf bytes.Buffer
		r.Render(&buf)
		j, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), j
	}

	text1, js1 := render(1)
	text8, js8 := render(8)
	if !bytes.Equal(text1, text8) {
		t.Errorf("rendered text differs between parallel=1 and parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", text1, text8)
	}
	if !bytes.Equal(js1, js8) {
		t.Errorf("rendered JSON differs between parallel=1 and parallel=8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", js1, js8)
	}
}

// TestWorkerInvarianceAcrossFabrics pins the execution engine's
// determinism contract on every fabric variant with a distinct hot
// path: metrics must be byte-identical between a fully sequential run
// (Parallel=1, Workers=1) and a fully sharded one (Parallel=8,
// Workers=8). The 16x16 mesh crosses every sharding gate — the sim
// node loop (>= 256 nodes), the bless/buffered shard floor (>= 4
// nodes/worker), and the hierring group floor (>= 1 ring/worker) — so
// the parallel path genuinely executes.
func TestWorkerInvarianceAcrossFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("ten 256-node simulations")
	}
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 256, 7)
	variants := []struct {
		name string
		opts []runner.Option
	}{
		{"bless", nil},
		{"bless-sidebuffer", []runner.Option{runner.WithSideBuffer(4)}},
		{"bless-adaptive", []runner.Option{runner.WithAdaptive()}},
		{"buffered", []runner.Option{runner.WithRouter(sim.Buffered)}},
		{"hierring", []runner.Option{runner.WithRingGroup(8)}},
	}
	run := func(parallel, workers int) ([]sim.Metrics, []byte) {
		sc := tinyScale()
		sc.Parallel = parallel
		sc.Workers = workers
		plan := runner.NewPlan(sc)
		for _, v := range variants {
			opts := append([]runner.Option{runner.WithWorkers(workers)}, v.opts...)
			plan.Add(v.name, runner.Baseline(w, 16, 16, sc, opts...), 1_500)
		}
		ms := plan.Execute()
		js, err := json.MarshalIndent(ms, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return ms, js
	}
	seq, seqJS := run(1, 1)
	par, parJS := run(8, 8)
	if !bytes.Equal(seqJS, parJS) {
		for i := range variants {
			a, _ := json.Marshal(seq[i])
			b, _ := json.Marshal(par[i])
			if !bytes.Equal(a, b) {
				t.Errorf("%s: metrics differ between (parallel=1, workers=1) and (parallel=8, workers=8):\nseq: %s\npar: %s",
					variants[i].name, a, b)
			}
		}
	}
}
