package exp

import (
	"fmt"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/runner"
	"nocsim/internal/topology"
	"nocsim/internal/traffic"
)

func init() {
	register("loadlat", loadLatency)
	register("arbiter", arbiterAblation)
	register("minbd", minbdComparison)
	register("rings", ringComparison)
}

var sweepRates = []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}

func sweepCycles(sc Scale) (warmup, measure int64) {
	measure = sc.Cycles / 10
	if measure < 5000 {
		measure = 5000
	}
	return measure / 2, measure
}

// sweepJob is one open-loop load-latency curve: a fabric constructor, a
// pattern, and the rate grid to sweep.
type sweepJob struct {
	name  string
	mk    func() noc.Network
	pat   func(noc.Network) traffic.Pattern
	rates []float64
}

// runSweeps evaluates every curve concurrently under the scale's worker
// pool (each traffic.Sweep is itself a serial sweep over rates) and
// appends one Series per job, in job order. The raw curves come back so
// callers can derive saturation notes.
func runSweeps(r *Result, sc Scale, jobs []sweepJob) [][]traffic.LoadPoint {
	warm, meas := sweepCycles(sc)
	curves := runner.Map(sc, len(jobs), func(i int) []traffic.LoadPoint {
		j := jobs[i]
		return traffic.Sweep(j.mk, j.pat, j.rates, 1, warm, meas, sc.Seed)
	})
	for i, pts := range curves {
		s := Series{Name: jobs[i].name}
		for _, p := range pts {
			s.Points = append(s.Points, Point{X: p.Offered, Y: p.Latency})
		}
		r.Series = append(r.Series, s)
	}
	return curves
}

func uniformPat(n noc.Network) traffic.Pattern {
	return traffic.Uniform{Nodes: n.Topology().Nodes()}
}

// loadLatency characterises the two router architectures open-loop, the
// way standalone NoC simulators (BookSim, NOCulator) do: average packet
// latency against offered load for the classic synthetic patterns. It
// is the substrate-level counterpart of Fig. 2(a): bufferless latency
// stays low until admission saturates, then queueing at injection —
// not in-network latency — explodes.
func loadLatency(sc Scale) *Result {
	top := func() *topology.Topology { return topology.NewSquare(topology.Mesh, 8) }
	r := &Result{
		ID:     "loadlat",
		Title:  "Open-loop load-latency curves (8x8, 1-flit packets)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	patterns := []struct {
		name string
		pat  func(noc.Network) traffic.Pattern
	}{
		{"uniform", uniformPat},
		{"transpose", func(n noc.Network) traffic.Pattern { return traffic.Transpose{Top: n.Topology()} }},
		{"hotspot", func(n noc.Network) traffic.Pattern {
			return traffic.Hotspot{Nodes: n.Topology().Nodes(), Hot: 27, Frac: 0.1}
		}},
	}
	var jobs []sweepJob
	for _, p := range patterns {
		jobs = append(jobs,
			sweepJob{"BLESS/" + p.name,
				func() noc.Network { return bless.New(bless.Config{Topology: top()}) },
				p.pat, sweepRates},
			sweepJob{"Buffered/" + p.name,
				func() noc.Network { return buffered.New(buffered.Config{Topology: top()}) },
				p.pat, sweepRates})
	}
	curves := runSweeps(r, sc, jobs)
	for i, p := range patterns {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s saturation (latency>60): BLESS %.2f vs Buffered %.2f flits/node/cycle",
			p.name,
			traffic.Saturation(curves[2*i], 60),
			traffic.Saturation(curves[2*i+1], 60)))
	}
	return r
}

// ringComparison pits the bufferless hierarchical ring interconnect
// ([21], local rings of 8 joined by a global ring) against the mesh
// fabrics open-loop. Rings are far cheaper (no routing or arbitration
// at all) but their bisection is one global ring: saturation comes much
// earlier, which is exactly the trade-off the paper's related work
// discusses.
func ringComparison(sc Scale) *Result {
	r := &Result{
		ID:     "rings",
		Title:  "Hierarchical ring [21] vs mesh fabrics (64 nodes, uniform, open loop)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	rates := []float64{0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25, 0.3}
	jobs := []sweepJob{
		{"HierRing-8", func() noc.Network {
			return hierring.New(hierring.Config{Nodes: 64, GroupSize: 8})
		}, uniformPat, rates},
		{"BLESS-mesh", func() noc.Network {
			return bless.New(bless.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		}, uniformPat, rates},
		{"Buffered-mesh", func() noc.Network {
			return buffered.New(buffered.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		}, uniformPat, rates},
	}
	curves := runSweeps(r, sc, jobs)
	for i, j := range jobs {
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f flits/node/cycle",
			j.name, traffic.Saturation(curves[i], 80)))
	}
	return r
}

// minbdComparison positions MinBD-style minimal buffering (a 4-flit
// side buffer per router, [22]) between pure BLESS and the full VC
// router, open-loop: the side buffer absorbs would-be deflections and
// pushes saturation toward the buffered network at a fraction of the
// buffer cost.
func minbdComparison(sc Scale) *Result {
	r := &Result{
		ID:     "minbd",
		Title:  "Minimal buffering (MinBD [22]) between BLESS and the VC router (8x8, uniform)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	jobs := []sweepJob{
		{"BLESS", func() noc.Network {
			return bless.New(bless.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		}, uniformPat, sweepRates},
		{"MinBD-4", func() noc.Network {
			return bless.New(bless.Config{Topology: topology.NewSquare(topology.Mesh, 8), SideBuffer: 4})
		}, uniformPat, sweepRates},
		{"Buffered", func() noc.Network {
			return buffered.New(buffered.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		}, uniformPat, sweepRates},
	}
	curves := runSweeps(r, sc, jobs)
	for i, j := range jobs {
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f flits/node/cycle",
			j.name, traffic.Saturation(curves[i], 60)))
	}
	return r
}

// arbiterAblation compares Oldest-First against random deflection
// arbitration open-loop: the age-based total order both guarantees
// livelock freedom and reduces worst-case latency near saturation.
func arbiterAblation(sc Scale) *Result {
	mk := func(arb bless.Arbiter) func() noc.Network {
		return func() noc.Network {
			return bless.New(bless.Config{
				Topology: topology.NewSquare(topology.Mesh, 8),
				Arb:      arb,
				Seed:     sc.Seed,
			})
		}
	}
	r := &Result{
		ID:     "arbiter",
		Title:  "Deflection arbitration ablation: Oldest-First vs random (8x8, uniform)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	jobs := []sweepJob{
		{"oldest-first", mk(bless.OldestFirst), uniformPat, sweepRates},
		{"random", mk(bless.Random), uniformPat, sweepRates},
	}
	curves := runSweeps(r, sc, jobs)
	for i, j := range jobs {
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f flits/node/cycle",
			j.name, traffic.Saturation(curves[i], 60)))
	}
	return r
}
