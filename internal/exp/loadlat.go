package exp

import (
	"fmt"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/topology"
	"nocsim/internal/traffic"
)

func init() {
	register("loadlat", loadLatency)
	register("arbiter", arbiterAblation)
	register("minbd", minbdComparison)
	register("rings", ringComparison)
}

// ringComparison pits the bufferless hierarchical ring interconnect
// ([21], local rings of 8 joined by a global ring) against the mesh
// fabrics open-loop. Rings are far cheaper (no routing or arbitration
// at all) but their bisection is one global ring: saturation comes much
// earlier, which is exactly the trade-off the paper's related work
// discusses.
func ringComparison(sc Scale) *Result {
	warm, meas := sweepCycles(sc)
	pat := func(n noc.Network) traffic.Pattern {
		return traffic.Uniform{Nodes: n.Topology().Nodes()}
	}
	mk := map[string]func() noc.Network{
		"HierRing-8": func() noc.Network {
			return hierring.New(hierring.Config{Nodes: 64, GroupSize: 8})
		},
		"BLESS-mesh": func() noc.Network {
			return bless.New(bless.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		},
		"Buffered-mesh": func() noc.Network {
			return buffered.New(buffered.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		},
	}
	r := &Result{
		ID:     "rings",
		Title:  "Hierarchical ring [21] vs mesh fabrics (64 nodes, uniform, open loop)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	rates := []float64{0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25, 0.3}
	for _, name := range []string{"HierRing-8", "BLESS-mesh", "Buffered-mesh"} {
		pts := traffic.Sweep(mk[name], pat, rates, 1, warm, meas, sc.Seed)
		s := Series{Name: name}
		for _, p := range pts {
			s.Points = append(s.Points, Point{X: p.Offered, Y: p.Latency})
		}
		r.Series = append(r.Series, s)
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f flits/node/cycle",
			name, traffic.Saturation(pts, 80)))
	}
	return r
}

var sweepRates = []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}

func sweepCycles(sc Scale) (warmup, measure int64) {
	measure = sc.Cycles / 10
	if measure < 5000 {
		measure = 5000
	}
	return measure / 2, measure
}

// loadLatency characterises the two router architectures open-loop, the
// way standalone NoC simulators (BookSim, NOCulator) do: average packet
// latency against offered load for the classic synthetic patterns. It
// is the substrate-level counterpart of Fig. 2(a): bufferless latency
// stays low until admission saturates, then queueing at injection —
// not in-network latency — explodes.
func loadLatency(sc Scale) *Result {
	warm, meas := sweepCycles(sc)
	top := func() *topology.Topology { return topology.NewSquare(topology.Mesh, 8) }
	r := &Result{
		ID:     "loadlat",
		Title:  "Open-loop load-latency curves (8x8, 1-flit packets)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	patterns := []func(noc.Network) traffic.Pattern{
		func(n noc.Network) traffic.Pattern { return traffic.Uniform{Nodes: n.Topology().Nodes()} },
		func(n noc.Network) traffic.Pattern { return traffic.Transpose{Top: n.Topology()} },
		func(n noc.Network) traffic.Pattern {
			return traffic.Hotspot{Nodes: n.Topology().Nodes(), Hot: 27, Frac: 0.1}
		},
	}
	names := []string{"uniform", "transpose", "hotspot"}
	for i, mkPat := range patterns {
		blessPts := traffic.Sweep(
			func() noc.Network { return bless.New(bless.Config{Topology: top()}) },
			mkPat, sweepRates, 1, warm, meas, sc.Seed)
		bufPts := traffic.Sweep(
			func() noc.Network { return buffered.New(buffered.Config{Topology: top()}) },
			mkPat, sweepRates, 1, warm, meas, sc.Seed)
		bs := Series{Name: "BLESS/" + names[i]}
		fs := Series{Name: "Buffered/" + names[i]}
		for _, p := range blessPts {
			bs.Points = append(bs.Points, Point{X: p.Offered, Y: p.Latency})
		}
		for _, p := range bufPts {
			fs.Points = append(fs.Points, Point{X: p.Offered, Y: p.Latency})
		}
		r.Series = append(r.Series, bs, fs)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s saturation (latency>60): BLESS %.2f vs Buffered %.2f flits/node/cycle",
			names[i],
			traffic.Saturation(blessPts, 60),
			traffic.Saturation(bufPts, 60)))
	}
	return r
}

// minbdComparison positions MinBD-style minimal buffering (a 4-flit
// side buffer per router, [22]) between pure BLESS and the full VC
// router, open-loop: the side buffer absorbs would-be deflections and
// pushes saturation toward the buffered network at a fraction of the
// buffer cost.
func minbdComparison(sc Scale) *Result {
	warm, meas := sweepCycles(sc)
	pat := func(n noc.Network) traffic.Pattern {
		return traffic.Uniform{Nodes: n.Topology().Nodes()}
	}
	mk := map[string]func() noc.Network{
		"BLESS": func() noc.Network {
			return bless.New(bless.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		},
		"MinBD-4": func() noc.Network {
			return bless.New(bless.Config{Topology: topology.NewSquare(topology.Mesh, 8), SideBuffer: 4})
		},
		"Buffered": func() noc.Network {
			return buffered.New(buffered.Config{Topology: topology.NewSquare(topology.Mesh, 8)})
		},
	}
	r := &Result{
		ID:     "minbd",
		Title:  "Minimal buffering (MinBD [22]) between BLESS and the VC router (8x8, uniform)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	for _, name := range []string{"BLESS", "MinBD-4", "Buffered"} {
		pts := traffic.Sweep(mk[name], pat, sweepRates, 1, warm, meas, sc.Seed)
		s := Series{Name: name}
		for _, p := range pts {
			s.Points = append(s.Points, Point{X: p.Offered, Y: p.Latency})
		}
		r.Series = append(r.Series, s)
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f flits/node/cycle",
			name, traffic.Saturation(pts, 60)))
	}
	return r
}

// arbiterAblation compares Oldest-First against random deflection
// arbitration open-loop: the age-based total order both guarantees
// livelock freedom and reduces worst-case latency near saturation.
func arbiterAblation(sc Scale) *Result {
	warm, meas := sweepCycles(sc)
	mk := func(arb bless.Arbiter) func() noc.Network {
		return func() noc.Network {
			return bless.New(bless.Config{
				Topology: topology.NewSquare(topology.Mesh, 8),
				Arb:      arb,
				Seed:     sc.Seed,
			})
		}
	}
	pat := func(n noc.Network) traffic.Pattern {
		return traffic.Uniform{Nodes: n.Topology().Nodes()}
	}
	r := &Result{
		ID:     "arbiter",
		Title:  "Deflection arbitration ablation: Oldest-First vs random (8x8, uniform)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	for _, cfg := range []struct {
		name string
		arb  bless.Arbiter
	}{{"oldest-first", bless.OldestFirst}, {"random", bless.Random}} {
		pts := traffic.Sweep(mk(cfg.arb), pat, sweepRates, 1, warm, meas, sc.Seed)
		s := Series{Name: cfg.name}
		for _, p := range pts {
			s.Points = append(s.Points, Point{X: p.Offered, Y: p.Latency})
		}
		r.Series = append(r.Series, s)
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f flits/node/cycle",
			cfg.name, traffic.Saturation(pts, 60)))
	}
	return r
}
