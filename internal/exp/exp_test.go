package exp

import (
	"bytes"
	"strings"
	"testing"

	"nocsim/internal/runner"
)

// tinyScale keeps every driver fast enough for unit testing while still
// exercising the full pipeline.
func tinyScale() Scale {
	return Scale{
		Cycles:    20_000,
		Epoch:     4_000,
		Workloads: 7,
		MaxNodes:  64,
		Workers:   1,
		Seed:      1,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5", "fig6",
		"table1", "table2", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"sens", "epoch", "dist", "torus", "ablate",
		"loadlat", "arbiter", "minbd", "fairness", "adaptive", "wb", "threads", "rings",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(ids) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(ids), len(want))
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig5"); !ok {
		t.Error("fig5 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestScales(t *testing.T) {
	d := DefaultScale()
	if d.Cycles <= 0 || d.Epoch <= 0 || d.Workloads <= 0 || d.MaxNodes < 64 {
		t.Errorf("bad default scale %+v", d)
	}
	p := PaperScale()
	if p.Cycles != 10_000_000 || p.Epoch != 100_000 || p.Workloads != 875 || p.MaxNodes != 4096 {
		t.Errorf("paper scale drifted from §6.1: %+v", p)
	}
}

func TestRenderTable(t *testing.T) {
	r := &Result{
		ID:    "x",
		Title: "T",
		Table: &Table{Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}},
		Notes: []string{"n1"},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	r := &Result{
		ID: "y", Title: "S", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s1", Points: []Point{{1, 2}}}},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), `series "s1"`) {
		t.Error("series header missing")
	}
}

func TestFig2Family(t *testing.T) {
	sc := tinyScale()
	for _, id := range []string{"fig2a", "fig2b"} {
		d, _ := Lookup(id)
		r := d(sc)
		if len(r.Series) != 1 || len(r.Series[0].Points) != sc.Workloads {
			t.Errorf("%s: %d points, want %d", id, len(r.Series[0].Points), sc.Workloads)
		}
		for _, p := range r.Series[0].Points {
			if p.X < 0 || p.X > 1 {
				t.Errorf("%s: utilization %v out of range", id, p.X)
			}
		}
	}
}

func TestFig2cSweepShape(t *testing.T) {
	d, _ := Lookup("fig2c")
	r := d(tinyScale())
	if len(r.Series[0].Points) != 10 {
		t.Fatalf("fig2c has %d points, want 10 rates", len(r.Series[0].Points))
	}
	for _, p := range r.Series[0].Points {
		if p.Y <= 0 {
			t.Error("throughput must be positive at every throttle rate")
		}
	}
}

func TestFig5Shape(t *testing.T) {
	d, _ := Lookup("fig5")
	r := d(tinyScale())
	if r.Table == nil || len(r.Table.Rows) != 3 {
		t.Fatalf("fig5 table malformed: %+v", r.Table)
	}
	if len(r.Notes) != 4 {
		t.Errorf("fig5 notes = %d, want 4 comparisons", len(r.Notes))
	}
}

func TestTable2Static(t *testing.T) {
	d, _ := Lookup("table2")
	r := d(Scale{})
	if r.Table == nil || len(r.Table.Rows) < 10 {
		t.Error("table2 must list the system parameters")
	}
}

func TestFig11GridShape(t *testing.T) {
	sc := tinyScale()
	sc.Cycles = 10_000
	sc.Epoch = 2_000
	d, _ := Lookup("fig12")
	r := d(sc)
	if r.Table == nil || len(r.Table.Rows) != len(ipfGrid) {
		t.Fatalf("fig12 table has %d rows, want %d", len(r.Table.Rows), len(ipfGrid))
	}
	for _, row := range r.Table.Rows {
		if len(row) != len(ipfGrid)+1 {
			t.Fatalf("fig12 row has %d cells, want %d", len(row), len(ipfGrid)+1)
		}
	}
}

func TestScalingFigsShareRuns(t *testing.T) {
	sc := tinyScale()
	sc.MaxNodes = 64 // 4x4 and 8x8 only
	d13, _ := Lookup("fig13")
	r13 := d13(sc)
	if len(r13.Series) != 3 {
		t.Fatalf("fig13 series = %d, want 3 architectures", len(r13.Series))
	}
	for _, s := range r13.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %s has %d sizes, want 2 at MaxNodes=64", s.Name, len(s.Points))
		}
	}
	// fig16 must reuse the memoized runs (fast) and have both baselines.
	d16, _ := Lookup("fig16")
	r16 := d16(sc)
	if len(r16.Series) != 2 {
		t.Errorf("fig16 series = %d, want 2 baselines", len(r16.Series))
	}
}

func TestMeshSizesRespectCap(t *testing.T) {
	sc := Scale{MaxNodes: 256}
	for _, k := range meshSizes(sc) {
		if k*k > 256 {
			t.Errorf("mesh %dx%d exceeds cap", k, k)
		}
	}
	if len(meshSizes(Scale{MaxNodes: 4096})) != 5 {
		t.Error("full scale must include all five sizes")
	}
}

func TestWorkersFor(t *testing.T) {
	if runner.WorkersFor(16, 8) != 1 {
		t.Error("small meshes must run sequentially")
	}
	if runner.WorkersFor(1024, 8) != 8 {
		t.Error("large meshes must shard")
	}
}
