// Package exp regenerates every table and figure of the paper's
// evaluation. Each experiment is a named driver that assembles the
// right workloads, declares its simulations as a runner.Plan, and emits
// the same rows/series the paper plots, as structured Results that
// render to aligned text.
//
// Runs are scaled: the paper simulates 10M cycles per workload and 875
// workloads on hardware-years of compute; the default Scale reproduces
// every experiment's *shape* (who wins, approximate factors, where
// crossovers fall) in minutes on a laptop. PaperScale selects the
// paper's full parameters for long runs.
//
// Execution is delegated to internal/runner: drivers declare their
// simulations and the shared bounded pool runs them concurrently,
// returning metrics in declaration order, so output is byte-identical
// to sequential execution at any Scale.Parallel setting.
package exp

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"nocsim/internal/runner"
)

// Scale sets the cost/fidelity trade-off of every experiment. It is
// the runner's Scale: drivers hand it straight to their plans.
type Scale = runner.Scale

// DefaultScale finishes the full suite in minutes on a laptop while
// preserving every qualitative result.
func DefaultScale() Scale { return runner.DefaultScale() }

// PaperScale is the paper's own configuration (§6.1): 10M cycles, 100
// controller epochs, 875 workloads, up to 4096 nodes. Budget hours.
func PaperScale() Scale { return runner.PaperScale() }

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is one named curve or scatter.
type Series struct {
	Name   string
	Points []Point
}

// Table is a rendered table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Result is one regenerated figure or table.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Table  *Table
	Notes  []string
	// Runs reports the simulations behind the result, in declaration
	// order. Labels, node counts and cycle counts are deterministic;
	// wall-clock timings live on runner.Stat but are excluded from
	// both renderings (text and JSON) so output is byte-identical
	// across pool sizes. Memoized batches report the runs of the
	// driver that executed them first.
	Runs []runner.Stat `json:",omitempty"`
}

// Render writes the result as aligned text.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		renderTable(w, r.Table)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "-- series %q (x=%s, y=%s)\n", s.Name, r.XLabel, r.YLabel)
		for _, p := range s.Points {
			fmt.Fprintf(w, "   %12.4f  %12.4f\n", p.X, p.Y)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func renderTable(w io.Writer, t *Table) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Driver runs one experiment at a scale.
type Driver func(Scale) *Result

var (
	registryMu sync.Mutex
	registry   = map[string]Driver{}
	order      []string
)

func register(id string, d Driver) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[id]; dup {
		panic("exp: duplicate experiment " + id)
	}
	registry[id] = d
	order = append(order, id)
}

// IDs lists every registered experiment in registration order.
func IDs() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := append([]string(nil), order...)
	return out
}

// Lookup returns the named experiment driver.
func Lookup(id string) (Driver, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	d, ok := registry[id]
	return d, ok
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
