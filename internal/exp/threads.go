package exp

import (
	"fmt"

	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("threads", threadedWorkloads)
}

// threadedWorkloads realises §7's "Traffic Engineering" motivation:
// multithreaded applications have heavily regional communication that
// forms hot spots. Nodes are grouped into square thread blocks whose
// misses are serviced within the group; we then measure what each
// §7 remedy buys — source throttling, adaptive routing, and both.
func threadedWorkloads(sc Scale) *Result {
	const k = 8
	groups := workload.QuadrantGroups(k, k, 4)
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, k*k, sc.Seed+900)

	run := func(ctl sim.ControllerKind, adaptive bool) sim.Metrics {
		s := sim.New(sim.Config{
			Width: k, Height: k,
			Apps:       w.Apps,
			Mapping:    sim.GroupMap,
			Groups:     groups,
			Controller: ctl,
			Adaptive:   adaptive,
			Params:     sc.params(),
			Seed:       sc.Seed + 900,
		})
		s.Run(sc.Cycles)
		return s.Metrics()
	}

	t := &Table{Header: []string{"config", "IPC/node", "utilization", "starvation", "latency"}}
	add := func(name string, m sim.Metrics) {
		t.Rows = append(t.Rows, []string{
			name, f2(m.ThroughputPerNode), f2(m.NetUtilization),
			f2(m.StarvationRate), f1(m.AvgNetLatency),
		})
	}
	base := run(sim.NoControl, false)
	add("baseline BLESS", base)
	thr := run(sim.Central, false)
	add("+ throttling", thr)
	ad := run(sim.NoControl, true)
	add("+ adaptive routing", ad)
	both := run(sim.Central, true)
	add("+ both", both)

	return &Result{
		ID:    "threads",
		Title: "Multithreaded-style regional traffic (8x8, 4x4 thread groups)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("throttling %+.1f%%, adaptive %+.1f%%, combined %+.1f%% vs baseline",
				stats.PercentGain(base.SystemThroughput, thr.SystemThroughput),
				stats.PercentGain(base.SystemThroughput, ad.SystemThroughput),
				stats.PercentGain(base.SystemThroughput, both.SystemThroughput)),
			"§7: regional hot-spots motivate traffic engineering on top of throttling",
		},
	}
}
