package exp

import (
	"fmt"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/workload"
)

func init() {
	register("threads", threadedWorkloads)
}

// threadedWorkloads realises §7's "Traffic Engineering" motivation:
// multithreaded applications have heavily regional communication that
// forms hot spots. Nodes are grouped into square thread blocks whose
// misses are serviced within the group; we then measure what each
// §7 remedy buys — source throttling, adaptive routing, and both.
func threadedWorkloads(sc Scale) *Result {
	const k = 8
	groups := workload.QuadrantGroups(k, k, 4)
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, k*k, sc.Seed+900)

	regional := []runner.Option{
		runner.WithGroups(groups),
		runner.WithSeed(sc.Seed + 900),
	}
	variants := []struct {
		name string
		cfg  sim.Config
	}{
		{"baseline BLESS", runner.Baseline(w, k, k, sc, regional...)},
		{"+ throttling", runner.Controlled(w, k, k, sc, regional...)},
		{"+ adaptive routing", runner.Baseline(w, k, k, sc, append(regional[:2:2], runner.WithAdaptive())...)},
		{"+ both", runner.Controlled(w, k, k, sc, append(regional[:2:2], runner.WithAdaptive())...)},
	}
	plan := runner.NewPlan(sc)
	for i, v := range variants {
		plan.Add(fmt.Sprintf("threads/%d", i), v.cfg, sc.Cycles)
	}
	ms := plan.Execute()

	t := &Table{Header: []string{"config", "IPC/node", "utilization", "starvation", "latency"}}
	for i, v := range variants {
		m := ms[i]
		t.Rows = append(t.Rows, []string{
			v.name, f2(m.ThroughputPerNode), f2(m.NetUtilization),
			f2(m.StarvationRate), f1(m.AvgNetLatency),
		})
	}
	base, thr, ad, both := ms[0], ms[1], ms[2], ms[3]

	return &Result{
		ID:    "threads",
		Title: "Multithreaded-style regional traffic (8x8, 4x4 thread groups)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("throttling %+.1f%%, adaptive %+.1f%%, combined %+.1f%% vs baseline",
				stats.PercentGain(base.SystemThroughput, thr.SystemThroughput),
				stats.PercentGain(base.SystemThroughput, ad.SystemThroughput),
				stats.PercentGain(base.SystemThroughput, both.SystemThroughput)),
			"§7: regional hot-spots motivate traffic engineering on top of throttling",
		},
		Runs: plan.Stats(),
	}
}
