package exp

import (
	"fmt"
	"sync"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func init() {
	register("fig2a", fig2a)
	register("fig2b", fig2b)
	register("fig2c", fig2c)
}

// fig2Data is the memoized baseline batch shared by Fig. 2(a) and (b).
type fig2Data struct {
	ms    []sim.Metrics
	stats []runner.Stat
}

var (
	fig2Mu   sync.Mutex
	fig2Memo = map[string]*fig2Data{}
)

// fig2Batch runs the baseline workload batch on a 4x4 BLESS mesh and
// returns the per-workload metrics. Both Fig. 2(a) and (b) read from
// it, so the batch is memoized per scale.
func fig2Batch(sc Scale) *fig2Data {
	key := fmt.Sprintf("%d/%d/%d", sc.Cycles, sc.Workloads, sc.Seed)
	fig2Mu.Lock()
	if d, ok := fig2Memo[key]; ok {
		fig2Mu.Unlock()
		return d
	}
	fig2Mu.Unlock()
	plan := runner.NewPlan(sc)
	for i, w := range workload.Batch(sc.Workloads, 16, sc.Seed) {
		plan.Add(fmt.Sprintf("fig2/w%02d", i), runner.Baseline(w, 4, 4, sc), sc.Cycles)
	}
	d := &fig2Data{ms: plan.Execute(), stats: plan.Stats()}
	fig2Mu.Lock()
	fig2Memo[key] = d
	fig2Mu.Unlock()
	return d
}

// fig2a reproduces Figure 2(a): average network latency stays
// comparatively flat (within ~2x) as utilization grows — unlike a
// buffered network, deflection routing pushes congestion out of the
// network and into admission.
func fig2a(sc Scale) *Result {
	d := fig2Batch(sc)
	s := Series{Name: "4x4 BLESS workloads"}
	for _, m := range d.ms {
		s.Points = append(s.Points, Point{X: m.NetUtilization, Y: m.AvgNetLatency})
	}
	return &Result{
		ID:     "fig2a",
		Title:  "Average network latency vs. utilization (4x4, baseline BLESS)",
		XLabel: "average network utilization",
		YLabel: "avg net latency (cycles)",
		Series: []Series{s},
		Notes: []string{
			"paper: latency stays within ~2x from idle to saturation",
		},
		Runs: d.stats,
	}
}

// fig2b reproduces Figure 2(b): starvation rate rises superlinearly
// with utilization.
func fig2b(sc Scale) *Result {
	d := fig2Batch(sc)
	s := Series{Name: "4x4 BLESS workloads"}
	for _, m := range d.ms {
		s.Points = append(s.Points, Point{X: m.NetUtilization, Y: m.StarvationRate})
	}
	return &Result{
		ID:     "fig2b",
		Title:  "Starvation rate vs. utilization (4x4, baseline BLESS)",
		XLabel: "average network utilization",
		YLabel: "average starvation rate",
		Series: []Series{s},
		Notes: []string{
			"paper: starvation grows superlinearly; ~0.3 near 80% utilization",
		},
		Runs: d.stats,
	}
}

// fig2c reproduces Figure 2(c): sweeping a uniform static throttling
// rate over a network-heavy workload traces system throughput against
// the resulting utilization. Throughput peaks at an intermediate
// operating point (the paper reports a 14% gain over unthrottled), and
// utilization never reaches 1 even unthrottled (self-throttling).
func fig2c(sc Scale) *Result {
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, 16, sc.Seed+101)
	rates := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	plan := runner.NewPlan(sc)
	for _, rate := range rates {
		plan.Add(fmt.Sprintf("fig2c/rate=%.1f", rate),
			runner.Baseline(w, 4, 4, sc, runner.WithStaticUniform(rate)), sc.Cycles)
	}
	ms := plan.Execute()
	s := Series{Name: "static throttling sweep"}
	best, at0 := 0.0, 0.0
	for i, rate := range rates {
		m := ms[i]
		s.Points = append(s.Points, Point{X: m.NetUtilization, Y: m.SystemThroughput})
		if rate == 0 {
			at0 = m.SystemThroughput
		}
		if m.SystemThroughput > best {
			best = m.SystemThroughput
		}
	}
	gain := 0.0
	if at0 > 0 {
		gain = 100 * (best - at0) / at0
	}
	return &Result{
		ID:     "fig2c",
		Title:  "System throughput vs. utilization under uniform static throttling (4x4, H workload)",
		XLabel: "average network utilization",
		YLabel: "instruction throughput (sum IPC)",
		Series: []Series{s},
		Notes: []string{
			fmt.Sprintf("best static throttle beats unthrottled by %.1f%% (paper: ~14%%)", gain),
			"utilization never reaches 1: applications are self-throttling (§3.1)",
		},
		Runs: plan.Stats(),
	}
}
