package exp

import (
	"fmt"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/runner"
	"nocsim/internal/stats"
	"nocsim/internal/topology"
	"nocsim/internal/traffic"
	"nocsim/internal/workload"
)

func init() {
	register("fairness", fairness)
	register("adaptive", adaptiveRouting)
}

// fairness quantifies §6.2's "Fairness In Throttling" claim with the
// standard slowdown metrics: across congested workloads, the mechanism
// must not worsen maximum slowdown or unfairness (max/min slowdown)
// while improving throughput — the Fig. 11 result, summarised.
func fairness(sc Scale) *Result {
	cats := []string{"H", "HM", "HL"}
	var ws []workload.Workload
	plan := runner.NewPlan(sc)
	for i, cname := range cats {
		cat, _ := workload.CategoryByName(cname)
		w := workload.Generate(cat, 16, sc.Seed+uint64(700+i))
		ws = append(ws, w)
		plan.Add("fairness/"+cname+"/base", runner.Baseline(w, 4, 4, sc), sc.Cycles)
		plan.Add("fairness/"+cname+"/ctl", runner.Controlled(w, 4, 4, sc), sc.Cycles)
	}
	ms := plan.Execute()

	t := &Table{Header: []string{
		"workload", "maxSD base", "maxSD ctl", "unfair base", "unfair ctl",
		"HS base", "HS ctl",
	}}
	var worseMax int
	for i, cname := range cats {
		base, ctl := ms[2*i], ms[2*i+1]
		alone := aloneIPCs(ws[i], 4, sc)
		sdBase := stats.Slowdowns(base.IPC, alone)
		sdCtl := stats.Slowdowns(ctl.IPC, alone)
		if stats.MaxSlowdown(sdCtl) > stats.MaxSlowdown(sdBase)*1.05 {
			worseMax++
		}
		t.Rows = append(t.Rows, []string{
			cname,
			f2(stats.MaxSlowdown(sdBase)), f2(stats.MaxSlowdown(sdCtl)),
			f2(stats.Unfairness(sdBase)), f2(stats.Unfairness(sdCtl)),
			f2(stats.HarmonicSpeedup(sdBase)), f2(stats.HarmonicSpeedup(sdCtl)),
		})
	}
	return &Result{
		ID:    "fairness",
		Title: "Fairness of the mechanism: slowdown metrics with and without throttling",
		Table: t,
		Notes: []string{
			fmt.Sprintf("workloads where max slowdown worsened >5%%: %d of %d", worseMax, len(cats)),
			"paper §6.2/Fig.11: throttling does not unfairly penalise any application",
		},
		Runs: plan.Stats(),
	}
}

// adaptiveRouting evaluates the §7 "Traffic Engineering" extension:
// locally congestion-aware productive-port selection against strict XY,
// open-loop, on the patterns where path diversity matters.
func adaptiveRouting(sc Scale) *Result {
	mk := func(adaptive bool) func() noc.Network {
		return func() noc.Network {
			return bless.New(bless.Config{
				Topology: topology.NewSquare(topology.Mesh, 8),
				Adaptive: adaptive,
			})
		}
	}
	r := &Result{
		ID:     "adaptive",
		Title:  "Adaptive (congestion-aware) routing vs strict XY (8x8 BLESS, open loop)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "avg packet latency (cycles)",
	}
	transpose := func(n noc.Network) traffic.Pattern { return traffic.Transpose{Top: n.Topology()} }
	hotspot := func(n noc.Network) traffic.Pattern {
		return traffic.Hotspot{Nodes: n.Topology().Nodes(), Hot: 27, Frac: 0.15}
	}
	jobs := []sweepJob{
		{"transpose/xy", mk(false), transpose, sweepRates},
		{"transpose/adaptive", mk(true), transpose, sweepRates},
		{"hotspot/xy", mk(false), hotspot, sweepRates},
		{"hotspot/adaptive", mk(true), hotspot, sweepRates},
	}
	curves := runSweeps(r, sc, jobs)
	for i, j := range jobs {
		r.Notes = append(r.Notes, fmt.Sprintf("%s saturation: %.2f",
			j.name, traffic.Saturation(curves[i], 60)))
	}
	return r
}
