package exp

import "testing"

// microScale is even smaller than tinyScale, for drivers that run many
// simulations.
func microScale() Scale {
	return Scale{
		Cycles:    8_000,
		Epoch:     2_000,
		Workloads: 7,
		MaxNodes:  16,
		Workers:   1,
		Seed:      2,
	}
}

// runDriver looks up and executes an experiment, failing the test on a
// malformed result.
func runDriver(t *testing.T, id string, sc Scale) *Result {
	t.Helper()
	d, ok := Lookup(id)
	if !ok {
		t.Fatalf("driver %q missing", id)
	}
	r := d(sc)
	if r == nil || r.ID == "" || r.Title == "" {
		t.Fatalf("%s returned malformed result %+v", id, r)
	}
	if len(r.Series) == 0 && r.Table == nil {
		t.Fatalf("%s returned neither series nor table", id)
	}
	return r
}

func TestFig6PhaseSeries(t *testing.T) {
	r := runDriver(t, "fig6", microScale())
	if len(r.Series) != 4 {
		t.Errorf("fig6 series = %d, want 4 applications", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Errorf("fig6 series %s empty", s.Name)
		}
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Errorf("fig6 negative intensity in %s", s.Name)
			}
		}
	}
}

func TestTable1Measurement(t *testing.T) {
	r := runDriver(t, "table1", microScale())
	if len(r.Table.Rows) != 34 {
		t.Fatalf("table1 rows = %d, want 34 applications", len(r.Table.Rows))
	}
	for _, row := range r.Table.Rows {
		if len(row) != 6 {
			t.Fatalf("table1 row has %d cells: %v", len(row), row)
		}
	}
}

func TestSweepParam(t *testing.T) {
	sc := microScale()
	r, ok := SweepParam("alpha_throt", sc)
	if !ok {
		t.Fatal("alpha_throt sweep missing")
	}
	if len(r.Series) != 1 || len(r.Series[0].Points) != 5 {
		t.Errorf("sweep shape wrong: %+v", r.Series)
	}
	if _, ok := SweepParam("bogus", sc); ok {
		t.Error("unknown parameter accepted")
	}
}

func TestEpochSweepDriver(t *testing.T) {
	r := runDriver(t, "epoch", microScale())
	if len(r.Series[0].Points) == 0 {
		t.Error("epoch sweep empty")
	}
}

func TestDistributedDriver(t *testing.T) {
	r := runDriver(t, "dist", microScale())
	if len(r.Table.Rows) != 5 {
		t.Errorf("dist rows = %d, want 5 workloads", len(r.Table.Rows))
	}
}

func TestTorusDriver(t *testing.T) {
	r := runDriver(t, "torus", microScale())
	if len(r.Table.Rows) != 2 {
		t.Errorf("torus rows = %d, want 2 sizes", len(r.Table.Rows))
	}
}

func TestAblateDriver(t *testing.T) {
	r := runDriver(t, "ablate", microScale())
	if len(r.Table.Rows) != 5 {
		t.Errorf("ablate rows = %d, want 5 variants", len(r.Table.Rows))
	}
}

func TestLoadLatDriver(t *testing.T) {
	r := runDriver(t, "loadlat", microScale())
	// 3 patterns x 2 architectures.
	if len(r.Series) != 6 {
		t.Errorf("loadlat series = %d, want 6", len(r.Series))
	}
	if len(r.Notes) != 3 {
		t.Errorf("loadlat notes = %d, want one saturation note per pattern", len(r.Notes))
	}
}

func TestArbiterDriver(t *testing.T) {
	r := runDriver(t, "arbiter", microScale())
	if len(r.Series) != 2 {
		t.Errorf("arbiter series = %d, want 2", len(r.Series))
	}
}

func TestMinBDDriver(t *testing.T) {
	r := runDriver(t, "minbd", microScale())
	if len(r.Series) != 3 {
		t.Errorf("minbd series = %d, want 3 architectures", len(r.Series))
	}
}

func TestAdaptiveDriver(t *testing.T) {
	r := runDriver(t, "adaptive", microScale())
	if len(r.Series) != 4 {
		t.Errorf("adaptive series = %d, want 2 patterns x 2 modes", len(r.Series))
	}
}

func TestFairnessDriver(t *testing.T) {
	r := runDriver(t, "fairness", microScale())
	if len(r.Table.Rows) != 3 {
		t.Errorf("fairness rows = %d, want 3 categories", len(r.Table.Rows))
	}
	for _, row := range r.Table.Rows {
		if len(row) != 7 {
			t.Fatalf("fairness row cells = %d, want 7", len(row))
		}
	}
}

func TestWritebackDriver(t *testing.T) {
	r := runDriver(t, "wb", microScale())
	if len(r.Table.Rows) != 3 {
		t.Errorf("wb rows = %d, want 3 configs", len(r.Table.Rows))
	}
}

func TestFig4Driver(t *testing.T) {
	sc := microScale()
	r := runDriver(t, "fig4", sc)
	if len(r.Series[0].Points) != 5 {
		t.Errorf("fig4 points = %d, want 5 hop distances", len(r.Series[0].Points))
	}
}

func TestFig3Driver(t *testing.T) {
	sc := microScale()
	r := runDriver(t, "fig3", sc)
	// 2 intensities x 3 metrics.
	if len(r.Series) != 6 {
		t.Errorf("fig3 series = %d, want 6", len(r.Series))
	}
}

func TestRingsDriver(t *testing.T) {
	r := runDriver(t, "rings", microScale())
	if len(r.Series) != 3 {
		t.Errorf("rings series = %d, want 3 fabrics", len(r.Series))
	}
}
