package exp

import (
	"fmt"

	"nocsim/internal/core"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/topology"
	"nocsim/internal/workload"
)

func init() {
	register("sens", sensitivity)
	register("epoch", epochSweep)
	register("dist", distributedVsCentral)
	register("torus", torusComparison)
	register("ablate", ablations)
}

// sensWorkload is the congested workload every sweep below shares.
func sensWorkload(sc Scale) workload.Workload {
	cat, _ := workload.CategoryByName("HM")
	return workload.Generate(cat, 16, sc.Seed+640)
}

func runWithParams(w workload.Workload, sc Scale, p core.Params) float64 {
	s := sim.New(sim.Config{
		Apps:       w.Apps,
		Controller: sim.Central,
		Params:     p,
		Seed:       sc.Seed ^ w.Seed,
	})
	s.Run(sc.Cycles)
	return s.Metrics().SystemThroughput
}

// sweepSpec names one §6.4 parameter sweep.
type sweepSpec struct {
	name   string
	values []float64
	apply  func(*core.Params, float64)
}

var sweepSpecs = []sweepSpec{
	{"alpha_starve", []float64{0.2, 0.3, 0.4, 0.6, 0.8},
		func(p *core.Params, v float64) { p.AlphaStarve = v }},
	{"beta_starve", []float64{0.0, 0.05, 0.1, 0.2},
		func(p *core.Params, v float64) { p.BetaStarve = v }},
	{"gamma_starve", []float64{0.5, 0.6, 0.7, 0.8, 0.9},
		func(p *core.Params, v float64) { p.GammaStarve = v }},
	{"alpha_throt", []float64{0.5, 0.7, 0.9, 1.1, 1.3},
		func(p *core.Params, v float64) { p.AlphaThrot = v }},
	{"beta_throt", []float64{0.0, 0.1, 0.2, 0.25, 0.35},
		func(p *core.Params, v float64) { p.BetaThrot = v }},
	{"gamma_throt", []float64{0.55, 0.65, 0.75, 0.85, 0.95},
		func(p *core.Params, v float64) { p.GammaThrot = v }},
}

func runSweep(sc Scale, spec sweepSpec) Series {
	w := sensWorkload(sc)
	base := sc.params()
	s := Series{Name: spec.name}
	for _, v := range spec.values {
		p := base
		spec.apply(&p, v)
		s.Points = append(s.Points, Point{X: v, Y: runWithParams(w, sc, p)})
	}
	return s
}

// SweepParam runs the §6.4 sweep for one named controller parameter.
func SweepParam(name string, sc Scale) (*Result, bool) {
	for _, spec := range sweepSpecs {
		if spec.name == name {
			return &Result{
				ID:     "sens:" + name,
				Title:  fmt.Sprintf("Sensitivity to %s (§6.4, congested HM workload, 4x4)", name),
				XLabel: name,
				YLabel: "system throughput (sum IPC)",
				Series: []Series{runSweep(sc, spec)},
			}, true
		}
	}
	return nil, false
}

// sensitivity reproduces §6.4: system throughput of a congested
// workload as each of the six controller parameters is swept around the
// paper's chosen value.
func sensitivity(sc Scale) *Result {
	r := &Result{
		ID:     "sens",
		Title:  "Sensitivity to algorithm parameters (§6.4, congested HM workload, 4x4)",
		XLabel: "parameter value",
		YLabel: "system throughput (sum IPC)",
	}
	for _, spec := range sweepSpecs {
		r.Series = append(r.Series, runSweep(sc, spec))
	}
	r.Notes = append(r.Notes,
		"paper §6.4: optimum near alpha_starve=0.4, beta_starve=0.0, gamma_starve=0.7, alpha_throt=0.9, beta_throt=0.20, gamma_throt=0.75")
	return r
}

// epochSweep reproduces §6.4's throttling-epoch discussion: shorter
// epochs react faster (small gain, more overhead); very long epochs
// stop tracking application phases and lose performance.
func epochSweep(sc Scale) *Result {
	w := sensWorkload(sc)
	s := Series{Name: "epoch length"}
	for _, frac := range []int64{100, 30, 10, 3, 1} {
		p := sc.params()
		p.Epoch = sc.Cycles / frac
		if p.Epoch < 1000 {
			p.Epoch = 1000
		}
		s.Points = append(s.Points, Point{X: float64(p.Epoch), Y: runWithParams(w, sc, p)})
	}
	return &Result{
		ID:     "epoch",
		Title:  "Sensitivity to throttling epoch length (§6.4)",
		XLabel: "epoch (cycles)",
		YLabel: "system throughput (sum IPC)",
		Series: []Series{s},
		Notes:  []string{"paper: 1k-cycle epochs gain 3-5% over 100k; 1M-cycle epochs lose responsiveness"},
	}
}

// distributedVsCentral reproduces §6.6: the central, IPF-aware
// controller versus the distributed congestion-bit mechanism on
// congested workloads.
func distributedVsCentral(sc Scale) *Result {
	t := &Table{Header: []string{"workload", "baseline", "distributed", "central", "dist gain %", "central gain %"}}
	var distGains, centGains []float64
	for i := 0; i < 5; i++ {
		cat := workload.Categories[i%2] // H and M: congested mixes
		w := workload.Generate(cat, 16, sc.Seed+uint64(660+i))
		base := runBaseline(w, 4, 4, sc).SystemThroughput
		cent := runControlled(w, 4, 4, sc).SystemThroughput
		s := sim.New(sim.Config{
			Apps:       w.Apps,
			Controller: sim.Distributed,
			Params:     sc.params(),
			Seed:       sc.Seed ^ w.Seed,
		})
		s.Run(sc.Cycles)
		dist := s.Metrics().SystemThroughput
		dg := stats.PercentGain(base, dist)
		cg := stats.PercentGain(base, cent)
		distGains = append(distGains, dg)
		centGains = append(centGains, cg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s#%d", w.Category, i), f2(base), f2(dist), f2(cent), f1(dg), f1(cg),
		})
	}
	return &Result{
		ID:    "dist",
		Title: "Centralized vs distributed coordination (§6.6)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("avg gain: distributed %.1f%%, central %.1f%%", stats.Mean(distGains), stats.Mean(centGains)),
			"paper: the TCP-like distributed mechanism is far less effective because it is not selective",
		},
	}
}

// torusComparison reproduces the §6.3 note: the torus shows the same
// scaling trends with roughly 10% higher throughput than the mesh.
func torusComparison(sc Scale) *Result {
	cat, _ := workload.CategoryByName("H")
	t := &Table{Header: []string{"nodes", "mesh IPC/node", "torus IPC/node", "torus gain %"}}
	for _, k := range []int{4, 8} {
		nodes := k * k
		w := workload.Generate(cat, nodes, sc.Seed+uint64(nodes)*5)
		run := func(topo topology.Kind) float64 {
			s := sim.New(sim.Config{
				Width: k, Height: k,
				Topo:    topo,
				Apps:    w.Apps,
				Mapping: sim.ExpMap, MeanHops: 1,
				Params: sc.params(),
				Seed:   sc.Seed + uint64(nodes)*5,
			})
			s.Run(sc.Cycles)
			return s.Metrics().ThroughputPerNode
		}
		mesh := run(topology.Mesh)
		torus := run(topology.Torus)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nodes), f2(mesh), f2(torus), f1(stats.PercentGain(mesh, torus)),
		})
	}
	return &Result{
		ID:    "torus",
		Title: "Mesh vs torus (§6.3 note)",
		Table: t,
		Notes: []string{"paper: torus yields ~10% throughput improvement, same trends"},
	}
}

// ablations benchmarks the design choices DESIGN.md calls out: the
// Oldest-First arbiter, the starvation (vs latency) congestion signal,
// and application-aware (vs homogeneous) throttling.
func ablations(sc Scale) *Result {
	w := sensWorkload(sc)
	t := &Table{Header: []string{"variant", "system throughput", "vs full mechanism %"}}

	full := runWithParams(w, sc, sc.params())
	add := func(name string, v float64) {
		t.Rows = append(t.Rows, []string{name, f2(v), f1(stats.PercentGain(full, v))})
	}
	add("full mechanism (oldest-first + starvation + IPF-aware)", full)

	// No control at all.
	add("no congestion control", runBaseline(w, 4, 4, sc).SystemThroughput)

	// Application-unaware homogeneous dynamic throttling.
	s := sim.New(sim.Config{
		Apps: w.Apps, Controller: sim.UnawareControl,
		Params: sc.params(), Seed: sc.Seed ^ w.Seed,
	})
	s.Run(sc.Cycles)
	add("application-unaware (homogeneous rate)", s.Metrics().SystemThroughput)

	// Latency-triggered detection.
	s = sim.New(sim.Config{
		Apps: w.Apps, Controller: sim.LatencyControl,
		Params: sc.params(), Seed: sc.Seed ^ w.Seed,
	})
	s.Run(sc.Cycles)
	add("latency-triggered detection", s.Metrics().SystemThroughput)

	// Random deflection arbitration instead of Oldest-First.
	s = sim.New(sim.Config{
		Apps: w.Apps, Controller: sim.Central, RandomArb: true,
		Params: sc.params(), Seed: sc.Seed ^ w.Seed,
	})
	s.Run(sc.Cycles)
	add("random deflection arbitration", s.Metrics().SystemThroughput)

	return &Result{
		ID:    "ablate",
		Title: "Ablations of the mechanism's design choices",
		Table: t,
		Notes: []string{
			"each row removes one design decision; the full mechanism should dominate",
		},
	}
}
