package exp

import (
	"fmt"

	"nocsim/internal/core"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/topology"
	"nocsim/internal/workload"
)

func init() {
	register("sens", sensitivity)
	register("epoch", epochSweep)
	register("dist", distributedVsCentral)
	register("torus", torusComparison)
	register("ablate", ablations)
}

// sensWorkload is the congested workload every sweep below shares.
func sensWorkload(sc Scale) workload.Workload {
	cat, _ := workload.CategoryByName("HM")
	return workload.Generate(cat, 16, sc.Seed+640)
}

// sweepSpec names one §6.4 parameter sweep.
type sweepSpec struct {
	name   string
	values []float64
	apply  func(*core.Params, float64)
}

var sweepSpecs = []sweepSpec{
	{"alpha_starve", []float64{0.2, 0.3, 0.4, 0.6, 0.8},
		func(p *core.Params, v float64) { p.AlphaStarve = v }},
	{"beta_starve", []float64{0.0, 0.05, 0.1, 0.2},
		func(p *core.Params, v float64) { p.BetaStarve = v }},
	{"gamma_starve", []float64{0.5, 0.6, 0.7, 0.8, 0.9},
		func(p *core.Params, v float64) { p.GammaStarve = v }},
	{"alpha_throt", []float64{0.5, 0.7, 0.9, 1.1, 1.3},
		func(p *core.Params, v float64) { p.AlphaThrot = v }},
	{"beta_throt", []float64{0.0, 0.1, 0.2, 0.25, 0.35},
		func(p *core.Params, v float64) { p.BetaThrot = v }},
	{"gamma_throt", []float64{0.55, 0.65, 0.75, 0.85, 0.95},
		func(p *core.Params, v float64) { p.GammaThrot = v }},
}

// addSweep declares one parameter sweep's runs on the plan and returns
// a closure that assembles the Series once the plan has executed.
func addSweep(plan *runner.Plan, sc Scale, spec sweepSpec) func([]sim.Metrics) Series {
	w := sensWorkload(sc)
	base := sc.Params()
	first := plan.Len()
	for _, v := range spec.values {
		p := base
		spec.apply(&p, v)
		plan.Add(fmt.Sprintf("sens/%s=%g", spec.name, v),
			runner.Controlled(w, 4, 4, sc, runner.WithParams(p)), sc.Cycles)
	}
	return func(ms []sim.Metrics) Series {
		s := Series{Name: spec.name}
		for i, v := range spec.values {
			s.Points = append(s.Points, Point{X: v, Y: ms[first+i].SystemThroughput})
		}
		return s
	}
}

// SweepParam runs the §6.4 sweep for one named controller parameter.
func SweepParam(name string, sc Scale) (*Result, bool) {
	for _, spec := range sweepSpecs {
		if spec.name == name {
			plan := runner.NewPlan(sc)
			mk := addSweep(plan, sc, spec)
			ms := plan.Execute()
			return &Result{
				ID:     "sens:" + name,
				Title:  fmt.Sprintf("Sensitivity to %s (§6.4, congested HM workload, 4x4)", name),
				XLabel: name,
				YLabel: "system throughput (sum IPC)",
				Series: []Series{mk(ms)},
				Runs:   plan.Stats(),
			}, true
		}
	}
	return nil, false
}

// sensitivity reproduces §6.4: system throughput of a congested
// workload as each of the six controller parameters is swept around the
// paper's chosen value. All six sweeps execute as one plan.
func sensitivity(sc Scale) *Result {
	r := &Result{
		ID:     "sens",
		Title:  "Sensitivity to algorithm parameters (§6.4, congested HM workload, 4x4)",
		XLabel: "parameter value",
		YLabel: "system throughput (sum IPC)",
	}
	plan := runner.NewPlan(sc)
	var mks []func([]sim.Metrics) Series
	for _, spec := range sweepSpecs {
		mks = append(mks, addSweep(plan, sc, spec))
	}
	ms := plan.Execute()
	for _, mk := range mks {
		r.Series = append(r.Series, mk(ms))
	}
	r.Runs = plan.Stats()
	r.Notes = append(r.Notes,
		"paper §6.4: optimum near alpha_starve=0.4, beta_starve=0.0, gamma_starve=0.7, alpha_throt=0.9, beta_throt=0.20, gamma_throt=0.75")
	return r
}

// epochSweep reproduces §6.4's throttling-epoch discussion: shorter
// epochs react faster (small gain, more overhead); very long epochs
// stop tracking application phases and lose performance.
func epochSweep(sc Scale) *Result {
	w := sensWorkload(sc)
	var epochs []int64
	for _, frac := range []int64{100, 30, 10, 3, 1} {
		e := sc.Cycles / frac
		if e < 1000 {
			e = 1000
		}
		epochs = append(epochs, e)
	}
	plan := runner.NewPlan(sc)
	for _, e := range epochs {
		p := sc.Params()
		p.Epoch = e
		plan.Add(fmt.Sprintf("epoch/%d", e),
			runner.Controlled(w, 4, 4, sc, runner.WithParams(p)), sc.Cycles)
	}
	ms := plan.Execute()
	s := Series{Name: "epoch length"}
	for i, e := range epochs {
		s.Points = append(s.Points, Point{X: float64(e), Y: ms[i].SystemThroughput})
	}
	return &Result{
		ID:     "epoch",
		Title:  "Sensitivity to throttling epoch length (§6.4)",
		XLabel: "epoch (cycles)",
		YLabel: "system throughput (sum IPC)",
		Series: []Series{s},
		Notes:  []string{"paper: 1k-cycle epochs gain 3-5% over 100k; 1M-cycle epochs lose responsiveness"},
		Runs:   plan.Stats(),
	}
}

// distributedVsCentral reproduces §6.6: the central, IPF-aware
// controller versus the distributed congestion-bit mechanism on
// congested workloads.
func distributedVsCentral(sc Scale) *Result {
	t := &Table{Header: []string{"workload", "baseline", "distributed", "central", "dist gain %", "central gain %"}}
	var ws []workload.Workload
	plan := runner.NewPlan(sc)
	for i := 0; i < 5; i++ {
		cat := workload.Categories[i%2] // H and M: congested mixes
		w := workload.Generate(cat, 16, sc.Seed+uint64(660+i))
		ws = append(ws, w)
		plan.Add(fmt.Sprintf("dist/w%d/base", i), runner.Baseline(w, 4, 4, sc), sc.Cycles)
		plan.Add(fmt.Sprintf("dist/w%d/distributed", i),
			runner.Baseline(w, 4, 4, sc, runner.WithController(sim.Distributed)), sc.Cycles)
		plan.Add(fmt.Sprintf("dist/w%d/central", i), runner.Controlled(w, 4, 4, sc), sc.Cycles)
	}
	ms := plan.Execute()
	var distGains, centGains []float64
	for i, w := range ws {
		base := ms[3*i].SystemThroughput
		dist := ms[3*i+1].SystemThroughput
		cent := ms[3*i+2].SystemThroughput
		dg := stats.PercentGain(base, dist)
		cg := stats.PercentGain(base, cent)
		distGains = append(distGains, dg)
		centGains = append(centGains, cg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s#%d", w.Category, i), f2(base), f2(dist), f2(cent), f1(dg), f1(cg),
		})
	}
	return &Result{
		ID:    "dist",
		Title: "Centralized vs distributed coordination (§6.6)",
		Table: t,
		Notes: []string{
			fmt.Sprintf("avg gain: distributed %.1f%%, central %.1f%%", stats.Mean(distGains), stats.Mean(centGains)),
			"paper: the TCP-like distributed mechanism is far less effective because it is not selective",
		},
		Runs: plan.Stats(),
	}
}

// torusComparison reproduces the §6.3 note: the torus shows the same
// scaling trends with roughly 10% higher throughput than the mesh.
func torusComparison(sc Scale) *Result {
	cat, _ := workload.CategoryByName("H")
	sizes := []int{4, 8}
	plan := runner.NewPlan(sc)
	for _, k := range sizes {
		nodes := k * k
		w := workload.Generate(cat, nodes, sc.Seed+uint64(nodes)*5)
		for _, topo := range []topology.Kind{topology.Mesh, topology.Torus} {
			plan.Add(fmt.Sprintf("torus/%d/%v", nodes, topo),
				runner.Baseline(w, k, k, sc,
					runner.WithTopo(topo),
					runner.WithMapping(sim.ExpMap, 1),
					runner.WithSeed(sc.Seed+uint64(nodes)*5)), sc.Cycles)
		}
	}
	ms := plan.Execute()
	t := &Table{Header: []string{"nodes", "mesh IPC/node", "torus IPC/node", "torus gain %"}}
	for i, k := range sizes {
		nodes := k * k
		mesh := ms[2*i].ThroughputPerNode
		torus := ms[2*i+1].ThroughputPerNode
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nodes), f2(mesh), f2(torus), f1(stats.PercentGain(mesh, torus)),
		})
	}
	return &Result{
		ID:    "torus",
		Title: "Mesh vs torus (§6.3 note)",
		Table: t,
		Notes: []string{"paper: torus yields ~10% throughput improvement, same trends"},
		Runs:  plan.Stats(),
	}
}

// ablations benchmarks the design choices DESIGN.md calls out: the
// Oldest-First arbiter, the starvation (vs latency) congestion signal,
// and application-aware (vs homogeneous) throttling.
func ablations(sc Scale) *Result {
	w := sensWorkload(sc)
	variants := []struct {
		name string
		cfg  sim.Config
	}{
		{"full mechanism (oldest-first + starvation + IPF-aware)", runner.Controlled(w, 4, 4, sc)},
		{"no congestion control", runner.Baseline(w, 4, 4, sc)},
		{"application-unaware (homogeneous rate)",
			runner.Baseline(w, 4, 4, sc, runner.WithController(sim.UnawareControl))},
		{"latency-triggered detection",
			runner.Baseline(w, 4, 4, sc, runner.WithController(sim.LatencyControl))},
		{"random deflection arbitration", runner.Controlled(w, 4, 4, sc, runner.WithRandomArb())},
	}
	plan := runner.NewPlan(sc)
	for i, v := range variants {
		plan.Add(fmt.Sprintf("ablate/%d", i), v.cfg, sc.Cycles)
	}
	ms := plan.Execute()

	t := &Table{Header: []string{"variant", "system throughput", "vs full mechanism %"}}
	full := ms[0].SystemThroughput
	for i, v := range variants {
		st := ms[i].SystemThroughput
		t.Rows = append(t.Rows, []string{v.name, f2(st), f1(stats.PercentGain(full, st))})
	}
	return &Result{
		ID:    "ablate",
		Title: "Ablations of the mechanism's design choices",
		Table: t,
		Notes: []string{
			"each row removes one design decision; the full mechanism should dominate",
		},
		Runs: plan.Stats(),
	}
}
