package runner

import (
	"fmt"
	"strconv"
	"sync"

	"nocsim/internal/sim"
	"nocsim/internal/snap"
)

// Warm-start execution: runs whose Config.Warmup is positive simulate
// their first Warmup cycles under the measurement-neutral prefix
// configuration (sim.NormalizeWarm — no controller, no throttling, no
// collectors), snapshot there, and fork the measured configuration from
// the checkpoint. Because NormalizeWarm strips exactly the knobs a
// sweep varies, every point of the sweep forks from the same prefix:
// the executor computes it once per plan (a per-plan single-flight) and
// files it in the scale's checkpoint store, where later plans — or
// other machines — find it again.
//
// Two lookup levels compose in startSim, cheapest first:
//
//  1. same-config resume: a checkpoint of this exact configuration
//     (CacheKey digest) at or before the target cycle — the "extend
//     this run" path. Only for unhooked stride-less runs, since a
//     resumed prefix would skip Stride-window Observe calls.
//  2. warm fork: the NormalizeWarm prefix checkpoint at exactly
//     Config.Warmup, extended from the longest stored prefix below it
//     when the exact cycle is absent.
//
// Both restores are byte-exact (the snapshot byte-identity tests pin
// this), so results never depend on which path executed a run; a
// checkpoint store is purely a wall-clock optimization and its absence
// or corruption degrades to cold simulation.

// WarmDigest returns the content address of a configuration's warmup
// prefix: the CacheKey of its NormalizeWarm image with a zero cycle
// budget. Every configuration that differs only in measured knobs —
// controller kind and parameters, static rates, collectors, worker
// count, the Warmup cycle itself — maps to the same digest and
// therefore shares checkpoints.
func WarmDigest(cfg sim.Config) (string, error) {
	return CacheKey(sim.NormalizeWarm(cfg), 0)
}

// warmEntry is one per-plan single-flight slot: the first run needing
// this (prefix digest, warmup cycle) computes the blob, everyone else
// blocks on the Once and shares it.
type warmEntry struct {
	once sync.Once
	blob []byte
}

// warmSlot returns the plan's single-flight entry for one warm prefix.
func (p *Plan) warmSlot(digest string, warmup int64) *warmEntry {
	p.wm.Lock()
	defer p.wm.Unlock()
	if p.warm == nil {
		p.warm = make(map[string]*warmEntry)
	}
	k := digest + ":" + strconv.FormatInt(warmup, 10)
	e := p.warm[k]
	if e == nil {
		e = &warmEntry{}
		p.warm[k] = e
	}
	return e
}

// startSim assembles the simulation for one run: restored from the
// nearest usable checkpoint when the scale has a store, cold otherwise.
// The second return is the cycle the simulation starts at (0 when
// cold); the caller runs target-minus-start more cycles.
func (p *Plan) startSim(cfg sim.Config, r Run) (*sim.Sim, int64) {
	st := p.sc.Snapshots
	target := r.Cycles
	if cfg.Warmup > 0 {
		target += cfg.Warmup
	}
	if st != nil && r.Stride == 0 {
		if digest, err := CacheKey(cfg, 0); err == nil {
			if c, ok := st.Find(digest, target); ok && c >= cfg.Warmup {
				if key, err := CacheKey(cfg, c); err == nil {
					if blob, ok := st.Get(digest, c, key); ok {
						if s, err := sim.Restore(cfg, blob); err == nil {
							s.SetOrigin(digest, c)
							return s, c
						}
						// A structurally incompatible checkpoint (different
						// collector shapes, say) degrades to the cold path.
					}
				}
			}
		}
	}
	if cfg.Warmup > 0 {
		digest := mustWarmDigest(cfg)
		e := p.warmSlot(digest, cfg.Warmup)
		e.once.Do(func() { e.blob = p.warmBlob(cfg) })
		s, err := sim.Restore(cfg, e.blob)
		if err != nil {
			panic(fmt.Sprintf("runner: warm-start fork at cycle %d: %v", cfg.Warmup, err))
		}
		s.SetOrigin(digest, cfg.Warmup)
		return s, cfg.Warmup
	}
	return sim.New(cfg), 0
}

// warmBlob produces the warm-prefix checkpoint for cfg at cfg.Warmup:
// from the store when present, extending the longest stored prefix when
// only an earlier cycle is checkpointed, simulating from scratch
// otherwise. Fresh blobs are filed back best-effort; a store write
// failure never fails the run.
func (p *Plan) warmBlob(cfg sim.Config) []byte {
	st := p.sc.Snapshots
	digest := mustWarmDigest(cfg)
	warm := sim.NormalizeWarm(cfg)
	warm.Workers = cfg.Workers // sharding never changes blobs, only wall clock

	if st != nil {
		key, err := CacheKey(sim.NormalizeWarm(cfg), cfg.Warmup)
		if err != nil {
			panic(fmt.Sprintf("runner: warm prefix key: %v", err))
		}
		if blob, ok := st.Get(digest, cfg.Warmup, key); ok {
			return blob
		}
		// Longest cached prefix strictly below the warmup point: restore,
		// run the remainder, checkpoint the extension.
		if c, ok := st.Find(digest, cfg.Warmup); ok && c > 0 && c < cfg.Warmup {
			if pk, err := CacheKey(sim.NormalizeWarm(cfg), c); err == nil {
				if blob, ok := st.Get(digest, c, pk); ok {
					if ws, err := sim.Restore(warm, blob); err == nil {
						ws.Run(cfg.Warmup - c)
						out := ws.Snapshot()
						ws.Close()
						_ = st.Put(digest, cfg.Warmup, key, out)
						return out
					}
				}
			}
		}
		ws := sim.New(warm)
		ws.Run(cfg.Warmup)
		out := ws.Snapshot()
		ws.Close()
		_ = st.Put(digest, cfg.Warmup, key, out)
		return out
	}
	ws := sim.New(warm)
	ws.Run(cfg.Warmup)
	out := ws.Snapshot()
	ws.Close()
	return out
}

func mustWarmDigest(cfg sim.Config) string {
	d, err := WarmDigest(cfg)
	if err != nil {
		panic(fmt.Sprintf("runner: warm prefix digest: %v", err))
	}
	return d
}

// Checkpoint snapshots a live simulation into the store under its full
// configuration digest, so a later plan can resume (extend) the run
// instead of recomputing it. Service layers call it from a Run's
// Observe hook; a nil store or a write failure is a no-op.
func Checkpoint(st *snap.Store, cfg sim.Config, s *sim.Sim) error {
	if st == nil {
		return nil
	}
	digest, err := CacheKey(cfg, 0)
	if err != nil {
		return err
	}
	key, err := CacheKey(cfg, s.Cycle())
	if err != nil {
		return err
	}
	return st.Put(digest, s.Cycle(), key, s.Snapshot())
}
