package runner

import (
	"runtime"

	"nocsim/internal/core"
	"nocsim/internal/obs"
	"nocsim/internal/snap"
)

// Scale sets the cost/fidelity trade-off of every experiment.
type Scale struct {
	// Cycles is the simulated length of each run.
	Cycles int64
	// Epoch is the controller period (the paper uses Cycles/100).
	Epoch int64
	// Workloads is the batch size for the scatter/category figures
	// (the paper uses 700 16-core + 175 64-core workloads).
	Workloads int
	// MaxNodes caps the scaling experiments (the paper goes to 4096).
	MaxNodes int
	// Workers shards the per-cycle loops of one large fabric
	// (intra-sim parallelism). The executor clamps it so that
	// Workers x Parallel never exceeds GOMAXPROCS.
	Workers int
	// Parallel bounds how many independent simulations a Plan runs at
	// once (inter-sim parallelism); 0 means GOMAXPROCS.
	Parallel int
	// Seed roots all randomness.
	Seed uint64
	// Obs configures the observability collectors for every run whose
	// config leaves them unset; the zero value observes nothing.
	Obs obs.Options
	// ObsDir, when non-empty, makes the executor export every observed
	// run's collectors and manifest into this directory.
	ObsDir string
	// Progress, when non-nil, receives a live line per completed run on
	// every Plan executed at this scale (wall-clock diagnostics only;
	// results are unaffected).
	Progress *Progress
	// Remote, when non-nil, ships every plain run (no Observe/Stride/
	// Start/Cancel hook, no ObsDir export) to a remote executor — the
	// nocd daemon — instead of simulating in-process; hooked runs still
	// execute locally. The determinism contract makes the two paths
	// return identical metrics.
	Remote Remote
	// Snapshots, when non-nil, is the checkpoint store the executor
	// consults before simulating: runs resume from a same-config
	// checkpoint at or before their target cycle, and warm-start runs
	// (Config.Warmup > 0) fork from — or compute and file — the shared
	// NormalizeWarm prefix. Checkpoints are a wall-clock optimization
	// only; restores are byte-exact, so results never depend on the
	// store's contents.
	Snapshots *snap.Store
	// Warmup, when positive, gives every preset-assembled configuration
	// (Baseline/Controlled) an uncontrolled warm-start prefix of this
	// many cycles, shared across all runs of a plan that agree modulo
	// measured knobs.
	Warmup int64
}

// DefaultScale finishes the full suite in minutes on a laptop while
// preserving every qualitative result.
func DefaultScale() Scale {
	return Scale{
		Cycles:    150_000,
		Epoch:     15_000,
		Workloads: 21, // 3 per category
		MaxNodes:  1024,
		Workers:   runtime.NumCPU(),
		Seed:      42,
	}
}

// PaperScale is the paper's own configuration (§6.1): 10M cycles, 100
// controller epochs, 875 workloads, up to 4096 nodes. Budget hours.
func PaperScale() Scale {
	return Scale{
		Cycles:    10_000_000,
		Epoch:     100_000,
		Workloads: 875,
		MaxNodes:  4096,
		Workers:   runtime.NumCPU(),
		Seed:      42,
	}
}

// Params returns the controller parameters at this scale's epoch.
func (s Scale) Params() core.Params {
	p := core.DefaultParams()
	p.Epoch = s.Epoch
	return p
}

// pool resolves the inter-sim pool size for n runs.
func (s Scale) pool(n int) int {
	p := s.Parallel
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// intraWorkers composes intra-sim sharding with the pool so the two
// layers never oversubscribe: each of the pool's concurrent simulations
// gets at most GOMAXPROCS/pool shard goroutines.
func intraWorkers(sc Scale, pool int) int {
	budget := runtime.GOMAXPROCS(0) / pool
	if budget < 1 {
		budget = 1
	}
	w := sc.Workers
	if w > budget {
		w = budget
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WorkersFor is the intra-sim sharding heuristic, consolidated from the
// per-driver copies it replaces: goroutine fan-out per cycle only pays
// off on large fabrics, so small meshes always run single-threaded.
func WorkersFor(nodes, workers int) int {
	if nodes < 256 || workers <= 1 {
		return 1
	}
	return workers
}
