// Package runner is the experiment harness's execution layer. A driver
// *declares* the simulations it needs as a Plan of Runs — label, an
// assembled sim.Config, a cycle budget — and Execute runs them across a
// bounded worker pool, handing the metrics back in declaration order.
//
// The contract is determinism: every simulation is independent and
// seeded, so the pool size changes only wall-clock time, never results.
// A Plan executed at Parallel=1 and Parallel=N produces identical
// metrics in identical order; full-evaluation regeneration costs
// max-of-runs instead of sum-of-runs.
//
// The two parallelism layers compose without oversubscription: the pool
// runs up to Scale.Parallel simulations at once (inter-sim), and each
// large simulation may shard its per-cycle loops over Scale.Workers
// goroutines (intra-sim), clamped so that pool x shards <= GOMAXPROCS.
package runner

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"nocsim/internal/sim"
)

// Run declares one simulation.
type Run struct {
	// Label names the run in reports ("fig2c/rate=0.3").
	Label string
	// Config is the assembled system; leave Config.Workers zero to let
	// the executor pick the intra-sim shard count.
	Config sim.Config
	// Cycles is the simulated length.
	Cycles int64
	// Stride, when positive, splits the run into Stride-cycle windows
	// and invokes Observe after every window instead of once at the
	// end; time-series drivers sample the live simulation in between.
	// The run still covers at least Cycles cycles (rounded up to whole
	// windows, matching a manual Run-in-a-loop).
	Stride int64
	// Observe, when non-nil, is called with the live simulation — after
	// the full run, or after each Stride window. It executes on the
	// worker goroutine, so it must touch only state owned by this Run
	// (e.g. a slot of a per-run slice).
	Observe func(*sim.Sim)
	// Start, when non-nil, is called with the assembled simulation
	// before the first cycle (on the worker goroutine). Service layers
	// use it to attach streaming sinks to the run's collectors.
	Start func(*sim.Sim)
	// Cancel, when non-nil, is polled between windows of CancelEvery
	// cycles (and between Stride windows); returning true stops the run
	// early. A cancelled run's metrics cover only the cycles executed,
	// so callers must treat them as partial and never cache them. The
	// window split itself cannot change results: stepping is window-size
	// invariant (Run(a) then Run(b) is Run(a+b)).
	Cancel func() bool
	// CancelEvery is the Cancel polling granularity in cycles; 0 means
	// 10_000. Ignored when Cancel is nil or Stride is set.
	CancelEvery int64
}

// Stat reports one executed run. Elapsed is wall clock and therefore
// nondeterministic; it is excluded from JSON so that a rendered Result
// is byte-identical across pool sizes (callers that want timings, like
// cmd/experiments -json, read the field directly).
type Stat struct {
	Label   string        `json:"label"`
	Nodes   int           `json:"nodes"`
	Cycles  int64         `json:"cycles"`
	Elapsed time.Duration `json:"-"`
}

// Plan is an ordered collection of declared runs.
type Plan struct {
	sc       Scale
	runs     []Run
	stats    []Stat
	progress *Progress

	// warm single-flights the warm-prefix computation per (prefix
	// digest, warmup cycle): concurrent sweep points forking from the
	// same prefix share one simulation instead of racing to recompute it.
	wm   sync.Mutex
	warm map[string]*warmEntry
}

// NewPlan starts an empty plan at the given scale, inheriting the
// scale's progress reporter.
func NewPlan(sc Scale) *Plan { return &Plan{sc: sc, progress: sc.Progress} }

// SetProgress attaches a live per-run completion reporter; nil detaches.
func (p *Plan) SetProgress(pr *Progress) { p.progress = pr }

// Add declares a run and returns its index, which is also the index of
// its metrics in Execute's result.
func (p *Plan) Add(label string, cfg sim.Config, cycles int64) int {
	return p.AddRun(Run{Label: label, Config: cfg, Cycles: cycles})
}

// AddRun declares a fully-specified run and returns its index.
func (p *Plan) AddRun(r Run) int {
	p.runs = append(p.runs, r)
	return len(p.runs) - 1
}

// Len returns the number of declared runs.
func (p *Plan) Len() int { return len(p.runs) }

// Execute runs every declared simulation across the plan's worker pool
// and returns their metrics in declaration order. Per-run reports are
// available from Stats afterwards.
func (p *Plan) Execute() []sim.Metrics {
	n := len(p.runs)
	out := make([]sim.Metrics, n)
	p.stats = make([]Stat, n)
	if n == 0 {
		return out
	}
	if p.progress != nil {
		p.progress.begin(n)
	}
	local := make([]int, 0, n)
	if p.sc.Remote != nil {
		local = p.executeRemote(out)
	} else {
		for i := range p.runs {
			local = append(local, i)
		}
	}
	if len(local) == 0 {
		return out
	}
	pool := p.sc.pool(len(local))
	intra := intraWorkers(p.sc, pool)
	if pool == 1 {
		for _, i := range local {
			out[i] = p.execOne(i, intra)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = p.execOne(i, intra)
			}
		}()
	}
	for _, i := range local {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// executeRemote ships every plain run — no Observe/Stride/Start/Cancel
// hook, no local obs export — to the scale's Remote executor, filling
// their slots of out and stats directly, and returns the indices that
// must still execute in-process (hooked runs need the live simulation).
// A remote failure is a harness failure, not a driver-recoverable
// condition, so it panics like the executor's other infrastructure
// errors; command entry points turn it into a message and a non-zero
// exit.
func (p *Plan) executeRemote(out []sim.Metrics) (local []int) {
	spec := PlanSpec{Scale: ScaleSpec{Cycles: p.sc.Cycles, Epoch: p.sc.Epoch, Seed: p.sc.Seed}}
	var remote []int
	for i, r := range p.runs {
		if r.Observe != nil || r.Start != nil || r.Cancel != nil || r.Stride > 0 || p.sc.ObsDir != "" {
			local = append(local, i)
			continue
		}
		raw, err := json.Marshal(&r.Config)
		if err != nil {
			panic(fmt.Sprintf("runner: encoding config of remote run %q: %v", r.Label, err))
		}
		spec.Runs = append(spec.Runs, RunSpec{Label: r.Label, Cycles: r.Cycles, Config: raw})
		remote = append(remote, i)
	}
	if len(remote) == 0 {
		return local
	}
	results, err := p.sc.Remote.ExecuteSpecs(spec)
	if err != nil {
		panic(fmt.Sprintf("runner: remote execution: %v", err))
	}
	if len(results) != len(remote) {
		panic(fmt.Sprintf("runner: remote executor returned %d results for %d runs", len(results), len(remote)))
	}
	for k, i := range remote {
		out[i] = results[k].Metrics
		p.stats[i] = Stat{
			Label:   p.runs[i].Label,
			Nodes:   nodesOf(p.runs[i].Config),
			Cycles:  results[k].Metrics.Cycles,
			Elapsed: time.Duration(results[k].ElapsedMS * float64(time.Millisecond)),
		}
		if p.progress != nil {
			p.progress.finish(p.stats[i])
		}
	}
	return local
}

// execOne assembles and runs one declared simulation.
func (p *Plan) execOne(i, intra int) sim.Metrics {
	r := p.runs[i]
	cfg := r.Config
	nodes := nodesOf(cfg)
	if cfg.Workers == 0 {
		cfg.Workers = WorkersFor(nodes, intra)
	}
	if !cfg.Obs.Enabled() {
		cfg.Obs = p.sc.Obs
	}
	start := time.Now()
	// startSim restores from the nearest usable checkpoint (same-config
	// resume, or a warm-prefix fork at Config.Warmup) when the scale has
	// a snapshot store; at is the cycle the simulation begins at, so
	// remaining is what is left to actually step. A warm run's declared
	// Cycles all lie after the warmup prefix.
	s, at := p.startSim(cfg, r)
	defer s.Close()
	remaining := r.Cycles
	if cfg.Warmup > 0 {
		remaining += cfg.Warmup
	}
	remaining -= at
	if remaining < 0 {
		remaining = 0
	}
	if r.Start != nil {
		r.Start(s)
	}
	switch {
	case r.Stride > 0:
		for done := int64(0); done < remaining; done += r.Stride {
			if r.Cancel != nil && r.Cancel() {
				break
			}
			s.Run(r.Stride)
			if r.Observe != nil {
				r.Observe(s)
			}
		}
	case r.Cancel != nil:
		every := r.CancelEvery
		if every <= 0 {
			every = 10_000
		}
		for done := int64(0); done < remaining && !r.Cancel(); done += every {
			w := every
			if done+w > remaining {
				w = remaining - done
			}
			s.Run(w)
		}
		if r.Observe != nil {
			r.Observe(s)
		}
	default:
		s.Run(remaining)
		if r.Observe != nil {
			r.Observe(s)
		}
	}
	m := s.Metrics()
	elapsed := time.Since(start)
	if p.sc.ObsDir != "" {
		if err := ExportObs(s, p.sc.ObsDir, r.Label, cfg, elapsed); err != nil {
			panic(err)
		}
	}
	p.stats[i] = Stat{Label: r.Label, Nodes: nodes, Cycles: m.Cycles, Elapsed: elapsed}
	if p.progress != nil {
		p.progress.finish(p.stats[i])
	}
	return m
}

// Stats returns the per-run reports of the last Execute, in declaration
// order. Nil before Execute.
func (p *Plan) Stats() []Stat { return p.stats }

// nodesOf mirrors sim.Config's default mesh dimensions.
func nodesOf(cfg sim.Config) int {
	w, h := cfg.Width, cfg.Height
	if w == 0 {
		w = 4
	}
	if h == 0 {
		h = 4
	}
	return w * h
}

// Map runs fn(0..n-1) across the scale's worker pool and returns the
// results in index order. It parallelises experiment stages that are
// not sim.Config-shaped — open-loop traffic sweeps, trace analyses —
// under the same bounded pool as Execute.
func Map[T any](sc Scale, n int, fn func(int) T) []T {
	out := make([]T, n)
	pool := sc.pool(n)
	if pool <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
