// Package runner is the experiment harness's execution layer. A driver
// *declares* the simulations it needs as a Plan of Runs — label, an
// assembled sim.Config, a cycle budget — and Execute runs them across a
// bounded worker pool, handing the metrics back in declaration order.
//
// The contract is determinism: every simulation is independent and
// seeded, so the pool size changes only wall-clock time, never results.
// A Plan executed at Parallel=1 and Parallel=N produces identical
// metrics in identical order; full-evaluation regeneration costs
// max-of-runs instead of sum-of-runs.
//
// The two parallelism layers compose without oversubscription: the pool
// runs up to Scale.Parallel simulations at once (inter-sim), and each
// large simulation may shard its per-cycle loops over Scale.Workers
// goroutines (intra-sim), clamped so that pool x shards <= GOMAXPROCS.
package runner

import (
	"sync"
	"time"

	"nocsim/internal/sim"
)

// Run declares one simulation.
type Run struct {
	// Label names the run in reports ("fig2c/rate=0.3").
	Label string
	// Config is the assembled system; leave Config.Workers zero to let
	// the executor pick the intra-sim shard count.
	Config sim.Config
	// Cycles is the simulated length.
	Cycles int64
	// Stride, when positive, splits the run into Stride-cycle windows
	// and invokes Observe after every window instead of once at the
	// end; time-series drivers sample the live simulation in between.
	// The run still covers at least Cycles cycles (rounded up to whole
	// windows, matching a manual Run-in-a-loop).
	Stride int64
	// Observe, when non-nil, is called with the live simulation — after
	// the full run, or after each Stride window. It executes on the
	// worker goroutine, so it must touch only state owned by this Run
	// (e.g. a slot of a per-run slice).
	Observe func(*sim.Sim)
}

// Stat reports one executed run. Elapsed is wall clock and therefore
// nondeterministic; it is excluded from JSON so that a rendered Result
// is byte-identical across pool sizes (callers that want timings, like
// cmd/experiments -json, read the field directly).
type Stat struct {
	Label   string        `json:"label"`
	Nodes   int           `json:"nodes"`
	Cycles  int64         `json:"cycles"`
	Elapsed time.Duration `json:"-"`
}

// Plan is an ordered collection of declared runs.
type Plan struct {
	sc       Scale
	runs     []Run
	stats    []Stat
	progress *Progress
}

// NewPlan starts an empty plan at the given scale, inheriting the
// scale's progress reporter.
func NewPlan(sc Scale) *Plan { return &Plan{sc: sc, progress: sc.Progress} }

// SetProgress attaches a live per-run completion reporter; nil detaches.
func (p *Plan) SetProgress(pr *Progress) { p.progress = pr }

// Add declares a run and returns its index, which is also the index of
// its metrics in Execute's result.
func (p *Plan) Add(label string, cfg sim.Config, cycles int64) int {
	return p.AddRun(Run{Label: label, Config: cfg, Cycles: cycles})
}

// AddRun declares a fully-specified run and returns its index.
func (p *Plan) AddRun(r Run) int {
	p.runs = append(p.runs, r)
	return len(p.runs) - 1
}

// Len returns the number of declared runs.
func (p *Plan) Len() int { return len(p.runs) }

// Execute runs every declared simulation across the plan's worker pool
// and returns their metrics in declaration order. Per-run reports are
// available from Stats afterwards.
func (p *Plan) Execute() []sim.Metrics {
	n := len(p.runs)
	out := make([]sim.Metrics, n)
	p.stats = make([]Stat, n)
	if n == 0 {
		return out
	}
	pool := p.sc.pool(n)
	intra := intraWorkers(p.sc, pool)
	if p.progress != nil {
		p.progress.begin(n)
	}
	if pool == 1 {
		for i := range p.runs {
			out[i] = p.execOne(i, intra)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = p.execOne(i, intra)
			}
		}()
	}
	for i := range p.runs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// execOne assembles and runs one declared simulation.
func (p *Plan) execOne(i, intra int) sim.Metrics {
	r := p.runs[i]
	cfg := r.Config
	nodes := nodesOf(cfg)
	if cfg.Workers == 0 {
		cfg.Workers = WorkersFor(nodes, intra)
	}
	if !cfg.Obs.Enabled() {
		cfg.Obs = p.sc.Obs
	}
	start := time.Now()
	s := sim.New(cfg)
	defer s.Close()
	if r.Stride > 0 {
		for done := int64(0); done < r.Cycles; done += r.Stride {
			s.Run(r.Stride)
			if r.Observe != nil {
				r.Observe(s)
			}
		}
	} else {
		s.Run(r.Cycles)
		if r.Observe != nil {
			r.Observe(s)
		}
	}
	m := s.Metrics()
	elapsed := time.Since(start)
	if p.sc.ObsDir != "" {
		if err := ExportObs(s, p.sc.ObsDir, r.Label, cfg, elapsed); err != nil {
			panic(err)
		}
	}
	p.stats[i] = Stat{Label: r.Label, Nodes: nodes, Cycles: m.Cycles, Elapsed: elapsed}
	if p.progress != nil {
		p.progress.finish(p.stats[i])
	}
	return m
}

// Stats returns the per-run reports of the last Execute, in declaration
// order. Nil before Execute.
func (p *Plan) Stats() []Stat { return p.stats }

// nodesOf mirrors sim.Config's default mesh dimensions.
func nodesOf(cfg sim.Config) int {
	w, h := cfg.Width, cfg.Height
	if w == 0 {
		w = 4
	}
	if h == 0 {
		h = 4
	}
	return w * h
}

// Map runs fn(0..n-1) across the scale's worker pool and returns the
// results in index order. It parallelises experiment stages that are
// not sim.Config-shaped — open-loop traffic sweeps, trace analyses —
// under the same bounded pool as Execute.
func Map[T any](sc Scale, n int, fn func(int) T) []T {
	out := make([]T, n)
	pool := sc.pool(n)
	if pool <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
