package runner

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

// specScale is the base scale the spec tests resolve against.
func specScale() Scale {
	return Scale{Cycles: 10_000, Epoch: 1_000, Seed: 42}
}

// TestSpecResolveMatchesPresets pins the single-source-of-truth
// property: a declarative RunSpec assembles exactly the config a local
// driver would build through the preset helpers.
func TestSpecResolveMatchesPresets(t *testing.T) {
	sc := specScale()
	spec := PlanSpec{Runs: []RunSpec{{
		Label: "a", Preset: "controlled", Workload: "HML", Width: 4, Height: 4,
	}, {
		Label: "b", Workload: "H", Width: 8, Height: 8,
		Router: "buffered", Mapping: "exp", MeanHops: 2.5, SideBuffer: 4,
	}}}
	_, runs, err := spec.Resolve(sc)
	if err != nil {
		t.Fatal(err)
	}

	cat, _ := workload.CategoryByName("HML")
	wantA := Controlled(workload.Generate(cat, 16, sc.Seed), 4, 4, sc)
	if !reflect.DeepEqual(runs[0].Config, wantA) {
		t.Error("declarative controlled run differs from Controlled preset")
	}
	if runs[0].Cycles != sc.Cycles {
		t.Errorf("run a cycles = %d, want the scale's %d", runs[0].Cycles, sc.Cycles)
	}

	catH, _ := workload.CategoryByName("H")
	wantB := Baseline(workload.Generate(catH, 64, sc.Seed), 8, 8, sc,
		WithRouter(sim.Buffered), WithMapping(sim.ExpMap, 2.5), WithSideBuffer(4))
	if !reflect.DeepEqual(runs[1].Config, wantB) {
		t.Error("declarative option run differs from Baseline preset with options")
	}
}

// TestSpecRawConfigRoundTrip pins the wire path Execute uses for remote
// plans: a marshaled config resolves back to itself.
func TestSpecRawConfigRoundTrip(t *testing.T) {
	sc := specScale()
	cat, _ := workload.CategoryByName("M")
	cfg := Controlled(workload.Generate(cat, 16, sc.Seed), 4, 4, sc)
	raw, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, runs, err := PlanSpec{Runs: []RunSpec{{Label: "raw", Config: raw}}}.Resolve(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs[0].Config, cfg) {
		t.Fatal("raw config did not round-trip through RunSpec")
	}
}

// TestSpecValidation pins the reject-before-queue contract: each broken
// spec fails atomically with a runner:-prefixed error.
func TestSpecValidation(t *testing.T) {
	sc := specScale()
	for name, spec := range map[string]PlanSpec{
		"no runs":          {},
		"bad workload":     {Runs: []RunSpec{{Workload: "nope"}}},
		"bad router":       {Runs: []RunSpec{{Workload: "H", Router: "warp"}}},
		"bad mapping":      {Runs: []RunSpec{{Workload: "H", Mapping: "fold"}}},
		"bad preset":       {Runs: []RunSpec{{Workload: "H", Preset: "magic"}}},
		"ring indivisible": {Runs: []RunSpec{{Workload: "H", Router: "hierring", RingGroup: 7}}},
		"static no rate":   {Runs: []RunSpec{{Workload: "H", Preset: "static"}}},
		"both forms": {Runs: []RunSpec{{
			Workload: "H", Config: json.RawMessage(`{}`),
		}}},
		"unknown config field": {Runs: []RunSpec{{
			Config: json.RawMessage(`{"NoSuchField": 1}`),
		}}},
		"config app mismatch": {Runs: []RunSpec{{
			Config: json.RawMessage(`{"Width": 4, "Height": 4, "Apps": [null]}`),
		}}},
		"no cycles": {Scale: ScaleSpec{}, Runs: []RunSpec{{Workload: "H"}}},
	} {
		base := sc
		if name == "no cycles" {
			base = Scale{Seed: 42}
		}
		if _, _, err := spec.Resolve(base); err == nil {
			t.Errorf("%s: Resolve accepted an invalid spec", name)
		} else if !strings.HasPrefix(err.Error(), "runner: ") {
			t.Errorf("%s: error %q lacks the runner: prefix", name, err)
		}
	}
}

// TestSpecScaleOverrides pins the cycles/epoch derivation mirroring the
// cmd/experiments flags: setting cycles alone derives epoch = cycles/10.
func TestSpecScaleOverrides(t *testing.T) {
	base := specScale()
	sc := PlanSpec{Scale: ScaleSpec{Cycles: 50_000}}.ScaleAt(base)
	if sc.Cycles != 50_000 || sc.Epoch != 5_000 {
		t.Errorf("derived scale = %d/%d, want 50000/5000", sc.Cycles, sc.Epoch)
	}
	sc = PlanSpec{Scale: ScaleSpec{Cycles: 50_000, Epoch: 2_000, Seed: 7}}.ScaleAt(base)
	if sc.Cycles != 50_000 || sc.Epoch != 2_000 || sc.Seed != 7 {
		t.Errorf("explicit scale = %+v, want 50000/2000 seed 7", sc)
	}
}

// TestCacheKeyInvariance is the soundness pin of the content-addressed
// cache: execution-resource and observability fields cannot move the
// key, while anything that can move results must.
func TestCacheKeyInvariance(t *testing.T) {
	sc := specScale()
	cat, _ := workload.CategoryByName("H")
	cfg := Baseline(workload.Generate(cat, 16, sc.Seed), 4, 4, sc)

	base, err := CacheKey(cfg, sc.Cycles)
	if err != nil {
		t.Fatal(err)
	}

	varied := cfg
	varied.Workers = 8
	varied.Obs = obs.Options{SampleInterval: 100, TraceSample: 2, Spatial: true}
	if k, _ := CacheKey(varied, sc.Cycles); k != base {
		t.Error("Workers/Obs changed the cache key; resource fields must be canonicalized away")
	}

	reseeded := Baseline(workload.Generate(cat, 16, sc.Seed+1), 4, 4, sc)
	if k, _ := CacheKey(reseeded, sc.Cycles); k == base {
		t.Error("different workload seed produced the same cache key")
	}
	if k, _ := CacheKey(cfg, sc.Cycles+1); k == base {
		t.Error("different cycle budget produced the same cache key")
	}
}

// TestPlanSpecJSONRoundTrip pins the wire format: a spec survives
// marshal/unmarshal and resolves to the same runs and keys.
func TestPlanSpecJSONRoundTrip(t *testing.T) {
	sc := specScale()
	in := PlanSpec{
		Scale: ScaleSpec{Cycles: 4_000, Epoch: 500, Seed: 9},
		Runs: []RunSpec{
			{Label: "x", Preset: "controlled", Workload: "HL", Width: 4},
			{Label: "y", Workload: "H", Router: "hierring", RingGroup: 8},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out PlanSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	_, inRuns, err := in.Resolve(sc)
	if err != nil {
		t.Fatal(err)
	}
	_, outRuns, err := out.Resolve(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inRuns, outRuns) {
		t.Fatal("resolved runs differ after a JSON round trip")
	}
}

// TestDigestStrings pins the plan-key digest: order matters, and
// length prefixing keeps reassociated lists distinct.
func TestDigestStrings(t *testing.T) {
	a := DigestStrings([]string{"ab", "c"})
	if a != DigestStrings([]string{"ab", "c"}) {
		t.Error("digest is not deterministic")
	}
	if a == DigestStrings([]string{"c", "ab"}) {
		t.Error("digest ignores order")
	}
	if a == DigestStrings([]string{"a", "bc"}) {
		t.Error("digest collides across element boundaries")
	}
}

// TestRunHooks pins the executor's Start/Cancel semantics: Start sees
// the live simulation before the first cycle, a never-firing Cancel's
// window split cannot change results, and a firing Cancel stops early.
func TestRunHooks(t *testing.T) {
	sc := specScale()
	sc.Cycles = 3_000
	cat, _ := workload.CategoryByName("H")
	cfg := Baseline(workload.Generate(cat, 16, sc.Seed), 4, 4, sc)

	plain := NewPlan(sc)
	plain.Add("plain", cfg, sc.Cycles)
	want := plain.Execute()[0]

	var startCycle int64 = -1
	hooked := NewPlan(sc)
	hooked.AddRun(Run{
		Label: "hooked", Config: cfg, Cycles: sc.Cycles,
		Start:       func(s *sim.Sim) { startCycle = s.Metrics().Cycles },
		Cancel:      func() bool { return false },
		CancelEvery: 700, // deliberately not a divisor of Cycles
	})
	got := hooked.Execute()[0]
	if startCycle != 0 {
		t.Errorf("Start observed cycle %d, want 0 (before the first cycle)", startCycle)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("windowed execution under a never-firing Cancel changed results")
	}

	fired := NewPlan(sc)
	fired.AddRun(Run{
		Label: "cancelled", Config: cfg, Cycles: sc.Cycles,
		Cancel:      func() bool { return true },
		CancelEvery: 700,
	})
	if m := fired.Execute()[0]; m.Cycles != 0 {
		t.Errorf("immediately-cancelled run simulated %d cycles, want 0", m.Cycles)
	}
}
