package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

// planScale is the small scale the export tests execute at.
func planScale(parallel int, dir string) Scale {
	return Scale{
		Cycles: 4_000, Epoch: 1_000, Seed: 42, Parallel: parallel,
		Obs:    obs.Options{SampleInterval: 1_000, TraceSample: 4, Spatial: true},
		ObsDir: dir,
	}
}

// executePlan runs a two-run observed plan at the given parallelism.
func executePlan(t *testing.T, parallel int, dir string) {
	t.Helper()
	sc := planScale(parallel, dir)
	cat, _ := workload.CategoryByName("HML")
	p := NewPlan(sc)
	for i := 0; i < 2; i++ {
		w := workload.Generate(cat, 16, sc.Seed+uint64(i))
		p.Add("export/w0"+string(rune('0'+i)), Baseline(w, 4, 4, sc), sc.Cycles)
	}
	p.Execute()
}

// TestExportObsWritesEverything checks that an observed plan leaves
// the full export set — time series, trace, grids, manifest — for
// every run, and that the manifest round-trips with a usable config.
func TestExportObsWritesEverything(t *testing.T) {
	dir := t.TempDir()
	executePlan(t, 1, dir)
	for _, label := range []string{"export-w00", "export-w01"} {
		for _, suffix := range []string{
			".samples.jsonl", ".samples.csv", ".trace.json",
			".nodes.csv", ".links.csv", ".manifest.json",
		} {
			path := filepath.Join(dir, label+suffix)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatalf("missing export %s: %v", path, err)
			}
			if fi.Size() == 0 {
				t.Errorf("export %s is empty", path)
			}
		}
		raw, err := os.ReadFile(filepath.Join(dir, label+".manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		var man obs.Manifest
		if err := json.Unmarshal(raw, &man); err != nil {
			t.Fatalf("%s manifest does not parse: %v", label, err)
		}
		if man.GoVersion == "" || man.CountersHash == "" || man.Cycles != 4_000 {
			t.Errorf("%s manifest incomplete: %+v", label, man)
		}
		if len(man.Config) == 0 {
			t.Errorf("%s manifest carries no config", label)
		}
	}
}

// TestExportObsParallelInvariant is the harness-level determinism
// contract the CI smoke enforces: every deterministic export byte and
// the manifest counters hash must match between -parallel settings
// (manifests differ only in the wall-clock elapsed_ms field).
func TestExportObsParallelInvariant(t *testing.T) {
	dirSeq, dirPar := t.TempDir(), t.TempDir()
	executePlan(t, 1, dirSeq)
	executePlan(t, 4, dirPar)
	for _, label := range []string{"export-w00", "export-w01"} {
		for _, suffix := range []string{
			".samples.jsonl", ".samples.csv", ".trace.json",
			".nodes.csv", ".links.csv",
		} {
			a, err := os.ReadFile(filepath.Join(dirSeq, label+suffix))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dirPar, label+suffix))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s%s differs between -parallel 1 and 4", label, suffix)
			}
		}
		hash := func(dir string) string {
			raw, err := os.ReadFile(filepath.Join(dir, label+".manifest.json"))
			if err != nil {
				t.Fatal(err)
			}
			var man obs.Manifest
			if err := json.Unmarshal(raw, &man); err != nil {
				t.Fatal(err)
			}
			return man.CountersHash
		}
		if a, b := hash(dirSeq), hash(dirPar); a != b {
			t.Errorf("%s counters hash differs between -parallel 1 and 4: %s vs %s", label, a, b)
		}
	}
}

// TestExportObsIdempotentDir pins the directory contract: exporting
// into a pre-existing ObsDir (the normal many-runs-one-dir case, and
// any re-run) succeeds, while a non-directory squatting on the path
// fails with a runner:-prefixed wrapped error instead of a bare OS one.
func TestExportObsIdempotentDir(t *testing.T) {
	dir := t.TempDir() // already exists: MkdirAll must be a no-op
	executePlan(t, 1, dir)
	executePlan(t, 1, dir) // re-export over existing files
	if _, err := os.Stat(filepath.Join(dir, "export-w00.manifest.json")); err != nil {
		t.Fatalf("re-export into existing dir lost files: %v", err)
	}

	squat := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(squat, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := planScale(1, squat)
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 16, sc.Seed)
	cfg := Baseline(w, 4, 4, sc)
	cfg.Obs = sc.Obs
	s := sim.New(cfg)
	defer s.Close()
	s.Run(100)
	err := ExportObs(s, squat, "squat", cfg, 0)
	if err == nil {
		t.Fatal("ExportObs succeeded with a file squatting on the obs dir")
	}
	if !strings.HasPrefix(err.Error(), "runner: ") {
		t.Errorf("error %q lacks the runner: prefix", err)
	}
}

// TestSanitizeLabel pins the label-to-filename mapping.
func TestSanitizeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"fig2a/w03", "fig2a-w03"},
		{"rate=0.3 sweep", "rate-0.3-sweep"},
		{"plain-label_1", "plain-label_1"},
		{"", "run"},
	} {
		if got := sanitizeLabel(tc.in); got != tc.want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
