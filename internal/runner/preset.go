package runner

import (
	"nocsim/internal/core"
	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/topology"
	"nocsim/internal/workload"
)

// Option adjusts an assembled configuration. Presets apply options in
// order, so later options win.
type Option func(*sim.Config)

// Baseline assembles the open (uncontrolled) BLESS system for a
// workload on a width x height mesh: the paper's Table 2 defaults, the
// scale's controller epoch, and the conventional sc.Seed ^ w.Seed
// seeding. Config.Workers is left zero for the executor to fill.
func Baseline(w workload.Workload, width, height int, sc Scale, opts ...Option) sim.Config {
	cfg := sim.Config{
		Width: width, Height: height,
		Apps:   w.Apps,
		Params: sc.Params(),
		Seed:   sc.Seed ^ w.Seed,
		Warmup: sc.Warmup,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Controlled is Baseline under the paper's central mechanism
// (Algorithms 1-3).
func Controlled(w workload.Workload, width, height int, sc Scale, opts ...Option) sim.Config {
	all := make([]Option, 0, len(opts)+1)
	all = append(all, WithController(sim.Central))
	all = append(all, opts...)
	return Baseline(w, width, height, sc, all...)
}

// WithController selects the congestion-control mechanism.
func WithController(k sim.ControllerKind) Option {
	return func(c *sim.Config) { c.Controller = k }
}

// WithRouter selects the network fabric.
func WithRouter(k sim.RouterKind) Option {
	return func(c *sim.Config) { c.Router = k }
}

// WithTopo selects the topology family.
func WithTopo(k topology.Kind) Option {
	return func(c *sim.Config) { c.Topo = k }
}

// WithSeed replaces the conventional seed with an absolute one.
func WithSeed(seed uint64) Option {
	return func(c *sim.Config) { c.Seed = seed }
}

// WithParams replaces the controller parameters (sensitivity sweeps).
func WithParams(p core.Params) Option {
	return func(c *sim.Config) { c.Params = p }
}

// WithStaticUniform throttles every node at the given rate.
func WithStaticUniform(rate float64) Option {
	return func(c *sim.Config) {
		c.Controller = sim.StaticUniform
		c.StaticRate = rate
	}
}

// WithStaticRates throttles node i at rates[i].
func WithStaticRates(rates []float64) Option {
	return func(c *sim.Config) {
		c.Controller = sim.StaticPerNode
		c.StaticRates = rates
	}
}

// WithMapping selects the miss-home mapping; meanHops parameterises the
// locality mappings.
func WithMapping(k sim.MappingKind, meanHops float64) Option {
	return func(c *sim.Config) {
		c.Mapping = k
		c.MeanHops = meanHops
	}
}

// WithGroups services each node's misses within its thread group
// (multithreaded regional traffic).
func WithGroups(groups []int) Option {
	return func(c *sim.Config) {
		c.Mapping = sim.GroupMap
		c.Groups = groups
	}
}

// WithAdaptive enables congestion-aware productive-port routing.
func WithAdaptive() Option {
	return func(c *sim.Config) { c.Adaptive = true }
}

// WithRandomArb replaces Oldest-First deflection arbitration with
// uniform-random arbitration.
func WithRandomArb() Option {
	return func(c *sim.Config) { c.RandomArb = true }
}

// WithSideBuffer gives the BLESS routers a MinBD-style side buffer of
// depth flits.
func WithSideBuffer(depth int) Option {
	return func(c *sim.Config) { c.SideBuffer = depth }
}

// WithWritebacks enables the write-traffic extension.
func WithWritebacks() Option {
	return func(c *sim.Config) { c.Writebacks = true }
}

// WithRecordEpochs keeps per-epoch per-node samples for distribution
// studies.
func WithRecordEpochs() Option {
	return func(c *sim.Config) { c.RecordEpochs = true }
}

// WithWarmup gives the run an uncontrolled warm-start prefix of n
// cycles (0 disables), overriding the scale-level default. All runs of
// a plan that agree modulo measured knobs share one prefix simulation.
func WithWarmup(n int64) Option {
	return func(c *sim.Config) { c.Warmup = n }
}

// WithWorkers pins the intra-sim shard count, overriding the
// executor's oversubscription-safe choice.
func WithWorkers(n int) Option {
	return func(c *sim.Config) { c.Workers = n }
}

// WithObs enables the observability collectors for this run,
// overriding the scale-level default.
func WithObs(o obs.Options) Option {
	return func(c *sim.Config) { c.Obs = o }
}

// WithRingGroup selects the hierarchical ring fabric with local rings
// of n nodes.
func WithRingGroup(n int) Option {
	return func(c *sim.Config) {
		c.Router = sim.HierRing
		c.RingGroup = n
	}
}
