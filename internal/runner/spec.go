package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

// PlanSpec is the wire form of a Plan: the JSON a client submits to the
// nocd daemon (POST /v1/runs) and the payload Execute ships when a
// Scale carries a Remote executor. It mirrors the in-memory Plan/Scale
// pair declaratively — runs name presets, workload categories and With*
// options instead of carrying assembled state — so a submission is
// validated against the same single source of configuration truth
// (the runner presets) that local drivers use.
type PlanSpec struct {
	// Scale overrides the executing side's base scale; zero fields keep
	// the daemon's defaults.
	Scale ScaleSpec `json:"scale"`
	// Runs are the declared simulations, executed and reported in order.
	Runs []RunSpec `json:"runs"`
}

// ScaleSpec is the serializable subset of Scale a submission may set.
// Execution resources (Workers, Parallel) are deliberately absent: they
// belong to the executing process and — by the determinism contract —
// cannot change results.
type ScaleSpec struct {
	// Cycles is the default cycle budget for runs that set none.
	Cycles int64 `json:"cycles,omitempty"`
	// Epoch is the controller period; 0 derives Cycles/10 when Cycles
	// is set, else keeps the base scale's.
	Epoch int64 `json:"epoch,omitempty"`
	// Seed roots the conventional sc.Seed ^ workload.Seed seeding.
	Seed uint64 `json:"seed,omitempty"`
}

// RunSpec declares one simulation, in one of two forms. The declarative
// form names a preset ("baseline", "controlled", "static"), a workload
// category and option fields, and is resolved through the runner's
// preset builders. The raw form carries a fully assembled sim.Config as
// JSON (the shape Execute ships for remote plans) and is validated
// structurally before it may reach a simulator.
type RunSpec struct {
	// Label names the run in results; "" derives "runNN".
	Label string `json:"label"`
	// Cycles is this run's budget; 0 inherits the scale's.
	Cycles int64 `json:"cycles,omitempty"`

	// Preset selects the configuration builder: "baseline" (default),
	// "controlled", or "static" (with StaticRate).
	Preset string `json:"preset,omitempty"`
	// Workload is the §6.1 category name (H, M, L, HML, HM, HL, ML).
	Workload string `json:"workload,omitempty"`
	// Width and Height are the mesh dimensions; 0 means 4, and Height
	// defaults to Width.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Seed generates the workload; 0 uses the scale seed.
	Seed uint64 `json:"seed,omitempty"`
	// Router selects the fabric: "bless" (default), "buffered",
	// "hierring". RingGroup sets the hierring local-ring size.
	Router    string `json:"router,omitempty"`
	RingGroup int    `json:"ring_group,omitempty"`
	// Mapping selects the miss-home mapping: "xor" (default), "exp",
	// "pow"; MeanHops parameterises the locality mappings.
	Mapping  string  `json:"mapping,omitempty"`
	MeanHops float64 `json:"mean_hops,omitempty"`
	// Adaptive, RandomArb and SideBuffer toggle the BLESS variants.
	Adaptive   bool `json:"adaptive,omitempty"`
	RandomArb  bool `json:"random_arb,omitempty"`
	SideBuffer int  `json:"side_buffer,omitempty"`
	// StaticRate is the uniform throttle rate for the "static" preset.
	StaticRate float64 `json:"static_rate,omitempty"`

	// Config, when present, is a fully assembled sim.Config and the
	// declarative fields above must be empty.
	Config json.RawMessage `json:"config,omitempty"`
}

// ResolvedRun is one validated, assembled run of a PlanSpec: the
// executable configuration plus its content address.
type ResolvedRun struct {
	Label  string
	Config sim.Config
	Cycles int64
	// Key is the run's content address (CacheKey of Config+Cycles).
	Key string
}

// ScaleAt applies the spec's overrides to a base scale, mirroring the
// cmd/experiments flag semantics: setting cycles without an epoch
// derives epoch = cycles/10.
func (ps PlanSpec) ScaleAt(base Scale) Scale {
	sc := base
	if ps.Scale.Cycles > 0 {
		sc.Cycles = ps.Scale.Cycles
		if ps.Scale.Epoch == 0 {
			sc.Epoch = sc.Cycles / 10
		}
	}
	if ps.Scale.Epoch > 0 {
		sc.Epoch = ps.Scale.Epoch
	}
	if ps.Scale.Seed != 0 {
		sc.Seed = ps.Scale.Seed
	}
	return sc
}

// Resolve validates the whole spec against a base scale and returns the
// effective scale plus one assembled run per spec entry. Any invalid
// entry fails the whole spec, so a submission is accepted or rejected
// atomically before it can occupy a queue slot.
func (ps PlanSpec) Resolve(base Scale) (Scale, []ResolvedRun, error) {
	sc := ps.ScaleAt(base)
	if len(ps.Runs) == 0 {
		return sc, nil, fmt.Errorf("runner: plan declares no runs")
	}
	out := make([]ResolvedRun, len(ps.Runs))
	for i, r := range ps.Runs {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("run%02d", i)
		}
		cfg, cycles, err := r.Resolve(sc)
		if err != nil {
			return sc, nil, err
		}
		key, err := CacheKey(cfg, cycles)
		if err != nil {
			return sc, nil, err
		}
		out[i] = ResolvedRun{Label: label, Config: cfg, Cycles: cycles, Key: key}
	}
	return sc, out, nil
}

// Resolve assembles the spec into an executable configuration under sc.
func (r RunSpec) Resolve(sc Scale) (sim.Config, int64, error) {
	fail := func(format string, args ...any) (sim.Config, int64, error) {
		return sim.Config{}, 0, fmt.Errorf("runner: run %q: %s", r.Label, fmt.Sprintf(format, args...))
	}
	cycles := r.Cycles
	if cycles == 0 {
		cycles = sc.Cycles
	}
	if cycles <= 0 {
		return fail("no cycle budget (set runs[].cycles or scale.cycles)")
	}

	if len(r.Config) > 0 {
		if r.Preset != "" || r.Workload != "" || r.Router != "" || r.Mapping != "" {
			return fail("config and declarative fields are mutually exclusive")
		}
		var cfg sim.Config
		dec := json.NewDecoder(bytes.NewReader(r.Config))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return fail("decoding config: %v", err)
		}
		if err := validateRawConfig(&cfg); err != nil {
			return fail("%v", err)
		}
		return cfg, cycles, nil
	}

	cat, ok := workload.CategoryByName(r.Workload)
	if !ok {
		return fail("unknown workload category %q", r.Workload)
	}
	width, height := r.Width, r.Height
	if width == 0 {
		width = 4
	}
	if height == 0 {
		height = width
	}
	if width < 0 || height < 0 {
		return fail("mesh dimensions %dx%d out of range", width, height)
	}
	seed := r.Seed
	if seed == 0 {
		seed = sc.Seed
	}
	w := workload.Generate(cat, width*height, seed)

	var opts []Option
	switch r.Router {
	case "", "bless":
	case "buffered":
		opts = append(opts, WithRouter(sim.Buffered))
	case "hierring":
		group := r.RingGroup
		if group == 0 {
			group = 8
		}
		if (width*height)%group != 0 {
			return fail("%d nodes not a multiple of ring group %d", width*height, group)
		}
		opts = append(opts, WithRingGroup(group))
	default:
		return fail("unknown router %q (bless, buffered, hierring)", r.Router)
	}
	switch r.Mapping {
	case "", "xor":
	case "exp":
		opts = append(opts, WithMapping(sim.ExpMap, r.MeanHops))
	case "pow":
		opts = append(opts, WithMapping(sim.PowMap, r.MeanHops))
	default:
		return fail("unknown mapping %q (xor, exp, pow)", r.Mapping)
	}
	if r.Adaptive {
		opts = append(opts, WithAdaptive())
	}
	if r.RandomArb {
		opts = append(opts, WithRandomArb())
	}
	if r.SideBuffer > 0 {
		opts = append(opts, WithSideBuffer(r.SideBuffer))
	}

	var cfg sim.Config
	switch r.Preset {
	case "", "baseline":
		cfg = Baseline(w, width, height, sc, opts...)
	case "controlled":
		cfg = Controlled(w, width, height, sc, opts...)
	case "static":
		if r.StaticRate <= 0 || r.StaticRate > 1 {
			return fail("static preset needs static_rate in (0, 1], got %v", r.StaticRate)
		}
		opts = append(opts, WithStaticUniform(r.StaticRate))
		cfg = Baseline(w, width, height, sc, opts...)
	default:
		return fail("unknown preset %q (baseline, controlled, static)", r.Preset)
	}
	return cfg, cycles, nil
}

// validateRawConfig rejects the raw-config shapes that would panic the
// simulator's constructor, so a malformed submission becomes a 400
// instead of a dead queue worker.
func validateRawConfig(cfg *sim.Config) error {
	if cfg.Width < 0 || cfg.Height < 0 {
		return fmt.Errorf("mesh dimensions %dx%d out of range", cfg.Width, cfg.Height)
	}
	n := nodesOf(*cfg)
	if cfg.Apps != nil && len(cfg.Apps) != n {
		return fmt.Errorf("config assigns %d apps to %d nodes", len(cfg.Apps), n)
	}
	if cfg.Router == sim.HierRing {
		group := cfg.RingGroup
		if group == 0 {
			group = 8
		}
		if group < 0 || n%group != 0 {
			return fmt.Errorf("%d nodes not a multiple of ring group %d", n, group)
		}
	}
	if cfg.Controller == sim.StaticPerNode && len(cfg.StaticRates) != n {
		return fmt.Errorf("StaticPerNode needs %d rates, got %d", n, len(cfg.StaticRates))
	}
	if cfg.Mapping == sim.GroupMap && len(cfg.Groups) != n {
		return fmt.Errorf("GroupMap needs %d group ids, got %d", n, len(cfg.Groups))
	}
	return nil
}

// CacheKey returns a run's content address: the hex sha256 of the
// canonicalized configuration plus the cycle budget. Canonicalization
// zeroes the two config fields that provably cannot influence results —
// Workers (the shard count, pinned result-invariant by the worker-
// invariance tests) and Obs (passive collectors) — and marshals the
// rest in struct declaration order. Two submissions describing the same
// simulation therefore collide on the same key regardless of phrasing
// or of where and how parallel they execute; equal keys plus the
// determinism contract mean equal counters, which is what makes a
// content-addressed result cache sound.
func CacheKey(cfg sim.Config, cycles int64) (string, error) {
	cfg.Workers = 0
	cfg.Obs = obs.Options{}
	b, err := json.Marshal(struct {
		Config sim.Config `json:"config"`
		Cycles int64      `json:"cycles"`
	}{cfg, cycles})
	if err != nil {
		return "", fmt.Errorf("runner: canonicalizing cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// DigestStrings digests an ordered list of strings — run content
// addresses, typically — into one hex sha256. Each element is
// length-prefixed so no concatenation of different lists can collide.
func DigestStrings(ss []string) string {
	h := sha256.New()
	var b [8]byte
	for _, s := range ss {
		binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
		h.Write(b[:])
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RemoteResult is one remotely executed run's report.
type RemoteResult struct {
	// Metrics is the run's full summary, exactly as a local Execute
	// would have produced it (the determinism contract makes the two
	// byte-identical).
	Metrics sim.Metrics `json:"metrics"`
	// ElapsedMS is the executing side's wall clock for the run; 0 when
	// the result came from its cache.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Cached reports that the remote side served the run from its
	// content-addressed cache without simulating.
	Cached bool `json:"cached"`
}

// Remote executes assembled run specs somewhere else — the nocd
// daemon's job queue. Implementations return one result per spec run,
// in spec order.
type Remote interface {
	ExecuteSpecs(PlanSpec) ([]RemoteResult, error)
}
