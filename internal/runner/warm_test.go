package runner

import (
	"reflect"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/snap"
	"nocsim/internal/workload"
)

func warmScale(t *testing.T, capBytes int64) Scale {
	t.Helper()
	st, err := snap.NewStore(t.TempDir(), capBytes)
	if err != nil {
		t.Fatal(err)
	}
	sc := DefaultScale()
	sc.Cycles = 3000
	sc.Epoch = 300
	sc.Workers = 1
	sc.Parallel = 2
	sc.Snapshots = st
	sc.Warmup = 1000
	return sc
}

func warmWorkload(sc Scale) workload.Workload {
	cat, _ := workload.CategoryByName("HM")
	return workload.Generate(cat, 16, sc.Seed+11)
}

// TestWarmSweepSharesPrefix checks the sweep contract: every point of a
// static-rate sweep forks from one shared warmup simulation, computed
// once and filed in the store, and a second plan reuses it from disk.
func TestWarmSweepSharesPrefix(t *testing.T) {
	sc := warmScale(t, 0)
	w := warmWorkload(sc)
	rates := []float64{0.2, 0.5, 0.8}

	addSweep := func(plan *Plan) {
		for _, rate := range rates {
			plan.Add("warm/static", Baseline(w, 4, 4, sc, WithStaticUniform(rate)), sc.Cycles)
		}
	}
	plan := NewPlan(sc)
	addSweep(plan)
	ms := plan.Execute()
	for i, m := range ms {
		if want := sc.Warmup + sc.Cycles; m.Cycles != want {
			t.Errorf("run %d covered %d cycles, want %d (warmup + measured)", i, m.Cycles, want)
		}
	}
	st := sc.Snapshots.Stats()
	if st.Writes != 1 {
		t.Errorf("sweep wrote %d warm prefixes, want exactly 1 shared", st.Writes)
	}

	// A fresh plan (new single-flight) over the same prefix hits the
	// store instead of re-simulating the warmup.
	plan2 := NewPlan(sc)
	addSweep(plan2)
	ms2 := plan2.Execute()
	st = sc.Snapshots.Stats()
	if st.Hits == 0 {
		t.Error("second plan never hit the checkpoint store")
	}
	if st.Writes != 1 {
		t.Errorf("second plan wrote %d more prefixes, want reuse", st.Writes-1)
	}
	for i := range ms {
		if !reflect.DeepEqual(ms[i], ms2[i]) {
			t.Errorf("run %d: store-warmed metrics differ between plans", i)
		}
	}
}

// TestWarmStoreIsInvisible pins the soundness property: metrics are
// identical with a cold store, a primed store, a prefix-extended store,
// and no store at all.
func TestWarmStoreIsInvisible(t *testing.T) {
	base := warmScale(t, 0)
	w := warmWorkload(base)
	exec := func(sc Scale) []sim.Metrics {
		plan := NewPlan(sc)
		plan.Add("inv/central", Controlled(w, 4, 4, sc), sc.Cycles)
		plan.Add("inv/static", Baseline(w, 4, 4, sc, WithStaticUniform(0.4)), sc.Cycles)
		return plan.Execute()
	}

	want := func() []sim.Metrics {
		sc := base
		sc.Snapshots = nil
		return exec(sc)
	}()

	// Cold store: computes and files the prefix.
	got := exec(base)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("run %d: cold-store metrics differ from storeless", i)
		}
	}

	// Prefix extension: a shorter warmup checkpoint exists (filed by a
	// half-warmup plan — the warm digest is Warmup-invariant), so the
	// full prefix is built by resuming it, not from scratch.
	ext := base
	ext.Snapshots, _ = snap.NewStore(t.TempDir(), 0)
	half := ext
	half.Warmup = base.Warmup / 2
	exec(half)
	if st := ext.Snapshots.Stats(); st.Writes != 1 {
		t.Fatalf("half-warmup plan wrote %d prefixes, want 1", st.Writes)
	}
	got = exec(ext)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("run %d: prefix-extended metrics differ from storeless", i)
		}
	}
	if st := ext.Snapshots.Stats(); st.Writes != 2 {
		t.Errorf("extension wrote %d total prefixes, want 2 (half + full)", st.Writes)
	}
}

// TestSameConfigResume checks the extend path: a checkpoint of the full
// configuration lets a longer run of the same config resume instead of
// recomputing, with metrics identical to a cold run of the full length.
func TestSameConfigResume(t *testing.T) {
	st, err := snap.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := DefaultScale()
	sc.Cycles = 2000
	sc.Epoch = 200
	sc.Workers = 1
	sc.Parallel = 1
	sc.Snapshots = st
	sc.Obs = obs.Options{SampleInterval: 250}
	w := warmWorkload(sc)
	cfg := Controlled(w, 4, 4, sc)

	// First run: simulate and checkpoint the final state.
	plan := NewPlan(sc)
	plan.AddRun(Run{
		Label: "resume/head", Config: cfg, Cycles: sc.Cycles,
		Observe: func(s *sim.Sim) {
			if err := Checkpoint(st, cfg, s); err != nil {
				t.Errorf("Checkpoint: %v", err)
			}
		},
	})
	plan.Execute()

	// Extended run: must restore the checkpoint and only step the tail.
	before := st.Stats()
	longer := sc.Cycles + 1000
	plan2 := NewPlan(sc)
	plan2.Add("resume/extended", cfg, longer)
	got := plan2.Execute()[0]
	if after := st.Stats(); after.Hits <= before.Hits {
		t.Error("extended run never hit the checkpoint store")
	}

	// Reference: the same length cold, no store.
	cold := sc
	cold.Snapshots = nil
	plan3 := NewPlan(cold)
	plan3.Add("resume/cold", cfg, longer)
	want := plan3.Execute()[0]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed metrics differ from cold run:\n got %+v\nwant %+v", got, want)
	}
}
