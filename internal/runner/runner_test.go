package runner

import (
	"fmt"
	"reflect"
	"testing"

	"nocsim/internal/app"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

func testScale() Scale {
	return Scale{
		Cycles:    6_000,
		Epoch:     2_000,
		Workloads: 4,
		MaxNodes:  64,
		Workers:   1,
		Seed:      9,
	}
}

func testWorkload(n int) workload.Workload {
	return workload.Uniform(app.MustByName("mcf"), n)
}

// buildPlan declares a small mixed plan: different controllers, cycles
// and seeds, so misordered results cannot collide.
func buildPlan(sc Scale) *Plan {
	w := testWorkload(16)
	p := NewPlan(sc)
	p.Add("base", Baseline(w, 4, 4, sc), sc.Cycles)
	p.Add("ctl", Controlled(w, 4, 4, sc), sc.Cycles)
	p.Add("static", Baseline(w, 4, 4, sc, WithStaticUniform(0.5)), sc.Cycles+2_000)
	p.Add("seeded", Baseline(w, 4, 4, sc, WithSeed(77)), sc.Cycles)
	return p
}

func TestExecuteDeterministicAcrossPools(t *testing.T) {
	var first []sim.Metrics
	var firstStats []Stat
	for _, parallel := range []int{1, 4, 8} {
		sc := testScale()
		sc.Parallel = parallel
		p := buildPlan(sc)
		ms := p.Execute()
		if parallel == 1 {
			first = ms
			firstStats = p.Stats()
			continue
		}
		if !reflect.DeepEqual(ms, first) {
			t.Errorf("parallel=%d metrics differ from sequential", parallel)
		}
		for i, s := range p.Stats() {
			if s.Label != firstStats[i].Label || s.Cycles != firstStats[i].Cycles || s.Nodes != firstStats[i].Nodes {
				t.Errorf("parallel=%d stat %d = %+v, want %+v", parallel, i, s, firstStats[i])
			}
		}
	}
}

func TestExecuteOrderAndStats(t *testing.T) {
	sc := testScale()
	sc.Parallel = 4
	p := buildPlan(sc)
	ms := p.Execute()
	if len(ms) != 4 {
		t.Fatalf("got %d metrics, want 4", len(ms))
	}
	// The third run is 2000 cycles longer: result order must follow
	// declaration order, not completion order.
	if ms[2].Cycles != sc.Cycles+2_000 {
		t.Errorf("run 2 simulated %d cycles, want %d", ms[2].Cycles, sc.Cycles+2_000)
	}
	stats := p.Stats()
	wantLabels := []string{"base", "ctl", "static", "seeded"}
	for i, s := range stats {
		if s.Label != wantLabels[i] {
			t.Errorf("stat %d label %q, want %q", i, s.Label, wantLabels[i])
		}
		if s.Nodes != 16 {
			t.Errorf("stat %d nodes = %d, want 16", i, s.Nodes)
		}
		if s.Elapsed <= 0 {
			t.Errorf("stat %d elapsed not recorded", i)
		}
	}
}

func TestExecuteEmptyPlan(t *testing.T) {
	p := NewPlan(testScale())
	if ms := p.Execute(); len(ms) != 0 {
		t.Errorf("empty plan returned %d metrics", len(ms))
	}
}

func TestObserveStride(t *testing.T) {
	sc := testScale()
	sc.Parallel = 2
	w := testWorkload(16)
	p := NewPlan(sc)
	var windows []int64
	p.AddRun(Run{
		Label:  "strided",
		Config: Baseline(w, 4, 4, sc),
		Cycles: 6_000,
		Stride: 2_000,
		Observe: func(s *sim.Sim) {
			windows = append(windows, s.Cycle())
		},
	})
	ms := p.Execute()
	want := []int64{2_000, 4_000, 6_000}
	if !reflect.DeepEqual(windows, want) {
		t.Errorf("observe windows = %v, want %v", windows, want)
	}
	if ms[0].Cycles != 6_000 {
		t.Errorf("strided run simulated %d cycles, want 6000", ms[0].Cycles)
	}
}

func TestObserveAtEnd(t *testing.T) {
	sc := testScale()
	w := testWorkload(16)
	p := NewPlan(sc)
	calls := 0
	p.AddRun(Run{
		Label:   "end",
		Config:  Baseline(w, 4, 4, sc),
		Cycles:  4_000,
		Observe: func(s *sim.Sim) { calls++ },
	})
	p.Execute()
	if calls != 1 {
		t.Errorf("observe called %d times, want 1", calls)
	}
}

func TestMapOrder(t *testing.T) {
	sc := testScale()
	sc.Parallel = 8
	got := Map(sc, 20, func(i int) string { return fmt.Sprintf("r%d", i) })
	for i, v := range got {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("Map[%d] = %q: order not preserved", i, v)
		}
	}
}

func TestWorkersFor(t *testing.T) {
	if WorkersFor(16, 8) != 1 {
		t.Error("small meshes must run single-threaded")
	}
	if WorkersFor(1024, 8) != 8 {
		t.Error("large meshes must shard")
	}
	if WorkersFor(1024, 1) != 1 {
		t.Error("workers<=1 must stay sequential")
	}
}

func TestIntraWorkersComposition(t *testing.T) {
	// pool x intra must never exceed GOMAXPROCS (here: whatever the
	// test machine has); with a pool as wide as GOMAXPROCS, each sim
	// gets exactly one shard.
	sc := Scale{Workers: 64}
	if got := intraWorkers(sc, sc.pool(1<<30)); got != 1 {
		t.Errorf("full-width pool leaves intra=%d, want 1", got)
	}
	// A pool of one releases the whole budget to intra-sim sharding,
	// still capped at the scale's Workers.
	sc.Parallel = 1
	if got := intraWorkers(sc, sc.pool(1)); got < 1 {
		t.Errorf("intra=%d, want >=1", got)
	}
}

func TestPoolBounds(t *testing.T) {
	sc := Scale{Parallel: 8}
	if got := sc.pool(3); got != 3 {
		t.Errorf("pool clamps to run count: got %d, want 3", got)
	}
	sc.Parallel = 0
	if got := sc.pool(1); got != 1 {
		t.Errorf("pool(1) = %d, want 1", got)
	}
}

func TestPresets(t *testing.T) {
	sc := testScale()
	w := testWorkload(16)
	cfg := Baseline(w, 4, 4, sc)
	if cfg.Controller != sim.NoControl || cfg.Seed != sc.Seed^w.Seed {
		t.Errorf("baseline preset wrong: %+v", cfg)
	}
	if cfg.Params.Epoch != sc.Epoch {
		t.Errorf("preset epoch = %d, want %d", cfg.Params.Epoch, sc.Epoch)
	}
	if cfg.Workers != 0 {
		t.Error("presets must leave Workers for the executor")
	}
	ctl := Controlled(w, 4, 4, sc)
	if ctl.Controller != sim.Central {
		t.Error("controlled preset must select the central mechanism")
	}
	// Later options win, including over Controlled's own controller.
	open := Controlled(w, 4, 4, sc, WithController(sim.NoControl))
	if open.Controller != sim.NoControl {
		t.Error("options must apply after the preset's defaults")
	}
	rates := []float64{1: 0.9, 15: 0}
	per := Baseline(w, 4, 4, sc, WithStaticRates(rates), WithSeed(3))
	if per.Controller != sim.StaticPerNode || per.Seed != 3 || len(per.StaticRates) != 16 {
		t.Errorf("option stack wrong: %+v", per)
	}
}
