package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
)

// ExportObs writes every enabled collector of an observed simulation
// into dir as <label>.<kind> files: samples.jsonl and samples.csv
// (interval time series), epochs.jsonl and epochs.csv (the congestion
// decision ledger), trace.json (Chrome trace-event format), nodes.csv
// and links.csv (spatial grids), and manifest.json (the
// reproducibility record). It is a no-op when the simulation was built
// without collectors. All exports except the manifest's elapsed_ms
// field are deterministic: byte-identical at any Workers or -parallel
// setting.
func ExportObs(s *sim.Sim, dir, label string, cfg sim.Config, elapsed time.Duration) error {
	o := s.Obs()
	if o == nil {
		return nil
	}
	// MkdirAll is a no-op on a pre-existing directory, so exporting many
	// runs (or re-running) into one ObsDir is idempotent; only a
	// non-directory squatting on the path fails.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runner: creating obs dir %s: %w", dir, err)
	}
	base := filepath.Join(dir, sanitizeLabel(label))

	if o.Sampler != nil {
		if err := writeFile(base+".samples.jsonl", o.Sampler.WriteJSONL); err != nil {
			return err
		}
		if err := writeFile(base+".samples.csv", o.Sampler.WriteCSV); err != nil {
			return err
		}
	}
	if o.Epochs != nil {
		if err := writeFile(base+".epochs.jsonl", o.Epochs.WriteJSONL); err != nil {
			return err
		}
		if err := writeFile(base+".epochs.csv", o.Epochs.WriteCSV); err != nil {
			return err
		}
	}
	if o.Tracer != nil {
		if err := writeFile(base+".trace.json", o.Tracer.WriteChromeTrace); err != nil {
			return err
		}
	}
	if o.Spatial != nil {
		if err := writeFile(base+".nodes.csv", o.Spatial.WriteNodeCSV); err != nil {
			return err
		}
		if err := writeFile(base+".links.csv", o.Spatial.WriteLinkCSV); err != nil {
			return err
		}
	}

	m := s.Metrics()
	var retired int64
	for _, r := range m.Retired {
		retired += r
	}
	rawCfg, err := json.Marshal(&cfg)
	if err != nil {
		return fmt.Errorf("runner: encoding config for manifest: %w", err)
	}
	man := obs.Manifest{
		Label:        label,
		Seed:         cfg.Seed,
		Nodes:        m.Nodes,
		Cycles:       m.Cycles,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		CountersHash: obs.HashCounters(m.Net, retired, m.Misses),
		Config:       rawCfg,
	}
	man.WarmSource, man.WarmCycle = s.Origin()
	if man.WarmSource == "" {
		man.WarmSource = "cold"
	}
	man.FillEnv()
	return writeFile(base+".manifest.json", man.Write)
}

// writeFile creates path and streams one collector export into it.
// Every failure path returns a pkg:-prefixed wrapped error, so a caller
// surfacing it names the layer without a stack walk.
func writeFile(path string, emit func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runner: creating %s: %w", path, err)
	}
	if err := emit(f); err != nil {
		f.Close()
		return fmt.Errorf("runner: exporting %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runner: exporting %s: %w", path, err)
	}
	return nil
}

// sanitizeLabel maps a run label onto a safe file stem: path
// separators and shell-hostile characters become dashes.
func sanitizeLabel(label string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "run"
	}
	return b.String()
}
