package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is the live execution reporter: one line per completed run,
// serialized across the pool's worker goroutines. It lives in the
// runner because reporting needs the wall clock, and internal/runner
// (with cmd/) is the only layer the determinism lint allows to read
// it; everything it prints is diagnostic and never feeds back into a
// simulation or a result.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	start time.Time
}

// NewProgress returns a reporter writing to w (typically stderr).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

// begin arms the reporter for a plan of total runs.
func (p *Progress) begin(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.done = 0
	p.start = time.Now()
}

// finish reports one completed run.
func (p *Progress) finish(st Stat) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "[%*d/%d] %-40s %5d nodes %9d cycles %8.2fs (total %.1fs)\n",
		digits(p.total), p.done, p.total, st.Label, st.Nodes, st.Cycles,
		st.Elapsed.Seconds(), time.Since(p.start).Seconds())
}

// digits returns the print width of n, for aligned counters.
func digits(n int) int {
	w := 1
	for n >= 10 {
		n /= 10
		w++
	}
	return w
}
