package trace

import (
	"bytes"
	"strings"
	"testing"

	"nocsim/internal/app"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 11})
	// Capture the stream twice from the same seed: once to record, once
	// as the reference.
	ref := New(Config{Profile: app.MustByName("mcf"), Seed: 11})
	var buf bytes.Buffer
	const n = 100_000
	mems, err := Record(&buf, "mcf", g, n)
	if err != nil {
		t.Fatal(err)
	}
	if mems == 0 {
		t.Fatal("no memory references recorded")
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "mcf" || rp.Len() != n || rp.MemRefs() != mems {
		t.Fatalf("metadata: name=%q len=%d refs=%d", rp.Name(), rp.Len(), rp.MemRefs())
	}
	for i := 0; i < n; i++ {
		want := ref.Next()
		got := rp.Next()
		if got != want {
			t.Fatalf("instruction %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 3})
	var buf bytes.Buffer
	const n = 1000
	if _, err := Record(&buf, "mcf", g, n); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]Instr, n)
	for i := range first {
		first[i] = rp.Next()
	}
	if rp.Loops() != 0 {
		t.Fatalf("looped too early: %d", rp.Loops())
	}
	for i := 0; i < n; i++ {
		if got := rp.Next(); got != first[i] {
			t.Fatalf("second pass diverged at %d: %+v vs %+v", i, got, first[i])
		}
	}
	if rp.Loops() != 1 {
		t.Errorf("loops = %d, want 1", rp.Loops())
	}
}

func TestReplayComputeOnlyTrace(t *testing.T) {
	// A trace with no memory references at all: only the tail run.
	var buf bytes.Buffer
	if _, err := Record(&buf, "idle", computeOnly{}, 500); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ { // crosses the loop boundary twice
		if in := rp.Next(); in.IsMem {
			t.Fatal("compute-only trace produced a memory reference")
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX rest"),
		"truncated": append([]byte(traceMagic), 3, 'm', 'c', 'f'),
	}
	for name, data := range cases {
		if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadTrace accepted corrupt input", name)
		}
	}
}

func TestReadTraceRejectsCountMismatch(t *testing.T) {
	// Record a valid trace then corrupt the header instruction count.
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 7})
	var buf bytes.Buffer
	if _, err := Record(&buf, "m", g, 1000); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// name "m" is at offset 4 (uvarint len=1) + 1; count uvarint starts
	// at offset 6. 1000 encodes as 0xe8 0x07; corrupt it.
	data[6] ^= 0x01
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt count accepted or wrong error: %v", err)
	}
}

func TestCompression(t *testing.T) {
	// The format should cost well under 2 bytes/instruction for a
	// memory-heavy app (deltas are small).
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 9})
	var buf bytes.Buffer
	const n = 200_000
	if _, err := Record(&buf, "mcf", g, n); err != nil {
		t.Fatal(err)
	}
	if perInsn := float64(buf.Len()) / n; perInsn > 2 {
		t.Errorf("trace costs %.2f bytes/instruction, want < 2", perInsn)
	}
}

// computeOnly is a Source of pure compute instructions.
type computeOnly struct{}

func (computeOnly) Next() Instr { return Instr{} }

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), -9223372036854775808, 9223372036854775807} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round trip failed for %d", v)
		}
	}
}

func TestStoreFlagSurvivesRoundTrip(t *testing.T) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 33, StoreFrac: 0.4})
	ref := New(Config{Profile: app.MustByName("mcf"), Seed: 33, StoreFrac: 0.4})
	var buf bytes.Buffer
	const n = 50_000
	if _, err := Record(&buf, "mcf", g, n); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stores := 0
	for i := 0; i < n; i++ {
		want := ref.Next()
		got := rp.Next()
		if got != want {
			t.Fatalf("instruction %d: %+v vs %+v", i, got, want)
		}
		if got.IsStore {
			stores++
		}
	}
	if stores == 0 {
		t.Fatal("no stores exercised")
	}
}
