package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements a compact on-disk instruction-trace format, the
// analogue of the paper's PinPoints methodology: capture a
// representative execution slice once, then replay it in the CPU model
// during simulation (§6.1). A recorded trace decouples workload
// generation from simulation and makes runs byte-for-byte reproducible
// across machines.
//
// Format (little endian):
//
//	magic   [4]byte  "NTR1"
//	name    uvarint length + bytes (application name)
//	insns   uvarint  total instruction count
//	records: repeated (computeRun uvarint, memFlag byte, addr uvarint)
//	         computeRun compute instructions followed, when memFlag is
//	         1 (load) or 2 (store), by one memory reference at addr.
//	         memFlag==0 terminates the stream (trailing compute run
//	         only).
//
// Addresses are delta-encoded against the previous memory address
// (zig-zag), which makes hot-set revisits and sequential streams cheap.

const traceMagic = "NTR1"

// Record writes n instructions drawn from src to w in trace format,
// labelled with name. It returns the number of memory references
// recorded.
func Record(w io.Writer, name string, src Source, n int64) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return 0, err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := putUvarint(uint64(len(name))); err != nil {
		return 0, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return 0, err
	}
	if err := putUvarint(uint64(n)); err != nil {
		return 0, err
	}
	var run uint64
	var mems int64
	prev := uint64(0)
	for i := int64(0); i < n; i++ {
		in := src.Next()
		if !in.IsMem {
			run++
			continue
		}
		mems++
		if err := putUvarint(run); err != nil {
			return mems, err
		}
		flag := byte(1)
		if in.IsStore {
			flag = 2
		}
		if err := bw.WriteByte(flag); err != nil {
			return mems, err
		}
		if err := putUvarint(zigzag(int64(in.Addr) - int64(prev))); err != nil {
			return mems, err
		}
		prev = in.Addr
		run = 0
	}
	if err := putUvarint(run); err != nil {
		return mems, err
	}
	if err := bw.WriteByte(0); err != nil {
		return mems, err
	}
	return mems, bw.Flush()
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Source produces instructions; *Generator and *Replay both implement
// it, so the CPU model can run from either.
type Source interface {
	Next() Instr
}

// record is one decoded trace record.
type record struct {
	run   uint32 // compute instructions before the reference
	addr  uint64
	store bool
}

// Replay replays a recorded trace, looping when it reaches the end
// (the paper replays representative slices for the whole simulation).
type Replay struct {
	name    string
	insns   int64
	records []record
	tailRun uint32

	// iteration state
	idx     int
	inRun   uint32
	atTail  bool
	tailPos uint32
	looped  int64
}

// ReadTrace decodes a trace written by Record.
func ReadTrace(r io.Reader) (*Replay, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("trace: bad magic (not a trace file)")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 4096 {
		return nil, errors.New("trace: unreasonable name length")
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	insns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: instruction count: %w", err)
	}
	t := &Replay{name: string(nameBuf), insns: int64(insns)}
	prev := uint64(0)
	for {
		run, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: run length: %w", err)
		}
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record flag: %w", err)
		}
		if flag == 0 {
			t.tailRun = uint32(run)
			break
		}
		if flag > 2 {
			return nil, fmt.Errorf("trace: unknown record flag %d", flag)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: address: %w", err)
		}
		addr := uint64(int64(prev) + unzigzag(delta))
		prev = addr
		t.records = append(t.records, record{run: uint32(run), addr: addr, store: flag == 2})
	}
	// Sanity: records must account for exactly `insns` instructions.
	var total int64 = int64(t.tailRun)
	for _, rec := range t.records {
		total += int64(rec.run) + 1
	}
	if total != t.insns {
		return nil, fmt.Errorf("trace: corrupt: %d instructions recorded, header says %d", total, t.insns)
	}
	if t.insns == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return t, nil
}

// Name returns the recorded application name.
func (t *Replay) Name() string { return t.name }

// Len returns the instructions per loop iteration.
func (t *Replay) Len() int64 { return t.insns }

// MemRefs returns the memory references per loop iteration.
func (t *Replay) MemRefs() int64 { return int64(len(t.records)) }

// Loops returns how many times the trace has wrapped.
func (t *Replay) Loops() int64 { return t.looped }

// Next returns the next instruction, looping at the end of the trace.
func (t *Replay) Next() Instr {
	for {
		if t.atTail {
			if t.tailPos < t.tailRun {
				t.tailPos++
				return Instr{}
			}
			// Wrap around.
			t.atTail = false
			t.tailPos = 0
			t.idx = 0
			t.inRun = 0
			t.looped++
			continue
		}
		if t.idx >= len(t.records) {
			t.atTail = true
			continue
		}
		rec := &t.records[t.idx]
		if t.inRun < rec.run {
			t.inRun++
			return Instr{}
		}
		t.idx++
		t.inRun = 0
		return Instr{IsMem: true, IsStore: rec.store, Addr: rec.addr}
	}
}
