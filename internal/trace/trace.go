// Package trace generates the synthetic per-application instruction
// streams that stand in for the paper's PinPoints-captured SPEC CPU2006
// traces (see DESIGN.md §1 for why the substitution is faithful).
//
// Each generator emits an infinite, deterministic instruction stream
// (compute or memory-reference) whose L1 hit/miss behaviour is
// controlled by construction: "hit" references revisit a small hot
// working set that stays resident in the real L1 model, while "miss"
// references stream through fresh blocks that can never be resident. The
// miss probability is calibrated so that the application's cumulative
// IPF (instructions per flit) matches its Table 1 mean, and it is
// modulated by a two-phase Markov process to reproduce the temporal
// intensity variation of Fig. 6 and the per-window IPF variance.
//
// Crucially, the stream is a pure function of the seed: network
// congestion changes when an instruction issues, never which instruction
// comes next — the same closed-loop property the paper's trace-replay
// simulator has.
package trace

import (
	"math"

	"nocsim/internal/app"
	"nocsim/internal/rng"
)

// Instr is one instruction of the stream.
type Instr struct {
	// IsMem marks a memory reference; Addr is its byte address.
	IsMem bool
	// IsStore marks a memory reference as a write. Stores dirty the L1
	// line they touch; evicting a dirty line later emits a writeback
	// packet (when the simulator's writeback modelling is enabled).
	IsStore bool
	Addr    uint64
}

// Config parameterises a generator.
type Config struct {
	// Profile is the application to model.
	Profile app.Profile
	// FlitsPerMiss is the total flit cost of one L1 miss (request packet
	// + reply packet); 0 means 5 (1 request flit + 4 data flits).
	FlitsPerMiss int
	// BlockBytes is the cache block size; 0 means 32.
	BlockBytes int
	// HotBlocks is the resident working-set size in blocks; 0 means 64.
	HotBlocks int
	// PhaseDwellInsns is the mean phase length in instructions; 0 means
	// 50000.
	PhaseDwellInsns int
	// StoreFrac is the fraction of memory references that are writes;
	// 0 disables store marking (the paper's traffic model needs only
	// request/reply traffic; writebacks are this reproduction's
	// extension and off by default).
	StoreFrac float64
	// AddrBase offsets this stream's address space; give each core a
	// disjoint region.
	AddrBase uint64
	// Seed makes the stream deterministic.
	Seed uint64
}

// Generator produces the instruction stream. Not safe for concurrent
// use; create one per core.
type Generator struct {
	cfg     Config
	r       *rng.Source
	memFrac float64
	// pMiss[phase] is the per-memory-reference miss-intent probability.
	pMiss [2]float64
	phase int
	dwell int64

	hot       []uint64
	streamPtr uint64

	insns  int64
	misses int64
}

// New builds a generator calibrated to cfg.Profile.
func New(cfg Config) *Generator {
	if cfg.FlitsPerMiss <= 0 {
		cfg.FlitsPerMiss = 5
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 32
	}
	if cfg.HotBlocks <= 0 {
		cfg.HotBlocks = 64
	}
	if cfg.PhaseDwellInsns <= 0 {
		cfg.PhaseDwellInsns = 50000
	}
	g := &Generator{cfg: cfg, r: rng.New(cfg.Seed ^ 0x7ace)}

	// Calibration: cumulative misses-per-instruction target.
	mpi := 1 / (cfg.Profile.IPFMean * float64(cfg.FlitsPerMiss))
	if mpi > 1 {
		mpi = 1 // one memory reference (hence miss) per instruction max
	}
	// Phase spread gamma from the IPF coefficient of variation: window
	// IPF values are mean/(1±gamma), giving a per-window variance of
	// (mean * gamma/(1-gamma^2))^2 while preserving the cumulative mean.
	gamma := 0.0
	if cfg.Profile.IPFVar > 0 && cfg.Profile.IPFMean > 0 {
		v := math.Sqrt(cfg.Profile.IPFVar) / cfg.Profile.IPFMean
		gamma = (math.Sqrt(1+4*v*v) - 1) / (2 * v)
	}
	if gamma > 0.8 {
		gamma = 0.8
	}
	mpiIntense := mpi * (1 + gamma)
	mpiCalm := mpi * (1 - gamma)
	if mpiIntense > 1 {
		// Keep the cumulative mean by shifting the excess to the calm
		// phase (possible only for extremely intensive profiles).
		mpiCalm += mpiIntense - 1
		mpiIntense = 1
	}

	// Memory fraction: enough headroom that miss-intent probability
	// stays below 1 in the intense phase.
	g.memFrac = 1.25 * mpiIntense
	if g.memFrac < 0.3 {
		g.memFrac = 0.3
	}
	if g.memFrac > 1 {
		g.memFrac = 1
	}
	g.pMiss[0] = mpiIntense / g.memFrac
	g.pMiss[1] = mpiCalm / g.memFrac
	for i := range g.pMiss {
		if g.pMiss[i] > 1 {
			g.pMiss[i] = 1
		}
	}

	// Address layout: hot set in one region, streaming pointer far away
	// so it never revisits a hot block.
	bb := uint64(cfg.BlockBytes)
	g.hot = make([]uint64, cfg.HotBlocks)
	for i := range g.hot {
		g.hot[i] = cfg.AddrBase + uint64(i)*bb
	}
	g.streamPtr = cfg.AddrBase + 1<<30
	g.phase = g.r.Intn(2)
	g.dwell = g.drawDwell()
	return g
}

// drawDwell samples a phase length: the configured mean with ±50%
// uniform jitter. Uniform (rather than exponential) dwells keep the
// long-run phase occupancy tightly balanced, so the cumulative IPF
// converges to the calibration target quickly while per-window intensity
// still varies (Fig. 6).
func (g *Generator) drawDwell() int64 {
	d := int64(float64(g.cfg.PhaseDwellInsns) * (0.5 + g.r.Float64()))
	if d < 1 {
		d = 1
	}
	return d
}

// Next returns the next instruction in the stream.
func (g *Generator) Next() Instr {
	g.insns++
	g.dwell--
	if g.dwell <= 0 {
		g.phase = 1 - g.phase
		g.dwell = g.drawDwell()
	}
	if !g.r.Bool(g.memFrac) {
		return Instr{}
	}
	store := g.cfg.StoreFrac > 0 && g.r.Bool(g.cfg.StoreFrac)
	if g.r.Bool(g.pMiss[g.phase]) {
		g.misses++
		addr := g.streamPtr
		g.streamPtr += uint64(g.cfg.BlockBytes)
		return Instr{IsMem: true, IsStore: store, Addr: addr}
	}
	return Instr{IsMem: true, IsStore: store, Addr: g.hot[g.r.Intn(len(g.hot))]}
}

// HotAddresses returns the resident working set, one address per hot
// block; the simulator pre-warms the L1 with these so measurement starts
// without cold-miss noise.
func (g *Generator) HotAddresses() []uint64 { return g.hot }

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() int64 { return g.insns }

// MissIntents returns the number of miss-intent references generated;
// the realised L1 miss count may differ by a handful of cold misses on
// the hot set.
func (g *Generator) MissIntents() int64 { return g.misses }

// TargetIPF returns the cumulative IPF the stream is calibrated to.
func (g *Generator) TargetIPF() float64 { return g.cfg.Profile.IPFMean }

// ExpectedIPF returns the IPF implied by the generated stream so far
// (instructions / (miss intents * flits-per-miss)); it converges to
// TargetIPF.
func (g *Generator) ExpectedIPF() float64 {
	if g.misses == 0 {
		return math.Inf(1)
	}
	return float64(g.insns) / (float64(g.misses) * float64(g.cfg.FlitsPerMiss))
}

// Phase returns the current phase index (0 = intense, 1 = calm); useful
// for Fig. 6-style intensity traces.
func (g *Generator) Phase() int { return g.phase }

// MemFraction returns the calibrated fraction of memory instructions.
func (g *Generator) MemFraction() float64 { return g.memFrac }

// PhaseMissProb returns the per-memory-reference miss probability of
// each phase (intense, calm).
func (g *Generator) PhaseMissProb() (intense, calm float64) {
	return g.pMiss[0], g.pMiss[1]
}
