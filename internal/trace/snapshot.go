package trace

import "nocsim/internal/snap"

// Checkpoint codec for the synthetic instruction generator. The
// calibration outputs (memFrac, pMiss, hot set) are pure functions of
// the Config, so a restored generator recomputes them in New and only
// the dynamic stream position is encoded. New consumes two RNG draws
// (initial phase and dwell); Restore overwrites the RNG state after
// construction, so those draws leave no trace.

func init() {
	snap.Cover(Generator{}, snap.Coverage{
		Serialized: []string{"r", "phase", "dwell", "streamPtr", "insns", "misses"},
		Waived: map[string]string{
			"cfg":     "construction: derived from sim.Config",
			"memFrac": "construction: calibrated from cfg.Profile in New",
			"pMiss":   "construction: calibrated from cfg.Profile in New",
			"hot":     "construction: computed from cfg.AddrBase in New",
		},
	})
	snap.Cover(Instr{}, snap.Coverage{
		Serialized: []string{"IsMem", "IsStore", "Addr"},
	})
	snap.Cover(Config{}, snap.Coverage{
		Waived: map[string]string{
			"Profile":         "config: derived from sim.Config",
			"FlitsPerMiss":    "config: derived from sim.Config",
			"BlockBytes":      "config: derived from sim.Config",
			"HotBlocks":       "config: derived from sim.Config",
			"PhaseDwellInsns": "config: derived from sim.Config",
			"StoreFrac":       "config: derived from sim.Config",
			"AddrBase":        "config: derived from sim.Config",
			"Seed":            "config: derived from sim.Config",
		},
	})
}

const tagGen = 0x11

// Snapshot encodes the generator's stream position.
func (g *Generator) Snapshot(w *snap.Writer) {
	w.Tag(tagGen)
	g.r.Snapshot(w)
	w.U32(uint32(g.phase))
	w.I64(g.dwell)
	w.U64(g.streamPtr)
	w.I64(g.insns)
	w.I64(g.misses)
}

// Restore overlays a stream position captured by Snapshot onto a
// generator constructed with the same Config.
func (g *Generator) Restore(r *snap.Reader) {
	r.Expect(tagGen)
	g.r.Restore(r)
	g.phase = int(r.U32())
	g.dwell = r.I64()
	g.streamPtr = r.U64()
	g.insns = r.I64()
	g.misses = r.I64()
}
