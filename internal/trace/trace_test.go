package trace

import (
	"math"
	"testing"

	"nocsim/internal/app"
	"nocsim/internal/cache"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Profile: app.MustByName("mcf"), Seed: 5}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at instruction %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(Config{Profile: app.MustByName("mcf"), Seed: 1})
	b := New(Config{Profile: app.MustByName("mcf"), Seed: 2})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

// Calibration: the stream's implied IPF must converge to the Table 1
// mean for applications across the intensity spectrum.
func TestIPFCalibration(t *testing.T) {
	for _, name := range []string{"matlab", "mcf", "gromacs", "bzip2", "gcc", "omnetpp"} {
		p := app.MustByName(name)
		g := New(Config{Profile: p, Seed: 9})
		n := int64(3_000_000)
		if p.IPFMean > 100 {
			n = 30_000_000 // light apps need more instructions per miss sample
		}
		for i := int64(0); i < n; i++ {
			g.Next()
		}
		got := g.ExpectedIPF()
		if math.Abs(got-p.IPFMean)/p.IPFMean > 0.15 {
			t.Errorf("%s: stream IPF %.2f, want within 15%% of %.2f", name, got, p.IPFMean)
		}
	}
}

// The generated hit/miss split must survive the real L1 model: miss
// intents always miss (fresh blocks), hot references hit after warmup.
func TestCalibrationThroughRealL1(t *testing.T) {
	p := app.MustByName("mcf")
	g := New(Config{Profile: p, Seed: 4})
	l1 := cache.NewL1(cache.L1Config{})
	// Warm up the hot set.
	for i := 0; i < 200000; i++ {
		in := g.Next()
		if in.IsMem {
			l1.Access(in.Addr)
		}
	}
	intentsBefore := g.MissIntents()
	missesBefore := l1.Misses()
	const run = 2_000_000
	for i := 0; i < run; i++ {
		in := g.Next()
		if in.IsMem {
			l1.Access(in.Addr)
		}
	}
	intents := g.MissIntents() - intentsBefore
	misses := l1.Misses() - missesBefore
	if intents == 0 {
		t.Fatal("no miss intents generated")
	}
	drift := math.Abs(float64(misses-intents)) / float64(intents)
	if drift > 0.02 {
		t.Errorf("realised L1 misses %d vs intents %d (drift %.1f%%)", misses, intents, 100*drift)
	}
}

func TestPhaseModulation(t *testing.T) {
	// sphinx3 has large IPF variance: the per-window miss rate must
	// visibly differ between phases.
	g := New(Config{Profile: app.MustByName("sphinx3"), Seed: 7, PhaseDwellInsns: 20000})
	pi, pc := g.PhaseMissProb()
	if pi <= pc {
		t.Fatalf("intense phase miss prob %v must exceed calm %v", pi, pc)
	}
	// Observe both phases over a long run.
	saw := map[int]bool{}
	for i := 0; i < 500000; i++ {
		g.Next()
		saw[g.Phase()] = true
	}
	if !saw[0] || !saw[1] {
		t.Error("phase process never toggled")
	}
}

func TestZeroVarianceProfileHasFlatPhases(t *testing.T) {
	g := New(Config{Profile: app.Synthetic(10, 0), Seed: 1})
	pi, pc := g.PhaseMissProb()
	if pi != pc {
		t.Errorf("zero-variance profile should have equal phase probs, got %v vs %v", pi, pc)
	}
}

func TestMemFractionBounds(t *testing.T) {
	for _, p := range app.Table1 {
		g := New(Config{Profile: p, Seed: 1})
		mf := g.MemFraction()
		if mf < 0.3-1e-9 || mf > 1 {
			t.Errorf("%s: mem fraction %v out of [0.3, 1]", p.Name, mf)
		}
		pi, pc := g.PhaseMissProb()
		if pi < 0 || pi > 1 || pc < 0 || pc > 1 {
			t.Errorf("%s: phase miss probs out of range: %v %v", p.Name, pi, pc)
		}
	}
}

func TestStreamAddressesAreFreshBlocks(t *testing.T) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 3})
	seen := map[uint64]bool{}
	hotMax := g.hot[len(g.hot)-1]
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if !in.IsMem {
			continue
		}
		if in.Addr > hotMax { // streaming region
			blk := in.Addr / 32
			if seen[blk] {
				t.Fatalf("streaming block %#x repeated: would hit in L1", blk)
			}
			seen[blk] = true
		}
	}
}

func TestAddrBaseSeparatesCores(t *testing.T) {
	a := New(Config{Profile: app.MustByName("mcf"), Seed: 1, AddrBase: 0})
	b := New(Config{Profile: app.MustByName("mcf"), Seed: 1, AddrBase: 1 << 40})
	for i := 0; i < 10000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia.IsMem && ia.Addr >= 1<<40 {
			t.Fatal("core 0 address in core 1's region")
		}
		if ib.IsMem && ib.Addr < 1<<40 {
			t.Fatal("core 1 address in core 0's region")
		}
	}
}

func TestVeryLightAppRarelyMisses(t *testing.T) {
	g := New(Config{Profile: app.MustByName("povray"), Seed: 2})
	for i := 0; i < 1_000_000; i++ {
		g.Next()
	}
	// povray IPF 20708.5, 5 flits/miss: about 1 miss per 103k insns.
	got := g.MissIntents()
	if got > 60 {
		t.Errorf("povray produced %d misses in 1M insns, want ~10", got)
	}
}

func BenchmarkNext(b *testing.B) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestStoreFraction(t *testing.T) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 30, StoreFrac: 0.3})
	mem, stores := 0, 0
	for i := 0; i < 300000; i++ {
		in := g.Next()
		if in.IsMem {
			mem++
			if in.IsStore {
				stores++
			}
		}
	}
	got := float64(stores) / float64(mem)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("store fraction %.3f, want ~0.3", got)
	}
}

func TestNoStoresByDefault(t *testing.T) {
	g := New(Config{Profile: app.MustByName("mcf"), Seed: 31})
	for i := 0; i < 50000; i++ {
		if g.Next().IsStore {
			t.Fatal("store emitted with StoreFrac 0")
		}
	}
}
