package cpu

import (
	"bytes"
	"testing"

	"nocsim/internal/app"
	"nocsim/internal/trace"
)

// computeOnlyBackend panics: used with traces that never touch memory.
type computeOnlyBackend struct{}

func (computeOnlyBackend) Access(int, uint64, bool) (bool, uint64) {
	panic("cpu: unexpected memory access")
}

// alwaysHitBackend services every access as a hit.
type alwaysHitBackend struct{ accesses int }

func (b *alwaysHitBackend) Access(int, uint64, bool) (bool, uint64) {
	b.accesses++
	return true, 0
}

// alwaysMissBackend records tokens and never replies on its own.
type alwaysMissBackend struct {
	next   uint64
	tokens []uint64
}

func (b *alwaysMissBackend) Access(int, uint64, bool) (bool, uint64) {
	b.next++
	b.tokens = append(b.tokens, b.next)
	return false, b.next
}

// computeTrace is a generator stub: package trace has no interface, so
// build a real generator with zero memory references by using a profile
// whose misses are astronomically rare and filtering instructions.
func lightGen(seed uint64) *trace.Generator {
	return trace.New(trace.Config{Profile: app.Synthetic(1e9, 0), Seed: seed})
}

func heavyGen(seed uint64) *trace.Generator {
	return trace.New(trace.Config{Profile: app.MustByName("mcf"), Seed: seed})
}

func TestPureComputeIPC(t *testing.T) {
	// With no (realistically zero) misses and hits served quickly, IPC
	// approaches the issue width.
	c := New(0, Config{}, lightGen(1), &alwaysHitBackend{})
	const cycles = 10000
	for cyc := int64(0); cyc < cycles; cyc++ {
		c.Step(cyc)
	}
	ipc := float64(c.Retired()) / cycles
	if ipc < 2.5 || ipc > 3.0 {
		t.Errorf("compute-bound IPC = %v, want near issue width 3", ipc)
	}
}

func TestSelfThrottlingBoundsOutstanding(t *testing.T) {
	// Backend never completes: the window must fill and the core stall,
	// with outstanding misses bounded by the window size (§3.1).
	b := &alwaysMissBackend{}
	c := New(0, Config{Window: 32}, heavyGen(2), b)
	for cyc := int64(0); cyc < 5000; cyc++ {
		c.Step(cyc)
	}
	if c.Outstanding() > 32 {
		t.Errorf("outstanding misses %d exceed window 32", c.Outstanding())
	}
	if c.WindowOccupancy() != 32 {
		t.Errorf("window occupancy %d, want full 32", c.WindowOccupancy())
	}
	if c.StalledCycles() == 0 {
		t.Error("core never recorded a full-window stall")
	}
	retiredBefore := c.Retired()
	for cyc := int64(5000); cyc < 6000; cyc++ {
		c.Step(cyc)
	}
	if c.Retired() != retiredBefore {
		t.Error("core retired instructions past an unreplied miss (in-order retire broken)")
	}
}

func TestCompleteUnblocksRetirement(t *testing.T) {
	b := &alwaysMissBackend{}
	c := New(0, Config{Window: 8}, heavyGen(3), b)
	for cyc := int64(0); cyc < 200; cyc++ {
		c.Step(cyc)
	}
	if len(b.tokens) == 0 {
		t.Fatal("no misses issued")
	}
	before := c.Retired()
	// Complete all outstanding misses.
	for _, tok := range b.tokens {
		c.Complete(tok, 200)
	}
	b.tokens = nil
	for cyc := int64(201); cyc < 400; cyc++ {
		c.Step(cyc)
	}
	if c.Retired() <= before {
		t.Error("completing misses did not resume retirement")
	}
	if c.Outstanding() != 0 && len(b.tokens) == 0 {
		// Some new misses may have been issued after the completions;
		// they are in b.tokens. Outstanding must match.
		t.Errorf("outstanding %d with no recorded tokens", c.Outstanding())
	}
}

func TestCompleteUnknownTokenPanics(t *testing.T) {
	c := New(0, Config{}, lightGen(4), &alwaysHitBackend{})
	defer func() {
		if recover() == nil {
			t.Fatal("Complete with unknown token did not panic")
		}
	}()
	c.Complete(999, 0)
}

func TestMemPortLimit(t *testing.T) {
	// An all-memory trace with MemPerCycle=1 can issue at most one
	// access per cycle.
	g := trace.New(trace.Config{Profile: app.MustByName("matlab"), Seed: 5})
	b := &alwaysHitBackend{}
	c := New(0, Config{MemPerCycle: 1}, g, b)
	const cycles = 2000
	for cyc := int64(0); cyc < cycles; cyc++ {
		c.Step(cyc)
	}
	if b.accesses > cycles {
		t.Errorf("%d memory accesses in %d cycles violates the 1/cycle port limit", b.accesses, cycles)
	}
}

func TestHitLatencyDelaysRetirement(t *testing.T) {
	// With a huge hit latency, IPC should collapse relative to a short
	// one on a memory-heavy trace.
	run := func(lat int64) float64 {
		g := trace.New(trace.Config{Profile: app.MustByName("matlab"), Seed: 6})
		c := New(0, Config{HitLatency: lat}, g, &alwaysHitBackend{})
		const cycles = 5000
		for cyc := int64(0); cyc < cycles; cyc++ {
			c.Step(cyc)
		}
		return float64(c.Retired()) / cycles
	}
	fast, slow := run(2), run(100)
	if slow >= fast {
		t.Errorf("IPC with 100-cycle hits (%v) should be below 2-cycle hits (%v)", slow, fast)
	}
}

func TestDefaults(t *testing.T) {
	c := New(0, Config{}, lightGen(7), &alwaysHitBackend{})
	if c.cfg.Window != 128 || c.cfg.IssueWidth != 3 || c.cfg.MemPerCycle != 1 || c.cfg.HitLatency != 2 {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
}

func TestRetireInOrder(t *testing.T) {
	// A miss at the window head blocks all younger completed entries.
	b := &alwaysMissBackend{}
	g := heavyGen(8)
	c := New(0, Config{Window: 16}, g, b)
	for cyc := int64(0); cyc < 100; cyc++ {
		c.Step(cyc)
		if len(b.tokens) > 0 {
			break
		}
	}
	if len(b.tokens) == 0 {
		t.Skip("trace produced no early miss")
	}
	stuck := c.Retired()
	for cyc := int64(100); cyc < 300; cyc++ {
		c.Step(cyc)
	}
	// The window fills (16 entries) and retirement cannot pass the miss:
	// at most Window-1 more instructions could retire if the miss were
	// not at the head; a full stop is expected shortly after.
	if c.Retired() > stuck+16 {
		t.Errorf("retired %d instructions past an unreplied miss", c.Retired()-stuck)
	}
}

func BenchmarkStepComputeBound(b *testing.B) {
	c := New(0, Config{}, lightGen(1), &alwaysHitBackend{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(int64(i))
	}
}

func BenchmarkStepMemoryBound(b *testing.B) {
	c := New(0, Config{}, heavyGen(1), &alwaysHitBackend{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(int64(i))
	}
}

func TestCoreRunsFromRecordedTrace(t *testing.T) {
	// Record a slice of mcf and drive a core from the replay: the
	// PinPoints-style capture/replay flow of §6.1.
	var buf bytes.Buffer
	if _, err := trace.Record(&buf, "mcf", heavyGen(21), 50_000); err != nil {
		t.Fatal(err)
	}
	rp, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := New(0, Config{}, rp, &alwaysHitBackend{})
	for cyc := int64(0); cyc < 100_000; cyc++ {
		c.Step(cyc)
	}
	if c.Retired() < 50_000 {
		t.Errorf("replayed core retired %d instructions, want at least one full loop", c.Retired())
	}
	if rp.Loops() == 0 {
		t.Error("trace should have looped during the run")
	}
}
