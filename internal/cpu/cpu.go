// Package cpu models the out-of-order processor cores of the simulated
// CMP at the level of detail the paper's closed-loop evaluation needs
// (Table 2: 3-wide issue, one memory instruction per cycle, 128-entry
// instruction window, in-order retirement).
//
// The model captures the property the paper leans on throughout: cores
// are self-throttling (§3.1). An instruction retires only when its data
// has arrived, the window cannot accept new instructions when full, and
// therefore a core can have at most Window outstanding requests before
// it stalls and stops loading the network.
package cpu

import (
	"fmt"

	"nocsim/internal/trace"
)

// MemBackend services the core's memory references. The system simulator
// implements it with the L1 model, the address mapper, and the NoC.
type MemBackend interface {
	// Access issues a memory reference by core; store marks a write.
	// It returns hit=true when the reference hits in the private cache
	// (data ready after the core's hit latency); otherwise it returns a
	// token identifying the outstanding miss, whose data arrives via
	// Core.Complete.
	Access(core int, addr uint64, store bool) (hit bool, token uint64)
}

// Config parameterises a core.
type Config struct {
	// Window is the instruction window size; 0 means 128.
	Window int
	// IssueWidth is instructions issued (and retired) per cycle; 0
	// means 3.
	IssueWidth int
	// MemPerCycle is the memory-instruction issue limit; 0 means 1.
	MemPerCycle int
	// HitLatency is the L1 hit service time in cycles; 0 means 2.
	HitLatency int64
}

func (c *Config) setDefaults() {
	if c.Window == 0 {
		c.Window = 128
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 3
	}
	if c.MemPerCycle == 0 {
		c.MemPerCycle = 1
	}
	if c.HitLatency == 0 {
		c.HitLatency = 2
	}
}

// waiting marks a window entry blocked on an outstanding miss.
const waiting = int64(-1)

// Core is one processor core replaying a trace. The instruction stream
// may come from a live synthetic generator or from a recorded trace
// file (trace.Replay) — anything implementing trace.Source.
type Core struct {
	id      int
	cfg     Config
	gen     trace.Source
	backend MemBackend

	// Window ring: readyAt[i] is the cycle entry i's result is ready, or
	// `waiting` for an outstanding miss.
	readyAt []int64
	head    int
	count   int

	// tokens maps outstanding miss tokens to ring slots.
	tokens map[uint64]int

	// One-instruction lookahead so a memory instruction that cannot
	// issue this cycle (mem slot used) is not lost.
	pending    trace.Instr
	hasPending bool

	retired int64
	stalled int64 // cycles with zero issue because the window was full
}

// New builds a core with the given id replaying gen through backend.
func New(id int, cfg Config, gen trace.Source, backend MemBackend) *Core {
	cfg.setDefaults()
	return &Core{
		id:      id,
		cfg:     cfg,
		gen:     gen,
		backend: backend,
		readyAt: make([]int64, cfg.Window),
		tokens:  make(map[uint64]int),
	}
}

// ID returns the core's node id.
func (c *Core) ID() int { return c.id }

// Retired returns the cumulative retired-instruction count.
func (c *Core) Retired() int64 { return c.retired }

// StalledCycles returns cycles in which the full window blocked issue.
func (c *Core) StalledCycles() int64 { return c.stalled }

// Outstanding returns the number of in-flight misses.
func (c *Core) Outstanding() int { return len(c.tokens) }

// WindowOccupancy returns the number of window entries in use.
func (c *Core) WindowOccupancy() int { return c.count }

// Complete delivers the data for an outstanding miss token; the entry
// becomes retirable next cycle.
func (c *Core) Complete(token uint64, cycle int64) {
	slot, ok := c.tokens[token]
	if !ok {
		panic(fmt.Sprintf("cpu: core %d completing unknown token %d", c.id, token))
	}
	delete(c.tokens, token)
	c.readyAt[slot] = cycle + 1
}

// Step advances the core one cycle: retire from the head in order, then
// issue new instructions subject to the width and memory-port limits.
func (c *Core) Step(cycle int64) {
	// Retire.
	for r := 0; r < c.cfg.IssueWidth && c.count > 0; r++ {
		ra := c.readyAt[c.head]
		if ra == waiting || ra > cycle {
			break
		}
		c.head = (c.head + 1) % c.cfg.Window
		c.count--
		c.retired++
	}

	// Issue.
	if c.count == c.cfg.Window {
		c.stalled++
		return
	}
	memIssued := 0
	for i := 0; i < c.cfg.IssueWidth && c.count < c.cfg.Window; i++ {
		if !c.hasPending {
			c.pending = c.gen.Next()
			c.hasPending = true
		}
		if c.pending.IsMem && memIssued >= c.cfg.MemPerCycle {
			break // memory port exhausted; retry next cycle
		}
		in := c.pending
		c.hasPending = false
		slot := (c.head + c.count) % c.cfg.Window
		c.count++
		if !in.IsMem {
			c.readyAt[slot] = cycle + 1
			continue
		}
		memIssued++
		hit, token := c.backend.Access(c.id, in.Addr, in.IsStore)
		if hit {
			c.readyAt[slot] = cycle + c.cfg.HitLatency
		} else {
			c.readyAt[slot] = waiting
			c.tokens[token] = slot
		}
	}
}
