package cpu

import (
	"sort"

	"nocsim/internal/snap"
	"nocsim/internal/trace"
)

// Checkpoint codec for the core model. Snapshot runs only between
// cycles (sequential regions), so it never touches Step's hot path.
//
// Restore overlays a freshly constructed Core: id, cfg, gen and
// backend come from construction (the caller restores the generator's
// own state separately); everything the core mutates while stepping is
// encoded here.

func init() {
	snap.Cover(Core{}, snap.Coverage{
		Serialized: []string{
			"readyAt", "head", "count", "tokens",
			"pending", "hasPending", "retired", "stalled",
		},
		Waived: map[string]string{
			"id":      "construction: node id is part of the config",
			"cfg":     "construction: defaulted Config is derived from sim.Config",
			"gen":     "construction: the trace source restores its own state",
			"backend": "construction: wired to the restored memory system",
		},
	})
	snap.Cover(Config{}, snap.Coverage{
		Waived: map[string]string{
			"Window":      "config: derived from sim.Config",
			"IssueWidth":  "config: derived from sim.Config",
			"MemPerCycle": "config: derived from sim.Config",
			"HitLatency":  "config: derived from sim.Config",
		},
	})
}

const tagCore = 0x10

// Source returns the core's instruction source, so the system-level
// codec can serialize a live generator alongside the core.
func (c *Core) Source() trace.Source { return c.gen }

// Snapshot encodes the core's mutable state.
func (c *Core) Snapshot(w *snap.Writer) {
	w.Tag(tagCore)
	w.U32(uint32(len(c.readyAt)))
	for _, v := range c.readyAt {
		w.I64(v)
	}
	w.U32(uint32(c.head))
	w.U32(uint32(c.count))
	// Outstanding-miss tokens, in sorted key order so the encoding is
	// independent of map iteration order.
	keys := make([]uint64, 0, len(c.tokens))
	for k := range c.tokens {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.U32(uint32(c.tokens[k]))
	}
	w.Bool(c.pending.IsMem)
	w.Bool(c.pending.IsStore)
	w.U64(c.pending.Addr)
	w.Bool(c.hasPending)
	w.I64(c.retired)
	w.I64(c.stalled)
}

// Restore overlays state captured by Snapshot onto a core constructed
// with the same Config.
func (c *Core) Restore(r *snap.Reader) {
	r.Expect(tagCore)
	n := int(r.U32())
	if n != len(c.readyAt) {
		// Window size is config-derived; a mismatch means the blob does
		// not belong to this config. Read nothing further.
		r.Failf("core window %d, want %d", n, len(c.readyAt))
		return
	}
	for i := range c.readyAt {
		c.readyAt[i] = r.I64()
	}
	c.head = int(r.U32())
	c.count = int(r.U32())
	nt := int(r.U32())
	c.tokens = make(map[uint64]int, nt)
	for i := 0; i < nt; i++ {
		k := r.U64()
		c.tokens[k] = int(r.U32())
	}
	c.pending.IsMem = r.Bool()
	c.pending.IsStore = r.Bool()
	c.pending.Addr = r.U64()
	c.hasPending = r.Bool()
	c.retired = r.I64()
	c.stalled = r.I64()
}
