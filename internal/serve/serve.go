// Package serve is the simulation-as-a-service layer: a long-running
// daemon (cmd/nocd) that accepts run plans over HTTP, executes them on
// a bounded job queue layered over the runner, and answers repeat
// submissions from a content-addressed on-disk result cache.
//
// The cache is sound because of — and only because of — the simulator's
// determinism contract: a run's results are a pure function of its
// canonicalized configuration and cycle budget (runner.CacheKey), never
// of worker counts, pool sizes or which process executed it. Equal keys
// therefore mean equal counters, which the stored manifest's counters
// hash makes checkable: every cache read re-derives the hash from the
// stored metrics and refuses mismatches, so serving from cache is
// indistinguishable from re-simulating, byte for byte.
//
// The daemon is sanctioned ground for the two things the simulator
// forbids elsewhere: wall-clock reads (request latency metrics, job
// deadlines, stream polling — none of which can reach a cached or
// reported result; a timed-out job is discarded, never cached) and
// goroutines outside the runner's pools (the HTTP listener and the
// queue workers, which sit strictly above the runner and share no
// simulator state).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"nocsim/internal/runner"
	"nocsim/internal/snap"
)

// DispatchHeader marks a submission as fan-out traffic from a fleet
// coordinator. A daemon that is itself a coordinator must execute such
// jobs locally rather than re-delegating them, or a cycle of peers
// would bounce work forever; the header is how the receiving side
// knows.
const DispatchHeader = "X-Nocd-Dispatch"

// Config assembles a Server.
type Config struct {
	// Scale is the base execution scale; submitted plans may override
	// cycles, epoch and seed (runner.ScaleSpec) but never the execution
	// resources.
	Scale runner.Scale
	// CacheDir roots the content-addressed result cache.
	CacheDir string
	// QueueCap bounds the accepted-but-unstarted jobs; submissions
	// beyond it are rejected with 429. 0 means 64.
	QueueCap int
	// Jobs is the number of queue workers (concurrent jobs). 0 means 1.
	Jobs int
	// JobTimeout bounds one job's simulation time; a job that exceeds it
	// is failed and its partial results discarded. 0 disables.
	JobTimeout time.Duration
	// SampleInterval is the interval-sampler period attached to every
	// fresh run for event streaming. 0 means 1000.
	SampleInterval int64
	// SnapDir, when non-empty, roots the checkpoint store: fresh runs
	// are snapshotted at completion so later jobs can resume (extend)
	// them, and warm-start runs share their warmup prefixes across jobs.
	SnapDir string
	// SnapCap caps the checkpoint store's total bytes; the oldest
	// checkpoints are evicted first. 0 means unlimited.
	SnapCap int64
	// Log receives operational lines; nil discards them.
	Log io.Writer
}

// Server is the daemon: cache, queue, and HTTP surface.
type Server struct {
	cfg   Config
	cache *Cache
	snaps *snap.Store
	mux   *http.ServeMux
	tele  *telemetry

	mu        sync.Mutex
	jobs      map[string]*job // by id, append-only
	active    map[string]*job // by plan key, queued or running only
	seq       int64
	draining  bool
	inflight  int
	jobsTotal int64

	queue chan *job
	wg    sync.WaitGroup

	em        sync.Mutex
	endpoints map[string]*endpointStats

	// Fleet extension points, installed (before Start) by the fleet
	// layer; all nil on a standalone daemon. delegate may execute a
	// whole job elsewhere; lookup consults peer caches on a local miss;
	// extraMetrics appends a subsystem section to /metrics.
	delegate     func(DelegatedJob) (results []RunResult, errMsg string, handled bool)
	lookup       func(key string) *Entry
	extraMetrics func(io.Writer)
}

// endpointStats accumulates one route's request count and latency.
type endpointStats struct {
	count   int64
	seconds float64
}

// New builds a Server over the given cache directory. Call Start (or
// ListenAndServe, which does) before submitting work.
func New(cfg Config) (*Server, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 1000
	}
	cache, err := OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	var snaps *snap.Store
	if cfg.SnapDir != "" {
		snaps, err = snap.NewStore(cfg.SnapDir, cfg.SnapCap)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		snaps:     snaps,
		tele:      newTelemetry(),
		jobs:      make(map[string]*job),
		active:    make(map[string]*job),
		queue:     make(chan *job, cfg.QueueCap),
		endpoints: make(map[string]*endpointStats),
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/runs", s.handleSubmit)
	s.route("POST /v1/runs/{id}/extend", s.handleExtend)
	s.route("GET /v1/runs/{id}", s.handleJob)
	s.route("GET /v1/runs/{id}/events", s.handleEvents)
	s.route("GET /v1/runs/{id}/trace", s.handleTrace)
	s.route("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.route("GET /v1/cache/stats", s.handleCacheStats)
	s.route("GET /v1/cache/{key}", s.handleCacheEntry)
	s.route("POST /v1/snapshots/{digest}/{cycle}", s.handleSnapPush)
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result store (tests and stats).
func (s *Server) Cache() *Cache { return s.cache }

// Snapshots exposes the checkpoint store; nil when unconfigured.
func (s *Server) Snapshots() *snap.Store { return s.snaps }

// BaseScale returns the daemon's base execution scale; the fleet sweep
// layer resolves grid points against it exactly as handleSubmit does.
func (s *Server) BaseScale() runner.Scale { return s.cfg.Scale }

// Route registers an additional endpoint on the daemon's mux with the
// same per-endpoint latency instrumentation as the built-ins. The
// fleet layer adds its sweep routes here so one listener serves both
// surfaces. Call before the server starts handling traffic.
func (s *Server) Route(pattern string, h http.HandlerFunc) { s.route(pattern, h) }

// SetDelegate installs the job-delegation hook. A non-nil delegate is
// offered every non-dispatched job before local execution; returning
// handled=false falls back to in-process execution. Install before
// Start: workers read the field unguarded.
func (s *Server) SetDelegate(d func(DelegatedJob) ([]RunResult, string, bool)) { s.delegate = d }

// SetLookup installs the peer-cache lookup hook, consulted by the
// in-process executor after a local cache miss and before simulating.
// The hook returns a verified entry (replicating it locally is the
// hook's business) or nil. Install before Start.
func (s *Server) SetLookup(fn func(key string) *Entry) { s.lookup = fn }

// SetExtraMetrics installs a subsystem section renderer appended to
// /metrics between the daemon's own counters and the per-endpoint
// lines. Install before the server starts handling traffic.
func (s *Server) SetExtraMetrics(fn func(io.Writer)) { s.extraMetrics = fn }

// route registers a pattern with per-endpoint latency instrumentation.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		elapsed := time.Since(start)
		s.em.Lock()
		ep := s.endpoints[pattern]
		if ep == nil {
			ep = &endpointStats{}
			s.endpoints[pattern] = ep
		}
		ep.count++
		ep.seconds += elapsed.Seconds()
		s.em.Unlock()
	})
}

// handleSubmit accepts a PlanSpec, resolves and validates it atomically
// against the daemon's base scale, dedups it against queued/running
// work, and enqueues it — or answers 429 when the queue is full, 503
// when draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec runner.PlanSpec
	if err := dec.Decode(&spec); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding plan: %v", err)
		return
	}
	sc, runs, err := spec.Resolve(s.cfg.Scale)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.enqueue(w, sc, runs, r.Header.Get(DispatchHeader) != "")
}

// enqueue admits a resolved plan via submit and writes the HTTP answer
// (shared by submit and extend).
func (s *Server) enqueue(w http.ResponseWriter, sc runner.Scale, runs []runner.ResolvedRun, direct bool) {
	resp, code := s.submit(sc, runs, direct)
	switch code {
	case http.StatusServiceUnavailable:
		s.fail(w, code, "draining; not accepting new jobs")
	case http.StatusTooManyRequests:
		s.fail(w, code, "queue full (%d jobs); retry later", s.cfg.QueueCap)
	default:
		s.writeJSON(w, code, resp)
	}
}

// Submit enqueues a resolved plan from in-process callers (the fleet
// sweep layer), with the same dedup and admission control as the HTTP
// path. The returned status code is 202 (accepted), 200 (deduped onto
// an active job), 429 (queue full) or 503 (draining); the response is
// meaningful for the first two.
func (s *Server) Submit(sc runner.Scale, runs []runner.ResolvedRun) (SubmitResponse, int) {
	return s.submit(sc, runs, false)
}

// submit dedups, admits and queues a resolved plan. direct marks
// coordinator fan-out traffic that must execute in-process rather than
// be re-delegated. The queue send stays inside the s.mu critical
// section alongside the draining check: Drain sets draining and closes
// the queue under the same mutex, so a send can never hit a closed
// channel.
func (s *Server) submit(sc runner.Scale, runs []runner.ResolvedRun, direct bool) (SubmitResponse, int) {
	key := planKey(runs)
	cached := 0
	for _, rr := range runs {
		if s.cache.Contains(rr.Key) {
			cached++
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return SubmitResponse{}, http.StatusServiceUnavailable
	}
	if ex, ok := s.active[key]; ok {
		s.mu.Unlock()
		return SubmitResponse{
			ID: ex.id, Status: ex.getState(), Dedup: true,
			CachedRuns: cached, TotalRuns: len(runs), PlanKey: key,
		}, http.StatusOK
	}
	s.seq++
	j := &job{
		id:     fmt.Sprintf("job-%06d", s.seq),
		key:    key,
		sc:     sc,
		runs:   runs,
		direct: direct,
		state:  stateQueued,
		born:   time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.mu.Unlock()
		return SubmitResponse{}, http.StatusTooManyRequests
	}
	s.jobs[j.id] = j
	s.active[key] = j
	s.mu.Unlock()

	j.addInstant("submit", j.born)
	j.emit(jobEvent{Type: "job", Job: j.id, State: stateQueued})
	s.logf("job %s accepted: %d runs, %d cached, plan %s", j.id, len(runs), cached, short(key))
	return SubmitResponse{
		ID: j.id, Status: stateQueued,
		CachedRuns: cached, TotalRuns: len(runs), PlanKey: key,
	}, http.StatusAccepted
}

// JobStatus snapshots a job by id for in-process pollers (the fleet
// sweep layer); ok is false for unknown ids.
func (s *Server) JobStatus(id string) (JobResponse, bool) {
	j := s.job(id)
	if j == nil {
		return JobResponse{}, false
	}
	return j.response(), true
}

// handleExtend accepts {"cycles": N} and enqueues a new job covering
// the referenced job's runs for N more cycles each. With a checkpoint
// store configured, each extended run resumes from the original's
// final-state checkpoint and only simulates the added tail; without
// one it recomputes, with byte-identical results either way.
func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		s.fail(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if st := j.getState(); st != stateDone {
		s.fail(w, http.StatusConflict, "job %s is %s; only done jobs can be extended", j.id, st)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req ExtendRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding extend request: %v", err)
		return
	}
	if req.Cycles <= 0 {
		s.fail(w, http.StatusBadRequest, "extend cycles must be positive, got %d", req.Cycles)
		return
	}
	runs := make([]runner.ResolvedRun, len(j.runs))
	for i, rr := range j.runs {
		rr.Cycles += req.Cycles
		key, err := runner.CacheKey(rr.Config, rr.Cycles)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "keying extended run %q: %v", rr.Label, err)
			return
		}
		rr.Key = key
		runs[i] = rr
	}
	s.logf("job %s: extending %d runs by %d cycles", j.id, len(runs), req.Cycles)
	s.enqueue(w, j.sc, runs, r.Header.Get(DispatchHeader) != "")
}

// handleJob answers a job's current status and, once done, results.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		s.fail(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.writeJSON(w, http.StatusOK, j.response())
}

// handleEvents streams a job's event buffer as NDJSON: the backlog is
// replayed immediately, then the stream follows the live buffer until
// the job finishes or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		s.fail(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	sent := 0
	for {
		evs, done := j.eventsSince(sent)
		for _, e := range evs {
			if _, err := w.Write(append(e, '\n')); err != nil {
				return
			}
		}
		sent += len(evs)
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.cache.Stats())
}

// handleCacheEntry answers peer cache probes: HEAD /v1/cache/{key}
// reports presence without reading the entry (and without skewing the
// hit/miss statistics), GET returns the verified entry itself. This is
// the read side of peer-aware caching; the fetching peer re-verifies
// the counters hash before replicating, so a corrupt entry can cross
// the wire but never enter another daemon's cache.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if r.Method == http.MethodHead {
		if !s.cache.Contains(key) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	e, err := s.cache.Get(key)
	if err != nil {
		s.fail(w, http.StatusNotFound, "cache entry %s: %v", short(key), err)
		return
	}
	if e == nil {
		s.fail(w, http.StatusNotFound, "no cache entry %s", short(key))
		return
	}
	s.writeJSON(w, http.StatusOK, e)
}

// handleSnapPush accepts a checkpoint blob from a peer:
// POST /v1/snapshots/{digest}/{cycle}?key=<state-key> with the raw
// snapshot bytes as the body. A preempting coordinator pushes the
// checkpointed state of a half-finished run here so the receiving peer
// can warm-start the remainder; the store's own key verification (the
// state key covers config and cycle) rejects mismatched blobs on read.
func (s *Server) handleSnapPush(w http.ResponseWriter, r *http.Request) {
	if s.snaps == nil {
		s.fail(w, http.StatusNotImplemented, "no checkpoint store configured")
		return
	}
	cycle, err := strconv.ParseInt(r.PathValue("cycle"), 10, 64)
	if err != nil || cycle <= 0 {
		s.fail(w, http.StatusBadRequest, "bad cycle %q", r.PathValue("cycle"))
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		s.fail(w, http.StatusBadRequest, "missing state key")
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "reading snapshot body: %v", err)
		return
	}
	if err := s.snaps.Put(r.PathValue("digest"), cycle, key, blob); err != nil {
		s.fail(w, http.StatusInternalServerError, "storing snapshot: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := HealthResponse{
		Status:     "ok",
		QueueDepth: len(s.queue),
		InFlight:   s.inflight,
		Jobs:       s.jobsTotal,
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, h)
}

// handleMetrics emits the daemon's Prometheus-style text page in a
// fixed section order: build info, cache, queue, checkpoint store,
// latency histograms, outcome counters, then per-endpoint HTTP lines
// sorted by route pattern. The section order is deliberate and pinned
// by a format-stability test; lexicographically sorting the whole page
// (as earlier versions did) would scramble histogram buckets, filing
// le="10" before le="2.5".
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	s.mu.Lock()
	depth, inflight, jobs := len(s.queue), s.inflight, s.jobsTotal
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "nocd_build_info{go_version=%q,goos=%q,goarch=%q} 1\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(w, "nocd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "nocd_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "nocd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "nocd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "nocd_cache_writes_total %d\n", cs.Writes)
	fmt.Fprintf(w, "nocd_cache_hit_ratio %g\n", cs.HitRatio)
	fmt.Fprintf(w, "nocd_queue_depth %d\n", depth)
	fmt.Fprintf(w, "nocd_inflight_jobs %d\n", inflight)
	fmt.Fprintf(w, "nocd_jobs_total %d\n", jobs)
	if s.snaps != nil {
		ss := s.snaps.Stats()
		fmt.Fprintf(w, "nocd_snap_entries %d\n", ss.Entries)
		fmt.Fprintf(w, "nocd_snap_bytes %d\n", ss.Bytes)
		fmt.Fprintf(w, "nocd_snap_hits_total %d\n", ss.Hits)
		fmt.Fprintf(w, "nocd_snap_misses_total %d\n", ss.Misses)
		fmt.Fprintf(w, "nocd_snap_writes_total %d\n", ss.Writes)
		fmt.Fprintf(w, "nocd_snap_corrupt_total %d\n", ss.Corrupt)
		fmt.Fprintf(w, "nocd_snap_evicted_total %d\n", ss.Evicted)
	}
	s.tele.write(w, s.snaps != nil)
	if s.extraMetrics != nil {
		s.extraMetrics(w)
	}
	s.em.Lock()
	patterns := make([]string, 0, len(s.endpoints))
	for pattern := range s.endpoints {
		patterns = append(patterns, pattern)
	}
	sort.Strings(patterns)
	for _, pattern := range patterns {
		ep := s.endpoints[pattern]
		fmt.Fprintf(w, "nocd_http_requests_total{path=%q} %d\n", pattern, ep.count)
		fmt.Fprintf(w, "nocd_http_request_seconds_sum{path=%q} %g\n", pattern, ep.seconds)
	}
	s.em.Unlock()
}

// job looks a job up by id.
func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// ListenAndServe runs the daemon until a signal arrives on stop, then
// drains: intake closes (503), queued jobs finish, the HTTP server
// shuts down gracefully, and the method returns nil for a clean drain.
func (s *Server) ListenAndServe(addr string, stop <-chan os.Signal) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	s.Start()
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.logf("listening on %s (cache %s, queue %d, %d workers)",
		ln.Addr(), s.cfg.CacheDir, s.cfg.QueueCap, s.cfg.Jobs)

	select {
	case sig := <-stop:
		s.logf("received %v; draining", sig)
	case err := <-errc:
		return fmt.Errorf("serve: http server: %w", err)
	}

	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	cs := s.cache.Stats()
	s.mu.Lock()
	jobs := s.jobsTotal
	s.mu.Unlock()
	s.logf("drained cleanly; %d jobs served, cache %d hits / %d misses", jobs, cs.Hits, cs.Misses)
	return nil
}

// planKey digests a resolved plan into one content address: the sha256
// over the runs' own keys, in order (each run key already covers its
// config and cycle budget).
func planKey(runs []runner.ResolvedRun) string {
	keys := make([]string, len(runs))
	for i, r := range runs {
		keys[i] = r.Key
	}
	return runner.DigestStrings(keys)
}

// writeJSON answers one request with a JSON body.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// fail answers one request with an ErrorResponse.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// logf writes one operational line; results never depend on it.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "nocd: "+format+"\n", args...)
}
