package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// metricName strips a Prometheus text line down to its metric name —
// everything before the first '{' or ' '.
func metricName(line string) string {
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		return line[:i]
	}
	return line
}

// histogramNames expands one histogram's fixed line sequence: the
// bucket ladder, +Inf, sum and count.
func histogramNames(name string) []string {
	out := make([]string, 0, 11)
	for i := 0; i < 9; i++ {
		out = append(out, name+"_bucket")
	}
	return append(out, name+"_sum", name+"_count")
}

// TestMetricsFormatStability pins the /metrics page layout: the exact
// metric-name sequence, the histogram bucket ladder in ascending
// order, and the per-outcome counter values after one fresh job on a
// store-backed daemon. Dashboards and the CI smoke scrape this page;
// reordering or renaming lines is a breaking change that must show up
// here first.
func TestMetricsFormatStability(t *testing.T) {
	cfg := testConfig(t)
	cfg.SnapDir = t.TempDir()
	_, ts := startServer(t, cfg)
	sub := submit(t, ts, planJSON, http.StatusAccepted)
	await(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")

	wantBuild := fmt.Sprintf("nocd_build_info{go_version=%q,goos=%q,goarch=%q} 1",
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if lines[0] != wantBuild {
		t.Errorf("first line = %q, want %q", lines[0], wantBuild)
	}

	// The fixed page prefix, name by name, up to the variable-length
	// per-endpoint HTTP section.
	want := []string{
		"nocd_build_info",
		"nocd_cache_entries", "nocd_cache_bytes", "nocd_cache_hits_total",
		"nocd_cache_misses_total", "nocd_cache_writes_total", "nocd_cache_hit_ratio",
		"nocd_queue_depth", "nocd_inflight_jobs", "nocd_jobs_total",
		"nocd_snap_entries", "nocd_snap_bytes", "nocd_snap_hits_total",
		"nocd_snap_misses_total", "nocd_snap_writes_total",
		"nocd_snap_corrupt_total", "nocd_snap_evicted_total",
	}
	want = append(want, histogramNames("nocd_queue_wait_seconds")...)
	want = append(want, histogramNames("nocd_run_seconds")...)
	want = append(want, histogramNames("nocd_cache_lookup_seconds")...)
	want = append(want, histogramNames("nocd_snap_store_seconds")...)
	want = append(want,
		"nocd_jobs_outcome_total", "nocd_jobs_outcome_total",
		"nocd_runs_outcome_total", "nocd_runs_outcome_total")
	if len(lines) < len(want) {
		t.Fatalf("metrics page has %d lines, want at least %d", len(lines), len(want))
	}
	for i, name := range want {
		if got := metricName(lines[i]); got != name {
			t.Fatalf("line %d is %q, want metric %s", i, lines[i], name)
		}
	}
	for _, l := range lines[len(want):] {
		if n := metricName(l); n != "nocd_http_requests_total" && n != "nocd_http_request_seconds_sum" {
			t.Errorf("unexpected line after the fixed prefix: %q", l)
		}
	}

	// Bucket ladder order and shape inside one histogram.
	wantBuckets := []string{"0.001", "0.005", "0.025", "0.1", "0.5", "2.5", "10", "60", "+Inf"}
	first := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "nocd_queue_wait_seconds_bucket") {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("no queue-wait bucket lines on the page")
	}
	qw := lines[first : first+len(wantBuckets)]
	for i, le := range wantBuckets {
		prefix := fmt.Sprintf("nocd_queue_wait_seconds_bucket{le=%q} ", le)
		if !strings.HasPrefix(qw[i], prefix) {
			t.Errorf("queue-wait bucket %d = %q, want prefix %q", i, qw[i], prefix)
		}
	}

	// One fresh job: counters must agree.
	for _, wantLine := range []string{
		"nocd_queue_wait_seconds_count 1",
		"nocd_run_seconds_count 1",
		"nocd_cache_lookup_seconds_count 1",
		`nocd_jobs_outcome_total{outcome="done"} 1`,
		`nocd_jobs_outcome_total{outcome="failed"} 0`,
		`nocd_runs_outcome_total{outcome="cached"} 0`,
		`nocd_runs_outcome_total{outcome="fresh"} 1`,
		"nocd_snap_writes_total 1",
	} {
		if !strings.Contains(string(raw), wantLine+"\n") {
			t.Errorf("metrics page missing line %q", wantLine)
		}
	}
}

// jobTraceDoc mirrors the Chrome trace-event envelope the trace
// endpoint must emit (the same schema the flit tracer's export test
// validates).
type jobTraceDoc struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Ts   *int64          `json:"ts"`
		Dur  int64           `json:"dur"`
		Pid  *int64          `json:"pid"`
		Tid  *uint64         `json:"tid"`
		S    string          `json:"s"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestJobTrace pins GET /v1/jobs/{id}/trace: valid Chrome trace JSON
// covering the whole job lifecycle — submission instant, queue wait,
// cache lookups, the runner window, per-run simulation and the export
// phase — with the /v1/runs alias serving identical bytes.
func TestJobTrace(t *testing.T) {
	cfg := testConfig(t)
	cfg.SnapDir = t.TempDir()
	_, ts := startServer(t, cfg)
	sub := submit(t, ts, planJSON, http.StatusAccepted)
	await(t, ts, sub.ID)

	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s: Content-Type %q, want application/json", path, ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	raw := get("/v1/jobs/" + sub.ID + "/trace")
	if alias := get("/v1/runs/" + sub.ID + "/trace"); string(alias) != string(raw) {
		t.Error("/v1/runs trace alias serves different bytes than /v1/jobs")
	}

	var doc jobTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace for a completed job")
	}
	seen := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d misses a required field: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				t.Fatalf("event %d: negative duration %d", i, ev.Dur)
			}
		case "i":
			if ev.S == "" {
				t.Fatalf("instant event %d misses scope", i)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		if *ev.Ts < 0 {
			t.Fatalf("event %d: negative timestamp %d", i, *ev.Ts)
		}
		seen[ev.Name]++
	}
	for _, name := range []string{"submit", "queue", "cache_lookup", "run", "simulate", "export", "checkpoint"} {
		if seen[name] == 0 {
			t.Errorf("trace lacks a %q span (saw %v)", name, seen)
		}
	}

	// Unknown jobs 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/no-such-job/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d, want 404", resp.StatusCode)
	}
}
