package serve

import (
	"nocsim/internal/obs"
	"nocsim/internal/sim"
)

// This file is the wire vocabulary of the daemon's HTTP API. Requests
// are runner.PlanSpec JSON (the same declarative form Execute ships for
// remote plans); these are the response shapes.

// RunResult reports one run of a completed job.
type RunResult struct {
	// Label is the run's name; Key its content address.
	Label string `json:"label"`
	Key   string `json:"key"`
	// Cached reports that the result came from the content-addressed
	// cache without simulating.
	Cached bool `json:"cached"`
	// CountersHash is the run's counters digest — equal hashes mean
	// identical simulations, whether fresh or cached.
	CountersHash string `json:"counters_hash"`
	// ElapsedMS is the simulation wall clock; 0 for cached results.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Metrics is the full run summary.
	Metrics sim.Metrics `json:"metrics"`
}

// SubmitResponse answers POST /v1/runs.
type SubmitResponse struct {
	// ID addresses the job under /v1/runs/{id}.
	ID string `json:"id"`
	// Status is the job state at response time (queued, running, done,
	// failed).
	Status string `json:"status"`
	// Dedup reports that an identical plan was already queued or running
	// and this response addresses that job instead of a new one.
	Dedup bool `json:"dedup"`
	// CachedRuns counts the plan's runs already present in the cache at
	// submission time; TotalRuns is the plan size.
	CachedRuns int `json:"cached_runs"`
	TotalRuns  int `json:"total_runs"`
	// PlanKey is the whole plan's content address (digest of the run
	// keys, in order).
	PlanKey string `json:"plan_key"`
}

// JobResponse answers GET /v1/runs/{id}.
type JobResponse struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	PlanKey string `json:"plan_key"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Results are the per-run reports of a done job, in plan order.
	Results []RunResult `json:"results,omitempty"`
}

// ExtendRequest is the body of POST /v1/runs/{id}/extend: run the
// referenced job's plan for Cycles more cycles per run, resuming each
// run from its final-state checkpoint when one is stored.
type ExtendRequest struct {
	Cycles int64 `json:"cycles"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
	// Jobs counts jobs completed (done or failed) since startup.
	Jobs int64 `json:"jobs"`
}

// Streamed event shapes (GET /v1/runs/{id}/events, one JSON object per
// line): jobEvent marks state transitions, sampleEvent carries one
// interval-sampler window of a live run, runDoneEvent closes one run.

type jobEvent struct {
	Type  string `json:"type"` // "job" or "job_done"
	Job   string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

type sampleEvent struct {
	Type   string `json:"type"` // "sample"
	Label  string `json:"label"`
	Sample any    `json:"sample"`
}

// epochEvent carries one congestion-ledger record of a live run: every
// input and output of one controller decision, streamed as it lands.
type epochEvent struct {
	Type   string          `json:"type"` // "epoch"
	Label  string          `json:"label"`
	Record obs.EpochRecord `json:"record"`
}

type runDoneEvent struct {
	Type         string `json:"type"` // "run_done"
	Label        string `json:"label"`
	Key          string `json:"key"`
	Cached       bool   `json:"cached"`
	CountersHash string `json:"counters_hash"`
}
