package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"nocsim/internal/serve"
)

// TestExtendResumesFromCheckpoint covers the extend-run path end to
// end: a finished job's runs are re-queued with a larger cycle budget,
// the daemon resumes each from its final-state checkpoint, and the
// extended result is byte-identical (counters hash) to submitting the
// longer plan cold on a daemon without a checkpoint store.
func TestExtendResumesFromCheckpoint(t *testing.T) {
	cfg := testConfig(t)
	cfg.SnapDir = t.TempDir()
	s, ts := startServer(t, cfg)

	sub := submit(t, ts, planJSON, http.StatusAccepted)
	first := await(t, ts, sub.ID)
	if first.Status != "done" {
		t.Fatalf("seed job failed: %s", first.Error)
	}
	if st := s.Snapshots().Stats(); st.Writes == 0 {
		t.Fatal("finished run left no checkpoint")
	}

	// Extend by 1000 cycles: a new job, resumed from the checkpoint.
	before := s.Snapshots().Stats()
	body := bytes.NewReader([]byte(`{"cycles": 1000}`))
	resp, err := http.Post(ts.URL+"/v1/runs/"+sub.ID+"/extend", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var ext serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ext); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("extend: HTTP %d", resp.StatusCode)
	}
	if ext.ID == sub.ID {
		t.Fatal("extend reused the original job id")
	}
	extended := await(t, ts, ext.ID)
	if extended.Status != "done" {
		t.Fatalf("extended job failed: %s", extended.Error)
	}
	if after := s.Snapshots().Stats(); after.Hits <= before.Hits {
		t.Error("extended run never hit the checkpoint store")
	}
	if got, want := extended.Results[0].Metrics.Cycles, first.Results[0].Metrics.Cycles+1000; got != want {
		t.Errorf("extended run covered %d cycles, want %d", got, want)
	}

	// Reference: the longer plan cold, on a storeless daemon.
	coldPlan := strings.Replace(planJSON, `"cycles": 2000`, `"cycles": 3000`, 1)
	_, ts2 := startServer(t, testConfig(t))
	sub2 := submit(t, ts2, coldPlan, http.StatusAccepted)
	cold := await(t, ts2, sub2.ID)
	if cold.Status != "done" {
		t.Fatalf("cold reference failed: %s", cold.Error)
	}
	if extended.Results[0].CountersHash != cold.Results[0].CountersHash {
		t.Errorf("extended counters hash %s != cold %s",
			extended.Results[0].CountersHash, cold.Results[0].CountersHash)
	}

	// Extending a non-terminal or unknown job is rejected.
	resp, err = http.Post(ts.URL+"/v1/runs/no-such-job/extend", "application/json",
		strings.NewReader(`{"cycles": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("extend of unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/runs/"+sub.ID+"/extend", "application/json",
		strings.NewReader(`{"cycles": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("extend by 0 cycles: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSnapMetrics checks that /metrics carries the checkpoint store's
// hit/miss/corruption lines when a store is configured, and omits them
// otherwise.
func TestSnapMetrics(t *testing.T) {
	cfg := testConfig(t)
	cfg.SnapDir = t.TempDir()
	_, ts := startServer(t, cfg)

	sub := submit(t, ts, planJSON, http.StatusAccepted)
	await(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"nocd_snap_entries ", "nocd_snap_bytes ",
		"nocd_snap_hits_total ", "nocd_snap_misses_total ",
		"nocd_snap_writes_total ", "nocd_snap_corrupt_total ",
		"nocd_snap_evicted_total ",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(string(page), "nocd_snap_writes_total 1") {
		t.Errorf("expected one checkpoint write recorded, got page:\n%s", page)
	}

	_, ts2 := startServer(t, testConfig(t))
	resp, err = http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(page), "nocd_snap_") {
		t.Error("storeless daemon reports nocd_snap_ metrics")
	}
}
