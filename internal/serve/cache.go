package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
)

// Entry is one cached run result: the content address it lives under,
// the reproducibility manifest (config, seed, environment, counters
// hash), and the full metrics. The manifest's CountersHash doubles as
// the integrity check: it is recomputed from the stored metrics on
// every read, so a truncated, bit-rotted or hand-edited entry can never
// be served as a result.
type Entry struct {
	Key      string       `json:"key"`
	Manifest obs.Manifest `json:"manifest"`
	Metrics  sim.Metrics  `json:"metrics"`
}

// Verify recomputes the counters hash over the stored metrics and
// checks it — and the embedded key — against what the entry claims.
// Every cache read runs it before serving; the fleet layer runs it
// again on entries fetched from peers, so a replicated result obeys
// exactly the invariants a locally computed one does.
func (e *Entry) Verify(key string) error {
	if e.Key != key {
		return fmt.Errorf("serve: cache entry %s claims key %s", short(key), short(e.Key))
	}
	var retired int64
	for _, r := range e.Metrics.Retired {
		retired += r
	}
	got := obs.HashCounters(e.Metrics.Net, retired, e.Metrics.Misses)
	if got != e.Manifest.CountersHash {
		return fmt.Errorf("serve: cache entry %s failed verification: counters hash %s, manifest says %s",
			short(key), got, e.Manifest.CountersHash)
	}
	return nil
}

// CacheStats is a point-in-time summary of the cache.
type CacheStats struct {
	// Entries and Bytes describe what is on disk.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Get outcomes since the cache was opened
	// (an unreadable or corrupt entry counts as a miss). Writes counts
	// successful Puts.
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Writes   int64   `json:"writes"`
	HitRatio float64 `json:"hit_ratio"`
}

// Cache is the content-addressed on-disk result store. Keys are the
// runner's canonicalized config+cycles hashes; an entry is immutable
// once written (same key, same bytes up to environment metadata), so
// there is no invalidation — only verification. Entries are sharded
// into dir/<key[:2]>/<key>.json to keep directories small, and writes
// are crash-safe: marshal to a temp file in the shard directory, then
// rename into place, so a reader can never observe a torn entry.
type Cache struct {
	dir string

	mu      sync.Mutex
	entries int64
	bytes   int64
	hits    int64
	misses  int64
	writes  int64
}

// OpenCache opens (creating if needed) the cache rooted at dir and
// counts what it already holds.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating cache dir %s: %w", dir, err)
	}
	c := &Cache{dir: dir}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		c.entries++
		c.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: scanning cache dir %s: %w", dir, err)
	}
	return c, nil
}

// path maps a key to its sharded on-disk location.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key+".json")
}

// Contains reports whether key is present, without reading the entry or
// counting toward the hit/miss statistics (used to report cache status
// at submission time).
func (c *Cache) Contains(key string) bool {
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Get returns the verified entry for key, or (nil, nil) on a clean
// miss. A present but unreadable, torn or hash-mismatched entry returns
// (nil, error) and counts as a miss: the caller logs it, re-simulates,
// and the subsequent Put overwrites the bad file.
func (c *Cache) Get(key string) (*Entry, error) {
	raw, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		c.count(&c.misses)
		return nil, nil
	}
	if err != nil {
		c.count(&c.misses)
		return nil, fmt.Errorf("serve: reading cache entry %s: %w", short(key), err)
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		c.count(&c.misses)
		return nil, fmt.Errorf("serve: decoding cache entry %s: %w", short(key), err)
	}
	if err := e.Verify(key); err != nil {
		c.count(&c.misses)
		return nil, err
	}
	c.count(&c.hits)
	return &e, nil
}

// Put stores the entry crash-safely: the bytes land in a temp file in
// the entry's shard directory and are renamed into place, so a
// concurrent or post-crash reader sees either the whole entry or none
// of it. Overwriting an existing key (e.g. repairing a corrupt entry)
// is safe for the same reason.
func (c *Cache) Put(e *Entry) error {
	path := c.path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("serve: creating cache shard: %w", err)
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding cache entry %s: %w", short(e.Key), err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: staging cache entry %s: %w", short(e.Key), err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: staging cache entry %s: %w", short(e.Key), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: staging cache entry %s: %w", short(e.Key), err)
	}
	_, statErr := os.Stat(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: committing cache entry %s: %w", short(e.Key), err)
	}
	c.mu.Lock()
	if statErr != nil { // key was new
		c.entries++
	}
	c.bytes += int64(len(b))
	c.writes++
	c.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries: c.entries, Bytes: c.bytes,
		Hits: c.hits, Misses: c.misses, Writes: c.writes,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}

func (c *Cache) count(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// short abbreviates a content address for log and error messages.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
