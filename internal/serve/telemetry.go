package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"nocsim/internal/obs"
)

// Daemon telemetry: fixed-bucket latency histograms and per-outcome
// counters for /metrics, plus per-job lifecycle spans served as Chrome
// trace-event JSON. All of it is wall-clock instrumentation of the
// service layer — sanctioned ground — and none of it can reach a
// simulation result: spans and histograms observe the queue and the
// runner from outside.

// latencyBuckets is the shared histogram ladder, in seconds. One
// ladder for every histogram keeps the /metrics shape small and the
// format-stability test simple; the range spans a cache hit (sub-ms)
// to a long simulation (minutes).
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Histogram is one fixed-bucket latency distribution on the shared
// ladder. It is exported for the fleet layer, whose dispatch-latency
// histogram must render with exactly the same bucket boundaries and
// line shape as the daemon's own; each Histogram guards itself, so the
// fleet can observe from its workers without borrowing the telemetry
// mutex.
type Histogram struct {
	name string

	mu     sync.Mutex
	counts []int64 // per-bucket (non-cumulative); +Inf lives in total
	sum    float64
	total  int64
}

// NewHistogram returns an empty histogram named name on the shared
// 1ms→60s ladder.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, counts: make([]int64, len(latencyBuckets))}
}

// Observe records one latency, in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.total++
}

// Write renders the histogram in Prometheus text format: cumulative
// le-labelled buckets, +Inf, sum and count — always all lines, even at
// zero observations, so the page shape never depends on traffic.
func (h *Histogram) Write(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum int64
	for i, ub := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", h.name, ub, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.total)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.total)
}

// jobOutcomes and runOutcomes enumerate the counter labels in render
// order; emitting every label always pins the page shape.
var (
	jobOutcomes = []string{stateDone, stateFailed}
	runOutcomes = []string{"cached", "fresh"}
)

// telemetry owns the daemon's latency histograms and outcome counters.
// The histograms guard themselves; the telemetry mutex covers only the
// outcome maps.
type telemetry struct {
	queueWait *Histogram // submission -> worker pickup
	runDur    *Histogram // plan.Execute wall time
	cacheGet  *Histogram // result-cache lookup round-trip
	snapStore *Histogram // checkpoint-store round-trip (final-state Put)

	mu   sync.Mutex
	jobs map[string]int64
	runs map[string]int64
}

func newTelemetry() *telemetry {
	return &telemetry{
		queueWait: NewHistogram("nocd_queue_wait_seconds"),
		runDur:    NewHistogram("nocd_run_seconds"),
		cacheGet:  NewHistogram("nocd_cache_lookup_seconds"),
		snapStore: NewHistogram("nocd_snap_store_seconds"),
		jobs:      make(map[string]int64),
		runs:      make(map[string]int64),
	}
}

func (t *telemetry) observe(h *Histogram, d time.Duration) {
	h.Observe(d.Seconds())
}

func (t *telemetry) countJob(outcome string) {
	t.mu.Lock()
	t.jobs[outcome]++
	t.mu.Unlock()
}

func (t *telemetry) countRun(outcome string) {
	t.mu.Lock()
	t.runs[outcome]++
	t.mu.Unlock()
}

// write renders every histogram and counter in fixed order. The
// checkpoint-store histogram appears only on daemons with a store
// configured, mirroring the nocd_snap_ gauge section: the page shape
// depends on configuration, never on traffic.
func (t *telemetry) write(w io.Writer, withSnap bool) {
	hs := []*Histogram{t.queueWait, t.runDur, t.cacheGet}
	if withSnap {
		hs = append(hs, t.snapStore)
	}
	for _, h := range hs {
		h.Write(w)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, o := range jobOutcomes {
		fmt.Fprintf(w, "nocd_jobs_outcome_total{outcome=%q} %d\n", o, t.jobs[o])
	}
	for _, o := range runOutcomes {
		fmt.Fprintf(w, "nocd_runs_outcome_total{outcome=%q} %d\n", o, t.runs[o])
	}
}

// jobSpan is one recorded lifecycle interval of a job. Spans are
// appended in wall-clock order on whichever goroutine performed the
// work (queue worker, runner pool), guarded by the job's mutex.
type jobSpan struct {
	name    string
	label   string // run label; "" for job-level spans
	start   time.Time
	dur     time.Duration
	instant bool
}

// addSpan records one completed interval.
func (j *job) addSpan(name, label string, start time.Time, dur time.Duration) {
	j.mu.Lock()
	j.spans = append(j.spans, jobSpan{name: name, label: label, start: start, dur: dur})
	j.mu.Unlock()
}

// addInstant records one point event.
func (j *job) addInstant(name string, at time.Time) {
	j.mu.Lock()
	j.spans = append(j.spans, jobSpan{name: name, start: at, instant: true})
	j.mu.Unlock()
}

// spanArgs annotates a run-level span with its run label.
type spanArgs struct {
	Label string `json:"label"`
}

// handleTrace answers GET /v1/jobs/{id}/trace (and the /v1/runs alias)
// with the job's lifecycle spans as Chrome trace-event JSON — the same
// envelope the flit tracer exports, so a job opens in Perfetto next to
// its simulations. Timestamps are microseconds since submission;
// job-level spans ride track (pid 1, tid 1) and each run label gets
// its own tid in first-seen order.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		s.fail(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	born := j.born
	spans := append([]jobSpan(nil), j.spans...)
	j.mu.Unlock()

	tids := map[string]uint64{"": 1}
	next := uint64(2)
	events := make([]obs.ChromeEvent, 0, len(spans))
	for _, sp := range spans {
		tid, ok := tids[sp.label]
		if !ok {
			tid = next
			next++
			tids[sp.label] = tid
		}
		ts := sp.start.Sub(born).Microseconds()
		if ts < 0 {
			ts = 0
		}
		ev := obs.ChromeEvent{
			Name: sp.name, Cat: "job", Ph: "X",
			Ts: ts, Dur: sp.dur.Microseconds(),
			Pid: 1, Tid: tid,
		}
		if sp.label != "" {
			ev.Cat = "run"
			ev.Args = &spanArgs{Label: sp.label}
		}
		if sp.instant {
			ev.Ph = "i"
			ev.S = "t"
			ev.Dur = 0
		}
		events = append(events, ev)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if err := obs.WriteChromeJSON(w, events); err != nil {
		s.logf("trace export for %s: %v", j.id, err)
	}
}
