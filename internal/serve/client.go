package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"nocsim/internal/runner"
)

// Client is the daemon's HTTP client side and the runner.Remote
// implementation behind cmd/experiments -server: it submits a plan,
// polls the job to completion, and hands the results back in plan
// order. The determinism contract makes a plan executed through a
// Client metrics-identical to the same plan executed in-process.
type Client struct {
	base string
	hc   *http.Client
	// poll is the job status polling period.
	poll time.Duration
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{},
		poll: 200 * time.Millisecond,
	}
}

var _ runner.Remote = (*Client)(nil)

// ExecuteSpecs submits the plan and blocks until the daemon finishes
// it, returning one result per run in plan order.
func (c *Client) ExecuteSpecs(spec runner.PlanSpec) ([]runner.RemoteResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding plan: %w", err)
	}
	var sub SubmitResponse
	if err := c.do("POST", "/v1/runs", body, &sub); err != nil {
		return nil, err
	}
	for {
		var jr JobResponse
		if err := c.do("GET", "/v1/runs/"+sub.ID, nil, &jr); err != nil {
			return nil, err
		}
		switch jr.Status {
		case stateDone:
			if len(jr.Results) != len(spec.Runs) {
				return nil, fmt.Errorf("serve: job %s returned %d results for %d runs",
					sub.ID, len(jr.Results), len(spec.Runs))
			}
			out := make([]runner.RemoteResult, len(jr.Results))
			for i, r := range jr.Results {
				out[i] = runner.RemoteResult{
					Metrics:   r.Metrics,
					ElapsedMS: r.ElapsedMS,
					Cached:    r.Cached,
				}
			}
			return out, nil
		case stateFailed:
			return nil, fmt.Errorf("serve: job %s failed: %s", sub.ID, jr.Error)
		}
		time.Sleep(c.poll)
	}
}

// do runs one JSON round trip, mapping non-2xx answers to errors via
// the daemon's ErrorResponse body.
func (c *Client) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("serve: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("serve: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("serve: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
