package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"nocsim/internal/runner"
)

// Client is the daemon's HTTP client side and the runner.Remote
// implementation behind cmd/experiments -server: it submits a plan,
// polls the job to completion, and hands the results back in plan
// order. The determinism contract makes a plan executed through a
// Client metrics-identical to the same plan executed in-process.
type Client struct {
	base string
	hc   *http.Client
	// poll is the job status polling period.
	poll time.Duration
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{},
		poll: 200 * time.Millisecond,
	}
}

var _ runner.Remote = (*Client)(nil)

// WithTimeout bounds every HTTP round trip the client makes (the fleet
// coordinator uses a short-timeout client for health probes) and
// returns the client for chaining.
func (c *Client) WithTimeout(d time.Duration) *Client {
	c.hc.Timeout = d
	return c
}

// Base returns the daemon address the client talks to.
func (c *Client) Base() string { return c.base }

// Submit posts a plan and returns the daemon's admission answer without
// waiting for execution.
func (c *Client) Submit(spec runner.PlanSpec) (SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("serve: encoding plan: %w", err)
	}
	var sub SubmitResponse
	err = c.do("POST", "/v1/runs", body, &sub, nil)
	return sub, err
}

// SubmitDispatch is Submit with the coordinator fan-out header set, so
// the receiving daemon executes the job itself instead of re-delegating
// it to its own peers.
func (c *Client) SubmitDispatch(spec runner.PlanSpec) (SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("serve: encoding plan: %w", err)
	}
	var sub SubmitResponse
	err = c.do("POST", "/v1/runs", body, &sub, map[string]string{DispatchHeader: "1"})
	return sub, err
}

// Job fetches a job's current status and, once terminal, results.
func (c *Client) Job(id string) (JobResponse, error) {
	var jr JobResponse
	err := c.do("GET", "/v1/runs/"+id, nil, &jr)
	return jr, err
}

// Health probes the daemon's /healthz.
func (c *Client) Health() (HealthResponse, error) {
	var h HealthResponse
	err := c.do("GET", "/healthz", nil, &h)
	return h, err
}

// CacheContains probes the daemon's cache for key via HEAD, without
// transferring the entry.
func (c *Client) CacheContains(key string) (bool, error) {
	req, err := http.NewRequest(http.MethodHead, c.base+"/v1/cache/"+key, nil)
	if err != nil {
		return false, fmt.Errorf("serve: building HEAD /v1/cache: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("serve: HEAD /v1/cache/%s: %w", short(key), err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("serve: HEAD /v1/cache/%s: HTTP %d", short(key), resp.StatusCode)
}

// CacheEntry fetches the full cache entry for key. The caller must
// Verify it before trusting or replicating it.
func (c *Client) CacheEntry(key string) (*Entry, error) {
	var e Entry
	if err := c.do("GET", "/v1/cache/"+key, nil, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// PushSnapshot ships a checkpoint blob to the daemon's snapshot store
// so it can warm-start a run from state computed elsewhere.
func (c *Client) PushSnapshot(digest string, cycle int64, key string, blob []byte) error {
	path := fmt.Sprintf("/v1/snapshots/%s/%d?key=%s", digest, cycle, key)
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("serve: building snapshot push: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: pushing snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return fmt.Errorf("serve: pushing snapshot: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: pushing snapshot: HTTP %d", resp.StatusCode)
	}
	return nil
}

// ExecuteSpecs submits the plan and blocks until the daemon finishes
// it, returning one result per run in plan order.
func (c *Client) ExecuteSpecs(spec runner.PlanSpec) ([]runner.RemoteResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding plan: %w", err)
	}
	var sub SubmitResponse
	if err := c.do("POST", "/v1/runs", body, &sub); err != nil {
		return nil, err
	}
	for {
		var jr JobResponse
		if err := c.do("GET", "/v1/runs/"+sub.ID, nil, &jr); err != nil {
			return nil, err
		}
		switch jr.Status {
		case stateDone:
			if len(jr.Results) != len(spec.Runs) {
				return nil, fmt.Errorf("serve: job %s returned %d results for %d runs",
					sub.ID, len(jr.Results), len(spec.Runs))
			}
			out := make([]runner.RemoteResult, len(jr.Results))
			for i, r := range jr.Results {
				out[i] = runner.RemoteResult{
					Metrics:   r.Metrics,
					ElapsedMS: r.ElapsedMS,
					Cached:    r.Cached,
				}
			}
			return out, nil
		case stateFailed:
			return nil, fmt.Errorf("serve: job %s failed: %s", sub.ID, jr.Error)
		}
		time.Sleep(c.poll)
	}
}

// do runs one JSON round trip, mapping non-2xx answers to errors via
// the daemon's ErrorResponse body. An optional header map is applied to
// the request.
func (c *Client) do(method, path string, body []byte, out any, hdr ...map[string]string) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("serve: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, h := range hdr {
		for k, v := range h {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("serve: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("serve: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
