package serve_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/serve"
	"nocsim/internal/sim"
)

// fakeEntry builds a self-consistent entry: metrics with distinctive
// counters and a manifest whose hash actually covers them.
func fakeEntry(key string) *serve.Entry {
	m := sim.Metrics{
		Cycles:  1234,
		Nodes:   16,
		Retired: []int64{10, 20, 30},
		Misses:  7,
		Net:     noc.Stats{Cycles: 1234, FlitsInjected: 500, FlitsEjected: 490, Deflections: 12},
	}
	var retired int64
	for _, r := range m.Retired {
		retired += r
	}
	return &serve.Entry{
		Key: key,
		Manifest: obs.Manifest{
			Label:        "fake",
			Cycles:       m.Cycles,
			Nodes:        m.Nodes,
			CountersHash: obs.HashCounters(m.Net, retired, m.Misses),
			Config:       json.RawMessage(`{}`),
		},
		Metrics: m,
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := serve.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)

	if c.Contains(key) {
		t.Fatal("empty cache claims to contain the key")
	}
	if e, err := c.Get(key); e != nil || err != nil {
		t.Fatalf("Get on empty cache = (%v, %v), want clean miss", e, err)
	}

	in := fakeEntry(key)
	if err := c.Put(in); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(key) {
		t.Fatal("cache does not contain the key after Put")
	}
	out, err := c.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("entry did not round-trip")
	}

	cs := c.Stats()
	if cs.Entries != 1 || cs.Writes != 1 || cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 write, 1 hit, 1 miss", cs)
	}
	if cs.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", cs.HitRatio)
	}
}

// TestCacheReopen pins persistence: a reopened cache sees the entries
// and serves them without re-simulation.
func TestCacheReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := serve.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("cd", 32)
	if err := c1.Put(fakeEntry(key)); err != nil {
		t.Fatal(err)
	}

	c2, err := serve.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cs := c2.Stats(); cs.Entries != 1 || cs.Bytes == 0 {
		t.Fatalf("reopened stats = %+v, want the persisted entry counted", cs)
	}
	if e, err := c2.Get(key); err != nil || e == nil {
		t.Fatalf("reopened Get = (%v, %v), want the persisted entry", e, err)
	}
}

// TestCacheRejectsTamperedEntries pins verification: an entry whose
// stored metrics no longer match its manifest hash — or whose embedded
// key disagrees with its address — is an error, not a hit.
func TestCacheRejectsTamperedEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := serve.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 32)

	tampered := fakeEntry(key)
	tampered.Metrics.Net.Deflections++ // counters drift from the manifest hash
	if err := c.Put(tampered); err != nil {
		t.Fatal(err)
	}
	if e, err := c.Get(key); err == nil || !strings.Contains(err.Error(), "serve:") {
		t.Fatalf("tampered Get = (%v, %v), want a serve:-prefixed verification error", e, err)
	}

	wrongKey := fakeEntry(strings.Repeat("00", 32))
	wrongKey.Key = key // address and embedded key disagree after Put under key
	path := filepath.Join(dir, key[:2], key+".json")
	if err := c.Put(wrongKey); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = raw // entry on disk is self-consistent; now corrupt the JSON itself
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if e, err := c.Get(key); err == nil || e != nil {
		t.Fatalf("corrupt Get = (%v, %v), want a decode error", e, err)
	}
}

// TestCacheOverwrite pins repair: Put over an existing key replaces the
// entry without double-counting it.
func TestCacheOverwrite(t *testing.T) {
	c, err := serve.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("12", 32)
	if err := c.Put(fakeEntry(key)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(fakeEntry(key)); err != nil {
		t.Fatal(err)
	}
	if cs := c.Stats(); cs.Entries != 1 || cs.Writes != 2 {
		t.Fatalf("stats after overwrite = %+v, want 1 entry, 2 writes", cs)
	}
}
