package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

// planJSON is the canonical small test submission: one controlled 4x4
// run, short enough for -short CI but long enough to sample.
const planJSON = `{
	"scale": {"cycles": 2000, "epoch": 500, "seed": 42},
	"runs": [{"label": "t", "preset": "controlled", "workload": "H", "width": 4, "height": 4}]
}`

// testConfig is the base daemon configuration for tests: single worker,
// tiny sample interval, cache in a fresh temp dir.
func testConfig(t *testing.T) serve.Config {
	t.Helper()
	sc := runner.DefaultScale()
	sc.Workers = 1
	return serve.Config{
		Scale:          sc,
		CacheDir:       t.TempDir(),
		QueueCap:       8,
		Jobs:           1,
		SampleInterval: 500,
	}
}

// startServer builds a daemon, starts its queue workers, and serves its
// handler from an httptest server; everything is torn down with t.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// submit POSTs a plan and decodes the SubmitResponse, asserting the
// expected status code.
func submit(t *testing.T, ts *httptest.Server, plan string, wantCode int) serve.SubmitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var er serve.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("submit: HTTP %d (want %d): %s", resp.StatusCode, wantCode, er.Error)
	}
	var sub serve.SubmitResponse
	if wantCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub
}

// await polls the job until it reaches a terminal state.
func await(t *testing.T, ts *httptest.Server, id string) serve.JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr serve.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == "done" || jr.Status == "failed" {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdenticalPlanTwice is the service-layer determinism pin: the same
// plan submitted twice simulates exactly once, and the cached answer
// carries a byte-identical counters hash and identical metrics.
func TestIdenticalPlanTwice(t *testing.T) {
	s, ts := startServer(t, testConfig(t))

	sub1 := submit(t, ts, planJSON, http.StatusAccepted)
	if sub1.Dedup || sub1.CachedRuns != 0 || sub1.TotalRuns != 1 {
		t.Fatalf("first submit = %+v, want fresh uncached single-run job", sub1)
	}
	jr1 := await(t, ts, sub1.ID)
	if jr1.Status != "done" || len(jr1.Results) != 1 {
		t.Fatalf("first job = %+v, want done with 1 result", jr1)
	}
	if jr1.Results[0].Cached {
		t.Fatal("first run reported cached on an empty cache")
	}
	if jr1.Results[0].CountersHash == "" {
		t.Fatal("first run has no counters hash")
	}

	sub2 := submit(t, ts, planJSON, http.StatusAccepted)
	if sub2.ID == sub1.ID {
		t.Fatalf("resubmission after completion reused job %s", sub1.ID)
	}
	if sub2.PlanKey != sub1.PlanKey {
		t.Fatalf("plan keys differ across identical submissions: %s vs %s", sub1.PlanKey, sub2.PlanKey)
	}
	if sub2.CachedRuns != 1 {
		t.Fatalf("second submit reports %d cached runs, want 1", sub2.CachedRuns)
	}
	jr2 := await(t, ts, sub2.ID)
	if jr2.Status != "done" || len(jr2.Results) != 1 {
		t.Fatalf("second job = %+v, want done with 1 result", jr2)
	}
	if !jr2.Results[0].Cached {
		t.Fatal("second submission of an identical plan was re-simulated")
	}
	if jr2.Results[0].CountersHash != jr1.Results[0].CountersHash {
		t.Fatalf("cached counters hash %s != fresh %s",
			jr2.Results[0].CountersHash, jr1.Results[0].CountersHash)
	}
	if !reflect.DeepEqual(jr1.Results[0].Metrics, jr2.Results[0].Metrics) {
		t.Fatal("cached metrics differ from fresh metrics")
	}

	cs := s.Cache().Stats()
	if cs.Misses != 1 || cs.Hits != 1 || cs.Writes != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 miss, 1 hit, 1 write, 1 entry", cs)
	}
}

// TestDedupWhileActive pins the in-flight dedup: a plan submitted while
// an identical one is queued or running addresses the existing job.
func TestDedupWhileActive(t *testing.T) {
	cfg := testConfig(t)
	s, err := serve.New(cfg) // workers NOT started: jobs stay queued
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub1 := submit(t, ts, planJSON, http.StatusAccepted)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(planJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedup submit: HTTP %d, want 200", resp.StatusCode)
	}
	var sub2 serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub2); err != nil {
		t.Fatal(err)
	}
	if !sub2.Dedup || sub2.ID != sub1.ID {
		t.Fatalf("second submit = %+v, want dedup onto %s", sub2, sub1.ID)
	}
}

// TestLocalAndRemoteAgree runs the same plan in-process and through the
// daemon client and requires identical metrics — the determinism
// contract extended over the wire.
func TestLocalAndRemoteAgree(t *testing.T) {
	_, ts := startServer(t, testConfig(t))

	var spec runner.PlanSpec
	if err := json.Unmarshal([]byte(planJSON), &spec); err != nil {
		t.Fatal(err)
	}
	base := runner.DefaultScale()
	base.Workers = 1
	sc, runs, err := spec.Resolve(base)
	if err != nil {
		t.Fatal(err)
	}

	localPlan := runner.NewPlan(sc)
	for _, r := range runs {
		localPlan.Add(r.Label, r.Config, r.Cycles)
	}
	local := localPlan.Execute()

	rsc := sc
	rsc.Remote = serve.NewClient(ts.URL)
	remotePlan := runner.NewPlan(rsc)
	for _, r := range runs {
		remotePlan.Add(r.Label, r.Config, r.Cycles)
	}
	remote := remotePlan.Execute()

	if !reflect.DeepEqual(local, remote) {
		t.Fatal("remote execution through the daemon diverged from local execution")
	}
}

// TestJobTimeout pins the timeout path: a tripped deadline fails the
// job and nothing partial reaches the cache.
func TestJobTimeout(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobTimeout = time.Nanosecond
	s, ts := startServer(t, cfg)

	sub := submit(t, ts, planJSON, http.StatusAccepted)
	jr := await(t, ts, sub.ID)
	if jr.Status != "failed" {
		t.Fatalf("job status = %q, want failed", jr.Status)
	}
	if !strings.Contains(jr.Error, "timeout") {
		t.Fatalf("job error = %q, want a timeout message", jr.Error)
	}
	if cs := s.Cache().Stats(); cs.Writes != 0 {
		t.Fatalf("timed-out job wrote %d cache entries, want 0", cs.Writes)
	}
}

// TestQueueBackpressure pins the 429: with a full queue and no workers,
// a distinct plan is rejected without being registered.
func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueCap = 1
	s, err := serve.New(cfg) // workers NOT started: the queue never drains
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts, planJSON, http.StatusAccepted)
	other := strings.Replace(planJSON, `"seed": 42`, `"seed": 43`, 1)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(other))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: HTTP %d, want 429", resp.StatusCode)
	}
}

// TestInvalidPlan pins atomic validation: a plan with any bad run is
// rejected as a 400 before it can occupy a queue slot.
func TestInvalidPlan(t *testing.T) {
	_, ts := startServer(t, testConfig(t))
	bad := `{"scale": {"cycles": 1000}, "runs": [
		{"label": "ok", "workload": "H"},
		{"label": "bad", "workload": "nope"}
	]}`
	submit(t, ts, bad, http.StatusBadRequest)
}

// TestDrainRejectsSubmissions pins the shutdown contract: after Drain,
// intake answers 503.
func TestDrainRejectsSubmissions(t *testing.T) {
	cfg := testConfig(t)
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()
	submit(t, ts, planJSON, http.StatusServiceUnavailable)
}

// TestCorruptEntryRepair pins self-healing: a corrupted cache entry is
// detected on read, the run re-simulates, and the rewritten entry
// carries the same counters hash as the original.
func TestCorruptEntryRepair(t *testing.T) {
	cfg := testConfig(t)
	s, ts := startServer(t, cfg)

	sub := submit(t, ts, planJSON, http.StatusAccepted)
	jr := await(t, ts, sub.ID)
	hash := jr.Results[0].CountersHash

	var entryPath string
	err := filepath.Walk(cfg.CacheDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(path, ".json") {
			entryPath = path
		}
		return err
	})
	if err != nil || entryPath == "" {
		t.Fatalf("no cache entry found under %s: %v", cfg.CacheDir, err)
	}
	if err := os.WriteFile(entryPath, []byte(`{"key":"bogus"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	sub2 := submit(t, ts, planJSON, http.StatusAccepted)
	jr2 := await(t, ts, sub2.ID)
	if jr2.Status != "done" {
		t.Fatalf("repair job = %+v, want done", jr2)
	}
	if jr2.Results[0].Cached {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	if jr2.Results[0].CountersHash != hash {
		t.Fatalf("re-simulated hash %s != original %s", jr2.Results[0].CountersHash, hash)
	}
	if cs := s.Cache().Stats(); cs.Writes != 2 {
		t.Fatalf("cache writes = %d, want 2 (original + repair)", cs.Writes)
	}
}

// TestEventStream pins the events endpoint: a finished job's stream
// replays sample and run_done events and terminates with job_done.
func TestEventStream(t *testing.T) {
	_, ts := startServer(t, testConfig(t))

	sub := submit(t, ts, planJSON, http.StatusAccepted)
	await(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/v1/runs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev map[string]any
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("event stream line %d does not parse: %v", len(lines), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) == 0 {
		t.Fatal("event stream is empty")
	}
	counts := map[string]int{}
	for _, ev := range lines {
		typ, _ := ev["type"].(string)
		counts[typ]++
	}
	// 2000 cycles at interval 500 must sample at least twice.
	if counts["sample"] < 2 {
		t.Fatalf("event stream carries %d samples, want >= 2 (counts: %v)", counts["sample"], counts)
	}
	// The congestion ledger records every controller epoch: 2000 cycles
	// at epoch 500 must stream four decision records.
	if counts["epoch"] != 4 {
		t.Fatalf("event stream carries %d epoch records, want 4 (counts: %v)", counts["epoch"], counts)
	}
	if counts["run_done"] != 1 || counts["job_done"] != 1 {
		t.Fatalf("event counts = %v, want exactly one run_done and one job_done", counts)
	}
	if typ := lines[len(lines)-1]["type"]; typ != "job_done" {
		t.Fatalf("stream ends with %v, want job_done", typ)
	}
}

// TestEndpoints smoke-tests the observability surface.
func TestEndpoints(t *testing.T) {
	_, ts := startServer(t, testConfig(t))
	sub := submit(t, ts, planJSON, http.StatusAccepted)
	await(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v (%v), want ok", h, err)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	var cs serve.CacheStats
	err = json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if err != nil || cs.Writes != 1 {
		t.Fatalf("cache stats = %+v (%v), want 1 write", cs, err)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, metric := range []string{
		"nocd_cache_hits_total", "nocd_cache_writes_total 1",
		"nocd_queue_depth", "nocd_jobs_total",
		`nocd_http_requests_total{path="POST /v1/runs"}`,
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics page missing %q", metric)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/runs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}
