package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"nocsim/internal/obs"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
)

// Job states, in lifecycle order.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one accepted plan moving through the queue. The immutable
// fields are set at submission; everything mutable is guarded by mu.
// Lock ordering: the server's mu is never acquired while holding a
// job's mu (workers touch s.mu first, then j.mu, or each alone).
type job struct {
	id     string
	key    string
	sc     runner.Scale
	runs   []runner.ResolvedRun
	direct bool      // coordinator fan-out: execute in-process, never re-delegate
	born   time.Time // submission instant; anchors the job's trace

	mu         sync.Mutex
	state      string
	errMsg     string
	results    []RunResult
	events     []json.RawMessage
	eventsDone bool
	spans      []jobSpan
}

func (j *job) getState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// emit appends one event to the job's stream buffer. Marshal failures
// are impossible for the event shapes used (plain structs of strings,
// bools and floats), so they are swallowed rather than crashing a
// worker.
func (j *job) emit(ev any) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	j.mu.Lock()
	j.events = append(j.events, b)
	j.mu.Unlock()
}

// finish records the job's terminal state and closes the event stream:
// the final event is appended and eventsDone set under one critical
// section, so a streamer that observes done has necessarily been handed
// every event.
func (j *job) finish(results []RunResult, errMsg string) {
	st := stateDone
	if errMsg != "" {
		st = stateFailed
	}
	last, _ := json.Marshal(jobEvent{Type: "job_done", Job: j.id, State: st, Error: errMsg})
	j.mu.Lock()
	j.state = st
	j.errMsg = errMsg
	j.results = results
	j.events = append(j.events, last)
	j.eventsDone = true
	j.mu.Unlock()
}

// eventsSince returns the buffered events from index n on, plus whether
// the stream is complete. When done is true the returned slice contains
// every remaining event.
func (j *job) eventsSince(n int) ([]json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > len(j.events) {
		n = len(j.events)
	}
	return j.events[n:], j.eventsDone
}

// response snapshots the job as its GET /v1/runs/{id} body.
func (j *job) response() JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobResponse{
		ID:      j.id,
		Status:  j.state,
		PlanKey: j.key,
		Error:   j.errMsg,
		Results: j.results,
	}
}

// Start launches the queue workers. Call once, before serving requests.
func (s *Server) Start() {
	for w := 0; w < s.cfg.Jobs; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
}

// Drain stops intake (further submissions get 503), closes the queue
// and blocks until every accepted job has finished. Safe to call once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// runJob executes one job on a worker goroutine, translating a panic
// out of the execution stack (the runner panics on infrastructure
// failures) into a failed job instead of a dead worker. The job leaves
// the dedup set strictly before it turns observable as done/failed, so
// a client that saw a terminal state and resubmits always gets a fresh
// job (which then hits the cache) rather than a stale dedup answer.
func (s *Server) runJob(j *job) {
	wait := time.Since(j.born)
	s.tele.observe(s.tele.queueWait, wait)
	j.addSpan("queue", "", j.born, wait)
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			s.release(j)
			j.finish(nil, fmt.Sprintf("%v", r))
			s.tele.countJob(stateFailed)
			s.logf("job %s panicked: %v", j.id, r)
		}
		s.mu.Lock()
		s.inflight--
		s.jobsTotal++
		s.mu.Unlock()
	}()
	j.setState(stateRunning)
	j.emit(jobEvent{Type: "job", Job: j.id, State: stateRunning})
	var results []RunResult
	var errMsg string
	handled := false
	if d := s.delegate; d != nil && !j.direct {
		results, errMsg, handled = d(s.delegated(j))
	}
	if !handled {
		results, errMsg = s.execute(j)
	}
	s.release(j)
	j.finish(results, errMsg)
	if errMsg == "" {
		s.tele.countJob(stateDone)
	} else {
		s.tele.countJob(stateFailed)
	}
}

// release removes the job from the dedup set.
func (s *Server) release(j *job) {
	s.mu.Lock()
	delete(s.active, j.key)
	s.mu.Unlock()
}

// DelegatedJob is the view of a queued job handed to the delegation
// hook (the fleet coordinator): the work to execute plus closures back
// into the job's trace, event stream and the daemon's run counters, so
// remote execution shows up in /v1/jobs/{id}/trace and /metrics exactly
// like local execution does.
type DelegatedJob struct {
	ID    string
	Scale runner.Scale
	Runs  []runner.ResolvedRun

	// Span and Instant record trace intervals and point events on the
	// job's timeline; EmitRunDone appends a run_done event to the job's
	// stream; CountRun bumps nocd_runs_outcome_total ("cached"/"fresh").
	Span        func(name, label string, start time.Time, dur time.Duration)
	Instant     func(name string, at time.Time)
	EmitRunDone func(label, key string, cached bool, countersHash string)
	CountRun    func(outcome string)
}

// delegated wraps a job for the delegation hook.
func (s *Server) delegated(j *job) DelegatedJob {
	return DelegatedJob{
		ID:      j.id,
		Scale:   j.sc,
		Runs:    j.runs,
		Span:    j.addSpan,
		Instant: j.addInstant,
		EmitRunDone: func(label, key string, cached bool, countersHash string) {
			j.emit(runDoneEvent{Type: "run_done", Label: label, Key: key,
				Cached: cached, CountersHash: countersHash})
		},
		CountRun: s.tele.countRun,
	}
}

// execute resolves each run against the cache and simulates the misses
// through the runner, returning the per-run results or a failure
// message. Fresh results are verified-by-construction (the counters
// hash is computed from the metrics being stored) and written back
// crash-safely; a cache write failure degrades to a log line, it never
// fails the job.
func (s *Server) execute(j *job) ([]RunResult, string) {
	results := make([]RunResult, len(j.runs))
	var miss []int
	for i, r := range j.runs {
		lookup := time.Now()
		e, err := s.cache.Get(r.Key)
		s.tele.observe(s.tele.cacheGet, time.Since(lookup))
		j.addSpan("cache_lookup", r.Label, lookup, time.Since(lookup))
		if err != nil {
			s.logf("job %s: %v (re-simulating)", j.id, err)
		}
		if e == nil && s.lookup != nil {
			pl := time.Now()
			e = s.lookup(r.Key)
			j.addSpan("peer_lookup", r.Label, pl, time.Since(pl))
		}
		if e == nil {
			miss = append(miss, i)
			continue
		}
		s.tele.countRun("cached")
		results[i] = RunResult{
			Label: r.Label, Key: r.Key, Cached: true,
			CountersHash: e.Manifest.CountersHash,
			Metrics:      e.Metrics,
		}
		j.emit(runDoneEvent{Type: "run_done", Label: r.Label, Key: r.Key,
			Cached: true, CountersHash: e.Manifest.CountersHash})
	}

	if len(miss) > 0 {
		sc := j.sc
		sc.Remote = nil // the daemon is the remote; execute in-process
		sc.ObsDir = ""
		sc.Obs = obs.Options{SampleInterval: s.cfg.SampleInterval, Epochs: true}
		sc.Snapshots = s.snaps

		// The deadline is written before the plan executes and only read
		// afterwards (the cancel closure shares no mutable state), so the
		// runner's worker goroutines race on nothing.
		var deadline time.Time
		var cancel func() bool
		if s.cfg.JobTimeout > 0 {
			deadline = time.Now().Add(s.cfg.JobTimeout)
			cancel = func() bool { return time.Now().After(deadline) }
		}
		every := sc.Epoch
		if every <= 0 {
			every = 1000
		}

		// Per-run provenance and wall-clock starts, filled by each run's
		// Start hook on its worker goroutine and read only after Execute
		// joins the pool — no two goroutines touch the same slot.
		origins := make([]string, len(miss))
		originCycles := make([]int64, len(miss))
		starts := make([]time.Time, len(miss))

		plan := runner.NewPlan(sc)
		for k, i := range miss {
			k := k
			r := j.runs[i]
			label := r.Label
			run := runner.Run{
				Label:  r.Label,
				Config: r.Config,
				Cycles: r.Cycles,
				Start: func(sm *sim.Sim) {
					starts[k] = time.Now()
					origins[k], originCycles[k] = sm.Origin()
					if o := sm.Obs(); o != nil {
						if o.Sampler != nil {
							o.Sampler.SetSink(func(smp obs.Sample) {
								j.emit(sampleEvent{Type: "sample", Label: label, Sample: smp})
							})
						}
						if o.Epochs != nil {
							o.Epochs.SetSink(func(rec obs.EpochRecord) {
								j.emit(epochEvent{Type: "epoch", Label: label, Record: rec})
							})
						}
					}
				},
				Cancel:      cancel,
				CancelEvery: every,
			}
			if s.snaps != nil {
				// Checkpoint the final state so a later extend job resumes
				// here instead of recomputing; a timed-out run is excluded
				// by the partial check below never reaching the cache, but
				// its checkpoint is still exact state and safe to keep.
				cfg := r.Config
				run.Observe = func(sm *sim.Sim) {
					ckpt := time.Now()
					err := runner.Checkpoint(s.snaps, cfg, sm)
					s.tele.observe(s.tele.snapStore, time.Since(ckpt))
					j.addSpan("checkpoint", label, ckpt, time.Since(ckpt))
					if err != nil {
						s.logf("job %s: checkpointing %q: %v", j.id, label, err)
					}
				}
			}
			plan.AddRun(run)
		}
		runStart := time.Now()
		metrics := plan.Execute()
		j.addSpan("run", "", runStart, time.Since(runStart))
		stats := plan.Stats()

		exportStart := time.Now()
		for k, i := range miss {
			r := j.runs[i]
			m := metrics[k]
			if m.Cycles < r.Cycles {
				// The cancel closure tripped mid-run: the metrics are
				// partial, must never reach the cache, and fail the job.
				return nil, fmt.Sprintf("serve: job exceeded %v timeout (run %q stopped at cycle %d of %d)",
					s.cfg.JobTimeout, r.Label, m.Cycles, r.Cycles)
			}
			s.tele.observe(s.tele.runDur, stats[k].Elapsed)
			j.addSpan("simulate", r.Label, starts[k], stats[k].Elapsed)
			s.tele.countRun("fresh")
			var retired int64
			for _, rt := range m.Retired {
				retired += rt
			}
			hash := obs.HashCounters(m.Net, retired, m.Misses)
			elapsedMS := float64(stats[k].Elapsed.Microseconds()) / 1000

			rawCfg, err := json.Marshal(&r.Config)
			if err != nil {
				return nil, fmt.Sprintf("serve: encoding config of run %q: %v", r.Label, err)
			}
			man := obs.Manifest{
				Label:        r.Label,
				Seed:         r.Config.Seed,
				Nodes:        m.Nodes,
				Cycles:       m.Cycles,
				ElapsedMS:    elapsedMS,
				CountersHash: hash,
				WarmSource:   origins[k],
				WarmCycle:    originCycles[k],
				Config:       rawCfg,
			}
			if man.WarmSource == "" {
				man.WarmSource = "cold"
			}
			man.FillEnv()
			if err := s.cache.Put(&Entry{Key: r.Key, Manifest: man, Metrics: m}); err != nil {
				s.logf("job %s: %v (result served uncached)", j.id, err)
			}
			results[i] = RunResult{
				Label: r.Label, Key: r.Key, Cached: false,
				CountersHash: hash, ElapsedMS: elapsedMS, Metrics: m,
			}
			j.emit(runDoneEvent{Type: "run_done", Label: r.Label, Key: r.Key,
				Cached: false, CountersHash: hash})
		}
		j.addSpan("export", "", exportStart, time.Since(exportStart))
	}
	return results, ""
}
