package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

// Client is the sweep API's client side: it submits a grid, consumes
// the NDJSON stream, and hands back the points in grid order. It also
// implements runner.Remote, so the experiment drivers' -server path
// rides the sweep API unchanged.
//
// Failure semantics are all-or-nothing: any point failing terminally —
// or the stream truncating mid-sweep — fails the whole call, so a
// driver never renders a partial table.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a daemon at base.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

var _ runner.Remote = (*Client)(nil)

// SweepResult is a completed sweep: every point terminal and done.
type SweepResult struct {
	ID     string
	Points []PointEvent // in grid order
	Done   int
	Cached int
	Failed int
}

// Sweep submits the spec and consumes the stream to completion,
// returning an error — never partial points — when any point fails.
func (c *Client) Sweep(spec SweepSpec) (*SweepResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding sweep: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fleet: POST /v1/sweeps: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var er serve.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("fleet: sweep rejected: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("fleet: sweep rejected: HTTP %d", resp.StatusCode)
	}

	res := &SweepResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // a point's Metrics can be large
	complete := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return nil, fmt.Errorf("fleet: decoding sweep stream: %w", err)
		}
		switch head.Type {
		case "sweep":
			var ev SweepEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return nil, fmt.Errorf("fleet: decoding sweep header: %w", err)
			}
			res.ID = ev.ID
		case "point":
			var pt PointEvent
			if err := json.Unmarshal(line, &pt); err != nil {
				return nil, fmt.Errorf("fleet: decoding point event: %w", err)
			}
			res.Points = append(res.Points, pt)
		case "sweep_done":
			var sum SweepSummary
			if err := json.Unmarshal(line, &sum); err != nil {
				return nil, fmt.Errorf("fleet: decoding sweep summary: %w", err)
			}
			res.Done, res.Cached, res.Failed = sum.Done, sum.Cached, sum.Failed
			complete = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: reading sweep stream: %w", err)
	}
	if !complete {
		return nil, fmt.Errorf("fleet: sweep stream truncated before summary (sweep %s)", res.ID)
	}
	if res.Failed > 0 {
		for _, pt := range res.Points {
			if pt.State == "failed" {
				return nil, fmt.Errorf("fleet: sweep %s: %d of %d points failed; first: %q: %s",
					res.ID, res.Failed, len(res.Points), pt.Label, pt.Error)
			}
		}
		return nil, fmt.Errorf("fleet: sweep %s: %d points failed", res.ID, res.Failed)
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].Index < res.Points[j].Index })
	return res, nil
}

// ExecuteSpecs implements runner.Remote over the sweep API: the plan's
// runs become explicit sweep points, and the completed points map back
// to results in plan order.
func (c *Client) ExecuteSpecs(spec runner.PlanSpec) ([]runner.RemoteResult, error) {
	res, err := c.Sweep(SweepSpec{Scale: spec.Scale, Runs: spec.Runs})
	if err != nil {
		return nil, err
	}
	if len(res.Points) != len(spec.Runs) {
		return nil, fmt.Errorf("fleet: sweep %s returned %d points for %d runs",
			res.ID, len(res.Points), len(spec.Runs))
	}
	out := make([]runner.RemoteResult, len(res.Points))
	for i, pt := range res.Points {
		if pt.Metrics == nil {
			return nil, fmt.Errorf("fleet: sweep %s point %q carries no metrics", res.ID, pt.Label)
		}
		out[i] = runner.RemoteResult{
			Metrics:   *pt.Metrics,
			ElapsedMS: pt.ElapsedMS,
			Cached:    pt.Cached,
		}
	}
	return out, nil
}
