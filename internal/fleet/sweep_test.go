package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"nocsim/internal/runner"
)

func rawVals(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(v)
	}
	return out
}

// TestSweepExpansion pins the grid semantics: odometer order with the
// last axis fastest, labels naming every axis value, the size axis
// setting both mesh dimensions, and explicit runs appended last.
func TestSweepExpansion(t *testing.T) {
	spec := SweepSpec{
		Base: runner.RunSpec{Label: "g", Preset: "controlled", Workload: "H", Width: 4, Height: 4},
		Axes: []Axis{
			{Name: "preset", Values: rawVals(`"baseline"`, `"controlled"`)},
			{Name: "seed", Values: rawVals("1", "2", "3")},
		},
		Runs: []runner.RunSpec{{Label: "extra", Preset: "static", Workload: "H", Width: 4, Height: 4}},
	}
	points, err := spec.Points(4096)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"g/preset=baseline,seed=1", "g/preset=baseline,seed=2", "g/preset=baseline,seed=3",
		"g/preset=controlled,seed=1", "g/preset=controlled,seed=2", "g/preset=controlled,seed=3",
		"extra",
	}
	if len(points) != len(wantLabels) {
		t.Fatalf("expanded to %d points, want %d", len(points), len(wantLabels))
	}
	for i, want := range wantLabels {
		if points[i].Label != want {
			t.Errorf("point %d label = %q, want %q", i, points[i].Label, want)
		}
	}
	if points[0].Preset != "baseline" || points[0].Seed != 1 {
		t.Errorf("point 0 = %+v, want baseline seed 1", points[0])
	}
	if points[5].Preset != "controlled" || points[5].Seed != 3 {
		t.Errorf("point 5 = %+v, want controlled seed 3", points[5])
	}

	// The size axis sets both dimensions; an unlabeled base gets the
	// "sweep" prefix.
	sz := SweepSpec{
		Base: runner.RunSpec{Preset: "controlled", Workload: "H"},
		Axes: []Axis{{Name: "size", Values: rawVals("4", "8")}},
	}
	pts, err := sz.Points(4096)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Width != 8 || pts[1].Height != 8 {
		t.Errorf("size axis point = %+v, want 8x8", pts[1])
	}
	if pts[0].Label != "sweep/size=4" {
		t.Errorf("unlabeled base expands to %q, want sweep/size=4", pts[0].Label)
	}
}

// TestSweepExpansionErrors pins the rejection paths: unknown axes,
// empty axes, malformed values, oversized grids and empty sweeps all
// error before anything executes.
func TestSweepExpansionErrors(t *testing.T) {
	cases := []struct {
		name string
		spec SweepSpec
		max  int
		want string
	}{
		{"unknown axis", SweepSpec{Axes: []Axis{{Name: "bogus", Values: rawVals("1")}}}, 4096, "unknown axis"},
		{"unnamed axis", SweepSpec{Axes: []Axis{{Values: rawVals("1")}}}, 4096, "no name"},
		{"empty axis", SweepSpec{Axes: []Axis{{Name: "seed"}}}, 4096, "no values"},
		{"bad value", SweepSpec{Axes: []Axis{{Name: "seed", Values: rawVals(`"many"`)}}}, 4096, `axis "seed"`},
		{"oversized", SweepSpec{Axes: []Axis{{Name: "seed", Values: rawVals("1", "2", "3", "4")}}}, 3, "exceeds 3 points"},
		{"empty sweep", SweepSpec{}, 4096, "no points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Points(tc.max)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Points() error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// smallGrid is the canonical test sweep: 2 presets x 2 seeds on a 4x4
// mesh, cheap enough to reference-execute locally.
func smallGrid() SweepSpec {
	return SweepSpec{
		Scale: runner.ScaleSpec{Cycles: 2000, Epoch: 500},
		Base:  runner.RunSpec{Label: "g", Preset: "controlled", Workload: "H", Width: 4, Height: 4},
		Axes: []Axis{
			{Name: "preset", Values: rawVals(`"baseline"`, `"controlled"`)},
			{Name: "seed", Values: rawVals("1", "2")},
		},
	}
}

// TestSweepLocalDaemon runs the sweep API on a peerless daemon: points
// execute on the daemon's own queue, the client returns them in grid
// order with reference-equal hashes, a resubmission is answered fully
// from cache, and the registry serves the finished sweep.
func TestSweepLocalDaemon(t *testing.T) {
	_, _, ts := startDaemon(t, testServeConfig(t), Config{})
	spec := smallGrid()
	want := referenceHashes(t, spec)

	res, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 || res.Done != 4 || res.Failed != 0 {
		t.Fatalf("sweep = %d points, done %d, failed %d; want 4/4/0", len(res.Points), res.Done, res.Failed)
	}
	for i, pt := range res.Points {
		if pt.Index != i || pt.State != "done" {
			t.Fatalf("point %d = %+v, want done at index %d", i, pt, i)
		}
		if pt.Cached {
			t.Errorf("point %q cached on a fresh daemon", pt.Label)
		}
		if pt.CountersHash != want[pt.Label] {
			t.Errorf("point %q hash %s, want %s (local -parallel 1)", pt.Label, pt.CountersHash, want[pt.Label])
		}
		if pt.Metrics == nil {
			t.Errorf("point %q carries no metrics", pt.Label)
		}
	}

	res2, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached != 4 {
		t.Fatalf("resubmitted sweep cached %d of 4 points", res2.Cached)
	}
	for i, pt := range res2.Points {
		if !pt.Cached || pt.CountersHash != res.Points[i].CountersHash {
			t.Errorf("resubmitted point %q = cached %v hash %s, want cached with hash %s",
				pt.Label, pt.Cached, pt.CountersHash, res.Points[i].CountersHash)
		}
	}

	// The registry snapshot agrees with the stream.
	var snap SweepResponse
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + res.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != "done" || snap.Done != 4 || len(snap.Points) != 4 {
		t.Fatalf("registry snapshot = %+v, want done with 4 points", snap)
	}
	if resp, _ := http.Get(ts.URL + "/v1/sweeps/no-such-sweep"); resp != nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown sweep: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// TestSweepRejectsBadGrid pins atomic validation: a grid with any bad
// point is rejected whole with 400 before a single job is queued.
func TestSweepRejectsBadGrid(t *testing.T) {
	_, _, ts := startDaemon(t, testServeConfig(t), Config{})
	for _, spec := range []SweepSpec{
		{Axes: []Axis{{Name: "bogus", Values: rawVals("1")}}},
		{Base: runner.RunSpec{Preset: "no-such-preset", Workload: "H", Width: 4, Height: 4},
			Axes: []Axis{{Name: "seed", Values: rawVals("1", "2")}}},
	} {
		if _, err := NewClient(ts.URL).Sweep(spec); err == nil ||
			!strings.Contains(err.Error(), "sweep rejected") {
			t.Fatalf("bad grid error = %v, want sweep rejected", err)
		}
	}
}

// TestSweepClientFailurePath pins the all-or-nothing client contract:
// a sweep with a terminally failing point returns an error naming it,
// never partial points — the exit-path the sweep and compare commands
// rely on for no-partial-output.
func TestSweepClientFailurePath(t *testing.T) {
	cfg := testServeConfig(t)
	cfg.JobTimeout = time.Nanosecond
	_, _, ts := startDaemon(t, cfg, Config{})

	res, err := NewClient(ts.URL).Sweep(smallGrid())
	if err == nil {
		t.Fatalf("sweep on a 1ns-timeout daemon succeeded: %+v", res)
	}
	if res != nil {
		t.Fatalf("failed sweep returned partial points: %+v", res)
	}
	if !strings.Contains(err.Error(), "points failed") || !strings.Contains(err.Error(), "g/preset=") {
		t.Errorf("failure error %q does not name the failed point", err)
	}

	// The runner.Remote adapter propagates the same failure.
	spec := runner.PlanSpec{
		Scale: runner.ScaleSpec{Cycles: 2000, Epoch: 500},
		Runs:  []runner.RunSpec{{Label: "r", Preset: "controlled", Workload: "H", Width: 4, Height: 4}},
	}
	if _, err := NewClient(ts.URL).ExecuteSpecs(spec); err == nil {
		t.Fatal("ExecuteSpecs on a failing daemon returned no error")
	}
}
