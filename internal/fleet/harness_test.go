package fleet

// In-process fleet harness: real serve daemons behind httptest
// listeners, a killable/delayable proxy standing in for a flaky peer,
// and a reference executor that computes the expected counters hashes
// locally at -parallel 1 — the ground truth every fleet test pins its
// results against.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"nocsim/internal/obs"
	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

// testScale is the base daemon scale for fleet tests: single worker
// shard, defaults otherwise.
func testScale() runner.Scale {
	sc := runner.DefaultScale()
	sc.Workers = 1
	return sc
}

// testServeConfig is the base daemon configuration: fresh temp cache,
// enough workers to keep a small sweep moving.
func testServeConfig(t *testing.T) serve.Config {
	t.Helper()
	return serve.Config{
		Scale:          testScale(),
		CacheDir:       t.TempDir(),
		QueueCap:       32,
		Jobs:           4,
		SampleInterval: 500,
	}
}

// startDaemon builds and starts one daemon with the fleet layer
// enabled, serving over httptest. Teardown drains the queue and stops
// the coordinator.
func startDaemon(t *testing.T, cfg serve.Config, fc Config) (*serve.Server, *Fleet, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Enable(s, fc)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
		f.Close()
	})
	return s, f, ts
}

// startPeer is a plain worker daemon: no peers of its own.
func startPeer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, _, ts := startDaemon(t, cfg, Config{})
	return s, ts
}

// flakyProxy fronts a real peer daemon and injects the failure modes
// the coordinator must survive: dead (every request answers 502),
// die-after-dispatch (the next dispatch forwards, then the peer goes
// dark — death mid-job), and a per-request delay (a slow peer for
// duplicate-steal tests).
type flakyProxy struct {
	rp *httputil.ReverseProxy

	mu               sync.Mutex
	dead             bool
	dieAfterDispatch bool
	delay            time.Duration
}

func newFlakyProxy(t *testing.T, target string) (*flakyProxy, *httptest.Server) {
	t.Helper()
	u, err := url.Parse(target)
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyProxy{rp: httputil.NewSingleHostReverseProxy(u)}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return f, ts
}

func (f *flakyProxy) setDead(dead bool) {
	f.mu.Lock()
	f.dead = dead
	f.mu.Unlock()
}

func (f *flakyProxy) setDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// armDeathAfterDispatch lets exactly one more dispatch through, then
// kills the proxy: the coordinator sees the submission succeed and
// every poll after it fail.
func (f *flakyProxy) armDeathAfterDispatch() {
	f.mu.Lock()
	f.dieAfterDispatch = true
	f.mu.Unlock()
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	dead, delay := f.dead, f.delay
	if !dead && f.dieAfterDispatch && r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
		f.dead = true
		f.dieAfterDispatch = false
	}
	f.mu.Unlock()
	if dead {
		http.Error(w, `{"error":"peer down"}`, http.StatusBadGateway)
		return
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	f.rp.ServeHTTP(w, r)
}

// signalLog is an io.Writer that closes a channel the first time the
// accumulated log contains needle — how tests synchronize with the
// coordinator's internal transitions without polling.
type signalLog struct {
	needle string
	ch     chan struct{}
	t0     time.Time

	mu   sync.Mutex
	buf  bytes.Buffer
	once sync.Once
}

func newSignalLog(needle string) *signalLog {
	return &signalLog{needle: needle, ch: make(chan struct{}), t0: time.Now()}
}

func (l *signalLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf.WriteString(time.Since(l.t0).String() + " ")
	l.buf.Write(p)
	if strings.Contains(l.buf.String(), l.needle) {
		l.once.Do(func() { close(l.ch) })
	}
	return len(p), nil
}

func (l *signalLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// referenceHashes executes the sweep's expanded points locally at
// Workers=1 -parallel 1 — the setting the fleet's byte-identity
// guarantee is stated against — and returns counters hash per label.
func referenceHashes(t *testing.T, spec SweepSpec) map[string]string {
	t.Helper()
	points, err := spec.Points(4096)
	if err != nil {
		t.Fatal(err)
	}
	sc, runs, err := runner.PlanSpec{Scale: spec.Scale, Runs: points}.Resolve(testScale())
	if err != nil {
		t.Fatal(err)
	}
	sc.Workers = 1
	sc.Parallel = 1
	plan := runner.NewPlan(sc)
	for _, r := range runs {
		plan.Add(r.Label, r.Config, r.Cycles)
	}
	ms := plan.Execute()
	out := make(map[string]string, len(runs))
	for i, r := range runs {
		var retired int64
		for _, rt := range ms[i].Retired {
			retired += rt
		}
		out[r.Label] = obs.HashCounters(ms[i].Net, retired, ms[i].Misses)
	}
	return out
}

// awaitJob polls a daemon for a job until it turns terminal.
func awaitJob(t *testing.T, cl *serve.Client, id string) serve.JobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		jr, err := cl.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == "done" || jr.Status == "failed" {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
