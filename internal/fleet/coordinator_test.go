package fleet

// Failure-injection suite for the coordinator. Every test pins the
// fleet's hard guarantee — counters hashes byte-identical to a local
// -parallel 1 execution — while injecting the failure mode under test
// through the flaky proxy: peer death mid-job, duplicate steals,
// every peer down, and preemption hand-off.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

// fleetCounters is a consistent snapshot of the coordinator's per-peer
// accounting.
type fleetCounters struct {
	live                              int
	dispatched, stolen, retried, dead []int64
	preempts                          int64
}

func snapshotCounters(f *Fleet) fleetCounters {
	c := f.co
	c.mu.Lock()
	defer c.mu.Unlock()
	var fc fleetCounters
	for _, p := range c.peers {
		if p.alive {
			fc.live++
		}
		fc.dispatched = append(fc.dispatched, p.dispatched)
		fc.stolen = append(fc.stolen, p.stolen)
		fc.retried = append(fc.retried, p.retried)
		fc.dead = append(fc.dead, p.dead)
	}
	fc.preempts = c.preempts
	return fc
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// scrapeMetrics fetches a daemon's /metrics page.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// metricValue reads one unlabeled integer metric off a /metrics page.
func metricValue(t *testing.T, page, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s = %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not on page", name)
	return 0
}

// wideGrid is the 6-point byte-identity grid: 2 presets x 3 seeds.
func wideGrid() SweepSpec {
	spec := smallGrid()
	spec.Axes[1].Values = rawVals("1", "2", "3")
	return spec
}

// assertHashes checks every point of a completed sweep against the
// local reference.
func assertHashes(t *testing.T, res *SweepResult, want map[string]string) {
	t.Helper()
	for _, pt := range res.Points {
		if pt.State != "done" {
			t.Fatalf("point %q = %+v, want done", pt.Label, pt)
		}
		if pt.CountersHash != want[pt.Label] {
			t.Errorf("point %q hash %s, want %s (local -parallel 1)", pt.Label, pt.CountersHash, want[pt.Label])
		}
	}
}

// TestFleetByteIdentity is the tentpole pin: a 3-peer fleet sweep
// produces exactly the counters hashes of the same grid run locally at
// -parallel 1, every point simulates exactly once across the fleet,
// and a repeated sweep is answered 100% from the replicated local
// cache with zero new simulations — verified through the metrics.
func TestFleetByteIdentity(t *testing.T) {
	var peerURLs []string
	var peerTS []string
	for i := 0; i < 3; i++ {
		_, ts := startPeer(t, testServeConfig(t))
		peerURLs = append(peerURLs, ts.URL)
		peerTS = append(peerTS, ts.URL)
	}
	_, fl, ts := startDaemon(t, testServeConfig(t), Config{
		Peers:         peerURLs,
		Window:        2,
		ProbeInterval: 50 * time.Millisecond,
		StealAfter:    -1,
		Backoff:       time.Millisecond,
	})

	spec := wideGrid()
	want := referenceHashes(t, spec)

	res, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 6 || res.Cached != 0 {
		t.Fatalf("first sweep done %d cached %d, want 6 fresh", res.Done, res.Cached)
	}
	assertHashes(t, res, want)

	fc := snapshotCounters(fl)
	if got := sum(fc.dispatched); got != 6 {
		t.Errorf("fleet dispatched %d jobs for 6 points, want 6", got)
	}
	if sum(fc.retried) != 0 || sum(fc.dead) != 0 {
		t.Errorf("healthy fleet recorded retries/deaths: %+v", fc)
	}
	var peerRuns int64
	for _, u := range peerTS {
		peerRuns += metricValue(t, scrapeMetrics(t, u), "nocd_run_seconds_count")
	}
	if peerRuns != 6 {
		t.Errorf("peers simulated %d runs for 6 points, want exactly 6", peerRuns)
	}
	if n := metricValue(t, scrapeMetrics(t, ts.URL), "nocd_run_seconds_count"); n != 0 {
		t.Errorf("coordinator simulated %d runs itself, want 0", n)
	}

	// Second identical sweep: all cache hits, zero simulations anywhere.
	res2, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached != 6 {
		t.Fatalf("repeat sweep cached %d of 6 points", res2.Cached)
	}
	assertHashes(t, res2, want)
	if fc2 := snapshotCounters(fl); sum(fc2.dispatched) != sum(fc.dispatched) {
		t.Errorf("repeat sweep dispatched %d new jobs, want 0", sum(fc2.dispatched)-sum(fc.dispatched))
	}
	var peerRuns2 int64
	for _, u := range peerTS {
		peerRuns2 += metricValue(t, scrapeMetrics(t, u), "nocd_run_seconds_count")
	}
	if peerRuns2 != peerRuns {
		t.Errorf("repeat sweep simulated %d new runs on peers, want 0", peerRuns2-peerRuns)
	}
}

// TestFleetPeerDeathMidJob kills a peer after it accepts a dispatch:
// the coordinator must mark it dead, requeue the orphaned job on the
// surviving peer, and still deliver every point with reference-equal
// hashes — jobs are requeued, never dropped.
func TestFleetPeerDeathMidJob(t *testing.T) {
	_, realA := startPeer(t, testServeConfig(t))
	proxyA, proxyATS := newFlakyProxy(t, realA.URL)
	_, peerB := startPeer(t, testServeConfig(t))
	_, fl, ts := startDaemon(t, testServeConfig(t), Config{
		Peers:         []string{proxyATS.URL, peerB.URL},
		Window:        2,
		ProbeInterval: 25 * time.Millisecond,
		StealAfter:    -1,
		Backoff:       time.Millisecond,
	})
	proxyA.armDeathAfterDispatch()

	spec := smallGrid()
	want := referenceHashes(t, spec)
	res, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 4 || res.Failed != 0 {
		t.Fatalf("sweep done %d failed %d, want all 4 done despite the dead peer", res.Done, res.Failed)
	}
	assertHashes(t, res, want)

	fc := snapshotCounters(fl)
	if fc.dead[0] < 1 {
		t.Errorf("killed peer was never marked dead: %+v", fc)
	}
	if fc.retried[0] < 1 {
		t.Errorf("no job was retried off the dead peer: %+v", fc)
	}
	if fc.live != 1 {
		t.Errorf("%d peers live, want 1 (the survivor)", fc.live)
	}
}

// TestFleetDuplicateSteal puts one peer behind a long delay so an idle
// peer duplicate-steals its in-flight job: the first completion wins,
// results stay reference-identical, and a resubmission is fully
// cached — the CacheKey dedup makes the duplicate execution harmless.
func TestFleetDuplicateSteal(t *testing.T) {
	_, realA := startPeer(t, testServeConfig(t))
	proxyA, proxyATS := newFlakyProxy(t, realA.URL)
	proxyA.setDelay(300 * time.Millisecond)
	_, peerB := startPeer(t, testServeConfig(t))
	_, fl, ts := startDaemon(t, testServeConfig(t), Config{
		Peers:         []string{proxyATS.URL, peerB.URL},
		Window:        1,
		ProbeInterval: 10 * time.Millisecond,
		StealAfter:    20 * time.Millisecond,
		Backoff:       time.Millisecond,
	})

	spec := smallGrid()
	spec.Axes = spec.Axes[:1] // 2 points: one per preset
	want := referenceHashes(t, spec)
	res, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 2 {
		t.Fatalf("sweep done %d, want 2", res.Done)
	}
	assertHashes(t, res, want)

	if fc := snapshotCounters(fl); sum(fc.stolen) < 1 {
		t.Errorf("no steal happened off the slow peer: %+v", fc)
	}

	res2, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached != 2 {
		t.Fatalf("post-steal resubmission cached %d of 2 points (duplicate execution broke dedup?)", res2.Cached)
	}
	assertHashes(t, res2, want)
}

// TestFleetAllPeersDownFallback starts every peer dead: the
// coordinator must degrade gracefully to local execution and still
// answer the sweep with reference-equal hashes.
func TestFleetAllPeersDownFallback(t *testing.T) {
	_, realA := startPeer(t, testServeConfig(t))
	proxyA, proxyATS := newFlakyProxy(t, realA.URL)
	proxyA.setDead(true)
	_, realB := startPeer(t, testServeConfig(t))
	proxyB, proxyBTS := newFlakyProxy(t, realB.URL)
	proxyB.setDead(true)

	log := newSignalLog("executing")
	_, fl, ts := startDaemon(t, testServeConfig(t), Config{
		Peers:         []string{proxyATS.URL, proxyBTS.URL},
		Window:        1,
		ProbeInterval: 20 * time.Millisecond,
		StealAfter:    -1,
		Backoff:       time.Millisecond,
		Log:           log,
	})

	spec := smallGrid()
	spec.Axes = spec.Axes[:1] // 2 points
	want := referenceHashes(t, spec)
	res, err := NewClient(ts.URL).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 2 || res.Failed != 0 {
		t.Fatalf("sweep done %d failed %d, want all 2 done locally", res.Done, res.Failed)
	}
	assertHashes(t, res, want)

	fc := snapshotCounters(fl)
	if fc.live != 0 {
		t.Errorf("%d peers live after total outage, want 0", fc.live)
	}
	if sum(fc.dispatched) != 0 {
		t.Errorf("%d dispatches against dead peers succeeded", sum(fc.dispatched))
	}
	if !strings.Contains(log.String(), "executing") {
		t.Error("coordinator never logged the local fallback")
	}
}

// TestFleetPreemptionHandoff pins the preemption path: with its only
// peer dead, the coordinator starts a long job locally; the peer
// revives mid-run, the local run checkpoints and hands the remainder
// off, and the peer resumes from the pushed blob — the result's
// manifest records the warm source, and its counters hash equals the
// unpreempted local reference.
func TestFleetPreemptionHandoff(t *testing.T) {
	peerCfg := testServeConfig(t)
	peerCfg.SnapDir = t.TempDir()
	_, peerTS := startPeer(t, peerCfg)
	proxy, proxyTS := newFlakyProxy(t, peerTS.URL)
	proxy.setDead(true)

	log := newSignalLog("executing")
	coordCfg := testServeConfig(t)
	coordCfg.SnapDir = t.TempDir()
	coordSrv, fl, ts := startDaemon(t, coordCfg, Config{
		Peers:         []string{proxyTS.URL},
		Window:        1,
		ProbeInterval: 5 * time.Millisecond,
		StealAfter:    -1,
		Backoff:       time.Millisecond,
		Log:           log,
	})

	plan := runner.PlanSpec{
		Scale: runner.ScaleSpec{Cycles: 30_000, Epoch: 1000},
		Runs: []runner.RunSpec{
			{Label: "pre", Preset: "controlled", Workload: "H", Width: 8, Height: 8},
		},
	}
	refSpec := SweepSpec{Scale: plan.Scale, Runs: plan.Runs}
	want := referenceHashes(t, refSpec)

	cl := serve.NewClient(ts.URL)
	sub, err := cl.Submit(plan)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-log.ch:
	case <-time.After(30 * time.Second):
		t.Fatalf("local fallback never started; log:\n%s", log.String())
	}
	proxy.setDead(false) // peer revives while the local run grinds

	jr := awaitJob(t, cl, sub.ID)
	if jr.Status != "done" || len(jr.Results) != 1 {
		t.Fatalf("job = %+v, want done with 1 result", jr)
	}
	if jr.Results[0].CountersHash != want["pre"] {
		t.Errorf("preempted run hash %s, want %s (unpreempted local reference)",
			jr.Results[0].CountersHash, want["pre"])
	}
	if fc := snapshotCounters(fl); fc.preempts < 1 {
		t.Fatalf("run completed without preemption (timing too fast for this host?): %+v; log:\n%s", fc, log.String())
	}
	e, err := coordSrv.Cache().Get(jr.Results[0].Key)
	if err != nil || e == nil {
		t.Fatalf("preempted result not in the coordinator cache: %v", err)
	}
	if e.Manifest.WarmSource == "" || e.Manifest.WarmSource == "cold" {
		t.Errorf("peer did not resume from the pushed checkpoint: warm source %q", e.Manifest.WarmSource)
	}
}
