// Package fleet turns a nocd daemon into a horizontally scalable
// service: a batch sweep API that expands parameter grids into
// individually cached jobs, a coordinator that fans jobs out to peer
// daemons with bounded in-flight windows, work-stealing and
// retry-on-peer-death, and peer-aware caching that replicates remote
// results into the local content-addressed store.
//
// The layer adds no new correctness machinery — it leans entirely on
// the determinism contract underneath. runner.CacheKey is
// location-independent (it covers the canonicalized configuration and
// cycle budget, never the executing process), so a result computed on
// any peer is byte-identical to one computed locally, and a cache
// entry can replicate freely: every entry is re-verified against its
// counters hash on read, locally and again after crossing the wire.
// That is what makes the fleet's hard guarantee cheap to state: a
// sweep executed by N peers — under peer death, duplicate steals and
// retries — produces exactly the counters hashes of the same plan run
// locally at -parallel 1.
//
// Like the serve layer it extends, fleet is sanctioned ground for
// wall-clock reads (dispatch latency, backoff, probes) and goroutines
// (dispatch workers, the prober): all of it sits strictly above the
// runner and none of it can reach a simulation result.
package fleet

import (
	"fmt"
	"io"
	"strings"
	"time"

	"nocsim/internal/serve"
)

// Config assembles the fleet layer over a daemon.
type Config struct {
	// Peers are the base URLs of peer daemons ("http://host:port") the
	// coordinator fans jobs out to. Empty means no coordinator: the
	// sweep API still works, executing every job locally.
	Peers []string
	// Window bounds the jobs in flight per peer. 0 means 2.
	Window int
	// ProbeInterval is the health-probe period for dead peers (and the
	// steal-scan heartbeat). 0 means 2s.
	ProbeInterval time.Duration
	// StealAfter is how long a job may sit in flight on one peer before
	// an idle worker duplicates it onto another (the cache key dedups
	// the results). 0 means 30s; negative disables duplicate steals.
	StealAfter time.Duration
	// Backoff is the base retry delay after a peer failure, doubling
	// per attempt and capped at 2s. 0 means 50ms.
	Backoff time.Duration
	// MaxPoints caps a single sweep's expanded grid. 0 means 4096.
	MaxPoints int
	// Log receives operational lines; nil discards them.
	Log io.Writer
}

// Fleet is the enabled layer: the sweep API and, with peers, the
// coordinator.
type Fleet struct {
	co *coordinator
	sw *sweeps
}

// Enable installs the fleet layer on a daemon: the sweep routes always,
// and with peers configured also the coordinator (job delegation, peer
// cache lookup, fleet metrics). Call after serve.New and before the
// daemon starts serving traffic.
func Enable(s *serve.Server, cfg Config) (*Fleet, error) {
	if cfg.Window <= 0 {
		cfg.Window = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.StealAfter == 0 {
		cfg.StealAfter = 30 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 4096
	}
	for _, p := range cfg.Peers {
		if strings.TrimSpace(p) == "" {
			return nil, fmt.Errorf("fleet: empty peer address")
		}
	}

	f := &Fleet{sw: newSweeps(s, cfg)}
	s.Route("POST /v1/sweeps", f.sw.handleSubmit)
	s.Route("GET /v1/sweeps/{id}", f.sw.handleGet)
	if len(cfg.Peers) > 0 {
		f.co = newCoordinator(s, cfg)
		s.SetDelegate(f.co.Execute)
		s.SetLookup(f.co.Lookup)
		s.SetExtraMetrics(f.co.WriteMetrics)
		f.co.start()
	}
	return f, nil
}

// Close stops the coordinator's workers and prober. Jobs already
// delegated finish first; call after the daemon has drained.
func (f *Fleet) Close() {
	if f.co != nil {
		f.co.close()
	}
}
