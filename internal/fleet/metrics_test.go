package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// metricName strips a Prometheus text line down to its metric name.
func metricName(line string) string {
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		return line[:i]
	}
	return line
}

// histogramNames expands one histogram's fixed line sequence: the
// 8-step ladder plus +Inf, then sum and count.
func histogramNames(name string) []string {
	out := make([]string, 0, 11)
	for i := 0; i < 9; i++ {
		out = append(out, name+"_bucket")
	}
	return append(out, name+"_sum", name+"_count")
}

// TestMetricsFormatStability pins the fleet section of the /metrics
// page: it renders after the daemon's fixed prefix and before the
// per-endpoint HTTP lines, in fixed order — the live-peer gauge, the
// per-peer counters in configuration order, the preemption counter and
// the dispatch-latency histogram on the shared bucket ladder.
func TestMetricsFormatStability(t *testing.T) {
	_, peerA := startPeer(t, testServeConfig(t))
	_, peerB := startPeer(t, testServeConfig(t))
	cfg := testServeConfig(t)
	cfg.SnapDir = t.TempDir()
	_, _, ts := startDaemon(t, cfg, Config{
		Peers:         []string{peerA.URL, peerB.URL},
		Window:        2,
		ProbeInterval: 50 * time.Millisecond,
		StealAfter:    -1,
		Backoff:       time.Millisecond,
	})
	if _, err := NewClient(ts.URL).Sweep(smallGrid()); err != nil {
		t.Fatal(err)
	}

	raw := scrapeMetrics(t, ts.URL)
	lines := strings.Split(strings.TrimSuffix(raw, "\n"), "\n")

	// The daemon's fixed prefix, then the fleet section, name by name.
	want := []string{
		"nocd_build_info",
		"nocd_cache_entries", "nocd_cache_bytes", "nocd_cache_hits_total",
		"nocd_cache_misses_total", "nocd_cache_writes_total", "nocd_cache_hit_ratio",
		"nocd_queue_depth", "nocd_inflight_jobs", "nocd_jobs_total",
		"nocd_snap_entries", "nocd_snap_bytes", "nocd_snap_hits_total",
		"nocd_snap_misses_total", "nocd_snap_writes_total",
		"nocd_snap_corrupt_total", "nocd_snap_evicted_total",
	}
	want = append(want, histogramNames("nocd_queue_wait_seconds")...)
	want = append(want, histogramNames("nocd_run_seconds")...)
	want = append(want, histogramNames("nocd_cache_lookup_seconds")...)
	want = append(want, histogramNames("nocd_snap_store_seconds")...)
	want = append(want,
		"nocd_jobs_outcome_total", "nocd_jobs_outcome_total",
		"nocd_runs_outcome_total", "nocd_runs_outcome_total")
	want = append(want, "nocd_peers_live")
	for _, m := range []string{"dispatched", "stolen", "retried", "dead"} {
		want = append(want, "nocd_peer_"+m+"_total", "nocd_peer_"+m+"_total")
	}
	want = append(want, "nocd_fleet_preempted_total")
	want = append(want, histogramNames("nocd_peer_dispatch_seconds")...)
	if len(lines) < len(want) {
		t.Fatalf("metrics page has %d lines, want at least %d", len(lines), len(want))
	}
	for i, name := range want {
		if got := metricName(lines[i]); got != name {
			t.Fatalf("line %d is %q, want metric %s", i, lines[i], name)
		}
	}
	for _, l := range lines[len(want):] {
		if n := metricName(l); n != "nocd_http_requests_total" && n != "nocd_http_request_seconds_sum" {
			t.Errorf("unexpected line after the fleet section: %q", l)
		}
	}

	// Per-peer counter labels render in configuration order.
	for i, l := range lines {
		if metricName(l) == "nocd_peers_live" {
			if l != "nocd_peers_live 2" {
				t.Errorf("live gauge = %q, want 2 live peers", l)
			}
			wantA := fmt.Sprintf("nocd_peer_dispatched_total{peer=%q}", peerA.URL)
			wantB := fmt.Sprintf("nocd_peer_dispatched_total{peer=%q}", peerB.URL)
			if !strings.HasPrefix(lines[i+1], wantA) || !strings.HasPrefix(lines[i+2], wantB) {
				t.Errorf("per-peer counters out of configuration order: %q / %q", lines[i+1], lines[i+2])
			}
			break
		}
	}

	// The dispatch histogram shares the standard ladder and saw the
	// sweep's four dispatches.
	wantBuckets := []string{"0.001", "0.005", "0.025", "0.1", "0.5", "2.5", "10", "60", "+Inf"}
	first := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "nocd_peer_dispatch_seconds_bucket") {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("no dispatch-latency bucket lines on the page")
	}
	for i, le := range wantBuckets {
		prefix := fmt.Sprintf("nocd_peer_dispatch_seconds_bucket{le=%q} ", le)
		if !strings.HasPrefix(lines[first+i], prefix) {
			t.Errorf("dispatch bucket %d = %q, want prefix %q", i, lines[first+i], prefix)
		}
	}
	if !strings.Contains(raw, "nocd_peer_dispatch_seconds_count 4\n") {
		t.Error("dispatch histogram did not count the sweep's 4 dispatches")
	}
}
