package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"nocsim/internal/runner"
	"nocsim/internal/serve"
	"nocsim/internal/sim"
)

// SweepSpec is the wire form of a parameter grid: a base run, axes
// that vary its declarative fields, and optional explicit extra runs.
// The grid expands to Base with every combination of axis values
// applied (the last axis varying fastest), each point becoming one
// single-run job keyed by runner.CacheKey — so repeated sweeps, and
// sweeps overlapping other sweeps, dedup point by point.
type SweepSpec struct {
	// Scale overrides the daemon's base scale for every point.
	Scale runner.ScaleSpec `json:"scale,omitempty"`
	// Base is the run every grid point starts from.
	Base runner.RunSpec `json:"base,omitempty"`
	// Axes are the varied dimensions, in nesting order.
	Axes []Axis `json:"axes,omitempty"`
	// Runs are explicit extra points, appended after the grid.
	Runs []runner.RunSpec `json:"runs,omitempty"`
}

// Axis names one RunSpec field and the values it sweeps over.
type Axis struct {
	Name   string            `json:"name"`
	Values []json.RawMessage `json:"values"`
}

// Points expands the spec into its run list, erroring on unknown axes,
// empty axes, malformed values, or a grid larger than maxPoints.
func (s SweepSpec) Points(maxPoints int) ([]runner.RunSpec, error) {
	total := 1
	for _, ax := range s.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("fleet: axis with no name")
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("fleet: axis %q has no values", ax.Name)
		}
		total *= len(ax.Values)
		if total > maxPoints {
			return nil, fmt.Errorf("fleet: grid exceeds %d points", maxPoints)
		}
	}
	var points []runner.RunSpec
	if len(s.Axes) > 0 {
		idx := make([]int, len(s.Axes))
		for {
			pt := s.Base
			var parts []string
			for a, ax := range s.Axes {
				v := ax.Values[idx[a]]
				if err := applyAxis(&pt, ax.Name, v); err != nil {
					return nil, err
				}
				parts = append(parts, ax.Name+"="+valueLabel(v))
			}
			base := s.Base.Label
			if base == "" {
				base = "sweep"
			}
			pt.Label = base + "/" + strings.Join(parts, ",")
			points = append(points, pt)
			// Odometer: last axis fastest.
			a := len(idx) - 1
			for ; a >= 0; a-- {
				idx[a]++
				if idx[a] < len(s.Axes[a].Values) {
					break
				}
				idx[a] = 0
			}
			if a < 0 {
				break
			}
		}
	}
	points = append(points, s.Runs...)
	if len(points) == 0 {
		return nil, fmt.Errorf("fleet: sweep declares no points")
	}
	if len(points) > maxPoints {
		return nil, fmt.Errorf("fleet: grid exceeds %d points", maxPoints)
	}
	return points, nil
}

// applyAxis sets one declarative RunSpec field from a JSON value.
// Raw configs cannot be swept: the axes exist so grids stay
// rawconfig-clean, validated through the preset builders like any
// PlanSpec.
func applyAxis(r *runner.RunSpec, name string, v json.RawMessage) error {
	fail := func(err error) error {
		return fmt.Errorf("fleet: axis %q value %s: %v", name, string(v), err)
	}
	switch name {
	case "preset":
		return fail1(json.Unmarshal(v, &r.Preset), fail)
	case "workload":
		return fail1(json.Unmarshal(v, &r.Workload), fail)
	case "router":
		return fail1(json.Unmarshal(v, &r.Router), fail)
	case "mapping":
		return fail1(json.Unmarshal(v, &r.Mapping), fail)
	case "width":
		return fail1(json.Unmarshal(v, &r.Width), fail)
	case "height":
		return fail1(json.Unmarshal(v, &r.Height), fail)
	case "size":
		var n int
		if err := json.Unmarshal(v, &n); err != nil {
			return fail(err)
		}
		r.Width, r.Height = n, n
		return nil
	case "ring_group":
		return fail1(json.Unmarshal(v, &r.RingGroup), fail)
	case "side_buffer":
		return fail1(json.Unmarshal(v, &r.SideBuffer), fail)
	case "cycles":
		return fail1(json.Unmarshal(v, &r.Cycles), fail)
	case "seed":
		return fail1(json.Unmarshal(v, &r.Seed), fail)
	case "mean_hops":
		return fail1(json.Unmarshal(v, &r.MeanHops), fail)
	case "static_rate":
		return fail1(json.Unmarshal(v, &r.StaticRate), fail)
	case "adaptive":
		return fail1(json.Unmarshal(v, &r.Adaptive), fail)
	case "random_arb":
		return fail1(json.Unmarshal(v, &r.RandomArb), fail)
	}
	return fmt.Errorf("fleet: unknown axis %q", name)
}

// fail1 wraps an unmarshal error with its axis context.
func fail1(err error, fail func(error) error) error {
	if err != nil {
		return fail(err)
	}
	return nil
}

// valueLabel renders an axis value for point labels: strings unquoted,
// everything else as its compact JSON.
func valueLabel(v json.RawMessage) string {
	var s string
	if json.Unmarshal(v, &s) == nil {
		return s
	}
	return string(v)
}

// Wire shapes of the sweep NDJSON stream and status endpoint.

// SweepEvent heads the stream: the sweep's id and point count.
type SweepEvent struct {
	Type   string `json:"type"` // "sweep"
	ID     string `json:"id"`
	Points int    `json:"points"`
}

// PointEvent reports one point reaching a terminal state.
type PointEvent struct {
	Type         string       `json:"type"` // "point"
	Index        int          `json:"index"`
	Label        string       `json:"label"`
	Key          string       `json:"key"`
	Job          string       `json:"job,omitempty"`
	State        string       `json:"state"` // "done" | "failed"
	Cached       bool         `json:"cached"`
	CountersHash string       `json:"counters_hash,omitempty"`
	ElapsedMS    float64      `json:"elapsed_ms,omitempty"`
	Error        string       `json:"error,omitempty"`
	Metrics      *sim.Metrics `json:"metrics,omitempty"`
}

// SweepSummary closes the stream.
type SweepSummary struct {
	Type   string `json:"type"` // "sweep_done"
	ID     string `json:"id"`
	Status string `json:"status"` // "done" | "failed"
	Done   int    `json:"done"`
	Cached int    `json:"cached"`
	Failed int    `json:"failed"`
}

// SweepResponse is the GET /v1/sweeps/{id} snapshot.
type SweepResponse struct {
	ID     string       `json:"id"`
	Status string       `json:"status"` // "running" | "done" | "failed"
	Done   int          `json:"done"`
	Cached int          `json:"cached"`
	Failed int          `json:"failed"`
	Points []PointEvent `json:"points"`
}

// sweeps owns the sweep API state: expansion, per-point submission
// against the daemon's own queue (with 429 backpressure retries), and
// the registry behind GET /v1/sweeps/{id}.
type sweeps struct {
	srv *serve.Server
	cfg Config

	mu   sync.Mutex
	seq  int64
	byID map[string]*sweepRec
}

// sweepRec is one sweep's registry entry; points hold the latest known
// state per point, terminal or not.
type sweepRec struct {
	id     string
	status string
	done   int
	cached int
	failed int
	points []PointEvent
}

func newSweeps(s *serve.Server, cfg Config) *sweeps {
	return &sweeps{srv: s, cfg: cfg, byID: make(map[string]*sweepRec)}
}

// handleSubmit expands, validates and executes a sweep, streaming
// point events as NDJSON while the grid runs. Validation is atomic —
// any bad point rejects the whole sweep with 400 before a single job
// is queued — and a client that disconnects mid-stream does not stop
// the sweep: the registry keeps filling for GET /v1/sweeps/{id}.
func (sw *sweeps) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec SweepSpec
	if err := dec.Decode(&spec); err != nil {
		sw.fail(w, http.StatusBadRequest, "decoding sweep: %v", err)
		return
	}
	points, err := spec.Points(sw.cfg.MaxPoints)
	if err != nil {
		sw.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan := runner.PlanSpec{Scale: spec.Scale, Runs: points}
	sc, runs, err := plan.Resolve(sw.srv.BaseScale())
	if err != nil {
		sw.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	sw.mu.Lock()
	sw.seq++
	rec := &sweepRec{
		id:     fmt.Sprintf("sweep-%06d", sw.seq),
		status: "running",
		points: make([]PointEvent, len(runs)),
	}
	for i, rr := range runs {
		rec.points[i] = PointEvent{
			Type: "point", Index: i, Label: rr.Label, Key: rr.Key, State: "pending",
		}
	}
	sw.byID[rec.id] = rec
	sw.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		// Client write errors are ignored: the sweep keeps running and
		// the registry keeps its record.
		w.Write(append(b, '\n'))
		if fl != nil {
			fl.Flush()
		}
	}
	emit(SweepEvent{Type: "sweep", ID: rec.id, Points: len(runs)})

	sw.run(rec, sc, runs, emit)

	sw.mu.Lock()
	rec.status = "done"
	if rec.failed > 0 {
		rec.status = "failed"
	}
	summary := SweepSummary{
		Type: "sweep_done", ID: rec.id, Status: rec.status,
		Done: rec.done, Cached: rec.cached, Failed: rec.failed,
	}
	sw.mu.Unlock()
	emit(summary)
}

// run drives every point to a terminal state: points are submitted as
// fast as the daemon's admission allows (429 retries on a tick, 503
// fails the remainder — the daemon is draining) and polled to
// completion, emitting each point's event as it settles. Identical
// points resolve to the same plan key and dedup onto one job.
func (sw *sweeps) run(rec *sweepRec, sc runner.Scale, runs []runner.ResolvedRun, emit func(any)) {
	n := len(runs)
	jobs := make([]string, n)  // job id per point; "" = unsubmitted
	settled := make([]bool, n) // terminal event emitted
	remaining := n
	draining := false
	for remaining > 0 {
		progressed := false
		for i := 0; i < n; i++ {
			if settled[i] {
				continue
			}
			if jobs[i] == "" {
				if draining {
					sw.settle(rec, i, PointEvent{
						Type: "point", Index: i, Label: runs[i].Label, Key: runs[i].Key,
						State: "failed", Error: "daemon draining",
					}, emit, &remaining, settled)
					continue
				}
				resp, code := sw.srv.Submit(sc, runs[i:i+1])
				switch code {
				case http.StatusAccepted, http.StatusOK:
					jobs[i] = resp.ID
					progressed = true
				case http.StatusTooManyRequests:
					continue // backpressure; retry next tick
				case http.StatusServiceUnavailable:
					draining = true
					sw.settle(rec, i, PointEvent{
						Type: "point", Index: i, Label: runs[i].Label, Key: runs[i].Key,
						State: "failed", Error: "daemon draining",
					}, emit, &remaining, settled)
					continue
				}
			}
			if jobs[i] == "" {
				continue
			}
			jr, ok := sw.srv.JobStatus(jobs[i])
			if !ok {
				sw.settle(rec, i, PointEvent{
					Type: "point", Index: i, Label: runs[i].Label, Key: runs[i].Key,
					Job: jobs[i], State: "failed", Error: "job vanished",
				}, emit, &remaining, settled)
				continue
			}
			switch jr.Status {
			case "done":
				pt := PointEvent{
					Type: "point", Index: i, Label: runs[i].Label, Key: runs[i].Key,
					Job: jobs[i], State: "done",
				}
				if res := resultFor(jr.Results, runs[i].Key); res != nil {
					m := res.Metrics
					pt.Cached = res.Cached
					pt.CountersHash = res.CountersHash
					pt.ElapsedMS = res.ElapsedMS
					pt.Metrics = &m
				} else {
					pt.State = "failed"
					pt.Error = "job result missing point key"
				}
				sw.settle(rec, i, pt, emit, &remaining, settled)
				progressed = true
			case "failed":
				sw.settle(rec, i, PointEvent{
					Type: "point", Index: i, Label: runs[i].Label, Key: runs[i].Key,
					Job: jobs[i], State: "failed", Error: jr.Error,
				}, emit, &remaining, settled)
				progressed = true
			}
		}
		if remaining > 0 && !progressed {
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// resultFor finds a point's run result in a job's results by key (the
// job may cover a deduped multi-point plan in other deployments; today
// every sweep job is single-run).
func resultFor(results []serve.RunResult, key string) *serve.RunResult {
	for i := range results {
		if results[i].Key == key {
			return &results[i]
		}
	}
	return nil
}

// settle records a point's terminal event and emits it.
func (sw *sweeps) settle(rec *sweepRec, i int, pt PointEvent, emit func(any), remaining *int, settled []bool) {
	sw.mu.Lock()
	rec.points[i] = pt
	if pt.State == "failed" {
		rec.failed++
	} else {
		rec.done++
		if pt.Cached {
			rec.cached++
		}
	}
	sw.mu.Unlock()
	settled[i] = true
	*remaining--
	emit(pt)
}

// handleGet answers GET /v1/sweeps/{id} with the sweep's snapshot.
func (sw *sweeps) handleGet(w http.ResponseWriter, r *http.Request) {
	sw.mu.Lock()
	rec := sw.byID[r.PathValue("id")]
	var resp SweepResponse
	if rec != nil {
		resp = rec.snapshotLocked()
	}
	sw.mu.Unlock()
	if rec == nil {
		sw.fail(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// snapshotLocked copies the record; callers hold the registry lock.
func (rec *sweepRec) snapshotLocked() SweepResponse {
	return SweepResponse{
		ID: rec.id, Status: rec.status,
		Done: rec.done, Cached: rec.cached, Failed: rec.failed,
		Points: append([]PointEvent(nil), rec.points...),
	}
}

// fail answers with an ErrorResponse, mirroring the daemon's errors.
func (sw *sweeps) fail(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(serve.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
