package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"nocsim/internal/runner"
	"nocsim/internal/serve"
)

// maxBackoff caps the exponential retry delay after peer failures.
const maxBackoff = 2 * time.Second

// pollInterval is the remote job status polling period.
const pollInterval = 25 * time.Millisecond

// peer is one remote daemon the coordinator dispatches to. All mutable
// state is guarded by the coordinator's mutex.
type peer struct {
	name   string
	client *serve.Client // dispatch and polling
	probe  *serve.Client // short-timeout health probes

	alive    bool
	queue    []*task             // assigned, not yet picked up
	inflight map[*task]time.Time // dispatched, keyed by pickup instant

	dispatched int64 // jobs sent to this peer
	stolen     int64 // tasks this peer's workers took from another peer
	retried    int64 // tasks requeued after this peer failed mid-job
	dead       int64 // times this peer was marked dead
}

// load is the peer's assigned-plus-inflight task count.
func (p *peer) load() int { return len(p.queue) + len(p.inflight) }

// task is one delegated job's uncached remainder moving through the
// fleet. The immutable fields are set at creation; everything mutable
// is guarded by the coordinator's mutex. doneCh closes exactly once,
// when the task turns terminal (done or failed).
type task struct {
	dj   serve.DelegatedJob
	miss []int           // indices into dj.Runs still to execute
	spec runner.PlanSpec // raw-config spec of exactly the missed runs

	attempts  int
	notBefore time.Time // retry backoff gate; zero means eligible
	running   int       // workers currently executing it (dup steals)
	done      bool
	failed    bool
	results   []serve.RunResult // per missed run, in miss order
	errMsg    string
	doneCh    chan struct{}
	preempted bool
	preemptTo *peer
}

// terminal reports done-or-failed; callers hold the coordinator mutex.
func (t *task) terminal() bool { return t.done || t.failed }

// coordinator owns the fleet's dispatch state: per-peer queues and
// in-flight windows, the worker pool (Window workers per peer) and the
// health prober. One mutex guards everything; the condition variable
// wakes idle workers on task arrival, peer death/revival and backoff
// expiry.
type coordinator struct {
	srv *serve.Server
	cfg Config

	dispatch *serve.Histogram // dispatch round-trip latency

	mu       sync.Mutex
	cond     *sync.Cond
	peers    []*peer
	closed   bool
	preempts int64

	wg        sync.WaitGroup
	stopProbe chan struct{}
}

func newCoordinator(s *serve.Server, cfg Config) *coordinator {
	c := &coordinator{
		srv:       s,
		cfg:       cfg,
		dispatch:  serve.NewHistogram("nocd_peer_dispatch_seconds"),
		stopProbe: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	for _, addr := range cfg.Peers {
		addr = strings.TrimSpace(addr)
		c.peers = append(c.peers, &peer{
			name:     addr,
			client:   serve.NewClient(addr),
			probe:    serve.NewClient(addr).WithTimeout(probeTimeout(cfg.ProbeInterval)),
			alive:    true,
			inflight: make(map[*task]time.Time),
		})
	}
	return c
}

// probeTimeout budgets one health probe: at least a second regardless
// of the probe period, so a peer that is alive but answering slowly —
// say, on a host saturated by a local-fallback simulation — is not
// kept dead by an aggressive ProbeInterval.
func probeTimeout(interval time.Duration) time.Duration {
	if interval < time.Second {
		return time.Second
	}
	return interval
}

// start launches the dispatch workers (Window per peer) and the prober.
func (c *coordinator) start() {
	for _, p := range c.peers {
		for w := 0; w < c.cfg.Window; w++ {
			c.wg.Add(1)
			go c.worker(p)
		}
	}
	c.wg.Add(1)
	go c.prober()
}

// close stops the workers and prober and waits for them.
func (c *coordinator) close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.stopProbe)
	c.wg.Wait()
}

// Execute is the daemon's delegation hook: it resolves the job's runs
// against the local cache, then peers' caches, and fans the remainder
// out to the fleet, blocking until every run has a result. It always
// handles the job (handled=true); local execution happens here too,
// via the claim-for-local fallback, so the serve layer never bypasses
// the coordinator's accounting.
func (c *coordinator) Execute(dj serve.DelegatedJob) ([]serve.RunResult, string, bool) {
	results := make([]serve.RunResult, len(dj.Runs))
	var miss []int
	for i, r := range dj.Runs {
		start := time.Now()
		e, err := c.srv.Cache().Get(r.Key)
		dj.Span("cache_lookup", r.Label, start, time.Since(start))
		if err != nil {
			c.logf("job %s: %v (consulting peers)", dj.ID, err)
		}
		if e == nil {
			pl := time.Now()
			e = c.Lookup(r.Key)
			dj.Span("peer_lookup", r.Label, pl, time.Since(pl))
		}
		if e == nil {
			miss = append(miss, i)
			continue
		}
		dj.CountRun("cached")
		results[i] = serve.RunResult{
			Label: r.Label, Key: r.Key, Cached: true,
			CountersHash: e.Manifest.CountersHash,
			Metrics:      e.Metrics,
		}
		dj.EmitRunDone(r.Label, r.Key, true, e.Manifest.CountersHash)
	}
	if len(miss) == 0 {
		return results, "", true
	}

	t, err := c.newTask(dj, miss)
	if err != nil {
		return nil, err.Error(), true
	}
	c.assign(t)

	for {
		select {
		case <-t.doneCh:
			c.mu.Lock()
			failed, errMsg, res := t.failed, t.errMsg, t.results
			c.mu.Unlock()
			if failed {
				return nil, errMsg, true
			}
			for k, i := range miss {
				results[i] = res[k]
			}
			return results, "", true
		case <-time.After(50 * time.Millisecond):
			if c.claimForLocal(t) {
				res, errMsg := c.runLocal(t)
				c.completeLocal(t, res, errMsg)
			}
		}
	}
}

// Lookup consults peers' caches for key (HEAD probe, then GET), and
// replicates the first verified hit into the local cache — exactly the
// crash-safe temp+rename write and counters-hash verification a
// locally computed entry gets. A peer that errors is simply skipped;
// the prober owns liveness, not the cache path.
func (c *coordinator) Lookup(key string) *serve.Entry {
	c.mu.Lock()
	peers := make([]*peer, 0, len(c.peers))
	for _, p := range c.peers {
		if p.alive {
			peers = append(peers, p)
		}
	}
	c.mu.Unlock()
	for _, p := range peers {
		ok, err := p.client.CacheContains(key)
		if err != nil || !ok {
			continue
		}
		e, err := p.client.CacheEntry(key)
		if err != nil {
			continue
		}
		if err := e.Verify(key); err != nil {
			c.logf("peer %s served a corrupt cache entry: %v", p.name, err)
			continue
		}
		if err := c.srv.Cache().Put(e); err != nil {
			c.logf("replicating %s from %s: %v", short(key), p.name, err)
		}
		return e
	}
	return nil
}

// newTask builds the fleet task covering the job's missed runs: the
// shipped spec carries each run as label, cycles and raw config, the
// exact shape runner.Scale.Remote ships, so the receiving daemon
// re-derives the same cache keys.
func (c *coordinator) newTask(dj serve.DelegatedJob, miss []int) (*task, error) {
	spec := runner.PlanSpec{
		Scale: runner.ScaleSpec{Epoch: dj.Scale.Epoch, Seed: dj.Scale.Seed},
	}
	for _, i := range miss {
		r := dj.Runs[i]
		raw, err := json.Marshal(&r.Config)
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding config of run %q: %v", r.Label, err)
		}
		spec.Runs = append(spec.Runs, runner.RunSpec{
			Label: r.Label, Cycles: r.Cycles, Config: raw,
		})
	}
	return &task{dj: dj, miss: miss, spec: spec, doneCh: make(chan struct{})}, nil
}

// assign queues the task on the least-loaded alive peer — or, with
// every peer dead, on the least-loaded peer regardless, where it waits
// for a revival or the submitting goroutine's claim-for-local.
func (c *coordinator) assign(t *task) {
	c.mu.Lock()
	var best *peer
	for _, p := range c.peers {
		if best == nil || (p.alive && !best.alive) ||
			(p.alive == best.alive && p.load() < best.load()) {
			best = p
		}
	}
	best.queue = append(best.queue, t)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// claimForLocal atomically claims the task for local execution. The
// claim succeeds only when no peer is alive, no worker is running the
// task and it is not already terminal — graceful degradation, never a
// race with a dispatch.
func (c *coordinator) claimForLocal(t *task) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.terminal() || t.running > 0 {
		return false
	}
	for _, p := range c.peers {
		if p.alive {
			return false
		}
	}
	for _, p := range c.peers {
		p.queue = removeTask(p.queue, t)
	}
	t.running++
	return true
}

// removeTask drops t from a queue, preserving order.
func removeTask(q []*task, t *task) []*task {
	for i, x := range q {
		if x == t {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// worker is one dispatch slot on one peer: it claims tasks — own queue
// first, then stealing from the longest other queue, then duplicating
// a long-inflight task from a slower peer — and runs each against the
// peer to completion.
func (c *coordinator) worker(p *peer) {
	defer c.wg.Done()
	for {
		t := c.claim(p)
		if t == nil {
			return
		}
		c.runOn(p, t)
	}
}

// claim blocks until the worker's peer is alive and a task is
// available, in preference order: the peer's own queue, a steal from
// the longest other queue, a duplicate steal of the oldest inflight
// task elsewhere that has exceeded StealAfter. Returns nil when the
// coordinator closes.
func (c *coordinator) claim(p *peer) *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil
		}
		if p.alive {
			if t := c.takeEligible(p); t != nil {
				p.inflight[t] = time.Now()
				t.running++
				return t
			}
			if t := c.stealQueued(p); t != nil {
				p.stolen++
				p.inflight[t] = time.Now()
				t.running++
				return t
			}
			if t := c.stealInflight(p); t != nil {
				p.stolen++
				p.inflight[t] = time.Now()
				t.running++
				return t
			}
		}
		c.cond.Wait()
	}
}

// takeEligible pops the first backoff-eligible task off p's own queue.
func (c *coordinator) takeEligible(p *peer) *task {
	now := time.Now()
	for _, t := range p.queue {
		if t.notBefore.After(now) {
			continue
		}
		p.queue = removeTask(p.queue, t)
		return t
	}
	return nil
}

// stealQueued takes a backoff-eligible task from the longest other
// queue: a peer that drains its own work pulls queued work from its
// slowest sibling.
func (c *coordinator) stealQueued(p *peer) *task {
	now := time.Now()
	var victim *peer
	for _, o := range c.peers {
		if o == p || len(o.queue) == 0 {
			continue
		}
		if victim == nil || len(o.queue) > len(victim.queue) {
			victim = o
		}
	}
	if victim == nil {
		return nil
	}
	for _, t := range victim.queue {
		if t.notBefore.After(now) {
			continue
		}
		victim.queue = removeTask(victim.queue, t)
		return t
	}
	return nil
}

// stealInflight duplicates the oldest task that has been in flight on
// another peer longer than StealAfter. The duplicate dispatch is safe
// by construction: both executions resolve to the same cache keys, the
// first completion wins, and the second lands as a cache hit.
func (c *coordinator) stealInflight(p *peer) *task {
	if c.cfg.StealAfter <= 0 {
		return nil
	}
	cutoff := time.Now().Add(-c.cfg.StealAfter)
	var oldest *task
	var oldestAt time.Time
	for _, o := range c.peers {
		if o == p {
			continue
		}
		for t, at := range o.inflight {
			if at.After(cutoff) || t.terminal() {
				continue
			}
			if _, dup := p.inflight[t]; dup {
				continue
			}
			if oldest == nil || at.Before(oldestAt) {
				oldest, oldestAt = t, at
			}
		}
	}
	return oldest
}

// runOn dispatches the task to p and polls the remote job to a
// terminal state, recording the dispatch latency and trace spans and
// replicating fresh results into the local cache.
func (c *coordinator) runOn(p *peer, t *task) {
	start := time.Now()
	sub, err := p.client.SubmitDispatch(t.spec)
	if err != nil {
		c.peerFailed(p, t, err)
		return
	}
	c.dispatch.Observe(time.Since(start).Seconds())
	t.dj.Span("dispatch", "", start, time.Since(start))
	c.mu.Lock()
	p.dispatched++
	c.mu.Unlock()

	for {
		c.mu.Lock()
		settled := t.terminal()
		c.mu.Unlock()
		if settled {
			c.releaseFrom(p, t)
			return
		}
		jr, err := p.client.Job(sub.ID)
		if err != nil {
			c.peerFailed(p, t, err)
			return
		}
		switch jr.Status {
		case "done":
			t.dj.Span("peer_run", "", start, time.Since(start))
			if len(jr.Results) != len(t.miss) {
				c.failTask(p, t, fmt.Sprintf("fleet: peer %s returned %d results for %d runs",
					p.name, len(jr.Results), len(t.miss)))
				return
			}
			c.replicate(t, jr.Results)
			c.completeRemote(p, t, jr.Results)
			return
		case "failed":
			c.failTask(p, t, fmt.Sprintf("fleet: peer %s: %s", p.name, jr.Error))
			return
		}
		time.Sleep(pollInterval)
	}
}

// replicate copies each fresh result the peer computed into the local
// cache, re-verified, so subsequent sweeps hit locally. Failures
// degrade to log lines — the results themselves are already in hand.
func (c *coordinator) replicate(t *task, results []serve.RunResult) {
	start := time.Now()
	for _, r := range results {
		if c.srv.Cache().Contains(r.Key) {
			continue
		}
		if e := c.Lookup(r.Key); e == nil {
			c.logf("result %s of run %q not replicable (no peer serves it)", short(r.Key), r.Label)
		}
	}
	t.dj.Span("replicate", "", start, time.Since(start))
}

// completeRemote records a successful remote execution; the first
// completion of a task wins (duplicate steals make seconds possible).
func (c *coordinator) completeRemote(p *peer, t *task, results []serve.RunResult) {
	c.mu.Lock()
	delete(p.inflight, t)
	t.running--
	first := !t.terminal()
	if first {
		t.done = true
		t.results = results
	}
	c.mu.Unlock()
	if first {
		for _, r := range results {
			outcome := "fresh"
			if r.Cached {
				outcome = "cached"
			}
			t.dj.CountRun(outcome)
			t.dj.EmitRunDone(r.Label, r.Key, r.Cached, r.CountersHash)
		}
		close(t.doneCh)
	}
}

// releaseFrom drops a duplicate execution whose task was settled by
// another worker while this one was polling.
func (c *coordinator) releaseFrom(p *peer, t *task) {
	c.mu.Lock()
	delete(p.inflight, t)
	t.running--
	c.cond.Broadcast()
	c.mu.Unlock()
}

// completeLocal records a local-fallback execution's outcome.
func (c *coordinator) completeLocal(t *task, results []serve.RunResult, errMsg string) {
	c.mu.Lock()
	t.running--
	first := !t.terminal()
	if first {
		if errMsg != "" {
			t.failed = true
			t.errMsg = errMsg
		} else {
			t.done = true
			t.results = results
		}
	}
	c.mu.Unlock()
	if first {
		if errMsg == "" {
			for _, r := range results {
				t.dj.CountRun("fresh")
				t.dj.EmitRunDone(r.Label, r.Key, r.Cached, r.CountersHash)
			}
		}
		close(t.doneCh)
	}
}

// failTask records a terminal job failure reported by a peer. This is
// the job's own verdict (bad spec, timeout), not a peer-death signal,
// so the task is not retried.
func (c *coordinator) failTask(p *peer, t *task, msg string) {
	c.mu.Lock()
	delete(p.inflight, t)
	t.running--
	first := !t.terminal()
	if first {
		t.failed = true
		t.errMsg = msg
	}
	c.mu.Unlock()
	if first {
		close(t.doneCh)
	}
}

// peerFailed handles a transport failure against p while running t:
// the peer is marked dead (the prober revives it), and the task — a
// job lost with a peer is requeued, never dropped — goes back to the
// best remaining peer with capped exponential backoff. An admission
// rejection (429/503) is backpressure, not death: the task is requeued
// without marking the peer dead.
func (c *coordinator) peerFailed(p *peer, t *task, err error) {
	transient := isAdmission(err)
	c.mu.Lock()
	delete(p.inflight, t)
	t.running--
	if !transient && p.alive {
		p.alive = false
		p.dead++
	}
	if !t.terminal() {
		t.attempts++
		p.retried++
		backoff := c.cfg.Backoff << (t.attempts - 1)
		if backoff > maxBackoff || backoff <= 0 {
			backoff = maxBackoff
		}
		t.notBefore = time.Now().Add(backoff)
		var best *peer
		for _, o := range c.peers {
			if !o.alive {
				continue
			}
			if best == nil || o.load() < best.load() {
				best = o
			}
		}
		if best == nil {
			best = p
		}
		best.queue = append(best.queue, t)
		time.AfterFunc(backoff+time.Millisecond, c.cond.Broadcast)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if transient {
		c.logf("peer %s rejected dispatch (%v); will retry", p.name, err)
	} else {
		c.logf("peer %s marked dead: %v", p.name, err)
	}
}

// isAdmission reports whether a dispatch error is the peer's admission
// control (queue full, draining) rather than a dead peer.
func isAdmission(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "HTTP 429") || strings.Contains(msg, "HTTP 503")
}

// prober periodically re-probes dead peers and revives responders; its
// tick also wakes workers so StealAfter scans run even when no other
// event fires.
func (c *coordinator) prober() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		var deadPeers []*peer
		for _, p := range c.peers {
			if !p.alive {
				deadPeers = append(deadPeers, p)
			}
		}
		c.mu.Unlock()
		for _, p := range deadPeers {
			if _, err := p.probe.Health(); err != nil {
				continue
			}
			c.mu.Lock()
			p.alive = true
			c.mu.Unlock()
			c.logf("peer %s revived", p.name)
		}
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// preemptReady decides (and records, once per task) whether a locally
// running task should checkpoint and hand its remainder to a peer: a
// peer has come back alive and sits idle while the coordinator grinds
// locally. Called from the runner's cancel polling.
func (c *coordinator) preemptReady(t *task) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.preempted {
		return true
	}
	for _, p := range c.peers {
		if p.alive && p.load() == 0 {
			t.preempted = true
			t.preemptTo = p
			c.preempts++
			return true
		}
	}
	return false
}

// peerMetrics are the per-peer counter names, in render order.
var peerMetrics = []string{"dispatched", "stolen", "retried", "dead"}

// WriteMetrics renders the fleet section of /metrics: the live-peer
// gauge, per-peer counters in configuration order, the preemption
// counter and the dispatch-latency histogram — fixed order, pinned by
// the format-stability test.
func (c *coordinator) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	live := 0
	vals := make(map[string][]int64, len(peerMetrics))
	names := make([]string, len(c.peers))
	for i, p := range c.peers {
		if p.alive {
			live++
		}
		names[i] = p.name
		vals["dispatched"] = append(vals["dispatched"], p.dispatched)
		vals["stolen"] = append(vals["stolen"], p.stolen)
		vals["retried"] = append(vals["retried"], p.retried)
		vals["dead"] = append(vals["dead"], p.dead)
	}
	preempts := c.preempts
	c.mu.Unlock()

	fmt.Fprintf(w, "nocd_peers_live %d\n", live)
	for _, m := range peerMetrics {
		for i, name := range names {
			fmt.Fprintf(w, "nocd_peer_%s_total{peer=%q} %d\n", m, name, vals[m][i])
		}
	}
	fmt.Fprintf(w, "nocd_fleet_preempted_total %d\n", preempts)
	c.dispatch.Write(w)
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	fmt.Fprintf(c.cfg.Log, "fleet: "+format+"\n", args...)
}
