package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"nocsim/internal/obs"
	"nocsim/internal/runner"
	"nocsim/internal/serve"
	"nocsim/internal/sim"
)

// Local fallback with preemption. When every peer is dead, the
// coordinator claims a task and simulates it in-process — the same
// execution path a standalone daemon takes, producing the same cache
// entries. While it grinds, the runner polls preemptReady between
// cancel windows: the moment a revived peer sits idle, the local run
// checkpoints (the PR 8 final-state blob, captured mid-run), pushes
// the blob to the peer, and re-dispatches the full run there. The peer
// warm-starts from the pushed checkpoint — restores are byte-exact, so
// the counters hashes are pinned equal to an unpreempted run.

// runLocal executes the task's missed runs in-process, preemptably.
// Panics out of the execution stack propagate to the serve worker's
// recover, failing the job like any local run.
func (c *coordinator) runLocal(t *task) ([]serve.RunResult, string) {
	dj := t.dj
	sc := dj.Scale
	sc.Remote = nil
	sc.ObsDir = ""
	sc.Obs = obs.Options{}
	snaps := c.srv.Snapshots()
	sc.Snapshots = snaps
	every := sc.Epoch
	if every <= 0 {
		every = 1000
	}
	c.logf("job %s: no live peers; executing %d runs locally", dj.ID, len(t.miss))

	// Per-run state filled by each run's hooks on its worker goroutine
	// and read only after Execute joins the pool.
	n := len(t.miss)
	starts := make([]time.Time, n)
	origins := make([]string, n)
	originCycles := make([]int64, n)
	blobs := make([][]byte, n)
	blobCycles := make([]int64, n)

	plan := runner.NewPlan(sc)
	for k, i := range t.miss {
		k := k
		r := dj.Runs[i]
		cfg := r.Config
		target := r.Cycles
		run := runner.Run{
			Label:  r.Label,
			Config: cfg,
			Cycles: target,
			Start: func(sm *sim.Sim) {
				starts[k] = time.Now()
				origins[k], originCycles[k] = sm.Origin()
			},
			Observe: func(sm *sim.Sim) {
				if sm.Cycle() < target {
					// Preempted mid-run: capture the exact state for
					// the hand-off; the blob never reaches the cache.
					blobs[k] = sm.Snapshot()
					blobCycles[k] = sm.Cycle()
					return
				}
				if snaps != nil {
					if err := runner.Checkpoint(snaps, cfg, sm); err != nil {
						c.logf("job %s: checkpointing %q: %v", dj.ID, r.Label, err)
					}
				}
			},
			CancelEvery: every,
		}
		if cfg.Warmup == 0 {
			// A warm-started run may not stop before its warmup cycle
			// (the resume path requires checkpoint cycle >= warmup), so
			// only cold runs are preemptable.
			run.Cancel = func() bool { return c.preemptReady(t) }
		}
		plan.AddRun(run)
	}
	runStart := time.Now()
	metrics := plan.Execute()
	dj.Span("run", "", runStart, time.Since(runStart))
	stats := plan.Stats()

	results := make([]serve.RunResult, n)
	var preempted []int // indices into the miss-order arrays
	for k, i := range t.miss {
		r := dj.Runs[i]
		if metrics[k].Cycles < r.Cycles {
			preempted = append(preempted, k)
			continue
		}
		dj.Span("simulate", r.Label, starts[k], stats[k].Elapsed)
		res, err := c.finishRun(r, metrics[k], stats[k].Elapsed, origins[k], originCycles[k])
		if err != nil {
			return nil, err.Error()
		}
		results[k] = res
	}
	if len(preempted) > 0 {
		if errMsg := c.handoff(t, preempted, blobs, blobCycles, results); errMsg != "" {
			return nil, errMsg
		}
	}
	return results, ""
}

// finishRun hashes, manifests and caches one completed local run —
// the exact write path serve's own executor uses, so a fleet-local
// result is indistinguishable from a standalone daemon's.
func (c *coordinator) finishRun(r runner.ResolvedRun, m sim.Metrics, elapsed time.Duration, origin string, originCycle int64) (serve.RunResult, error) {
	var retired int64
	for _, rt := range m.Retired {
		retired += rt
	}
	hash := obs.HashCounters(m.Net, retired, m.Misses)
	elapsedMS := float64(elapsed.Microseconds()) / 1000
	rawCfg, err := json.Marshal(&r.Config)
	if err != nil {
		return serve.RunResult{}, fmt.Errorf("fleet: encoding config of run %q: %v", r.Label, err)
	}
	man := obs.Manifest{
		Label:        r.Label,
		Seed:         r.Config.Seed,
		Nodes:        m.Nodes,
		Cycles:       m.Cycles,
		ElapsedMS:    elapsedMS,
		CountersHash: hash,
		WarmSource:   origin,
		WarmCycle:    originCycle,
		Config:       rawCfg,
	}
	if man.WarmSource == "" {
		man.WarmSource = "cold"
	}
	man.FillEnv()
	if err := c.srv.Cache().Put(&serve.Entry{Key: r.Key, Manifest: man, Metrics: m}); err != nil {
		c.logf("caching %q: %v (result served uncached)", r.Label, err)
	}
	return serve.RunResult{
		Label: r.Label, Key: r.Key, Cached: false,
		CountersHash: hash, ElapsedMS: elapsedMS, Metrics: m,
	}, nil
}

// handoff ships the preempted runs' checkpoints to the idle peer that
// triggered the preemption and re-dispatches them there; the peer's
// runner finds the pushed blob in its store and simulates only the
// remainder. A hand-off that fails (the peer died again) falls back to
// finishing locally, resuming from the same checkpoint when a local
// store is configured.
func (c *coordinator) handoff(t *task, preempted []int, blobs [][]byte, blobCycles []int64, results []serve.RunResult) string {
	p := t.preemptTo
	dj := t.dj
	snaps := c.srv.Snapshots()
	spec := runner.PlanSpec{
		Scale: runner.ScaleSpec{Epoch: dj.Scale.Epoch, Seed: dj.Scale.Seed},
	}
	for _, k := range preempted {
		r := dj.Runs[t.miss[k]]
		digest, err := runner.CacheKey(r.Config, 0)
		if err != nil {
			return fmt.Sprintf("fleet: keying checkpoint of %q: %v", r.Label, err)
		}
		stateKey, err := runner.CacheKey(r.Config, blobCycles[k])
		if err != nil {
			return fmt.Sprintf("fleet: keying checkpoint of %q: %v", r.Label, err)
		}
		if snaps != nil {
			if err := snaps.Put(digest, blobCycles[k], stateKey, blobs[k]); err != nil {
				c.logf("filing checkpoint of %q: %v", r.Label, err)
			}
		}
		if err := p.client.PushSnapshot(digest, blobCycles[k], stateKey, blobs[k]); err != nil {
			// Benign: the peer cold-starts and recomputes the prefix,
			// with byte-identical results either way.
			c.logf("pushing checkpoint of %q to %s: %v (peer will recompute)", r.Label, p.name, err)
		}
		raw, err := json.Marshal(&r.Config)
		if err != nil {
			return fmt.Sprintf("fleet: encoding config of run %q: %v", r.Label, err)
		}
		spec.Runs = append(spec.Runs, runner.RunSpec{Label: r.Label, Cycles: r.Cycles, Config: raw})
	}
	c.logf("job %s: preempting %d runs to idle peer %s", dj.ID, len(preempted), p.name)

	start := time.Now()
	sub, err := p.client.SubmitDispatch(spec)
	if err == nil {
		c.dispatch.Observe(time.Since(start).Seconds())
		dj.Span("dispatch", "", start, time.Since(start))
		c.mu.Lock()
		p.dispatched++
		c.mu.Unlock()
		for {
			jr, jerr := p.client.Job(sub.ID)
			if jerr != nil {
				err = jerr
				break
			}
			if jr.Status == "done" {
				if len(jr.Results) != len(preempted) {
					return fmt.Sprintf("fleet: peer %s returned %d results for %d preempted runs",
						p.name, len(jr.Results), len(preempted))
				}
				dj.Span("peer_run", "", start, time.Since(start))
				c.replicate(t, jr.Results)
				for j, k := range preempted {
					results[k] = jr.Results[j]
				}
				return ""
			}
			if jr.Status == "failed" {
				return fmt.Sprintf("fleet: peer %s: %s", p.name, jr.Error)
			}
			time.Sleep(pollInterval)
		}
	}
	c.logf("hand-off to %s failed: %v (finishing locally)", p.name, err)
	c.markDead(p)
	return c.finishLocally(t, preempted, results)
}

// markDead records a peer failure observed outside the worker path.
func (c *coordinator) markDead(p *peer) {
	c.mu.Lock()
	if p.alive {
		p.alive = false
		p.dead++
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finishLocally completes preempted runs in-process without further
// preemption, resuming from the filed checkpoint when a local store is
// configured and recomputing from scratch otherwise.
func (c *coordinator) finishLocally(t *task, preempted []int, results []serve.RunResult) string {
	dj := t.dj
	sc := dj.Scale
	sc.Remote = nil
	sc.ObsDir = ""
	sc.Obs = obs.Options{}
	snaps := c.srv.Snapshots()
	sc.Snapshots = snaps

	n := len(preempted)
	starts := make([]time.Time, n)
	origins := make([]string, n)
	originCycles := make([]int64, n)
	plan := runner.NewPlan(sc)
	for j, k := range preempted {
		j := j
		r := dj.Runs[t.miss[k]]
		cfg := r.Config
		run := runner.Run{
			Label:  r.Label,
			Config: cfg,
			Cycles: r.Cycles,
			Start: func(sm *sim.Sim) {
				starts[j] = time.Now()
				origins[j], originCycles[j] = sm.Origin()
			},
		}
		if snaps != nil {
			run.Observe = func(sm *sim.Sim) {
				if err := runner.Checkpoint(snaps, cfg, sm); err != nil {
					c.logf("job %s: checkpointing %q: %v", dj.ID, r.Label, err)
				}
			}
		}
		plan.AddRun(run)
	}
	metrics := plan.Execute()
	stats := plan.Stats()
	for j, k := range preempted {
		r := dj.Runs[t.miss[k]]
		dj.Span("simulate", r.Label, starts[j], stats[j].Elapsed)
		res, err := c.finishRun(r, metrics[j], stats[j].Elapsed, origins[j], originCycles[j])
		if err != nil {
			return err.Error()
		}
		results[k] = res
	}
	return ""
}

// short abbreviates a content address for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
