package analysis

// StaleAllow keeps the waiver inventory honest: a //nocvet:allow
// directive that suppressed zero findings in this run is itself a
// finding. Without it, waivers rot — the code they excused gets
// refactored away and the directive silently blesses whatever lands on
// that line next.
var StaleAllow = &Analyzer{
	Name: "staleallow",
	Doc:  "a //nocvet:allow directive that suppresses zero findings is itself a finding",
	Explain: `Every //nocvet:allow directive names one or more rules it waives on
its own line and the line below. This rule runs last and re-examines
the ledger: a named rule that ran in this invocation but suppressed
nothing means the waiver is stale — the offending code moved or was
fixed — and the directive must be removed before it masks a future
regression on that line. A directive naming a rule that does not exist
at all is reported as well (usually a typo, which would otherwise
silently waive nothing forever).

Rules that were not part of this invocation's selection are not
judged, so a -rules subset run never fabricates staleness.

There is no waiver for staleallow: remove the stale directive (or the
stale rule name from its list) instead.`,
	// Run uses knownRules (filled by init in analysis.go) rather than
	// calling Rules() here, which would be an initialization cycle.
	Run: func(pass *Pass) {
		known := knownRules
		for _, f := range pass.Files {
			for _, entries := range f.allows {
				for _, e := range entries {
					if e.used || e.rule == "staleallow" {
						continue
					}
					if !known[e.rule] {
						pass.Reportf(f, e.pos,
							"nocvet:allow names unknown rule %q; no finding can ever match it", e.rule)
						continue
					}
					if !pass.ran[e.rule] {
						continue // rule not in this invocation: cannot judge
					}
					pass.Reportf(f, e.pos,
						"nocvet:allow %s suppresses no finding; remove the stale waiver", e.rule)
				}
			}
		}
	},
}
