package analysis

import "strings"

// modulePath is the import-path root of this repository. Rules scope
// themselves on module-relative paths ("internal/sim", "cmd/nocsim")
// so fixtures can impersonate any package by setting Pass.Path.
const modulePath = "nocsim"

// Rel returns the module-relative package path, or "." for the module
// root package.
func (p *Pass) Rel() string {
	if p.Path == modulePath {
		return "."
	}
	return strings.TrimPrefix(p.Path, modulePath+"/")
}

// underSeg reports whether rel is dir itself or nested below it.
func underSeg(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

// pkgPrefix returns the prefix every panic message in the package must
// carry: the package name, with the _test suffix folded into the
// package under test, and main packages named after their directory.
func (p *Pass) pkgPrefix() string {
	name := strings.TrimSuffix(p.PkgName, "_test")
	if name == "main" {
		rel := p.Rel()
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			rel = rel[i+1:]
		}
		if rel != "." && rel != "" {
			name = rel
		}
	}
	return name
}
