package analysis

import "go/ast"

// simPkgPath is the import path of the simulator-config package.
const simPkgPath = modulePath + "/internal/sim"

// RawConfig forbids sim.Config composite literals outside
// internal/runner (the preset builders) and internal/sim itself. Every
// driver must assemble configurations through runner.Baseline /
// runner.Controlled plus With* options, so Table 2 defaults, seeding
// conventions, and scale parameters stay in exactly one place.
var RawConfig = &Analyzer{
	Name: "rawconfig",
	Doc:  "no sim.Config composite literals outside the internal/runner presets",
	Explain: `Table 2 defaults, seeding conventions and scale parameters live in
exactly one place: the runner.Baseline / runner.Controlled preset
builders and their With* options. A raw sim.Config literal anywhere
else forks the defaults — the next time a preset changes, that driver
silently keeps the old physics. The rule flags sim.Config composite
literals outside internal/runner and internal/sim itself.

Waive with //nocvet:allow rawconfig only in code that deliberately
constructs an invalid or minimal config to exercise validation.`,
	Run: func(pass *Pass) {
		rel := pass.Rel()
		if rel == "internal/runner" || rel == "internal/sim" {
			return
		}
		for _, f := range pass.Files {
			simName, ok := importName(f.AST, simPkgPath)
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if isPkgSel(cl.Type, simName, "Config") {
					pass.Reportf(f, cl.Pos(),
						"raw sim.Config literal; assemble configs with runner.Baseline/Controlled and With* options")
				}
				return true
			})
		}
	},
}
