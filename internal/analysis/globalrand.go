package analysis

import "strings"

// GlobalRand forbids importing math/rand (and math/rand/v2) anywhere
// in the module. The global source is seeded per process and shared
// across goroutines, so any use breaks run-to-run and parallelism
// invariance; internal/rng provides seeded, per-component streams.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no math/rand import anywhere; use internal/rng",
	Explain: `math/rand's global source is seeded per process and shared across
goroutines, so any use breaks run-to-run and parallelism invariance —
the property every figure in the paper depends on. internal/rng
provides seeded, per-component streams (one per traffic generator, one
per fabric) that make every draw a pure function of (seed, component,
draw index). The rule flags the import itself, in every file including
tests, because even a "harmless" shuffle in a test fixture hides
ordering bugs.

There is no sanctioned use; waivers should not appear for this rule.`,
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, imp := range f.AST.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(f, imp.Pos(),
						"import of %s; use internal/rng for deterministic seeded streams", path)
				}
			}
		}
	},
}
