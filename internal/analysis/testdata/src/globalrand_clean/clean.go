// Package grclean is the compliant counterpart of the globalrand
// fixture: randomness flows through internal/rng's seeded streams.
package grclean

import "nocsim/internal/rng"

func roll(seed uint64) int {
	r := rng.New(seed)
	return r.Intn(6)
}
