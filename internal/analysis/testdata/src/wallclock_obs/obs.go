// Package wallclockobs pins the exemption boundary of the wallclock
// rule on the observability side: the fixture is analyzed as
// nocsim/internal/obs, which must stay cycle-indexed — collectors that
// read the host clock would make exports differ between machines and
// runs. The sanctioned wall-clock users (the runner's progress
// reporter, manifest elapsed stamping) live in internal/runner; see
// the wallclock_exempt_runner fixture.
package wallclockobs

import "time"

// sample is a stand-in interval record.
type sample struct {
	cycle int64
	at    time.Time
}

func record(cycle int64) sample {
	return sample{
		cycle: cycle,
		at:    time.Now(), // want "time.Now reads the wall clock"
	}
}

func age(s sample) time.Duration {
	return time.Since(s.at) // want "time.Since reads the wall clock"
}

func goodDelta(endCycle, startCycle int64) int64 {
	// Simulated-time arithmetic is the deterministic alternative.
	return endCycle - startCycle
}

// epochRecord is a stand-in congestion-ledger record: the ledger is
// cycle-indexed by contract, so even a "harmless" capture timestamp
// must fire.
type epochRecord struct {
	epoch    int64
	cycle    int64
	captured time.Time
}

func badLedgerRecord(epoch, cycle int64) epochRecord {
	return epochRecord{
		epoch:    epoch,
		cycle:    cycle,
		captured: time.Now(), // want "time.Now reads the wall clock"
	}
}

func goodLedgerRecord(epoch, epochLen int64) epochRecord {
	// The epoch boundary cycle is derived from simulated time alone.
	return epochRecord{epoch: epoch, cycle: epoch * epochLen}
}
