// Package wallclockfix exercises the wallclock rule: the fixture is
// analyzed as if it were nocsim/internal/sim, where clock reads are
// banned.
package wallclockfix

import "time"

func bad() time.Duration {
	t0 := time.Now()    // want "time.Now reads the wall clock"
	d := time.Since(t0) // want "time.Since reads the wall clock"
	_ = time.Until(t0)  // want "time.Until reads the wall clock"
	return d
}

func good() time.Duration {
	// Durations and arithmetic on simulated time are fine; only the
	// host-clock reads are banned.
	return time.Duration(5) * time.Millisecond
}

func waived() {
	//nocvet:allow wallclock fixture: demonstrates the justified-waiver path
	_ = time.Now()
}
