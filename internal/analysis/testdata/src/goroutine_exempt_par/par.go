// Package grexemptpar spawns persistent worker goroutines but is
// analyzed as nocsim/internal/par, the sanctioned intra-simulation
// pool package, so the goroutine rule stays silent.
package grexemptpar

func spawn(n int, work func(int)) chan struct{} {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			work(i)
			done <- struct{}{}
		}(i)
	}
	return done
}
