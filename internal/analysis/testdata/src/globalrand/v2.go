package globalrandfix

import (
	randv2 "math/rand/v2" // want "import of math/rand/v2; use internal/rng"
)

func badV2() int { return randv2.IntN(4) }
