// Package globalrandfix exercises the globalrand rule: math/rand is
// banned everywhere in the module.
package globalrandfix

import (
	"math/rand" // want "import of math/rand; use internal/rng"
)

func bad() int { return rand.Intn(4) }
