// Package leakfix is the failing handleleak fixture: pool handles that
// die on some path — including PR 6's pre-fix pattern, an Alloc result
// dropped on an early return.
package leakfix

import "nocsim/internal/noc"

type ring struct {
	pool *noc.FlitPool
	q    []noc.Handle
	out  []noc.Handle
}

// drop leaks on the busy path: the slot is never freed or committed.
func (r *ring) drop(fl *noc.Flit, busy bool) {
	h := r.pool.Alloc(0, fl) // want "pool handle h may leak"
	if busy {
		return
	}
	r.out[0] = h
}

func (r *ring) discard(fl *noc.Flit) {
	r.pool.Alloc(0, fl) // want "result of Alloc is discarded"
}

func (r *ring) blank(fl *noc.Flit) {
	_ = r.pool.Alloc(0, fl) // want "result of Alloc is discarded"
}

// stall dequeues a handle but only borrows it through a read-only
// accessor; every path reaches the exit with the slot still live.
func (r *ring) stall(i int) bool {
	h := r.q[i] // want "pool handle h may leak"
	if h == 0 {
		return false
	}
	return r.pool.Hot(h).CongBit
}
