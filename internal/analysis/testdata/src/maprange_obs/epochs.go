// Package maprangeobs pins the maprange rule on the congestion
// ledger's home package: analyzed as nocsim/internal/obs, where epoch
// records are exported byte-for-byte and a map iteration anywhere on
// the row-building path would scramble export order between runs.
package maprangeobs

import "sort"

// nodeRow is a stand-in per-node ledger row.
type nodeRow struct {
	node int
	rate float64
}

// badRows builds ledger rows straight off the controller's per-node
// throttle map — the exact bug the rule exists to catch.
func badRows(rates map[int]float64) []nodeRow {
	var out []nodeRow
	for n, r := range rates { // want `range over map map\[int\]float64`
		out = append(out, nodeRow{node: n, rate: r})
	}
	return out
}

// perApp mirrors the controller's MPKI-keyed accumulator type.
type perApp map[string]float64

func badSum(m perApp) float64 {
	var total float64
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// goodRows is the sanctioned shape: collect keys under a justified
// waiver, sort them, then index deterministically.
func goodRows(rates map[int]float64) []nodeRow {
	nodes := make([]int, 0, len(rates))
	//nocvet:allow maprange key collection; nodes are sorted before the rows are built
	for n := range rates {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]nodeRow, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, nodeRow{node: n, rate: rates[n]})
	}
	return out
}

// goodDense is the better shape still: ledger state held densely by
// node index, no map on the export path at all.
func goodDense(rates []float64) []nodeRow {
	out := make([]nodeRow, 0, len(rates))
	for n, r := range rates {
		out = append(out, nodeRow{node: n, rate: r})
	}
	return out
}
