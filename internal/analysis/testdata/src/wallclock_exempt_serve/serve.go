// Package wcexemptserve pins the service side of the wallclock
// exemption boundary: the fixture is analyzed as nocsim/internal/serve,
// where request-latency metrics, job deadlines and stream poll timing
// legitimately read the host clock. The shapes here mirror the
// sanctioned uses, and the rule must stay silent on all of them.
package wcexemptserve

import "time"

// observe mirrors the /metrics middleware timing one request.
func observe(h func()) time.Duration {
	start := time.Now()
	h()
	return time.Since(start)
}

// expired mirrors a job deadline check polled between run windows; a
// tripped deadline discards the job, so the clock never reaches a
// cached or reported result.
func expired(deadline time.Time) bool {
	return time.Now().After(deadline)
}
