package maprangefix

import "testing"

// Test files are exempt from maprange: assertion order does not reach
// rendered output.
func TestMapRangeExemptInTests(t *testing.T) {
	m := map[string]int{"a": 1}
	for k, v := range m {
		if k == "" || v == 0 {
			t.Fatal("impossible")
		}
	}
}
