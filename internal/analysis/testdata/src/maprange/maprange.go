// Package maprangefix exercises the maprange rule: analyzed as
// nocsim/internal/stats, an output-path package where map iteration
// order must never be observable.
package maprangefix

import "sort"

func bad(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want `range over map map\[string\]float64`
		out = append(out, v)
	}
	return out
}

type counts map[int]int

func badNamed(m counts) int {
	n := 0
	for range m { // want "range over map"
		n++
	}
	return n
}

func good(m map[string]float64) []float64 {
	keys := make([]string, 0, len(m))
	//nocvet:allow maprange key collection; keys are sorted before use below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func goodSlice(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
