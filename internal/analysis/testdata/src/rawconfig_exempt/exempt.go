// Package rcexempt holds a sim.Config literal but is analyzed as
// nocsim/internal/runner, where the preset builders live.
package rcexempt

import "nocsim/internal/sim"

func preset() sim.Config {
	return sim.Config{Width: 8, Height: 8}
}
