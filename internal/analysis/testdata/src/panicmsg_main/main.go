// Command probe exercises panicmsg's main-package naming: analyzed as
// nocsim/cmd/probe, so the required prefix is "probe: ".
package main

func main() {
	defer recoverProbe()
	mustPositive(1)
}

func recoverProbe() { recover() }

func mustPositive(n int) {
	if n <= 0 {
		panic("probe: need positive n")
	}
	if n > 1<<20 {
		panic("too big") // want `does not start with "probe: "`
	}
}
