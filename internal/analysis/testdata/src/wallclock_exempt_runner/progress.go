// Package wallclockrunner pins the other side of the wallclock
// exemption boundary: the fixture is analyzed as nocsim/internal/runner,
// the one library package allowed to read the host clock. The shapes
// here mirror the sanctioned uses — the live progress reporter and the
// manifest's elapsed stamp — and the rule must stay silent on all of
// them.
package wallclockrunner

import "time"

// progress mirrors the runner's live reporter: per-run completion
// lines timed on the wall clock, diagnostics only.
type progress struct {
	start time.Time
}

func (p *progress) begin() {
	p.start = time.Now()
}

func (p *progress) elapsed() time.Duration {
	return time.Since(p.start)
}

// stampManifest mirrors the executor timing one run for its manifest's
// elapsed_ms field (excluded from determinism comparisons).
func stampManifest() float64 {
	start := time.Now()
	elapsed := time.Since(start)
	return float64(elapsed.Microseconds()) / 1000
}
