// Package fixt is the passing hotalloc fixture: the hot path does pure
// index arithmetic over pre-reserved planes; every allocation lives in
// construction or the sanctioned Reserve point.
package fixt

import "nocsim/internal/noc"

type Fabric struct {
	in   []noc.Handle
	load []int
}

func NewFabric(n int) *Fabric {
	return &Fabric{in: make([]noc.Handle, n), load: make([]int, n)}
}

func (f *Fabric) Reserve(n int) {
	if n > len(f.in) {
		f.in = append(f.in, make([]noc.Handle, n-len(f.in))...)
		f.load = append(f.load, make([]int, n-len(f.load))...)
	}
}

func (f *Fabric) Step() {
	f.Reserve(len(f.in))
	for i := range f.in {
		if f.in[i] != 0 {
			f.load[i]++
		}
		if f.load[i] < 0 {
			panic("fixt: load counter overflow")
		}
	}
}
