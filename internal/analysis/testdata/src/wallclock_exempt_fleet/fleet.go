// Package wcexemptfleet pins the fleet side of the wallclock exemption
// boundary: the fixture is analyzed as nocsim/internal/fleet, where the
// coordinator's dispatch-latency histogram, retry backoff deadlines and
// dead-peer health-probe timing legitimately read the host clock. The
// shapes here mirror the sanctioned uses, and the rule must stay silent
// on all of them.
package wcexemptfleet

import "time"

// dispatch mirrors timing one remote job submission for the
// nocd_peer_dispatch_seconds histogram.
func dispatch(send func()) time.Duration {
	start := time.Now()
	send()
	return time.Since(start)
}

// eligible mirrors the retry backoff gate: a requeued job only becomes
// dispatchable after its not-before deadline passes. A delayed job is
// re-executed identically, so the clock never reaches a result.
func eligible(notBefore time.Time) bool {
	return !time.Now().Before(notBefore)
}

// stale mirrors the duplicate-steal scan picking in-flight work older
// than the steal threshold.
func stale(started time.Time, after time.Duration) bool {
	return time.Since(started) > after
}
