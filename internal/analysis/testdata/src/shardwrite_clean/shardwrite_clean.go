// Package fab is the passing shardwrite fixture: every worker write
// goes through the shard span, per-worker padded scratch, or a method
// receiver that is shard-owned at every call site.
package fab

import "nocsim/internal/par"

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

type pad struct {
	v int
	_ [56]byte
}

type Grid struct {
	pool *par.Pool
	load []int
	cnt  []counter
	scr  []pad
}

func (g *Grid) Step(n int) {
	g.pool.Run(n, func(lo, hi, w int) {
		g.phase(lo, hi, w)
	})
}

func (g *Grid) phase(lo, hi, w int) {
	sc := &g.scr[w]
	for i := lo; i < hi; i++ {
		g.load[i] += i
		g.cnt[i].bump() // the receiver is shard-owned at every call site
		sc.v++
	}
}
