// Package grexemptfleet spawns per-peer dispatch workers and a health
// prober and joins them with a WaitGroup, but is analyzed as
// nocsim/internal/fleet, the coordinator layer sanctioned alongside
// internal/serve: its goroutines touch only HTTP clients and the
// coordinator's own mutex-guarded queues, never simulator state, so
// the goroutine rule stays silent on every shape here.
package grexemptfleet

import "sync"

// dispatchers mirrors the coordinator's per-peer worker windows: a
// bounded set of goroutines draining claimed jobs, joined on close.
func dispatchers(claims chan func(), window int) {
	var wg sync.WaitGroup
	for i := 0; i < window; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range claims {
				c()
			}
		}()
	}
	wg.Wait()
}

// probe mirrors the dead-peer health prober running off the dispatch
// workers until shutdown.
func probe(tick func(), stop <-chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tick()
			}
		}
	}()
}
