// Package grexempt spawns goroutines but is analyzed as
// nocsim/internal/runner, the one package allowed to do so.
package grexempt

import "sync"

func pool(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
