// Package mrexempt holds the same map range as the maprange fixture
// but is analyzed as nocsim/internal/cache, which is outside the
// output-path package set.
package mrexempt

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
