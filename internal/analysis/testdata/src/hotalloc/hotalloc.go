// Package fixt is the failing hotalloc fixture: a fabric whose Step
// reaches every allocating construct the rule knows about.
package fixt

import "nocsim/internal/noc"

type Fabric struct {
	pool *noc.FlitPool
	in   []noc.Handle
	seen []uint64
	load []int
}

// NewFabric is construction time: allocation is fine here.
func NewFabric(n int) *Fabric {
	return &Fabric{in: make([]noc.Handle, n), seen: make([]uint64, 0, n), load: make([]int, n)}
}

// Reserve is the sanctioned growth point; the reachability walk stops
// at it, so its make is not a finding even though Step calls it.
func (f *Fabric) Reserve(n int) {
	f.in = make([]noc.Handle, n)
}

// Step is a hot root: everything it reaches must stay allocation-free.
func (f *Fabric) Step() {
	f.Reserve(8)
	f.route(3)
	f.audit()
}

func (f *Fabric) route(node int) {
	scratch := make([]int, 8) // want "make allocates in hot function route"
	_ = scratch
	f.seen = append(f.seen, uint64(node)) // want "append in hot function route"
	p := new(noc.Flit)                    // want "new allocates in hot function route"
	_ = p
	cb := func() int { return node } // want "closure literal in hot function route"
	_ = cb
}

func (f *Fabric) audit() {
	ids := []int{1, 2, 3} // want `composite \[\]int literal allocates in hot function audit`
	_ = ids
	fl := &noc.Flit{} // want "&composite literal escapes to the heap in hot function audit"
	_ = fl
	sink(42)    // want "argument boxes into an interface parameter in hot function audit"
	b := any(7) // want "conversion to interface any boxes its operand in hot function audit"
	_ = b
	if len(f.load) == 0 {
		panic("fixt: empty load table " + string(rune('!'))) // formatting on the fatal path is exempt
	}
}

func sink(v any) { _ = v }
