// Command probe exercises the wallclock exemption: analyzed as
// nocsim/cmd/probe, where timing runs is allowed.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
