// Package grexemptserve spawns job-queue worker goroutines and joins
// them with a WaitGroup, but is analyzed as nocsim/internal/serve, the
// service-daemon layer sanctioned alongside the runner's pools, so the
// goroutine rule stays silent on every shape here.
package grexemptserve

import "sync"

// drain mirrors the daemon's queue workers: a bounded set of goroutines
// consuming jobs until the queue closes, joined on shutdown.
func drain(jobs chan func(), workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				j()
			}
		}()
	}
	wg.Wait()
}

// listen mirrors the daemon running its HTTP server off the signal-
// waiting main goroutine.
func listen(serve func() error) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- serve() }()
	return errc
}
