// Package fab is the failing atomicmix fixture: fields published via
// sync/atomic in one place and touched plainly, ungated, in another —
// including PR 6's pre-fix pattern, a plain store to an active-set slot.
package fab

import "sync/atomic"

type Fabric struct {
	atomicAct bool
	active    []int32
	inCount   []int32
}

// NewFabric may touch the fields plainly: construction precedes workers.
func NewFabric(n int) *Fabric {
	f := &Fabric{active: make([]int32, n), inCount: make([]int32, n)}
	f.active[0] = 1
	return f
}

func (f *Fabric) publish(i int) {
	atomic.AddInt32(&f.inCount[i], 1)
	atomic.StoreInt32(&f.active[i], 1)
}

func (f *Fabric) deactivate(i int) {
	f.active[i] = 0 // want "field active is accessed via sync/atomic elsewhere"
}

func (f *Fabric) drain(i int) int32 {
	n := f.inCount[i] // want "field inCount is accessed via sync/atomic elsewhere"
	return n
}
