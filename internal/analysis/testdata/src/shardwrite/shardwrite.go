// Package fab is the failing shardwrite fixture: a barrier-phase
// worker writes through an index loaded from a link table — a value
// that can land in another shard's range.
package fab

import "nocsim/internal/par"

type pad struct {
	v int
	_ [56]byte
}

type Fabric struct {
	pool  *par.Pool
	links []int
	load  []int
	scr   []pad
}

func (f *Fabric) Step(n int) {
	f.pool.Run(n, func(lo, hi, w int) {
		f.phase(lo, hi, w)
	})
}

func (f *Fabric) phase(lo, hi, w int) {
	for i := lo; i < hi; i++ {
		f.load[i]++ // clean: i is derived from the shard span
		nb := f.links[i]
		f.load[nb]++ // want "write to shared f.load bypasses the shard-owned range"
		f.scr[w].v += nb
	}
}
