package panicfix

// Test files carry the same obligation: the _test suffix folds into
// the package under test.
func badInTest() {
	panic("no prefix here") // want `does not start with "panicfix: "`
}

func goodInTest() {
	panic("panicfix: from a test helper")
}
