// Package panicfix exercises the panicmsg rule: every statically
// visible panic message must start with "panicfix: ".
package panicfix

import (
	"errors"
	"fmt"
)

func badLit() {
	panic("missing prefix") // want `does not start with "panicfix: "`
}

func badSprintf(n int) {
	panic(fmt.Sprintf("got %d", n)) // want `does not start with "panicfix: "`
}

func badConcat(name string) {
	panic("unknown app " + name) // want `does not start with "panicfix: "`
}

func badErr() {
	panic(errors.New("boom")) // want `does not start with "panicfix: "`
}

func goodLit() {
	panic("panicfix: bad state")
}

func goodSprintf(n int) {
	panic(fmt.Sprintf("panicfix: got %d", n))
}

func goodConcat(name string) {
	panic("panicfix: unknown app " + name)
}

func goodDynamic(err error) {
	// A propagated error value is not statically checkable.
	panic(err)
}
