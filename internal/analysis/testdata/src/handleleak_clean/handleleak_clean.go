// Package leakfix is the passing handleleak fixture: every produced
// handle reaches Free, a link-plane commit, or a transfer on all paths;
// zero-handle guards discharge the empty-slot arms.
package leakfix

import "nocsim/internal/noc"

type ring struct {
	pool *noc.FlitPool
	in   []noc.Handle
	link []uint64
}

// forward consumes on every path: free, commit, or nothing to do.
func (r *ring) forward(i, w int) {
	h := r.in[i]
	if h == 0 {
		return
	}
	if i&1 == 0 {
		r.pool.Free(w, h)
		return
	}
	r.link[i] = uint64(h) | 1<<32 // folded into the committed link word
}

// eject scopes the handle to the if: the guard discharges the
// zero-handle arm and the body frees the slot.
func (r *ring) eject(fl *noc.Flit, w, i int) {
	if h := r.in[i]; h != 0 {
		r.pool.Get(h, fl)
		r.pool.Free(w, h)
	}
}

// unpack converts a link word back into a handle and transfers it out.
func unpack(w uint64) noc.Handle {
	h := noc.Handle(w)
	return h
}
