// Package fab is the passing atomicmix fixture: every touch of the
// atomically-published fields is atomic, mode-gated on the bool flag,
// a len/cap query, or inside a constructor.
package fab

import "sync/atomic"

type Fabric struct {
	atomicAct bool
	active    []int32
}

func NewFabric(n int) *Fabric {
	f := &Fabric{active: make([]int32, n)}
	f.active[0] = 1
	return f
}

func (f *Fabric) activate(i int) {
	if f.atomicAct {
		atomic.StoreInt32(&f.active[i], 1)
	} else {
		f.active[i] = 1 // sequential arm of the mode split
	}
}

func (f *Fabric) size() int {
	return len(f.active)
}
