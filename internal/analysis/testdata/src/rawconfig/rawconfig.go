// Package rawconfigfix exercises the rawconfig rule: analyzed as
// nocsim/internal/exp, a driver package that must assemble configs
// through the internal/runner presets.
package rawconfigfix

import "nocsim/internal/sim"

func bad() sim.Config {
	return sim.Config{Width: 4, Height: 4} // want "raw sim.Config literal"
}

func badPtr() *sim.Config {
	return &sim.Config{} // want "raw sim.Config literal"
}

func good(cfg sim.Config) *sim.Sim {
	// Receiving an assembled config and running it is fine; only
	// literal construction is the presets' business.
	return sim.New(cfg)
}
