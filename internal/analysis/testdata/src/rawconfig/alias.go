package rawconfigfix

import simulation "nocsim/internal/sim"

func aliased() simulation.Config {
	return simulation.Config{Height: 2} // want "raw sim.Config literal"
}
