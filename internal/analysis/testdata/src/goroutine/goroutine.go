// Package goroutinefix exercises the goroutine rule: analyzed as
// nocsim/internal/exp, where all parallelism must flow through the
// runner's bounded pool.
package goroutinefix

import "sync"

func bad() {
	done := make(chan struct{})
	go func() { close(done) }() // want "go statement outside internal/runner"
	<-done
}

func badWaitGroup() {
	var wg sync.WaitGroup // want "sync.WaitGroup outside internal/runner"
	wg.Wait()
}

func goodMutex() {
	// Other sync primitives are fine; only goroutine fan-out is the
	// runner's business.
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

func waived() {
	done := make(chan struct{}, 1)
	//nocvet:allow goroutine fixture: barrier-joined before return, interleaving unobservable
	go func() { done <- struct{}{} }()
	<-done
}
