package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolAccessors are FlitPool methods that borrow a handle to read its
// planes without taking ownership; passing a handle to them does not
// count as consumption.
var poolAccessors = map[string]bool{"Get": true, "Hot": true, "Cold": true, "HotPlane": true}

// HandleLeak tracks FlitPool handles from where they are produced — an
// Alloc call or a dequeue read out of a []Handle plane — to where
// ownership moves on: a Free, a store into a link plane or other
// memory, a transfer into a call, or a return. A path through the
// function on which a live handle reaches the exit unconsumed is a
// leaked pool slot: the free list never gets it back and the pool
// drains until Alloc panics.
var HandleLeak = &Analyzer{
	Name: "handleleak",
	Doc:  "every FlitPool handle from Alloc/dequeue must reach Free, a link-plane commit, or a transfer on all paths",
	Explain: `FlitPool slots are manually managed: a Handle produced by Alloc or
dequeued from a handle plane must be freed, committed into a link
plane, or handed to another owner on every path through the function.
A dropped handle is a leaked slot — the pool drains until Alloc panics
mid-run, typically long after the leaking branch executed.

The rule is branch-sensitive and intraprocedural. Sources: the result
of (*FlitPool).Alloc (a discarded result is reported immediately),
reads of a Handle out of a slice or array element and conversions to
Handle bound to a variable. (Range values over handle planes are not
sources: ranging is how liveness scans observe the planes without
taking ownership.)
Consumption: passing the handle to any call except the pool's
read-only accessors (Get/Hot/Cold/HotPlane), storing it (or a value
derived from it, e.g. a packed link word) into memory, returning it,
capture by a closure, or a send. Guards of the form h != 0 / h == 0
refine the walk: the zero handle is "no flit" and carries no
obligation. Paths that end in panic are exempt.

Waive with //nocvet:allow handleleak only at true ownership
boundaries, e.g. a peek that intentionally leaves the handle owned by
the buffer it was read from.`,
	Run: func(pass *Pass) {
		if pass.Info == nil || !underSeg(pass.Rel(), "internal/noc") {
			return
		}
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					checkHandleFlow(pass, f, fd.Body)
				}
			}
		}
	},
}

func isHandleType(t types.Type) bool { return isNamed(t, nocPkgPath, "Handle") }

// isPoolCall reports whether call invokes the named method on
// noc.FlitPool.
func isPoolCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && isNamed(recv.Type(), nocPkgPath, "FlitPool")
}

// checkHandleFlow finds every handle source in body and verifies each
// one is consumed on all paths through its statement scope.
func checkHandleFlow(pass *Pass, file *File, body *ast.BlockStmt) {
	w := &leakWalk{info: pass.Info}
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isPoolCall(pass.Info, n, "Alloc") {
				return true
			}
			parent := parentNode(stack)
			switch p := parent.(type) {
			case *ast.ExprStmt:
				pass.Reportf(file, n.Pos(), "result of Alloc is discarded; the pool handle leaks")
			case *ast.AssignStmt:
				for i, rhs := range p.Rhs {
					if ast.Unparen(rhs) != ast.Expr(n) || i >= len(p.Lhs) {
						continue
					}
					if id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok {
						if id.Name == "_" {
							pass.Reportf(file, n.Pos(), "result of Alloc is discarded; the pool handle leaks")
						} else {
							checkTracked(pass, file, w, id, p, stack)
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if !isDequeueRead(pass.Info, rhs) {
					continue
				}
				checkTracked(pass, file, w, id, n, stack)
			}
		}
		return true
	})
}

// isDequeueRead reports whether rhs produces a Handle by reading it out
// of memory or unpacking it (a conversion) — the dequeue-shaped sources.
func isDequeueRead(info *types.Info, rhs ast.Expr) bool {
	if !isHandleType(info.TypeOf(rhs)) {
		return false
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.IndexExpr:
		return true
	case *ast.CallExpr:
		tv, ok := info.Types[r.Fun]
		return ok && tv.IsType() // conversion like noc.Handle(word)
	}
	return false
}

// checkTracked runs the consumption walk for a handle bound to ident id
// by statement def, whose ancestors are stack.
func checkTracked(pass *Pass, file *File, w *leakWalk, id *ast.Ident, def *ast.AssignStmt, stack []ast.Node) {
	obj := objOf(pass.Info, id)
	if obj == nil {
		return
	}
	w.obj = obj
	var ifInit *ast.IfStmt
	for _, n := range stack {
		if ifs, ok := n.(*ast.IfStmt); ok && ifs.Init == ast.Stmt(def) {
			ifInit = ifs
			break
		}
	}
	var ft, bad bool
	if ifInit != nil {
		// if h := ...; h != 0 { ... } — the handle scopes to the if.
		ft, bad = w.seq([]ast.Stmt{ifInit})
	} else {
		rest := stmtsAfter(stack, def)
		if rest == nil {
			return // defined outside a tracked statement list
		}
		ft, bad = w.seq(rest)
	}
	if ft || bad {
		pass.Reportf(file, id.Pos(),
			"pool handle %s may leak: a path reaches function exit without Free, link-plane commit, or transfer", id.Name)
	}
}

// parentNode returns the immediate ancestor on stack, or nil.
func parentNode(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// stmtsAfter locates def inside the innermost statement list on stack
// and returns the statements that follow it.
func stmtsAfter(stack []ast.Node, def ast.Stmt) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		for j, s := range list {
			if s == def {
				return list[j+1:]
			}
		}
	}
	return nil
}

// leakWalk is the branch-sensitive consumption analysis for one handle
// variable. seq computes, for execution entering a statement list, two
// may-facts: ft — some path falls off the end of the list with the
// handle still live; bad — some path terminates (return, break,
// fallthrough) with the handle still live. Paths that consume the
// handle, carry a zero handle, or panic are discharged.
type leakWalk struct {
	info *types.Info
	obj  types.Object
}

func (w *leakWalk) seq(stmts []ast.Stmt) (ft, bad bool) {
	if len(stmts) == 0 {
		return true, false
	}
	sft, sbad := w.stmt(stmts[0])
	if !sft {
		return false, sbad
	}
	rft, rbad := w.seq(stmts[1:])
	return rft, sbad || rbad
}

func (w *leakWalk) stmt(s ast.Stmt) (ft, bad bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if w.consumes(s) {
			return false, false
		}
		return false, true
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough leave this sequence without
		// consuming; conservatively a leaking path.
		return false, true
	case *ast.ExprStmt:
		if isPanicCall(w.info, s.X) {
			return false, false // fatal path: the leak is moot
		}
		if w.consumes(s) {
			return false, false
		}
		return true, false
	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt:
		if w.consumes(s) {
			return false, false
		}
		return true, false
	case *ast.IfStmt:
		if (s.Init != nil && w.consumes(s.Init)) || w.consumes(s.Cond) {
			return false, false
		}
		thenZero, elseZero := w.zeroTest(s.Cond)
		tft, tbad := w.seq(s.Body.List)
		eft, ebad := true, false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			eft, ebad = w.seq(e.List)
		case *ast.IfStmt:
			eft, ebad = w.stmt(e)
		}
		if elseZero {
			eft, ebad = false, false // else-arm: the handle is zero, no obligation
		}
		if thenZero {
			tft, tbad = false, false // then-arm: the handle is zero, no obligation
		}
		return tft || eft, tbad || ebad
	case *ast.BlockStmt:
		return w.seq(s.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.ForStmt, *ast.RangeStmt:
		// The body may run zero times, so consumption inside cannot be
		// credited; a terminating leak inside still counts.
		var body *ast.BlockStmt
		if f, ok := s.(*ast.ForStmt); ok {
			body = f.Body
		} else {
			body = s.(*ast.RangeStmt).Body
		}
		_, bbad := w.seq(body.List)
		return true, bbad
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		ft, bad = false, false
		for _, c := range clauses {
			var list []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				list = cc.Body
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				list = cc.Body
				if cc.Comm == nil {
					hasDefault = true
				}
			}
			cft, cbad := w.seq(list)
			ft = ft || cft
			bad = bad || cbad
		}
		if !hasDefault {
			ft = true // the no-case path falls through unconsumed
		}
		return ft, bad
	}
	// Plain statements: assignments, declarations, inc/dec.
	if w.consumes(s) {
		return false, false
	}
	return true, false
}

// zeroTest reports whether branching on cond implies the tracked handle
// is zero in the then-arm (thenZero) or the else-arm (elseZero). h == 0
// refines the then-arm, h != 0 the else-arm; && / || / ! propagate
// soundly: a conjunct refines only the arm whose truth it implies, so
// `if h == 0 && cv < 0 { continue }` still discharges the then-arm.
func (w *leakWalk) zeroTest(cond ast.Expr) (thenZero, elseZero bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			tz, ez := w.zeroTest(e.X)
			return ez, tz
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			xt, xe := w.zeroTest(e.X)
			yt, ye := w.zeroTest(e.Y)
			return xt || yt, xe && ye
		case token.LOR:
			xt, xe := w.zeroTest(e.X)
			yt, ye := w.zeroTest(e.Y)
			return xt && yt, xe || ye
		case token.EQL, token.NEQ:
			isObj := func(x ast.Expr) bool {
				id, ok := ast.Unparen(x).(*ast.Ident)
				return ok && objOf(w.info, id) == w.obj
			}
			isZero := func(x ast.Expr) bool {
				bl, ok := ast.Unparen(x).(*ast.BasicLit)
				return ok && bl.Value == "0"
			}
			if (isObj(e.X) && isZero(e.Y)) || (isObj(e.Y) && isZero(e.X)) {
				return e.Op == token.EQL, e.Op == token.NEQ
			}
		}
	}
	return false, false
}

// consumes reports whether node contains a consuming use of the tracked
// handle: a call argument (except pool accessors), the right-hand side
// of an assignment, a return value, a closure capture, or a send.
func (w *leakWalk) consumes(node ast.Node) bool {
	found := false
	inspectStack(node, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || objOf(w.info, id) != w.obj {
			return true
		}
		if w.usedConsuming(stack, id) {
			found = true
		}
		return true
	})
	return found
}

// usedConsuming classifies one use of the handle by walking its
// ancestors outward to the first decisive context.
func (w *leakWalk) usedConsuming(stack []ast.Node, id *ast.Ident) bool {
	var prev ast.Node = id
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return true // captured: ownership moves with the closure
		case *ast.IndexExpr:
			if n.Index == prev {
				return false // used as an index: a read, not a transfer
			}
		case *ast.CallExpr:
			for _, a := range n.Args {
				if a == prev {
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && poolAccessors[sel.Sel.Name] {
						return false // borrowed by a read-only accessor
					}
					return true
				}
			}
		case *ast.ReturnStmt, *ast.SendStmt:
			return true
		case *ast.CompositeLit:
			return true // escapes into an aggregate
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if r == prev {
					return true // stored or folded into a stored value
				}
			}
			return false // part of an Lhs expression: a write target, not a transfer
		case ast.Stmt:
			return false // any other statement context: not a transfer
		}
		prev = stack[i]
	}
	return false
}
