package analysis

import (
	"go/ast"
	"go/types"
)

// mapRangePkgs are the module-relative packages whose non-test files
// feed rendered output (reports, tables, JSON, golden files). A map
// range there puts Go's randomized iteration order on the output path.
var mapRangePkgs = []string{
	"internal/sim",
	"internal/exp",
	"internal/stats",
	"internal/plot",
	"internal/noc",
	"internal/obs",
}

// MapRange forbids ranging over a map in the output and aggregation
// packages. Sort the keys into a slice and range over that, or waive
// with //nocvet:allow maprange plus a justification when order
// provably cannot reach any output (pure accumulation, set rebuild).
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "no range over a map in non-test files of sim/exp/stats/plot/noc/obs",
	Explain: `Go randomizes map iteration order on purpose. In the packages that
feed rendered output — sim, exp, stats, plot, noc, obs — a map range
puts that randomness on the output path: a table row order, a JSON
field order, an accumulation with floating-point rounding. Sort the
keys into a slice and range over that instead.

Waive with //nocvet:allow maprange when order provably cannot reach
any output: pure commutative accumulation over ints, rebuilding a set,
deleting every element.`,
	Run: func(pass *Pass) {
		if pass.Info == nil {
			return
		}
		rel := pass.Rel()
		inScope := false
		for _, p := range mapRangePkgs {
			if underSeg(rel, p) {
				inScope = true
				break
			}
		}
		if !inScope {
			return
		}
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(f, rs.Pos(),
						"range over map %s iterates in randomized order; sort the keys into a slice first", types.TypeString(t, nil))
				}
				return true
			})
		}
	},
}
