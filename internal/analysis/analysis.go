// Package analysis is a stdlib-only static-analysis framework encoding
// the simulator's determinism invariants: the properties that make a
// run byte-identical at any -parallel level and therefore make the
// paper's figures reproducible. Each Analyzer walks the ASTs of one
// package unit and reports diagnostics with file:line positions; the
// cmd/nocvet driver loads every package in the module and exits
// nonzero if any rule fires.
//
// A finding can be waived in place with a comment directive on the
// offending line or the line directly above it:
//
//	//nocvet:allow maprange order is irrelevant: values are summed
//
// The first field names the rule (or a comma-separated list of rules);
// the rest of the line is the justification. Directives with no
// justification are themselves reported, so every waiver in the tree
// documents why determinism is preserved.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects the package
// unit in pass and reports findings via pass.Report.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //nocvet:allow directives.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Explain is the long-form documentation printed by
	// `nocvet -explain <rule>`: what the invariant protects, how the
	// rule decides, and when a waiver is legitimate.
	Explain string
	// Run executes the check over one package unit.
	Run func(pass *Pass)
}

// An allowEntry is one rule named by one //nocvet:allow directive,
// tracked so staleallow can flag directives that suppress nothing.
type allowEntry struct {
	rule string
	pos  token.Pos
	used bool
}

// A File is one parsed source file plus the metadata rules scope on.
type File struct {
	// AST is the parsed file (with comments).
	AST *ast.File
	// Name is the file path as given to the parser.
	Name string
	// Test reports whether the file is a _test.go file.
	Test bool

	// allows maps line number -> rules waived on that line.
	allows map[int][]*allowEntry
}

// A Pass carries one package unit through every analyzer.
type Pass struct {
	// Fset positions every AST node in Files.
	Fset *token.FileSet
	// Path is the package import path ("nocsim/internal/sim"). Rules
	// use it to scope themselves; fixture tests set it explicitly.
	Path string
	// PkgName is the package clause name of the primary unit.
	PkgName string
	// Dir is the package directory (may be empty in tests).
	Dir string
	// Files holds every file of the unit, test files included.
	Files []*File
	// Info holds type information for the primary (non-test) files,
	// or nil when type-checking was not performed. Typed rules must
	// tolerate nil.
	Info *types.Info

	diags *[]Diagnostic
	rule  string          // set by the driver while an analyzer runs
	ran   map[string]bool // names of every analyzer in this invocation
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Reportf records a finding at pos unless an //nocvet:allow directive
// waives the running rule on that line or the line above.
func (p *Pass) Reportf(f *File, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if f.allowed(p.rule, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func (f *File) allowed(rule string, line int) bool {
	for _, e := range f.allows[line] {
		if e.rule == rule {
			e.used = true
			return true
		}
	}
	for _, e := range f.allows[line-1] {
		if e.rule == rule {
			e.used = true
			return true
		}
	}
	return false
}

// allowDirective is the comment prefix that waives a rule.
const allowDirective = "nocvet:allow"

// scanDirectives indexes every //nocvet:allow comment in f and reports
// directives that carry no justification text as findings of the
// pseudo-rule "directive".
func scanDirectives(fset *token.FileSet, f *File, diags *[]Diagnostic) {
	f.allows = make(map[int][]*allowEntry)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			rest := strings.TrimPrefix(text, allowDirective)
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) == 0 {
				*diags = append(*diags, Diagnostic{
					Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Rule:    "directive",
					Message: "nocvet:allow directive names no rule",
				})
				continue
			}
			if len(fields) == 1 {
				*diags = append(*diags, Diagnostic{
					Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Rule:    "directive",
					Message: fmt.Sprintf("nocvet:allow %s carries no justification", fields[0]),
				})
			}
			for _, rule := range strings.Split(fields[0], ",") {
				f.allows[pos.Line] = append(f.allows[pos.Line], &allowEntry{rule: rule, pos: c.Pos()})
			}
		}
	}
}

// Run executes every analyzer over the package unit and returns the
// findings sorted by position then rule. The unit's directive index is
// built here, so callers only need to fill the Pass fields.
func Run(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	pass.diags = &diags
	pass.ran = make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		pass.ran[a.Name] = true
	}
	for _, f := range pass.Files {
		scanDirectives(pass.Fset, f, &diags)
	}
	for _, a := range analyzers {
		pass.rule = a.Name
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// knownRules names every rule in the set; staleallow consults it to
// flag directives naming rules that cannot exist.
var knownRules = map[string]bool{}

func init() {
	for _, a := range Rules() {
		knownRules[a.Name] = true
	}
}

// Rules returns the full rule set in a stable order. StaleAllow must
// stay last: it inspects which waivers the preceding analyzers used.
func Rules() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		GlobalRand,
		MapRange,
		RawConfig,
		Goroutine,
		PanicMsg,
		HotAlloc,
		AtomicMix,
		HandleLeak,
		ShardWrite,
		StaleAllow,
	}
}

// importName returns the local name under which path is imported in f,
// and whether it is imported at all. A dot import returns ".".
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// isPkgSel reports whether e is a selector pkgName.sel where pkgName is
// a plain (package-level) identifier, i.e. not shadowed by a field or
// local in the obvious syntactic sense. Shadowing of an import name by
// a local variable is rare enough in this tree that the syntactic check
// is sufficient; typed rules use go/types instead.
func isPkgSel(e ast.Expr, pkgName, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	return ok && id.Name == pkgName && id.Obj == nil
}
