package analysis

import (
	"fmt"
	"strings"
)

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Rules() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Select resolves a comma-separated rule selection against the full
// rule set, preserving the canonical order. An empty selection means
// every rule. An unknown name is an error naming the bad rule, so a
// typo is distinguishable from an empty selection. When staleallow is
// selected it keeps its run-last position relative to the other
// selected rules.
func Select(csv string) ([]*Analyzer, error) {
	all := Rules()
	if strings.TrimSpace(csv) == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if ByName(name) == nil {
			return nil, fmt.Errorf("unknown rule %q; run -list for the rule set", name)
		}
		want[name] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}
