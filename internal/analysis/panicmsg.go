package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// PanicMsg requires every statically-visible panic message to start
// with the package's "pkg: " prefix, so a panic surfacing through the
// runner's pool or a figure driver names its origin without a stack
// walk. The leading string literal is resolved through string
// concatenation and through fmt.Sprintf / fmt.Errorf / errors.New
// wrappers; panics of plain error values are not checkable and skip.
var PanicMsg = &Analyzer{
	Name: "panicmsg",
	Doc:  "every panic string must carry its pkg: prefix",
	Explain: `A panic that crosses the runner's pool or a figure driver surfaces
far from its origin; the "pkg: " prefix names the faulting package
without a stack walk. The rule resolves the leading string literal of
every statically-visible panic argument — through concatenation and
through fmt.Sprintf / fmt.Errorf / errors.New wrappers — and requires
it to start with the package name and a colon. Panics of plain error
values are not statically checkable and are skipped.

Waivers are almost never right: prefix the message instead.`,
	Run: func(pass *Pass) {
		want := pass.pkgPrefix() + ":"
		for _, f := range pass.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" || len(call.Args) != 1 {
					return true
				}
				msg, ok := leadingString(call.Args[0])
				if !ok {
					return true
				}
				if !strings.HasPrefix(msg, want) {
					pass.Reportf(f, call.Pos(),
						"panic message %q does not start with %q", msg, want+" ")
				}
				return true
			})
		}
	},
}

// leadingString resolves the leftmost string literal of a panic
// argument: a plain literal, a + concatenation, or the format/first
// argument of fmt.Sprintf, fmt.Errorf, or errors.New.
func leadingString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		return leadingString(e.X)
	case *ast.ParenExpr:
		return leadingString(e.X)
	case *ast.CallExpr:
		if len(e.Args) == 0 {
			return "", false
		}
		if isPkgSel(e.Fun, "fmt", "Sprintf") || isPkgSel(e.Fun, "fmt", "Errorf") || isPkgSel(e.Fun, "errors", "New") {
			return leadingString(e.Args[0])
		}
	}
	return "", false
}
