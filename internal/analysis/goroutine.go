package analysis

import "go/ast"

// Goroutine forbids go statements and sync.WaitGroup outside the four
// sanctioned concurrency layers: internal/runner (cross-simulation —
// the bounded pool keeps results in declaration order at any -parallel
// level), internal/par (intra-simulation — the persistent shard pool
// whose barrier-joined workers cover disjoint index ranges, so no
// interleaving can reach any output), internal/serve (the service
// daemon's HTTP listener and job-queue workers, which sit strictly
// above the runner: a job's simulations still execute through the
// runner's pool, and concurrent jobs share no simulator state), and
// internal/fleet (the coordinator's dispatch workers and health
// prober, which sit strictly above serve and touch only HTTP clients
// and the coordinator's own mutex-guarded queues). Every fabric's
// per-cycle parallelism must go through par.Pool rather than spawning
// its own goroutines.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no go statements or sync.WaitGroup outside internal/runner, internal/par, internal/serve and internal/fleet",
	Explain: `All concurrency flows through four audited layers: internal/runner
(cross-simulation: a bounded pool that keeps results in declaration
order at any -parallel level), internal/par (intra-simulation: the
persistent shard pool whose barrier-joined workers cover disjoint
index ranges), internal/serve (the daemon's listener and job queue,
strictly above the runner), and internal/fleet (the coordinator's
dispatch workers and health prober, strictly above serve). An ad-hoc
go statement or WaitGroup anywhere else creates an interleaving the
determinism argument does not cover. The rule flags go statements and
any mention of sync.WaitGroup outside those packages.

Waive with //nocvet:allow goroutine only for concurrency that cannot
touch simulator state, with the isolation argument in the
justification.`,
	Run: func(pass *Pass) {
		rel := pass.Rel()
		if rel == "internal/runner" || rel == "internal/par" || rel == "internal/serve" || rel == "internal/fleet" {
			return
		}
		for _, f := range pass.Files {
			syncName, hasSync := importName(f.AST, "sync")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(f, n.Pos(),
						"go statement outside internal/runner; route parallelism through the bounded pool")
				case ast.Expr:
					if hasSync && isPkgSel(n, syncName, "WaitGroup") {
						pass.Reportf(f, n.Pos(),
							"sync.WaitGroup outside internal/runner; route parallelism through the bounded pool")
					}
				}
				return true
			})
		}
	},
}
