package analysis

import "go/ast"

// Goroutine forbids go statements and sync.WaitGroup outside
// internal/runner. All cross-simulation parallelism flows through the
// runner's bounded pool so results stay in declaration order at any
// -parallel level; the three barrier-synchronized intra-sim shard
// loops carry explicit //nocvet:allow waivers documenting why their
// interleaving cannot reach any output.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no go statements or sync.WaitGroup outside internal/runner",
	Run: func(pass *Pass) {
		if pass.Rel() == "internal/runner" {
			return
		}
		for _, f := range pass.Files {
			syncName, hasSync := importName(f.AST, "sync")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(f, n.Pos(),
						"go statement outside internal/runner; route parallelism through the bounded pool")
				case ast.Expr:
					if hasSync && isPkgSel(n, syncName, "WaitGroup") {
						pass.Reportf(f, n.Pos(),
							"sync.WaitGroup outside internal/runner; route parallelism through the bounded pool")
					}
				}
				return true
			})
		}
	},
}
