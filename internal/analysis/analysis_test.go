package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureCases maps each golden fixture package to the import path it
// impersonates. Fixtures with // want comments are failing cases (the
// rule must fire exactly there); fixtures without are passing cases
// (the rule must stay silent).
var fixtureCases = []struct {
	dir  string
	path string
}{
	{"wallclock", "nocsim/internal/sim"},
	{"wallclock_exempt", "nocsim/cmd/probe"},
	{"wallclock_obs", "nocsim/internal/obs"},
	{"wallclock_exempt_runner", "nocsim/internal/runner"},
	{"wallclock_exempt_serve", "nocsim/internal/serve"},
	{"wallclock_exempt_fleet", "nocsim/internal/fleet"},
	{"globalrand", "nocsim/internal/traffic"},
	{"globalrand_clean", "nocsim/internal/traffic"},
	{"maprange", "nocsim/internal/stats"},
	{"maprange_obs", "nocsim/internal/obs"},
	{"maprange_exempt", "nocsim/internal/cache"},
	{"rawconfig", "nocsim/internal/exp"},
	{"rawconfig_exempt", "nocsim/internal/runner"},
	{"goroutine", "nocsim/internal/exp"},
	{"goroutine_exempt", "nocsim/internal/runner"},
	{"goroutine_exempt_par", "nocsim/internal/par"},
	{"goroutine_exempt_serve", "nocsim/internal/serve"},
	{"goroutine_exempt_fleet", "nocsim/internal/fleet"},
	{"panicmsg", "nocsim/internal/cache"},
	{"panicmsg_main", "nocsim/cmd/probe"},
	{"hotalloc", "nocsim/internal/noc/fixt"},
	{"hotalloc_clean", "nocsim/internal/noc/fixt"},
	{"atomicmix", "nocsim/internal/fab"},
	{"atomicmix_clean", "nocsim/internal/fab"},
	{"handleleak", "nocsim/internal/noc/leakfix"},
	{"handleleak_clean", "nocsim/internal/noc/leakfix"},
	{"shardwrite", "nocsim/internal/fab"},
	{"shardwrite_clean", "nocsim/internal/fab"},
}

func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pass, typeErrs, err := loader.LoadDir(dir, tc.path, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, te := range typeErrs {
				t.Errorf("fixture does not type-check: %v", te)
			}
			diags := Run(pass, Rules())
			checkWants(t, pass, diags)
		})
	}
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// checkWants compares diagnostics against the fixture's // want
// comments: every diagnostic must match an unused want on its line,
// and every want must be consumed.
func checkWants(t *testing.T, pass *Pass, diags []Diagnostic) {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range pass.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range wantPatterns(t, text[len("want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: want %q: no diagnostic reported", key, w.re)
			}
		}
	}
}

// wantPatterns extracts the quoted regexes of one want comment; both
// "double-quoted" and `backtick-quoted` patterns are accepted.
func wantPatterns(t *testing.T, s string) []string {
	t.Helper()
	var pats []string
	for _, m := range regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`").FindAllString(s, -1) {
		if m[0] == '`' {
			pats = append(pats, m[1:len(m)-1])
			continue
		}
		unq, err := strconv.Unquote(m)
		if err != nil {
			t.Fatalf("bad want pattern %s: %v", m, err)
		}
		pats = append(pats, unq)
	}
	if len(pats) == 0 {
		t.Fatalf("want comment with no pattern: %q", s)
	}
	return pats
}

// TestRepoClean is the merge gate in test form: nocvet must report
// zero findings over the real tree.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check; CI runs cmd/nocvet directly")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("expected the module walk to find at least 20 packages, got %d", len(dirs))
	}
	for _, dir := range dirs {
		pass, typeErrs, err := loader.LoadDir(dir, loader.ImportPath(dir), true)
		if err != nil {
			t.Fatal(err)
		}
		for _, te := range typeErrs {
			t.Errorf("%s: type error: %v", loader.ImportPath(dir), te)
		}
		for _, d := range Run(pass, Rules()) {
			t.Errorf("finding on clean tree: %s", d)
		}
	}
}

func loadSnippet(t *testing.T, src, path string) []Diagnostic {
	t.Helper()
	return loadSnippetWith(t, src, path, Rules())
}

func loadSnippetWith(t *testing.T, src, path string, rules []*Analyzer) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pass, _, err := loader.LoadDir(dir, path, false)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pass, rules)
}

func TestDirectiveWithoutJustification(t *testing.T) {
	diags := loadSnippet(t, `package tmp

func f() {
	done := make(chan struct{})
	//nocvet:allow goroutine
	go func() { close(done) }()
	<-done
}
`, "nocsim/internal/exp")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the directive finding", diags)
	}
	if diags[0].Rule != "directive" || !strings.Contains(diags[0].Message, "no justification") {
		t.Errorf("diagnostic = %s, want unjustified-directive finding", diags[0])
	}
}

func TestDirectiveWithoutRule(t *testing.T) {
	diags := loadSnippet(t, `package tmp

//nocvet:allow
func f() {}
`, "nocsim/internal/exp")
	if len(diags) != 1 || diags[0].Rule != "directive" || !strings.Contains(diags[0].Message, "names no rule") {
		t.Fatalf("diagnostics = %v, want the names-no-rule finding", diags)
	}
}

func TestDirectiveMultiRule(t *testing.T) {
	diags := loadSnippet(t, `package tmp

import (
	"sync"
	"time"
)

func f() time.Time {
	//nocvet:allow goroutine,wallclock snippet: both rules waived at once
	var wg, t = sync.WaitGroup{}, time.Now()
	wg.Wait()
	return t
}
`, "nocsim/internal/exp")
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}

func TestStaleAllowFlagsUnusedWaiver(t *testing.T) {
	diags := loadSnippet(t, `package tmp

//nocvet:allow wallclock stale: nothing below reads the clock
func f() int { return 1 }
`, "nocsim/internal/exp")
	if len(diags) != 1 || diags[0].Rule != "staleallow" ||
		!strings.Contains(diags[0].Message, "suppresses no finding") {
		t.Fatalf("diagnostics = %v, want exactly one stale-waiver finding", diags)
	}
}

func TestStaleAllowFlagsUnknownRule(t *testing.T) {
	diags := loadSnippet(t, `package tmp

//nocvet:allow wallcock mistyped rule name
func f() int { return 1 }
`, "nocsim/internal/exp")
	if len(diags) != 1 || diags[0].Rule != "staleallow" ||
		!strings.Contains(diags[0].Message, `unknown rule "wallcock"`) {
		t.Fatalf("diagnostics = %v, want exactly one unknown-rule finding", diags)
	}
}

func TestStaleAllowSkipsUnselectedRules(t *testing.T) {
	// A subset run cannot judge waivers of rules that did not run: the
	// wallclock waiver below would be stale under the full set, but a
	// maprange-only selection must stay silent about it.
	diags := loadSnippetWith(t, `package tmp

//nocvet:allow wallclock judged only when wallclock itself runs
func f() int { return 1 }
`, "nocsim/internal/exp", []*Analyzer{MapRange, StaleAllow})
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none from a subset run", diags)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") || strings.Contains(d, string(filepath.Separator)+".") {
			t.Errorf("Expand included %s", d)
		}
	}
}
