package analysis

import (
	"go/ast"
	"strings"
)

// wallclockFuncs are the time functions that read the host clock. Any
// of them inside simulator code makes output depend on machine speed.
var wallclockFuncs = []string{"Now", "Since", "Until"}

// Wallclock forbids reading the wall clock outside cmd/ and
// internal/runner. Simulated time is the cycle counter; host time may
// only be observed by the process entry points and the run executor —
// that sanction covers the runner's progress reporter and the
// elapsed_ms field it stamps into run manifests, both diagnostics that
// never feed back into results. The observability collectors
// (internal/obs) are NOT exempt: every collector is indexed by
// simulated cycle, which is what keeps their exports reproducible.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now/time.Since/time.Until outside cmd/ and internal/runner (the runner's progress reporter and manifest timing are the sanctioned uses)",
	Run: func(pass *Pass) {
		rel := pass.Rel()
		if strings.HasPrefix(rel, "cmd/") || rel == "internal/runner" {
			return
		}
		for _, f := range pass.Files {
			timeName, ok := importName(f.AST, "time")
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				for _, fn := range wallclockFuncs {
					if isPkgSel(e, timeName, fn) {
						pass.Reportf(f, e.Pos(),
							"time.%s reads the wall clock; simulator code must be deterministic (only cmd/ and internal/runner may time runs)", fn)
					}
				}
				return true
			})
		}
	},
}
