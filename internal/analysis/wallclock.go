package analysis

import (
	"go/ast"
	"strings"
)

// wallclockFuncs are the time functions that read the host clock. Any
// of them inside simulator code makes output depend on machine speed.
var wallclockFuncs = []string{"Now", "Since", "Until"}

// Wallclock forbids reading the wall clock outside cmd/,
// internal/runner, internal/serve and internal/fleet. Simulated time
// is the cycle counter; host time may only be observed by the process
// entry points, the run executor, and the service layers. The runner
// sanction covers its progress reporter and the elapsed_ms field it
// stamps into run manifests; the serve sanction covers request-latency
// metrics, job deadlines and stream poll intervals; the fleet sanction
// covers dispatch latency, retry backoff and health-probe timing — all
// diagnostics or robustness plumbing that never feeds back into a
// simulation (a timed-out job is discarded, never cached). The
// observability collectors (internal/obs) are NOT exempt: every
// collector is indexed by simulated cycle, which is what keeps their
// exports reproducible.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now/time.Since/time.Until outside cmd/, internal/runner, internal/serve and internal/fleet (run timing, request metrics, job deadlines and dispatch/backoff timing are the sanctioned uses)",
	Explain: `Simulated time is the cycle counter; the host clock makes output
depend on machine speed. Only cmd/ entry points, internal/runner (run
timing, the elapsed_ms manifest field), internal/serve (request
metrics, job deadlines) and internal/fleet (dispatch latency, retry
backoff, health probes) may read it — all diagnostics that never feed
back into a simulation. internal/obs is deliberately NOT exempt: every
collector is indexed by simulated cycle, which is what keeps exports
reproducible. The rule flags time.Now/Since/Until selector calls on the
time import in any other package.

Waive with //nocvet:allow wallclock only where the timestamp provably
cannot reach simulator state or rendered output.`,
	Run: func(pass *Pass) {
		rel := pass.Rel()
		if strings.HasPrefix(rel, "cmd/") || rel == "internal/runner" || rel == "internal/serve" || rel == "internal/fleet" {
			return
		}
		for _, f := range pass.Files {
			timeName, ok := importName(f.AST, "time")
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				for _, fn := range wallclockFuncs {
					if isPkgSel(e, timeName, fn) {
						pass.Reportf(f, e.Pos(),
							"time.%s reads the wall clock; simulator code must be deterministic (only cmd/, internal/runner, internal/serve and internal/fleet may time runs)", fn)
					}
				}
				return true
			})
		}
	},
}
