package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix pins the active-set bifurcation: once any site accesses a
// struct field through sync/atomic, every other access to that field in
// the package must either be atomic itself, sit under a mode gate (an
// if whose condition reads a bool field, the `if !f.atomicAct` arm), or
// be construction code. A plain load or store anywhere else is exactly
// the lost-wakeup/torn-read race the 3-state protocol closed.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must be accessed atomically at every non-construction site",
	Explain: `The active-set protocol is atomic in parallel mode and plain-store in
sequential mode, decided once at construction. That bifurcation is safe
only while the two arms stay disjoint: a plain access on a path that
can run concurrently with the atomic arm is a data race the race
detector only catches when traffic happens to exercise it.

The rule runs in two passes over each package's non-test files. Pass 1
collects every struct field whose address (directly or through an
element, &f.active[i]) is the first argument of a sync/atomic call.
Pass 2 flags every other plain read or write of those fields.

Not flagged: accesses inside the atomic calls themselves; functions
whose name starts with New (construction precedes sharing); len/cap of
the field (slice-header reads); and accesses inside an if whose
condition reads a bool-typed struct field — the sanctioned sequential
arm of the construction-time mode split.

Waive with //nocvet:allow atomicmix only where phase discipline makes
the plain access safe (e.g. ActiveSet() is documented sequential-only,
called between Steps when no worker phase is running).`,
	Run: func(pass *Pass) {
		if pass.Info == nil {
			return
		}
		// Pass 1: fields whose address feeds sync/atomic.
		atomicFields := map[*types.Var]bool{}
		inAtomicArg := map[*ast.SelectorExpr]bool{}
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					return true
				}
				target := ast.Unparen(ue.X)
				if ix, ok := target.(*ast.IndexExpr); ok {
					target = ast.Unparen(ix.X)
				}
				fsel, ok := target.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := pass.Info.Uses[fsel.Sel].(*types.Var)
				if !ok || !v.IsField() {
					return true
				}
				atomicFields[v] = true
				inAtomicArg[fsel] = true
				return true
			})
		}
		if len(atomicFields) == 0 {
			return
		}
		// Pass 2: every other access must be gated or constructive.
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			inspectStack(f.AST, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !atomicFields[v] || inAtomicArg[sel] {
					return true
				}
				if hasPrefixAny(enclosingFuncName(stack), "New") {
					return true // construction precedes sharing
				}
				if isLenCapArg(pass.Info, sel, stack) {
					return true // slice-header read, not an element access
				}
				if modeGated(pass.Info, stack) {
					return true // sanctioned sequential arm
				}
				pass.Reportf(f, sel.Pos(),
					"field %s is accessed via sync/atomic elsewhere; this plain access races in parallel mode (use the atomic form or gate on the mode flag)", v.Name())
				return true
			})
		}
	},
}

// isLenCapArg reports whether sel is directly the argument of a len or
// cap call.
func isLenCapArg(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || ast.Unparen(call.Args[0]) != ast.Expr(sel) {
		return false
	}
	return isBuiltin(info, call, "len") || isBuiltin(info, call, "cap")
}
