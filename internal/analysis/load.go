package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Loader parses and type-checks packages of one module using only
// the standard library: module-internal imports are type-checked from
// source by walking the module tree, everything else falls back to the
// stdlib source importer.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModDir  string

	std   types.ImporterFrom
	pkgs  map[string]*types.Package
	inFly map[string]bool
}

// NewLoader builds a Loader for the module whose go.mod sits in (or
// above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  root,
		pkgs:    map[string]*types.Package{},
		inFly:   map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves package patterns relative to the module root:
// "./..." style recursive patterns and plain directories. testdata,
// vendor, and hidden or underscore directories are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("analysis: no Go files in %s", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && goFileName(e.Name()) {
			return true
		}
	}
	return false
}

func goFileName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// ImportPath maps an absolute package directory to its import path.
func (l *Loader) ImportPath(dir string) string {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses every Go file in dir into a Pass under the given
// import path, type-checking the primary (non-test) files when typed
// is set. Type errors are returned separately so the caller can decide
// whether partial type information is acceptable.
func (l *Loader) LoadDir(dir, importPath string, typed bool) (*Pass, []error, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pass := &Pass{Fset: l.Fset, Path: importPath, Dir: dir}
	var primary []*ast.File
	for _, e := range ents {
		if e.IsDir() || !goFileName(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		f := &File{AST: af, Name: path, Test: strings.HasSuffix(e.Name(), "_test.go")}
		pass.Files = append(pass.Files, f)
		if !f.Test {
			primary = append(primary, af)
			pass.PkgName = af.Name.Name
		}
	}
	if pass.PkgName == "" && len(pass.Files) > 0 {
		pass.PkgName = pass.Files[0].AST.Name.Name
	}
	var typeErrs []error
	if typed && len(primary) > 0 {
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		cfg := types.Config{
			Importer: l,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		// Note: this check is deliberately NOT cached in l.pkgs — the
		// importer cache must hold exactly one copy of every package
		// (the one its dependents were checked against), and that copy
		// is created by ImportFrom on first use.
		cfg.Check(importPath, l.Fset, primary, info)
		pass.Info = info
	}
	return pass, typeErrs, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal packages
// are type-checked from source (non-test files only), all others are
// delegated to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok && pkg != nil && pkg.Complete() {
		return pkg, nil
	}
	if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
		return l.std.ImportFrom(path, srcDir, 0)
	}
	if l.inFly[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.inFly[path] = true
	defer delete(l.inFly, path)

	dir := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !goFileName(e.Name()) || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		af, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files for %s in %s", path, dir)
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
