package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocNocRoots names the per-cycle entry points of package
// internal/noc itself, which has no Step method: every NIC and FlitPool
// method a fabric calls on each cycle's hot path.
var hotallocNocRoots = map[string]bool{
	"Send": true, "Receive": true, "Alloc": true, "Free": true, "Get": true,
	"Head": true, "Pop": true, "HeadRequest": true, "HeadReply": true,
	"PopRequest": true, "PopReply": true,
}

// hotallocAllow names the sanctioned growth points: functions that run
// in the sequential prelude of Step and exist precisely to move
// allocation off the per-node hot loop. They are neither traversed nor
// checked.
var hotallocAllow = map[string]bool{"Reserve": true}

// HotAlloc forbids heap-allocating constructs in any function reachable
// from a fabric Step method, a barrier-phase worker, or the per-cycle
// NIC/pool entry points of internal/noc. The zero-steady-state-allocs
// property is what keeps cycle cost flat at 64x64+ and the GC out of
// the measurement loop; this rule catches a reintroduced allocation at
// review time instead of as an opaque allocs-per-cycle bump.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no heap-allocating constructs reachable from Step/per-cycle functions in internal/noc/...",
	Explain: `The simulator's hot path — everything reachable from a fabric's Step
method, from a barrier-phase worker registered with (*par.Pool).Run, or
from the per-cycle NIC/FlitPool entry points of internal/noc — must not
allocate in steady state (PR 6's TestZeroSteadyStateAllocs pins this at
runtime; hotalloc pins it at review time).

Flagged constructs: make, append (the backing array may grow), new,
slice/map composite literals, &composite literals (escape by
construction), closure literals (the closure header allocates), and
arguments boxed into interface parameters or converted to interface
types.

Exemptions: test files; the sequential Reserve growth point (the one
sanctioned place the pool grows, by design); and anything inside a
panic(...) call — a path that ends the process may format its message.

Waive with //nocvet:allow hotalloc only at documented grow-to-peak
points (NIC queue doubling, free-list push with capacity pre-reserved),
where the allocation provably stops once the structure reaches its
high-water mark.`,
	Run: func(pass *Pass) {
		if pass.Info == nil || !underSeg(pass.Rel(), "internal/noc") {
			return
		}
		decls := collectFuncs(pass)
		var roots []*types.Func
		for _, d := range sortedDecls(decls) {
			if d.fn.Name() == "Step" ||
				(pass.Rel() == "internal/noc" && d.decl.Recv != nil && hotallocNocRoots[d.fn.Name()]) {
				roots = append(roots, d.fn)
			}
		}
		lits, seeds := workerFuncs(pass)
		roots = append(roots, seeds...)
		hot := reachableFrom(pass.Info, decls, roots, func(fn *types.Func) bool {
			return hotallocAllow[fn.Name()]
		})
		for _, d := range sortedDecls(decls) {
			if hot[d.fn] {
				checkHotBody(pass, d.file, d.fn.Name(), d.decl.Body)
			}
		}
		for _, wl := range lits {
			checkHotBody(pass, wl.file, "worker", wl.lit.Body)
		}
	},
}

// checkHotBody reports every allocating construct in one hot function
// body, skipping panic-call subtrees and the interiors of flagged
// closures.
func checkHotBody(pass *Pass, file *File, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(file, n.Pos(),
				"closure literal in hot function %s allocates; hoist it to construction time", fname)
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						return false // fatal path: message formatting is exempt
					case "make":
						pass.Reportf(file, n.Pos(),
							"make allocates in hot function %s; growth belongs in the sequential Reserve point", fname)
					case "append":
						pass.Reportf(file, n.Pos(),
							"append in hot function %s may grow the backing array; growth belongs in the sequential Reserve point", fname)
					case "new":
						pass.Reportf(file, n.Pos(), "new allocates in hot function %s", fname)
					}
					return true
				}
			}
			checkBoxing(pass, file, fname, n)
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(file, n.Pos(),
						"composite %s literal allocates in hot function %s", t.String(), fname)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(file, n.Pos(),
						"&composite literal escapes to the heap in hot function %s", fname)
					return false
				}
			}
		}
		return true
	})
}

// checkBoxing flags call arguments that box a concrete value into an
// interface parameter, and conversions to interface types.
func checkBoxing(pass *Pass, file *File, fname string, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x) with T an interface boxes x.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			at := pass.Info.TypeOf(call.Args[0])
			if at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
				pass.Reportf(file, call.Pos(),
					"conversion to interface %s boxes its operand in hot function %s", tv.Type.String(), fname)
			}
		}
		return
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && call.Ellipsis == token.NoPos && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(file, arg.Pos(),
			"argument boxes into an interface parameter in hot function %s", fname)
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
