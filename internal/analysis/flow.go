package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the lightweight per-function control-flow/dataflow layer
// shared by the shard-safety rules (hotalloc, atomicmix, handleleak,
// shardwrite): function collection, an intra-package static call graph
// with reachability, an ancestor-tracking AST walk, and the mode-gate
// detector for the sequential/parallel bifurcation pattern.

// nocPkgPath is the import path of the flit/NIC core package whose
// types (FlitPool, Handle) the hot-path rules key on.
const nocPkgPath = modulePath + "/internal/noc"

// parPkgPath is the import path of the persistent shard-worker pool.
const parPkgPath = modulePath + "/internal/par"

// A declOf pairs a declared function with its file and type object.
type declOf struct {
	fn   *types.Func
	decl *ast.FuncDecl
	file *File
}

// collectFuncs indexes every function declared in the pass's non-test
// files by its *types.Func object. Callers must have checked that
// pass.Info is non-nil.
func collectFuncs(pass *Pass) map[*types.Func]*declOf {
	out := map[*types.Func]*declOf{}
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		for _, d := range f.AST.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			out[obj] = &declOf{fn: obj, decl: fd, file: f}
		}
	}
	return out
}

// sortedDecls returns the declared functions of decls in source order,
// so rules that iterate the set report deterministically.
func sortedDecls(decls map[*types.Func]*declOf) []*declOf {
	out := make([]*declOf, 0, len(decls))
	for _, d := range decls {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// calleeOf resolves the static callee of call, or nil for dynamic
// calls, builtins, and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// staticCallees lists the declared functions node statically calls.
func staticCallees(info *types.Info, node ast.Node) []*types.Func {
	var out []*types.Func
	ast.Inspect(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(info, call); fn != nil {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// reachableFrom walks the intra-package static call graph from roots
// and returns every declared function reachable from them (roots
// included). Functions for which stop returns true are neither
// traversed nor included: they are sanctioned boundaries.
func reachableFrom(info *types.Info, decls map[*types.Func]*declOf, roots []*types.Func, stop func(*types.Func) bool) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] || (stop != nil && stop(fn)) {
			continue
		}
		d := decls[fn]
		if d == nil {
			continue // cross-package or interface method: out of unit
		}
		seen[fn] = true
		queue = append(queue, staticCallees(info, d.decl.Body)...)
	}
	return seen
}

// inspectStack walks root like ast.Inspect while maintaining the
// ancestor stack passed to fn (outermost first, excluding n itself).
// Returning false from fn skips n's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// modeGated reports whether the node whose ancestors are in stack sits
// inside an if statement whose condition reads a bool-typed struct
// field — the sequential/parallel bifurcation pattern
// (`if !f.atomicAct { ... }`, `if f.skip && ... { ... }`). Plain
// accesses under such a gate are the sanctioned sequential arm of a
// construction-time mode split, not a mixed-mode race.
func modeGated(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		if ifs, ok := n.(*ast.IfStmt); ok && condReadsBoolField(info, ifs.Cond) {
			return true
		}
	}
	return false
}

// condReadsBoolField reports whether cond selects a bool-typed struct
// field anywhere in its expression tree.
func condReadsBoolField(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			found = true
			return false
		}
		return true
	})
	return found
}

// isNamed reports whether t (or its pointer element) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// objOf resolves an identifier to its object through either the use or
// the definition map.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// enclosingFuncName names the innermost declared function in stack, or
// "" when the node sits outside any declaration.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// A workerLit is one barrier-phase worker function literal: a
// func(lo, hi, worker int) body handed to (*par.Pool).Run either
// directly or through a field or variable assigned elsewhere in the
// package.
type workerLit struct {
	lit  *ast.FuncLit
	file *File
}

// workerFuncs discovers the package's barrier-phase workers: the
// literals registered with (*par.Pool).Run plus the declared functions
// they statically call (the seeds of the worker-reachable set).
func workerFuncs(pass *Pass) (lits []workerLit, seeds []*types.Func) {
	// Pass 1: collect Run's fn arguments — literals directly, and the
	// field/variable objects that carry a literal registered earlier.
	targets := map[types.Object]bool{}
	addArg := func(arg ast.Expr, f *File) {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			lits = append(lits, workerLit{lit: a, file: f})
		case *ast.SelectorExpr:
			if o := pass.Info.Uses[a.Sel]; o != nil {
				targets[o] = true
			}
		case *ast.Ident:
			if o := objOf(pass.Info, a); o != nil {
				targets[o] = true
			}
		}
	}
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Run" || fn.Pkg() == nil || fn.Pkg().Path() != parPkgPath {
				return true
			}
			addArg(call.Args[1], f)
			return true
		})
	}
	if len(targets) > 0 {
		// Pass 2: find the literals assigned to those targets.
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
					if !ok {
						continue
					}
					var o types.Object
					switch l := ast.Unparen(as.Lhs[i]).(type) {
					case *ast.SelectorExpr:
						o = pass.Info.Uses[l.Sel]
					case *ast.Ident:
						o = objOf(pass.Info, l)
					}
					if o != nil && targets[o] {
						lits = append(lits, workerLit{lit: lit, file: f})
					}
				}
				return true
			})
		}
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i].lit.Pos() < lits[j].lit.Pos() })
	for _, wl := range lits {
		seeds = append(seeds, staticCallees(pass.Info, wl.lit.Body)...)
	}
	return lits, seeds
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isPanicCall reports whether e is a call to the builtin panic. Used to
// exempt fatal paths: allocation and boxing on a path that ends the
// process are irrelevant to steady-state behavior.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isBuiltin(info, call, "panic")
}

// hasPrefixAny reports whether name starts with any of the prefixes.
func hasPrefixAny(name string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
