package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardWrite checks the barrier-phase worker functions registered with
// (*par.Pool).Run: inside them, every write into captured shared state
// must go through an index derived from the worker's [lo, hi) span (or
// through per-worker scratch). A write whose index comes from loaded
// data — a neighbor id out of a link table, a handle — lands in another
// shard's range and races with that shard's owner.
var ShardWrite = &Analyzer{
	Name: "shardwrite",
	Doc:  "worker-phase writes to shared state must index through the shard-owned range or per-worker scratch",
	Explain: `par.Pool workers own a contiguous [lo, hi) slice of the node range;
the parallelism-invariance guarantee holds because no worker writes
state another worker may touch in the same phase. The rule finds the
worker functions — function literals handed to (*par.Pool).Run directly
or via a field registered at construction — plus everything they
statically call, and checks every assignment and ++/-- in them.

A write target is peeled to its root. Writes are clean when the root is
shard-owned: a parameter (lo/hi/worker and per-shard pointers like
*noc.Stats), a local value, an alias carved out of shared state through
a tainted index (sc := &f.scr[w], plane := f.in[base:...]), a fresh
composite, or a method receiver that every call site in the worker set
reaches through shard-owned memory (f.l2g[g].push(...)). Writes through
a captured or shared-receiver root are clean only when some index on
the path is tainted — derived from parameters or loop variables by
arithmetic. Taint deliberately does not flow through
memory loads: a neighbor id read from a link table is data, not a
shard-derived index, and writing through it is exactly the cross-shard
escape this rule exists to flag. Mode-gated branches (if over a bool
field, the sequential arm) are skipped.

Waive with //nocvet:allow shardwrite only at true transfer points
whose safety argument is structural, e.g. the stage-major link-plane
commit (the write plane is disjoint from every read plane this cycle)
or a flit's pool slot (owned by the unique traversing worker).`,
	Run: func(pass *Pass) {
		if pass.Info == nil {
			return
		}
		lits, seeds := workerFuncs(pass)
		if len(lits) == 0 {
			return
		}
		decls := collectFuncs(pass)
		reach := reachableFrom(pass.Info, decls, seeds, nil)
		r := &shardRun{pass: pass, decls: decls, recvShared: map[*types.Func]bool{}}
		var units []shardUnit
		for _, wl := range lits {
			units = append(units, shardUnit{file: wl.file, ftype: wl.lit.Type, body: wl.lit.Body})
		}
		for _, d := range sortedDecls(decls) {
			if reach[d.fn] {
				units = append(units, shardUnit{
					fn: d.fn, file: d.file, ftype: d.decl.Type,
					recv: d.decl.Recv, body: d.decl.Body,
				})
			}
		}
		// Fixpoint on receiver ownership: a method's receiver is shared
		// when any call site in the worker set passes a non-owned value
		// (the worker literal calling f.phase(...) on the captured
		// fabric seeds this); it stays shard-owned when every call site
		// reaches it through a tainted index (f.l2g[g].push(...)). The
		// set only grows, so the loop terminates.
		for changed := true; changed; {
			changed = false
			for _, u := range units {
				if r.analyze(u, false) {
					changed = true
				}
			}
		}
		for _, u := range units {
			r.analyze(u, true)
		}
	},
}

// shardRun carries the cross-function state of one ShardWrite run.
type shardRun struct {
	pass       *Pass
	decls      map[*types.Func]*declOf
	recvShared map[*types.Func]bool
}

// shardUnit is one function body to analyze: a worker literal (fn nil)
// or a reachable declared function.
type shardUnit struct {
	fn    *types.Func
	file  *File
	ftype *ast.FuncType
	recv  *ast.FieldList
	body  *ast.BlockStmt
}

// shardCtx tracks, per worker function, which locals alias shard-owned
// memory and which ints are derived from the shard range.
type shardCtx struct {
	pass   *Pass
	file   *File
	report bool
	owned  map[types.Object]bool
	taint  map[types.Object]bool
}

// analyze walks one unit. Ordinary parameters are shard-owned and
// tainted by the pool's contract; the receiver is owned only when no
// call site in the worker set passes it a shared value. With report
// set it emits diagnostics; it always returns whether the walk grew
// the recvShared set.
func (r *shardRun) analyze(u shardUnit, report bool) bool {
	c := &shardCtx{
		pass:   r.pass,
		file:   u.file,
		report: report,
		owned:  map[types.Object]bool{},
		taint:  map[types.Object]bool{},
	}
	for _, fld := range u.ftype.Params.List {
		for _, name := range fld.Names {
			if o := r.pass.Info.Defs[name]; o != nil {
				c.owned[o] = true
				c.taint[o] = true
			}
		}
	}
	if u.recv != nil && len(u.recv.List) > 0 && !r.recvShared[u.fn] {
		for _, name := range u.recv.List[0].Names {
			if o := r.pass.Info.Defs[name]; o != nil {
				c.owned[o] = true
			}
		}
	}
	changed := false
	inspectStack(u.body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested closures are not the worker's phase body
		case *ast.CallExpr:
			// Propagate receiver ownership into method callees.
			if fn := calleeOf(r.pass.Info, n); fn != nil {
				if d := r.decls[fn]; d != nil && d.decl.Recv != nil {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if !c.refOwned(sel.X) && !r.recvShared[fn] {
							r.recvShared[fn] = true
							changed = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			c.assign(n, stack)
		case *ast.IncDecStmt:
			c.checkWrite(n.X, stack)
		case *ast.RangeStmt:
			c.rangeVars(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						o := r.pass.Info.Defs[name]
						if o == nil {
							continue
						}
						c.owned[o] = true // var declarations bind fresh locals
						if i < len(vs.Values) {
							c.taint[o] = c.exprTainted(vs.Values[i])
							if isRefType(o.Type()) {
								c.owned[o] = c.refOwned(vs.Values[i])
							}
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// assign records definitions/updates of locals and checks non-ident
// write targets.
func (c *shardCtx) assign(as *ast.AssignStmt, stack []ast.Node) {
	matched := len(as.Lhs) == len(as.Rhs)
	for i, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			o := objOf(c.pass.Info, id)
			if o == nil {
				continue
			}
			if matched {
				rhs := as.Rhs[i]
				c.taint[o] = c.exprTainted(rhs)
				if isRefType(o.Type()) {
					c.owned[o] = c.refOwned(rhs)
				} else {
					c.owned[o] = true // value copy: writes stay local
				}
			} else {
				// Multi-value call: results are data, locals are fresh.
				c.taint[o] = false
				c.owned[o] = !isRefType(o.Type())
			}
			continue
		}
		c.checkWrite(lhs, stack)
	}
}

// rangeVars classifies a range statement's key and value bindings.
func (c *shardCtx) rangeVars(rs *ast.RangeStmt) {
	bind := func(e ast.Expr, isKey bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		o := objOf(c.pass.Info, id)
		if o == nil {
			return
		}
		// Range keys are positions within the ranged container, not
		// shard-derived offsets; values are element copies unless the
		// element itself is a reference into shared state.
		c.taint[o] = false
		if isKey || !isRefType(o.Type()) {
			c.owned[o] = true
		} else {
			c.owned[o] = c.refOwned(rs.X)
		}
	}
	if rs.Key != nil {
		bind(rs.Key, true)
	}
	if rs.Value != nil {
		bind(rs.Value, false)
	}
}

// checkWrite flags a write whose target peels to a shared root with no
// tainted index on the path.
func (c *shardCtx) checkWrite(lhs ast.Expr, stack []ast.Node) {
	if !c.report || c.refOwned(lhs) {
		return
	}
	if modeGated(c.pass.Info, stack) {
		return // sequential arm of a construction-time mode split
	}
	c.pass.Reportf(c.file, lhs.Pos(),
		"write to shared %s bypasses the shard-owned range: no index on the path is derived from the worker's [lo,hi) span (route through per-worker scratch or waive at a true transfer point)",
		writeTargetString(lhs))
}

// refOwned reports whether e references shard-owned memory: it peels
// index/selector/star/slice layers and succeeds when the root is an
// owned local or when some index along the path is shard-derived.
func (c *shardCtx) refOwned(e ast.Expr) bool {
	taintedIdx := false
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return false
			}
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			if c.exprTainted(t.Index) {
				taintedIdx = true
			}
			e = t.X
		case *ast.SliceExpr:
			if t.Low != nil && c.exprTainted(t.Low) {
				taintedIdx = true
			}
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.CompositeLit:
			return true // fresh memory
		case *ast.Ident:
			o := objOf(c.pass.Info, t)
			if o == nil {
				return false
			}
			if _, isPkg := o.(*types.PkgName); isPkg {
				return taintedIdx // package-level state is shared
			}
			return c.owned[o] || taintedIdx
		default:
			return false
		}
	}
}

// exprTainted reports whether e is derived from the shard range:
// parameters and their arithmetic. Taint flows through operators,
// conversions, and calls (a helper mapping shard positions to node
// ids keeps the derivation), but not through memory loads — a value
// read out of a slice or field is data, not a shard-derived index.
func (c *shardCtx) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := objOf(c.pass.Info, e)
		return o != nil && c.taint[o]
	case *ast.BinaryExpr:
		return c.exprTainted(e.X) || c.exprTainted(e.Y)
	case *ast.UnaryExpr:
		return c.exprTainted(e.X)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if c.exprTainted(a) {
				return true
			}
		}
		return false
	}
	return false
}

// isRefType reports whether writes through a value of type t reach
// memory beyond the local copy.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// writeTargetString renders a compact description of a write target
// for diagnostics: the root selector path without indices.
func writeTargetString(e ast.Expr) string {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				return id.Name + "." + t.Sel.Name
			}
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return "state"
		}
	}
}
