package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("node-0")
	b := root.Split("node-1")
	a2 := New(7).Split("node-0")
	for i := 0; i < 100; i++ {
		av, bv, a2v := a.Uint64(), b.Uint64(), a2.Uint64()
		if av == bv {
			t.Fatalf("split children collided at draw %d", i)
		}
		if av != a2v {
			t.Fatalf("equal split names not reproducible at draw %d", i)
		}
	}
}

func TestSplitDoesNotDisturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	_ = a.Split("y")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split mutated parent state")
		}
	}
}

func TestSplitIndex(t *testing.T) {
	root := New(3)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		v := root.SplitIndex(i).Uint64()
		if seen[v] {
			t.Fatalf("SplitIndex children collided at index %d", i)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(11)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const mean, draws = 2.5, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean) > 0.05*mean {
		t.Errorf("Exp sample mean %v, want about %v", got, mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 1.5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(23)
	const mean, sd, draws = 4.0, 2.0, 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.Norm(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / draws
	variance := sumSq/draws - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Norm mean %v, want about %v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Errorf("Norm stddev %v, want about %v", math.Sqrt(variance), sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		p := s.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d, want %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(37)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bool(%v) rate %v", p, got)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(4096)
	}
}
