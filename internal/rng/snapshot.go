package rng

import "nocsim/internal/snap"

// The checkpoint codec serializes a Source as its four state words
// (State/SetState); the pinned golden encoding in state_test.go guards
// the byte layout.

func init() {
	snap.Cover(Source{}, snap.Coverage{
		Serialized: []string{"s"},
	})
}

// Snapshot writes the stream's state words.
func (s *Source) Snapshot(w *snap.Writer) {
	for _, v := range s.s {
		w.U64(v)
	}
}

// Restore overwrites the stream's state with words written by Snapshot.
func (s *Source) Restore(r *snap.Reader) {
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	if r.Err() != nil {
		return
	}
	s.SetState(st)
}
