package rng

import (
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// The checkpoint codec serializes every Source as its State() words in
// little-endian order. These constants pin that encoding: if New's
// seeding, the state layout, or the byte order ever changes, old
// checkpoints silently stop replaying the same streams — this test
// turns that into a loud failure instead.
const (
	goldenSeed = 42
	// goldenStateHex is the LE byte encoding of New(42).State().
	goldenStateHex = "956eeb2f2632d7bd03f166b233e3ef28529f0f135767524794e34a0effe11c58"
)

var goldenState = [4]uint64{
	0xbdd732262feb6e95, 0x28efe333b266f103,
	0x47526757130f9f52, 0x581ce1ff0e4ae394,
}

// goldenDraws pins the first outputs from the golden state, so the
// generator algorithm itself (not just the seeding) is covered.
var goldenDraws = [4]uint64{
	0x15780b2e0c2ec716, 0x6104d9866d113a7e,
	0xae17533239e499a1, 0xecb8ad4703b360a1,
}

func encodeState(st [4]uint64) string {
	var b [32]byte
	for i, w := range st {
		binary.LittleEndian.PutUint64(b[i*8:], w)
	}
	return hex.EncodeToString(b[:])
}

func decodeState(s string) [4]uint64 {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 32 {
		panic("rng: bad golden state hex")
	}
	var st [4]uint64
	for i := range st {
		st[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return st
}

func TestStateGoldenEncoding(t *testing.T) {
	s := New(goldenSeed)
	if got := s.State(); got != goldenState {
		t.Errorf("New(%d).State() = %#x, want %#x", goldenSeed, got, goldenState)
	}
	if got := encodeState(s.State()); got != goldenStateHex {
		t.Errorf("encoded state = %s, want %s", got, goldenStateHex)
	}
	for i, want := range goldenDraws {
		if got := s.Uint64(); got != want {
			t.Errorf("draw %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestStateRoundTripContinuesStream(t *testing.T) {
	// Serialize mid-stream, keep drawing on the original, and check a
	// restored copy produces the identical continuation.
	s := New(goldenSeed)
	for i := 0; i < 1000; i++ {
		s.Uint64()
	}
	saved := decodeState(encodeState(s.State()))

	var want [64]uint64
	for i := range want {
		want[i] = s.Uint64()
	}

	var restored Source
	restored.SetState(saved)
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("restored draw %d = %#x, want %#x", i, got, w)
		}
	}
	// And the restored stream's own state now matches the original's.
	if restored.State() != s.State() {
		t.Error("restored stream diverged from original after identical draws")
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetState accepted the all-zero state")
		}
	}()
	var s Source
	s.SetState([4]uint64{})
}
