// Package rng provides a small, fast, deterministic pseudo-random number
// generator with cheap stream splitting.
//
// Every stochastic component of the simulator draws from an explicit
// *rng.Source rather than a global generator, so an entire experiment is
// reproducible from a single root seed: the simulator derives one
// independent stream per node, per application, and per mapper by name.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference implementations by Blackman and Vigna. It is not
// cryptographically secure; it is meant for simulation workloads.
package rng

import "math"

// Source is a deterministic random stream. The zero value is not valid;
// construct with New or derive with Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// only for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give streams that
// are, for simulation purposes, independent.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro256** state must not be all-zero; splitmix64 guarantees that
	// for any seed, but keep the guard explicit for clarity.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// State returns the generator's internal xoshiro256** state, for
// checkpoint serialization. Restoring it with SetState resumes the
// stream at exactly the same point.
func (s *Source) State() [4]uint64 { return s.s }

// SetState overwrites the generator's internal state with one captured
// by State. It panics on an all-zero state, which xoshiro256** can
// never reach from a valid seed — such a state can only come from a
// corrupt or forged checkpoint.
func (s *Source) SetState(st [4]uint64) {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		panic("rng: SetState with all-zero state")
	}
	s.s = st
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split derives a new independent stream from s, keyed by name, without
// disturbing s's own sequence. Equal names on equal parent states yield
// equal children, which is what makes experiment components individually
// reproducible.
func (s *Source) Split(name string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	x := s.s[0] ^ h
	child := New(splitmix64(&x))
	return child
}

// SplitIndex derives a new independent stream keyed by an integer index.
func (s *Source) SplitIndex(i int) *Source {
	x := s.s[0] ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	return New(splitmix64(&x))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0); Float64 never returns 1, but can return 0.
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(shape alpha, minimum xm) distributed value,
// used for the power-law locality model.
func (s *Source) Pareto(alpha, xm float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
