package par

import (
	"unsafe"

	"nocsim/internal/noc"
)

// CacheLine is the assumed coherence granularity. 64 bytes is correct
// for every x86-64 and almost every arm64 part; a wrong guess costs
// only a little padding, never correctness.
const CacheLine = 64

// PaddedStats is one worker shard's counter block, padded so that
// adjacent shards in a []PaddedStats never share a cache line. It
// replaces the fabrics' hand-counted `_ [40]byte` pads, which silently
// went stale whenever noc.Stats gained a field; here the pad is
// computed from unsafe.Sizeof and checked at compile time.
type PaddedStats struct {
	Stats noc.Stats
	_     [statsPad]byte
}

// statsPad rounds noc.Stats up to a whole number of cache lines.
const statsPad = (CacheLine - unsafe.Sizeof(noc.Stats{})%CacheLine) % CacheLine

// Compile-time assertion: PaddedStats is an exact multiple of a cache
// line (the array length is negative, and the build breaks, if not).
var _ [0]byte = [unsafe.Sizeof(PaddedStats{}) % CacheLine]byte{}
