package par

import (
	"testing"
	"unsafe"
)

func TestShardRange(t *testing.T) {
	cases := []struct {
		n, workers int
	}{
		{0, 1}, {1, 1}, {16, 1}, {16, 4}, {17, 4}, {3, 8}, {1024, 7},
	}
	for _, c := range cases {
		covered := 0
		prevHi := 0
		for w := 0; w < c.workers; w++ {
			lo, hi := shardRange(c.n, c.workers, w)
			if lo > hi {
				t.Errorf("n=%d w=%d/%d: lo %d > hi %d", c.n, w, c.workers, lo, hi)
			}
			if lo != prevHi && lo < c.n {
				t.Errorf("n=%d w=%d/%d: gap before shard (lo %d, prev hi %d)", c.n, w, c.workers, lo, prevHi)
			}
			if hi > prevHi {
				prevHi = hi
			}
			covered += hi - lo
		}
		if covered != c.n || prevHi != c.n {
			t.Errorf("n=%d workers=%d: shards cover %d ending at %d", c.n, c.workers, covered, prevHi)
		}
	}
}

// TestRunCoversAndJoins checks the barrier contract: every index is
// visited exactly once per phase, by the worker owning its shard, and
// Run does not return before all shards complete.
func TestRunCoversAndJoins(t *testing.T) {
	const n, workers, phases = 1037, 4, 200
	p := New(workers)
	defer p.Close()
	owner := make([]int32, n)
	visits := make([]int32, n)
	for phase := 0; phase < phases; phase++ {
		p.Run(n, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				owner[i] = int32(w)
				visits[i]++
			}
		})
		// Between phases only the caller runs: reading the arrays here
		// exercises the barrier (the race detector would flag an
		// unjoined worker still writing).
		for i := 0; i < n; i++ {
			if visits[i] != int32(phase+1) {
				t.Fatalf("phase %d: index %d visited %d times", phase, i, visits[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		wantLo, wantHi := shardRange(n, workers, int(owner[i]))
		if i < wantLo || i >= wantHi {
			t.Errorf("index %d owned by worker %d whose shard is [%d,%d)", i, owner[i], wantLo, wantHi)
		}
	}
}

// TestDeterministicSums: per-shard accumulation into PaddedStats slots
// merges to the same totals at any pool width.
func TestDeterministicSums(t *testing.T) {
	const n = 513
	sum := func(workers int) int64 {
		p := New(workers)
		defer p.Close()
		shards := make([]PaddedStats, workers)
		for round := 0; round < 50; round++ {
			p.Run(n, func(lo, hi, w int) {
				for i := lo; i < hi; i++ {
					shards[w].Stats.FlitsInjected += int64(i)
				}
			})
		}
		var total int64
		for i := range shards {
			total += shards[i].Stats.FlitsInjected
		}
		return total
	}
	want := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); got != want {
			t.Errorf("workers=%d: total %d, want %d", w, got, want)
		}
	}
}

func TestWorkersAccessorAndSingle(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	ran := 0
	p.Run(7, func(lo, hi, w int) {
		if lo != 0 || hi != 7 || w != 0 {
			t.Errorf("single-worker shard = [%d,%d) on worker %d", lo, hi, w)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("fn ran %d times, want 1", ran)
	}
}

func TestCloseIdempotentAndRunPanics(t *testing.T) {
	p := New(3)
	p.Close()
	p.Close() // must not panic
	defer func() {
		if recover() == nil {
			t.Error("Run after Close did not panic")
		}
	}()
	p.Run(4, func(lo, hi, w int) {})
}

func TestNewRejectsZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// TestPaddedStatsAlignment pins the false-sharing contract: shard
// slots are whole cache lines, so two workers' counters never share
// one.
func TestPaddedStatsAlignment(t *testing.T) {
	if sz := unsafe.Sizeof(PaddedStats{}); sz%CacheLine != 0 {
		t.Errorf("PaddedStats size %d is not a multiple of %d", sz, CacheLine)
	}
	shards := make([]PaddedStats, 2)
	a := uintptr(unsafe.Pointer(&shards[0].Stats))
	b := uintptr(unsafe.Pointer(&shards[1].Stats))
	if (b-a)%CacheLine != 0 {
		t.Errorf("adjacent shards %d bytes apart, not cache-line aligned", b-a)
	}
}
