package par

import "nocsim/internal/snap"

func init() {
	// The Stats block is encoded by each fabric as one merged total (and
	// restored into shard 0), so shard boundaries never leak into a
	// snapshot — the same property that keeps parallel runs byte-identical
	// to sequential ones keeps their checkpoints byte-identical too.
	snap.Cover(PaddedStats{}, snap.Coverage{
		Serialized: []string{"Stats"},
	})
}
