// Package par is the simulator's only sanctioned intra-simulation
// concurrency primitive: a persistent shard-worker pool with a
// reusable two-phase barrier. A fabric (or the system simulator)
// creates one Pool when it is assembled and then runs every per-cycle
// phase through Pool.Run, which wakes the long-lived workers over a
// channel-pair barrier instead of spawning fresh goroutines twice per
// cycle.
//
// Determinism contract: Run splits [0, n) into the same contiguous,
// worker-indexed ranges on every call (shard i is always
// [i*ceil(n/w), ...)), and it returns only after every shard has
// finished. Workers touch disjoint state (their node range plus their
// own padded counter shard), so no output can observe the
// interleaving: a fabric stepped at Workers=1 and Workers=N produces
// byte-identical results. The nocvet goroutine rule whitelists this
// package (alongside internal/runner) so that every goroutine in the
// tree lives in one of the two audited pools.
package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// job is one barrier phase: fn applied to every shard of [0, n).
type job struct {
	fn func(lo, hi, worker int)
	n  int
}

// state carries everything the worker goroutines reference. It is
// split from Pool so that the automatic cleanup can fire once the
// Pool handle itself becomes unreachable: workers hold *state, never
// *Pool.
type state struct {
	workers int
	wake    []chan job // one per helper worker (worker IDs 1..workers-1)
	done    chan struct{}
	quit    chan struct{}
	stopped atomic.Bool
}

// shutdown stops the workers exactly once; safe to call from Close and
// from the GC cleanup.
func (st *state) shutdown() {
	if st.stopped.CompareAndSwap(false, true) {
		close(st.quit)
	}
}

// Pool is a persistent shard-worker pool. The zero value is not
// usable; construct with New.
type Pool struct {
	st *state
}

// New creates a pool of the given width. It starts workers-1 helper
// goroutines (the caller's goroutine always executes shard 0), which
// sleep between Run calls and exit on Close. A pool that is dropped
// without Close is reaped by a GC cleanup, so transient fabrics cannot
// leak goroutines; long-lived owners should still Close deterministically.
func New(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("par: pool width %d, want >= 1", workers))
	}
	st := &state{
		workers: workers,
		wake:    make([]chan job, workers-1),
		done:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
	for i := range st.wake {
		st.wake[i] = make(chan job, 1)
		go st.work(i+1, st.wake[i])
	}
	p := &Pool{st: st}
	runtime.AddCleanup(p, func(st *state) { st.shutdown() }, st)
	return p
}

// work is the helper-worker loop: sleep until a phase arrives, execute
// this worker's shard, signal the barrier.
func (st *state) work(worker int, wake chan job) {
	for {
		select {
		case j := <-wake:
			lo, hi := shardRange(j.n, st.workers, worker)
			if lo < hi {
				j.fn(lo, hi, worker)
			}
			st.done <- struct{}{}
		case <-st.quit:
			return
		}
	}
}

// Workers returns the pool width (the number of shards Run produces).
func (p *Pool) Workers() int { return p.st.workers }

// Run executes one barrier phase: fn(lo, hi, worker) over the fixed
// contiguous split of [0, n) into Workers() shards, worker w taking
// shard w. The calling goroutine executes shard 0 itself; Run returns
// only after every shard has completed, so successive phases of a
// cycle are fully ordered.
func (p *Pool) Run(n int, fn func(lo, hi, worker int)) {
	st := p.st
	if st.stopped.Load() {
		panic("par: Run on closed Pool")
	}
	j := job{fn: fn, n: n}
	for _, c := range st.wake {
		c <- j
	}
	if lo, hi := shardRange(n, st.workers, 0); lo < hi {
		fn(lo, hi, 0)
	}
	for range st.wake {
		<-st.done
	}
}

// Close stops the helper workers. It is idempotent; Run must not be
// called afterwards.
func (p *Pool) Close() { p.st.shutdown() }

// shardRange returns worker w's contiguous slice of [0, n): the same
// ceil(n/workers) split at any n, so shard boundaries — and therefore
// per-shard counter contents — are a pure function of (n, workers).
func shardRange(n, workers, w int) (lo, hi int) {
	per := (n + workers - 1) / workers
	lo = w * per
	hi = lo + per
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
