// Package bench is the shared schema of the repository's benchmark
// documents (BENCH_step.json): the shapes cmd/benchjson writes and
// cmd/benchdiff compares. Keeping the schema in one package means the
// writer and the drift gate can never disagree about a field name, and
// a schema change is one diff reviewed in one place.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// Record is one benchmark cell: a (case, workers) point of the
// fabric-stepping matrix.
type Record struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitHopsPerSec float64 `json:"flit_hops_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
}

// SnapRecord is one checkpoint-codec cell: the cost of encoding a full
// simulator state, the cost of rebuilding one from the blob, and the
// blob size the store pays per entry.
type SnapRecord struct {
	Name       string  `json:"name"`
	BlobBytes  float64 `json:"blob_bytes"`
	SnapshotNs float64 `json:"snapshot_ns"`
	RestoreNs  float64 `json:"restore_ns"`
}

// SweepRecord reports the warm-start sweep benchmark: the same
// static-rate sweep executed cold (every point re-simulates its warmup
// prefix) and warm (all points fork one shared checkpoint).
type SweepRecord struct {
	Points             int     `json:"points"`
	WarmupCycles       int64   `json:"warmup_cycles"`
	MeasuredCycles     int64   `json:"measured_cycles_per_point"`
	ColdTotalCycles    int64   `json:"cold_total_cycles"`
	WarmTotalCycles    int64   `json:"warm_total_cycles"`
	ColdOverWarmCycles float64 `json:"cold_over_warm_cycles"`
	ColdPointsPerSec   float64 `json:"cold_points_per_sec"`
	WarmPointsPerSec   float64 `json:"warm_points_per_sec"`
}

// Environment identifies the machine and toolchain a benchmark file
// was produced on; numbers are only comparable within one environment.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// Run is one labeled sweep of the benchmark matrix.
type Run struct {
	Label     string       `json:"label"`
	Records   []Record     `json:"records"`
	Snapshots []SnapRecord `json:"snapshots,omitempty"`
	Sweep     *SweepRecord `json:"sweep,omitempty"`
}

// File is the whole document: environment metadata plus the
// accumulated labeled runs. The legacy single-run form (a top-level
// "records" array) is still read and migrated to a run labeled
// "legacy" on the next write.
type File struct {
	Env  Environment `json:"env"`
	Runs []Run       `json:"runs"`

	// LegacyRecords captures the pre-labeled-run schema on read; it is
	// never written back.
	LegacyRecords []Record `json:"records,omitempty"`
}

// Load reads a benchmark document and migrates the legacy schema. A
// missing file yields an empty document, so accumulating writers can
// start from nothing.
func Load(path string) (File, error) {
	var doc File
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(doc.LegacyRecords) > 0 {
		doc.Runs = append([]Run{{Label: "legacy", Records: doc.LegacyRecords}}, doc.Runs...)
		doc.LegacyRecords = nil
	}
	return doc, nil
}

// Run returns the run with the given label, or the most recent run
// when label is empty; nil when absent.
func (f *File) Run(label string) *Run {
	if label == "" {
		if len(f.Runs) == 0 {
			return nil
		}
		return &f.Runs[len(f.Runs)-1]
	}
	for i := range f.Runs {
		if f.Runs[i].Label == label {
			return &f.Runs[i]
		}
	}
	return nil
}

// Upsert replaces the run with the same label, or appends.
func Upsert(runs []Run, r Run) []Run {
	for i := range runs {
		if runs[i].Label == r.Label {
			runs[i] = r
			return runs
		}
	}
	return append(runs, r)
}
