// Package traffic provides the classic open-loop synthetic traffic
// patterns of the NoC literature (uniform random, transpose,
// bit-complement, hotspot, nearest-neighbour) and an injector that
// drives a fabric with Bernoulli arrivals at a configured rate.
//
// The paper's evaluation is closed-loop (real-application workloads
// through the CPU/cache model), but open-loop load sweeps are the
// standard way to characterise a router architecture in isolation —
// they produce the load-latency curves and saturation throughput that
// simulators like NOCulator and BookSim report, and the `loadlat`
// experiment uses them to compare the bufferless and buffered fabrics
// directly.
package traffic

import (
	"fmt"

	"nocsim/internal/noc"
	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

// Pattern maps a source node to a destination for each generated packet.
type Pattern interface {
	// Dst returns the destination for a packet from src. It may be
	// stochastic (drawing from r) or deterministic.
	Dst(src int, r *rng.Source) int
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform sends each packet to a uniformly random node (excluding the
// source).
type Uniform struct {
	Nodes int
}

// Dst draws a destination uniformly.
func (u Uniform) Dst(src int, r *rng.Source) int {
	for {
		d := r.Intn(u.Nodes)
		if d != src {
			return d
		}
	}
}

// Name identifies the pattern.
func (Uniform) Name() string { return "uniform" }

// Transpose sends (x, y) to (y, x): the classic adversarial pattern for
// dimension-order routing.
type Transpose struct {
	Top *topology.Topology
}

// Dst mirrors the source's coordinates.
func (t Transpose) Dst(src int, _ *rng.Source) int {
	x, y := t.Top.Coord(src)
	// A non-square mesh clamps to valid coordinates.
	nx, ny := y, x
	if nx >= t.Top.Width() {
		nx = t.Top.Width() - 1
	}
	if ny >= t.Top.Height() {
		ny = t.Top.Height() - 1
	}
	return t.Top.Node(nx, ny)
}

// Name identifies the pattern.
func (Transpose) Name() string { return "transpose" }

// BitComplement sends node i to node (N-1-i): maximal average distance.
type BitComplement struct {
	Nodes int
}

// Dst complements the node index.
func (b BitComplement) Dst(src int, _ *rng.Source) int { return b.Nodes - 1 - src }

// Name identifies the pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Hotspot sends a fraction of traffic to a single hot node and the rest
// uniformly: models a contended shared resource (§7 "hot-spots").
type Hotspot struct {
	Nodes int
	Hot   int
	// Frac is the probability a packet targets the hot node; 0 means 0.2.
	Frac float64
}

// Dst draws the hot node with probability Frac, else uniform.
func (h Hotspot) Dst(src int, r *rng.Source) int {
	frac := h.Frac
	if frac == 0 {
		frac = 0.2
	}
	if h.Hot != src && r.Bool(frac) {
		return h.Hot
	}
	for {
		d := r.Intn(h.Nodes)
		if d != src {
			return d
		}
	}
}

// Name identifies the pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Neighbor sends each packet one hop east (wrapping by node index):
// minimal-distance traffic, the best case for any topology.
type Neighbor struct {
	Top *topology.Topology
}

// Dst picks the east neighbour, wrapping along the row.
func (n Neighbor) Dst(src int, _ *rng.Source) int {
	if d := n.Top.Neighbor(src, topology.East); d >= 0 {
		return d
	}
	x, y := n.Top.Coord(src)
	_ = x
	return n.Top.Node(0, y)
}

// Name identifies the pattern.
func (Neighbor) Name() string { return "neighbor" }

// Injector drives a fabric open-loop: every cycle, each node generates a
// packet with probability Rate (flit-normalised), addressed by Pattern.
type Injector struct {
	// Rate is the offered load in flits per node per cycle.
	Rate float64
	// PacketLen is the packet size in flits; 0 means 1.
	PacketLen int
	// Pattern addresses the packets.
	Pattern Pattern
	// MaxQueue bounds each NIC's backlog so an oversaturated sweep
	// cannot grow memory without bound; 0 means 64 flits.
	MaxQueue int

	srcs []*rng.Source
}

// NewInjector builds an injector for n nodes.
func NewInjector(n int, rate float64, pattern Pattern, seed uint64) *Injector {
	inj := &Injector{Rate: rate, PacketLen: 1, Pattern: pattern, MaxQueue: 64}
	root := rng.New(seed ^ 0x7aff1c)
	inj.srcs = make([]*rng.Source, n)
	for i := range inj.srcs {
		inj.srcs[i] = root.SplitIndex(i)
	}
	return inj
}

// Step generates one cycle of traffic into the fabric.
func (inj *Injector) Step(net noc.Network) {
	n := net.Topology().Nodes()
	pkLen := inj.PacketLen
	if pkLen <= 0 {
		pkLen = 1
	}
	perPacket := inj.Rate / float64(pkLen)
	cycle := net.Cycle()
	for node := 0; node < n; node++ {
		r := inj.srcs[node]
		if !r.Bool(perPacket) {
			continue
		}
		nic := net.NIC(node)
		if nic.QueueLen() >= inj.MaxQueue {
			continue // saturated: drop at the source, like an open-loop sim
		}
		dst := inj.Pattern.Dst(node, r)
		nic.Send(dst, noc.Request, 0, pkLen, cycle)
	}
}

// Run drives the fabric for the given cycles and returns the stats delta.
func (inj *Injector) Run(net noc.Network, cycles int64) noc.Stats {
	before := net.Stats()
	for i := int64(0); i < cycles; i++ {
		inj.Step(net)
		net.Step()
	}
	return net.Stats().Sub(before)
}

// LoadPoint is one sample of a load-latency sweep.
type LoadPoint struct {
	// Offered is the configured injection rate (flits/node/cycle);
	// Accepted is the measured ejection throughput.
	Offered, Accepted float64
	// Latency is the average packet latency (enqueue to eject).
	Latency float64
	// Deflections is the deflection rate per link traversal.
	Deflections float64
}

func (p LoadPoint) String() string {
	return fmt.Sprintf("offered %.3f accepted %.3f latency %.1f", p.Offered, p.Accepted, p.Latency)
}

// Sweep measures the load-latency curve of a fabric factory across the
// given rates. Each point warms up for warmup cycles and measures for
// measure cycles on a fresh fabric.
func Sweep(mk func() noc.Network, pattern func(noc.Network) Pattern, rates []float64,
	pkLen int, warmup, measure int64, seed uint64) []LoadPoint {
	out := make([]LoadPoint, 0, len(rates))
	for _, rate := range rates {
		net := mk()
		inj := NewInjector(net.Topology().Nodes(), rate, pattern(net), seed)
		inj.PacketLen = pkLen
		inj.Run(net, warmup)
		delta := inj.Run(net, measure)
		nodes := float64(net.Topology().Nodes())
		out = append(out, LoadPoint{
			Offered:     rate,
			Accepted:    float64(delta.FlitsEjected) / (float64(measure) * nodes),
			Latency:     delta.AvgPacketLatency(),
			Deflections: delta.DeflectionRate(),
		})
	}
	return out
}

// Saturation returns the offered load at which latency first exceeds
// latencyCap, or the last offered rate if it never does: a simple
// operational definition of saturation throughput.
func Saturation(points []LoadPoint, latencyCap float64) float64 {
	for _, p := range points {
		if p.Latency > latencyCap {
			return p.Offered
		}
	}
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].Offered
}
