package traffic

import (
	"math"
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

func mesh(k int) *topology.Topology { return topology.NewSquare(topology.Mesh, k) }

func TestUniformExcludesSelfAndCovers(t *testing.T) {
	u := Uniform{Nodes: 16}
	r := rng.New(1)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		d := u.Dst(3, r)
		if d == 3 {
			t.Fatal("uniform pattern returned the source")
		}
		if d < 0 || d >= 16 {
			t.Fatalf("destination %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 15 {
		t.Errorf("uniform covered %d destinations, want 15", len(seen))
	}
}

func TestTranspose(t *testing.T) {
	top := mesh(4)
	p := Transpose{Top: top}
	if got := p.Dst(top.Node(1, 3), nil); got != top.Node(3, 1) {
		t.Errorf("transpose(1,3) = %d, want node(3,1)", got)
	}
	// Diagonal nodes map to themselves.
	if got := p.Dst(top.Node(2, 2), nil); got != top.Node(2, 2) {
		t.Errorf("transpose diagonal moved: %d", got)
	}
}

func TestBitComplement(t *testing.T) {
	b := BitComplement{Nodes: 16}
	if b.Dst(0, nil) != 15 || b.Dst(15, nil) != 0 || b.Dst(5, nil) != 10 {
		t.Error("bit-complement mapping wrong")
	}
}

func TestHotspotFraction(t *testing.T) {
	h := Hotspot{Nodes: 16, Hot: 7, Frac: 0.3}
	r := rng.New(9)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if h.Dst(0, r) == 7 {
			hot++
		}
	}
	got := float64(hot) / draws
	// 0.3 directly + (0.7 * 1/15) via the uniform remainder.
	want := 0.3 + 0.7/15
	if math.Abs(got-want) > 0.02 {
		t.Errorf("hotspot fraction %.3f, want about %.3f", got, want)
	}
}

func TestNeighborWraps(t *testing.T) {
	top := mesh(4)
	n := Neighbor{Top: top}
	if got := n.Dst(top.Node(1, 2), nil); got != top.Node(2, 2) {
		t.Errorf("neighbor(1,2) = %d, want east", got)
	}
	if got := n.Dst(top.Node(3, 2), nil); got != top.Node(0, 2) {
		t.Errorf("neighbor at east edge = %d, want row wrap", got)
	}
}

func TestInjectorRate(t *testing.T) {
	top := mesh(4)
	net := bless.New(bless.Config{Topology: top})
	inj := NewInjector(16, 0.1, Uniform{Nodes: 16}, 3)
	delta := inj.Run(net, 20000)
	offered := float64(delta.FlitsInjected) / (20000 * 16)
	if math.Abs(offered-0.1) > 0.02 {
		t.Errorf("injected rate %.3f, want ~0.1", offered)
	}
}

func TestInjectorBoundsQueues(t *testing.T) {
	top := mesh(4)
	net := bless.New(bless.Config{Topology: top})
	inj := NewInjector(16, 3.0, Uniform{Nodes: 16}, 3) // far past saturation
	inj.MaxQueue = 32
	inj.Run(net, 5000)
	for i := 0; i < 16; i++ {
		if q := net.NIC(i).QueueLen(); q > 33 {
			t.Fatalf("node %d backlog %d exceeds bound", i, q)
		}
	}
}

func TestSweepShapes(t *testing.T) {
	rates := []float64{0.02, 0.1, 0.3, 0.6}
	pts := Sweep(
		func() noc.Network { return bless.New(bless.Config{Topology: mesh(4)}) },
		func(n noc.Network) Pattern { return Uniform{Nodes: n.Topology().Nodes()} },
		rates, 1, 2000, 6000, 5)
	if len(pts) != len(rates) {
		t.Fatalf("points = %d, want %d", len(pts), len(rates))
	}
	// Latency must be non-decreasing-ish with load; the last point must
	// exceed the first.
	if pts[len(pts)-1].Latency <= pts[0].Latency {
		t.Errorf("latency did not grow with load: %v", pts)
	}
	// At low load, accepted tracks offered.
	if math.Abs(pts[0].Accepted-pts[0].Offered) > 0.01 {
		t.Errorf("low-load accepted %.3f != offered %.3f", pts[0].Accepted, pts[0].Offered)
	}
}

func TestBlessSaturatesBelowBuffered(t *testing.T) {
	// The classic result: under uniform traffic the bufferless network
	// saturates earlier than the buffered one (deflections waste
	// bandwidth near saturation).
	rates := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55}
	blessPts := Sweep(
		func() noc.Network { return bless.New(bless.Config{Topology: mesh(8)}) },
		func(n noc.Network) Pattern { return Uniform{Nodes: n.Topology().Nodes()} },
		rates, 1, 2000, 6000, 7)
	bufPts := Sweep(
		func() noc.Network { return buffered.New(buffered.Config{Topology: mesh(8)}) },
		func(n noc.Network) Pattern { return Uniform{Nodes: n.Topology().Nodes()} },
		rates, 1, 2000, 6000, 7)
	bSat := Saturation(blessPts, 60)
	fSat := Saturation(bufPts, 60)
	if bSat > fSat {
		t.Errorf("bless saturation %.2f should not exceed buffered %.2f", bSat, fSat)
	}
}

func TestSaturationDetection(t *testing.T) {
	pts := []LoadPoint{{Offered: 0.1, Latency: 10}, {Offered: 0.2, Latency: 30}, {Offered: 0.3, Latency: 300}}
	if got := Saturation(pts, 100); got != 0.3 {
		t.Errorf("saturation = %v, want 0.3", got)
	}
	if got := Saturation(pts, 1000); got != 0.3 {
		t.Errorf("unsaturated sweep should return last rate, got %v", got)
	}
	if got := Saturation(nil, 10); got != 0 {
		t.Errorf("empty sweep saturation = %v, want 0", got)
	}
}

func TestPatternNames(t *testing.T) {
	top := mesh(2)
	for _, p := range []Pattern{
		Uniform{Nodes: 4}, Transpose{Top: top}, BitComplement{Nodes: 4},
		Hotspot{Nodes: 4}, Neighbor{Top: top},
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestLoadPointString(t *testing.T) {
	s := LoadPoint{Offered: 0.25, Accepted: 0.2, Latency: 12}.String()
	if s == "" {
		t.Error("empty LoadPoint string")
	}
}
