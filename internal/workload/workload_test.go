package workload

import (
	"testing"

	"nocsim/internal/app"
)

func TestCategoriesComplete(t *testing.T) {
	want := []string{"H", "M", "L", "HML", "HM", "HL", "ML"}
	if len(Categories) != len(want) {
		t.Fatalf("%d categories, want %d", len(Categories), len(want))
	}
	for i, n := range want {
		if Categories[i].Name != n {
			t.Errorf("category %d = %s, want %s", i, Categories[i].Name, n)
		}
	}
}

func TestCategoryByName(t *testing.T) {
	c, ok := CategoryByName("HL")
	if !ok || len(c.Classes) != 2 {
		t.Fatalf("HL lookup failed: %+v ok=%v", c, ok)
	}
	if _, ok := CategoryByName("ZZ"); ok {
		t.Error("unknown category found")
	}
}

func TestGenerateRespectsCategory(t *testing.T) {
	for _, cat := range Categories {
		w := Generate(cat, 64, 1)
		if len(w.Apps) != 64 {
			t.Fatalf("%s: %d apps, want 64", cat.Name, len(w.Apps))
		}
		allowed := map[app.Class]bool{}
		for _, cl := range cat.Classes {
			allowed[cl] = true
		}
		for i, p := range w.Apps {
			if p == nil {
				t.Fatalf("%s: node %d has no app", cat.Name, i)
			}
			if !allowed[p.Class()] {
				t.Errorf("%s: node %d runs %s (class %v), not allowed",
					cat.Name, i, p.Name, p.Class())
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cat, _ := CategoryByName("HML")
	a := Generate(cat, 16, 9)
	b := Generate(cat, 16, 9)
	for i := range a.Apps {
		if a.Apps[i].Name != b.Apps[i].Name {
			t.Fatal("equal seeds must give equal workloads")
		}
	}
	c := Generate(cat, 16, 10)
	same := true
	for i := range a.Apps {
		if a.Apps[i].Name != c.Apps[i].Name {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical workload")
	}
}

func TestGenerateUsesVariety(t *testing.T) {
	cat, _ := CategoryByName("HML")
	w := Generate(cat, 64, 3)
	if len(w.Names()) < 5 {
		t.Errorf("64-node HML workload uses only %d distinct apps", len(w.Names()))
	}
}

func TestBatchBalanced(t *testing.T) {
	b := Batch(70, 16, 1)
	if len(b) != 70 {
		t.Fatalf("batch size %d, want 70", len(b))
	}
	counts := map[string]int{}
	for i, w := range b {
		if w.ID != i {
			t.Errorf("workload %d has ID %d", i, w.ID)
		}
		counts[w.Category]++
	}
	for _, cat := range Categories {
		if counts[cat.Name] != 10 {
			t.Errorf("category %s has %d workloads, want 10", cat.Name, counts[cat.Name])
		}
	}
}

func TestCheckerboard(t *testing.T) {
	w := Checkerboard(app.MustByName("mcf"), app.MustByName("gromacs"), 4, 4)
	nMcf, nGro := 0, 0
	for i, p := range w.Apps {
		switch p.Name {
		case "mcf":
			nMcf++
		case "gromacs":
			nGro++
		default:
			t.Fatalf("unexpected app %s at %d", p.Name, i)
		}
	}
	if nMcf != 8 || nGro != 8 {
		t.Errorf("checkerboard has %d mcf, %d gromacs; want 8/8 (Fig. 5)", nMcf, nGro)
	}
	// Adjacent nodes must differ.
	if w.Apps[0].Name == w.Apps[1].Name {
		t.Error("checkerboard neighbours share an app")
	}
}

func TestUniformAndSingle(t *testing.T) {
	u := Uniform(app.MustByName("mcf"), 16)
	for _, p := range u.Apps {
		if p == nil || p.Name != "mcf" {
			t.Fatal("Uniform broken")
		}
	}
	s := Single(app.MustByName("mcf"), 16, 5)
	for i, p := range s.Apps {
		if (i == 5) != (p != nil) {
			t.Fatalf("Single placed app wrongly at %d", i)
		}
	}
}

func TestNames(t *testing.T) {
	w := Checkerboard(app.MustByName("mcf"), app.MustByName("gromacs"), 4, 4)
	names := w.Names()
	if len(names) != 2 {
		t.Errorf("names = %v, want 2 distinct", names)
	}
}

func TestQuadrantGroups(t *testing.T) {
	g := QuadrantGroups(8, 8, 4)
	if len(g) != 64 {
		t.Fatalf("len = %d", len(g))
	}
	// Four groups of 16.
	counts := map[int]int{}
	for _, v := range g {
		counts[v]++
	}
	if len(counts) != 4 {
		t.Fatalf("groups = %d, want 4", len(counts))
	}
	for gid, c := range counts {
		if c != 16 {
			t.Errorf("group %d has %d members, want 16", gid, c)
		}
	}
	// Node (0,0) and (3,3) share a group; (4,0) does not.
	if g[0] != g[3*8+3] {
		t.Error("corner block not grouped together")
	}
	if g[0] == g[4] {
		t.Error("adjacent blocks share a group id")
	}
}

func TestQuadrantGroupsPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dividing block did not panic")
		}
	}()
	QuadrantGroups(8, 8, 3)
}
