// Package workload constructs the multiprogrammed workloads of §6.1:
// balanced random mixes drawn from seven intensity categories
// ({H, M, L, HML, HM, HL, ML}), the pairwise checkerboard layouts of
// Figs. 5/11/12, and batches of workloads across categories like the
// paper's 700 16-core and 175 64-core sets.
package workload

import (
	"fmt"

	"nocsim/internal/app"
	"nocsim/internal/rng"
)

// Category names the intensity levels a workload draws from. An
// HL-category workload picks each node's application uniformly from the
// union of the Heavy and Light classes (§6.1).
type Category struct {
	Name    string
	Classes []app.Class
}

// Categories are the seven §6.1 workload categories.
var Categories = []Category{
	{Name: "H", Classes: []app.Class{app.Heavy}},
	{Name: "M", Classes: []app.Class{app.Medium}},
	{Name: "L", Classes: []app.Class{app.Light}},
	{Name: "HML", Classes: []app.Class{app.Heavy, app.Medium, app.Light}},
	{Name: "HM", Classes: []app.Class{app.Heavy, app.Medium}},
	{Name: "HL", Classes: []app.Class{app.Heavy, app.Light}},
	{Name: "ML", Classes: []app.Class{app.Medium, app.Light}},
}

// CategoryByName returns the named category.
func CategoryByName(name string) (Category, bool) {
	for _, c := range Categories {
		if c.Name == name {
			return c, true
		}
	}
	return Category{}, false
}

// pool returns the applications a category draws from.
func (c Category) pool() []app.Profile {
	var out []app.Profile
	for _, cl := range c.Classes {
		out = append(out, app.ByClass(cl)...)
	}
	return out
}

// Workload is one multiprogrammed assignment: one application per node
// (nil entries are idle).
type Workload struct {
	ID       int
	Category string
	Apps     []*app.Profile
	Seed     uint64
}

// Generate builds one workload of n nodes in the given category: each
// node's application is chosen uniformly at random from the category's
// class pool, as in §6.1.
func Generate(cat Category, n int, seed uint64) Workload {
	r := rng.New(seed ^ 0x3012d)
	pool := cat.pool()
	apps := make([]*app.Profile, n)
	for i := range apps {
		p := pool[r.Intn(len(pool))]
		apps[i] = &p
	}
	return Workload{Category: cat.Name, Apps: apps, Seed: seed}
}

// Batch builds `count` workloads of n nodes, cycling through all seven
// categories so the batch is balanced like the paper's 875-workload set.
func Batch(count, n int, seed uint64) []Workload {
	out := make([]Workload, count)
	for i := 0; i < count; i++ {
		cat := Categories[i%len(Categories)]
		w := Generate(cat, n, seed+uint64(i)*7919)
		w.ID = i
		out[i] = w
	}
	return out
}

// Checkerboard lays out two applications in alternating positions on a
// width x height mesh, as the Fig. 5 and Fig. 11/12 experiments do
// (8 instances each on a 4x4).
func Checkerboard(a, b app.Profile, width, height int) Workload {
	apps := make([]*app.Profile, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if (x+y)%2 == 0 {
				p := a
				apps[y*width+x] = &p
			} else {
				p := b
				apps[y*width+x] = &p
			}
		}
	}
	return Workload{
		Category: fmt.Sprintf("%s+%s", a.Name, b.Name),
		Apps:     apps,
	}
}

// Uniform assigns one application to every node.
func Uniform(p app.Profile, n int) Workload {
	apps := make([]*app.Profile, n)
	for i := range apps {
		q := p
		apps[i] = &q
	}
	return Workload{Category: p.Name, Apps: apps}
}

// Single places one application at node `pos` of an otherwise idle mesh
// (used for IPC-alone reference runs and Table 1 measurements).
func Single(p app.Profile, n, pos int) Workload {
	apps := make([]*app.Profile, n)
	q := p
	apps[pos] = &q
	return Workload{Category: "single:" + p.Name, Apps: apps}
}

// QuadrantGroups assigns nodes of a width x height mesh to square
// thread groups of blockxblock nodes (e.g. block=4 on an 8x8 mesh gives
// four 16-node groups). Used with sim.GroupMap to model multithreaded
// regional communication (§7).
func QuadrantGroups(width, height, block int) []int {
	if block <= 0 || width%block != 0 || height%block != 0 {
		panic("workload: block must divide both mesh dimensions")
	}
	groups := make([]int, width*height)
	perRow := width / block
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			groups[y*width+x] = (y/block)*perRow + x/block
		}
	}
	return groups
}

// Names lists the distinct application names in a workload.
func (w Workload) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range w.Apps {
		if p != nil && !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
	}
	return out
}
