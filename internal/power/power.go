// Package power is the NoC power model used for Fig. 16. It follows the
// structure of the BLESS router power model the paper cites [20]:
// dynamic energy is charged per micro-architectural event (buffer write,
// buffer read, crossbar traversal, arbitration, link traversal) and
// static (leakage) power per router-cycle, with buffered routers leaking
// substantially more because buffer storage dominates router area.
//
// Absolute units are arbitrary (the paper reports relative reductions);
// the event-energy ratios are set so that eliminating buffers saves
// 20-40% of router energy under load, matching the published BLESS
// results the paper builds on (§2.2).
package power

import "nocsim/internal/noc"

// Model holds per-event energies and per-router-cycle leakage, in
// arbitrary consistent units.
type Model struct {
	// EBufferWrite and EBufferRead are charged per flit entering/leaving
	// an input buffer (buffered router only).
	EBufferWrite, EBufferRead float64
	// ECrossbar is charged per flit switched to an output or ejected.
	ECrossbar float64
	// EArb is charged per arbitration decision.
	EArb float64
	// ELink is charged per flit-hop on an inter-router link.
	ELink float64
	// StaticBufferless and StaticBuffered are leakage power per router
	// per cycle; buffered routers leak more (buffer storage is 40-75% of
	// router area, §2.2).
	StaticBufferless, StaticBuffered float64
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		EBufferWrite:     1.05,
		EBufferRead:      1.05,
		ECrossbar:        0.8,
		EArb:             0.15,
		ELink:            1.0,
		StaticBufferless: 0.10,
		StaticBuffered:   0.40,
	}
}

// Report is a power breakdown for one run.
type Report struct {
	// Dynamic and Static energies over the run; Total their sum.
	Dynamic, Static, Total float64
	// Power is Total / cycles: average power draw.
	Power float64
}

// Compute evaluates the model on a fabric's event counters. buffered
// selects the leakage class.
func (m Model) Compute(s noc.Stats, nodes int, buffered bool) Report {
	var r Report
	r.Dynamic = m.EBufferWrite*float64(s.BufferWrites) +
		m.EBufferRead*float64(s.BufferReads) +
		m.ECrossbar*float64(s.CrossbarTraversals) +
		m.EArb*float64(s.Arbitrations) +
		m.ELink*float64(s.LinkTraversals)
	static := m.StaticBufferless
	if buffered {
		static = m.StaticBuffered
	}
	r.Static = static * float64(nodes) * float64(s.Cycles)
	r.Total = r.Dynamic + r.Static
	if s.Cycles > 0 {
		r.Power = r.Total / float64(s.Cycles)
	}
	return r
}

// Reduction returns the percentage power reduction of `with` relative
// to `base`: 100*(base-with)/base.
func Reduction(base, with Report) float64 {
	if base.Total == 0 {
		return 0
	}
	return 100 * (base.Total - with.Total) / base.Total
}
