package power

import (
	"testing"

	"nocsim/internal/noc"
)

// statsFor models the event profile of delivering `flits` flits at
// `hops` average hops each on one architecture over `cycles` cycles.
func statsFor(flits int64, hops float64, buffered bool, cycles int64) noc.Stats {
	h := int64(hops * float64(flits))
	s := noc.Stats{
		Cycles:             cycles,
		LinkTraversals:     h,
		CrossbarTraversals: h + flits, // +1 ejection traversal per flit
		Arbitrations:       h,
		FlitsInjected:      flits,
		FlitsEjected:       flits,
	}
	if buffered {
		s.BufferWrites = h
		s.BufferReads = h
	}
	return s
}

// Regimes measured end-to-end on the 8x8 H-workload runs (cmd/diag):
// baseline BLESS wanders ~4.2 hops/flit, the throttled network ~3.4,
// the buffered network ships minimal ~1.6.
const (
	hopsBless     = 4.2
	hopsThrottled = 3.4
	hopsBuffered  = 1.6
)

func TestBufferlessSavesPowerAtModerateLoad(t *testing.T) {
	// §2.2: eliminating buffers cuts NoC power by 20-40% on real
	// (low-to-moderate intensity) workloads, where deflections are rare.
	m := Default()
	const flits, cycles, nodes = 160_000, 50_000, 16 // 0.2 flits/node-cycle
	buf := m.Compute(statsFor(flits, hopsBuffered, true, cycles), nodes, true)
	bless := m.Compute(statsFor(flits, 1.8, false, cycles), nodes, false)
	red := Reduction(buf, bless)
	if red < 20 || red > 60 {
		t.Errorf("bufferless power reduction %.1f%% at moderate load, want 20-60%%", red)
	}
}

func TestThrottledBlessBeatsBufferedUnderLoad(t *testing.T) {
	// Fig. 16: the congestion-controlled bufferless network consumes
	// less power than the buffered one even under H workloads, by
	// roughly 5-25%.
	m := Default()
	const cycles, nodes = 100_000, 64
	const blessFlits, bufFlits = 3_700_000, 4_700_000
	thr := m.Compute(statsFor(blessFlits, hopsThrottled, false, cycles), nodes, false)
	buf := m.Compute(statsFor(bufFlits, hopsBuffered, true, cycles), nodes, true)
	// Compare per delivered flit: the architectures moved different
	// totals in the measured runs.
	perThr := thr.Total / blessFlits
	perBuf := buf.Total / bufFlits
	red := 100 * (perBuf - perThr) / perBuf
	if red < 2 || red > 30 {
		t.Errorf("throttled-vs-buffered per-flit power reduction %.1f%%, want 2-30%% (paper: up to 19%%)", red)
	}
}

func TestThrottlingReducesBlessPower(t *testing.T) {
	// Throttling reduces deflections: fewer hops per flit for the same
	// delivered traffic, hence less energy (paper: up to 15% vs BLESS).
	m := Default()
	const flits, cycles, nodes = 3_700_000, 100_000, 64
	open := m.Compute(statsFor(flits, hopsBless, false, cycles), nodes, false)
	throttled := m.Compute(statsFor(flits, hopsThrottled, false, cycles), nodes, false)
	if throttled.Total >= open.Total {
		t.Error("fewer deflected hops must cost less power")
	}
	if r := Reduction(open, throttled); r <= 3 || r > 30 {
		t.Errorf("reduction %.1f%% out of the plausible 3-30%% band", r)
	}
}

func TestStaticScalesWithNodesAndCycles(t *testing.T) {
	m := Default()
	small := m.Compute(noc.Stats{Cycles: 1000}, 16, false)
	big := m.Compute(noc.Stats{Cycles: 1000}, 64, false)
	if big.Static != 4*small.Static {
		t.Errorf("static power must scale linearly with nodes: %v vs %v", big.Static, small.Static)
	}
	long := m.Compute(noc.Stats{Cycles: 2000}, 16, false)
	if long.Static != 2*small.Static {
		t.Error("static power must scale linearly with cycles")
	}
}

func TestBufferedLeaksMore(t *testing.T) {
	m := Default()
	idle := noc.Stats{Cycles: 10000}
	bl := m.Compute(idle, 16, false)
	bf := m.Compute(idle, 16, true)
	if bf.Total <= bl.Total {
		t.Error("idle buffered router must leak more than bufferless")
	}
}

func TestReductionZeroBase(t *testing.T) {
	if Reduction(Report{}, Report{Total: 5}) != 0 {
		t.Error("zero-base reduction must be 0")
	}
}

func TestPowerIsTotalPerCycle(t *testing.T) {
	m := Default()
	r := m.Compute(statsFor(1000, 3, false, 500), 16, false)
	if r.Power != r.Total/500 {
		t.Errorf("Power = %v, want Total/cycles = %v", r.Power, r.Total/500)
	}
}
