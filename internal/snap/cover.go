package snap

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// The coverage registry: every struct type that participates in a
// snapshot declares each of its fields as either serialized or waived
// (with a reason). Verify then walks the reachable type graph from a
// set of roots and fails if any struct in a simulator package has a
// field that is neither — the reflection analogue of nocvet's
// source-level invariants, aimed at the codec: adding a field to any
// state struct without deciding its snapshot fate fails the build's
// tests, not a future bug hunt.

// Coverage is one type's declaration.
type Coverage struct {
	// Serialized lists the fields the type's Snapshot method encodes.
	Serialized []string
	// Waived maps field name -> reason it is safe to skip (derived from
	// construction, scratch that is fully rewritten before any read,
	// or handles/pointers rebuilt on restore).
	Waived map[string]string
}

var (
	coverMu  sync.Mutex
	coverage = map[reflect.Type]Coverage{}
)

// Cover registers the snapshot coverage of zero's type. It panics at
// init time when a named field does not exist on the type or is listed
// twice — a typo in a registration is a programmer error. A field
// present on the type but absent from the registration is NOT a panic:
// it is exactly the drift Verify exists to report.
func Cover(zero any, c Coverage) {
	t := reflect.TypeOf(zero)
	if t.Kind() != reflect.Struct {
		panic(fmt.Sprintf("snap: Cover(%v): not a struct", t))
	}
	seen := map[string]bool{}
	check := func(name string) {
		if _, ok := t.FieldByName(name); !ok && name != "_" {
			panic(fmt.Sprintf("snap: Cover(%v): no field %q", t, name))
		}
		if seen[name] && name != "_" {
			panic(fmt.Sprintf("snap: Cover(%v): field %q listed twice", t, name))
		}
		seen[name] = true
	}
	for _, f := range c.Serialized {
		check(f)
	}
	for f := range c.Waived {
		check(f)
	}
	coverMu.Lock()
	defer coverMu.Unlock()
	if _, dup := coverage[t]; dup {
		panic(fmt.Sprintf("snap: Cover(%v): registered twice", t))
	}
	coverage[t] = c
}

// Covered returns the registered coverage for t, if any.
func Covered(t reflect.Type) (Coverage, bool) {
	coverMu.Lock()
	defer coverMu.Unlock()
	c, ok := coverage[t]
	return c, ok
}

// VerifyOptions parameterises the completeness walk.
type VerifyOptions struct {
	// PkgPrefix restricts which struct types must be registered: only
	// types whose package path starts with the prefix are checked
	// (stdlib and third-party types are structural, not state).
	PkgPrefix string
	// Opaque lists types the walk treats as leaves: construction-time
	// structure (topologies, worker pools, profiles) that holds no
	// mutable simulation state. Their fields are not descended into and
	// need no registration.
	Opaque []any
}

// Verify walks the type graph reachable from the given roots and
// returns one message per violation: a struct type in scope with no
// Cover registration, or a registered type with fields that are
// neither serialized nor waived. A nil return means the codec covers
// every reachable field.
//
// The walk is over types, not values, so it is independent of runtime
// state (nil pointers, empty slices) and needs no access to unexported
// field values. Interface-typed fields cannot be walked by type alone;
// pass every concrete implementation as its own root.
func Verify(opts VerifyOptions, roots ...any) []string {
	opaque := map[reflect.Type]bool{}
	for _, o := range opts.Opaque {
		t := reflect.TypeOf(o)
		for t.Kind() == reflect.Ptr {
			t = t.Elem()
		}
		opaque[t] = true
	}
	var problems []string
	visited := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Array, reflect.Chan:
			walk(t.Elem())
			return
		case reflect.Map:
			walk(t.Key())
			walk(t.Elem())
			return
		case reflect.Struct:
		default:
			return
		}
		if visited[t] || opaque[t] {
			return
		}
		visited[t] = true
		inScope := strings.HasPrefix(t.PkgPath(), opts.PkgPrefix)
		c, registered := Covered(t)
		if inScope && !registered {
			problems = append(problems, fmt.Sprintf("%v: struct not registered with snap.Cover", t))
			// Still descend: nested state should be reported too.
		}
		covered := map[string]bool{}
		if registered {
			for _, f := range c.Serialized {
				covered[f] = true
			}
			for f := range c.Waived {
				covered[f] = true
			}
		}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if inScope && registered && !covered[f.Name] && f.Name != "_" {
				problems = append(problems, fmt.Sprintf("%v.%s: field neither serialized nor waived", t, f.Name))
			}
			walk(f.Type)
		}
	}
	for _, root := range roots {
		walk(reflect.TypeOf(root))
	}
	sort.Strings(problems)
	return problems
}
