// Package snap is the deterministic binary codec behind warm-start
// checkpoints: a snapshot of a simulation is a byte string that depends
// only on the simulated state — never on worker count, pointer values,
// map iteration order, or allocation history — so the same
// (config, cycle) pair always encodes to the same bytes and a restored
// simulation replays the original cycle-for-cycle.
//
// The package has three parts:
//
//   - Writer/Reader: little-endian primitives with a tag-framing
//     discipline (every logical section starts with a one-byte tag
//     behind a sentinel byte) so a decoder that drifts out of sync
//     fails loudly at the next section boundary instead of silently
//     misreading state.
//
//   - the coverage registry (Cover / Verify): every snapshottable
//     struct declares, field by field, whether the field is serialized
//     or waived (with a reason). A reflection walk over the reachable
//     type graph fails when any field of any state struct is neither —
//     the codec cannot silently rot as fabrics grow.
//
//   - Store: a content-addressed on-disk checkpoint store with
//     crash-safe temp+rename writes, longest-prefix lookup per config
//     digest, size-capped oldest-first eviction, and corrupt-entry
//     detection via a whole-file checksum.
//
// The codec deliberately lives outside every fabric's Step path:
// Snapshot and Restore run only in sequential regions (between Step
// calls), so serialization adds nothing to the hot path.
package snap

import (
	"fmt"
	"math"
)

// Version is the codec version; bump on any incompatible layout change.
const Version = 1

// magic prefixes every snapshot blob.
var magic = [8]byte{'N', 'O', 'C', 'S', 'N', 'A', 'P', '1'}

// sentinel precedes every section tag; a reader that lands anywhere
// else in the byte stream will almost never see it, which turns codec
// drift into an immediate decode error.
const sentinel = 0xA7

// Writer appends little-endian primitives to a growing buffer. The
// zero Writer is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the standard blob header (magic +
// version) already emitted.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magic[:]...)
	w.U32(Version)
	return w
}

// Bytes returns the encoded blob. The slice aliases the writer's
// buffer and is valid until the next write.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// I32 writes a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern, little-endian.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Blob writes a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Tag opens a new section: sentinel byte + one-byte tag. Readers
// consume it with Expect.
func (w *Writer) Tag(t uint8) {
	w.buf = append(w.buf, sentinel, t)
}

// Reader decodes a blob written by Writer. Errors are sticky: after
// the first failure every subsequent read returns zero values and Err
// reports the original error, so decode loops need a single check at
// the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader checks the blob header (magic + version) and positions the
// reader after it.
func NewReader(b []byte) (*Reader, error) {
	r := &Reader{buf: b}
	if len(b) < len(magic)+4 || string(b[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("snap: bad magic (not a snapshot blob)")
	}
	r.off = len(magic)
	if v := r.U32(); v != Version {
		return nil, fmt.Errorf("snap: version %d, want %d", v, Version)
	}
	return r, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Failf records a decode error from the caller (a semantic mismatch —
// e.g. a config-derived size that disagrees with the blob). Like
// internal errors it is sticky: the first failure wins.
func (r *Reader) Failf(format string, args ...any) {
	r.fail(format, args...)
}

// Rest returns the number of unread bytes.
func (r *Reader) Rest() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format+" at offset %d", append(args, r.off)...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated blob (need %d bytes)", n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Blob reads a length-prefixed byte string. The slice aliases the
// reader's buffer.
func (r *Reader) Blob() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("blob length %d exceeds remaining input", n)
		return nil
	}
	return r.take(int(n))
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.Blob()) }

// Expect consumes a section tag and fails unless it matches t.
func (r *Reader) Expect(t uint8) {
	s := r.U8()
	got := r.U8()
	if r.err != nil {
		return
	}
	if s != sentinel {
		r.fail("lost framing: sentinel %#x, want %#x (section %#x)", s, sentinel, t)
		return
	}
	if got != t {
		r.fail("section tag %#x, want %#x", got, t)
	}
}
