package snap

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is a content-addressed on-disk checkpoint store. A checkpoint
// is a snapshot blob filed under its config digest and cycle:
//
//	dir/<digest[:2]>/<digest>.<cycle>.snap
//
// where the digest identifies the configuration (runner.CacheKey with
// the cycle stripped — Workers and Obs are already zeroed there, so a
// checkpoint taken on any machine at any parallelism serves every
// equivalent run). The cycle lives in the file name so the
// longest-prefix query — "latest checkpoint at or before cycle N" —
// is one directory scan, with no index file to keep consistent.
//
// Writes are crash-safe (temp file + rename in the same directory) and
// every file carries a sha256 trailer over its contents; a mismatch on
// read counts as a corrupt entry, which is deleted and reported via
// Stats — the repair path mirrors the result cache's.
type Store struct {
	dir string
	cap int64 // max total bytes; 0 = unlimited

	mu      sync.Mutex
	hits    int64
	misses  int64
	writes  int64
	corrupt int64
	evicted int64
}

// StoreStats is a point-in-time summary of store activity and content.
type StoreStats struct {
	Entries int64
	Bytes   int64
	Hits    int64
	Misses  int64
	Writes  int64
	Corrupt int64
	Evicted int64
}

// storeMagic prefixes every checkpoint file (distinct from the blob
// magic inside, which the simulator checks on restore).
var storeMagic = [8]byte{'N', 'O', 'C', 'S', 'T', 'O', 'R', '1'}

// NewStore opens (creating if needed) a checkpoint store rooted at
// dir. capBytes caps the store's total size; 0 means unlimited.
func NewStore(dir string, capBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snap: create store dir: %w", err)
	}
	return &Store{dir: dir, cap: capBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(digest string, cycle int64) string {
	return filepath.Join(s.dir, digest[:2], fmt.Sprintf("%s.%d.snap", digest, cycle))
}

// Put files blob as the checkpoint of the given config digest at the
// given cycle, keyed by key (runner.CacheKey(config, cycle)); the key
// is verified on every read. The write is atomic: a torn write leaves
// at worst an ignored temp file.
func (s *Store) Put(digest string, cycle int64, key string, blob []byte) error {
	if len(digest) < 3 {
		return fmt.Errorf("snap: config digest %q too short", digest)
	}
	dst := s.path(digest, cycle)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("snap: store put: %w", err)
	}
	// File layout: magic, key, blob, then a sha256 trailer over
	// everything before it.
	buf := make([]byte, 0, len(storeMagic)+8+len(key)+8+len(blob)+sha256.Size)
	buf = append(buf, storeMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(blob)))
	buf = append(buf, blob...)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)

	tmp, err := os.CreateTemp(filepath.Dir(dst), ".snap-*")
	if err != nil {
		return fmt.Errorf("snap: store put: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: store put: %w", err)
	}
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return s.evict()
}

// Get loads the checkpoint of digest at exactly the given cycle. The
// second return is false when no (intact) entry exists; a corrupt
// entry is deleted, counted, and reported as a miss.
func (s *Store) Get(digest string, cycle int64, key string) ([]byte, bool) {
	if len(digest) < 3 {
		return nil, false
	}
	blob, err := s.read(s.path(digest, cycle), key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if !os.IsNotExist(err) {
			s.corrupt++
		}
		s.misses++
		return nil, false
	}
	s.hits++
	return blob, true
}

// Find returns the latest checkpointed cycle of digest at or before
// maxCycle, or ok=false when none exists. It does not read the blob;
// pair with Get (which re-verifies) to load it.
func (s *Store) Find(digest string, maxCycle int64) (cycle int64, ok bool) {
	if len(digest) < 3 {
		return 0, false
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, digest[:2]))
	if err != nil {
		return 0, false
	}
	prefix := digest + "."
	best := int64(-1)
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".snap") {
			continue
		}
		c, err := strconv.ParseInt(name[len(prefix):len(name)-len(".snap")], 10, 64)
		if err != nil || c > maxCycle {
			continue
		}
		if c > best {
			best = c
		}
	}
	return best, best >= 0
}

// read loads and verifies one checkpoint file. A failed checksum or
// key mismatch deletes the file and reports a non-IsNotExist error.
func (s *Store) read(path, key string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	blob, err := parseEntry(raw, key)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return blob, nil
}

func parseEntry(raw []byte, key string) ([]byte, error) {
	if len(raw) < len(storeMagic)+16+sha256.Size || string(raw[:len(storeMagic)]) != string(storeMagic[:]) {
		return nil, fmt.Errorf("snap: corrupt store entry (bad header)")
	}
	body, trailer := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("snap: corrupt store entry (checksum mismatch)")
	}
	off := len(storeMagic)
	klen := int(binary.LittleEndian.Uint64(body[off:]))
	off += 8
	if off+klen+8 > len(body) {
		return nil, fmt.Errorf("snap: corrupt store entry (bad key length)")
	}
	gotKey := string(body[off : off+klen])
	off += klen
	if key != "" && gotKey != key {
		return nil, fmt.Errorf("snap: store entry key mismatch")
	}
	blen := int(binary.LittleEndian.Uint64(body[off:]))
	off += 8
	if off+blen != len(body) {
		return nil, fmt.Errorf("snap: corrupt store entry (bad blob length)")
	}
	return body[off:], nil
}

// entry is one on-disk checkpoint seen by the eviction/stats scans.
type entry struct {
	path  string
	size  int64
	mtime int64
}

// scan lists every checkpoint file under the store root.
func (s *Store) scan() ([]entry, error) {
	var out []entry
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".snap") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // racing delete; skip
		}
		out = append(out, entry{path: path, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	return out, err
}

// evict deletes oldest-modified checkpoints until the store fits its
// byte cap. Checkpoint blobs are large (a 64x64 simulation is tens of
// megabytes), so an unbounded store would swallow the disk long before
// the result cache could; the cap makes the store a sliding window
// over the most recently written prefixes.
func (s *Store) evict() error {
	if s.cap <= 0 {
		return nil
	}
	ents, err := s.scan()
	if err != nil {
		return fmt.Errorf("snap: store evict: %w", err)
	}
	var total int64
	for _, e := range ents {
		total += e.size
	}
	if total <= s.cap {
		return nil
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].mtime != ents[j].mtime {
			return ents[i].mtime < ents[j].mtime
		}
		return ents[i].path < ents[j].path // deterministic tie-break
	})
	for _, e := range ents {
		if total <= s.cap {
			break
		}
		if err := os.Remove(e.path); err == nil || os.IsNotExist(err) {
			total -= e.size
			s.mu.Lock()
			s.evicted++
			s.mu.Unlock()
		}
	}
	return nil
}

// Stats summarises the store: on-disk content plus activity counters.
func (s *Store) Stats() StoreStats {
	ents, _ := s.scan()
	var st StoreStats
	for _, e := range ents {
		st.Entries++
		st.Bytes += e.size
	}
	s.mu.Lock()
	st.Hits, st.Misses, st.Writes = s.hits, s.misses, s.writes
	st.Corrupt, st.Evicted = s.corrupt, s.evicted
	s.mu.Unlock()
	return st
}
