package snap

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Tag(1)
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.I32(-7)
	w.Blob([]byte{1, 2, 3})
	w.Str("hello")
	w.Tag(2)

	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Expect(1)
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.I32(); got != -7 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.Blob(); !reflect.DeepEqual(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	r.Expect(2)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if r.Rest() != 0 {
		t.Errorf("%d bytes left over", r.Rest())
	}
}

func TestReaderStickyErrors(t *testing.T) {
	w := NewWriter()
	w.Tag(1)
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Expect(9) // wrong tag
	if r.Err() == nil {
		t.Fatal("wrong tag not detected")
	}
	first := r.Err()
	_ = r.U64() // further reads keep the first error
	if r.Err() != first {
		t.Errorf("error not sticky: %v", r.Err())
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader([]byte("notasnap....")); err == nil {
		t.Error("bad magic accepted")
	}
	w := NewWriter()
	b := append([]byte(nil), w.Bytes()...)
	b[len(b)-4] = 99 // corrupt version
	if _, err := NewReader(b); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter()
	w.U64(7)
	b := w.Bytes()[:w.Len()-2]
	r, err := NewReader(b)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	_ = r.U64()
	if r.Err() == nil {
		t.Error("truncation not detected")
	}
}

type coveredLeaf struct {
	a int64
	b []uint32
	c string
}

type uncoveredLeaf struct {
	x int
}

type coverRoot struct {
	leaf    coveredLeaf
	orphan  uncoveredLeaf
	opaqueT opaqueType
}

type opaqueType struct {
	hidden int
}

func init() {
	Cover(coveredLeaf{}, Coverage{
		Serialized: []string{"a", "b"},
		// c deliberately missing: TestVerify checks it is reported.
	})
	Cover(coverRoot{}, Coverage{
		Serialized: []string{"leaf"},
		Waived:     map[string]string{"orphan": "test fixture", "opaqueT": "test fixture"},
	})
}

func TestVerifyReportsGaps(t *testing.T) {
	got := Verify(VerifyOptions{
		PkgPrefix: "nocsim/internal/snap",
		Opaque:    []any{opaqueType{}},
	}, coverRoot{})
	want := []string{
		"snap.coveredLeaf.c: field neither serialized nor waived",
		"snap.uncoveredLeaf: struct not registered with snap.Cover",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Verify = %q, want %q", got, want)
	}
}

func TestCoverPanicsOnUnknownField(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cover accepted a nonexistent field")
		}
	}()
	Cover(uncoveredLeaf{}, Coverage{Serialized: []string{"nope"}})
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	digest := "abcdef0123456789"
	blob := []byte("checkpoint payload")
	if err := s.Put(digest, 1000, "key-at-1000", blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(digest, 1000, "key-at-1000")
	if !ok || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get(digest, 2000, ""); ok {
		t.Error("Get at absent cycle succeeded")
	}
	if _, ok := s.Get(digest, 1000, "wrong-key"); ok {
		t.Error("Get with wrong key succeeded")
	}
	st := s.Stats()
	// The wrong-key read deletes the entry (it is indistinguishable
	// from corruption), so only the counters below are stable.
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 2 || st.Corrupt != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreFindLongestPrefix(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	digest := "feedface00112233"
	for _, c := range []int64{500, 1500, 2500} {
		if err := s.Put(digest, c, "k", []byte("blob")); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		max  int64
		want int64
		ok   bool
	}{
		{3000, 2500, true},
		{2500, 2500, true},
		{2000, 1500, true},
		{499, 0, false},
	}
	for _, c := range cases {
		got, ok := s.Find(digest, c.max)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Find(max=%d) = %d, %v; want %d, %v", c.max, got, ok, c.want, c.ok)
		}
	}
	if _, ok := s.Find("0000000000000000", 3000); ok {
		t.Error("Find for unknown digest succeeded")
	}
}

func TestStoreDetectsCorruption(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	digest := "deadbeefcafef00d"
	if err := s.Put(digest, 100, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := s.path(digest, 100)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digest, 100, "k"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not repaired (deleted)")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", st.Corrupt)
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	// Cap small enough that only ~2 of the 4 entries fit.
	blob := make([]byte, 1024)
	s, err := NewStore(dir, 2600)
	if err != nil {
		t.Fatal(err)
	}
	digests := []string{"aa11", "bb22", "cc33", "dd44"}
	for i, d := range digests {
		if err := s.Put(d+"0000000000000000", int64(i*100), "k", blob); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes out so oldest-first is well defined even on
		// coarse filesystem timestamp granularity.
		path := s.path(d+"0000000000000000", int64(i*100))
		mt := time.Unix(1700000000+int64(i)*3600, 0)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// One more write triggers eviction of the oldest entries.
	if err := s.Put("ee550000000000000000", 400, "k", blob); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Bytes > 2600 {
		t.Errorf("store size %d exceeds cap", st.Bytes)
	}
	if st.Evicted == 0 {
		t.Error("nothing evicted")
	}
	// The newest write must survive.
	if _, ok := s.Get("ee550000000000000000", 400, "k"); !ok {
		t.Error("newest entry evicted")
	}
	// No stray temp files.
	matches, _ := filepath.Glob(filepath.Join(dir, "*", ".snap-*"))
	if len(matches) != 0 {
		t.Errorf("stray temp files: %v", matches)
	}
}
