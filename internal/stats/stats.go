// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming mean/variance summaries, empirical CDFs
// (Fig. 9), and min/avg/max aggregation (Fig. 8).
package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming moments via Welford's algorithm.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds a value into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// CDF is an empirical cumulative distribution over added samples.
type CDF struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.xs = append(c.xs, x)
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.xs) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.xs)
		c.sorted = true
	}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sort()
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	i := int(q * float64(len(c.xs)-1))
	return c.xs[i]
}

// Points samples the CDF at k evenly spaced sample values, returning
// (x, P(X<=x)) pairs suitable for plotting Fig. 9-style curves.
func (c *CDF) Points(k int) [][2]float64 {
	if len(c.xs) == 0 || k <= 0 {
		return nil
	}
	c.sort()
	out := make([][2]float64, 0, k)
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	if lo == hi {
		return [][2]float64{{lo, 1}}
	}
	for i := 0; i < k; i++ {
		x := lo + (hi-lo)*float64(i)/float64(k-1)
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// MinAvgMax reduces a slice to its minimum, mean and maximum — the
// Fig. 8 error-bar triple.
func MinAvgMax(xs []float64) (min, avg, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min, max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return min, sum / float64(len(xs)), max
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// PercentGain returns 100*(with-without)/without.
func PercentGain(without, with float64) float64 {
	if without == 0 {
		return 0
	}
	return 100 * (with - without) / without
}
