package stats

// Fairness metrics for multiprogrammed workloads (§6.2 and §7
// "Fairness"). Slowdown of application i is IPC_alone,i / IPC_shared,i
// (>= 1 under interference); the metrics below summarise the slowdown
// vector the way the architecture literature does.

// Slowdowns returns per-node slowdown alone[i]/shared[i]; entries with
// zero alone-IPC (idle nodes) are 0 and excluded from the summaries.
func Slowdowns(shared, alone []float64) []float64 {
	out := make([]float64, len(shared))
	for i := range shared {
		if alone[i] > 0 && shared[i] > 0 {
			out[i] = alone[i] / shared[i]
		}
	}
	return out
}

// MaxSlowdown returns the largest slowdown: the worst-treated
// application's penalty.
func MaxSlowdown(slowdowns []float64) float64 {
	max := 0.0
	for _, s := range slowdowns {
		if s > max {
			max = s
		}
	}
	return max
}

// Unfairness is the ratio of the largest to the smallest non-zero
// slowdown (1 = perfectly fair; Das et al. MICRO'09's metric).
func Unfairness(slowdowns []float64) float64 {
	max, min := 0.0, 0.0
	for _, s := range slowdowns {
		if s == 0 {
			continue
		}
		if s > max {
			max = s
		}
		if min == 0 || s < min {
			min = s
		}
	}
	if min == 0 {
		return 0
	}
	return max / min
}

// HarmonicSpeedup is N / sum(slowdowns): it rewards both throughput and
// fairness (Luo et al.), complementing weighted speedup.
func HarmonicSpeedup(slowdowns []float64) float64 {
	sum := 0.0
	n := 0
	for _, s := range slowdowns {
		if s > 0 {
			sum += s
			n++
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(n) / sum
}
