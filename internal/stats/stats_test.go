package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"nocsim/internal/rng"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Errorf("n=%d mean=%v, want 8/5", s.N(), s.Mean())
	}
	if s.Var() != 4 {
		t.Errorf("var=%v, want 4", s.Var())
	}
	if s.Std() != 2 {
		t.Errorf("std=%v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary must be all zero")
	}
}

// Property: streaming summary matches two-pass computation.
func TestSummaryMatchesTwoPass(t *testing.T) {
	r := rng.New(1)
	f := func(n uint8) bool {
		k := int(n%50) + 1
		xs := make([]float64, k)
		var s Summary
		for i := range xs {
			xs[i] = r.Norm(10, 5)
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(k)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(k)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for _, x := range []float64{1, 2, 3, 4} {
		c.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	var c CDF
	r := rng.New(2)
	for i := 0; i < 500; i++ {
		c.Add(r.Float64() * 100)
	}
	prev := -1.0
	for x := 0.0; x <= 100; x += 1 {
		p := c.At(x)
		if p < prev {
			t.Fatalf("CDF decreased at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
	if c.At(100) != 1 {
		t.Error("CDF must reach 1 at the max sample")
	}
}

func TestCDFQuantile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("Q(0) = %v, want 1", q)
	}
	if q := c.Quantile(1); q != 100 {
		t.Errorf("Q(1) = %v, want 100", q)
	}
	if q := c.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("Q(0.5) = %v, want ~50", q)
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 0; i < 10; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] }) {
		t.Error("points not sorted by x")
	}
	if pts[len(pts)-1][1] != 1 {
		t.Error("final point must have P=1")
	}
}

func TestCDFPointsDegenerate(t *testing.T) {
	var c CDF
	c.Add(3)
	c.Add(3)
	pts := c.Points(5)
	if len(pts) != 1 || pts[0][0] != 3 || pts[0][1] != 1 {
		t.Errorf("degenerate CDF points = %v", pts)
	}
}

func TestMinAvgMax(t *testing.T) {
	min, avg, max := MinAvgMax([]float64{3, -1, 7, 5})
	if min != -1 || avg != 3.5 || max != 7 {
		t.Errorf("MinAvgMax = %v/%v/%v", min, avg, max)
	}
	min, avg, max = MinAvgMax(nil)
	if min != 0 || avg != 0 || max != 0 {
		t.Error("empty MinAvgMax must be zeros")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty must be 0")
	}
}

func TestPercentGain(t *testing.T) {
	if g := PercentGain(10, 12); g != 20 {
		t.Errorf("gain = %v, want 20", g)
	}
	if g := PercentGain(10, 9); g != -10 {
		t.Errorf("gain = %v, want -10", g)
	}
	if g := PercentGain(0, 5); g != 0 {
		t.Errorf("gain with zero base = %v, want 0", g)
	}
}

func TestSlowdowns(t *testing.T) {
	shared := []float64{0.5, 1.0, 0}
	alone := []float64{1.0, 1.0, 0}
	s := Slowdowns(shared, alone)
	if s[0] != 2 || s[1] != 1 || s[2] != 0 {
		t.Errorf("slowdowns = %v", s)
	}
}

func TestMaxSlowdownAndUnfairness(t *testing.T) {
	s := []float64{2, 1, 0, 4}
	if MaxSlowdown(s) != 4 {
		t.Errorf("max slowdown = %v, want 4", MaxSlowdown(s))
	}
	if Unfairness(s) != 4 {
		t.Errorf("unfairness = %v, want 4 (4/1, zeros excluded)", Unfairness(s))
	}
	if Unfairness(nil) != 0 || MaxSlowdown(nil) != 0 {
		t.Error("empty slowdowns must give zero metrics")
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	// Two apps both slowed 2x: HS = 2/(2+2) = 0.5.
	if got := HarmonicSpeedup([]float64{2, 2}); got != 0.5 {
		t.Errorf("harmonic speedup = %v, want 0.5", got)
	}
	// No interference: HS = 1.
	if got := HarmonicSpeedup([]float64{1, 1, 1}); got != 1 {
		t.Errorf("harmonic speedup = %v, want 1", got)
	}
	if HarmonicSpeedup(nil) != 0 {
		t.Error("empty harmonic speedup must be 0")
	}
}

func TestFairnessPrefersBalance(t *testing.T) {
	// Same total slowdown, different balance: harmonic speedup equal,
	// unfairness distinguishes.
	balanced := []float64{2, 2}
	skewed := []float64{1, 3}
	if Unfairness(balanced) >= Unfairness(skewed) {
		t.Error("unfairness must rank the skewed vector worse")
	}
}
