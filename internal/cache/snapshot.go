package cache

import (
	"nocsim/internal/rng"
	"nocsim/internal/snap"
)

// Checkpoint codec for the L1 model and the stochastic address
// mappers. L1 geometry (sets/ways/masks) is construction-derived; only
// contents, LRU clocks and counters are encoded. The mappers' topology
// and member tables are likewise construction-derived — their only
// mutable state is the per-source random streams (and, for Locality,
// a scratch buffer that every draw rewrites from scratch).

func init() {
	snap.Cover(L1{}, snap.Coverage{
		Serialized: []string{
			"tags", "valid", "dirty", "stamp", "clock",
			"hits", "misses", "writebacks",
		},
		Waived: map[string]string{
			"sets":      "construction: derived from L1Config",
			"ways":      "construction: derived from L1Config",
			"blockBits": "construction: derived from L1Config",
			"setMask":   "construction: derived from L1Config",
		},
	})
	snap.Cover(L1Config{}, snap.Coverage{
		Waived: map[string]string{
			"SizeBytes":  "config: derived from sim.Config",
			"Ways":       "config: derived from sim.Config",
			"BlockBytes": "config: derived from sim.Config",
		},
	})
	snap.Cover(XORInterleave{}, snap.Coverage{
		Waived: map[string]string{
			"nodes":      "construction: stateless mapper",
			"blockShift": "construction: stateless mapper",
		},
	})
	snap.Cover(Fixed{}, snap.Coverage{
		Waived: map[string]string{"Dst": "config: stateless mapper"},
	})
	snap.Cover(Locality{}, snap.Coverage{
		Serialized: []string{"srcs"},
		Waived: map[string]string{
			"top":        "construction: topology is config-derived",
			"kind":       "construction: derived from LocalityConfig",
			"mean":       "construction: derived from LocalityConfig",
			"alpha":      "construction: derived from LocalityConfig",
			"blockShift": "construction: derived from LocalityConfig",
			"scratch":    "scratch: truncated to zero length and rebuilt by every draw before any read",
		},
	})
	snap.Cover(Grouped{}, snap.Coverage{
		Serialized: []string{"srcs"},
		Waived: map[string]string{
			"group":   "construction: derived from the group assignment",
			"members": "construction: derived from the group assignment",
		},
	})
}

const (
	tagL1     = 0x12
	tagMapper = 0x13
)

// Snapshot encodes the cache's contents and counters.
func (c *L1) Snapshot(w *snap.Writer) {
	w.Tag(tagL1)
	w.U32(uint32(len(c.tags)))
	for _, t := range c.tags {
		w.U64(t)
	}
	for _, v := range c.valid {
		w.Bool(v)
	}
	for _, d := range c.dirty {
		w.Bool(d)
	}
	for _, s := range c.stamp {
		w.U64(s)
	}
	w.U64(c.clock)
	w.I64(c.hits)
	w.I64(c.misses)
	w.I64(c.writebacks)
}

// Restore overlays contents captured by Snapshot onto a cache
// constructed with the same geometry.
func (c *L1) Restore(r *snap.Reader) {
	r.Expect(tagL1)
	if n := int(r.U32()); n != len(c.tags) {
		r.Failf("L1 lines %d, want %d", n, len(c.tags))
		return
	}
	for i := range c.tags {
		c.tags[i] = r.U64()
	}
	for i := range c.valid {
		c.valid[i] = r.Bool()
	}
	for i := range c.dirty {
		c.dirty[i] = r.Bool()
	}
	for i := range c.stamp {
		c.stamp[i] = r.U64()
	}
	c.clock = r.U64()
	c.hits = r.I64()
	c.misses = r.I64()
	c.writebacks = r.I64()
}

// SnapshotMapper encodes the mutable state of a mapper constructed by
// the simulator. Stateless mappers (XORInterleave, Fixed) encode
// nothing but the section tag, so the framing still checks out.
func SnapshotMapper(w *snap.Writer, m Mapper) {
	w.Tag(tagMapper)
	switch v := m.(type) {
	case *Locality:
		w.U32(uint32(len(v.srcs)))
		for _, s := range v.srcs {
			s.Snapshot(w)
		}
	case *Grouped:
		w.U32(uint32(len(v.srcs)))
		for _, s := range v.srcs {
			s.Snapshot(w)
		}
	default:
		w.U32(0)
	}
}

// RestoreMapper overlays stream state captured by SnapshotMapper onto
// an identically constructed mapper.
func RestoreMapper(r *snap.Reader, m Mapper) {
	r.Expect(tagMapper)
	n := int(r.U32())
	var srcs []*rng.Source
	switch v := m.(type) {
	case *Locality:
		srcs = v.srcs
	case *Grouped:
		srcs = v.srcs
	}
	if n != len(srcs) {
		r.Failf("mapper streams %d, want %d", n, len(srcs))
		return
	}
	for _, s := range srcs {
		s.Restore(r)
	}
}
