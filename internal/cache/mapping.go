package cache

import (
	"fmt"
	"math"

	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

// Mapper decides which node's shared-L2 slice services a given L1 miss.
type Mapper interface {
	// Home returns the destination node for a miss on addr issued by src.
	Home(src int, addr uint64) int
}

// XORInterleave implements the paper's default L2 address mapping
// (Table 2: "per-block interleaving, XOR mapping"): consecutive blocks
// are spread across all nodes, with the block bits XOR-folded so that
// strided access patterns do not collide on one slice.
type XORInterleave struct {
	nodes      int
	blockShift uint
}

// NewXORInterleave maps blocks of blockBytes across nodes.
func NewXORInterleave(nodes, blockBytes int) *XORInterleave {
	if nodes <= 0 {
		panic("cache: NewXORInterleave needs nodes > 0")
	}
	bb := uint(0)
	for 1<<bb < blockBytes {
		bb++
	}
	return &XORInterleave{nodes: nodes, blockShift: bb}
}

// Home XOR-folds the block number and reduces it modulo the node count.
func (m *XORInterleave) Home(_ int, addr uint64) int {
	b := addr >> m.blockShift
	b ^= b >> 17
	b ^= b >> 9
	b *= 0x9e3779b97f4a7c15 // mix so low-entropy block streams spread evenly
	b ^= b >> 33
	return int(b % uint64(m.nodes))
}

// DistanceKind selects the distance distribution of a locality mapper.
type DistanceKind int

const (
	// Exponential draws hop distances from Exp(mean); with mean 1.0 this
	// places 95% of requests within 3 hops and 99% within 5 (§3.2).
	Exponential DistanceKind = iota
	// PowerLaw draws from a Pareto distribution; the paper reports it
	// "behaved similarly".
	PowerLaw
)

// Locality implements §3.2's randomized data mapping: each request's
// destination is drawn at a random hop distance around the requester,
// modelling intelligent data placement plus a small long-distance tail.
// As in the paper, destinations are drawn per request ("the destinations
// for each data request are simply mapped according to the
// distribution"), which also keeps memory flat on long runs.
//
// All per-source state (random stream, scratch buffer) is isolated, so
// concurrent Home calls for distinct sources are safe.
type Locality struct {
	top        *topology.Topology
	kind       DistanceKind
	mean       float64
	alpha      float64
	blockShift uint
	srcs       []*rng.Source
	// scratch[src] holds candidate nodes at one distance during a draw.
	scratch [][]int32
}

// LocalityConfig parameterises a Locality mapper.
type LocalityConfig struct {
	Topology *topology.Topology
	// Kind selects the distance distribution; default Exponential.
	Kind DistanceKind
	// MeanHops is 1/lambda, the average request hop distance; 0 means 1.
	MeanHops float64
	// Alpha is the Pareto shape for PowerLaw; 0 means 2.
	Alpha float64
	// BlockBytes is the cache block size; 0 means 32.
	BlockBytes int
	// Seed derives the per-source random streams.
	Seed uint64
}

// NewLocality constructs the locality mapper.
func NewLocality(cfg LocalityConfig) *Locality {
	if cfg.Topology == nil {
		panic("cache: LocalityConfig.Topology is required")
	}
	if cfg.MeanHops == 0 {
		cfg.MeanHops = 1
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 2
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 32
	}
	bb := uint(0)
	for 1<<bb < cfg.BlockBytes {
		bb++
	}
	n := cfg.Topology.Nodes()
	root := rng.New(cfg.Seed ^ 0x10ca11)
	m := &Locality{
		top:        cfg.Topology,
		kind:       cfg.Kind,
		mean:       cfg.MeanHops,
		alpha:      cfg.Alpha,
		blockShift: bb,
		srcs:       make([]*rng.Source, n),
		scratch:    make([][]int32, n),
	}
	for i := 0; i < n; i++ {
		m.srcs[i] = root.SplitIndex(i)
	}
	return m
}

// Home draws the home slice for src's request at the configured
// distance distribution. The address is ignored by design (§3.2).
func (m *Locality) Home(src int, _ uint64) int {
	return m.draw(src)
}

// draw picks a destination at a random distance from src.
func (m *Locality) draw(src int) int {
	r := m.srcs[src]
	var d int
	switch m.kind {
	case PowerLaw:
		// Pareto with xm chosen so the mean matches MeanHops when
		// alpha > 1: mean = alpha*xm/(alpha-1).
		xm := m.mean * (m.alpha - 1) / m.alpha
		if xm <= 0 {
			xm = 0.5
		}
		d = int(math.Round(r.Pareto(m.alpha, xm)))
	default:
		d = int(math.Round(r.Exp(m.mean)))
	}
	if d == 0 {
		return src // local slice services the miss
	}
	maxD := m.maxDistance(src)
	if d > maxD {
		d = maxD
	}
	m.scratch[src] = m.nodesAt(m.scratch[src][:0], src, d)
	ring := m.scratch[src]
	// A ring at distance d>=1 within the mesh is never empty once d is
	// clamped to the maximum reachable distance.
	return int(ring[r.Intn(len(ring))])
}

// maxDistance returns the largest hop distance reachable from src.
func (m *Locality) maxDistance(src int) int {
	x, y := m.top.Coord(src)
	w, h := m.top.Width(), m.top.Height()
	if m.top.Kind() == topology.Torus {
		return w/2 + h/2
	}
	dx := x
	if w-1-x > dx {
		dx = w - 1 - x
	}
	dy := y
	if h-1-y > dy {
		dy = h - 1 - y
	}
	return dx + dy
}

// nodesAt appends every node at exactly hop distance d from src.
func (m *Locality) nodesAt(buf []int32, src, d int) []int32 {
	x, y := m.top.Coord(src)
	w, h := m.top.Width(), m.top.Height()
	if m.top.Kind() == topology.Torus {
		// Small meshes only for torus locality runs: scan all nodes.
		for n := 0; n < m.top.Nodes(); n++ {
			if m.top.Distance(src, n) == d {
				buf = append(buf, int32(n))
			}
		}
		return buf
	}
	for dx := -d; dx <= d; dx++ {
		nx := x + dx
		if nx < 0 || nx >= w {
			continue
		}
		rem := d - abs(dx)
		ny := y + rem
		if ny >= 0 && ny < h {
			buf = append(buf, int32(ny*w+nx))
		}
		if rem != 0 {
			ny = y - rem
			if ny >= 0 && ny < h {
				buf = append(buf, int32(ny*w+nx))
			}
		}
	}
	return buf
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Fixed maps every miss from a source to one fixed destination; useful
// for directed tests and hotspot experiments.
type Fixed struct {
	Dst int
}

// Home returns the fixed destination.
func (m Fixed) Home(int, uint64) int { return m.Dst }

// Grouped models multithreaded applications (§7 "Traffic Engineering"):
// nodes belong to thread groups that share a working set, so each
// node's misses are serviced uniformly by its own group's members —
// heavily regional traffic that forms hot spots where groups sit.
type Grouped struct {
	// group[node] identifies the node's thread group.
	group []int32
	// members[g] lists the nodes of group g.
	members [][]int32
	srcs    []*rng.Source
}

// NewGrouped builds the group-local mapper from a per-node group
// assignment (values must be dense, 0..G-1).
func NewGrouped(group []int, seed uint64) *Grouped {
	g := &Grouped{
		group: make([]int32, len(group)),
		srcs:  make([]*rng.Source, len(group)),
	}
	maxG := 0
	for _, v := range group {
		if v < 0 {
			panic("cache: negative group id")
		}
		if v > maxG {
			maxG = v
		}
	}
	g.members = make([][]int32, maxG+1)
	for n, v := range group {
		g.group[n] = int32(v)
		g.members[v] = append(g.members[v], int32(n))
	}
	for gi, m := range g.members {
		if len(m) == 0 {
			panic(fmt.Sprintf("cache: group %d has no members", gi))
		}
	}
	root := rng.New(seed ^ 0x96099)
	for i := range g.srcs {
		g.srcs[i] = root.SplitIndex(i)
	}
	return g
}

// Home draws a uniform member of src's group (possibly src itself: the
// shared working set is partly local).
func (g *Grouped) Home(src int, _ uint64) int {
	m := g.members[g.group[src]]
	return int(m[g.srcs[src].Intn(len(m))])
}
