package cache

import (
	"math"
	"testing"
	"testing/quick"

	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

func TestL1Defaults(t *testing.T) {
	c := NewL1(L1Config{})
	if c.Sets() != 1024 || c.Ways() != 4 || c.BlockBytes() != 32 {
		t.Errorf("default geometry sets=%d ways=%d block=%d, want 1024/4/32",
			c.Sets(), c.Ways(), c.BlockBytes())
	}
}

func TestL1HitAfterMiss(t *testing.T) {
	c := NewL1(L1Config{})
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access must hit")
	}
	if !c.Access(0x101f) {
		t.Error("same 32B block must hit")
	}
	if c.Access(0x1020) {
		t.Error("adjacent block must miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestL1LRUEviction(t *testing.T) {
	// 2-way, 2-set toy cache: 4 blocks of 32B, sets selected by bit 5.
	c := NewL1(L1Config{SizeBytes: 128, Ways: 2, BlockBytes: 32})
	// Three distinct blocks in set 0: 0x000, 0x040, 0x080.
	c.Access(0x000)
	c.Access(0x040)
	c.Access(0x000) // touch 0x000 so 0x040 is LRU
	c.Access(0x080) // evicts 0x040
	if !c.Probe(0x000) {
		t.Error("MRU line evicted")
	}
	if c.Probe(0x040) {
		t.Error("LRU line not evicted")
	}
	if !c.Probe(0x080) {
		t.Error("newly inserted line missing")
	}
}

func TestL1ProbeDoesNotAllocate(t *testing.T) {
	c := NewL1(L1Config{})
	if c.Probe(0x40) {
		t.Error("probe hit on empty cache")
	}
	if c.Probe(0x40) {
		t.Error("probe must not allocate")
	}
	if c.Hits()+c.Misses() != 0 {
		t.Error("probe must not count as an access")
	}
}

// Property: working sets that fit in the cache always hit after one pass.
func TestL1FittingWorkingSetAlwaysHits(t *testing.T) {
	c := NewL1(L1Config{SizeBytes: 4096, Ways: 4, BlockBytes: 32})
	blocks := 4096 / 32
	for i := 0; i < blocks; i++ {
		c.Access(uint64(i * 32))
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < blocks; i++ {
			if !c.Access(uint64(i * 32)) {
				t.Fatalf("resident block %d missed on pass %d", i, pass)
			}
		}
	}
}

func TestL1StreamingAlwaysMisses(t *testing.T) {
	c := NewL1(L1Config{})
	addr := uint64(0)
	for i := 0; i < 10000; i++ {
		if c.Access(addr) {
			t.Fatalf("fresh block hit at %#x", addr)
		}
		addr += 32
	}
	if c.MissRate() != 1 {
		t.Errorf("streaming miss rate %v, want 1", c.MissRate())
	}
}

func TestL1Reset(t *testing.T) {
	c := NewL1(L1Config{})
	c.Access(0x40)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("counters survive Reset")
	}
	if c.Probe(0x40) {
		t.Error("contents survive Reset")
	}
}

func TestL1PanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two block size did not panic")
		}
	}()
	NewL1(L1Config{BlockBytes: 24})
}

func TestXORInterleaveInRangeAndUniform(t *testing.T) {
	m := NewXORInterleave(16, 32)
	counts := make([]int, 16)
	const draws = 100000
	for i := 0; i < draws; i++ {
		h := m.Home(0, uint64(i*32))
		if h < 0 || h >= 16 {
			t.Fatalf("home %d out of range", h)
		}
		counts[h]++
	}
	want := float64(draws) / 16
	for n, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d got %d blocks, want about %.0f", n, c, want)
		}
	}
}

func TestXORInterleaveDeterministic(t *testing.T) {
	m := NewXORInterleave(64, 32)
	f := func(addr uint64) bool {
		return m.Home(3, addr) == m.Home(9, addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error("XOR mapping must depend only on the address:", err)
	}
}

func TestLocalityMeanDistance(t *testing.T) {
	top := topology.NewSquare(topology.Mesh, 64)
	for _, mean := range []float64{1, 2, 4, 8} {
		m := NewLocality(LocalityConfig{Topology: top, MeanHops: mean, Seed: 7})
		src := top.Node(32, 32) // central node: no clamping distortion
		const draws = 20000
		sum := 0.0
		for i := 0; i < draws; i++ {
			dst := m.Home(src, uint64(i))
			sum += float64(top.Distance(src, dst))
		}
		got := sum / draws
		if math.Abs(got-mean) > 0.15*mean+0.15 {
			t.Errorf("mean hops %v: measured %v", mean, got)
		}
	}
}

func TestLocalityTailMatchesPaper(t *testing.T) {
	// §3.2: lambda=1 places 95% of requests within 3 hops, 99% within 5.
	top := topology.NewSquare(topology.Mesh, 64)
	m := NewLocality(LocalityConfig{Topology: top, MeanHops: 1, Seed: 3})
	src := top.Node(32, 32)
	const draws = 50000
	within3, within5 := 0, 0
	for i := 0; i < draws; i++ {
		d := top.Distance(src, m.Home(src, uint64(i)))
		if d <= 3 {
			within3++
		}
		if d <= 5 {
			within5++
		}
	}
	if p := float64(within3) / draws; p < 0.93 {
		t.Errorf("P(d<=3) = %v, want >= 0.93 (paper: 95%%)", p)
	}
	if p := float64(within5) / draws; p < 0.98 {
		t.Errorf("P(d<=5) = %v, want >= 0.98 (paper: 99%%)", p)
	}
}

func TestLocalityEdgeNodesClamped(t *testing.T) {
	top := topology.NewSquare(topology.Mesh, 4)
	m := NewLocality(LocalityConfig{Topology: top, MeanHops: 8, Seed: 1})
	for i := 0; i < 5000; i++ {
		h := m.Home(0, uint64(i))
		if h < 0 || h >= 16 {
			t.Fatalf("home %d out of range", h)
		}
	}
}

func TestLocalityPowerLaw(t *testing.T) {
	top := topology.NewSquare(topology.Mesh, 64)
	m := NewLocality(LocalityConfig{Topology: top, Kind: PowerLaw, MeanHops: 2, Alpha: 2, Seed: 5})
	src := top.Node(32, 32)
	const draws = 20000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(top.Distance(src, m.Home(src, uint64(i))))
	}
	got := sum / draws
	// Heavy tail truncated by the mesh; accept a broad band around mean.
	if got < 1 || got > 4 {
		t.Errorf("power-law mean distance %v, want in [1,4]", got)
	}
}

func TestLocalityDeterministicPerSeed(t *testing.T) {
	top := topology.NewSquare(topology.Mesh, 8)
	a := NewLocality(LocalityConfig{Topology: top, Seed: 42})
	b := NewLocality(LocalityConfig{Topology: top, Seed: 42})
	for i := 0; i < 1000; i++ {
		if a.Home(5, uint64(i)) != b.Home(5, uint64(i)) {
			t.Fatal("equal seeds must give equal draw sequences")
		}
	}
}

func TestNodesAtRingComplete(t *testing.T) {
	top := topology.NewSquare(topology.Mesh, 8)
	m := NewLocality(LocalityConfig{Topology: top, Seed: 1})
	for src := 0; src < 64; src += 13 {
		for d := 1; d <= 6; d++ {
			ring := m.nodesAt(nil, src, d)
			// Cross-check against brute force.
			want := 0
			for n := 0; n < 64; n++ {
				if top.Distance(src, n) == d {
					want++
				}
			}
			if len(ring) != want {
				t.Errorf("src %d dist %d: ring has %d nodes, want %d", src, d, len(ring), want)
			}
			for _, n := range ring {
				if top.Distance(src, int(n)) != d {
					t.Errorf("src %d: node %d not at distance %d", src, n, d)
				}
			}
		}
	}
}

func TestFixedMapper(t *testing.T) {
	m := Fixed{Dst: 7}
	if m.Home(3, 0xdead) != 7 {
		t.Error("Fixed mapper must always return Dst")
	}
}

func TestLocalityZeroDistanceIsSelf(t *testing.T) {
	// With a tiny mean, most draws round to distance 0 = local slice.
	top := topology.NewSquare(topology.Mesh, 8)
	m := NewLocality(LocalityConfig{Topology: top, MeanHops: 0.05, Seed: 9})
	self := 0
	for i := 0; i < 1000; i++ {
		if m.Home(27, uint64(i)) == 27 {
			self++
		}
	}
	if self < 900 {
		t.Errorf("tiny mean should map mostly to self; got %d/1000", self)
	}
}

func BenchmarkL1Access(b *testing.B) {
	c := NewL1(L1Config{})
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

func BenchmarkLocalityHome(b *testing.B) {
	top := topology.NewSquare(topology.Mesh, 64)
	m := NewLocality(LocalityConfig{Topology: top, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Home(2080, uint64(i))
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	// 2-way, 2-set toy cache; set 0 holds blocks 0x000, 0x040, 0x080.
	c := NewL1(L1Config{SizeBytes: 128, Ways: 2, BlockBytes: 32})
	c.AccessRW(0x000, true) // dirty
	c.AccessRW(0x040, false)
	c.AccessRW(0x040, false)                  // make 0x000 LRU
	_, wbAddr, wb := c.AccessRW(0x080, false) // evicts dirty 0x000
	if !wb || wbAddr != 0x000 {
		t.Errorf("expected writeback of 0x000, got wb=%v addr=%#x", wb, wbAddr)
	}
	if c.Writebacks() != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks())
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := NewL1(L1Config{SizeBytes: 128, Ways: 2, BlockBytes: 32})
	c.AccessRW(0x000, false)
	c.AccessRW(0x040, false)
	_, _, wb := c.AccessRW(0x080, false)
	if wb {
		t.Error("clean eviction must not write back")
	}
}

func TestStoreHitDirtiesLine(t *testing.T) {
	c := NewL1(L1Config{SizeBytes: 128, Ways: 2, BlockBytes: 32})
	c.AccessRW(0x000, false) // clean allocate
	c.AccessRW(0x000, true)  // store hit dirties
	c.AccessRW(0x040, false)
	c.AccessRW(0x040, false)
	_, wbAddr, wb := c.AccessRW(0x080, false)
	if !wb || wbAddr != 0 {
		t.Errorf("store-hit-dirtied line must write back: wb=%v addr=%#x", wb, wbAddr)
	}
}

func TestWarmDoesNotDirtyOrCount(t *testing.T) {
	c := NewL1(L1Config{SizeBytes: 128, Ways: 2, BlockBytes: 32})
	c.Warm(0x000)
	c.Warm(0x040)
	if c.Hits()+c.Misses()+c.Writebacks() != 0 {
		t.Error("Warm must not count")
	}
	_, _, wb := c.AccessRW(0x080, false)
	if wb {
		t.Error("warmed lines must be clean")
	}
}

func TestResetClearsDirty(t *testing.T) {
	c := NewL1(L1Config{SizeBytes: 128, Ways: 2, BlockBytes: 32})
	c.AccessRW(0x000, true)
	c.Reset()
	c.AccessRW(0x040, false)
	c.AccessRW(0x080, false)
	_, _, wb := c.AccessRW(0x0c0, false)
	if wb {
		t.Error("Reset must clear dirty bits")
	}
	if c.Writebacks() != 0 {
		t.Error("Reset must clear the writeback counter")
	}
}

func TestGroupedMapperStaysInGroup(t *testing.T) {
	// Two groups: nodes 0-7 and 8-15.
	group := make([]int, 16)
	for i := 8; i < 16; i++ {
		group[i] = 1
	}
	m := NewGrouped(group, 3)
	for src := 0; src < 16; src++ {
		for i := 0; i < 200; i++ {
			h := m.Home(src, uint64(i))
			if (src < 8) != (h < 8) {
				t.Fatalf("src %d mapped outside its group: %d", src, h)
			}
		}
	}
}

func TestGroupedMapperCoversGroup(t *testing.T) {
	group := []int{0, 0, 0, 0}
	m := NewGrouped(group, 5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[m.Home(0, uint64(i))] = true
	}
	if len(seen) != 4 {
		t.Errorf("group coverage %d members, want 4", len(seen))
	}
}

func TestGroupedPanicsOnEmptyGroup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sparse group ids did not panic")
		}
	}()
	NewGrouped([]int{0, 2}, 1) // group 1 empty
}
