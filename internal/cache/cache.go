// Package cache models the memory-side substrates of the simulated CMP:
// the private per-core L1 cache (Table 2: 128 KB, 4-way, 32-byte blocks,
// LRU) and the mapping of L1 misses to the shared distributed L2 slice
// that services them — either per-block XOR interleaving across all
// nodes (the paper's default) or the randomized exponential-locality
// model of §3.2 (with a power-law alternative) used for the scalability
// studies. The shared L2 itself is perfect (Table 2), so every miss is
// serviced by its home node without going to memory.
package cache

import "fmt"

// L1Config describes a private L1 cache.
type L1Config struct {
	// SizeBytes is total capacity; 0 means 128 KiB.
	SizeBytes int
	// Ways is the associativity; 0 means 4.
	Ways int
	// BlockBytes is the line size; 0 means 32. Must be a power of two.
	BlockBytes int
}

func (c *L1Config) setDefaults() {
	if c.SizeBytes == 0 {
		c.SizeBytes = 128 << 10
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 32
	}
}

// L1 is a set-associative write-allocate cache with true-LRU replacement.
// It models hit/miss behaviour only; data values are not stored.
type L1 struct {
	sets      int
	ways      int
	blockBits uint
	setMask   uint64
	tags      []uint64
	valid     []bool
	dirty     []bool
	stamp     []uint64 // per-line LRU timestamp
	clock     uint64

	hits, misses, writebacks int64
}

// NewL1 builds an L1 cache. It panics on non-power-of-two geometry.
func NewL1(cfg L1Config) *L1 {
	cfg.setDefaults()
	if cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		panic("cache: block size must be a power of two")
	}
	// dirty tracking is allocated eagerly; it costs one bool per line.
	blocks := cfg.SizeBytes / cfg.BlockBytes
	if blocks == 0 || blocks%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d bytes / %d-way / %dB blocks",
			cfg.SizeBytes, cfg.Ways, cfg.BlockBytes))
	}
	sets := blocks / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	bb := uint(0)
	for 1<<bb < cfg.BlockBytes {
		bb++
	}
	return &L1{
		sets:      sets,
		ways:      cfg.Ways,
		blockBits: bb,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, blocks),
		valid:     make([]bool, blocks),
		dirty:     make([]bool, blocks),
		stamp:     make([]uint64, blocks),
	}
}

// Sets returns the number of sets.
func (c *L1) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *L1) Ways() int { return c.ways }

// BlockBytes returns the line size.
func (c *L1) BlockBytes() int { return 1 << c.blockBits }

// Block returns the block address (address with offset bits dropped).
func (c *L1) Block(addr uint64) uint64 { return addr >> c.blockBits }

// Access looks up addr as a load, allocating on miss, and reports
// whether it hit. Evicted dirty blocks are dropped (use AccessRW to
// observe writebacks).
func (c *L1) Access(addr uint64) bool {
	hit, _, _ := c.AccessRW(addr, false)
	return hit
}

// AccessRW looks up addr, allocating on miss. write marks the line
// dirty (write-allocate, write-back). When a miss evicts a dirty line,
// wb is true and wbAddr is the evicted block's address — the simulator
// turns it into a one-way writeback packet to the block's home slice.
func (c *L1) AccessRW(addr uint64, write bool) (hit bool, wbAddr uint64, wb bool) {
	c.clock++
	block := addr >> c.blockBits
	base := int(block&c.setMask) * c.ways
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == block {
			c.stamp[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			c.hits++
			return true, 0, false
		}
		if !c.valid[i] {
			victim = i
			oldest = 0
		} else if c.stamp[i] < oldest {
			victim = i
			oldest = c.stamp[i]
		}
	}
	c.misses++
	if c.valid[victim] && c.dirty[victim] {
		wb = true
		wbAddr = c.tags[victim] << c.blockBits
		c.writebacks++
	}
	c.tags[victim] = block
	c.valid[victim] = true
	c.dirty[victim] = write
	c.stamp[victim] = c.clock
	return false, wbAddr, wb
}

// Warm inserts addr's block without touching the hit/miss counters;
// used to preload a working set so measurements start from a warm cache.
func (c *L1) Warm(addr uint64) {
	h, m, w := c.hits, c.misses, c.writebacks
	c.Access(addr)
	c.hits, c.misses, c.writebacks = h, m, w
}

// Probe reports whether addr is resident without updating LRU state or
// allocating.
func (c *L1) Probe(addr uint64) bool {
	block := addr >> c.blockBits
	base := int(block&c.setMask) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == block {
			return true
		}
	}
	return false
}

// Hits returns the number of hits observed.
func (c *L1) Hits() int64 { return c.hits }

// Misses returns the number of misses observed.
func (c *L1) Misses() int64 { return c.misses }

// Writebacks returns the number of dirty evictions observed.
func (c *L1) Writebacks() int64 { return c.writebacks }

// MissRate returns misses / accesses.
func (c *L1) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and counters.
func (c *L1) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
	c.hits, c.misses, c.writebacks, c.clock = 0, 0, 0, 0
}
