package hierring

import (
	"nocsim/internal/noc"
	"nocsim/internal/snap"
)

// Checkpoint codec for the hierarchical ring fabric. Flits live by
// value in ring slots and bridge FIFOs (no pool), so the encoding is a
// direct walk: slot content at absolute stop positions, FIFO content in
// FIFO order (restored head-normalized). The active set, global-ring
// occupancy count and l2g live counter are recomputed from the restored
// state.

func init() {
	snap.Cover(Fabric{}, snap.Coverage{
		Serialized: []string{
			"cycle", "nics", "local", "global", "l2g", "g2l", "shards",
		},
		Waived: map[string]string{
			"cfg":       "config: construction input",
			"policy":    "construction: restored separately by the system layer",
			"lineTo":    "construction: placeholder topology derived from Config.Nodes",
			"scratchL":  "scratch: every slot is rewritten before the swap each rotation",
			"scratchG":  "scratch: every slot is rewritten before the swap each rotation",
			"skip":      "construction: derived from Config and the policy's capabilities",
			"activeG":   "rebuilt: recomputed from ring occupancy, g2l content and NIC traffic on restore",
			"idle":      "construction: capability view of the policy",
			"lastTick":  "canonical: SyncPolicy flushes pending idle stretches before snapshot; restore pins every entry to the restored cycle",
			"globalOcc": "derived: recomputed from global-ring occupancy on restore",
			"l2gLive":   "derived: recomputed from l2g FIFO counts on restore",
			"pool":      "construction: worker pool is execution machinery, not simulated state",
			"pl":        "construction: prebuilt closure over the pool",
			"tr":        "construction: observability collector, restored by the obs layer",
			"sp":        "construction: observability collector, restored by the obs layer",
			"stats":     "construction: holds only the Links topology property; event totals are encoded merged and restored into shard 0",
			"inflight":  "derived: recomputed from shard counters on restore",
		},
	})
	snap.Cover(Config{}, snap.Coverage{
		Waived: map[string]string{
			"Nodes":       "config: construction input",
			"GroupSize":   "config: construction input",
			"BridgeFIFO":  "config: construction input",
			"Policy":      "config: construction input",
			"NoActiveSet": "config: construction input",
			"Workers":     "config: construction input",
			"Pool":        "config: construction input",
			"Probe":       "config: construction input",
		},
	})
	snap.Cover(slot{}, snap.Coverage{
		Serialized: []string{"f", "ok"},
	})
	snap.Cover(fifo{}, snap.Coverage{
		Serialized: []string{"buf", "count"},
		Waived: map[string]string{
			"head": "canonical: FIFO content is encoded in order and restored head-normalized",
		},
	})
}

const tagHierring = 0x22

func snapshotSlots(w *snap.Writer, ss []slot) {
	for i := range ss {
		w.Bool(ss[i].ok)
		if ss[i].ok {
			noc.SnapshotFlit(w, &ss[i].f)
		}
	}
}

func restoreSlots(r *snap.Reader, ss []slot) {
	for i := range ss {
		ss[i] = slot{}
		if r.Bool() {
			noc.RestoreFlit(r, &ss[i].f)
			ss[i].ok = true
		}
	}
}

func snapshotFifo(w *snap.Writer, q *fifo) {
	w.U32(uint32(q.count))
	for k := 0; k < q.count; k++ {
		noc.SnapshotFlit(w, &q.buf[(q.head+k)%len(q.buf)])
	}
}

func restoreFifo(r *snap.Reader, q *fifo) {
	n := int(r.U32())
	if n < 0 || n > len(q.buf) {
		r.Failf("hierring FIFO overflow (%d > %d)", n, len(q.buf))
		return
	}
	q.head = 0
	q.count = n
	for k := 0; k < n; k++ {
		noc.RestoreFlit(r, &q.buf[k])
	}
}

// Snapshot encodes the fabric's complete dynamic state; see the
// bufferless fabric's Snapshot for the SyncPolicy rationale.
func (f *Fabric) Snapshot(w *snap.Writer) {
	f.SyncPolicy()
	w.Tag(tagHierring)
	w.I64(f.cycle)
	s := f.Stats()
	s.Snapshot(w)
	w.U32(uint32(len(f.nics)))
	for _, nic := range f.nics {
		nic.Snapshot(w)
	}
	for g := range f.local {
		snapshotSlots(w, f.local[g])
	}
	snapshotSlots(w, f.global)
	for g := range f.l2g {
		snapshotFifo(w, &f.l2g[g])
	}
	for g := range f.g2l {
		snapshotFifo(w, &f.g2l[g])
	}
}

// Restore overlays state captured by Snapshot onto a fabric freshly
// constructed with the same Config.
func (f *Fabric) Restore(r *snap.Reader) {
	r.Expect(tagHierring)
	f.cycle = r.I64()
	var tot noc.Stats
	tot.Restore(r)
	for i := range f.shards {
		f.shards[i].Stats = noc.Stats{}
	}
	tot.Cycles = 0
	tot.Links = 0
	f.shards[0].Stats = tot
	if n := int(r.U32()); n != len(f.nics) {
		r.Failf("hierring NICs %d, want %d", n, len(f.nics))
		return
	}
	for _, nic := range f.nics {
		nic.Restore(r)
	}
	for g := range f.local {
		restoreSlots(r, f.local[g])
	}
	restoreSlots(r, f.global)
	for g := range f.l2g {
		restoreFifo(r, &f.l2g[g])
	}
	for g := range f.g2l {
		restoreFifo(r, &f.g2l[g])
	}
	if r.Err() != nil {
		return
	}
	f.rebuildDerived()
}

// rebuildDerived recomputes the in-flight total, global occupancy,
// bridge live counter, idle-replay cursors and the ring active set from
// the restored state.
func (f *Fabric) rebuildDerived() {
	f.updateInflight()
	occ := 0
	for s := range f.global {
		if f.global[s].ok {
			occ++
		}
	}
	f.globalOcc = occ
	var live int64
	for g := range f.l2g {
		live += int64(f.l2g[g].count)
	}
	f.l2gLive.Store(live)
	if !f.skip {
		return
	}
	for i := range f.lastTick {
		f.lastTick[i] = f.cycle
	}
	//nocvet:allow atomicmix sequential region between Step calls; the worker pool is parked, so plain stores cannot race
	for g := range f.activeG {
		act := !f.g2l[g].empty() || f.groupWants(g)
		if !act {
			for s := range f.local[g] {
				if f.local[g][s].ok {
					act = true
					break
				}
			}
		}
		if act {
			//nocvet:allow atomicmix sequential region between Step calls; the worker pool is parked, so plain stores cannot race
			f.activeG[g] = 1
		} else {
			//nocvet:allow atomicmix sequential region between Step calls; the worker pool is parked, so plain stores cannot race
			f.activeG[g] = 0
		}
	}
}
