// Package hierring implements a bufferless hierarchical ring
// interconnect in the style the paper cites as [21] (Fallin et al., "A
// high-performance hierarchical ring on-chip interconnect with low-cost
// routers"): nodes sit on small local rings; local rings are joined by
// one global ring through bridge routers holding small transfer FIFOs.
//
// Ring stops are even cheaper than deflection routers: a flit on a ring
// simply circulates one stop per cycle until it reaches its destination
// (or its bridge), so there is no routing, no arbitration and no
// deflection — the only buffering in the network is the bridges'
// transfer FIFOs. A flit whose bridge FIFO is full keeps circulating
// and tries again next lap, which preserves losslessness without
// blocking the ring.
//
// Stepping skips idle structure at ring granularity: a local ring whose
// slots, g2l FIFO and member NICs are all empty is not rotated (a flit
// can only re-enter it through a bridge g2l push or a NIC enqueue, both
// of which re-activate it), and the global ring is skipped while it is
// empty and every l2g FIFO is empty. Skipping is exact — rotating an
// empty ring is a no-op for every counter — and engages under the same
// policy conditions as the mesh fabrics (noc.Open or noc.IdleTicker),
// with skipped stretches replayed into the policy in bulk.
//
// The fabric implements noc.Network so the open-loop traffic harness
// drives it directly. Rings have no 2D geometry: Topology() exposes the
// node-ID space as a 1xN line for harness compatibility — use
// ID-based patterns (uniform, hotspot, bit-complement), not
// coordinate-based ones.
package hierring

import (
	"fmt"
	"sync/atomic"

	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/topology"
)

// Config parameterises the hierarchy.
type Config struct {
	// Nodes is the total node count; required.
	Nodes int
	// GroupSize is the number of nodes per local ring; 0 means 8.
	// Nodes must be a multiple of GroupSize.
	GroupSize int
	// BridgeFIFO is the depth of each bridge transfer FIFO; 0 means 4.
	BridgeFIFO int
	// Policy gates and observes injection; nil means noc.Open{}.
	Policy noc.InjectionPolicy
	// NoActiveSet forces every ring to be rotated every cycle even when
	// the active-set conditions hold; see the mesh fabrics' field of
	// the same name.
	NoActiveSet bool
	// Workers shards the local-ring loop over ring groups; 0 means 1
	// (sequential). Each local ring touches only its own slots, FIFOs and
	// NICs, so groups parallelise cleanly; the global ring stays on the
	// caller. When >1, Policy must tolerate concurrent calls for
	// distinct nodes.
	Workers int
	// Pool optionally supplies a shared persistent worker pool (the
	// system simulator passes one pool to the fabric and its own node
	// loop). Its width must equal Workers. Nil makes the fabric create
	// its own pool when sharding engages.
	Pool *par.Pool
	// Probe supplies the observability hooks; the zero Probe (nil
	// collectors) costs one predictable branch per event. Rings have no
	// 2D link geometry, so the link grid stays zero; bridge-FIFO entries
	// are attributed to the ring's first node.
	Probe obs.Probe
}

// slot is one ring position.
type slot struct {
	f  noc.Flit
	ok bool
}

// fifo is a small ring buffer of flits.
type fifo struct {
	buf   []noc.Flit
	head  int
	count int
}

func (q *fifo) full() bool  { return q.count == len(q.buf) }
func (q *fifo) empty() bool { return q.count == 0 }
func (q *fifo) push(f noc.Flit) {
	q.buf[(q.head+q.count)%len(q.buf)] = f
	q.count++
}
func (q *fifo) pop() noc.Flit {
	f := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return f
}

// Fabric is the hierarchical ring network. It implements noc.Network.
type Fabric struct {
	cfg    Config
	policy noc.InjectionPolicy
	lineTo *topology.Topology // 1xN placeholder for the harness
	cycle  int64

	nics []*noc.NIC

	// local[g] has GroupSize node stops followed by one bridge stop.
	local [][]slot
	// global has one stop per local ring (its bridge).
	global []slot
	// l2g/g2l are each bridge's transfer FIFOs.
	l2g, g2l []fifo

	// scratch rings for the per-cycle rotation.
	scratchL [][]slot
	scratchG []slot

	// Active-set state (unused when skip is false). activeG[g] is
	// cleared plainly by the owner of ring g in the local phase and set
	// atomically by the global phase's g2l pushes and by NIC
	// notifications (two nodes of one ring may enqueue from different
	// harness shards). lastTick is per node; globalOcc counts occupied
	// global-ring slots (sequential phase only) and l2gLive counts
	// flits across all l2g FIFOs (pushed from the parallel local
	// phase, popped sequentially, hence atomic).
	skip      bool
	activeG   []uint32
	idle      noc.IdleTicker
	lastTick  []int64
	globalOcc int
	l2gLive   atomic.Int64

	// shards[w] are worker w's counters, cache-line padded so the
	// parallel local-ring phase never false-shares; Stats() merges them.
	// The sequential global phase accumulates into shards[0].
	shards []par.PaddedStats
	// pool runs the local-ring phase when sharding engages; nil means
	// sequential stepping. pl is the prebuilt phase closure, so Step
	// allocates nothing.
	pool *par.Pool
	pl   func(lo, hi, worker int)

	// tr and sp are the observability collectors; nil when disabled
	// (the common case), so every hook is one predictable branch.
	tr *obs.Tracer
	sp *obs.Spatial

	stats    noc.Stats
	inflight int64
}

// New constructs the fabric.
func New(cfg Config) *Fabric {
	if cfg.Nodes <= 0 {
		panic("hierring: Config.Nodes is required")
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 8
	}
	if cfg.GroupSize < 2 || cfg.Nodes%cfg.GroupSize != 0 {
		panic(fmt.Sprintf("hierring: %d nodes not divisible into rings of %d", cfg.Nodes, cfg.GroupSize))
	}
	if cfg.BridgeFIFO <= 0 {
		cfg.BridgeFIFO = 4
	}
	if cfg.Policy == nil {
		cfg.Policy = noc.Open{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	groups := cfg.Nodes / cfg.GroupSize
	f := &Fabric{
		cfg:    cfg,
		policy: cfg.Policy,
		lineTo: topology.New(topology.Mesh, cfg.Nodes, 1),
		nics:   make([]*noc.NIC, cfg.Nodes),
		local:  make([][]slot, groups),
		global: make([]slot, max(groups, 2)),
		l2g:    make([]fifo, groups),
		g2l:    make([]fifo, groups),
		shards: make([]par.PaddedStats, cfg.Workers),
		tr:     cfg.Probe.Tracer,
		sp:     cfg.Probe.Spatial,
	}
	// Sharding pays only when every worker gets at least one whole ring;
	// below that the fabric steps sequentially and never consults the pool.
	if cfg.Workers > 1 && groups >= cfg.Workers {
		if cfg.Pool != nil {
			if cfg.Pool.Workers() != cfg.Workers {
				panic(fmt.Sprintf("hierring: shared pool width %d != Workers %d", cfg.Pool.Workers(), cfg.Workers))
			}
			f.pool = cfg.Pool
		} else {
			f.pool = par.New(cfg.Workers)
		}
		f.pl = func(lo, hi, w int) { f.localPhase(lo, hi, &f.shards[w].Stats) }
	}
	f.idle, _ = cfg.Policy.(noc.IdleTicker)
	_, open := cfg.Policy.(noc.Open)
	f.skip = !cfg.NoActiveSet && (open || f.idle != nil)
	if f.skip {
		f.activeG = make([]uint32, groups)
		f.lastTick = make([]int64, cfg.Nodes)
	}
	for i := range f.nics {
		f.nics[i] = noc.NewNIC(i)
		if f.skip {
			f.nics[i].SetNotify(f.notifyNIC)
		}
	}
	stops := cfg.GroupSize + 1 // node stops + bridge stop
	f.scratchL = make([][]slot, groups)
	for g := range f.local {
		f.local[g] = make([]slot, stops)
		f.scratchL[g] = make([]slot, stops)
		f.l2g[g] = fifo{buf: make([]noc.Flit, cfg.BridgeFIFO)}
		f.g2l[g] = fifo{buf: make([]noc.Flit, cfg.BridgeFIFO)}
	}
	f.scratchG = make([]slot, len(f.global))
	// Links: each ring stop's forward link plus the global ring's.
	f.stats.Links = groups*stops + len(f.global)
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// notifyNIC re-activates a node's ring when its NIC goes non-empty.
func (f *Fabric) notifyNIC(node int) { f.activateG(f.ring(node)) }

// activateG flags ring g for rotation. Atomic because notifications may
// come from any harness shard.
func (f *Fabric) activateG(g int) {
	atomic.StoreUint32(&f.activeG[g], 1)
}

// ActiveSet reports whether active-set skipping is engaged and, if so,
// how many local rings are currently flagged active. Sequential regions
// only.
func (f *Fabric) ActiveSet() (active int, enabled bool) {
	if !f.skip {
		return 0, false
	}
	//nocvet:allow atomicmix sequential region between Step calls; the worker pool is parked, so plain loads cannot race
	for _, a := range f.activeG {
		if a != 0 {
			active++
		}
	}
	return active, true
}

// SyncPolicy replays every pending idle stretch into the policy; it
// implements noc.PolicySyncer. See the bufferless fabric.
func (f *Fabric) SyncPolicy() {
	if !f.skip || f.idle == nil {
		return
	}
	for node := range f.lastTick {
		if gap := f.cycle - f.lastTick[node]; gap > 0 {
			f.idle.TickIdle(node, gap)
			f.lastTick[node] = f.cycle
		}
	}
}

// ring returns the local ring index of a node.
func (f *Fabric) ring(node int) int { return node / f.cfg.GroupSize }

// stopOf returns a node's stop index on its local ring.
func (f *Fabric) stopOf(node int) int { return node % f.cfg.GroupSize }

// nodeAt returns the node at a local ring stop (stops < GroupSize).
func (f *Fabric) nodeAt(g, stop int) int { return g*f.cfg.GroupSize + stop }

// Topology returns a 1xN line standing in for the node-ID space.
func (f *Fabric) Topology() *topology.Topology { return f.lineTo }

// Cycle returns completed cycles.
func (f *Fabric) Cycle() int64 { return f.cycle }

// NIC returns node i's network interface.
func (f *Fabric) NIC(i int) *noc.NIC { return f.nics[i] }

// Stats returns the accumulated counters, merging worker shards.
func (f *Fabric) Stats() noc.Stats {
	s := f.stats
	for i := range f.shards {
		s.Merge(f.shards[i].Stats)
	}
	s.Cycles = f.cycle
	return s
}

// InFlight returns flits inside rings and FIFOs.
func (f *Fabric) InFlight() int64 { return f.inflight }

// Drained reports whether nothing is queued or in flight.
func (f *Fabric) Drained() bool {
	if f.inflight != 0 {
		return false
	}
	for _, nic := range f.nics {
		if nic.HasTraffic() || nic.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// Step advances the fabric one cycle: every ring rotates one stop, with
// ejection, bridge transfer, and injection happening as slots pass.
// Local rings are independent (each touches only its own slots, FIFOs
// and NICs), so they shard across the worker pool; the global ring runs
// after the barrier on the caller, exactly where it ran sequentially.
func (f *Fabric) Step() {
	groups := len(f.local)
	if f.pool == nil {
		f.localPhase(0, groups, &f.shards[0].Stats)
	} else {
		f.pool.Run(groups, f.pl)
	}

	// Global ring. Skipped while it is empty and no l2g FIFO holds a
	// departure for it to pick up — rotating it then is a no-op.
	if !f.skip || f.globalOcc > 0 || f.l2gLive.Load() > 0 {
		st := &f.shards[0].Stats
		gstops := len(f.global)
		occ := 0
		for s := 0; s < gstops; s++ {
			in := f.global[(s-1+gstops)%gstops]
			if in.ok {
				st.LinkTraversals++
			}
			if s < groups {
				f.scratchG[s] = f.bridgeGlobal(s, in, st)
			} else {
				f.scratchG[s] = in // filler stop on tiny configurations
			}
			if f.scratchG[s].ok {
				occ++
			}
		}
		f.global, f.scratchG = f.scratchG, f.global
		f.globalOcc = occ
	}

	f.updateInflight()
	f.cycle++
}

// localPhase rotates local rings lo..hi-1 one stop, accumulating
// counters into st.
func (f *Fabric) localPhase(lo, hi int, st *noc.Stats) {
	stops := f.cfg.GroupSize + 1
	bridgeStop := f.cfg.GroupSize
	for g := lo; g < hi; g++ {
		if f.skip && f.activeG[g] == 0 {
			continue
		}
		cur, next := f.local[g], f.scratchL[g]
		occ := 0
		for s := 0; s < stops; s++ {
			in := cur[(s-1+stops)%stops]
			if in.ok {
				st.LinkTraversals++
			}
			if s == bridgeStop {
				next[s] = f.bridgeLocal(g, in, st)
			} else {
				next[s] = f.nodeStop(f.nodeAt(g, s), in, st)
			}
			if next[s].ok {
				occ++
			}
		}
		f.local[g], f.scratchL[g] = next, cur
		if f.skip && occ == 0 && f.g2l[g].empty() && !f.groupWants(g) {
			f.activeG[g] = 0
		}
	}
}

// groupWants reports whether any member NIC of ring g has traffic.
// Flits parked in the l2g FIFO do not keep the ring active: they drain
// through the global ring, which stays awake on l2gLive.
func (f *Fabric) groupWants(g int) bool {
	for s := 0; s < f.cfg.GroupSize; s++ {
		if f.nics[f.nodeAt(g, s)].HasTraffic() {
			return true
		}
	}
	return false
}

// Close releases the fabric's own worker pool. Shared pools (Config.
// Pool) belong to their creator and are left running.
func (f *Fabric) Close() {
	if f.pool != nil && f.pool != f.cfg.Pool {
		f.pool.Close()
	}
}

// updateInflight derives the in-network flit count from the merged
// injection/ejection counters: flits enter rings only at injection and
// leave only at ejection, and a sum of per-shard deltas is independent
// of shard count.
func (f *Fabric) updateInflight() {
	var inj, ej int64
	for i := range f.shards {
		inj += f.shards[i].Stats.FlitsInjected
		ej += f.shards[i].Stats.FlitsEjected
	}
	f.inflight = inj - ej
}

// nodeStop processes a local ring stop: eject a flit addressed here,
// then inject into an empty slot.
func (f *Fabric) nodeStop(node int, in slot, st *noc.Stats) slot {
	if f.skip {
		if f.idle != nil {
			// Replay the ring's skipped stretch into the policy's
			// starvation window; Tick below then covers this cycle.
			if gap := f.cycle - f.lastTick[node]; gap > 0 {
				f.idle.TickIdle(node, gap)
			}
		}
		f.lastTick[node] = f.cycle + 1
	}
	nic := f.nics[node]
	if in.ok && int(in.f.Dst) == node {
		st.FlitsEjected++
		st.CrossbarTraversals++
		st.NetFlitLatencySum += f.cycle - in.f.Inject
		if f.sp != nil {
			f.sp.AddEject(node)
		}
		if f.tr != nil {
			f.tr.Eject(f.cycle, node, &in.f)
		}
		if _, done := nic.Receive(&in.f, f.cycle); done {
			st.PacketsDelivered++
			st.PacketLatencySum += f.cycle - in.f.Enq
		}
		in = slot{}
	}

	head := nic.Head()
	wanted := head != nil
	injected := false
	throttled := false
	if wanted && !in.ok {
		if noc.ThrottledKind(head.Kind) && !f.policy.Allow(node) {
			throttled = true
		} else {
			fl := nic.Pop()
			fl.Inject = f.cycle
			st.FlitsInjected++
			st.QueueLatencySum += f.cycle - fl.Enq
			st.CrossbarTraversals++
			if f.sp != nil {
				f.sp.AddInject(node)
			}
			if f.tr != nil {
				f.tr.Inject(f.cycle, node, &fl)
			}
			in = slot{f: fl, ok: true}
			injected = true
		}
	}
	if wanted {
		st.WantedCycles++
		if !injected {
			if throttled {
				st.ThrottledCycles++
				if f.sp != nil {
					f.sp.AddThrottle(node)
				}
			} else {
				st.StarvedCycles++
				if f.sp != nil {
					f.sp.AddStarve(node)
				}
			}
		}
	}
	f.policy.Tick(node, wanted, injected, throttled)

	if in.ok && f.policy.MarkCongested(node) {
		in.f.CongBit = true
	}
	return in
}

// bridgeLocal processes a local ring's bridge stop: flits leaving the
// ring drop into the local-to-global FIFO (or keep circulating when it
// is full); an empty slot picks up the next global-to-local arrival.
func (f *Fabric) bridgeLocal(g int, in slot, st *noc.Stats) slot {
	if in.ok && f.ring(int(in.f.Dst)) != g {
		if !f.l2g[g].full() {
			if f.tr != nil {
				f.tr.Buffer(f.cycle, f.nodeAt(g, 0), &in.f)
			}
			f.l2g[g].push(in.f)
			st.BufferWrites++
			if f.skip {
				f.l2gLive.Add(1)
			}
			in = slot{}
		}
		// else: circulate another lap.
	}
	if !in.ok && !f.g2l[g].empty() {
		fl := f.g2l[g].pop()
		st.BufferReads++
		in = slot{f: fl, ok: true}
	}
	return in
}

// bridgeGlobal processes ring g's stop on the global ring: flits for
// ring g drop into its global-to-local FIFO; an empty slot picks up the
// next local-to-global departure.
func (f *Fabric) bridgeGlobal(g int, in slot, st *noc.Stats) slot {
	if in.ok && f.ring(int(in.f.Dst)) == g {
		if !f.g2l[g].full() {
			if f.tr != nil {
				f.tr.Buffer(f.cycle, f.nodeAt(g, 0), &in.f)
			}
			f.g2l[g].push(in.f)
			st.BufferWrites++
			if f.skip {
				f.activateG(g)
			}
			in = slot{}
		}
	}
	if !in.ok && !f.l2g[g].empty() {
		fl := f.l2g[g].pop()
		st.BufferReads++
		if f.skip {
			f.l2gLive.Add(-1)
		}
		in = slot{f: fl, ok: true}
	}
	return in
}
