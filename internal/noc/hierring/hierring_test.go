package hierring

import (
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/rng"
)

func runUntilDrained(t *testing.T, f *Fabric, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if f.Drained() {
			return
		}
		f.Step()
	}
	t.Fatalf("not drained after %d cycles (inflight=%d)", maxCycles, f.InFlight())
}

func TestSameRingDelivery(t *testing.T) {
	f := New(Config{Nodes: 16, GroupSize: 8})
	f.NIC(1).Send(5, noc.Request, 7, 1, 0)
	runUntilDrained(t, f, 200)
	d := f.NIC(5).Delivered()
	if len(d) != 1 || d[0].Token != 7 {
		t.Fatalf("delivered %v", d)
	}
	// Stops 1 -> 5 on the ring: 4 hops, 1 cycle each.
	if net := d[0].Eject - d[0].Inject; net != 4 {
		t.Errorf("same-ring latency %d, want 4", net)
	}
}

func TestCrossRingDelivery(t *testing.T) {
	f := New(Config{Nodes: 16, GroupSize: 8})
	f.NIC(0).Send(12, noc.Request, 9, 1, 0) // ring 0 -> ring 1
	runUntilDrained(t, f, 500)
	d := f.NIC(12).Delivered()
	if len(d) != 1 || d[0].Token != 9 {
		t.Fatalf("cross-ring packet not delivered: %v", d)
	}
	s := f.Stats()
	if s.BufferWrites < 2 || s.BufferReads < 2 {
		t.Errorf("cross-ring traversal must pass both bridge FIFOs: writes %d reads %d",
			s.BufferWrites, s.BufferReads)
	}
}

func TestConservationUnderLoad(t *testing.T) {
	f := New(Config{Nodes: 32, GroupSize: 8})
	r := rng.New(3)
	sent := 0
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle < 2000 {
			for n := 0; n < 32; n++ {
				if r.Bool(0.1) {
					dst := r.Intn(32)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, 0, 2, f.Cycle())
						sent += 2
					}
				}
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 400000)
	s := f.Stats()
	if s.FlitsInjected != int64(sent) || s.FlitsEjected != int64(sent) {
		t.Errorf("flits inj=%d ej=%d, want %d", s.FlitsInjected, s.FlitsEjected, sent)
	}
	if s.BufferWrites != s.BufferReads {
		t.Errorf("bridge FIFOs not drained: %d writes, %d reads", s.BufferWrites, s.BufferReads)
	}
}

func TestFullBridgeFIFOCirculates(t *testing.T) {
	// Saturate one ring's outbound bridge: nothing may be lost even
	// while flits circulate waiting for FIFO space.
	f := New(Config{Nodes: 16, GroupSize: 8, BridgeFIFO: 2})
	sent := 0
	for round := 0; round < 40; round++ {
		for n := 0; n < 8; n++ { // all of ring 0 floods ring 1
			f.NIC(n).Send(8+n, noc.Request, 0, 1, f.Cycle())
			sent++
		}
		f.Step()
	}
	runUntilDrained(t, f, 100000)
	if got := f.Stats().FlitsEjected; got != int64(sent) {
		t.Errorf("ejected %d, want %d", got, sent)
	}
}

func TestStarvationWhenRingBusy(t *testing.T) {
	f := New(Config{Nodes: 16, GroupSize: 8})
	r := rng.New(5)
	for cycle := 0; cycle < 3000; cycle++ {
		for n := 0; n < 16; n++ {
			if f.NIC(n).QueueLen() < 8 {
				dst := r.Intn(16)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 2, f.Cycle())
				}
			}
		}
		f.Step()
	}
	s := f.Stats()
	if s.StarvedCycles == 0 {
		t.Error("saturated rings must starve some injections")
	}
	if s.StarvedCycles > s.WantedCycles {
		t.Error("starved exceeds wanted")
	}
}

type denyPolicy struct{}

func (denyPolicy) Allow(int) bool             { return false }
func (denyPolicy) Tick(int, bool, bool, bool) {}
func (denyPolicy) MarkCongested(int) bool     { return false }

func TestPolicyGatesInjection(t *testing.T) {
	f := New(Config{Nodes: 16, GroupSize: 8, Policy: denyPolicy{}})
	f.NIC(0).Send(5, noc.Request, 0, 1, 0)
	f.NIC(1).Send(6, noc.Reply, 0, 1, 0)
	for i := 0; i < 300; i++ {
		f.Step()
	}
	if len(f.NIC(5).Delivered()) != 0 {
		t.Error("request bypassed the policy")
	}
	if len(f.NIC(6).Delivered()) != 1 {
		t.Error("reply must bypass the policy")
	}
	if f.Stats().ThrottledCycles == 0 {
		t.Error("policy blocks must count as throttled cycles")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no nodes":     {},
		"non-dividing": {Nodes: 10, GroupSize: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaults(t *testing.T) {
	f := New(Config{Nodes: 16})
	if f.cfg.GroupSize != 8 || f.cfg.BridgeFIFO != 4 {
		t.Errorf("defaults not applied: %+v", f.cfg)
	}
	if f.Topology().Nodes() != 16 {
		t.Error("placeholder topology must expose the node count")
	}
}

func TestLongPacketsReassemble(t *testing.T) {
	f := New(Config{Nodes: 24, GroupSize: 8})
	f.NIC(2).Send(20, noc.Reply, 5, 6, 0)
	runUntilDrained(t, f, 2000)
	d := f.NIC(20).Delivered()
	if len(d) != 1 || d[0].Len != 6 {
		t.Fatalf("want one 6-flit packet, got %v", d)
	}
}

func BenchmarkStep32Nodes(b *testing.B) {
	f := New(Config{Nodes: 32, GroupSize: 8})
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 32; n++ {
			if f.NIC(n).QueueLen() < 4 {
				dst := r.Intn(32)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 2, f.Cycle())
				}
			}
		}
		f.Step()
	}
}
