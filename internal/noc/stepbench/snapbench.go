// Checkpoint codec benchmarks: what a full-simulator snapshot costs to
// encode, what a restore costs to rebuild, and how large the blob the
// store must hold is. The matrix mirrors the byte-identity test cases —
// one configuration per fabric family, with cores, caches and
// collectors attached — because codec cost is dominated by the state
// the fabric family actually carries (pipeline registers vs VC buffers
// vs ring bridges), not by the stepping hot path.
package stepbench

import (
	"testing"

	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

// snapWarm is how many cycles each simulator runs before the codec is
// measured: long enough that queues, pools and starvation windows hold
// realistic state, short enough that the matrix stays cheap.
const snapWarm = 500

// SnapCase is one full-simulator configuration in the checkpoint
// benchmark matrix.
type SnapCase struct {
	// Name is "family/size", e.g. "snap-bless/8x8".
	Name string
	// Config assembles the simulator; the codec serializes everything
	// reachable from it.
	Config sim.Config
}

// SnapCases returns the checkpoint matrix: each fabric family at the
// standard small size, plus one large bless mesh so the blob-size and
// encode-cost scaling with node count is visible. Configurations come
// from the runner presets (Table 2 defaults, standard seeding) so the
// codec is measured against exactly the state a real experiment run
// carries.
func SnapCases() []SnapCase {
	cfg := func(width, height int, opts ...runner.Option) sim.Config {
		sc := runner.DefaultScale()
		sc.Epoch = 64
		cat, _ := workload.CategoryByName("HM")
		w := workload.Generate(cat, width*height, sc.Seed)
		opts = append(opts, runner.WithWritebacks(), runner.WithWorkers(1))
		return runner.Controlled(w, width, height, sc, opts...)
	}
	return []SnapCase{
		{Name: "snap-bless/8x8", Config: cfg(8, 8)},
		{Name: "snap-bless/32x32", Config: cfg(32, 32)},
		{Name: "snap-buffered/8x8", Config: cfg(8, 8, runner.WithRouter(sim.Buffered))},
		{Name: "snap-hierring/64", Config: cfg(8, 8, runner.WithRouter(sim.HierRing), runner.WithRingGroup(8))},
	}
}

// BenchSnapshot times the full-state encoder against a warmed
// simulator. SetBytes makes `go test -bench` report encode bandwidth;
// the blob_bytes metric records the checkpoint size the store pays per
// entry. Snapshot is read-only modulo the idempotent policy flush, so
// re-encoding the same state every iteration is sound.
func BenchSnapshot(b *testing.B, c SnapCase) {
	s := sim.New(c.Config)
	defer s.Close()
	s.Run(snapWarm)
	blob := s.Snapshot()
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot()
	}
	b.ReportMetric(float64(len(blob)), "blob_bytes")
}

// BenchRestore times rebuilding a live simulator from a blob. Each
// iteration includes Close, so the measurement is the full cost a
// warm-started run pays before its first stepped cycle (the matrix runs
// single-worker simulators, so Close tears down no pool).
func BenchRestore(b *testing.B, c SnapCase) {
	s := sim.New(c.Config)
	s.Run(snapWarm)
	blob := s.Snapshot()
	s.Close()
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Restore(c.Config, blob)
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}
