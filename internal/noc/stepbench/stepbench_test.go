package stepbench

import (
	"fmt"
	"strings"
	"testing"
)

// benchFamily runs every case of one fabric family at one and four
// workers.
func benchFamily(b *testing.B, family string) {
	for _, c := range Cases() {
		if !strings.HasPrefix(c.Name, family+"/") {
			continue
		}
		for _, w := range []int{1, 4} {
			c, w := c, w
			b.Run(fmt.Sprintf("%s/w%d", strings.TrimPrefix(c.Name, family+"/"), w), func(b *testing.B) {
				Bench(b, c, w)
			})
		}
	}
}

func BenchmarkStepBless(b *testing.B)    { benchFamily(b, "bless") }
func BenchmarkStepBuffered(b *testing.B) { benchFamily(b, "buffered") }
func BenchmarkStepHierRing(b *testing.B) { benchFamily(b, "hierring") }

// TestCasesUnique guards the matrix cmd/benchjson iterates.
func TestCasesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cases() {
		if seen[c.Name] {
			t.Errorf("duplicate case %q", c.Name)
		}
		seen[c.Name] = true
		if _, err := FindCase(c.Name); err != nil {
			t.Errorf("FindCase(%q): %v", c.Name, err)
		}
	}
	if _, err := FindCase("nope"); err == nil {
		t.Error("FindCase accepted an unknown name")
	}
}

// TestStepWorkersInvariance is the fabric-level determinism check: the
// same open-loop run produces identical counters at Workers=1 and
// Workers=4 for every case in the matrix.
func TestStepWorkersInvariance(t *testing.T) {
	const cycles = 2_000
	run := func(c Case, workers int) interface{} {
		net := c.New(workers)
		defer closeNet(net)
		n := net.Topology().Nodes()
		inj := newInjector(n)
		for i := 0; i < cycles; i++ {
			inj.Step(net)
			net.Step()
		}
		return net.Stats()
	}
	for _, c := range Cases() {
		if run(c, 1) != run(c, 4) {
			t.Errorf("%s: stats differ between Workers=1 and Workers=4\n w1: %+v\n w4: %+v",
				c.Name, run(c, 1), run(c, 4))
		}
	}
}
