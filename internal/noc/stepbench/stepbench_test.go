package stepbench

import (
	"fmt"
	"strings"
	"testing"
)

// benchFamily runs every case of one fabric family at one and four
// workers.
func benchFamily(b *testing.B, family string) {
	for _, c := range Cases() {
		if !strings.HasPrefix(c.Name, family+"/") {
			continue
		}
		for _, w := range []int{1, 4} {
			c, w := c, w
			b.Run(fmt.Sprintf("%s/w%d", strings.TrimPrefix(c.Name, family+"/"), w), func(b *testing.B) {
				Bench(b, c, w)
			})
		}
	}
}

func BenchmarkStepBless(b *testing.B)    { benchFamily(b, "bless") }
func BenchmarkStepBuffered(b *testing.B) { benchFamily(b, "buffered") }
func BenchmarkStepHierRing(b *testing.B) { benchFamily(b, "hierring") }

// TestCasesUnique guards the matrix cmd/benchjson iterates.
func TestCasesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cases() {
		if seen[c.Name] {
			t.Errorf("duplicate case %q", c.Name)
		}
		seen[c.Name] = true
		if _, err := FindCase(c.Name); err != nil {
			t.Errorf("FindCase(%q): %v", c.Name, err)
		}
	}
	if _, err := FindCase("nope"); err == nil {
		t.Error("FindCase accepted an unknown name")
	}
}

// TestStepWorkersInvariance is the fabric-level determinism check: the
// same open-loop run produces identical counters at Workers=1 and
// Workers=4 for every case in the matrix.
func TestStepWorkersInvariance(t *testing.T) {
	const cycles = 2_000
	run := func(c Case, workers int) interface{} {
		net := c.New(workers)
		defer closeNet(net)
		n := net.Topology().Nodes()
		inj := newInjector(n, c.rate())
		for i := 0; i < cycles; i++ {
			inj.Step(net)
			net.Step()
		}
		return net.Stats()
	}
	for _, c := range Cases() {
		if testing.Short() && strings.Contains(c.Name, "64x64") {
			continue // 4096 nodes x 2k cycles x 4 runs is too slow for -short
		}
		if run(c, 1) != run(c, 4) {
			t.Errorf("%s: stats differ between Workers=1 and Workers=4\n w1: %+v\n w4: %+v",
				c.Name, run(c, 1), run(c, 4))
		}
	}
}

// TestZeroSteadyStateAllocs pins the flit-pool contract: once the pool
// and every queue ring have grown to their high-water marks, stepping
// allocates nothing. The workload is fully deterministic (seeded
// injector), so a failure here is a real hot-path allocation, not a
// flake.
func TestZeroSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is too slow for -short")
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			net := c.New(1)
			defer closeNet(net)
			inj := newInjector(net.Topology().Nodes(), c.rate())
			for i := 0; i < 3*warmup; i++ {
				StepOnce(net, inj)
			}
			if avg := testing.AllocsPerRun(100, func() { StepOnce(net, inj) }); avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state cycle, want 0", c.Name, avg)
			}
		})
	}
}
