package stepbench

import (
	"bytes"
	"testing"

	"nocsim/internal/sim"
)

// benchSnapFamily runs every checkpoint case through one codec
// direction.
func benchSnapFamily(b *testing.B, bench func(*testing.B, SnapCase)) {
	for _, c := range SnapCases() {
		c := c
		b.Run(c.Name, func(b *testing.B) { bench(b, c) })
	}
}

func BenchmarkSnapshot(b *testing.B) { benchSnapFamily(b, BenchSnapshot) }
func BenchmarkRestore(b *testing.B)  { benchSnapFamily(b, BenchRestore) }

// TestSnapCasesRoundTrip guards the matrix cmd/benchjson iterates: every
// case must snapshot, restore, and re-encode to the identical blob. The
// deep byte-identity properties live in internal/sim; this is only the
// smoke that keeps the benchmark configurations valid as the codec
// evolves.
func TestSnapCasesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range SnapCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if seen[c.Name] {
				t.Fatalf("duplicate case %q", c.Name)
			}
			seen[c.Name] = true
			if testing.Short() && c.Name == "snap-bless/32x32" {
				t.Skip("1024-node warmup is too slow for -short")
			}
			s := sim.New(c.Config)
			defer s.Close()
			s.Run(snapWarm)
			blob := s.Snapshot()
			r, err := sim.Restore(c.Config, blob)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			defer r.Close()
			if again := r.Snapshot(); !bytes.Equal(again, blob) {
				t.Errorf("restored state re-encodes to %d bytes != original %d", len(again), len(blob))
			}
		})
	}
}
