// Package stepbench defines the fabric-stepping benchmark matrix and
// its measurement loop, shared by the `go test -bench` entry points
// and cmd/benchjson. Every fabric is driven open-loop by the uniform
// random injector at a fixed sub-saturation rate, so a benchmark
// measures the per-cycle hot path (arbitration, routing, link commit)
// under realistic occupancy rather than an idle network.
package stepbench

import (
	"fmt"
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/topology"
	"nocsim/internal/traffic"
)

const (
	// defaultRate is the per-node flit injection probability per cycle:
	// busy enough that arbitration contends, below every fabric's
	// saturation at the standard sizes.
	defaultRate = 0.08
	// warmup cycles fill the pipelines — and grow the flit pools and
	// queue rings to their steady-state high-water marks — before
	// timing starts.
	warmup = 1000
	// seed fixes the injector stream so runs are comparable.
	seed = 42
)

// Case is one fabric configuration in the benchmark matrix.
type Case struct {
	// Name is "family/size", e.g. "bless/32x32".
	Name string
	// Rate overrides the per-node injection rate; 0 means defaultRate.
	Rate float64
	// New builds the fabric with the given intra-fabric worker count.
	New func(workers int) noc.Network
}

// rate returns the case's effective injection rate.
func (c Case) rate() float64 {
	if c.Rate > 0 {
		return c.Rate
	}
	return defaultRate
}

// Cases returns the benchmark matrix: each fabric family at a small
// and a large size, so both the per-node cost and the sharding
// behaviour are visible.
func Cases() []Case {
	mesh := func(k int) *topology.Topology { return topology.NewSquare(topology.Mesh, k) }
	return []Case{
		{Name: "bless/8x8", New: func(w int) noc.Network {
			return bless.New(bless.Config{Topology: mesh(8), Workers: w})
		}},
		{Name: "bless/32x32", New: func(w int) noc.Network {
			return bless.New(bless.Config{Topology: mesh(32), Workers: w})
		}},
		// 64x64 runs at a reduced rate: a 64x64 mesh has a 128-link
		// bisection, so the default 0.08 (≈328 injected flits/cycle)
		// is far past saturation and would measure a pathological
		// regime; 0.02 keeps the network busy but stable.
		{Name: "bless/64x64", Rate: 0.02, New: func(w int) noc.Network {
			return bless.New(bless.Config{Topology: mesh(64), Workers: w})
		}},
		{Name: "buffered/8x8", New: func(w int) noc.Network {
			return buffered.New(buffered.Config{Topology: mesh(8), Workers: w})
		}},
		{Name: "buffered/32x32", New: func(w int) noc.Network {
			return buffered.New(buffered.Config{Topology: mesh(32), Workers: w})
		}},
		{Name: "hierring/64", New: func(w int) noc.Network {
			return hierring.New(hierring.Config{Nodes: 64, GroupSize: 8, Workers: w})
		}},
		{Name: "hierring/1024", New: func(w int) noc.Network {
			return hierring.New(hierring.Config{Nodes: 1024, GroupSize: 8, Workers: w})
		}},
	}
}

// Bench runs one case at one worker count: warm the fabric, then time
// b.N injector+step cycles. It reports cycles/s (stepping throughput),
// flithops/s (link traversals retired per second, which normalises
// throughput by how much traffic the fabric actually moved), and —
// via ReportAllocs — allocs/op, which must be zero at steady state
// (the warmup grows the flit pools and queue rings to their high-water
// marks; ResetTimer excludes it from the counters).
func Bench(b *testing.B, c Case, workers int) {
	net := c.New(workers)
	defer closeNet(net)
	inj := newInjector(net.Topology().Nodes(), c.rate())
	for i := 0; i < warmup; i++ {
		StepOnce(net, inj)
	}
	start := net.Stats().LinkTraversals
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepOnce(net, inj)
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		hops := net.Stats().LinkTraversals - start
		b.ReportMetric(float64(b.N)/elapsed, "cycles/s")
		b.ReportMetric(float64(hops)/elapsed, "flithops/s")
	}
}

// StepOnce advances the open-loop workload one cycle: inject, step,
// and drain every NIC's delivered-packet list, as a closed-loop
// consumer would. Without the drain the lists grow for the whole run
// and their reallocations would show up as steady-state allocations
// that are the harness's fault, not the fabric's.
func StepOnce(net noc.Network, inj *traffic.Injector) {
	inj.Step(net)
	net.Step()
	for i := net.Topology().Nodes() - 1; i >= 0; i-- {
		net.NIC(i).Delivered()
	}
}

// newInjector builds the standard open-loop workload for n nodes.
func newInjector(n int, rate float64) *traffic.Injector {
	return traffic.NewInjector(n, rate, traffic.Uniform{Nodes: n}, seed)
}

// closeNet releases a fabric's worker pool when it owns one.
func closeNet(net noc.Network) {
	if c, ok := net.(interface{ Close() }); ok {
		c.Close()
	}
}

// FindCase returns the named case.
func FindCase(name string) (Case, error) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("stepbench: unknown case %q", name)
}
