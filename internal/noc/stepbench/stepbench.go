// Package stepbench defines the fabric-stepping benchmark matrix and
// its measurement loop, shared by the `go test -bench` entry points
// and cmd/benchjson. Every fabric is driven open-loop by the uniform
// random injector at a fixed sub-saturation rate, so a benchmark
// measures the per-cycle hot path (arbitration, routing, link commit)
// under realistic occupancy rather than an idle network.
package stepbench

import (
	"fmt"
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/topology"
	"nocsim/internal/traffic"
)

const (
	// rate is the per-node flit injection probability per cycle: busy
	// enough that arbitration contends, below every fabric's saturation.
	rate = 0.08
	// warmup cycles fill the pipelines before timing starts.
	warmup = 500
	// seed fixes the injector stream so runs are comparable.
	seed = 42
)

// Case is one fabric configuration in the benchmark matrix.
type Case struct {
	// Name is "family/size", e.g. "bless/32x32".
	Name string
	// New builds the fabric with the given intra-fabric worker count.
	New func(workers int) noc.Network
}

// Cases returns the benchmark matrix: each fabric family at a small
// and a large size, so both the per-node cost and the sharding
// behaviour are visible.
func Cases() []Case {
	mesh := func(k int) *topology.Topology { return topology.NewSquare(topology.Mesh, k) }
	return []Case{
		{Name: "bless/8x8", New: func(w int) noc.Network {
			return bless.New(bless.Config{Topology: mesh(8), Workers: w})
		}},
		{Name: "bless/32x32", New: func(w int) noc.Network {
			return bless.New(bless.Config{Topology: mesh(32), Workers: w})
		}},
		{Name: "buffered/8x8", New: func(w int) noc.Network {
			return buffered.New(buffered.Config{Topology: mesh(8), Workers: w})
		}},
		{Name: "buffered/32x32", New: func(w int) noc.Network {
			return buffered.New(buffered.Config{Topology: mesh(32), Workers: w})
		}},
		{Name: "hierring/64", New: func(w int) noc.Network {
			return hierring.New(hierring.Config{Nodes: 64, GroupSize: 8, Workers: w})
		}},
		{Name: "hierring/1024", New: func(w int) noc.Network {
			return hierring.New(hierring.Config{Nodes: 1024, GroupSize: 8, Workers: w})
		}},
	}
}

// Bench runs one case at one worker count: warm the fabric, then time
// b.N injector+step cycles. It reports cycles/s (stepping throughput)
// and flithops/s (link traversals retired per second, which normalises
// throughput by how much traffic the fabric actually moved).
func Bench(b *testing.B, c Case, workers int) {
	net := c.New(workers)
	defer closeNet(net)
	inj := newInjector(net.Topology().Nodes())
	for i := 0; i < warmup; i++ {
		inj.Step(net)
		net.Step()
	}
	start := net.Stats().LinkTraversals
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Step(net)
		net.Step()
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		hops := net.Stats().LinkTraversals - start
		b.ReportMetric(float64(b.N)/elapsed, "cycles/s")
		b.ReportMetric(float64(hops)/elapsed, "flithops/s")
	}
}

// newInjector builds the standard open-loop workload for n nodes.
func newInjector(n int) *traffic.Injector {
	return traffic.NewInjector(n, rate, traffic.Uniform{Nodes: n}, seed)
}

// closeNet releases a fabric's worker pool when it owns one.
func closeNet(net noc.Network) {
	if c, ok := net.(interface{ Close() }); ok {
		c.Close()
	}
}

// FindCase returns the named case.
func FindCase(name string) (Case, error) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("stepbench: unknown case %q", name)
}
