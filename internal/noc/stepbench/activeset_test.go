package stepbench

import (
	"bytes"
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/obs"
	"nocsim/internal/topology"
)

// activeSetter is implemented by fabrics that can skip idle routers.
type activeSetter interface {
	ActiveSet() (active int, enabled bool)
}

// activeRun drives one packet corner-to-corner across an otherwise
// idle 16x16 mesh and returns the final counters plus every obs
// export. The workload is the worst case for active-set correctness:
// almost every router is idle almost every cycle, so any node the
// skip logic wrongly leaves asleep shows up as a stuck or late packet,
// and any event it fails to record shows up in the byte comparison.
func activeRun(t *testing.T, net noc.Network, pr obs.Probe, wantSkip bool) (noc.Stats, string, string, string) {
	t.Helper()
	defer closeNet(net)
	as, isAS := net.(activeSetter)
	if !isAS {
		t.Fatal("fabric does not expose ActiveSet")
	}
	if _, enabled := as.ActiveSet(); enabled != wantSkip {
		t.Fatalf("ActiveSet enabled = %v, want %v", enabled, wantSkip)
	}
	const (
		nodes  = 256
		idle   = 10  // cycles before injection: everything asleep
		flight = 400 // cycles after: cross the mesh and drain
	)
	for i := 0; i < idle; i++ {
		net.Step()
	}
	if wantSkip {
		if active, _ := as.ActiveSet(); active != 0 {
			t.Errorf("idle network has %d active nodes, want 0", active)
		}
	}
	net.NIC(0).Send(nodes-1, noc.Request, 7, 4, idle)
	var delivered int
	for i := 0; i < flight; i++ {
		net.Step()
		if wantSkip && i == 5 {
			// Mid-flight only the packet's neighbourhood is awake.
			if active, _ := as.ActiveSet(); active == 0 || active > nodes/4 {
				t.Errorf("mid-flight active set = %d, want small but nonzero", active)
			}
		}
		delivered += len(net.NIC(nodes - 1).Delivered())
	}
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
	if wantSkip {
		if active, _ := as.ActiveSet(); active != 0 {
			t.Errorf("drained network has %d active nodes, want 0", active)
		}
	}
	var trace, nodeCSV, linkCSV bytes.Buffer
	if err := pr.Tracer.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := pr.Spatial.WriteNodeCSV(&nodeCSV); err != nil {
		t.Fatal(err)
	}
	if err := pr.Spatial.WriteLinkCSV(&linkCSV); err != nil {
		t.Fatal(err)
	}
	return net.Stats(), trace.String(), nodeCSV.String(), linkCSV.String()
}

func newProbe() obs.Probe {
	return obs.Probe{
		Tracer: obs.NewTracer(256, 64*256, 1), // sample every packet
		Spatial: obs.NewSpatial(obs.Meta{
			Nodes: 256, Width: 16, Height: 16, ActiveNodes: 256,
		}),
	}
}

// TestActiveSetExact pins the tentpole's central claim: skipping idle
// routers is exact. For each mesh fabric, the same single-packet
// workload runs with the active set enabled and force-disabled, and
// the counters, Chrome trace, and spatial CSVs must be byte-identical.
func TestActiveSetExact(t *testing.T) {
	fabrics := []struct {
		name string
		new  func(noActive bool, pr obs.Probe) noc.Network
	}{
		{"bless", func(noActive bool, pr obs.Probe) noc.Network {
			return bless.New(bless.Config{
				Topology:    topology.NewSquare(topology.Mesh, 16),
				NoActiveSet: noActive,
				Probe:       pr,
			})
		}},
		{"buffered", func(noActive bool, pr obs.Probe) noc.Network {
			return buffered.New(buffered.Config{
				Topology:    topology.NewSquare(topology.Mesh, 16),
				NoActiveSet: noActive,
				Probe:       pr,
			})
		}},
	}
	for _, f := range fabrics {
		t.Run(f.name, func(t *testing.T) {
			prOn := newProbe()
			statsOn, traceOn, nodesOn, linksOn := activeRun(t, f.new(false, prOn), prOn, true)
			prOff := newProbe()
			statsOff, traceOff, nodesOff, linksOff := activeRun(t, f.new(true, prOff), prOff, false)
			if statsOn != statsOff {
				t.Errorf("counters diverge:\n  on:  %+v\n  off: %+v", statsOn, statsOff)
			}
			for _, d := range []struct{ what, on, off string }{
				{"chrome trace", traceOn, traceOff},
				{"node CSV", nodesOn, nodesOff},
				{"link CSV", linksOn, linksOff},
			} {
				if d.on != d.off {
					t.Errorf("%s diverges with active set enabled (%d vs %d bytes)",
						d.what, len(d.on), len(d.off))
					if testing.Verbose() {
						t.Logf("on:\n%s\noff:\n%s", clip(d.on), clip(d.off))
					}
				}
			}
		})
	}
}

// hierringActiveRun drives one packet end-to-end across an otherwise
// idle ring hierarchy and returns the final counters. The route crosses
// all three active-set states of the protocol: the source local ring
// wakes on injection, the global ring wakes when the bridge accepts the
// flit, and the destination ring wakes on global delivery — then each
// drains back to idle.
func hierringActiveRun(t *testing.T, nodes, workers int, noActive bool) noc.Stats {
	t.Helper()
	net := hierring.New(hierring.Config{
		Nodes:       nodes,
		GroupSize:   8,
		Workers:     workers,
		NoActiveSet: noActive,
	})
	defer closeNet(net)
	wantSkip := !noActive
	if _, enabled := net.ActiveSet(); enabled != wantSkip {
		t.Fatalf("ActiveSet enabled = %v, want %v", enabled, wantSkip)
	}
	const (
		idle   = 10
		flight = 600 // two local rings plus the global ring, with FIFO stalls
	)
	for i := 0; i < idle; i++ {
		net.Step()
	}
	if wantSkip {
		if active, _ := net.ActiveSet(); active != 0 {
			t.Errorf("idle hierarchy has %d active rings, want 0", active)
		}
	}
	net.NIC(0).Send(nodes-1, noc.Request, 7, 4, idle)
	groups := nodes / 8
	var delivered int
	for i := 0; i < flight; i++ {
		net.Step()
		if wantSkip && i == 5 {
			// Mid-flight only the rings the packet touches are awake.
			if active, _ := net.ActiveSet(); active == 0 || active >= groups {
				t.Errorf("mid-flight active rings = %d, want in [1, %d)", active, groups)
			}
		}
		delivered += len(net.NIC(nodes - 1).Delivered())
	}
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
	if wantSkip {
		if active, _ := net.ActiveSet(); active != 0 {
			t.Errorf("drained hierarchy has %d active rings, want 0", active)
		}
	}
	return net.Stats()
}

// TestHierringActiveSetExact pins the hierarchical fabric's three-state
// active-set protocol: a single packet crossing source ring, global
// ring, and destination ring must produce byte-identical counters with
// ring skipping enabled and force-disabled, sequentially and with the
// local phase sharded over 8 workers.
func TestHierringActiveSetExact(t *testing.T) {
	const nodes = 64
	base := hierringActiveRun(t, nodes, 1, false)
	for _, c := range []struct {
		name     string
		workers  int
		noActive bool
	}{
		{"noskip_seq", 1, true},
		{"skip_par8", 8, false},
		{"noskip_par8", 8, true},
	} {
		t.Run(c.name, func(t *testing.T) {
			got := hierringActiveRun(t, nodes, c.workers, c.noActive)
			if got != base {
				t.Errorf("counters diverge from skip_seq baseline:\n  base: %+v\n  got:  %+v", base, got)
			}
		})
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

// TestActiveSetDisabledByAdaptive pins the gate: adaptive routing
// observes port history at every router every cycle, so skipping
// would change routing decisions and must not engage.
func TestActiveSetDisabledByAdaptive(t *testing.T) {
	f := bless.New(bless.Config{
		Topology: topology.NewSquare(topology.Mesh, 8),
		Adaptive: true,
	})
	if _, enabled := f.ActiveSet(); enabled {
		t.Error("active set must not engage with adaptive routing")
	}
}
