package noc

import (
	"testing"

	"nocsim/internal/rng"
)

// TestPendTableChurn drives the NIC reassembly table through a long
// interleaved insert/lookup/remove sequence and checks it against a
// plain map. Backward-shift deletion is the delicate part: a wrong
// shift condition silently corrupts probe chains, which would surface
// as lost or duplicated packets much later.
func TestPendTableChurn(t *testing.T) {
	var tab pendTable
	tab.slots = make([]pendingPacket, 16)
	ref := map[uint64]uint8{}
	live := []uint64{}
	src := rng.New(99)
	nextSeq := uint64(0)
	for step := 0; step < 20_000; step++ {
		switch {
		case len(live) == 0 || src.Bool(0.55):
			nextSeq++
			// Structured like real sequence numbers: node ID high bits.
			seq := uint64(src.Intn(64))<<40 | nextSeq
			got := uint8(src.Intn(250) + 1)
			tab.insert(pendingPacket{seq: seq, got: got})
			ref[seq] = got
			live = append(live, seq)
		default:
			i := src.Intn(len(live))
			seq := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			p := tab.lookup(seq)
			if p == nil {
				t.Fatalf("step %d: seq %#x missing before remove", step, seq)
			}
			if p.got != ref[seq] {
				t.Fatalf("step %d: seq %#x got %d, want %d", step, seq, p.got, ref[seq])
			}
			tab.remove(seq)
			delete(ref, seq)
			if tab.lookup(seq) != nil {
				t.Fatalf("step %d: seq %#x still present after remove", step, seq)
			}
		}
		if tab.count != len(ref) {
			t.Fatalf("step %d: count %d, want %d", step, tab.count, len(ref))
		}
	}
	for _, seq := range live {
		p := tab.lookup(seq)
		if p == nil || p.got != ref[seq] {
			t.Fatalf("final: seq %#x lost or corrupted", seq)
		}
	}
}
