package noc

import (
	"sort"

	"nocsim/internal/snap"
)

// Checkpoint codec for the network primitives shared by every fabric:
// flits, packets, NICs and the stats block. Fabrics serialize pooled
// flits as full Flit values (via SnapshotFlit) and re-Alloc pool slots
// in canonical plane order on restore, so the pool itself — handle
// numbering, free-list order, plane capacity — is rebuilt rather than
// encoded: handle values never influence arbitration (Oldest-First
// orders by Inject/Seq/Index content), which is what keeps snapshots
// independent of allocation history.

func init() {
	snap.Cover(Flit{}, snap.Coverage{
		Serialized: []string{
			"Enq", "Inject", "Seq", "Token", "Src", "Dst",
			"Index", "Len", "Kind", "VC", "CongBit",
		},
	})
	snap.Cover(Packet{}, snap.Coverage{
		Serialized: []string{
			"Seq", "Token", "Src", "Dst", "Len", "Kind",
			"Enq", "Inject", "Eject", "CongBit",
		},
	})
	snap.Cover(NIC{}, snap.Coverage{
		Serialized: []string{"seq", "reqQ", "repQ", "pending", "delivered"},
		Waived: map[string]string{
			"node":   "construction: node id is part of the config",
			"notify": "construction: fabric wiring, re-hooked by the restored fabric",
		},
	})
	snap.Cover(pendingPacket{}, snap.Coverage{
		Serialized: []string{
			"seq", "got", "len", "kind", "src", "token",
			"enq", "inject", "congBit",
		},
	})
	snap.Cover(pendTable{}, snap.Coverage{
		Serialized: []string{"slots"},
		Waived: map[string]string{
			"count": "derived: recomputed by insert while rebuilding the table",
		},
	})
	snap.Cover(flitQueue{}, snap.Coverage{
		Serialized: []string{"buf", "count"},
		Waived: map[string]string{
			"head": "canonical: queues are encoded in FIFO order and restored head-normalized",
		},
	})
	snap.Cover(Stats{}, snap.Coverage{
		Serialized: []string{
			"Cycles", "FlitsInjected", "FlitsEjected", "PacketsDelivered",
			"Deflections", "LinkTraversals", "NetFlitLatencySum",
			"QueueLatencySum", "PacketLatencySum", "StarvedCycles",
			"ThrottledCycles", "WantedCycles", "BufferReads",
			"BufferWrites", "CrossbarTraversals", "Arbitrations",
		},
		Waived: map[string]string{
			"Links": "construction: link count is a topology property",
		},
	})
	snap.Cover(FlitPool{}, snap.Coverage{
		Waived: map[string]string{
			"hot":  "rebuilt: occupied slots are re-Alloced from serialized Flit content in canonical plane order",
			"cold": "rebuilt: occupied slots are re-Alloced from serialized Flit content in canonical plane order",
			"free": "rebuilt: free lists are a consequence of the canonical re-Alloc order",
		},
	})
	snap.Cover(FlitHot{}, snap.Coverage{
		Waived: map[string]string{
			"Inject":  "mirror: encoded via the full Flit (see Flit coverage)",
			"Seq":     "mirror: encoded via the full Flit (see Flit coverage)",
			"Dst":     "mirror: encoded via the full Flit (see Flit coverage)",
			"Index":   "mirror: encoded via the full Flit (see Flit coverage)",
			"Len":     "mirror: encoded via the full Flit (see Flit coverage)",
			"Kind":    "mirror: encoded via the full Flit (see Flit coverage)",
			"VC":      "mirror: encoded via the full Flit (see Flit coverage)",
			"CongBit": "mirror: encoded via the full Flit (see Flit coverage)",
		},
	})
	snap.Cover(FlitCold{}, snap.Coverage{
		Waived: map[string]string{
			"Enq":   "mirror: encoded via the full Flit (see Flit coverage)",
			"Token": "mirror: encoded via the full Flit (see Flit coverage)",
			"Src":   "mirror: encoded via the full Flit (see Flit coverage)",
		},
	})
	snap.Cover(freeList{}, snap.Coverage{
		Waived: map[string]string{
			"list": "rebuilt: free handles are whatever the canonical re-Alloc did not use",
		},
	})
}

const (
	tagNIC   = 0x17
	tagStats = 0x18
)

// SnapshotFlit encodes one flit.
func SnapshotFlit(w *snap.Writer, f *Flit) {
	w.I64(f.Enq)
	w.I64(f.Inject)
	w.U64(f.Seq)
	w.U64(f.Token)
	w.I32(f.Src)
	w.I32(f.Dst)
	w.U8(f.Index)
	w.U8(f.Len)
	w.U8(uint8(f.Kind))
	w.U8(uint8(f.VC))
	w.Bool(f.CongBit)
}

// RestoreFlit decodes one flit written by SnapshotFlit.
func RestoreFlit(r *snap.Reader, f *Flit) {
	f.Enq = r.I64()
	f.Inject = r.I64()
	f.Seq = r.U64()
	f.Token = r.U64()
	f.Src = r.I32()
	f.Dst = r.I32()
	f.Index = r.U8()
	f.Len = r.U8()
	f.Kind = Kind(r.U8())
	f.VC = int8(r.U8())
	f.CongBit = r.Bool()
}

// SnapshotPacket encodes one completed packet.
func SnapshotPacket(w *snap.Writer, p *Packet) {
	w.U64(p.Seq)
	w.U64(p.Token)
	w.I32(p.Src)
	w.I32(p.Dst)
	w.U8(p.Len)
	w.U8(uint8(p.Kind))
	w.I64(p.Enq)
	w.I64(p.Inject)
	w.I64(p.Eject)
	w.Bool(p.CongBit)
}

// RestorePacket decodes one packet written by SnapshotPacket.
func RestorePacket(r *snap.Reader, p *Packet) {
	p.Seq = r.U64()
	p.Token = r.U64()
	p.Src = r.I32()
	p.Dst = r.I32()
	p.Len = r.U8()
	p.Kind = Kind(r.U8())
	p.Enq = r.I64()
	p.Inject = r.I64()
	p.Eject = r.I64()
	p.CongBit = r.Bool()
}

func snapshotQueue(w *snap.Writer, q *flitQueue) {
	w.U32(uint32(q.count))
	for i := 0; i < q.count; i++ {
		SnapshotFlit(w, &q.buf[(q.head+i)&(len(q.buf)-1)])
	}
}

func restoreQueue(r *snap.Reader, q *flitQueue) {
	n := int(r.U32())
	*q = flitQueue{}
	var f Flit
	for i := 0; i < n; i++ {
		RestoreFlit(r, &f)
		if r.Err() != nil {
			return
		}
		q.push(f)
	}
}

// Snapshot encodes the NIC's injection queues, reassembly table and
// sequence counter. Queues are written in FIFO order and the pending
// table in ascending-seq order, so the encoding is independent of ring
// capacities and hash layout.
func (n *NIC) Snapshot(w *snap.Writer) {
	w.Tag(tagNIC)
	w.I32(n.node)
	w.U64(n.seq)
	snapshotQueue(w, &n.reqQ)
	snapshotQueue(w, &n.repQ)
	pend := make([]pendingPacket, 0, n.pending.count)
	for i := range n.pending.slots {
		if n.pending.slots[i].seq != 0 {
			pend = append(pend, n.pending.slots[i])
		}
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].seq < pend[j].seq })
	w.U32(uint32(len(pend)))
	for i := range pend {
		p := &pend[i]
		w.U64(p.seq)
		w.U8(p.got)
		w.U8(p.len)
		w.U8(uint8(p.kind))
		w.I32(p.src)
		w.U64(p.token)
		w.I64(p.enq)
		w.I64(p.inject)
		w.Bool(p.congBit)
	}
	// Delivered packets: drained by the harness every cycle, so this is
	// empty at any between-cycle snapshot point; encoded anyway so the
	// codec has no unstated preconditions.
	w.U32(uint32(len(n.delivered)))
	for i := range n.delivered {
		SnapshotPacket(w, &n.delivered[i])
	}
}

// Restore overlays state captured by Snapshot onto a NIC constructed
// for the same node.
func (n *NIC) Restore(r *snap.Reader) {
	r.Expect(tagNIC)
	if node := r.I32(); r.Err() == nil && node != n.node {
		r.Failf("NIC node %d, want %d", node, n.node)
		return
	}
	n.seq = r.U64()
	restoreQueue(r, &n.reqQ)
	restoreQueue(r, &n.repQ)
	np := int(r.U32())
	n.pending = pendTable{slots: make([]pendingPacket, 16)}
	for i := 0; i < np; i++ {
		var p pendingPacket
		p.seq = r.U64()
		p.got = r.U8()
		p.len = r.U8()
		p.kind = Kind(r.U8())
		p.src = r.I32()
		p.token = r.U64()
		p.enq = r.I64()
		p.inject = r.I64()
		p.congBit = r.Bool()
		if r.Err() != nil {
			return
		}
		n.pending.insert(p)
	}
	nd := int(r.U32())
	n.delivered = n.delivered[:0]
	for i := 0; i < nd; i++ {
		var p Packet
		RestorePacket(r, &p)
		if r.Err() != nil {
			return
		}
		n.delivered = append(n.delivered, p)
	}
}

// Snapshot encodes the stats block's event counters (Links is a
// topology property and stays with the constructed fabric).
func (s *Stats) Snapshot(w *snap.Writer) {
	w.Tag(tagStats)
	w.I64(s.Cycles)
	w.I64(s.FlitsInjected)
	w.I64(s.FlitsEjected)
	w.I64(s.PacketsDelivered)
	w.I64(s.Deflections)
	w.I64(s.LinkTraversals)
	w.I64(s.NetFlitLatencySum)
	w.I64(s.QueueLatencySum)
	w.I64(s.PacketLatencySum)
	w.I64(s.StarvedCycles)
	w.I64(s.ThrottledCycles)
	w.I64(s.WantedCycles)
	w.I64(s.BufferReads)
	w.I64(s.BufferWrites)
	w.I64(s.CrossbarTraversals)
	w.I64(s.Arbitrations)
}

// Restore overlays counters captured by Snapshot; Links is preserved.
func (s *Stats) Restore(r *snap.Reader) {
	r.Expect(tagStats)
	s.Cycles = r.I64()
	s.FlitsInjected = r.I64()
	s.FlitsEjected = r.I64()
	s.PacketsDelivered = r.I64()
	s.Deflections = r.I64()
	s.LinkTraversals = r.I64()
	s.NetFlitLatencySum = r.I64()
	s.QueueLatencySum = r.I64()
	s.PacketLatencySum = r.I64()
	s.StarvedCycles = r.I64()
	s.ThrottledCycles = r.I64()
	s.WantedCycles = r.I64()
	s.BufferReads = r.I64()
	s.BufferWrites = r.I64()
	s.CrossbarTraversals = r.I64()
	s.Arbitrations = r.I64()
}
