package noc

import (
	"reflect"
	"testing"
)

// fillDistinct sets every field of a Stats to a distinct nonzero value
// via reflection, so coverage checks see each field independently.
func fillDistinct(t *testing.T) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64, reflect.Int:
			f.SetInt(int64(100 + i))
		default:
			t.Fatalf("Stats.%s has kind %v; extend this test (and Merge/Sub) for it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

// TestMergeCoversEveryField walks Stats by reflection so that a counter
// added without updating Merge fails here instead of silently vanishing
// from every sharded run. Cycles and Links are fabric properties, not
// per-shard events, and must be left alone.
func TestMergeCoversEveryField(t *testing.T) {
	src := fillDistinct(t)
	var dst Stats
	dst.Merge(src)

	sv := reflect.ValueOf(src)
	dv := reflect.ValueOf(dst)
	typ := sv.Type()
	for i := 0; i < sv.NumField(); i++ {
		name := typ.Field(i).Name
		got, want := dv.Field(i).Int(), sv.Field(i).Int()
		switch name {
		case "Cycles", "Links":
			if got != 0 {
				t.Errorf("Merge summed fabric property %s: got %d, want 0", name, got)
			}
		default:
			if got != want {
				t.Errorf("Merge dropped Stats.%s: got %d, want %d — update Merge for the new field", name, got, want)
			}
		}
	}

	// Merging twice must double every event counter (commutative sums).
	dst.Merge(src)
	dv = reflect.ValueOf(dst)
	for i := 0; i < sv.NumField(); i++ {
		name := typ.Field(i).Name
		if name == "Cycles" || name == "Links" {
			continue
		}
		if got, want := dv.Field(i).Int(), 2*sv.Field(i).Int(); got != want {
			t.Errorf("double Merge of Stats.%s: got %d, want %d", name, got, want)
		}
	}
}

// TestSubCoversEveryField checks the snapshot delta the same way:
// every field except Links (a fabric property carried through) must be
// subtracted, or interval samples would show cumulative totals.
func TestSubCoversEveryField(t *testing.T) {
	cur := fillDistinct(t)
	prev := fillDistinct(t)
	// Halve prev so every delta is a distinct nonzero value.
	pv := reflect.ValueOf(&prev).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetInt(pv.Field(i).Int() / 2)
	}

	d := cur.Sub(prev)
	cv, qv, dv := reflect.ValueOf(cur), reflect.ValueOf(prev), reflect.ValueOf(d)
	typ := cv.Type()
	for i := 0; i < cv.NumField(); i++ {
		name := typ.Field(i).Name
		got := dv.Field(i).Int()
		if name == "Links" {
			if got != cv.Field(i).Int() {
				t.Errorf("Sub must preserve Links: got %d, want %d", got, cv.Field(i).Int())
			}
			continue
		}
		if want := cv.Field(i).Int() - qv.Field(i).Int(); got != want {
			t.Errorf("Sub missed Stats.%s: got %d, want %d — update Sub for the new field", name, got, want)
		}
	}
}
