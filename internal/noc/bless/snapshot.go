package bless

import (
	"nocsim/internal/noc"
	"nocsim/internal/snap"
)

// Checkpoint codec for the bufferless fabric. The encoding is defined
// entirely in terms of simulated state — flit content at absolute
// pipeline positions, side-ring content in FIFO order, merged counter
// totals — so it is identical whatever the worker count, pool layout or
// activation history that produced the state. Restore overlays a fabric
// freshly constructed with the same Config: pooled flits are re-Alloced
// in canonical scan order (handle values never influence arbitration,
// which orders by Inject/Seq/Index content), and the active set,
// pipeline occupancy counters and in-flight total are recomputed from
// exact occupancy rather than decoded.

func init() {
	snap.Cover(Fabric{}, snap.Coverage{
		Serialized: []string{
			"cycle", "in", "side", "sideCount", "nics", "load",
			"randSrc", "shards",
		},
		Waived: map[string]string{
			"top":          "construction: topology is config-derived",
			"cfg":          "config: construction input",
			"policy":       "construction: restored separately by the system layer",
			"depth":        "construction: derived from Config.HopLatency",
			"ejectW":       "construction: hoisted Config mirror",
			"injectW":      "construction: hoisted Config mirror",
			"sideCap":      "construction: hoisted Config mirror",
			"arb":          "construction: hoisted Config mirror",
			"fpool":        "rebuilt: occupied slots are re-Alloced from serialized flit content in canonical scan order",
			"hotp":         "cache: refreshed from the pool after every Reserve",
			"ringLen":      "construction: derived from Config.HopLatency",
			"planeSz":      "construction: derived from the topology",
			"stage":        "scratch: recomputed from cycle at the top of every Step",
			"wstage":       "scratch: recomputed from cycle at the top of every Step",
			"sideHead":     "canonical: side rings are encoded in FIFO order and restored head-normalized",
			"skip":         "construction: derived from Config and the policy's capabilities",
			"active":       "rebuilt: recomputed from exact occupancy (NIC traffic, side rings, pipelines) on restore",
			"idle":         "construction: capability view of the policy",
			"lastTick":     "canonical: SyncPolicy flushes pending idle stretches before snapshot; restore pins every entry to the restored cycle",
			"openPol":      "construction: capability view of the policy",
			"atomicAct":    "construction: derived from worker sharding",
			"links":        "construction: derived from the topology",
			"inCount":      "derived: recomputed from pipeline occupancy on restore",
			"fastRT":       "construction: derived from the topology",
			"scr":          "scratch: every slot is written before it is read within one router step",
			"reserveNeeds": "scratch: rewritten at the top of every Step",
			"pool":         "construction: worker pool is execution machinery, not simulated state",
			"p1":           "construction: prebuilt closure over the pool",
			"stats":        "construction: holds only the Links topology property; event totals are encoded merged and restored into shard 0",
			"inflight":     "derived: recomputed from shard counters on restore",
			"tr":           "construction: observability collector, restored by the obs layer",
			"sp":           "construction: observability collector, restored by the obs layer",
		},
	})
	snap.Cover(Config{}, snap.Coverage{
		Waived: map[string]string{
			"Topology":    "config: construction input",
			"HopLatency":  "config: construction input",
			"EjectWidth":  "config: construction input",
			"InjectWidth": "config: construction input",
			"Policy":      "config: construction input",
			"Arb":         "config: construction input",
			"SideBuffer":  "config: construction input",
			"Adaptive":    "config: construction input",
			"NoActiveSet": "config: construction input",
			"Seed":        "config: construction input",
			"Workers":     "config: construction input",
			"Pool":        "config: construction input",
			"Probe":       "config: construction input",
		},
	})
	snap.Cover(linkRef{}, snap.Coverage{
		Waived: map[string]string{
			"idx": "construction: derived from the topology",
			"nb":  "construction: derived from the topology",
		},
	})
	snap.Cover(arrKey{}, snap.Coverage{
		Waived: map[string]string{
			"inject": "scratch: per-step copy of pool state",
			"seq":    "scratch: per-step copy of pool state",
			"dst":    "scratch: per-step copy of pool state",
			"index":  "scratch: per-step copy of pool state",
		},
	})
	snap.Cover(stepScratch{}, snap.Coverage{
		Waived: map[string]string{
			"hs":   "scratch: written before read within one router step",
			"keys": "scratch: written before read within one router step",
			"ord":  "scratch: written before read within one router step",
			"out":  "scratch: written before read within one router step",
		},
	})
}

const tagBless = 0x20

// Snapshot encodes the fabric's complete dynamic state. It first
// flushes pending idle stretches into the policy (SyncPolicy), which is
// behaviourally invisible — TickIdle produces exactly the state the
// skipped per-cycle Ticks would have — and makes the encoding
// independent of which nodes the active set happened to skip.
func (f *Fabric) Snapshot(w *snap.Writer) {
	f.SyncPolicy()
	w.Tag(tagBless)
	w.I64(f.cycle)
	s := f.Stats()
	s.Snapshot(w)
	w.U32(uint32(len(f.nics)))
	for _, nic := range f.nics {
		nic.Snapshot(w)
	}
	// Link pipelines: occupied slots in absolute scan order. Positions
	// are cycle-relative only through the stored cycle, which the
	// restored fabric shares.
	occ := uint32(0)
	for _, h := range f.in {
		if h != 0 {
			occ++
		}
	}
	w.U32(occ)
	var fl noc.Flit
	for i, h := range f.in {
		if h == 0 {
			continue
		}
		w.U32(uint32(i))
		f.fpool.Get(h, &fl)
		noc.SnapshotFlit(w, &fl)
	}
	// Side rings, FIFO order per node (restored head-normalized).
	if f.side != nil {
		d := int32(f.cfg.SideBuffer)
		for node := range f.sideCount {
			c := f.sideCount[node]
			w.U32(uint32(c))
			for k := int32(0); k < c; k++ {
				//nocvet:allow handleleak read-only snapshot scan: the handle stays owned by the side ring
				h := f.side[int32(node)*d+(f.sideHead[node]+k)%d]
				f.fpool.Get(h, &fl)
				noc.SnapshotFlit(w, &fl)
			}
		}
	}
	// Adaptive routing's decayed port-busy estimates.
	if f.load != nil {
		for _, v := range f.load {
			w.U32(v)
		}
	}
	// Random arbitration streams.
	for _, src := range f.randSrc {
		src.Snapshot(w)
	}
}

// reserve grows the flit pool so shard 0 can Alloc n handles.
func (f *Fabric) reserve(n int) {
	f.reserveNeeds[0] = n
	for w := 1; w < len(f.reserveNeeds); w++ {
		f.reserveNeeds[w] = 0
	}
	f.fpool.Reserve(f.reserveNeeds)
	f.hotp = f.fpool.HotPlane()
}

// Restore overlays state captured by Snapshot onto a fabric freshly
// constructed with the same Config.
func (f *Fabric) Restore(r *snap.Reader) {
	r.Expect(tagBless)
	f.cycle = r.I64()
	var tot noc.Stats
	tot.Restore(r)
	for i := range f.shards {
		f.shards[i].Stats = noc.Stats{}
	}
	// All event totals land in shard 0 (Merge and updateInflight sum
	// shards, so placement is arbitrary but must be consistent); Cycles
	// is owned by f.cycle and Links by the constructed fabric.
	tot.Cycles = 0
	tot.Links = 0
	f.shards[0].Stats = tot
	if n := int(r.U32()); n != len(f.nics) {
		r.Failf("bless NICs %d, want %d", n, len(f.nics))
		return
	}
	for _, nic := range f.nics {
		nic.Restore(r)
	}
	occ := int(r.U32())
	if r.Err() != nil {
		return
	}
	f.reserve(occ)
	var fl noc.Flit
	for k := 0; k < occ; k++ {
		i := int(r.U32())
		noc.RestoreFlit(r, &fl)
		if r.Err() != nil {
			return
		}
		if i < 0 || i >= len(f.in) || f.in[i] != 0 {
			r.Failf("bless pipeline slot %d invalid or reused", i)
			return
		}
		f.in[i] = f.fpool.Alloc(0, &fl)
	}
	if f.side != nil {
		d := f.cfg.SideBuffer
		// Read every ring's content first, then grow the pool once.
		counts := make([]int32, len(f.sideCount))
		flits := make([]noc.Flit, 0, 16)
		for node := range counts {
			c := int32(r.U32())
			if c < 0 || int(c) > d {
				r.Failf("bless side ring %d overflow (%d > %d)", node, c, d)
				return
			}
			counts[node] = c
			for k := int32(0); k < c; k++ {
				noc.RestoreFlit(r, &fl)
				flits = append(flits, fl)
			}
		}
		if r.Err() != nil {
			return
		}
		f.reserve(len(flits))
		j := 0
		for node := range counts {
			f.sideHead[node] = 0
			f.sideCount[node] = counts[node]
			for k := int32(0); k < counts[node]; k++ {
				f.side[node*d+int(k)] = f.fpool.Alloc(0, &flits[j])
				j++
			}
		}
	}
	if f.load != nil {
		for i := range f.load {
			f.load[i] = r.U32()
		}
	}
	for _, src := range f.randSrc {
		src.Restore(r)
	}
	if r.Err() != nil {
		return
	}
	f.rebuildDerived()
}

// rebuildDerived recomputes everything the codec deliberately does not
// encode: the in-flight total, pipeline occupancy counters, idle-replay
// cursors and the active set — all exact functions of the restored
// state.
func (f *Fabric) rebuildDerived() {
	f.updateInflight()
	if f.inCount != nil {
		for i := range f.inCount {
			f.inCount[i] = 0
		}
	}
	if f.skip {
		for i := range f.active {
			f.active[i] = 0
		}
		for i := range f.lastTick {
			f.lastTick[i] = f.cycle
		}
	}
	if f.inCount != nil || f.skip {
		for i, h := range f.in {
			if h == 0 {
				continue
			}
			node := (i % f.planeSz) / maxDirs
			if f.inCount != nil {
				f.inCount[node]++
			}
			if f.skip {
				f.active[node] = 1
			}
		}
	}
	if f.skip {
		for node, nic := range f.nics {
			if nic.HasTraffic() || (f.sideCount != nil && f.sideCount[node] > 0) {
				f.active[node] = 1
			}
		}
	}
}
