// Package bless implements the bufferless deflection-routed on-chip
// network of Moscibroda & Mutlu's FLIT-BLESS design, the baseline
// architecture of the paper (§2.2).
//
// Routers have no buffers: every flit that arrives at a router in a
// cycle must leave it on some output link in the same (pipelined) cycle.
// When several flits contend for one productive output port, the oldest
// flit wins (Oldest-First arbitration) and the others are deflected to
// free ports. Because a 2D-mesh router has as many output links as input
// links, a free port always exists and routers never block or drop.
// Injection requires a free output link; otherwise the flit waits in the
// processor-side NIC queue and the cycle counts as starved.
//
// The fabric is stepped in two phases per cycle — arbitrate (reads link
// heads, writes only node-local state) then commit (writes link tails) —
// which makes large meshes safely parallelisable across worker shards.
package bless

import (
	"fmt"
	"math/bits"

	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

// Arbiter selects the contention-resolution policy.
type Arbiter int

const (
	// OldestFirst is the paper's baseline: flit age forms a total order,
	// the oldest contender wins each port, ties are impossible (§2.2).
	// The globally oldest flit always takes a productive port, so it
	// always makes progress: the network is livelock-free.
	OldestFirst Arbiter = iota
	// Random arbitration is the ablation: winners are picked uniformly.
	// It loses the livelock-freedom argument and ages packets unfairly.
	Random
)

func (a Arbiter) String() string {
	if a == Random {
		return "random"
	}
	return "oldest-first"
}

// Config parameterises the fabric.
type Config struct {
	// Topology is required.
	Topology *topology.Topology
	// HopLatency is the pipeline depth of one hop in cycles (router
	// pipeline + link). The paper's Table 2 uses 2-cycle routers and
	// 1-cycle links; 0 means the default of 3.
	HopLatency int
	// EjectWidth is the number of flits a node can eject per cycle; 0
	// means 2 (a 2-flit-wide NI datapath). Arrivals beyond it are
	// deflected (§2.2). Width 1 makes ejection the system bottleneck
	// under multi-flit reply traffic — deflection storms around
	// destinations inflate latency far beyond the paper's flat Fig. 2(a)
	// curve — so the wider NI is the faithful default.
	EjectWidth int
	// InjectWidth is the number of flits a node can inject per cycle;
	// 0 means 1.
	InjectWidth int
	// Policy gates and observes injection; nil means noc.Open{}.
	Policy noc.InjectionPolicy
	// Arb selects the arbitration policy.
	Arb Arbiter
	// SideBuffer enables MinBD-style minimal buffering (Fallin et al.,
	// NOCS 2012, cited as [22]): a small per-router side buffer that
	// absorbs up to one would-be-deflected flit per cycle and
	// re-injects it when an output port is free (with priority over NI
	// injection). 0 disables it; MinBD uses 4 flits.
	SideBuffer int
	// Adaptive replaces strict XY routing with locally congestion-aware
	// productive-port selection (§7 "Traffic Engineering"): among the
	// productive directions, a flit takes the one whose output port has
	// been least busy recently, steering around hot regions. Routing
	// stays minimal (only productive ports are preferred), so delivery
	// guarantees are unchanged.
	Adaptive bool
	// Seed seeds the Random arbiter's per-node streams.
	Seed uint64
	// Workers shards the per-cycle node loop; 0 means 1 (sequential).
	// When >1, Policy must tolerate concurrent calls for distinct nodes.
	Workers int
	// Pool optionally supplies a shared persistent worker pool (the
	// system simulator passes one pool to the fabric and its own node
	// loop). Its width must equal Workers. Nil makes the fabric create
	// its own pool when sharding engages.
	Pool *par.Pool
	// Probe supplies the observability hooks; the zero Probe (nil
	// collectors) costs one predictable branch per event.
	Probe obs.Probe
}

const maxDirs = int(topology.NumDirs)

// slot is one pipeline stage of a link.
type slot struct {
	f  noc.Flit
	ok bool
}

// Fabric is the bufferless network. It implements noc.Network.
type Fabric struct {
	top    *topology.Topology
	cfg    Config
	policy noc.InjectionPolicy
	cycle  int64
	depth  int

	nics []*noc.NIC
	// in holds, for node n and arrival direction d, the d-th incoming
	// link's pipeline: in[(n*4+d)*depth + stage]. Entry (cycle%depth) is
	// read at the head in the cycle it arrives and rewritten at the tail
	// for arrival depth cycles later. Each link has one writer (the
	// upstream node) and one reader (node n).
	in []slot

	// outBuf[(n*4)+d] carries phase-1 port assignments to phase 2.
	outBuf []slot

	// side[n*SideBuffer ...] are the per-node MinBD side buffers (ring
	// per node); sideHead/sideCount index them. Empty when disabled.
	side      []noc.Flit
	sideHead  []int32
	sideCount []int32

	// load[(n*4)+d] is an exponentially-decayed busy count per output
	// port, the local congestion estimate adaptive routing consults.
	// Only node n's phase-1 shard touches its row.
	load []uint32

	// shards[w] are worker w's counters, cache-line padded so parallel
	// phases never false-share; Stats() merges them.
	shards []par.PaddedStats
	// pool runs the two barrier phases when sharding engages; nil means
	// sequential stepping. p1 and p2 are the prebuilt phase closures, so
	// Step allocates nothing.
	pool   *par.Pool
	p1, p2 func(lo, hi, worker int)

	stats    noc.Stats
	inflight int64

	// tr and sp are the observability collectors; nil when disabled
	// (the common case), so every hook is one predictable branch.
	tr *obs.Tracer
	sp *obs.Spatial

	randSrc []*rng.Source // per node, Random arbiter only
}

// New constructs a bufferless fabric.
func New(cfg Config) *Fabric {
	if cfg.Topology == nil {
		panic("bless: Config.Topology is required")
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 3
	}
	if cfg.EjectWidth <= 0 {
		cfg.EjectWidth = 2
	}
	if cfg.InjectWidth <= 0 {
		cfg.InjectWidth = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = noc.Open{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	n := cfg.Topology.Nodes()
	f := &Fabric{
		top:    cfg.Topology,
		cfg:    cfg,
		policy: cfg.Policy,
		depth:  cfg.HopLatency,
		nics:   make([]*noc.NIC, n),
		in:     make([]slot, n*maxDirs*cfg.HopLatency),
		outBuf: make([]slot, n*maxDirs),
		shards: make([]par.PaddedStats, cfg.Workers),
		tr:     cfg.Probe.Tracer,
		sp:     cfg.Probe.Spatial,
	}
	// Sharding pays only when every worker gets a few nodes; below that
	// the fabric steps sequentially and the pool is never consulted.
	if cfg.Workers > 1 && n >= cfg.Workers*4 {
		if cfg.Pool != nil {
			if cfg.Pool.Workers() != cfg.Workers {
				panic(fmt.Sprintf("bless: shared pool width %d != Workers %d", cfg.Pool.Workers(), cfg.Workers))
			}
			f.pool = cfg.Pool
		} else {
			f.pool = par.New(cfg.Workers)
		}
		f.p1 = func(lo, hi, w int) { f.phase1(lo, hi, &f.shards[w].Stats) }
		f.p2 = func(lo, hi, w int) { f.phase2(lo, hi, &f.shards[w].Stats) }
	}
	for i := range f.nics {
		f.nics[i] = noc.NewNIC(i)
	}
	if cfg.Arb == Random {
		root := rng.New(cfg.Seed ^ 0xb1e55)
		f.randSrc = make([]*rng.Source, n)
		for i := range f.randSrc {
			f.randSrc[i] = root.SplitIndex(i)
		}
	}
	if cfg.SideBuffer > 0 {
		f.side = make([]noc.Flit, n*cfg.SideBuffer)
		f.sideHead = make([]int32, n)
		f.sideCount = make([]int32, n)
	}
	if cfg.Adaptive {
		f.load = make([]uint32, n*maxDirs)
	}
	f.stats.Links = cfg.Topology.Links()
	return f
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// Cycle returns the number of completed cycles.
func (f *Fabric) Cycle() int64 { return f.cycle }

// NIC returns node i's network interface.
func (f *Fabric) NIC(i int) *noc.NIC { return f.nics[i] }

// Stats returns the accumulated counters, merging worker shards.
func (f *Fabric) Stats() noc.Stats {
	s := f.stats
	for i := range f.shards {
		s.Merge(f.shards[i].Stats)
	}
	s.Cycles = f.cycle
	return s
}

// Drained reports whether no flit is in flight or queued.
func (f *Fabric) Drained() bool {
	if f.inflight != 0 {
		return false
	}
	for _, nic := range f.nics {
		if nic.HasTraffic() || nic.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// InFlight returns the number of flits currently inside the network.
func (f *Fabric) InFlight() int64 { return f.inflight }

// Step advances one cycle: phase 1 arbitrates every router, phase 2
// commits the chosen outputs onto the link pipelines.
func (f *Fabric) Step() {
	nodes := f.top.Nodes()
	if f.pool == nil {
		f.phase1(0, nodes, &f.shards[0].Stats)
		f.phase2(0, nodes, &f.shards[0].Stats)
	} else {
		f.pool.Run(nodes, f.p1)
		f.pool.Run(nodes, f.p2)
	}
	f.updateInflight()
	f.cycle++
}

// Close releases the fabric's own worker pool. Shared pools (Config.
// Pool) belong to their creator and are left running.
func (f *Fabric) Close() {
	if f.pool != nil && f.pool != f.cfg.Pool {
		f.pool.Close()
	}
}

// phase1 reads link heads for nodes [lo,hi), arbitrates, ejects, injects,
// and records the chosen outputs in outBuf. It writes only node-local
// state (its own in-slots, its outBuf row, its NIC) and shard counters.
func (f *Fabric) phase1(lo, hi int, st *noc.Stats) {
	stage := int(f.cycle % int64(f.depth))
	var arr [maxDirs]noc.Flit
	var ord [maxDirs]int
	for node := lo; node < hi; node++ {
		// Collect arrivals at the head stage and clear the slots.
		na := 0
		base := node * maxDirs
		for d := 0; d < maxDirs; d++ {
			s := &f.in[(base+d)*f.depth+stage]
			if s.ok {
				arr[na] = s.f
				na++
				s.ok = false
			}
		}
		st.Arbitrations += int64(na)

		// Order contenders. Oldest-First sorts by the age total order;
		// Random shuffles.
		for i := 0; i < na; i++ {
			ord[i] = i
		}
		if f.cfg.Arb == OldestFirst {
			for i := 1; i < na; i++ { // insertion sort, na <= 4
				j := i
				for j > 0 && noc.Older(&arr[ord[j]], &arr[ord[j-1]]) {
					ord[j], ord[j-1] = ord[j-1], ord[j]
					j--
				}
			}
		} else if na > 1 {
			src := f.randSrc[node]
			for i := na - 1; i > 0; i-- {
				j := src.Intn(i + 1)
				ord[i], ord[j] = ord[j], ord[i]
			}
		}

		// Eject up to EjectWidth arrivals destined here, in priority
		// order; the rest must be routed onward (deflected past their
		// destination, as FLIT-BLESS does under ejection contention).
		out := f.outBuf[base : base+maxDirs]
		for d := range out {
			out[d].ok = false
		}
		nic := f.nics[node]
		ejected := 0
		var used [maxDirs]bool
		for k := 0; k < na; k++ {
			fl := &arr[ord[k]]
			if int(fl.Dst) == node && ejected < f.cfg.EjectWidth {
				ejected++
				st.FlitsEjected++
				st.CrossbarTraversals++
				st.NetFlitLatencySum += f.cycle - fl.Inject
				if f.sp != nil {
					f.sp.AddEject(node)
				}
				if f.tr != nil {
					f.tr.Eject(f.cycle, node, fl)
				}
				if _, done := nic.Receive(fl, f.cycle); done {
					st.PacketsDelivered++
					st.PacketLatencySum += f.cycle - fl.Enq
				}
				fl.Dst = -1 // consumed marker
				continue
			}
		}

		// Assign output ports in priority order. With MinBD side
		// buffering, one would-be-deflected flit per cycle is absorbed
		// into the side buffer instead of misrouting.
		sideSlot := f.side != nil && f.sideCount[node] < int32(f.cfg.SideBuffer)
		for k := 0; k < na; k++ {
			fl := &arr[ord[k]]
			if fl.Dst == -1 {
				continue
			}
			f.assignPort(node, fl, &used, out, st, &sideSlot)
		}

		// Side-buffer re-injection: one buffered flit per cycle re-enters
		// when a port is free, with priority over NI injection (MinBD).
		f.reinjectSide(node, &used, out, st)

		// Injection: the node may inject while an output link is free.
		f.inject(node, nic, &used, out, st)

		// Distributed congestion signalling: mark every departing flit.
		if f.policy.MarkCongested(node) {
			for d := range out {
				if out[d].ok {
					out[d].f.CongBit = true
				}
			}
		}

		// Adaptive routing's local congestion estimate: decay every 64
		// cycles, count this cycle's busy output ports.
		if f.load != nil {
			if f.cycle&63 == 0 {
				for d := 0; d < maxDirs; d++ {
					f.load[base+d] -= f.load[base+d] >> 1
				}
			}
			for d := 0; d < maxDirs; d++ {
				if out[d].ok {
					f.load[base+d]++
				}
			}
		}
	}
}

// assignPort gives fl an output direction: its XY choice if free, else
// a free productive direction, else — if a side-buffer slot is
// available this cycle — the side buffer, else the least-harmful free
// direction (a deflection).
func (f *Fabric) assignPort(node int, fl *noc.Flit, used *[maxDirs]bool, out []slot, st *noc.Stats, sideSlot *bool) {
	if int(fl.Dst) != node {
		if d := f.desiredPort(node, int(fl.Dst), used); d != topology.Invalid {
			used[d] = true
			out[d] = slot{f: *fl, ok: true}
			st.CrossbarTraversals++
			return
		}
	}
	// Absorb into the side buffer instead of deflecting, when enabled
	// and not already used this cycle.
	if *sideSlot {
		*sideSlot = false
		d := f.cfg.SideBuffer
		idx := node*d + int(f.sideHead[node]+f.sideCount[node])%d
		f.side[idx] = *fl
		f.sideCount[node]++
		st.BufferWrites++
		if f.tr != nil {
			f.tr.Buffer(f.cycle, node, fl)
		}
		return
	}

	// Deflect to the free valid port that hurts least (smallest
	// resulting distance to the destination). One always exists: the
	// number of flits needing ports never exceeds the node's degree.
	best := topology.Invalid
	bestDist := int(^uint(0) >> 1)
	for d := topology.Port(0); d < topology.NumDirs; d++ {
		if used[d] || !f.top.HasPort(node, d) {
			continue
		}
		dist := 0
		if int(fl.Dst) != node {
			dist = f.top.Distance(f.top.Neighbor(node, d), int(fl.Dst))
		}
		if dist < bestDist {
			best = d
			bestDist = dist
		}
	}
	if best == topology.Invalid {
		panic(fmt.Sprintf("bless: no free port at node %d for flit %v->%v", node, fl.Src, fl.Dst))
	}
	used[best] = true
	out[best] = slot{f: *fl, ok: true}
	st.CrossbarTraversals++
	st.Deflections++
	if f.sp != nil {
		f.sp.AddDeflect(node)
	}
	if f.tr != nil {
		f.tr.Deflect(f.cycle, node, fl)
	}
}

// reinjectSide moves the side buffer's head flit back into the router
// when an output port is free (one per cycle, before NI injection).
func (f *Fabric) reinjectSide(node int, used *[maxDirs]bool, out []slot, st *noc.Stats) {
	if f.side == nil || f.sideCount[node] == 0 {
		return
	}
	d := f.cfg.SideBuffer
	head := &f.side[node*d+int(f.sideHead[node])]
	dir := f.freePortToward(node, int(head.Dst), used)
	if dir == topology.Invalid {
		return
	}
	used[dir] = true
	out[dir] = slot{f: *head, ok: true}
	f.sideHead[node] = (f.sideHead[node] + 1) % int32(d)
	f.sideCount[node]--
	st.BufferReads++
	st.CrossbarTraversals++
}

// inject moves up to InjectWidth flits from the NIC into free output
// ports, consulting the policy for request flits, and reports the
// starvation outcome.
func (f *Fabric) inject(node int, nic *noc.NIC, used *[maxDirs]bool, out []slot, st *noc.Stats) {
	wanted := false
	injected := false
	throttled := false
	for w := 0; w < f.cfg.InjectWidth; w++ {
		head := nic.Head()
		if head == nil {
			break
		}
		wanted = true
		dir := f.freePortToward(node, int(head.Dst), used)
		if dir == topology.Invalid {
			break // no free output link: starved
		}
		if noc.ThrottledKind(head.Kind) && !f.policy.Allow(node) {
			throttled = true
			break // blocked by Algorithm 3's gate, not by the network
		}
		fl := nic.Pop()
		fl.Inject = f.cycle
		used[dir] = true
		out[dir] = slot{f: fl, ok: true}
		st.FlitsInjected++
		st.QueueLatencySum += f.cycle - fl.Enq
		st.CrossbarTraversals++
		injected = true
		if f.sp != nil {
			f.sp.AddInject(node)
		}
		if f.tr != nil {
			f.tr.Inject(f.cycle, node, &fl)
		}
	}
	if wanted {
		st.WantedCycles++
		if !injected {
			if throttled {
				st.ThrottledCycles++
				if f.sp != nil {
					f.sp.AddThrottle(node)
				}
			} else {
				st.StarvedCycles++
				if f.sp != nil {
					f.sp.AddStarve(node)
				}
			}
		}
	}
	f.policy.Tick(node, wanted, injected, throttled)
}

// desiredPort returns fl's preferred free productive output direction:
// strict XY first under the default routing, or the least-recently-busy
// productive port under adaptive routing. Invalid means no productive
// port is free. Both the XY choice and the productive set are
// precomputed table lookups; the mask is scanned low-bit-first, which
// matches the direction order the old slice-based loop produced.
func (f *Fabric) desiredPort(node, dst int, used *[maxDirs]bool) topology.Port {
	if f.load == nil {
		// Strict XY, falling back to any free productive direction.
		if w := f.top.XYRoute(node, dst); w != topology.Local && !used[w] && f.top.HasPort(node, w) {
			return w
		}
		for m := f.top.ProductiveMask(node, dst); m != 0; m &= m - 1 {
			if d := topology.Port(bits.TrailingZeros8(m)); !used[d] {
				return d
			}
		}
		return topology.Invalid
	}
	// Adaptive: least-loaded free productive direction.
	best := topology.Invalid
	bestLoad := ^uint32(0)
	for m := f.top.ProductiveMask(node, dst); m != 0; m &= m - 1 {
		d := topology.Port(bits.TrailingZeros8(m))
		if used[d] {
			continue
		}
		if l := f.load[node*maxDirs+int(d)]; l < bestLoad {
			best = d
			bestLoad = l
		}
	}
	return best
}

// freePortToward returns a free output direction, preferring productive
// directions toward dst, or Invalid if every valid port is taken.
func (f *Fabric) freePortToward(node, dst int, used *[maxDirs]bool) topology.Port {
	if dst != node {
		if d := f.desiredPort(node, dst, used); d != topology.Invalid {
			return d
		}
	}
	for d := topology.Port(0); d < topology.NumDirs; d++ {
		if !used[d] && f.top.HasPort(node, d) {
			return d
		}
	}
	return topology.Invalid
}

// phase2 commits outBuf onto the link pipelines for nodes [lo,hi). The
// target ring slot (cycle%depth) was already consumed by its reader in
// phase 1 of this cycle and will be read again depth cycles from now.
func (f *Fabric) phase2(lo, hi int, st *noc.Stats) {
	stage := int(f.cycle % int64(f.depth))
	for node := lo; node < hi; node++ {
		base := node * maxDirs
		for d := 0; d < maxDirs; d++ {
			o := &f.outBuf[base+d]
			if !o.ok {
				continue
			}
			o.ok = false
			nb := f.top.Neighbor(node, topology.Port(d))
			ad := topology.Opposite(topology.Port(d))
			idx := (nb*maxDirs+int(ad))*f.depth + stage
			f.in[idx] = slot{f: o.f, ok: true}
			st.LinkTraversals++
			if f.sp != nil {
				f.sp.AddLink(node, d)
			}
		}
	}
}

// updateInflight recomputes the in-flight counter from shard totals.
func (f *Fabric) updateInflight() {
	var inj, ej int64
	for i := range f.shards {
		inj += f.shards[i].Stats.FlitsInjected
		ej += f.shards[i].Stats.FlitsEjected
	}
	f.inflight = inj - ej
}
