// Package bless implements the bufferless deflection-routed on-chip
// network of Moscibroda & Mutlu's FLIT-BLESS design, the baseline
// architecture of the paper (§2.2).
//
// Routers have no buffers: every flit that arrives at a router in a
// cycle must leave it on some output link in the same (pipelined) cycle.
// When several flits contend for one productive output port, the oldest
// flit wins (Oldest-First arbitration) and the others are deflected to
// free ports. Because a 2D-mesh router has as many output links as input
// links, a free port always exists and routers never block or drop.
// Injection requires a free output link; otherwise the flit waits in the
// processor-side NIC queue and the cycle counts as starved.
//
// The fabric is stepped in a single pass per cycle: each router reads
// its arriving flits, arbitrates, and commits its outputs directly onto
// the downstream link pipelines. Every link ring carries one spare slot
// (see Fabric.in), so the slot a router writes this cycle is never one
// any router reads this cycle, and the pass shards safely across
// workers with no commit barrier.
//
// Two hot-path structures keep stepping cheap. Flits live in a shared
// noc.FlitPool and the link pipelines carry 4-byte handles, so an empty
// pipeline slot is a zero word and steady-state stepping allocates
// nothing. An active set skips routers with no work at all: a node is
// stepped only while it has NIC traffic, side-buffered flits, or flits
// somewhere in its incoming pipelines, and a router re-activates a
// neighbour whenever it commits a flit toward it (NIC Send notifies
// likewise). Skipping is exact, not approximate — see stepRouter — and
// engages only when the injection policy's per-cycle observation can be
// replayed in bulk (noc.IdleTicker) or is a no-op (noc.Open), and never
// under adaptive routing, whose per-cycle load decay is cheap only in
// the dense loop.
package bless

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

// Arbiter selects the contention-resolution policy.
type Arbiter int

const (
	// OldestFirst is the paper's baseline: flit age forms a total order,
	// the oldest contender wins each port, ties are impossible (§2.2).
	// The globally oldest flit always takes a productive port, so it
	// always makes progress: the network is livelock-free.
	OldestFirst Arbiter = iota
	// Random arbitration is the ablation: winners are picked uniformly.
	// It loses the livelock-freedom argument and ages packets unfairly.
	Random
)

func (a Arbiter) String() string {
	if a == Random {
		return "random"
	}
	return "oldest-first"
}

// Config parameterises the fabric.
type Config struct {
	// Topology is required.
	Topology *topology.Topology
	// HopLatency is the pipeline depth of one hop in cycles (router
	// pipeline + link). The paper's Table 2 uses 2-cycle routers and
	// 1-cycle links; 0 means the default of 3.
	HopLatency int
	// EjectWidth is the number of flits a node can eject per cycle; 0
	// means 2 (a 2-flit-wide NI datapath). Arrivals beyond it are
	// deflected (§2.2). Width 1 makes ejection the system bottleneck
	// under multi-flit reply traffic — deflection storms around
	// destinations inflate latency far beyond the paper's flat Fig. 2(a)
	// curve — so the wider NI is the faithful default.
	EjectWidth int
	// InjectWidth is the number of flits a node can inject per cycle;
	// 0 means 1.
	InjectWidth int
	// Policy gates and observes injection; nil means noc.Open{}.
	Policy noc.InjectionPolicy
	// Arb selects the arbitration policy.
	Arb Arbiter
	// SideBuffer enables MinBD-style minimal buffering (Fallin et al.,
	// NOCS 2012, cited as [22]): a small per-router side buffer that
	// absorbs up to one would-be-deflected flit per cycle and
	// re-injects it when an output port is free (with priority over NI
	// injection). 0 disables it; MinBD uses 4 flits.
	SideBuffer int
	// Adaptive replaces strict XY routing with locally congestion-aware
	// productive-port selection (§7 "Traffic Engineering"): among the
	// productive directions, a flit takes the one whose output port has
	// been least busy recently, steering around hot regions. Routing
	// stays minimal (only productive ports are preferred), so delivery
	// guarantees are unchanged.
	Adaptive bool
	// NoActiveSet forces every router to be stepped every cycle even
	// when the active-set conditions hold. Skipping is exact — counters
	// and observability output are identical either way (pinned by
	// TestActiveSetExact in stepbench) — so this exists for that test
	// and for isolating the optimisation in benchmarks.
	NoActiveSet bool
	// Seed seeds the Random arbiter's per-node streams.
	Seed uint64
	// Workers shards the per-cycle node loop; 0 means 1 (sequential).
	// When >1, Policy must tolerate concurrent calls for distinct nodes.
	Workers int
	// Pool optionally supplies a shared persistent worker pool (the
	// system simulator passes one pool to the fabric and its own node
	// loop). Its width must equal Workers. Nil makes the fabric create
	// its own pool when sharding engages.
	Pool *par.Pool
	// Probe supplies the observability hooks; the zero Probe (nil
	// collectors) costs one predictable branch per event.
	Probe obs.Probe
}

const maxDirs = int(topology.NumDirs)

// linkRef locates the downstream end of one outgoing link; see
// Fabric.links.
type linkRef struct {
	idx, nb int32
}

// arrKey is one collected arrival's arbitration state, copied out of
// the flit pool's hot plane so the sort and routing loops run on
// L1-resident scratch instead of re-chasing scattered pool entries.
// inject/seq/index replicate noc.Older's field order.
type arrKey struct {
	inject int64
	seq    uint64
	dst    int32
	index  uint8
}

// olderKey is noc.OlderHot on copied keys: the same Oldest-First total
// order (injection cycle, packet sequence, flit index).
func olderKey(a, b *arrKey) bool {
	if a.inject != b.inject {
		return a.inject < b.inject
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.index < b.index
}

// stepScratch is one worker's arbitration workspace: the collected
// arrival handles and their arbitration keys, the age order, and the
// departing flit per output port. Padded so two workers' scratch never
// shares a cache line.
type stepScratch struct {
	hs   [maxDirs]noc.Handle
	keys [maxDirs]arrKey
	ord  [maxDirs]int32
	out  [maxDirs]noc.Handle
	_    [64]byte
}

// Fabric is the bufferless network. It implements noc.Network.
type Fabric struct {
	top    *topology.Topology
	cfg    Config
	policy noc.InjectionPolicy
	cycle  int64
	depth  int

	// ejectW, injectW, sideCap and arb mirror the Config fields the
	// per-node loop consults every cycle, hoisted onto the Fabric so the
	// hot path loads them without chasing the embedded Config.
	ejectW  int
	injectW int
	sideCap int32
	arb     Arbiter

	nics []*noc.NIC
	// fpool stores every in-network flit; pipelines carry its handles.
	// hotp caches fpool's hot plane across one step (refreshed after
	// each Reserve, the only growth point) so per-flit hot accesses are
	// one indexed load.
	fpool *noc.FlitPool
	hotp  []noc.FlitHot
	// in holds the incoming link pipelines in stage-major layout:
	// in[stage*planeSz + n*4 + d] is stage s of the link arriving at
	// node n from direction d. The ring has ringLen = depth+1 stages:
	// the head plane (cycle%ringLen) is read by node n in the cycle a
	// flit arrives, while the upstream router writes into plane
	// (cycle+depth)%ringLen for arrival depth cycles later. With one
	// spare plane those two indices can never coincide, so routers
	// commit outputs directly during the node pass — no phase-2
	// barrier or staging buffer — and cross-node traffic still lands
	// on distinct array elements. Stage-major order makes the node
	// pass sweep each plane sequentially (a node's four read slots are
	// 16 contiguous bytes, and a commit lands near the reader's
	// cursor), so the working set per cycle is two L1-resident planes
	// instead of the whole array. Each link has one writer (the
	// upstream node) and one reader (node n); 0 means empty.
	in      []noc.Handle
	ringLen int
	planeSz int
	// stage and wstage are this cycle's read and write ring slots,
	// computed once per Step so the per-node loop never divides.
	stage  int
	wstage int

	// side[n*SideBuffer ...] are the per-node MinBD side buffers (ring
	// per node); sideHead/sideCount index them. Empty when disabled.
	side      []noc.Handle
	sideHead  []int32
	sideCount []int32

	// load[(n*4)+d] is an exponentially-decayed busy count per output
	// port, the local congestion estimate adaptive routing consults.
	// Only node n's phase-1 shard touches its row.
	load []uint32

	// Active-set state (nil / unused when skip is false). Because
	// commits happen during the node pass, activation must not race
	// with the owner's deactivation; active[n] is a tiny atomic state
	// machine: 0 idle, 1 active, 2 freshly woken. Activators (link
	// committers, NIC Send notifications) Store 2; the owner
	// normalises 2→1 with a CAS before stepping and deactivates with
	// CAS(1→0), which fails — leaving the node awake — whenever an
	// activation raced in. A woken node's extra step is a no-op
	// (counter-invisible), so the set of stepped nodes may vary with
	// worker count but every observable output is identical.
	// lastTick[n] counts the cycles for which the policy has observed
	// node n, so a skipped stretch is replayed in one IdleTicker call
	// on wake-up.
	skip     bool
	active   []uint32
	idle     noc.IdleTicker
	lastTick []int64

	// openPol short-circuits the injection-policy interface calls when
	// the policy is noc.Open: three dynamic dispatches per node per
	// cycle (Allow, MarkCongested, Tick) compile down to nothing in the
	// common unthrottled configuration.
	openPol bool

	// atomicAct selects the activation flavour: with worker sharding,
	// commits use the 3-state atomic protocol described on active;
	// sequential stepping uses plain load-checked stores and scans the
	// write stage too, which is race-free with a single goroutine and
	// saves two atomics per link traversal.
	atomicAct bool

	// links[n*4+d] resolves the link leaving node n in direction d to
	// its destination pipeline: idx is the in-plane offset
	// neighbour*4+arrivalDir, nb the neighbour; idx is -1 off the mesh
	// edge. Committing is pure table walks with this in place.
	links []linkRef

	// inCount[n] counts the flits currently queued in node n's incoming
	// pipelines (all stages of its in-column). Maintained only under
	// sequential stepping (atomicAct false, fixed at construction),
	// where it replaces the per-plane alive scan with one load;
	// sharded stepping keeps the scan because cross-shard commits
	// would race on the counters.
	inCount []int32

	// fastRT caches Topology.RouteTableInUse so the arbitration loops
	// can take the inlinable packed-table lookup without an interface
	// query per flit.
	fastRT bool

	// scr[w] is worker w's arbitration scratch. The per-flit arrays
	// live here rather than on stepRouter's frame so stepping a node
	// does not re-zero ~100 bytes of locals: every slot is written
	// before it is read (hs/hot/ord up to na, out only for ports whose
	// free bit was claimed).
	scr []stepScratch

	// reserveNeeds is Step's per-shard Reserve argument, kept allocated.
	reserveNeeds []int

	// shards[w] are worker w's counters, cache-line padded so parallel
	// phases never false-share; Stats() merges them.
	shards []par.PaddedStats
	// pool runs the node pass when sharding engages; nil means
	// sequential stepping. p1 is the prebuilt closure, so Step
	// allocates nothing.
	pool *par.Pool
	p1   func(lo, hi, worker int)

	stats    noc.Stats
	inflight int64

	// tr and sp are the observability collectors; nil when disabled
	// (the common case), so every hook is one predictable branch.
	tr *obs.Tracer
	sp *obs.Spatial

	randSrc []*rng.Source // per node, Random arbiter only
}

// New constructs a bufferless fabric.
func New(cfg Config) *Fabric {
	if cfg.Topology == nil {
		panic("bless: Config.Topology is required")
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 3
	}
	if cfg.EjectWidth <= 0 {
		cfg.EjectWidth = 2
	}
	if cfg.InjectWidth <= 0 {
		cfg.InjectWidth = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = noc.Open{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	n := cfg.Topology.Nodes()
	f := &Fabric{
		top:          cfg.Topology,
		cfg:          cfg,
		policy:       cfg.Policy,
		depth:        cfg.HopLatency,
		ringLen:      cfg.HopLatency + 1,
		planeSz:      n * maxDirs,
		nics:         make([]*noc.NIC, n),
		fpool:        noc.NewFlitPool(cfg.Workers),
		in:           make([]noc.Handle, n*maxDirs*(cfg.HopLatency+1)),
		reserveNeeds: make([]int, cfg.Workers),
		shards:       make([]par.PaddedStats, cfg.Workers),
		tr:           cfg.Probe.Tracer,
		sp:           cfg.Probe.Spatial,
		ejectW:       cfg.EjectWidth,
		injectW:      cfg.InjectWidth,
		sideCap:      int32(cfg.SideBuffer),
		arb:          cfg.Arb,
	}
	// Sharding pays only when every worker gets a few nodes; below that
	// the fabric steps sequentially and the pool is never consulted.
	if cfg.Workers > 1 && n >= cfg.Workers*4 {
		if cfg.Pool != nil {
			if cfg.Pool.Workers() != cfg.Workers {
				panic(fmt.Sprintf("bless: shared pool width %d != Workers %d", cfg.Pool.Workers(), cfg.Workers))
			}
			f.pool = cfg.Pool
		} else {
			f.pool = par.New(cfg.Workers)
		}
		f.p1 = func(lo, hi, w int) { f.phase1(lo, hi, w, &f.shards[w].Stats) }
	}
	f.atomicAct = f.pool != nil
	f.fastRT = cfg.Topology.RouteTableInUse()
	f.scr = make([]stepScratch, cfg.Workers)
	f.idle, _ = cfg.Policy.(noc.IdleTicker)
	_, open := cfg.Policy.(noc.Open)
	f.openPol = open
	f.skip = !cfg.NoActiveSet && !cfg.Adaptive && (open || f.idle != nil)
	if f.skip && !f.atomicAct {
		f.inCount = make([]int32, n)
	}
	f.links = make([]linkRef, n*maxDirs)
	for node := 0; node < n; node++ {
		for d := 0; d < maxDirs; d++ {
			nb := cfg.Topology.Neighbor(node, topology.Port(d))
			if nb < 0 {
				f.links[node*maxDirs+d] = linkRef{idx: -1, nb: -1}
				continue
			}
			ad := int(topology.Opposite(topology.Port(d)))
			f.links[node*maxDirs+d] = linkRef{
				idx: int32(nb*maxDirs + ad),
				nb:  int32(nb),
			}
		}
	}
	if f.skip {
		f.active = make([]uint32, n)
		f.lastTick = make([]int64, n)
	}
	for i := range f.nics {
		f.nics[i] = noc.NewNIC(i)
		if f.skip {
			f.nics[i].SetNotify(f.activate)
		}
	}
	if cfg.Arb == Random {
		root := rng.New(cfg.Seed ^ 0xb1e55)
		f.randSrc = make([]*rng.Source, n)
		for i := range f.randSrc {
			f.randSrc[i] = root.SplitIndex(i)
		}
	}
	if cfg.SideBuffer > 0 {
		f.side = make([]noc.Handle, n*cfg.SideBuffer)
		f.sideHead = make([]int32, n)
		f.sideCount = make([]int32, n)
	}
	if cfg.Adaptive {
		f.load = make([]uint32, n*maxDirs)
	}
	f.stats.Links = cfg.Topology.Links()
	return f
}

// activate flags a node as freshly woken (see the active field's state
// machine). Atomic because commits and NIC notifications may come from
// any worker shard.
func (f *Fabric) activate(node int) {
	if !f.atomicAct {
		// Sequential fabrics take Sends only between steps; a plain
		// store keeps the NIC notify off the atomic path.
		f.active[node] = 2
		return
	}
	atomic.StoreUint32(&f.active[node], 2)
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// Cycle returns the number of completed cycles.
func (f *Fabric) Cycle() int64 { return f.cycle }

// NIC returns node i's network interface.
func (f *Fabric) NIC(i int) *noc.NIC { return f.nics[i] }

// ActiveSet reports whether active-set skipping is engaged and, if so,
// how many nodes are currently flagged active. Sequential regions only.
func (f *Fabric) ActiveSet() (active int, enabled bool) {
	if !f.skip {
		return 0, false
	}
	//nocvet:allow atomicmix sequential region between Step calls; the worker pool is parked, so plain loads cannot race
	for _, a := range f.active {
		if a != 0 {
			active++
		}
	}
	return active, true
}

// Stats returns the accumulated counters, merging worker shards.
func (f *Fabric) Stats() noc.Stats {
	s := f.stats
	for i := range f.shards {
		s.Merge(f.shards[i].Stats)
	}
	s.Cycles = f.cycle
	return s
}

// Drained reports whether no flit is in flight or queued.
func (f *Fabric) Drained() bool {
	if f.inflight != 0 {
		return false
	}
	for _, nic := range f.nics {
		if nic.HasTraffic() || nic.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// InFlight returns the number of flits currently inside the network.
func (f *Fabric) InFlight() int64 { return f.inflight }

// SyncPolicy replays every pending idle stretch into the policy so its
// per-node state (starvation windows) is as if no router had been
// skipped. The system simulator calls it before each policy epoch; it
// implements noc.PolicySyncer.
func (f *Fabric) SyncPolicy() {
	if !f.skip || f.idle == nil {
		return
	}
	for node := range f.lastTick {
		if gap := f.cycle - f.lastTick[node]; gap > 0 {
			f.idle.TickIdle(node, gap)
			f.lastTick[node] = f.cycle
		}
	}
}

// Step advances one cycle: a single pass over the (active) routers,
// each reading its arriving flits, arbitrating, and committing its
// outputs onto the downstream link pipelines.
func (f *Fabric) Step() {
	nodes := f.top.Nodes()
	f.stage = int(f.cycle % int64(f.ringLen))
	f.wstage = f.stage + f.depth
	if f.wstage >= f.ringLen {
		f.wstage -= f.ringLen
	}
	if f.pool == nil {
		f.reserveNeeds[0] = nodes * f.cfg.InjectWidth
		for w := 1; w < len(f.reserveNeeds); w++ {
			f.reserveNeeds[w] = 0
		}
		f.fpool.Reserve(f.reserveNeeds)
		f.hotp = f.fpool.HotPlane()
		f.phase1(0, nodes, 0, &f.shards[0].Stats)
	} else {
		per := (nodes + f.cfg.Workers - 1) / f.cfg.Workers
		for w := range f.reserveNeeds {
			f.reserveNeeds[w] = per * f.cfg.InjectWidth
		}
		f.fpool.Reserve(f.reserveNeeds)
		f.hotp = f.fpool.HotPlane()
		f.pool.Run(nodes, f.p1)
	}
	f.updateInflight()
	f.cycle++
}

// Close releases the fabric's own worker pool. Shared pools (Config.
// Pool) belong to their creator and are left running.
func (f *Fabric) Close() {
	if f.pool != nil && f.pool != f.cfg.Pool {
		f.pool.Close()
	}
}

// phase1 steps nodes [lo,hi), skipping inactive ones when the active
// set is engaged. Each router touches only single-writer state: its own
// pipeline heads, its NIC, the write-stage slots of its outgoing links
// (disjoint from every same-cycle read; see the in field), shard
// counters, and the atomic active words.
func (f *Fabric) phase1(lo, hi, w int, st *noc.Stats) {
	if !f.skip {
		for node := lo; node < hi; node++ {
			f.stepRouter(node, w, st)
		}
		return
	}
	if !f.atomicAct {
		// Sequential stepping: nothing can race the owner between its
		// load and its store, so the state machine runs on plain
		// accesses (a demotion or deactivation can never clobber a
		// concurrent wake-up — there is none).
		for node := lo; node < hi; node++ {
			a := f.active[node]
			if a == 0 {
				continue
			}
			alive := f.stepRouter(node, w, st)
			if a == 2 {
				f.active[node] = 1
			} else if !alive {
				f.active[node] = 0
			}
		}
		return
	}
	for node := lo; node < hi; node++ {
		a := atomic.LoadUint32(&f.active[node])
		if a == 0 {
			continue
		}
		alive := f.stepRouter(node, w, st)
		if a == 2 {
			// Freshly woken: demote to plain-active rather than ever
			// deactivating, so a flit committed toward this node during
			// the cycle that woke it survives to next cycle's pipeline
			// scan. A failed CAS means another activation landed — the
			// node simply stays at 2.
			atomic.CompareAndSwapUint32(&f.active[node], 2, 1)
		} else if !alive {
			// The CAS fails — leaving the node awake — whenever an
			// activation raced in after this cycle's load.
			atomic.CompareAndSwapUint32(&f.active[node], 1, 0)
		}
	}
}

// stepRouter runs one router's cycle: read link heads, arbitrate,
// eject, inject, commit outputs downstream. It reports whether the node
// still has any work (NIC traffic, side-buffered flits, or flits in its
// incoming pipelines — everything that could make a future cycle differ
// from a no-op, so skipping a !alive node is exact).
func (f *Fabric) stepRouter(node, w int, st *noc.Stats) (alive bool) {
	if f.skip && f.idle != nil {
		// Replay the skipped stretch into the policy's starvation
		// window; inject's Tick below then covers this cycle. The
		// bookkeeping only exists for IdleTicker policies — SyncPolicy
		// and this replay are the sole readers — so other policies
		// skip the per-node store entirely.
		if gap := f.cycle - f.lastTick[node]; gap > 0 {
			f.idle.TickIdle(node, gap)
		}
		f.lastTick[node] = f.cycle + 1
	}

	stage := f.stage
	base := node * maxDirs

	// Collect arrivals at the head stage and clear the slots. The
	// scratch arrays are reused across nodes; only the first na slots
	// are ever read back.
	sc := &f.scr[w]
	hs := &sc.hs
	keys := &sc.keys
	ord := &sc.ord
	na := 0
	head := f.in[stage*f.planeSz+base : stage*f.planeSz+base+maxDirs]
	for d, h := range head {
		if h != 0 {
			hs[na] = h
			fh := &f.hotp[h]
			keys[na] = arrKey{inject: fh.Inject, seq: fh.Seq, dst: fh.Dst, index: fh.Index}
			na++
			head[d] = 0
		}
	}
	st.Arbitrations += int64(na)
	if f.inCount != nil {
		f.inCount[node] -= int32(na)
	}

	// Order contenders. Oldest-First sorts by the age total order;
	// Random shuffles.
	for i := 0; i < na; i++ {
		ord[i] = int32(i)
	}
	if f.arb == OldestFirst {
		for i := 1; i < na; i++ { // insertion sort, na <= 4
			j := i
			for j > 0 && olderKey(&keys[ord[j]], &keys[ord[j-1]]) {
				ord[j], ord[j-1] = ord[j-1], ord[j]
				j--
			}
		}
	} else if na > 1 {
		src := f.randSrc[node]
		for i := na - 1; i > 0; i-- {
			j := src.Intn(i + 1)
			ord[i], ord[j] = ord[j], ord[i]
		}
	}

	// One pass over the age order does both ejection and port
	// assignment: eject up to EjectWidth arrivals destined here (the
	// rest are routed onward, deflected past their destination as
	// FLIT-BLESS does under ejection contention). Ejection never
	// consumes an output port, so a merged pass assigns exactly the
	// ports the separate eject-then-assign passes did. The common
	// transit case — the XY port or a productive alternative is free
	// under the default routing — is inlined; ejection overflow,
	// side-buffering, deflection and adaptive routing take the
	// assignPort slow path. With MinBD side buffering, one
	// would-be-deflected flit per cycle is absorbed into the side
	// buffer instead of misrouting.
	out := sc.out[:]
	nic := f.nics[node]
	ejected := 0
	// free tracks the node's unassigned valid output ports as a
	// bitmask; assigning a port clears its bit.
	full := f.top.PortMask(node)
	free := full
	sideSlot := f.side != nil && f.sideCount[node] < f.sideCap
	cross := int64(0) // batched st.CrossbarTraversals
	for k := 0; k < na; k++ {
		i := ord[k]
		ak := &keys[i]
		dst := int(ak.dst)
		if dst == node && ejected < f.ejectW {
			ejected++
			st.FlitsEjected++
			cross++
			st.NetFlitLatencySum += f.cycle - ak.inject
			var fl noc.Flit
			f.fpool.Get(hs[i], &fl)
			if f.sp != nil {
				f.sp.AddEject(node)
			}
			if f.tr != nil {
				f.tr.Eject(f.cycle, node, &fl)
			}
			if _, done := nic.Receive(&fl, f.cycle); done {
				st.PacketsDelivered++
				st.PacketLatencySum += f.cycle - fl.Enq
			}
			f.fpool.Free(w, hs[i])
			continue
		}
		if dst != node && f.load == nil && f.fastRT {
			xy, prod := f.top.RouteEntryFast(node, dst)
			if free&(1<<uint(xy)) != 0 { // xy != Local: dst differs
				free &^= 1 << uint(xy)
				out[xy] = hs[i]
				cross++
				continue
			}
			if m := prod & free; m != 0 {
				d := bits.TrailingZeros8(m)
				free &^= 1 << uint(d)
				out[d] = hs[i]
				cross++
				continue
			}
		}
		f.assignPort(node, hs[i], dst, &free, out, st, &sideSlot)
	}
	st.CrossbarTraversals += cross

	// Side-buffer re-injection: one buffered flit per cycle re-enters
	// when a port is free, with priority over NI injection (MinBD).
	if f.side != nil {
		f.reinjectSide(node, &free, out, st)
	}

	// Injection: the node may inject while an output link is free. An
	// empty NIC under the Open policy makes inject a no-op (wanted
	// stays false and there is no Tick to deliver), so the call is
	// skipped outright.
	if !f.openPol || nic.HasTraffic() {
		f.inject(node, w, nic, &free, out, st)
	}

	// Adaptive routing's periodic decay of the local congestion
	// estimate (this cycle's busy ports are counted in the commit loop).
	if f.load != nil && f.cycle&63 == 0 {
		for d := 0; d < maxDirs; d++ {
			f.load[base+d] -= f.load[base+d] >> 1
		}
	}

	// Commit departing flits straight onto the downstream pipelines.
	// The write stage trails every same-cycle read by one ring slot, so
	// these stores are invisible until the arrival cycle; congestion
	// marking and neighbour activation piggyback on the same walk.
	if assigned := full &^ free; assigned != 0 {
		cong := !f.openPol && f.policy.MarkCongested(node)
		wbase := f.wstage * f.planeSz
		st.LinkTraversals += int64(bits.OnesCount8(assigned))
		for m := assigned; m != 0; m &= m - 1 {
			d := bits.TrailingZeros8(m)
			h := out[d]
			if cong {
				//nocvet:allow shardwrite the hot-plane slot of h is owned by this worker: exactly one router holds a flit's handle per cycle
				f.hotp[h].CongBit = true
			}
			if f.load != nil {
				f.load[base+d]++
			}
			lk := f.links[base+d]
			//nocvet:allow shardwrite stage-major link-plane commit: the write stage is disjoint from every plane read this cycle, and each link slot has one writer
			f.in[wbase+int(lk.idx)] = h
			if f.sp != nil {
				f.sp.AddLink(node, d)
			}
			if f.skip {
				if !f.atomicAct {
					// Single goroutine: a plain load-checked store
					// suffices (the receiver may already have stepped
					// and deactivated this cycle).
					f.inCount[lk.nb]++
					if f.active[lk.nb] == 0 {
						f.active[lk.nb] = 1
					}
				} else if atomic.LoadUint32(&f.active[lk.nb]) != 2 {
					// Load-checked: at load the neighbour is usually
					// flagged already, and skipping the store keeps the
					// cache line clean for other committers. Anything
					// not already freshly woken must be re-stamped 2 so
					// a racing deactivation CAS fails.
					atomic.StoreUint32(&f.active[lk.nb], 2)
				}
			}
		}
	}

	alive = nic.HasTraffic() || (f.side != nil && f.sideCount[node] > 0)
	if f.skip && !alive {
		// Scan the incoming pipelines for queued flits. Under worker
		// sharding the write stage is excluded: it held no flit at the
		// cycle's start (its previous tenant was read last cycle), and
		// only a concurrent neighbour commit can fill it — a commit
		// whose Store(2) re-activates this node by itself, so skipping
		// the slot is both race-free and wakeup-safe. Sequential
		// stepping scans every slot instead: an earlier node may have
		// committed toward this one without re-flagging it (it was
		// still active at commit time), and the full scan is what keeps
		// that flit's node awake.
		if !f.atomicAct {
			// Sequential stepping: the occupancy counter is exact (it
			// is maintained by the same goroutine doing the scanning),
			// so "any flit queued toward this node" is one load. An
			// earlier node may have committed toward this one without
			// re-flagging it; the counter is what keeps it awake.
			alive = f.inCount[node] != 0
		} else {
			for s := 0; s < f.ringLen && !alive; s++ {
				if s == f.wstage {
					continue
				}
				q := s*f.planeSz + base
				for _, h := range f.in[q : q+maxDirs] {
					if h != 0 {
						alive = true
						break
					}
				}
			}
		}
	}
	return alive
}

// assignPort gives flit h an output direction: its XY choice if free,
// else a free productive direction, else — if a side-buffer slot is
// available this cycle — the side buffer, else the least-harmful free
// direction (a deflection).
func (f *Fabric) assignPort(node int, h noc.Handle, dst int, free *uint8, out []noc.Handle, st *noc.Stats, sideSlot *bool) {
	if dst != node {
		if d := f.desiredPort(node, dst, *free); d != topology.Invalid {
			*free &^= 1 << uint(d)
			out[d] = h
			st.CrossbarTraversals++
			return
		}
	}
	// Absorb into the side buffer instead of deflecting, when enabled
	// and not already used this cycle.
	if *sideSlot {
		*sideSlot = false
		d := f.cfg.SideBuffer
		idx := node*d + int(f.sideHead[node]+f.sideCount[node])%d
		f.side[idx] = h
		f.sideCount[node]++
		st.BufferWrites++
		if f.tr != nil {
			var fl noc.Flit
			f.fpool.Get(h, &fl)
			f.tr.Buffer(f.cycle, node, &fl)
		}
		return
	}

	// Deflect to the free valid port that hurts least (smallest
	// resulting distance to the destination). One always exists: the
	// number of flits needing ports never exceeds the node's degree.
	best := topology.Invalid
	bestDist := int(^uint(0) >> 1)
	for m := *free; m != 0; m &= m - 1 {
		d := topology.Port(bits.TrailingZeros8(m))
		dist := 0
		if dst != node {
			dist = f.top.Distance(f.top.Neighbor(node, d), dst)
		}
		if dist < bestDist {
			best = d
			bestDist = dist
		}
	}
	if best == topology.Invalid {
		panic(fmt.Sprintf("bless: no free port at node %d for flit ->%d", node, dst))
	}
	*free &^= 1 << uint(best)
	out[best] = h
	st.CrossbarTraversals++
	st.Deflections++
	if f.sp != nil {
		f.sp.AddDeflect(node)
	}
	if f.tr != nil {
		var fl noc.Flit
		f.fpool.Get(h, &fl)
		f.tr.Deflect(f.cycle, node, &fl)
	}
}

// reinjectSide moves the side buffer's head flit back into the router
// when an output port is free (one per cycle, before NI injection).
func (f *Fabric) reinjectSide(node int, free *uint8, out []noc.Handle, st *noc.Stats) {
	if f.sideCount[node] == 0 {
		return
	}
	d := f.cfg.SideBuffer
	//nocvet:allow handleleak peek: the handle stays owned by the side ring until the reinjection below succeeds and advances sideHead
	h := f.side[node*d+int(f.sideHead[node])]
	dir := f.freePortToward(node, int(f.fpool.Hot(h).Dst), *free)
	if dir == topology.Invalid {
		return
	}
	*free &^= 1 << uint(dir)
	out[dir] = h
	f.sideHead[node] = (f.sideHead[node] + 1) % int32(d)
	f.sideCount[node]--
	st.BufferReads++
	st.CrossbarTraversals++
}

// inject moves up to InjectWidth flits from the NIC into free output
// ports, consulting the policy for request flits, and reports the
// starvation outcome.
func (f *Fabric) inject(node, w int, nic *noc.NIC, free *uint8, out []noc.Handle, st *noc.Stats) {
	wanted := false
	injected := false
	throttled := false
	for i := 0; i < f.injectW; i++ {
		head := nic.Head()
		if head == nil {
			break
		}
		wanted = true
		dir := f.freePortToward(node, int(head.Dst), *free)
		if dir == topology.Invalid {
			break // no free output link: starved
		}
		if noc.ThrottledKind(head.Kind) && !f.openPol && !f.policy.Allow(node) {
			throttled = true
			break // blocked by Algorithm 3's gate, not by the network
		}
		fl := nic.Pop()
		fl.Inject = f.cycle
		*free &^= 1 << uint(dir)
		out[dir] = f.fpool.Alloc(w, &fl)
		st.FlitsInjected++
		st.QueueLatencySum += f.cycle - fl.Enq
		st.CrossbarTraversals++
		injected = true
		if f.sp != nil {
			f.sp.AddInject(node)
		}
		if f.tr != nil {
			f.tr.Inject(f.cycle, node, &fl)
		}
	}
	if wanted {
		st.WantedCycles++
		if !injected {
			if throttled {
				st.ThrottledCycles++
				if f.sp != nil {
					f.sp.AddThrottle(node)
				}
			} else {
				st.StarvedCycles++
				if f.sp != nil {
					f.sp.AddStarve(node)
				}
			}
		}
	}
	if !f.openPol {
		f.policy.Tick(node, wanted, injected, throttled)
	}
}

// desiredPort returns the flit's preferred free productive output
// direction: strict XY first under the default routing, or the
// least-recently-busy productive port under adaptive routing. Invalid
// means no productive port is free. Both the XY choice and the
// productive set are precomputed table lookups; the mask is scanned
// low-bit-first, which matches the direction order the old slice-based
// loop produced.
func (f *Fabric) desiredPort(node, dst int, free uint8) topology.Port {
	if f.load == nil {
		// Strict XY, falling back to any free productive direction.
		// One fused table load answers both queries; the XY port is
		// always valid when it exists, so free alone gates it.
		var xy topology.Port
		var prod uint8
		if f.fastRT {
			xy, prod = f.top.RouteEntryFast(node, dst)
		} else {
			xy, prod = f.top.RouteEntry(node, dst)
		}
		if xy != topology.Local && free&(1<<uint(xy)) != 0 {
			return xy
		}
		if m := prod & free; m != 0 {
			return topology.Port(bits.TrailingZeros8(m))
		}
		return topology.Invalid
	}
	// Adaptive: least-loaded free productive direction.
	best := topology.Invalid
	bestLoad := ^uint32(0)
	for m := f.top.ProductiveMask(node, dst) & free; m != 0; m &= m - 1 {
		d := topology.Port(bits.TrailingZeros8(m))
		if l := f.load[node*maxDirs+int(d)]; l < bestLoad {
			best = d
			bestLoad = l
		}
	}
	return best
}

// freePortToward returns a free output direction, preferring productive
// directions toward dst, or Invalid if every valid port is taken.
func (f *Fabric) freePortToward(node, dst int, free uint8) topology.Port {
	if dst != node {
		if d := f.desiredPort(node, dst, free); d != topology.Invalid {
			return d
		}
	}
	if free != 0 {
		return topology.Port(bits.TrailingZeros8(free))
	}
	return topology.Invalid
}

// updateInflight recomputes the in-flight counter from shard totals.
func (f *Fabric) updateInflight() {
	var inj, ej int64
	for i := range f.shards {
		inj += f.shards[i].Stats.FlitsInjected
		ej += f.shards[i].Stats.FlitsEjected
	}
	f.inflight = inj - ej
}
