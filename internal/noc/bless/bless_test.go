package bless

import (
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

func mesh(k int) *topology.Topology { return topology.NewSquare(topology.Mesh, k) }

func newFabric(k int, opts ...func(*Config)) *Fabric {
	cfg := Config{Topology: mesh(k)}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

// runUntilDrained steps until no traffic remains or maxCycles elapse.
func runUntilDrained(t *testing.T, f *Fabric, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if f.Drained() {
			return
		}
		f.Step()
	}
	if !f.Drained() {
		t.Fatalf("network not drained after %d cycles (inflight=%d)", maxCycles, f.InFlight())
	}
}

func TestSingleFlitDelivery(t *testing.T) {
	f := newFabric(4)
	src, dst := 0, 15
	f.NIC(src).Send(dst, noc.Request, 7, 1, 0)
	runUntilDrained(t, f, 200)
	d := f.NIC(dst).Delivered()
	if len(d) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(d))
	}
	p := d[0]
	if p.Token != 7 || int(p.Src) != src || int(p.Dst) != dst {
		t.Errorf("bad packet %+v", p)
	}
	// 6 hops at 3 cycles each = 18 cycles of pure network latency.
	if net := p.Eject - p.Inject; net != 18 {
		t.Errorf("uncontended net latency = %d, want 18", net)
	}
}

func TestMultiFlitReassembly(t *testing.T) {
	f := newFabric(4)
	f.NIC(2).Send(13, noc.Reply, 9, 4, 0)
	runUntilDrained(t, f, 400)
	d := f.NIC(13).Delivered()
	if len(d) != 1 || d[0].Len != 4 {
		t.Fatalf("want one 4-flit packet, got %v", d)
	}
	s := f.Stats()
	if s.FlitsInjected != 4 || s.FlitsEjected != 4 {
		t.Errorf("flit counts inj=%d ej=%d, want 4/4", s.FlitsInjected, s.FlitsEjected)
	}
}

// Property: flit conservation — everything injected is eventually ejected
// exactly once, under heavy random traffic.
func TestFlitConservation(t *testing.T) {
	f := newFabric(8)
	r := rng.New(42)
	sent := 0
	for cycle := 0; cycle < 2000; cycle++ {
		if cycle < 1000 {
			for n := 0; n < 64; n++ {
				if r.Bool(0.2) {
					dst := r.Intn(64)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, uint64(cycle), 1, f.Cycle())
						sent++
					}
				}
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 100000)
	s := f.Stats()
	if s.FlitsInjected != int64(sent) {
		t.Errorf("injected %d, want %d", s.FlitsInjected, sent)
	}
	if s.FlitsEjected != int64(sent) {
		t.Errorf("ejected %d, want %d (flits lost or duplicated)", s.FlitsEjected, sent)
	}
	total := 0
	for n := 0; n < 64; n++ {
		total += len(f.NIC(n).Delivered())
	}
	if total != sent {
		t.Errorf("delivered %d packets, want %d", total, sent)
	}
}

// Property: packets are delivered to the correct node only.
func TestDeliveryAddressing(t *testing.T) {
	f := newFabric(4)
	r := rng.New(7)
	want := make(map[int]int)
	for i := 0; i < 200; i++ {
		src, dst := r.Intn(16), r.Intn(16)
		if src == dst {
			continue
		}
		f.NIC(src).Send(dst, noc.Request, uint64(dst), 2, f.Cycle())
		want[dst]++
		f.Step()
	}
	runUntilDrained(t, f, 50000)
	for n := 0; n < 16; n++ {
		got := f.NIC(n).Delivered()
		if len(got) != want[n] {
			t.Errorf("node %d got %d packets, want %d", n, len(got), want[n])
		}
		for _, p := range got {
			if int(p.Dst) != n || p.Token != uint64(n) {
				t.Errorf("node %d received foreign packet %+v", n, p)
			}
		}
	}
}

// Oldest-First must deliver the oldest flit without deflection: inject a
// burst and check the first-injected packet has minimal latency even
// under contention toward a single hotspot.
func TestOldestFirstPriority(t *testing.T) {
	f := newFabric(4)
	dst := 15
	// Node 0 injects first; all other nodes flood the same destination.
	f.NIC(0).Send(dst, noc.Request, 999, 1, 0)
	f.Step()
	for n := 1; n < 15; n++ {
		for i := 0; i < 4; i++ {
			f.NIC(n).Send(dst, noc.Request, uint64(n), 1, f.Cycle())
		}
	}
	runUntilDrained(t, f, 20000)
	var first noc.Packet
	found := false
	for _, p := range f.NIC(dst).Delivered() {
		if p.Token == 999 {
			first = p
			found = true
		}
	}
	if !found {
		t.Fatal("oldest packet never delivered")
	}
	// 6 hops * 3 cycles; it was injected before the flood so it should
	// see an uncontended path.
	if net := first.Eject - first.Inject; net != 18 {
		t.Errorf("oldest flit latency %d, want 18 (it must never lose arbitration)", net)
	}
}

// Starvation: a node surrounded by heavy through-traffic should record
// starved cycles when its output links are all occupied.
func TestStarvationAccounting(t *testing.T) {
	f := newFabric(4)
	r := rng.New(3)
	for cycle := 0; cycle < 3000; cycle++ {
		for n := 0; n < 16; n++ {
			if f.NIC(n).QueueLen() < 8 {
				dst := r.Intn(16)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 4, f.Cycle())
				}
			}
		}
		f.Step()
	}
	s := f.Stats()
	if s.WantedCycles == 0 {
		t.Fatal("no injection attempts recorded")
	}
	if s.StarvedCycles == 0 {
		t.Error("heavy load should starve some injections")
	}
	if s.StarvedCycles > s.WantedCycles {
		t.Error("starved cycles cannot exceed wanted cycles")
	}
}

func TestDeflectionsHappenUnderLoad(t *testing.T) {
	f := newFabric(4)
	// Everyone sends to node 5 — guaranteed port contention.
	for round := 0; round < 50; round++ {
		for n := 0; n < 16; n++ {
			if n != 5 {
				f.NIC(n).Send(5, noc.Request, 0, 2, f.Cycle())
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 50000)
	if f.Stats().Deflections == 0 {
		t.Error("hotspot traffic must cause deflections")
	}
}

func TestNoDeflectionsWhenAlone(t *testing.T) {
	f := newFabric(8)
	f.NIC(0).Send(63, noc.Request, 0, 1, 0)
	runUntilDrained(t, f, 200)
	if d := f.Stats().Deflections; d != 0 {
		t.Errorf("lone flit deflected %d times", d)
	}
}

type blockAllPolicy struct{ ticks, wants int }

func (p *blockAllPolicy) Allow(int) bool { return false }

// Tick also fires for reply injections, which legitimately bypass Allow,
// so it only counts outcomes.
func (p *blockAllPolicy) Tick(_ int, wanted, injected, throttled bool) {
	p.ticks++
	if wanted {
		p.wants++
	}
}
func (p *blockAllPolicy) MarkCongested(int) bool { return false }

func TestPolicyBlocksRequests(t *testing.T) {
	pol := &blockAllPolicy{}
	f := newFabric(4, func(c *Config) { c.Policy = pol })
	f.NIC(0).Send(5, noc.Request, 0, 1, 0)
	for i := 0; i < 50; i++ {
		f.Step()
	}
	if f.Stats().FlitsInjected != 0 {
		t.Error("blocked request was injected")
	}
	if pol.wants == 0 {
		t.Error("policy never observed the injection attempt")
	}
	if got := f.Stats().ThrottledCycles; got == 0 {
		t.Error("throttle-blocked cycles must be counted as throttled")
	}
	if got := f.Stats().StarvedCycles; got != 0 {
		t.Errorf("throttle-blocked cycles must not count as starved, got %d", got)
	}
}

func TestPolicyDoesNotBlockReplies(t *testing.T) {
	f := newFabric(4, func(c *Config) { c.Policy = &blockAllPolicy{} })
	f.NIC(0).Send(5, noc.Reply, 0, 1, 0)
	runUntilDrained(t, f, 200)
	if len(f.NIC(5).Delivered()) != 1 {
		t.Error("reply must bypass the throttle")
	}
}

type markPolicy struct{ node int }

func (p *markPolicy) Allow(int) bool             { return true }
func (p *markPolicy) Tick(int, bool, bool, bool) {}
func (p *markPolicy) MarkCongested(n int) bool   { return n == p.node }

func TestCongestionBitPropagates(t *testing.T) {
	// Route 0 -> 3 passes through nodes 1 and 2 in a 4x4 mesh (XY).
	f := newFabric(4, func(c *Config) { c.Policy = &markPolicy{node: 1} })
	f.NIC(0).Send(3, noc.Request, 0, 1, 0)
	runUntilDrained(t, f, 200)
	d := f.NIC(3).Delivered()
	if len(d) != 1 || !d[0].CongBit {
		t.Error("congestion bit set at a transit node must arrive at the destination")
	}
	// A path that avoids the marked node must arrive clean.
	f2 := newFabric(4, func(c *Config) { c.Policy = &markPolicy{node: 1} })
	f2.NIC(4).Send(7, noc.Request, 0, 1, 0) // row y=1, never touches node 1
	runUntilDrained(t, f2, 200)
	d2 := f2.NIC(7).Delivered()
	if len(d2) != 1 || d2[0].CongBit {
		t.Error("congestion bit must not be set on unmarked paths")
	}
}

// Parallel stepping must be deterministic and equivalent to sequential.
func TestParallelEquivalence(t *testing.T) {
	run := func(workers int) noc.Stats {
		f := newFabric(8, func(c *Config) { c.Workers = workers })
		r := rng.New(11)
		for cycle := 0; cycle < 500; cycle++ {
			for n := 0; n < 64; n++ {
				if r.Bool(0.15) {
					dst := r.Intn(64)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, 0, 2, f.Cycle())
					}
				}
			}
			f.Step()
		}
		for !f.Drained() {
			f.Step()
		}
		return f.Stats()
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Errorf("parallel run diverged:\nseq %+v\npar %+v", seq, par)
	}
}

func TestRandomArbiterStillConserves(t *testing.T) {
	f := newFabric(4, func(c *Config) { c.Arb = Random; c.Seed = 5 })
	r := rng.New(21)
	sent := 0
	for cycle := 0; cycle < 500; cycle++ {
		for n := 0; n < 16; n++ {
			if r.Bool(0.3) {
				dst := r.Intn(16)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 1, f.Cycle())
					sent++
				}
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 200000)
	if got := f.Stats().FlitsEjected; got != int64(sent) {
		t.Errorf("random arbiter lost flits: ejected %d, want %d", got, sent)
	}
}

func TestTorusDelivery(t *testing.T) {
	f := New(Config{Topology: topology.NewSquare(topology.Torus, 4)})
	f.NIC(0).Send(15, noc.Request, 0, 1, 0)
	runUntilDrained(t, f, 200)
	p := f.NIC(15).Delivered()
	if len(p) != 1 {
		t.Fatal("torus did not deliver")
	}
	// Torus distance (0,0)->(3,3) is 2 hops via wraps: 6 cycles.
	if net := p[0].Eject - p[0].Inject; net != 6 {
		t.Errorf("torus latency %d, want 6", net)
	}
}

func TestEjectWidthLimit(t *testing.T) {
	// With eject width 1, two flits arriving simultaneously for the same
	// node cannot both leave the network in one cycle: one is deflected.
	f := newFabric(3, func(c *Config) { c.EjectWidth = 1 })
	// Nodes 3 (west of 4) and 5 (east of 4) inject simultaneously to 4.
	f.NIC(3).Send(4, noc.Request, 0, 1, 0)
	f.NIC(5).Send(4, noc.Request, 0, 1, 0)
	runUntilDrained(t, f, 200)
	if got := len(f.NIC(4).Delivered()); got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	if f.Stats().Deflections == 0 {
		t.Error("simultaneous arrivals beyond eject width must deflect")
	}
}

func TestUtilizationBounded(t *testing.T) {
	f := newFabric(4)
	r := rng.New(31)
	for cycle := 0; cycle < 2000; cycle++ {
		for n := 0; n < 16; n++ {
			if f.NIC(n).QueueLen() < 16 {
				dst := r.Intn(16)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 4, f.Cycle())
				}
			}
		}
		f.Step()
	}
	u := f.Stats().Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
}

func TestLivelockFreedomUnderSaturation(t *testing.T) {
	// Saturate the network for a long time; every packet injected in the
	// first phase must be delivered well before the run ends. Oldest-First
	// guarantees the oldest flit always progresses.
	f := newFabric(4)
	r := rng.New(17)
	type key struct{ seq uint64 }
	outstanding := map[key]int64{}
	for cycle := int64(0); cycle < 30000; cycle++ {
		for n := 0; n < 16; n++ {
			if f.NIC(n).QueueLen() < 4 && r.Bool(0.5) {
				dst := r.Intn(16)
				if dst != n {
					seq := f.NIC(n).Send(dst, noc.Request, 0, 1, cycle)
					outstanding[key{seq}] = cycle
				}
			}
		}
		f.Step()
		for n := 0; n < 16; n++ {
			for _, p := range f.NIC(n).Delivered() {
				delete(outstanding, key{p.Seq})
			}
		}
	}
	// Nothing injected more than 10000 cycles ago may remain undelivered.
	for k, enq := range outstanding {
		if 30000-enq > 10000 {
			t.Fatalf("packet %d stuck since cycle %d: livelock", k.seq, enq)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	f := New(Config{Topology: mesh(2)})
	if f.cfg.HopLatency != 3 || f.cfg.EjectWidth != 2 || f.cfg.InjectWidth != 1 || f.cfg.Workers != 1 {
		t.Errorf("defaults not applied: %+v", f.cfg)
	}
	if f.Stats().Links != 8 {
		t.Errorf("links = %d, want 8", f.Stats().Links)
	}
}

func TestNewPanicsWithoutTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without topology did not panic")
		}
	}()
	New(Config{})
}

func BenchmarkStep4x4Saturated(b *testing.B) {
	f := newFabric(4)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 16; n++ {
			if f.NIC(n).QueueLen() < 4 {
				dst := r.Intn(16)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 4, f.Cycle())
				}
			}
		}
		f.Step()
	}
}

func BenchmarkStep16x16Saturated(b *testing.B) {
	f := newFabric(16)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 256; n++ {
			if f.NIC(n).QueueLen() < 4 {
				dst := r.Intn(256)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 4, f.Cycle())
				}
			}
		}
		f.Step()
	}
}

func TestSideBufferConservation(t *testing.T) {
	f := newFabric(4, func(c *Config) { c.SideBuffer = 4 })
	r := rng.New(12)
	sent := 0
	for cycle := 0; cycle < 2000; cycle++ {
		if cycle < 1000 {
			for n := 0; n < 16; n++ {
				if r.Bool(0.3) {
					dst := r.Intn(16)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, 0, 2, f.Cycle())
						sent += 2
					}
				}
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 200000)
	s := f.Stats()
	if s.FlitsEjected != int64(sent) {
		t.Errorf("side-buffered fabric lost flits: ejected %d, want %d", s.FlitsEjected, sent)
	}
	if s.BufferWrites == 0 {
		t.Error("congested run never used the side buffer")
	}
	if s.BufferWrites != s.BufferReads {
		t.Errorf("side buffer not drained: writes %d, reads %d", s.BufferWrites, s.BufferReads)
	}
}

func TestSideBufferReducesDeflections(t *testing.T) {
	run := func(side int) noc.Stats {
		f := newFabric(4, func(c *Config) { c.SideBuffer = side })
		r := rng.New(13)
		for cycle := 0; cycle < 3000; cycle++ {
			for n := 0; n < 16; n++ {
				if f.NIC(n).QueueLen() < 8 {
					dst := r.Intn(16)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, 0, 3, f.Cycle())
					}
				}
			}
			f.Step()
		}
		return f.Stats()
	}
	plain := run(0)
	minbd := run(4)
	if minbd.Deflections >= plain.Deflections {
		t.Errorf("side buffer should reduce deflections: %d vs %d",
			minbd.Deflections, plain.Deflections)
	}
}

func TestSideBufferDisabledByDefault(t *testing.T) {
	f := newFabric(4)
	if f.side != nil {
		t.Error("side buffer allocated without being configured")
	}
}

func TestAdaptiveRoutingDelivers(t *testing.T) {
	f := newFabric(8, func(c *Config) { c.Adaptive = true })
	r := rng.New(14)
	sent := 0
	for cycle := 0; cycle < 1500; cycle++ {
		if cycle < 800 {
			for n := 0; n < 64; n++ {
				if r.Bool(0.2) {
					dst := r.Intn(64)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, 0, 1, f.Cycle())
						sent++
					}
				}
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 100000)
	if got := f.Stats().FlitsEjected; got != int64(sent) {
		t.Errorf("adaptive routing lost flits: %d vs %d", got, sent)
	}
}

func TestAdaptiveStaysMinimal(t *testing.T) {
	// A lone flit under adaptive routing still takes a shortest path.
	f := newFabric(8, func(c *Config) { c.Adaptive = true })
	f.NIC(0).Send(63, noc.Request, 0, 1, 0)
	runUntilDrained(t, f, 200)
	p := f.NIC(63).Delivered()
	if len(p) != 1 {
		t.Fatal("not delivered")
	}
	if net := p[0].Eject - p[0].Inject; net != 14*3 {
		t.Errorf("adaptive lone-flit latency %d, want minimal 42", net)
	}
	if f.Stats().Deflections != 0 {
		t.Error("adaptive routing deflected a lone flit")
	}
}

func TestAdaptiveSpreadsAroundContention(t *testing.T) {
	// Transpose-like column pressure: adaptive routing should deflect no
	// more (usually less) than strict XY under the same load.
	run := func(adaptive bool) noc.Stats {
		f := newFabric(8, func(c *Config) { c.Adaptive = adaptive })
		r := rng.New(15)
		for cycle := 0; cycle < 4000; cycle++ {
			for n := 0; n < 64; n++ {
				if f.NIC(n).QueueLen() < 4 && r.Bool(0.4) {
					x, y := f.top.Coord(n)
					f.NIC(n).Send(f.top.Node(y, x), noc.Request, 0, 1, f.Cycle())
				}
			}
			f.Step()
		}
		return f.Stats()
	}
	xy := run(false)
	ad := run(true)
	// Compare deflections per delivered flit.
	xyRate := float64(xy.Deflections) / float64(xy.FlitsEjected)
	adRate := float64(ad.Deflections) / float64(ad.FlitsEjected)
	if adRate > xyRate*1.1 {
		t.Errorf("adaptive deflection rate %.3f should not exceed XY %.3f by >10%%", adRate, xyRate)
	}
}

func TestWritebacksAreThrottledBless(t *testing.T) {
	f := newFabric(4, func(c *Config) { c.Policy = &blockAllPolicy{} })
	f.NIC(0).Send(5, noc.Writeback, 0, 3, 0)
	for i := 0; i < 300; i++ {
		f.Step()
	}
	if len(f.NIC(5).Delivered()) != 0 {
		t.Error("writeback bypassed the injection policy")
	}
	if f.Stats().ThrottledCycles == 0 {
		t.Error("blocked writeback cycles must count as throttled")
	}
}
