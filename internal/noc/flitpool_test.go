package noc

import (
	"reflect"
	"testing"
)

// TestFlitPoolCoversFlit pins, by reflection, that the hot and cold
// planes partition Flit exactly: same field names, same types, no
// field of Flit missing and none duplicated. A field added to Flit
// without a pool home would let recycled slots leak state between
// packets; this test turns that into a build-time failure.
func TestFlitPoolCoversFlit(t *testing.T) {
	plane := map[string]reflect.Type{}
	collect := func(st reflect.Type) {
		for i := 0; i < st.NumField(); i++ {
			f := st.Field(i)
			if _, dup := plane[f.Name]; dup {
				t.Errorf("field %s appears in both planes", f.Name)
			}
			plane[f.Name] = f.Type
		}
	}
	collect(reflect.TypeOf(FlitHot{}))
	collect(reflect.TypeOf(FlitCold{}))

	ft := reflect.TypeOf(Flit{})
	if got, want := len(plane), ft.NumField(); got != want {
		t.Errorf("planes define %d fields, Flit has %d", got, want)
	}
	for i := 0; i < ft.NumField(); i++ {
		f := ft.Field(i)
		pt, ok := plane[f.Name]
		if !ok {
			t.Errorf("Flit.%s has no home in FlitHot/FlitCold", f.Name)
			continue
		}
		if pt != f.Type {
			t.Errorf("Flit.%s is %v in the pool planes, want %v", f.Name, pt, f.Type)
		}
	}
}

// nonzeroFlit builds a Flit with every field set to a distinct nonzero
// value, via reflection so a new field cannot be forgotten.
func nonzeroFlit(t *testing.T) Flit {
	t.Helper()
	var f Flit
	v := reflect.ValueOf(&f).Elem()
	for i := 0; i < v.NumField(); i++ {
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Int8, reflect.Int32, reflect.Int64:
			fv.SetInt(int64(i) + 3)
		case reflect.Uint8, reflect.Uint64:
			fv.SetUint(uint64(i) + 3)
		default:
			t.Fatalf("unhandled Flit field kind %v; extend nonzeroFlit", fv.Kind())
		}
	}
	return f
}

// TestFlitPoolRoundTrip checks Alloc+Get reproduce every field and
// that Free zeroes both planes of the recycled slot.
func TestFlitPoolRoundTrip(t *testing.T) {
	p := NewFlitPool(1)
	p.Reserve([]int{2})
	want := nonzeroFlit(t)

	h := p.Alloc(0, &want)
	if h == 0 {
		t.Fatal("Alloc returned the nil handle")
	}
	var got Flit
	p.Get(h, &got)
	if got != want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	p.Free(0, h)
	if *p.Hot(h) != (FlitHot{}) {
		t.Errorf("freed hot plane not zeroed: %+v", *p.Hot(h))
	}
	if *p.Cold(h) != (FlitCold{}) {
		t.Errorf("freed cold plane not zeroed: %+v", *p.Cold(h))
	}
}

// TestFlitPoolReserveGrows checks growth and the free-list accounting
// across shards.
func TestFlitPoolReserveGrows(t *testing.T) {
	p := NewFlitPool(2)
	p.Reserve([]int{10, 10})
	if p.FreeSlots() != p.Cap() {
		t.Errorf("fresh pool: free %d != cap %d", p.FreeSlots(), p.Cap())
	}
	f := nonzeroFlit(t)
	var hs []Handle
	for i := 0; i < 10; i++ {
		hs = append(hs, p.Alloc(0, &f))
	}
	// Handles allocated on shard 0 may be freed on shard 1 (flits
	// migrate); Reserve must keep both shards workable.
	for _, h := range hs {
		p.Free(1, h)
	}
	if p.FreeSlots() != p.Cap() {
		t.Errorf("after churn: free %d != cap %d", p.FreeSlots(), p.Cap())
	}
	// Shard 0's list drained into shard 1; the next Reserve must
	// rebalance the existing slots back rather than growing the pool.
	capBefore := p.Cap()
	p.Reserve([]int{10, 10})
	if p.Cap() != capBefore {
		t.Errorf("Reserve grew the pool (%d -> %d) instead of rebalancing", capBefore, p.Cap())
	}
	for i := 0; i < 10; i++ {
		p.Alloc(0, &f)
		p.Alloc(1, &f)
	}
	// A genuine shortfall grows the pool and still serves every shard.
	p.Reserve([]int{200, 50})
	for i := 0; i < 200; i++ {
		p.Alloc(0, &f)
	}
	for i := 0; i < 50; i++ {
		p.Alloc(1, &f)
	}
}

// TestOlderHot pins that the handle-plane order equals Older on the
// assembled flits.
func TestOlderHot(t *testing.T) {
	p := NewFlitPool(1)
	p.Reserve([]int{4})
	a := nonzeroFlit(t)
	b := a
	b.Inject++
	c := a
	c.Seq++
	d := a
	d.Index++
	flits := []Flit{a, b, c, d}
	for i := range flits {
		for j := range flits {
			ha := p.Alloc(0, &flits[i])
			hb := p.Alloc(0, &flits[j])
			if got, want := OlderHot(p.Hot(ha), p.Hot(hb)), Older(&flits[i], &flits[j]); got != want {
				t.Errorf("OlderHot(%d,%d) = %v, Older = %v", i, j, got, want)
			}
			p.Free(0, ha)
			p.Free(0, hb)
		}
	}
}
