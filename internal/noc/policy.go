package noc

// InjectionPolicy is the hook through which a congestion controller
// governs and observes network admission. The fabrics consult it on the
// injection path of every node:
//
//   - Allow is called when a node wants to inject a Request flit and the
//     router has capacity for it this cycle (a free output link in BLESS,
//     a free VC/credit in the buffered router). Returning false blocks the
//     injection, exactly like Algorithm 3's deterministic throttler.
//     Reply and Control flits bypass Allow entirely.
//   - Tick is called once per node per cycle with the injection outcome:
//     wanted means the node had a flit to inject; injected means one
//     actually entered the network; throttled means the network had room
//     but the policy itself blocked the injection. A starved cycle —
//     §3.1's definition, and Algorithm 2's input — is one the *network*
//     refused: wanted && !injected && !throttled. Voluntary restraint is
//     not starvation; counting it would both invert the Fig. 9 result
//     and latch the controller on through its own throttling.
//   - MarkCongested reports whether flits passing through the node should
//     have their congestion bit set; only the distributed controller
//     (§6.6) uses it.
type InjectionPolicy interface {
	Allow(node int) bool
	Tick(node int, wanted, injected, throttled bool)
	MarkCongested(node int) bool
}

// IdleTicker is an optional InjectionPolicy extension that lets a
// fabric skip idle nodes without desynchronising the policy's
// per-cycle state. A node the fabric skips would have received
// Tick(node, false, false, false) on every skipped cycle; TickIdle
// applies exactly that effect for `cycles` consecutive cycles in one
// call (e.g. core.Monitor fast-forwards its starvation shift window).
// Fabrics only enable idle-node skipping for policies that implement
// IdleTicker (or for the stateless Open policy).
type IdleTicker interface {
	TickIdle(node int, cycles int64)
}

// PolicySyncer is implemented by fabrics that defer idle-node policy
// ticks (active-set stepping). SyncPolicy flushes every deferred
// TickIdle so the policy's observable state matches a fabric that
// ticked all nodes every cycle. Anything reading policy state from
// outside the fabric — e.g. a controller epoch collecting starvation
// rates — must call it first.
type PolicySyncer interface {
	SyncPolicy()
}

// Open is an InjectionPolicy that never throttles and observes nothing.
// It is the baseline (unthrottled BLESS / buffered) configuration.
type Open struct{}

// Allow always permits injection.
func (Open) Allow(int) bool { return true }

// Tick discards the observation.
func (Open) Tick(int, bool, bool, bool) {}

// MarkCongested never marks.
func (Open) MarkCongested(int) bool { return false }
