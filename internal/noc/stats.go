package noc

// Stats accumulates fabric-level counters. The power model and all
// network-layer metrics in the evaluation (latency, utilization,
// deflection rate, starvation) derive from these.
type Stats struct {
	Cycles int64
	Links  int // unidirectional inter-router links in the fabric

	FlitsInjected    int64
	FlitsEjected     int64
	PacketsDelivered int64

	// Deflections counts flits granted a non-productive output port.
	Deflections int64
	// LinkTraversals counts busy link-cycles on inter-router links;
	// utilization = LinkTraversals / (Links * Cycles).
	LinkTraversals int64

	// Latency sums, in cycles. Net latency is per ejected flit
	// (eject - inject); queue latency is per injected flit
	// (inject - enqueue); packet latency is per delivered packet
	// (eject - enqueue), i.e. end to end.
	NetFlitLatencySum int64
	QueueLatencySum   int64
	PacketLatencySum  int64

	// StarvedCycles counts node-cycles in which a node wanted to inject
	// but the network refused (no free output link / no VC credit).
	// ThrottledCycles counts node-cycles blocked by the injection policy
	// instead (voluntary restraint, not starvation). WantedCycles counts
	// node-cycles with a flit at the head of an injection queue.
	StarvedCycles   int64
	ThrottledCycles int64
	WantedCycles    int64

	// Power-model event counters. The bufferless fabric never touches
	// router buffers; the buffered fabric counts one write on arrival and
	// one read on switch traversal per flit.
	BufferReads        int64
	BufferWrites       int64
	CrossbarTraversals int64
	Arbitrations       int64
}

// Utilization returns the average fraction of inter-router links busy
// per cycle.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 || s.Links == 0 {
		return 0
	}
	return float64(s.LinkTraversals) / (float64(s.Links) * float64(s.Cycles))
}

// AvgNetLatency returns the mean per-flit in-network latency in cycles.
func (s Stats) AvgNetLatency() float64 {
	if s.FlitsEjected == 0 {
		return 0
	}
	return float64(s.NetFlitLatencySum) / float64(s.FlitsEjected)
}

// AvgQueueLatency returns the mean injection-queue wait in cycles.
func (s Stats) AvgQueueLatency() float64 {
	if s.FlitsInjected == 0 {
		return 0
	}
	return float64(s.QueueLatencySum) / float64(s.FlitsInjected)
}

// AvgPacketLatency returns the mean end-to-end packet latency in cycles.
func (s Stats) AvgPacketLatency() float64 {
	if s.PacketsDelivered == 0 {
		return 0
	}
	return float64(s.PacketLatencySum) / float64(s.PacketsDelivered)
}

// DeflectionRate returns deflections per link traversal.
func (s Stats) DeflectionRate() float64 {
	if s.LinkTraversals == 0 {
		return 0
	}
	return float64(s.Deflections) / float64(s.LinkTraversals)
}

// StarvationRate returns the network-wide fraction of node-cycles with a
// blocked injection attempt, out of all node-cycles, given the node
// count. (Per-node windowed starvation is tracked by core.Monitor.)
func (s Stats) StarvationRate(nodes int) float64 {
	if s.Cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(s.StarvedCycles) / (float64(s.Cycles) * float64(nodes))
}

// Merge adds o's event counters into s. Cycles and Links are fabric
// properties, not per-shard events, and are left alone — the fabrics
// use Merge to fold worker-shard counters into a snapshot. Integer
// addition commutes, so the merged totals are independent of shard
// count: this is what keeps parallel runs byte-identical to Workers=1.
func (s *Stats) Merge(o Stats) {
	s.FlitsInjected += o.FlitsInjected
	s.FlitsEjected += o.FlitsEjected
	s.PacketsDelivered += o.PacketsDelivered
	s.Deflections += o.Deflections
	s.LinkTraversals += o.LinkTraversals
	s.NetFlitLatencySum += o.NetFlitLatencySum
	s.QueueLatencySum += o.QueueLatencySum
	s.PacketLatencySum += o.PacketLatencySum
	s.StarvedCycles += o.StarvedCycles
	s.ThrottledCycles += o.ThrottledCycles
	s.WantedCycles += o.WantedCycles
	s.BufferReads += o.BufferReads
	s.BufferWrites += o.BufferWrites
	s.CrossbarTraversals += o.CrossbarTraversals
	s.Arbitrations += o.Arbitrations
}

// Sub returns s - o, the delta of two snapshots. Links is preserved.
func (s Stats) Sub(o Stats) Stats {
	d := s
	d.Cycles -= o.Cycles
	d.FlitsInjected -= o.FlitsInjected
	d.FlitsEjected -= o.FlitsEjected
	d.PacketsDelivered -= o.PacketsDelivered
	d.Deflections -= o.Deflections
	d.LinkTraversals -= o.LinkTraversals
	d.NetFlitLatencySum -= o.NetFlitLatencySum
	d.QueueLatencySum -= o.QueueLatencySum
	d.PacketLatencySum -= o.PacketLatencySum
	d.StarvedCycles -= o.StarvedCycles
	d.ThrottledCycles -= o.ThrottledCycles
	d.WantedCycles -= o.WantedCycles
	d.BufferReads -= o.BufferReads
	d.BufferWrites -= o.BufferWrites
	d.CrossbarTraversals -= o.CrossbarTraversals
	d.Arbitrations -= o.Arbitrations
	return d
}
