// Package buffered implements the virtual-channel input-buffered router
// baseline the paper compares against in §6.3 (footnote 5: "routers have
// 4 VCs/input and 4 flits of buffering per VC"), with credit-based flow
// control, wormhole switching, and XY dimension-order routing.
//
// Pipeline per cycle: receive → route computation → VC allocation →
// switch allocation → link/credit commit. Arbitration at both allocators
// is Oldest-First on the front flit, mirroring the bufferless fabric's
// priority discipline so the two architectures differ only in buffering.
//
// XY routing on a mesh is acyclic, so credit-based flow control is
// deadlock-free without extra VC disciplines; the package therefore
// supports mesh topologies only.
//
// The hot path mirrors the bufferless fabric's: a flit is pooled (a
// 4-byte noc.FlitPool handle) for its whole journey — allocated at
// injection, freed at ejection — and both the link pipelines and the
// input VC ring buffers carry handles, so a hop moves one word instead
// of copying a 56-byte flit in and out of a buffer. Each link ring has
// HopLatency+1 slots so a router commits its outputs directly onto the
// downstream pipelines during the single node pass (the write stage
// trails every same-cycle read; see the bufferless fabric's in field),
// and an active set skips routers with no buffered flits, no NIC
// traffic, and nothing arriving on their flit or credit pipelines.
// Committers re-activate the downstream neighbour on every flit or
// credit commit and NIC Send notifies on enqueue, so skipping is exact;
// it engages under the same policy conditions as the bufferless fabric
// (noc.Open or noc.IdleTicker).
package buffered

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/topology"
)

// Config parameterises the fabric.
type Config struct {
	// Topology is required and must be a mesh.
	Topology *topology.Topology
	// VCs is the number of virtual channels per input port; 0 means 4.
	VCs int
	// BufDepth is the per-VC buffer depth in flits; 0 means 4.
	BufDepth int
	// HopLatency is the link pipeline depth in cycles; 0 means 3,
	// matching the bufferless fabric (2-cycle router + 1-cycle link).
	HopLatency int
	// EjectWidth is the number of flits the Local (ejection) output
	// port can grant per cycle; 0 means 2, matching the bufferless
	// fabric's NI datapath width.
	EjectWidth int
	// Policy gates and observes injection; nil means noc.Open{}.
	Policy noc.InjectionPolicy
	// NoActiveSet forces every router to be stepped every cycle even
	// when the active-set conditions hold; see the bufferless fabric's
	// field of the same name.
	NoActiveSet bool
	// Workers shards the per-cycle node loop; 0 means 1.
	Workers int
	// Pool optionally supplies a shared persistent worker pool (the
	// system simulator passes one pool to the fabric and its own node
	// loop). Its width must equal Workers. Nil makes the fabric create
	// its own pool when sharding engages.
	Pool *par.Pool
	// Probe supplies the observability hooks; the zero Probe (nil
	// collectors) costs one predictable branch per event.
	Probe obs.Probe
}

const (
	maxDirs = int(topology.NumDirs)
	// localVCReq and localVCRep are the two injection-side pseudo-VCs:
	// one bound to the NIC request queue, one to the reply queue, so
	// that replies never sit behind throttled requests.
	localVCReq = 0
	localVCRep = 1
	numLocalVC = 2
)

// inVC is the state of one input virtual channel. The buffer parks
// pool handles, not flit values: a buffered flit's state lives in the
// shared pool from injection to ejection.
type inVC struct {
	buf    []noc.Handle // ring of cap BufDepth
	head   int16
	count  int16
	route  topology.Port
	routed bool
	outVC  int8 // allocated downstream VC, -1 if none
}

// router is the per-node state.
type router struct {
	// in[dir*VCs+vc] are the four direction input ports.
	in []inVC
	// nonEmpty has bit dir*VCs+vc set iff that input VC holds a flit,
	// so the allocator scans and the active-set alive test walk only
	// occupied VCs (at most 32 bits: 4 dirs × ≤8 VCs).
	nonEmpty uint32
	// busy has bit dir*VCs+vc set iff output VC vc toward direction dir
	// is owned by an in-flight packet, so VC allocation finds a free
	// output VC with one mask op instead of a scan.
	busy uint32
	// local[vc] is the injection pseudo-port: route/outVC state for the
	// packet at the front of the corresponding NIC queue.
	local [numLocalVC]struct {
		route  topology.Port
		routed bool
		outVC  int8
	}
	// out[dir*VCs+vc] is the downstream buffer credit balance of each
	// output VC.
	out []int32
}

// linkRef locates the downstream end of one outgoing link: idx is the
// plane offset neighbour*4+arrivalDir — the flit and credit pipelines
// share this geometry — and nb the neighbour; idx is -1 off the mesh
// edge (XY routing never selects such a port).
type linkRef struct {
	idx int32
	nb  int32
}

// ageKey is the Oldest-First sort key (noc.Older's exact field order)
// copied out of a candidate's front flit, so allocation and grant
// comparisons are self-contained value compares with no repeated pool
// or NIC-front lookups.
type ageKey struct {
	inject int64
	seq    uint64
	index  uint8
}

func (a ageKey) older(b ageKey) bool {
	if a.inject != b.inject {
		return a.inject < b.inject
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.index < b.index
}

// nominee is one switch-allocation candidate: a direction input VC
// (dir in 0..3) or the local injection port (dir == localDir), with its
// routed output and age key captured at nomination time.
type nominee struct {
	dir   int8 // -1 means none
	vc    int8
	route topology.Port
	age   ageKey
}

// localDir tags the local injection port in a nominee.
const localDir = int8(maxDirs)

// vcReq is one output-VC allocation request.
type vcReq struct {
	dir, vc int8
	age     ageKey
}

// scratch is one worker's switch-allocation scratch space. Keeping it
// per worker (rather than on the stack) means stepping a router zeroes
// no arrays: every slot is explicitly written before it is read. The
// pad keeps neighbouring workers' scratch off shared cache lines.
type scratch struct {
	noms     [maxDirs + 1]nominee
	granted  [maxDirs]nominee
	localReq [maxDirs + 1]nominee
	reqs     [maxDirs*8 + numLocalVC]vcReq
	_        [64]byte
}

// Fabric is the buffered VC network. It implements noc.Network.
type Fabric struct {
	top    *topology.Topology
	cfg    Config
	policy noc.InjectionPolicy
	cycle  int64
	depth  int
	vcs    int
	ejectW int

	nics    []*noc.NIC
	routers []router

	// fpool stores every in-network flit; buffers and links carry its
	// handles. Injection allocates a handle, ejection frees it.
	fpool *noc.FlitPool
	// hotp caches fpool.HotPlane() across one Step, so per-flit hot
	// accesses are one indexed load. Refreshed after every Reserve.
	hotp []noc.FlitHot
	// Link pipelines in stage-major layout (see the bufferless
	// fabric's in field): lin[stage*planeSz + node*4 + arrivalDir]
	// with ringLen = depth+1 stages. The head plane (cycle%ringLen) is
	// read by the node pass while upstream routers commit into the
	// disjoint plane (cycle+depth)%ringLen, so a single pass per cycle
	// needs no separate commit phase, and each plane is swept
	// sequentially. Single writer per slot.
	//
	// A slot packs the flit and the returning credit that share the
	// physical link: low 32 bits are the flit's pool handle (0 = none)
	// and bits 32..39 hold credit+1 (0 = none; the credit is the freed
	// VC index on node's output port toward arrivalDir's opposite).
	// One word per link per cycle halves the memory the receive and
	// commit walks touch, and the zero value means "empty link".
	lin     []uint64
	ringLen int
	planeSz int
	// stage and wstage are this cycle's read and write ring slots,
	// computed once per Step so the per-node loop never divides.
	stage  int
	wstage int
	// inCount[n] counts the flits and credits currently queued in node
	// n's incoming pipelines. Maintained only under sequential stepping
	// (atomicAct false, fixed at construction), where it replaces the
	// per-plane alive scan with one load; sharded stepping keeps the
	// scan because cross-shard commits would race on the counters.
	inCount []int32

	// links[n*4+d] resolves the link leaving node n in direction d.
	links []linkRef

	// Active-set state; see the bufferless fabric for the three-state
	// protocol (0 idle, 1 active, 2 freshly woken) and the write
	// discipline.
	skip     bool
	active   []uint32
	idle     noc.IdleTicker
	lastTick []int64

	// openPol short-circuits the injection-policy interface calls when
	// the policy is noc.Open (always allow, never mark, no-op ticks).
	openPol bool
	// atomicAct selects the activation flavour: atomic three-state
	// stores under worker sharding, plain load-checked stores when the
	// fabric steps sequentially.
	atomicAct bool

	// reserveNeeds is Step's per-shard Reserve argument, kept allocated.
	reserveNeeds []int
	// scr[w] is worker w's allocation scratch space.
	scr []scratch

	// shards[w] are worker w's counters, cache-line padded so parallel
	// phases never false-share; Stats() merges them.
	shards []par.PaddedStats
	// pool runs the node pass when sharding engages; nil means
	// sequential stepping. p1 is the prebuilt closure, so Step
	// allocates nothing.
	pool *par.Pool
	p1   func(lo, hi, worker int)

	stats noc.Stats

	// tr and sp are the observability collectors; nil when disabled
	// (the common case), so every hook is one predictable branch.
	tr *obs.Tracer
	sp *obs.Spatial

	inflight int64
}

// New constructs a buffered VC fabric.
func New(cfg Config) *Fabric {
	if cfg.Topology == nil {
		panic("buffered: Config.Topology is required")
	}
	if cfg.Topology.Kind() != topology.Mesh {
		panic("buffered: only mesh topologies are supported (XY+credits is deadlock-free only on acyclic channel graphs)")
	}
	if cfg.VCs <= 0 {
		cfg.VCs = 4
	}
	if cfg.VCs > 8 {
		panic("buffered: at most 8 VCs per input port are supported")
	}
	if cfg.BufDepth <= 0 {
		cfg.BufDepth = 4
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 3
	}
	if cfg.EjectWidth <= 0 {
		cfg.EjectWidth = 2
	}
	if cfg.Policy == nil {
		cfg.Policy = noc.Open{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	n := cfg.Topology.Nodes()
	ringLen := cfg.HopLatency + 1
	f := &Fabric{
		top:          cfg.Topology,
		cfg:          cfg,
		policy:       cfg.Policy,
		depth:        cfg.HopLatency,
		vcs:          cfg.VCs,
		ejectW:       cfg.EjectWidth,
		nics:         make([]*noc.NIC, n),
		routers:      make([]router, n),
		fpool:        noc.NewFlitPool(cfg.Workers),
		lin:          make([]uint64, n*maxDirs*ringLen),
		ringLen:      ringLen,
		planeSz:      n * maxDirs,
		links:        make([]linkRef, n*maxDirs),
		reserveNeeds: make([]int, cfg.Workers),
		scr:          make([]scratch, cfg.Workers),
		shards:       make([]par.PaddedStats, cfg.Workers),
		tr:           cfg.Probe.Tracer,
		sp:           cfg.Probe.Spatial,
	}
	// Sharding pays only when every worker gets a few nodes; below that
	// the fabric steps sequentially and the pool is never consulted.
	if cfg.Workers > 1 && n >= cfg.Workers*4 {
		if cfg.Pool != nil {
			if cfg.Pool.Workers() != cfg.Workers {
				panic(fmt.Sprintf("buffered: shared pool width %d != Workers %d", cfg.Pool.Workers(), cfg.Workers))
			}
			f.pool = cfg.Pool
		} else {
			f.pool = par.New(cfg.Workers)
		}
		f.p1 = func(lo, hi, w int) { f.phase1(lo, hi, w, &f.shards[w].Stats) }
	}
	f.atomicAct = f.pool != nil
	f.idle, _ = cfg.Policy.(noc.IdleTicker)
	_, open := cfg.Policy.(noc.Open)
	f.openPol = open
	f.skip = !cfg.NoActiveSet && (open || f.idle != nil)
	if f.skip && !f.atomicAct {
		f.inCount = make([]int32, n)
	}
	if f.skip {
		f.active = make([]uint32, n)
		f.lastTick = make([]int64, n)
	}
	for node := 0; node < n; node++ {
		for d := 0; d < maxDirs; d++ {
			nb := cfg.Topology.Neighbor(node, topology.Port(d))
			if nb < 0 {
				f.links[node*maxDirs+d] = linkRef{idx: -1, nb: -1}
				continue
			}
			ad := int(topology.Opposite(topology.Port(d)))
			f.links[node*maxDirs+d] = linkRef{
				idx: int32(nb*maxDirs + ad),
				nb:  int32(nb),
			}
		}
	}
	for i := range f.nics {
		f.nics[i] = noc.NewNIC(i)
		if f.skip {
			f.nics[i].SetNotify(f.activate)
		}
	}
	for i := range f.routers {
		r := &f.routers[i]
		r.in = make([]inVC, maxDirs*cfg.VCs)
		r.out = make([]int32, maxDirs*cfg.VCs)
		for j := range r.in {
			r.in[j].buf = make([]noc.Handle, cfg.BufDepth)
			r.in[j].outVC = -1
		}
		for j := range r.out {
			r.out[j] = int32(cfg.BufDepth)
		}
		for v := range r.local {
			r.local[v].outVC = -1
		}
	}
	f.stats.Links = cfg.Topology.Links()
	return f
}

// activate flags a node as freshly woken (see the bufferless fabric's
// active-state machine). Atomic because commits and NIC notifications
// may come from any worker shard.
func (f *Fabric) activate(node int) {
	if !f.atomicAct {
		// Sequential fabrics take Sends only between steps; a plain
		// store keeps the NIC notify off the atomic path.
		f.active[node] = 2
		return
	}
	atomic.StoreUint32(&f.active[node], 2)
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// Cycle returns the number of completed cycles.
func (f *Fabric) Cycle() int64 { return f.cycle }

// NIC returns node i's network interface.
func (f *Fabric) NIC(i int) *noc.NIC { return f.nics[i] }

// ActiveSet reports whether active-set skipping is engaged and, if so,
// how many nodes are currently flagged active. Sequential regions only.
func (f *Fabric) ActiveSet() (active int, enabled bool) {
	if !f.skip {
		return 0, false
	}
	//nocvet:allow atomicmix sequential region between Step calls; the worker pool is parked, so plain loads cannot race
	for _, a := range f.active {
		if a != 0 {
			active++
		}
	}
	return active, true
}

// Stats returns the accumulated counters, merging worker shards.
func (f *Fabric) Stats() noc.Stats {
	s := f.stats
	for i := range f.shards {
		s.Merge(f.shards[i].Stats)
	}
	s.Cycles = f.cycle
	return s
}

// InFlight returns the number of flits inside the network (buffers and
// links).
func (f *Fabric) InFlight() int64 { return f.inflight }

// Drained reports whether no flit is in flight or queued.
func (f *Fabric) Drained() bool {
	if f.inflight != 0 {
		return false
	}
	for _, nic := range f.nics {
		if nic.HasTraffic() || nic.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// SyncPolicy replays every pending idle stretch into the policy; it
// implements noc.PolicySyncer. See the bufferless fabric.
func (f *Fabric) SyncPolicy() {
	if !f.skip || f.idle == nil {
		return
	}
	for node := range f.lastTick {
		if gap := f.cycle - f.lastTick[node]; gap > 0 {
			f.idle.TickIdle(node, gap)
			f.lastTick[node] = f.cycle
		}
	}
}

// Step advances one cycle: a single pass over the (active) routers,
// each running its pipeline and committing outgoing flits and credits
// straight onto the downstream link rings.
func (f *Fabric) Step() {
	nodes := f.top.Nodes()
	f.stage = int(f.cycle % int64(f.ringLen))
	f.wstage = f.stage + f.depth
	if f.wstage >= f.ringLen {
		f.wstage -= f.ringLen
	}
	if f.pool == nil {
		// At most one injection (the only Alloc) per node-cycle.
		f.reserveNeeds[0] = nodes
		for w := 1; w < len(f.reserveNeeds); w++ {
			f.reserveNeeds[w] = 0
		}
		f.fpool.Reserve(f.reserveNeeds)
		f.hotp = f.fpool.HotPlane()
		f.phase1(0, nodes, 0, &f.shards[0].Stats)
	} else {
		per := (nodes + f.cfg.Workers - 1) / f.cfg.Workers
		for w := range f.reserveNeeds {
			f.reserveNeeds[w] = per
		}
		f.fpool.Reserve(f.reserveNeeds)
		f.hotp = f.fpool.HotPlane()
		f.pool.Run(nodes, f.p1)
	}
	f.updateInflight()
	f.cycle++
}

// Close releases the fabric's own worker pool. Shared pools (Config.
// Pool) belong to their creator and are left running.
func (f *Fabric) Close() {
	if f.pool != nil && f.pool != f.cfg.Pool {
		f.pool.Close()
	}
}

func (f *Fabric) updateInflight() {
	var inj, ej int64
	for i := range f.shards {
		inj += f.shards[i].Stats.FlitsInjected
		ej += f.shards[i].Stats.FlitsEjected
	}
	f.inflight = inj - ej
}

// phase1 runs the router pipeline for nodes [lo,hi), skipping inactive
// ones when the active set is engaged, with the bufferless fabric's
// three-state wake protocol.
func (f *Fabric) phase1(lo, hi, w int, st *noc.Stats) {
	if !f.skip {
		for node := lo; node < hi; node++ {
			f.stepRouter(node, w, st)
		}
		return
	}
	if !f.atomicAct {
		// Sequential stepping: nothing can race the owner between its
		// load and its store, so the state machine runs on plain
		// accesses.
		for node := lo; node < hi; node++ {
			a := f.active[node]
			if a == 0 {
				continue
			}
			alive := f.stepRouter(node, w, st)
			if a == 2 {
				f.active[node] = 1
			} else if !alive {
				f.active[node] = 0
			}
		}
		return
	}
	for node := lo; node < hi; node++ {
		a := atomic.LoadUint32(&f.active[node])
		if a == 0 {
			continue
		}
		alive := f.stepRouter(node, w, st)
		if a == 2 {
			// Freshly woken: demote to plain-active rather than ever
			// deactivating, so a flit or credit committed toward this
			// node during the cycle that woke it survives to next
			// cycle's pipeline scan. A failed CAS means another
			// activation landed — the node simply stays at 2.
			atomic.CompareAndSwapUint32(&f.active[node], 2, 1)
		} else if !alive {
			// The CAS fails — leaving the node awake — whenever an
			// activation raced in after this cycle's load.
			atomic.CompareAndSwapUint32(&f.active[node], 1, 0)
		}
	}
}

// stepRouter runs one router's pipeline cycle. It reports whether the
// node still has any work — buffered flits, NIC traffic, or anything
// in its incoming flit/credit pipelines; allocator state held across
// an idle stretch (routed heads, busy output VCs mid-packet) is only
// ever advanced by one of those inputs, so skipping a !alive node is
// exact.
func (f *Fabric) stepRouter(node, w int, st *noc.Stats) (alive bool) {
	if f.skip && f.idle != nil {
		// Replay the skipped stretch into the policy; SyncPolicy and
		// this replay are lastTick's only readers, so non-IdleTicker
		// policies skip the bookkeeping entirely.
		if gap := f.cycle - f.lastTick[node]; gap > 0 {
			f.idle.TickIdle(node, gap)
		}
		f.lastTick[node] = f.cycle + 1
	}

	stage := f.stage
	r := &f.routers[node]
	base := node * maxDirs

	// 1. Receive arriving flits into input buffers; consume credits.
	// The flit stays pooled: only its handle enters the VC ring. The
	// node's four inbound slots are contiguous in the read plane, so
	// one subslice drops the per-direction offset arithmetic, and each
	// slot is one packed word carrying the link's flit and credit.
	ibase := stage*f.planeSz + base
	lin := f.lin[ibase : ibase+maxDirs : ibase+maxDirs]
	for d := 0; d < maxDirs; d++ {
		wd := lin[d]
		if wd == 0 {
			continue
		}
		lin[d] = 0
		if h := noc.Handle(wd); h != 0 {
			if f.inCount != nil {
				f.inCount[node]--
			}
			vi := d*f.vcs + int(f.hotp[h].VC)
			vc := &r.in[vi]
			if int(vc.count) >= len(vc.buf) {
				panic(fmt.Sprintf("buffered: input buffer overflow at node %d dir %d vc %d", node, d, f.hotp[h].VC))
			}
			p := int(vc.head) + int(vc.count)
			if p >= len(vc.buf) {
				p -= len(vc.buf)
			}
			vc.buf[p] = h
			vc.count++
			r.nonEmpty |= 1 << uint(vi)
			st.BufferWrites++
			if f.tr != nil {
				var fl noc.Flit
				f.fpool.Get(h, &fl)
				f.tr.Buffer(f.cycle, node, &fl)
			}
		}
		if cb := wd >> 32; cb != 0 {
			if f.inCount != nil {
				f.inCount[node]--
			}
			r.out[d*f.vcs+int(cb-1)]++
		}
	}

	// 2. One scan over the occupied input VCs does route computation
	// for unrouted head fronts, collects the VC-allocation requests
	// (fronts still lacking an output VC), and nominates each input
	// port's oldest ready VC for switch allocation. A front awaiting a
	// VC is not nominated here; if allocVCs grants it one this cycle
	// it joins the nomination then (see the grant loop), which is
	// exactly the set the separate route → allocate → nominate scans
	// produced — eligibility is oldest-wins and order-independent.
	sc := &f.scr[w]
	reqs := &sc.reqs
	noms := &sc.noms
	noms[0].dir, noms[1].dir, noms[2].dir, noms[3].dir = -1, -1, -1, -1
	nreq := 0
	for m := r.nonEmpty; m != 0; m &= m - 1 {
		vi := bits.TrailingZeros32(m)
		vc := &r.in[vi]
		fh := &f.hotp[vc.buf[vc.head]]
		if !vc.routed {
			if fh.Index != 0 {
				continue
			}
			vc.route = f.top.XYRoute(node, int(fh.Dst))
			vc.routed = true
		}
		if vc.route != topology.Local {
			if vc.outVC < 0 {
				if fh.Index == 0 {
					reqs[nreq] = vcReq{
						dir: int8(vi / f.vcs), vc: int8(vi % f.vcs),
						age: ageKey{fh.Inject, fh.Seq, fh.Index},
					}
					nreq++
				}
				continue
			}
			if r.out[int(vc.route)*f.vcs+int(vc.outVC)] <= 0 {
				continue
			}
		}
		age := ageKey{fh.Inject, fh.Seq, fh.Index}
		d := vi / f.vcs
		if noms[d].dir < 0 || age.older(noms[d].age) {
			noms[d] = nominee{dir: int8(d), vc: int8(vi % f.vcs), route: vc.route, age: age}
		}
	}
	nic := f.nics[node]
	hasLocal := nic.HasTraffic()
	if hasLocal {
		f.routeLocal(node, nic)
	}

	// 3. VC allocation: oldest-first over head flits needing an
	// output VC. Local ejection (route == Local) needs no VC. A
	// granted front becomes switch-eligible immediately and enters the
	// nomination. An empty NIC cannot hold a routed front, so with no
	// direction requests either there is nothing to allocate.
	if nreq > 0 || hasLocal {
		f.allocVCs(node, nic, sc, nreq, st)
	}

	// 4. Switch allocation, output-port stage (the input-port
	// nomination happened in the scans above).
	wanted, injected, throttled := false, false, false
	for d := 0; d < maxDirs; d++ {
		if noms[d].dir >= 0 {
			st.Arbitrations++
		}
	}
	// Local injection port nomination: replies first.
	noms[localDir].dir = -1
	if hasLocal {
		wanted = true
		lv, thr := f.localReady(node, r, nic)
		throttled = thr
		if lv >= 0 {
			fl := f.localFront(nic, lv)
			noms[localDir] = nominee{
				dir: localDir, vc: int8(lv), route: r.local[lv].route,
				age: ageKey{fl.Inject, fl.Seq, fl.Index},
			}
			st.Arbitrations++
		}
	}

	// Output-port grant: oldest requester wins each direction; the
	// Local (ejection) port grants up to EjectWidth requesters,
	// matching the bufferless fabric's NI datapath width. With no
	// nominee on any port (the sign bit survives the AND only if every
	// dir is -1) there is nothing to grant, traverse, or commit.
	var outH [maxDirs]noc.Handle
	outC := [maxDirs]int8{-1, -1, -1, -1}
	if noms[0].dir&noms[1].dir&noms[2].dir&noms[3].dir&noms[4].dir >= 0 {
		granted := &sc.granted
		for i := range granted {
			granted[i].dir = -1
		}
		localReq := &sc.localReq
		nLocal := 0
		for i := range noms {
			nm := noms[i]
			if nm.dir < 0 {
				continue
			}
			if nm.route == topology.Local {
				localReq[nLocal] = nm
				nLocal++
				continue
			}
			out := int(nm.route)
			if granted[out].dir < 0 || nm.age.older(granted[out].age) {
				granted[out] = nm
			}
		}
		// Oldest-first among ejection requesters, up to EjectWidth.
		for i := 1; i < nLocal; i++ {
			for j := i; j > 0 && localReq[j].age.older(localReq[j-1].age); j-- {
				localReq[j], localReq[j-1] = localReq[j-1], localReq[j]
			}
		}
		if nLocal > f.ejectW {
			nLocal = f.ejectW
		}

		// Traverse: pop winners, collect outgoing flits/credits, update
		// VC state.
		for out := 0; out < maxDirs; out++ {
			g := granted[out]
			if g.dir < 0 {
				continue
			}
			if g.dir == localDir {
				injected = f.traverseLocal(node, w, r, nic, int(g.vc), topology.Port(out), &outH, st) || injected
			} else {
				f.traverseDir(node, w, r, nic, int(g.dir), int(g.vc), topology.Port(out), &outH, &outC, st)
			}
		}
		for _, g := range localReq[:nLocal] {
			if g.dir == localDir {
				injected = f.traverseLocal(node, w, r, nic, int(g.vc), topology.Local, &outH, st) || injected
			} else {
				f.traverseDir(node, w, r, nic, int(g.dir), int(g.vc), topology.Local, &outH, &outC, st)
			}
		}
	}

	if wanted {
		st.WantedCycles++
		if !injected {
			if throttled {
				st.ThrottledCycles++
				if f.sp != nil {
					f.sp.AddThrottle(node)
				}
			} else {
				st.StarvedCycles++
				if f.sp != nil {
					f.sp.AddStarve(node)
				}
			}
		}
	}
	if !f.openPol {
		f.policy.Tick(node, wanted, injected, throttled)
	}

	// Commit departing flits and credits straight onto the downstream
	// rings; distributed congestion marking and neighbour activation
	// piggyback on the same walk.
	wbase := f.wstage * f.planeSz
	cong := !f.openPol && (outH[0]|outH[1]|outH[2]|outH[3]) != 0 &&
		f.policy.MarkCongested(node)
	lks := f.links[base : base+maxDirs : base+maxDirs]
	for d := 0; d < maxDirs; d++ {
		h, cv := outH[d], outC[d]
		if h == 0 && cv < 0 {
			continue
		}
		lk := lks[d]
		wd := uint64(h)
		if h != 0 {
			if cong {
				//nocvet:allow shardwrite the hot-plane slot of h is owned by this worker: exactly one router holds a flit's handle per cycle
				f.hotp[h].CongBit = true
			}
			st.LinkTraversals++
			if f.sp != nil {
				f.sp.AddLink(node, d)
			}
		}
		if cv >= 0 {
			wd |= uint64(cv+1) << 32
		}
		//nocvet:allow shardwrite stage-major link-plane commit: the write stage is disjoint from every plane read this cycle, and each link slot has one writer
		f.lin[wbase+int(lk.idx)] = wd
		if f.skip {
			if !f.atomicAct {
				// Single goroutine: a plain load-checked store suffices
				// (the receiver may already have stepped and
				// deactivated this cycle).
				if h != 0 {
					f.inCount[lk.nb]++
				}
				if cv >= 0 {
					f.inCount[lk.nb]++
				}
				if f.active[lk.nb] == 0 {
					f.active[lk.nb] = 1
				}
			} else if atomic.LoadUint32(&f.active[lk.nb]) != 2 {
				// Anything not already freshly woken must be re-stamped
				// 2 so a racing deactivation CAS fails.
				atomic.StoreUint32(&f.active[lk.nb], 2)
			}
		}
	}

	alive = r.nonEmpty != 0 || nic.HasTraffic()
	if f.skip && !alive {
		if !f.atomicAct {
			// Sequential stepping: the flit+credit occupancy counter is
			// exact (maintained by the same goroutine), so "anything
			// queued toward this node" is one load. An earlier node may
			// have committed toward this one without re-flagging it;
			// the counter is what keeps it awake.
			alive = f.inCount[node] != 0
		} else {
			// Scan the incoming pipelines for queued flits or credits.
			// The write stage is excluded: it was empty at the cycle's
			// start, and only a concurrent neighbour commit can fill it
			// — a commit whose Store(2) re-activates this node by
			// itself.
			for s := 0; s < f.ringLen && !alive; s++ {
				if s == f.wstage {
					continue
				}
				q := s*f.planeSz + base
				for i := q; i < q+maxDirs; i++ {
					if f.lin[i] != 0 {
						alive = true
						break
					}
				}
			}
		}
	}
	return alive
}

// routeLocal computes routes for the packets at the front of the NIC
// queues. State for a queue whose packet is mid-flight is left alone;
// packets enqueue atomically, so a queue never empties mid-packet.
func (f *Fabric) routeLocal(node int, nic *noc.NIC) {
	r := &f.routers[node]
	for v := 0; v < numLocalVC; v++ {
		fl := f.localFront(nic, v)
		if fl == nil {
			continue
		}
		if !r.local[v].routed && fl.Index == 0 {
			r.local[v].route = f.top.XYRoute(node, int(fl.Dst))
			r.local[v].routed = true
		}
	}
}

// localFront returns the front flit of the NIC queue bound to local VC v.
func (f *Fabric) localFront(nic *noc.NIC, v int) *noc.Flit {
	if v == localVCRep {
		return nic.HeadReply()
	}
	return nic.HeadRequest()
}

// localPop removes the front flit of the NIC queue bound to local VC v.
func (f *Fabric) localPop(nic *noc.NIC, v int) noc.Flit {
	if v == localVCRep {
		return nic.PopReply()
	}
	return nic.PopRequest()
}

// allocVCs performs output-VC allocation, oldest-first across all head
// flits (direction VCs and the local port) that need one.
func (f *Fabric) allocVCs(node int, nic *noc.NIC, sc *scratch, n int, st *noc.Stats) {
	r := &f.routers[node]
	reqs := &sc.reqs
	for v := 0; v < numLocalVC; v++ {
		lv := &r.local[v]
		if !lv.routed || lv.outVC >= 0 || lv.route == topology.Local {
			continue // cheap state checks before peeking the NIC queue
		}
		fl := f.localFront(nic, v)
		if fl != nil && fl.Index == 0 {
			reqs[n] = vcReq{dir: localDir, vc: int8(v), age: ageKey{fl.Inject, fl.Seq, fl.Index}}
			n++
		}
	}
	// Oldest-first insertion sort (n is small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && reqs[j].age.older(reqs[j-1].age); j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	for i := 0; i < n; i++ {
		var route topology.Port
		if reqs[i].dir == localDir {
			route = r.local[reqs[i].vc].route
		} else {
			route = r.in[int(reqs[i].dir)*f.vcs+int(reqs[i].vc)].route
		}
		// Grant the lowest free output VC on the routed port, if any.
		avail := ^(r.busy >> uint(int(route)*f.vcs)) & (1<<uint(f.vcs) - 1)
		if avail == 0 {
			continue
		}
		ov := bits.TrailingZeros32(avail)
		r.busy |= 1 << uint(int(route)*f.vcs+ov)
		if reqs[i].dir == localDir {
			r.local[reqs[i].vc].outVC = int8(ov)
		} else {
			r.in[int(reqs[i].dir)*f.vcs+int(reqs[i].vc)].outVC = int8(ov)
			// Freshly granted and credited fronts join this cycle's
			// switch nomination, as they did when nomination was a
			// separate post-allocation scan.
			if r.out[int(route)*f.vcs+ov] > 0 {
				d := int(reqs[i].dir)
				nm := &sc.noms[d]
				if nm.dir < 0 || reqs[i].age.older(nm.age) {
					*nm = nominee{dir: reqs[i].dir, vc: reqs[i].vc, route: route, age: reqs[i].age}
				}
			}
		}
		st.Arbitrations++
	}
}

// localReady returns the local pseudo-VC able to inject this cycle,
// reply VC first, or -1. Requests additionally pass the injection
// policy (Algorithm 3: consulted only when the network could accept the
// flit); throttled reports that the policy — rather than VC/credit
// availability — blocked an otherwise-ready injection.
func (f *Fabric) localReady(node int, r *router, nic *noc.NIC) (v int, throttled bool) {
	for _, v := range [...]int{localVCRep, localVCReq} {
		fl := f.localFront(nic, v)
		if fl == nil || !r.local[v].routed {
			continue
		}
		if r.local[v].route != topology.Local {
			if r.local[v].outVC < 0 {
				continue
			}
			if r.out[int(r.local[v].route)*f.vcs+int(r.local[v].outVC)] <= 0 {
				continue
			}
		}
		if noc.ThrottledKind(fl.Kind) && fl.Index == 0 && !f.openPol && !f.policy.Allow(node) {
			throttled = true
			continue
		}
		return v, false
	}
	return -1, throttled
}

// traverseDir moves the winning flit of a direction input VC through the
// switch: eject locally (freeing its pool slot) or forward downstream
// (the handle moves straight from the VC ring to the link ring),
// returning a credit upstream and releasing per-packet state on the
// tail flit.
func (f *Fabric) traverseDir(node, w int, r *router, nic *noc.NIC, dir, v int, out topology.Port, outH *[maxDirs]noc.Handle, outC *[maxDirs]int8, st *noc.Stats) {
	vi := dir*f.vcs + v
	vc := &r.in[vi]
	h := vc.buf[vc.head]
	vc.head++
	if int(vc.head) >= len(vc.buf) {
		vc.head = 0
	}
	vc.count--
	if vc.count == 0 {
		r.nonEmpty &^= 1 << uint(vi)
	}
	st.BufferReads++
	st.CrossbarTraversals++
	// Return a credit to the upstream router for the freed slot.
	outC[dir] = int8(v)
	fh := &f.hotp[h]
	tail := fh.Index == fh.Len-1
	if out == topology.Local {
		st.FlitsEjected++
		st.NetFlitLatencySum += f.cycle - fh.Inject
		var fl noc.Flit
		f.fpool.Get(h, &fl)
		f.fpool.Free(w, h)
		if f.sp != nil {
			f.sp.AddEject(node)
		}
		if f.tr != nil {
			f.tr.Eject(f.cycle, node, &fl)
		}
		if _, done := nic.Receive(&fl, f.cycle); done {
			st.PacketsDelivered++
			st.PacketLatencySum += f.cycle - fl.Enq
		}
	} else {
		ovc := vc.outVC
		r.out[int(out)*f.vcs+int(ovc)]--
		//nocvet:allow shardwrite the hot-plane slot of h is owned by this worker: exactly one router holds a flit's handle per cycle
		fh.VC = ovc
		outH[out] = h
	}
	if tail { // tail: release the packet's allocations
		if out != topology.Local {
			r.busy &^= 1 << uint(int(out)*f.vcs+int(vc.outVC))
		}
		vc.outVC = -1
		vc.routed = false
	}
}

// traverseLocal injects the front flit of a NIC queue, allocating its
// pool slot. Returns true when a flit entered the network.
func (f *Fabric) traverseLocal(node, w int, r *router, nic *noc.NIC, v int, out topology.Port, outH *[maxDirs]noc.Handle, st *noc.Stats) bool {
	fl := f.localPop(nic, v)
	fl.Inject = f.cycle
	st.FlitsInjected++
	st.QueueLatencySum += f.cycle - fl.Enq
	st.CrossbarTraversals++
	if f.sp != nil {
		f.sp.AddInject(node)
	}
	if f.tr != nil {
		f.tr.Inject(f.cycle, node, &fl)
	}
	if out == topology.Local {
		// Self-addressed packet: immediately delivered, never pooled.
		st.FlitsEjected++
		if f.sp != nil {
			f.sp.AddEject(node)
		}
		if f.tr != nil {
			f.tr.Eject(f.cycle, node, &fl)
		}
		if _, done := nic.Receive(&fl, f.cycle); done {
			st.PacketsDelivered++
			st.PacketLatencySum += f.cycle - fl.Enq
		}
	} else {
		ovc := r.local[v].outVC
		r.out[int(out)*f.vcs+int(ovc)]--
		fl.VC = ovc
		outH[out] = f.fpool.Alloc(w, &fl)
	}
	if fl.Index == fl.Len-1 {
		if out != topology.Local {
			r.busy &^= 1 << uint(int(out)*f.vcs+int(r.local[v].outVC))
		}
		r.local[v].outVC = -1
		r.local[v].routed = false
	}
	return true
}
