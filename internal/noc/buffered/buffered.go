// Package buffered implements the virtual-channel input-buffered router
// baseline the paper compares against in §6.3 (footnote 5: "routers have
// 4 VCs/input and 4 flits of buffering per VC"), with credit-based flow
// control, wormhole switching, and XY dimension-order routing.
//
// Pipeline per cycle: receive → route computation → VC allocation →
// switch allocation → link/credit commit. Arbitration at both allocators
// is Oldest-First on the front flit, mirroring the bufferless fabric's
// priority discipline so the two architectures differ only in buffering.
//
// XY routing on a mesh is acyclic, so credit-based flow control is
// deadlock-free without extra VC disciplines; the package therefore
// supports mesh topologies only.
package buffered

import (
	"fmt"

	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/topology"
)

// Config parameterises the fabric.
type Config struct {
	// Topology is required and must be a mesh.
	Topology *topology.Topology
	// VCs is the number of virtual channels per input port; 0 means 4.
	VCs int
	// BufDepth is the per-VC buffer depth in flits; 0 means 4.
	BufDepth int
	// HopLatency is the link pipeline depth in cycles; 0 means 3,
	// matching the bufferless fabric (2-cycle router + 1-cycle link).
	HopLatency int
	// EjectWidth is the number of flits the Local (ejection) output
	// port can grant per cycle; 0 means 2, matching the bufferless
	// fabric's NI datapath width.
	EjectWidth int
	// Policy gates and observes injection; nil means noc.Open{}.
	Policy noc.InjectionPolicy
	// Workers shards the per-cycle node loop; 0 means 1.
	Workers int
	// Pool optionally supplies a shared persistent worker pool (the
	// system simulator passes one pool to the fabric and its own node
	// loop). Its width must equal Workers. Nil makes the fabric create
	// its own pool when sharding engages.
	Pool *par.Pool
	// Probe supplies the observability hooks; the zero Probe (nil
	// collectors) costs one predictable branch per event.
	Probe obs.Probe
}

const (
	maxDirs = int(topology.NumDirs)
	// localVCReq and localVCRep are the two injection-side pseudo-VCs:
	// one bound to the NIC request queue, one to the reply queue, so
	// that replies never sit behind throttled requests.
	localVCReq = 0
	localVCRep = 1
	numLocalVC = 2
)

// inVC is the state of one input virtual channel.
type inVC struct {
	buf    []noc.Flit // ring of cap BufDepth
	head   int
	count  int
	route  topology.Port
	routed bool
	outVC  int8 // allocated downstream VC, -1 if none
}

func (v *inVC) front() *noc.Flit { return &v.buf[v.head] }

func (v *inVC) push(f noc.Flit) {
	v.buf[(v.head+v.count)%len(v.buf)] = f
	v.count++
}

func (v *inVC) pop() noc.Flit {
	f := v.buf[v.head]
	v.head = (v.head + 1) % len(v.buf)
	v.count--
	return f
}

// outVC tracks one output virtual channel: whether a packet currently
// owns it, and the downstream buffer credit balance.
type outVC struct {
	busy    bool
	credits int
}

// router is the per-node state.
type router struct {
	// in[dir*VCs+vc] are the four direction input ports.
	in []inVC
	// local[vc] is the injection pseudo-port: route/outVC state for the
	// packet at the front of the corresponding NIC queue.
	local [numLocalVC]struct {
		route  topology.Port
		routed bool
		outVC  int8
	}
	// out[dir*VCs+vc] is the output VC state toward each neighbour.
	out []outVC
}

type flitSlot struct {
	f  noc.Flit
	ok bool
}

// creditSlot carries at most one credit per link per cycle (switch
// allocation frees at most one buffer slot per input port per cycle).
type creditSlot struct {
	vc int8 // -1 means none
}

// Fabric is the buffered VC network. It implements noc.Network.
type Fabric struct {
	top    *topology.Topology
	cfg    Config
	policy noc.InjectionPolicy
	cycle  int64
	depth  int
	vcs    int

	nics    []*noc.NIC
	routers []router

	// Link pipelines, indexed like the bufferless fabric:
	// flitIn[(node*4+arrivalDir)*depth+stage], single writer (upstream),
	// single reader (node).
	flitIn []flitSlot
	// creditIn[(node*4+outDir)*depth+stage]: credits returning to node's
	// output port outDir, written by the downstream neighbour.
	creditIn []creditSlot

	// Phase-1 → phase-2 buffers.
	outFlit   []flitSlot   // [node*4+dir]
	outCredit []creditSlot // [node*4+dir]: credit to send upstream on arrival dir

	// shards[w] are worker w's counters, cache-line padded so parallel
	// phases never false-share; Stats() merges them.
	shards []par.PaddedStats
	// pool runs the two barrier phases when sharding engages; nil means
	// sequential stepping. p1 and p2 are the prebuilt phase closures, so
	// Step allocates nothing.
	pool   *par.Pool
	p1, p2 func(lo, hi, worker int)

	stats noc.Stats

	// tr and sp are the observability collectors; nil when disabled
	// (the common case), so every hook is one predictable branch.
	tr *obs.Tracer
	sp *obs.Spatial

	inflight int64
}

// New constructs a buffered VC fabric.
func New(cfg Config) *Fabric {
	if cfg.Topology == nil {
		panic("buffered: Config.Topology is required")
	}
	if cfg.Topology.Kind() != topology.Mesh {
		panic("buffered: only mesh topologies are supported (XY+credits is deadlock-free only on acyclic channel graphs)")
	}
	if cfg.VCs <= 0 {
		cfg.VCs = 4
	}
	if cfg.VCs > 8 {
		panic("buffered: at most 8 VCs per input port are supported")
	}
	if cfg.BufDepth <= 0 {
		cfg.BufDepth = 4
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 3
	}
	if cfg.EjectWidth <= 0 {
		cfg.EjectWidth = 2
	}
	if cfg.Policy == nil {
		cfg.Policy = noc.Open{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	n := cfg.Topology.Nodes()
	f := &Fabric{
		top:       cfg.Topology,
		cfg:       cfg,
		policy:    cfg.Policy,
		depth:     cfg.HopLatency,
		vcs:       cfg.VCs,
		nics:      make([]*noc.NIC, n),
		routers:   make([]router, n),
		flitIn:    make([]flitSlot, n*maxDirs*cfg.HopLatency),
		creditIn:  make([]creditSlot, n*maxDirs*cfg.HopLatency),
		outFlit:   make([]flitSlot, n*maxDirs),
		outCredit: make([]creditSlot, n*maxDirs),
		shards:    make([]par.PaddedStats, cfg.Workers),
		tr:        cfg.Probe.Tracer,
		sp:        cfg.Probe.Spatial,
	}
	// Sharding pays only when every worker gets a few nodes; below that
	// the fabric steps sequentially and the pool is never consulted.
	if cfg.Workers > 1 && n >= cfg.Workers*4 {
		if cfg.Pool != nil {
			if cfg.Pool.Workers() != cfg.Workers {
				panic(fmt.Sprintf("buffered: shared pool width %d != Workers %d", cfg.Pool.Workers(), cfg.Workers))
			}
			f.pool = cfg.Pool
		} else {
			f.pool = par.New(cfg.Workers)
		}
		f.p1 = func(lo, hi, w int) { f.phase1(lo, hi, &f.shards[w].Stats) }
		f.p2 = func(lo, hi, w int) { f.phase2(lo, hi, &f.shards[w].Stats) }
	}
	for i := range f.creditIn {
		f.creditIn[i].vc = -1
	}
	for i := range f.outCredit {
		f.outCredit[i].vc = -1
	}
	for i := range f.nics {
		f.nics[i] = noc.NewNIC(i)
	}
	for i := range f.routers {
		r := &f.routers[i]
		r.in = make([]inVC, maxDirs*cfg.VCs)
		r.out = make([]outVC, maxDirs*cfg.VCs)
		for j := range r.in {
			r.in[j].buf = make([]noc.Flit, cfg.BufDepth)
			r.in[j].outVC = -1
		}
		for j := range r.out {
			r.out[j].credits = cfg.BufDepth
		}
		for v := range r.local {
			r.local[v].outVC = -1
		}
	}
	f.stats.Links = cfg.Topology.Links()
	return f
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// Cycle returns the number of completed cycles.
func (f *Fabric) Cycle() int64 { return f.cycle }

// NIC returns node i's network interface.
func (f *Fabric) NIC(i int) *noc.NIC { return f.nics[i] }

// Stats returns the accumulated counters, merging worker shards.
func (f *Fabric) Stats() noc.Stats {
	s := f.stats
	for i := range f.shards {
		s.Merge(f.shards[i].Stats)
	}
	s.Cycles = f.cycle
	return s
}

// InFlight returns the number of flits inside the network (buffers and
// links).
func (f *Fabric) InFlight() int64 { return f.inflight }

// Drained reports whether no flit is in flight or queued.
func (f *Fabric) Drained() bool {
	if f.inflight != 0 {
		return false
	}
	for _, nic := range f.nics {
		if nic.HasTraffic() || nic.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// Step advances one cycle.
func (f *Fabric) Step() {
	nodes := f.top.Nodes()
	if f.pool == nil {
		f.phase1(0, nodes, &f.shards[0].Stats)
		f.phase2(0, nodes, &f.shards[0].Stats)
	} else {
		f.pool.Run(nodes, f.p1)
		f.pool.Run(nodes, f.p2)
	}
	f.updateInflight()
	f.cycle++
}

// Close releases the fabric's own worker pool. Shared pools (Config.
// Pool) belong to their creator and are left running.
func (f *Fabric) Close() {
	if f.pool != nil && f.pool != f.cfg.Pool {
		f.pool.Close()
	}
}

func (f *Fabric) updateInflight() {
	var inj, ej int64
	for i := range f.shards {
		inj += f.shards[i].Stats.FlitsInjected
		ej += f.shards[i].Stats.FlitsEjected
	}
	f.inflight = inj - ej
}

// inputRef identifies a switch-allocation candidate: a direction input VC
// (dir in 0..3) or the local injection port (dir == localDir).
const localDir = maxDirs

type inputRef struct {
	dir int
	vc  int
}

func (f *Fabric) phase1(lo, hi int, st *noc.Stats) {
	stage := int(f.cycle % int64(f.depth))
	for node := lo; node < hi; node++ {
		r := &f.routers[node]
		base := node * maxDirs

		// 1. Receive arriving flits into input buffers; consume credits.
		for d := 0; d < maxDirs; d++ {
			fs := &f.flitIn[(base+d)*f.depth+stage]
			if fs.ok {
				fs.ok = false
				vc := &r.in[d*f.vcs+int(fs.f.VC)]
				if vc.count >= len(vc.buf) {
					panic(fmt.Sprintf("buffered: input buffer overflow at node %d dir %d vc %d", node, d, fs.f.VC))
				}
				vc.push(fs.f)
				st.BufferWrites++
				if f.tr != nil {
					f.tr.Buffer(f.cycle, node, &fs.f)
				}
			}
			cs := &f.creditIn[(base+d)*f.depth+stage]
			if cs.vc >= 0 {
				r.out[d*f.vcs+int(cs.vc)].credits++
				cs.vc = -1
			}
		}

		// 2. Route computation for fronts that are heads and unrouted.
		for i := range r.in {
			vc := &r.in[i]
			if vc.count > 0 && !vc.routed && vc.front().Index == 0 {
				vc.route = f.top.XYRoute(node, int(vc.front().Dst))
				vc.routed = true
			}
		}
		nic := f.nics[node]
		f.routeLocal(node, nic)

		// 3. VC allocation: oldest-first over head flits needing an
		// output VC. Local ejection (route == Local) needs no VC.
		f.allocVCs(node, nic, st)

		// 4. Switch allocation. Input-port stage: each of the 4+1 ports
		// nominates its oldest ready VC; output-port stage: each output
		// grants its oldest requester.
		var granted [maxDirs + 1]inputRef // winner per output port; Local output at index maxDirs
		for i := range granted {
			granted[i] = inputRef{dir: -1}
		}
		var nominee [maxDirs + 1]inputRef
		for i := range nominee {
			nominee[i] = inputRef{dir: -1}
		}
		wanted, injected, throttled := false, false, false

		// Nominate per input port.
		for d := 0; d < maxDirs; d++ {
			best := -1
			for v := 0; v < f.vcs; v++ {
				vc := &r.in[d*f.vcs+v]
				if !f.vcReady(r, vc) {
					continue
				}
				if best < 0 || noc.Older(vc.front(), r.in[d*f.vcs+best].front()) {
					best = v
				}
			}
			if best >= 0 {
				nominee[d] = inputRef{dir: d, vc: best}
				st.Arbitrations++
			}
		}
		// Local injection port nomination: replies first.
		if nic.HasTraffic() {
			wanted = true
			lv, thr := f.localReady(node, r, nic)
			throttled = thr
			if lv >= 0 {
				nominee[localDir] = inputRef{dir: localDir, vc: lv}
				st.Arbitrations++
			}
		}

		// Output-port grant: oldest requester wins each direction; the
		// Local (ejection) port grants up to EjectWidth requesters,
		// matching the bufferless fabric's NI datapath width.
		var localReq [maxDirs + 1]inputRef
		nLocal := 0
		for _, nom := range nominee {
			if nom.dir < 0 {
				continue
			}
			route, fl := f.candidate(node, r, nic, nom)
			if route == topology.Local {
				localReq[nLocal] = nom
				nLocal++
				continue
			}
			out := int(route)
			cur := granted[out]
			if cur.dir < 0 {
				granted[out] = nom
				continue
			}
			_, curFl := f.candidate(node, r, nic, cur)
			if noc.Older(fl, curFl) {
				granted[out] = nom
			}
		}
		// Oldest-first among ejection requesters, up to EjectWidth.
		for i := 1; i < nLocal; i++ {
			j := i
			for j > 0 {
				_, a := f.candidate(node, r, nic, localReq[j])
				_, b := f.candidate(node, r, nic, localReq[j-1])
				if !noc.Older(a, b) {
					break
				}
				localReq[j], localReq[j-1] = localReq[j-1], localReq[j]
				j--
			}
		}
		if nLocal > f.cfg.EjectWidth {
			nLocal = f.cfg.EjectWidth
		}
		localGrant := localReq[:nLocal]

		// Traverse: pop winners, emit flits/credits, update VC state.
		for out, g := range granted[:maxDirs] {
			if g.dir < 0 {
				continue
			}
			if g.dir == localDir {
				injected = f.traverseLocal(node, r, nic, g.vc, topology.Port(out), st) || injected
			} else {
				f.traverseDir(node, r, nic, g, topology.Port(out), st)
			}
		}
		for _, g := range localGrant {
			if g.dir == localDir {
				injected = f.traverseLocal(node, r, nic, g.vc, topology.Local, st) || injected
			} else {
				f.traverseDir(node, r, nic, g, topology.Local, st)
			}
		}

		if wanted {
			st.WantedCycles++
			if !injected {
				if throttled {
					st.ThrottledCycles++
					if f.sp != nil {
						f.sp.AddThrottle(node)
					}
				} else {
					st.StarvedCycles++
					if f.sp != nil {
						f.sp.AddStarve(node)
					}
				}
			}
		}
		f.policy.Tick(node, wanted, injected, throttled)

		// Distributed congestion marking on departures.
		if f.policy.MarkCongested(node) {
			for d := 0; d < maxDirs; d++ {
				if f.outFlit[base+d].ok {
					f.outFlit[base+d].f.CongBit = true
				}
			}
		}
	}
}

// outPort maps a granted-slot index back to a port number (maxDirs means
// the Local ejection port).
func outPort(i int) topology.Port {
	if i == maxDirs {
		return topology.Local
	}
	return topology.Port(i)
}

// routeLocal computes routes for the packets at the front of the NIC
// queues. State for a queue whose packet is mid-flight is left alone;
// packets enqueue atomically, so a queue never empties mid-packet.
func (f *Fabric) routeLocal(node int, nic *noc.NIC) {
	r := &f.routers[node]
	for v := 0; v < numLocalVC; v++ {
		fl := f.localFront(nic, v)
		if fl == nil {
			continue
		}
		if !r.local[v].routed && fl.Index == 0 {
			r.local[v].route = f.top.XYRoute(node, int(fl.Dst))
			r.local[v].routed = true
		}
	}
}

// localFront returns the front flit of the NIC queue bound to local VC v.
func (f *Fabric) localFront(nic *noc.NIC, v int) *noc.Flit {
	if v == localVCRep {
		return nic.HeadReply()
	}
	return nic.HeadRequest()
}

// localPop removes the front flit of the NIC queue bound to local VC v.
func (f *Fabric) localPop(nic *noc.NIC, v int) noc.Flit {
	if v == localVCRep {
		return nic.PopReply()
	}
	return nic.PopRequest()
}

// allocVCs performs output-VC allocation, oldest-first across all head
// flits (direction VCs and the local port) that need one.
func (f *Fabric) allocVCs(node int, nic *noc.NIC, st *noc.Stats) {
	r := &f.routers[node]
	type req struct {
		ref inputRef
		fl  *noc.Flit
	}
	var reqs [maxDirs*8 + numLocalVC]req
	n := 0
	for d := 0; d < maxDirs; d++ {
		for v := 0; v < f.vcs; v++ {
			vc := &r.in[d*f.vcs+v]
			if vc.count > 0 && vc.routed && vc.outVC < 0 &&
				vc.route != topology.Local && vc.front().Index == 0 {
				reqs[n] = req{ref: inputRef{dir: d, vc: v}, fl: vc.front()}
				n++
			}
		}
	}
	for v := 0; v < numLocalVC; v++ {
		fl := f.localFront(nic, v)
		if fl != nil && r.local[v].routed && r.local[v].outVC < 0 &&
			r.local[v].route != topology.Local && fl.Index == 0 {
			reqs[n] = req{ref: inputRef{dir: localDir, vc: v}, fl: fl}
			n++
		}
	}
	// Oldest-first insertion sort (n is small).
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && noc.Older(reqs[j].fl, reqs[j-1].fl) {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
			j--
		}
	}
	for i := 0; i < n; i++ {
		ref := reqs[i].ref
		var route topology.Port
		if ref.dir == localDir {
			route = r.local[ref.vc].route
		} else {
			route = r.in[ref.dir*f.vcs+ref.vc].route
		}
		// Find a free output VC on the routed port.
		for ov := 0; ov < f.vcs; ov++ {
			o := &r.out[int(route)*f.vcs+ov]
			if !o.busy {
				o.busy = true
				if ref.dir == localDir {
					r.local[ref.vc].outVC = int8(ov)
				} else {
					r.in[ref.dir*f.vcs+ref.vc].outVC = int8(ov)
				}
				st.Arbitrations++
				break
			}
		}
	}
}

// vcReady reports whether a direction input VC can traverse the switch
// this cycle: non-empty, routed, and either ejecting locally or holding
// an output VC with a credit.
func (f *Fabric) vcReady(r *router, vc *inVC) bool {
	if vc.count == 0 || !vc.routed {
		return false
	}
	if vc.route == topology.Local {
		return true
	}
	if vc.outVC < 0 {
		return false
	}
	return r.out[int(vc.route)*f.vcs+int(vc.outVC)].credits > 0
}

// localReady returns the local pseudo-VC able to inject this cycle,
// reply VC first, or -1. Requests additionally pass the injection
// policy (Algorithm 3: consulted only when the network could accept the
// flit); throttled reports that the policy — rather than VC/credit
// availability — blocked an otherwise-ready injection.
func (f *Fabric) localReady(node int, r *router, nic *noc.NIC) (v int, throttled bool) {
	for _, v := range [...]int{localVCRep, localVCReq} {
		fl := f.localFront(nic, v)
		if fl == nil || !r.local[v].routed {
			continue
		}
		if r.local[v].route != topology.Local {
			if r.local[v].outVC < 0 {
				continue
			}
			if r.out[int(r.local[v].route)*f.vcs+int(r.local[v].outVC)].credits <= 0 {
				continue
			}
		}
		if noc.ThrottledKind(fl.Kind) && fl.Index == 0 && !f.policy.Allow(node) {
			throttled = true
			continue
		}
		return v, false
	}
	return -1, throttled
}

// candidate returns the route and front flit for a nominated input.
func (f *Fabric) candidate(node int, r *router, nic *noc.NIC, ref inputRef) (topology.Port, *noc.Flit) {
	if ref.dir == localDir {
		return r.local[ref.vc].route, f.localFront(nic, ref.vc)
	}
	vc := &r.in[ref.dir*f.vcs+ref.vc]
	return vc.route, vc.front()
}

// traverseDir moves the winning flit of a direction input VC through the
// switch: eject locally or forward downstream, returning a credit
// upstream and releasing per-packet state on the tail flit.
func (f *Fabric) traverseDir(node int, r *router, nic *noc.NIC, g inputRef, out topology.Port, st *noc.Stats) {
	vc := &r.in[g.dir*f.vcs+g.vc]
	fl := vc.pop()
	st.BufferReads++
	st.CrossbarTraversals++
	// Return a credit to the upstream router for the freed slot.
	f.outCredit[node*maxDirs+g.dir] = creditSlot{vc: int8(g.vc)}
	if out == topology.Local {
		st.FlitsEjected++
		st.NetFlitLatencySum += f.cycle - fl.Inject
		if f.sp != nil {
			f.sp.AddEject(node)
		}
		if f.tr != nil {
			f.tr.Eject(f.cycle, node, &fl)
		}
		if _, done := nic.Receive(&fl, f.cycle); done {
			st.PacketsDelivered++
			st.PacketLatencySum += f.cycle - fl.Enq
		}
	} else {
		ovc := vc.outVC
		r.out[int(out)*f.vcs+int(ovc)].credits--
		fl.VC = ovc
		f.outFlit[node*maxDirs+int(out)] = flitSlot{f: fl, ok: true}
	}
	if fl.Index == fl.Len-1 { // tail: release the packet's allocations
		if out != topology.Local {
			r.out[int(out)*f.vcs+int(vc.outVC)].busy = false
		}
		vc.outVC = -1
		vc.routed = false
	}
}

// traverseLocal injects the front flit of a NIC queue. Returns true when
// a flit entered the network.
func (f *Fabric) traverseLocal(node int, r *router, nic *noc.NIC, v int, out topology.Port, st *noc.Stats) bool {
	fl := f.localPop(nic, v)
	fl.Inject = f.cycle
	st.FlitsInjected++
	st.QueueLatencySum += f.cycle - fl.Enq
	st.CrossbarTraversals++
	if f.sp != nil {
		f.sp.AddInject(node)
	}
	if f.tr != nil {
		f.tr.Inject(f.cycle, node, &fl)
	}
	if out == topology.Local {
		// Self-addressed packet: immediately delivered.
		st.FlitsEjected++
		if f.sp != nil {
			f.sp.AddEject(node)
		}
		if f.tr != nil {
			f.tr.Eject(f.cycle, node, &fl)
		}
		if _, done := nic.Receive(&fl, f.cycle); done {
			st.PacketsDelivered++
			st.PacketLatencySum += f.cycle - fl.Enq
		}
	} else {
		ovc := r.local[v].outVC
		r.out[int(out)*f.vcs+int(ovc)].credits--
		fl.VC = ovc
		f.outFlit[node*maxDirs+int(out)] = flitSlot{f: fl, ok: true}
	}
	if fl.Index == fl.Len-1 {
		if out != topology.Local {
			r.out[int(out)*f.vcs+int(r.local[v].outVC)].busy = false
		}
		r.local[v].outVC = -1
		r.local[v].routed = false
	}
	return true
}

// phase2 commits outgoing flits and credits onto the link pipelines.
func (f *Fabric) phase2(lo, hi int, st *noc.Stats) {
	stage := int(f.cycle % int64(f.depth))
	for node := lo; node < hi; node++ {
		base := node * maxDirs
		for d := 0; d < maxDirs; d++ {
			o := &f.outFlit[base+d]
			if o.ok {
				o.ok = false
				nb := f.top.Neighbor(node, topology.Port(d))
				ad := topology.Opposite(topology.Port(d))
				f.flitIn[(nb*maxDirs+int(ad))*f.depth+stage] = flitSlot{f: o.f, ok: true}
				st.LinkTraversals++
				if f.sp != nil {
					f.sp.AddLink(node, d)
				}
			}
			c := &f.outCredit[base+d]
			if c.vc >= 0 {
				// Credit for a flit received on arrival dir d goes back
				// to Neighbor(node,d)'s output port Opposite(d).
				nb := f.top.Neighbor(node, topology.Port(d))
				od := topology.Opposite(topology.Port(d))
				f.creditIn[(nb*maxDirs+int(od))*f.depth+stage] = creditSlot{vc: c.vc}
				c.vc = -1
			}
		}
	}
}
