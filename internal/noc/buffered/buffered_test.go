package buffered

import (
	"testing"

	"nocsim/internal/noc"
	"nocsim/internal/rng"
	"nocsim/internal/topology"
)

func newFabric(k int, opts ...func(*Config)) *Fabric {
	cfg := Config{Topology: topology.NewSquare(topology.Mesh, k)}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func runUntilDrained(t *testing.T, f *Fabric, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if f.Drained() {
			return
		}
		f.Step()
	}
	t.Fatalf("network not drained after %d cycles (inflight=%d)", maxCycles, f.InFlight())
}

func TestSingleFlitDelivery(t *testing.T) {
	f := newFabric(4)
	f.NIC(0).Send(15, noc.Request, 7, 1, 0)
	runUntilDrained(t, f, 400)
	d := f.NIC(15).Delivered()
	if len(d) != 1 || d[0].Token != 7 {
		t.Fatalf("delivered %v", d)
	}
}

func TestMultiFlitWormhole(t *testing.T) {
	f := newFabric(4)
	f.NIC(1).Send(14, noc.Reply, 3, 6, 0)
	runUntilDrained(t, f, 1000)
	d := f.NIC(14).Delivered()
	if len(d) != 1 || d[0].Len != 6 {
		t.Fatalf("want one 6-flit packet, got %v", d)
	}
}

func TestSelfAddressedPacket(t *testing.T) {
	f := newFabric(4)
	f.NIC(5).Send(5, noc.Request, 9, 2, 0)
	runUntilDrained(t, f, 100)
	d := f.NIC(5).Delivered()
	if len(d) != 1 || d[0].Token != 9 {
		t.Fatalf("self-addressed packet not delivered: %v", d)
	}
}

// Property: conservation under sustained random traffic, including
// packets longer than the VC buffer depth (wormhole streaming).
func TestFlitConservation(t *testing.T) {
	f := newFabric(4)
	r := rng.New(42)
	sentPkts, sentFlits := 0, 0
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle < 2000 {
			for n := 0; n < 16; n++ {
				if r.Bool(0.1) {
					dst := r.Intn(16)
					if dst == n {
						continue
					}
					ln := 1 + r.Intn(8) // up to 2x buffer depth
					f.NIC(n).Send(dst, noc.Request, 0, ln, f.Cycle())
					sentPkts++
					sentFlits += ln
				}
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 400000)
	s := f.Stats()
	if s.FlitsInjected != int64(sentFlits) || s.FlitsEjected != int64(sentFlits) {
		t.Errorf("flits inj=%d ej=%d, want %d", s.FlitsInjected, s.FlitsEjected, sentFlits)
	}
	got := 0
	for n := 0; n < 16; n++ {
		got += len(f.NIC(n).Delivered())
	}
	if got != sentPkts {
		t.Errorf("delivered %d packets, want %d", got, sentPkts)
	}
}

// Per-VC FIFO and wormhole discipline imply flits of one packet arrive
// in order; NIC.Receive would still assemble out-of-order arrivals, so
// check order explicitly via a counting shim: in-order arrival means the
// completed packet count matches and no pending packets linger.
func TestNoStrandedPartialPackets(t *testing.T) {
	f := newFabric(4)
	r := rng.New(9)
	for cycle := 0; cycle < 3000; cycle++ {
		if cycle < 1500 {
			n := r.Intn(16)
			dst := r.Intn(16)
			if dst != n {
				f.NIC(n).Send(dst, noc.Request, 0, 4, f.Cycle())
			}
		}
		f.Step()
	}
	runUntilDrained(t, f, 400000)
	for n := 0; n < 16; n++ {
		if p := f.NIC(n).PendingPackets(); p != 0 {
			t.Errorf("node %d has %d stranded partial packets", n, p)
		}
	}
}

func TestBufferEventsCounted(t *testing.T) {
	f := newFabric(4)
	f.NIC(0).Send(3, noc.Request, 0, 2, 0) // 3 hops east
	runUntilDrained(t, f, 400)
	s := f.Stats()
	if s.BufferWrites == 0 || s.BufferReads == 0 {
		t.Error("buffered router must count buffer events")
	}
	if s.BufferWrites != s.BufferReads {
		t.Errorf("buffer writes %d != reads %d after drain", s.BufferWrites, s.BufferReads)
	}
}

func TestBackpressureBlocksInjection(t *testing.T) {
	// Flood one destination from all nodes: credits must run out and
	// injections stall (starvation observed), but nothing is lost.
	f := newFabric(4)
	sent := 0
	for cycle := 0; cycle < 400; cycle++ {
		for n := 0; n < 16; n++ {
			if n != 5 && f.NIC(n).QueueLen() < 32 {
				f.NIC(n).Send(5, noc.Request, 0, 4, f.Cycle())
				sent += 4
			}
		}
		f.Step()
	}
	s := f.Stats()
	if s.StarvedCycles == 0 {
		t.Error("hotspot flood should stall injections via credit backpressure")
	}
	runUntilDrained(t, f, 400000)
	if got := f.Stats().FlitsEjected; got != int64(sent) {
		t.Errorf("ejected %d, want %d", got, sent)
	}
}

type denyPolicy struct{}

func (denyPolicy) Allow(int) bool             { return false }
func (denyPolicy) Tick(int, bool, bool, bool) {}
func (denyPolicy) MarkCongested(int) bool     { return false }

func TestPolicyBlocksRequestsNotReplies(t *testing.T) {
	f := newFabric(4, func(c *Config) { c.Policy = denyPolicy{} })
	f.NIC(0).Send(5, noc.Request, 0, 1, 0)
	f.NIC(1).Send(6, noc.Reply, 0, 1, 0)
	for i := 0; i < 200; i++ {
		f.Step()
	}
	if len(f.NIC(5).Delivered()) != 0 {
		t.Error("request should be blocked by policy")
	}
	if len(f.NIC(6).Delivered()) != 1 {
		t.Error("reply must bypass policy")
	}
}

func TestReplyBypassesStalledRequestStream(t *testing.T) {
	// Saturate requests from node 0, then enqueue a reply: it must be
	// delivered promptly via the reply pseudo-VC even while request
	// packets are mid-flight.
	f := newFabric(4)
	for i := 0; i < 50; i++ {
		f.NIC(0).Send(15, noc.Request, 0, 4, 0)
	}
	for i := 0; i < 30; i++ {
		f.Step()
	}
	f.NIC(0).Send(1, noc.Reply, 77, 1, f.Cycle())
	start := f.Cycle()
	for i := 0; i < 2000; i++ {
		f.Step()
		for _, p := range f.NIC(1).Delivered() {
			if p.Token == 77 {
				if f.Cycle()-start > 200 {
					t.Errorf("reply took %d cycles behind request backlog", f.Cycle()-start)
				}
				return
			}
		}
	}
	t.Fatal("reply never delivered")
}

func TestInterleavedPacketsDoNotCorrupt(t *testing.T) {
	// Two sources stream long packets through a shared column; packets
	// must reassemble exactly.
	f := newFabric(4)
	for i := 0; i < 20; i++ {
		f.NIC(0).Send(12, noc.Request, uint64(i), 6, f.Cycle())
		f.NIC(4).Send(12, noc.Request, uint64(100+i), 6, f.Cycle())
		f.Step()
	}
	runUntilDrained(t, f, 200000)
	d := f.NIC(12).Delivered()
	if len(d) != 40 {
		t.Fatalf("delivered %d packets, want 40", len(d))
	}
	for _, p := range d {
		if p.Len != 6 {
			t.Errorf("packet %d has len %d, want 6", p.Token, p.Len)
		}
	}
}

func TestParallelEquivalence(t *testing.T) {
	run := func(workers int) noc.Stats {
		f := newFabric(8, func(c *Config) { c.Workers = workers })
		r := rng.New(11)
		for cycle := 0; cycle < 400; cycle++ {
			for n := 0; n < 64; n++ {
				if r.Bool(0.1) {
					dst := r.Intn(64)
					if dst != n {
						f.NIC(n).Send(dst, noc.Request, 0, 2, f.Cycle())
					}
				}
			}
			f.Step()
		}
		for i := 0; i < 200000 && !f.Drained(); i++ {
			f.Step()
		}
		return f.Stats()
	}
	seq := run(1)
	par := run(4)
	// Cycle counts can differ by drain timing granularity; compare the
	// deterministic traffic counters.
	seq.Cycles, par.Cycles = 0, 0
	if seq != par {
		t.Errorf("parallel run diverged:\nseq %+v\npar %+v", seq, par)
	}
}

func TestLowerLatencyThanBlessUnderHotspot(t *testing.T) {
	// Sanity: with buffers, hotspot traffic should not be deflected, so
	// deflection count is zero by construction and packets still arrive.
	f := newFabric(4)
	for n := 0; n < 16; n++ {
		if n != 5 {
			f.NIC(n).Send(5, noc.Request, 0, 1, 0)
		}
	}
	runUntilDrained(t, f, 4000)
	if got := len(f.NIC(5).Delivered()); got != 15 {
		t.Errorf("delivered %d, want 15", got)
	}
	if f.Stats().Deflections != 0 {
		t.Error("buffered router must never deflect")
	}
}

func TestPanicsOnTorus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("torus config did not panic")
		}
	}()
	New(Config{Topology: topology.NewSquare(topology.Torus, 4)})
}

func TestPanicsOnTooManyVCs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("9-VC config did not panic")
		}
	}()
	New(Config{Topology: topology.NewSquare(topology.Mesh, 2), VCs: 9})
}

func TestDefaults(t *testing.T) {
	f := newFabric(2)
	if f.cfg.VCs != 4 || f.cfg.BufDepth != 4 || f.cfg.HopLatency != 3 {
		t.Errorf("defaults not applied: %+v", f.cfg)
	}
}

func BenchmarkStep4x4Saturated(b *testing.B) {
	f := newFabric(4)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 16; n++ {
			if f.NIC(n).QueueLen() < 4 {
				dst := r.Intn(16)
				if dst != n {
					f.NIC(n).Send(dst, noc.Request, 0, 4, f.Cycle())
				}
			}
		}
		f.Step()
	}
}

func TestEjectWidthTwoDrainsFaster(t *testing.T) {
	// Two flits from opposite sides arriving for one node: with eject
	// width 2 both leave the network promptly; with width 1 the second
	// waits a cycle in its buffer (never deflected, just delayed).
	run := func(width int) int64 {
		f := newFabric(3, func(c *Config) { c.EjectWidth = width })
		f.NIC(3).Send(4, noc.Request, 1, 1, 0)
		f.NIC(5).Send(4, noc.Request, 2, 1, 0)
		runUntilDrained(t, f, 200)
		var last int64
		for _, p := range f.NIC(4).Delivered() {
			if p.Eject > last {
				last = p.Eject
			}
		}
		return last
	}
	wide := run(2)
	narrow := run(1)
	if wide > narrow {
		t.Errorf("eject width 2 delivered at %d, later than width 1 at %d", wide, narrow)
	}
}

func TestWritebacksAreThrottled(t *testing.T) {
	f := newFabric(4, func(c *Config) { c.Policy = denyPolicy{} })
	f.NIC(0).Send(5, noc.Writeback, 0, 3, 0)
	for i := 0; i < 300; i++ {
		f.Step()
	}
	if len(f.NIC(5).Delivered()) != 0 {
		t.Error("writeback bypassed the injection policy")
	}
}
