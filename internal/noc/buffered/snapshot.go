package buffered

import (
	"nocsim/internal/noc"
	"nocsim/internal/snap"
	"nocsim/internal/topology"
)

// Checkpoint codec for the buffered VC fabric. Like the bufferless
// codec, the encoding is defined purely in terms of simulated state:
// per-VC ring contents in FIFO order (restored head-normalized), the
// allocator's per-packet state (routes, output-VC grants, busy masks,
// credit balances), and the packed flit+credit link words at absolute
// positions. Pool handles are never encoded — occupied slots are
// re-Alloced in canonical scan order on restore.

func init() {
	snap.Cover(Fabric{}, snap.Coverage{
		Serialized: []string{
			"cycle", "nics", "routers", "lin", "shards",
		},
		Waived: map[string]string{
			"top":          "construction: topology is config-derived",
			"cfg":          "config: construction input",
			"policy":       "construction: restored separately by the system layer",
			"depth":        "construction: derived from Config.HopLatency",
			"vcs":          "construction: hoisted Config mirror",
			"ejectW":       "construction: hoisted Config mirror",
			"fpool":        "rebuilt: occupied slots are re-Alloced from serialized flit content in canonical scan order",
			"hotp":         "cache: refreshed from the pool after every Reserve",
			"ringLen":      "construction: derived from Config.HopLatency",
			"planeSz":      "construction: derived from the topology",
			"stage":        "scratch: recomputed from cycle at the top of every Step",
			"wstage":       "scratch: recomputed from cycle at the top of every Step",
			"inCount":      "derived: recomputed from pipeline occupancy on restore",
			"links":        "construction: derived from the topology",
			"skip":         "construction: derived from Config and the policy's capabilities",
			"active":       "rebuilt: recomputed from exact occupancy (buffers, NIC traffic, pipelines) on restore",
			"idle":         "construction: capability view of the policy",
			"lastTick":     "canonical: SyncPolicy flushes pending idle stretches before snapshot; restore pins every entry to the restored cycle",
			"openPol":      "construction: capability view of the policy",
			"atomicAct":    "construction: derived from worker sharding",
			"reserveNeeds": "scratch: rewritten at the top of every Step",
			"scr":          "scratch: every slot is written before it is read within one router step",
			"pool":         "construction: worker pool is execution machinery, not simulated state",
			"p1":           "construction: prebuilt closure over the pool",
			"stats":        "construction: holds only the Links topology property; event totals are encoded merged and restored into shard 0",
			"tr":           "construction: observability collector, restored by the obs layer",
			"sp":           "construction: observability collector, restored by the obs layer",
			"inflight":     "derived: recomputed from shard counters on restore",
		},
	})
	snap.Cover(Config{}, snap.Coverage{
		Waived: map[string]string{
			"Topology":    "config: construction input",
			"VCs":         "config: construction input",
			"BufDepth":    "config: construction input",
			"HopLatency":  "config: construction input",
			"EjectWidth":  "config: construction input",
			"Policy":      "config: construction input",
			"NoActiveSet": "config: construction input",
			"Workers":     "config: construction input",
			"Pool":        "config: construction input",
			"Probe":       "config: construction input",
		},
	})
	snap.Cover(router{}, snap.Coverage{
		Serialized: []string{"in", "busy", "local", "out"},
		Waived: map[string]string{
			"nonEmpty": "derived: recomputed from per-VC counts on restore",
		},
	})
	snap.Cover(inVC{}, snap.Coverage{
		Serialized: []string{"buf", "count", "route", "routed", "outVC"},
		Waived: map[string]string{
			"head": "canonical: ring content is encoded in FIFO order and restored head-normalized",
		},
	})
	snap.Cover(linkRef{}, snap.Coverage{
		Waived: map[string]string{
			"idx": "construction: derived from the topology",
			"nb":  "construction: derived from the topology",
		},
	})
	snap.Cover(ageKey{}, snap.Coverage{
		Waived: map[string]string{
			"inject": "scratch: per-step copy of pool state",
			"seq":    "scratch: per-step copy of pool state",
			"index":  "scratch: per-step copy of pool state",
		},
	})
	snap.Cover(nominee{}, snap.Coverage{
		Waived: map[string]string{
			"dir":   "scratch: written before read within one router step",
			"vc":    "scratch: written before read within one router step",
			"route": "scratch: written before read within one router step",
			"age":   "scratch: written before read within one router step",
		},
	})
	snap.Cover(vcReq{}, snap.Coverage{
		Waived: map[string]string{
			"dir": "scratch: written before read within one router step",
			"vc":  "scratch: written before read within one router step",
			"age": "scratch: written before read within one router step",
		},
	})
	snap.Cover(scratch{}, snap.Coverage{
		Waived: map[string]string{
			"noms":     "scratch: written before read within one router step",
			"granted":  "scratch: written before read within one router step",
			"localReq": "scratch: written before read within one router step",
			"reqs":     "scratch: written before read within one router step",
		},
	})
}

const tagBuffered = 0x21

// Snapshot encodes the fabric's complete dynamic state; see the
// bufferless fabric's Snapshot for the SyncPolicy rationale.
func (f *Fabric) Snapshot(w *snap.Writer) {
	f.SyncPolicy()
	w.Tag(tagBuffered)
	w.I64(f.cycle)
	s := f.Stats()
	s.Snapshot(w)
	w.U32(uint32(len(f.nics)))
	for _, nic := range f.nics {
		nic.Snapshot(w)
	}
	// Total pooled-flit count up front, so Restore grows the pool once.
	total := uint32(0)
	for i := range f.routers {
		for j := range f.routers[i].in {
			total += uint32(f.routers[i].in[j].count)
		}
	}
	for _, wd := range f.lin {
		if noc.Handle(wd) != 0 {
			total++
		}
	}
	w.U32(total)
	var fl noc.Flit
	for i := range f.routers {
		r := &f.routers[i]
		for j := range r.in {
			vc := &r.in[j]
			w.U32(uint32(vc.count))
			for k := 0; k < int(vc.count); k++ {
				p := int(vc.head) + k
				if p >= len(vc.buf) {
					p -= len(vc.buf)
				}
				f.fpool.Get(vc.buf[p], &fl)
				noc.SnapshotFlit(w, &fl)
			}
			w.U8(uint8(vc.route))
			w.Bool(vc.routed)
			w.U8(uint8(vc.outVC))
		}
		w.U32(r.busy)
		for v := range r.local {
			w.U8(uint8(r.local[v].route))
			w.Bool(r.local[v].routed)
			w.U8(uint8(r.local[v].outVC))
		}
		for _, c := range r.out {
			w.I32(c)
		}
	}
	// Packed flit+credit link words: occupied slots in absolute scan
	// order, flit content in place of its handle.
	occ := uint32(0)
	for _, wd := range f.lin {
		if wd != 0 {
			occ++
		}
	}
	w.U32(occ)
	for i, wd := range f.lin {
		if wd == 0 {
			continue
		}
		w.U32(uint32(i))
		w.U8(uint8(wd >> 32)) // credit byte (credit VC + 1; 0 = none)
		h := noc.Handle(wd)
		w.Bool(h != 0)
		if h != 0 {
			f.fpool.Get(h, &fl)
			noc.SnapshotFlit(w, &fl)
		}
	}
}

// reserve grows the flit pool so shard 0 can Alloc n handles.
func (f *Fabric) reserve(n int) {
	f.reserveNeeds[0] = n
	for w := 1; w < len(f.reserveNeeds); w++ {
		f.reserveNeeds[w] = 0
	}
	f.fpool.Reserve(f.reserveNeeds)
	f.hotp = f.fpool.HotPlane()
}

// Restore overlays state captured by Snapshot onto a fabric freshly
// constructed with the same Config.
func (f *Fabric) Restore(r *snap.Reader) {
	r.Expect(tagBuffered)
	f.cycle = r.I64()
	var tot noc.Stats
	tot.Restore(r)
	for i := range f.shards {
		f.shards[i].Stats = noc.Stats{}
	}
	tot.Cycles = 0
	tot.Links = 0
	f.shards[0].Stats = tot
	if n := int(r.U32()); n != len(f.nics) {
		r.Failf("buffered NICs %d, want %d", n, len(f.nics))
		return
	}
	for _, nic := range f.nics {
		nic.Restore(r)
	}
	total := int(r.U32())
	if r.Err() != nil {
		return
	}
	f.reserve(total)
	var fl noc.Flit
	for i := range f.routers {
		rt := &f.routers[i]
		rt.nonEmpty = 0
		for j := range rt.in {
			vc := &rt.in[j]
			c := int(r.U32())
			if c < 0 || c > len(vc.buf) {
				r.Failf("buffered VC ring %d.%d overflow (%d > %d)", i, j, c, len(vc.buf))
				return
			}
			vc.head = 0
			vc.count = int16(c)
			for k := 0; k < c; k++ {
				noc.RestoreFlit(r, &fl)
				if r.Err() != nil {
					return
				}
				vc.buf[k] = f.fpool.Alloc(0, &fl)
			}
			vc.route = topology.Port(r.U8())
			vc.routed = r.Bool()
			vc.outVC = int8(r.U8())
			if c > 0 {
				rt.nonEmpty |= 1 << uint(j)
			}
		}
		rt.busy = r.U32()
		for v := range rt.local {
			rt.local[v].route = topology.Port(r.U8())
			rt.local[v].routed = r.Bool()
			rt.local[v].outVC = int8(r.U8())
		}
		for j := range rt.out {
			rt.out[j] = r.I32()
		}
	}
	occ := int(r.U32())
	if r.Err() != nil {
		return
	}
	for k := 0; k < occ; k++ {
		i := int(r.U32())
		cb := r.U8()
		hasFlit := r.Bool()
		wd := uint64(cb) << 32
		if hasFlit {
			noc.RestoreFlit(r, &fl)
			if r.Err() != nil {
				return
			}
			wd |= uint64(f.fpool.Alloc(0, &fl))
		}
		if i < 0 || i >= len(f.lin) || f.lin[i] != 0 || wd == 0 {
			r.Failf("buffered link slot %d invalid or reused", i)
			return
		}
		f.lin[i] = wd
	}
	if r.Err() != nil {
		return
	}
	f.rebuildDerived()
}

// rebuildDerived recomputes the in-flight total, pipeline occupancy
// counters, idle-replay cursors and the active set from the restored
// state.
func (f *Fabric) rebuildDerived() {
	f.updateInflight()
	if f.inCount != nil {
		for i := range f.inCount {
			f.inCount[i] = 0
		}
	}
	if f.skip {
		for i := range f.active {
			f.active[i] = 0
		}
		for i := range f.lastTick {
			f.lastTick[i] = f.cycle
		}
	}
	if f.inCount != nil || f.skip {
		for i, wd := range f.lin {
			if wd == 0 {
				continue
			}
			node := (i % f.planeSz) / maxDirs
			if f.inCount != nil {
				if noc.Handle(wd) != 0 {
					f.inCount[node]++
				}
				if wd>>32 != 0 {
					f.inCount[node]++
				}
			}
			if f.skip {
				f.active[node] = 1
			}
		}
	}
	if f.skip {
		for node, nic := range f.nics {
			if f.routers[node].nonEmpty != 0 || nic.HasTraffic() {
				f.active[node] = 1
			}
		}
	}
}
