package noc

import (
	"testing"
	"testing/quick"

	"nocsim/internal/rng"
)

func TestOlderTotalOrder(t *testing.T) {
	r := rng.New(1)
	mk := func() Flit {
		return Flit{
			Inject: int64(r.Intn(5)),
			Seq:    uint64(r.Intn(8)),
			Index:  uint8(r.Intn(3)),
		}
	}
	// Antisymmetry and totality on distinct flits; irreflexivity on equal.
	for i := 0; i < 5000; i++ {
		a, b := mk(), mk()
		ab, ba := Older(&a, &b), Older(&b, &a)
		if a == b {
			if ab || ba {
				t.Fatal("Older not irreflexive on equal flits")
			}
			continue
		}
		if ab == ba {
			t.Fatalf("Older not total/antisymmetric for %+v vs %+v", a, b)
		}
	}
	// Transitivity.
	for i := 0; i < 5000; i++ {
		a, b, c := mk(), mk(), mk()
		if Older(&a, &b) && Older(&b, &c) && !Older(&a, &c) {
			t.Fatalf("Older not transitive for %+v %+v %+v", a, b, c)
		}
	}
}

func TestOlderPrefersGreaterAge(t *testing.T) {
	a := Flit{Inject: 5, Seq: 100}
	b := Flit{Inject: 9, Seq: 1}
	if !Older(&a, &b) {
		t.Error("flit injected earlier (greater age) must be older")
	}
}

func TestNICSendPopOrder(t *testing.T) {
	n := NewNIC(3)
	n.Send(7, Request, 11, 2, 10)
	n.Send(8, Request, 12, 1, 11)
	if n.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d, want 3", n.QueueLen())
	}
	var got []int32
	for n.HasTraffic() {
		f := n.Pop()
		got = append(got, f.Dst)
	}
	want := []int32{7, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestNICReplyPriority(t *testing.T) {
	n := NewNIC(0)
	n.Send(1, Request, 0, 1, 0)
	n.Send(2, Reply, 0, 1, 0)
	if h := n.Head(); h.Kind != Reply {
		t.Fatalf("head kind %v, want reply to bypass request", h.Kind)
	}
	f := n.Pop()
	if f.Kind != Reply {
		t.Fatal("Pop must drain reply queue first")
	}
	if n.Head().Kind != Request {
		t.Fatal("request should follow after replies drain")
	}
}

func TestNICSeqUnique(t *testing.T) {
	a := NewNIC(0)
	b := NewNIC(1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		for _, n := range []*NIC{a, b} {
			s := n.Send(2, Request, 0, 1, 0)
			if seen[s] {
				t.Fatalf("duplicate seq %d", s)
			}
			seen[s] = true
		}
	}
}

func TestNICReassembly(t *testing.T) {
	src := NewNIC(0)
	dst := NewNIC(5)
	seq := src.Send(5, Reply, 42, 4, 100)
	var flits []Flit
	for src.HasTraffic() {
		f := src.Pop()
		f.Inject = 110
		flits = append(flits, f)
	}
	// Deliver out of order, as deflection routing can.
	order := []int{2, 0, 3, 1}
	for i, idx := range order {
		_, done := dst.Receive(&flits[idx], int64(200+i))
		if done != (i == len(order)-1) {
			t.Fatalf("packet completed at flit %d of %d", i+1, len(order))
		}
	}
	d := dst.Delivered()
	if len(d) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(d))
	}
	p := d[0]
	if p.Seq != seq || p.Token != 42 || p.Src != 0 || p.Dst != 5 || p.Len != 4 {
		t.Errorf("bad packet %+v", p)
	}
	if p.Enq != 100 || p.Inject != 110 || p.Eject != 203 {
		t.Errorf("bad timestamps %+v", p)
	}
	if dst.PendingPackets() != 0 {
		t.Error("pending packet not cleared after completion")
	}
	if len(dst.Delivered()) != 0 {
		t.Error("Delivered did not reset")
	}
}

func TestNICCongBitAggregation(t *testing.T) {
	src := NewNIC(0)
	dst := NewNIC(1)
	src.Send(1, Request, 0, 2, 0)
	f1, f2 := src.Pop(), src.Pop()
	f2.CongBit = true
	dst.Receive(&f1, 1)
	pkt, done := dst.Receive(&f2, 2)
	if !done || !pkt.CongBit {
		t.Error("congestion bit should OR across flits")
	}
}

// Property: the flit queue preserves FIFO order through interleaved
// pushes and pops, including across ring growth and wrap-around.
func TestFlitQueueFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		var q flitQueue
		next := uint64(0)
		expect := uint64(0)
		for _, push := range ops {
			if push {
				q.push(Flit{Seq: next})
				next++
			} else if !q.empty() {
				if q.pop().Seq != expect {
					return false
				}
				expect++
			}
		}
		for !q.empty() {
			if q.pop().Seq != expect {
				return false
			}
			expect++
		}
		return expect == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFlitQueueCapacity pins the ring's memory contract: capacity
// tracks peak depth, not cumulative throughput, so a long-lived
// shallow queue stops allocating after its first push.
func TestFlitQueueCapacity(t *testing.T) {
	var q flitQueue
	next, expect := uint64(0), uint64(0)
	for i := 0; i < 100_000; i++ {
		q.push(Flit{Seq: next})
		next++
		if i%3 == 0 { // depth grows slowly, drains below
			continue
		}
		if q.pop().Seq != expect {
			t.Fatal("FIFO violated")
		}
		expect++
	}
	for !q.empty() {
		if q.pop().Seq != expect {
			t.Fatal("FIFO violated during drain")
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d flits, pushed %d", expect, next)
	}
	// Peak depth was ~33334; capacity must be the next power of two,
	// not proportional to the 100k flits that passed through.
	if len(q.buf) != 65536 {
		t.Errorf("capacity = %d, want 65536 (next power of two above peak depth)", len(q.buf))
	}
}

// TestFlitQueueShallowStaysSmall: a queue that never exceeds depth 2
// keeps its initial 16-slot ring no matter how many flits pass.
func TestFlitQueueShallowStaysSmall(t *testing.T) {
	var q flitQueue
	for i := 0; i < 10_000; i++ {
		q.push(Flit{Seq: uint64(2 * i)})
		q.push(Flit{Seq: uint64(2*i + 1)})
		if q.pop().Seq != uint64(2*i) || q.pop().Seq != uint64(2*i+1) {
			t.Fatal("FIFO violated")
		}
	}
	if len(q.buf) != 16 {
		t.Errorf("capacity = %d, want the initial 16", len(q.buf))
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{
		Cycles: 100, Links: 48,
		LinkTraversals:    2400,
		FlitsEjected:      10,
		NetFlitLatencySum: 150,
		FlitsInjected:     20,
		QueueLatencySum:   100,
		PacketsDelivered:  5,
		PacketLatencySum:  250,
		Deflections:       240,
		StarvedCycles:     80,
	}
	if got := s.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := s.AvgNetLatency(); got != 15 {
		t.Errorf("AvgNetLatency = %v, want 15", got)
	}
	if got := s.AvgQueueLatency(); got != 5 {
		t.Errorf("AvgQueueLatency = %v, want 5", got)
	}
	if got := s.AvgPacketLatency(); got != 50 {
		t.Errorf("AvgPacketLatency = %v, want 50", got)
	}
	if got := s.DeflectionRate(); got != 0.1 {
		t.Errorf("DeflectionRate = %v, want 0.1", got)
	}
	if got := s.StarvationRate(16); got != 0.05 {
		t.Errorf("StarvationRate = %v, want 0.05", got)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.Utilization() != 0 || s.AvgNetLatency() != 0 || s.AvgQueueLatency() != 0 ||
		s.AvgPacketLatency() != 0 || s.DeflectionRate() != 0 || s.StarvationRate(0) != 0 {
		t.Error("zero stats must yield zero rates, not NaN")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Cycles: 10, Links: 48, FlitsInjected: 100, StarvedCycles: 5}
	b := Stats{Cycles: 4, Links: 48, FlitsInjected: 60, StarvedCycles: 2}
	d := a.Sub(b)
	if d.Cycles != 6 || d.FlitsInjected != 40 || d.StarvedCycles != 3 || d.Links != 48 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestKindString(t *testing.T) {
	if Request.String() != "request" || Reply.String() != "reply" || Control.String() != "control" {
		t.Error("Kind.String mismatch")
	}
}

func TestOpenPolicy(t *testing.T) {
	var p Open
	if !p.Allow(3) {
		t.Error("Open must always allow")
	}
	if p.MarkCongested(0) {
		t.Error("Open must never mark")
	}
	p.Tick(0, true, false, false) // must not panic
}

func TestSendPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send with 0 flits did not panic")
		}
	}()
	NewNIC(0).Send(1, Request, 0, 0, 0)
}

func TestThrottledKind(t *testing.T) {
	if !ThrottledKind(Request) || !ThrottledKind(Writeback) {
		t.Error("requests and writebacks are application traffic: throttled")
	}
	if ThrottledKind(Reply) || ThrottledKind(Control) {
		t.Error("replies and control traffic must bypass the throttle")
	}
}

func TestWritebackQueuesWithRequests(t *testing.T) {
	n := NewNIC(0)
	n.Send(1, Writeback, 0, 2, 0)
	if h := n.HeadRequest(); h == nil || h.Kind != Writeback {
		t.Error("writebacks must queue on the request (throttled) side")
	}
	if n.HeadReply() != nil {
		t.Error("writeback leaked into the reply queue")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{Kind: Reply, Seq: 9, Src: 1, Dst: 2, Len: 3}
	if s := p.String(); s == "" {
		t.Error("empty packet string")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind must say so")
	}
}
