package noc

import "nocsim/internal/topology"

// Network is a cycle-stepped on-chip fabric. Both the bufferless BLESS
// fabric and the buffered virtual-channel fabric implement it, so the
// system simulator and the experiment harness are architecture-agnostic.
//
// The contract per Step:
//   - every node's NIC head flit is considered for injection, subject to
//     the fabric's admission rule and the InjectionPolicy;
//   - flits arriving at their destination are ejected into the NIC,
//     which reassembles packets (readable via NIC(i).Delivered());
//   - Stats counters advance.
type Network interface {
	// Step advances the fabric by one clock cycle.
	Step()
	// Cycle returns the number of completed cycles.
	Cycle() int64
	// NIC returns node i's network interface.
	NIC(i int) *NIC
	// Stats returns the accumulated counters. The returned value reflects
	// all cycles completed so far.
	Stats() Stats
	// Topology returns the fabric's topology.
	Topology() *topology.Topology
	// Drained reports whether no flit is in flight or queued anywhere;
	// used by tests and by end-of-run draining.
	Drained() bool
}
