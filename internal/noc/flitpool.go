package noc

// Pooled flit storage for the fabric hot paths.
//
// The fabrics used to carry full 56-byte Flit values through their link
// pipelines and phase-1/phase-2 hand-off buffers, so stepping a large
// idle-ish mesh meant sweeping hundreds of kilobytes of mostly-empty
// slots every cycle. A FlitPool stores each in-network flit once, in a
// structure-of-arrays layout, and the pipelines carry 4-byte Handles
// instead: a node's twelve pipeline slots shrink from 768 bytes to 48
// — one cache line — and an empty slot is a single zero word.
//
// The layout is two planes rather than one array of structs:
//
//   - FlitHot holds the fields arbitration and routing touch every hop
//     (age order, destination, per-hop VC/congestion state).
//   - FlitCold holds the fields read only at injection and ejection
//     (source, queue-entry time, correlation token).
//
// so the per-hop working set of a flit is one 32-byte hot entry, not
// the whole flit. TestFlitPoolCoversFlit pins, by reflection, that the
// two planes partition Flit exactly: a field added to Flit without a
// pool home fails the build's tests rather than silently leaking state
// between recycled slots.
//
// Concurrency contract: the pool is shared by all worker shards of one
// fabric. Alloc and Free are per-shard (each shard owns a free list)
// and never grow any slice, so phases may call them concurrently for
// distinct shards. All growth happens in Reserve, which the fabric
// calls only at the sequential point of Step, before the phases run;
// Reserve also keeps every shard's free-list capacity at the pool
// capacity so an in-phase Free can never reallocate.

// Handle names one pooled flit; the zero Handle means "no flit", so an
// empty pipeline slot is a zero word and slot 0 of the pool is never
// handed out.
type Handle uint32

// FlitHot is the per-hop plane of a pooled flit: every field the
// arbitration/routing inner loops read. Field names match noc.Flit.
type FlitHot struct {
	Inject  int64
	Seq     uint64
	Dst     int32
	Index   uint8
	Len     uint8
	Kind    Kind
	VC      int8
	CongBit bool
}

// FlitCold is the end-point plane of a pooled flit: fields read only
// at injection and ejection. Field names match noc.Flit.
type FlitCold struct {
	Enq   int64
	Token uint64
	Src   int32
}

// OlderHot is Older on the hot plane: the same Oldest-First total
// order (injection cycle, then packet sequence, then flit index)
// without assembling a full Flit.
func OlderHot(a, b *FlitHot) bool {
	if a.Inject != b.Inject {
		return a.Inject < b.Inject
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Index < b.Index
}

// freeList is one shard's stack of recycled handles, padded so two
// shards' list headers never share a cache line.
type freeList struct {
	list []Handle
	_    [40]byte
}

// FlitPool is a shared structure-of-arrays flit store with per-shard
// free lists. See the file comment for the concurrency contract.
type FlitPool struct {
	hot  []FlitHot
	cold []FlitCold
	free []freeList
}

// NewFlitPool creates an empty pool with the given number of shards
// (one per fabric worker; at least 1). Slot 0 is reserved as the nil
// Handle.
func NewFlitPool(shards int) *FlitPool {
	if shards < 1 {
		panic("noc: flit pool needs at least one shard")
	}
	return &FlitPool{
		hot:  make([]FlitHot, 1),
		cold: make([]FlitCold, 1),
		free: make([]freeList, shards),
	}
}

// Reserve guarantees shard s can Alloc need[s] handles before the next
// Reserve. It must be called from the sequential region of Step only.
// Handles migrate between shards as flits travel (allocated where
// injected, freed where ejected), so Reserve first rebalances the free
// lists — otherwise a steady flow from one shard to another would
// drain the source's list every cycle and grow the pool without bound
// while the sink's list hoarded every slot. Only when the pool as a
// whole is short does it grow, and then by at least a doubling, so a
// fabric at steady state stops growing — and therefore stops
// allocating — after warm-up.
func (p *FlitPool) Reserve(need []int) {
	total, free := 0, 0
	for s := range p.free {
		total += need[s]
		free += len(p.free[s].list)
	}
	if free < total {
		grow := total - free
		if g := len(p.hot); g > grow {
			grow = g
		}
		if grow < 64 {
			grow = 64
		}
		base := len(p.hot)
		p.hot = append(p.hot, make([]FlitHot, grow)...)
		p.cold = append(p.cold, make([]FlitCold, grow)...)
		fl := &p.free[0].list
		for i := 0; i < grow; i++ {
			*fl = append(*fl, Handle(base+i))
		}
		// Every shard's free list must be able to hold every slot in
		// the pool, so an in-phase Free never reallocates.
		limit := len(p.hot)
		for s := range p.free {
			l := &p.free[s].list
			if cap(*l) < limit {
				nl := make([]Handle, len(*l), limit)
				copy(nl, *l)
				*l = nl
			}
		}
	}
	// Rebalance: top deficit shards up from surplus shards. Total free
	// now covers total need, so the donor scan cannot run out.
	d := 0
	for s := range p.free {
		fl := &p.free[s].list
		for len(*fl) < need[s] {
			for len(p.free[d].list) <= need[d] {
				d++
			}
			dl := &p.free[d].list
			k := len(*dl) - need[d]
			if m := need[s] - len(*fl); m < k {
				k = m
			}
			*fl = append(*fl, (*dl)[len(*dl)-k:]...)
			*dl = (*dl)[:len(*dl)-k]
		}
	}
}

// Alloc takes a handle from shard's free list and fills both planes
// from f. It panics if the shard's Reserve budget is exhausted.
func (p *FlitPool) Alloc(shard int, f *Flit) Handle {
	fl := &p.free[shard].list
	n := len(*fl)
	if n == 0 {
		panic("noc: flit pool exhausted; fabric did not Reserve enough")
	}
	h := (*fl)[n-1]
	*fl = (*fl)[:n-1]
	p.hot[h] = FlitHot{
		Inject:  f.Inject,
		Seq:     f.Seq,
		Dst:     f.Dst,
		Index:   f.Index,
		Len:     f.Len,
		Kind:    f.Kind,
		VC:      f.VC,
		CongBit: f.CongBit,
	}
	p.cold[h] = FlitCold{Enq: f.Enq, Token: f.Token, Src: f.Src}
	return h
}

// Free zeroes both planes of h and returns it to shard's free list, so
// a recycled slot can never leak a previous packet's state.
func (p *FlitPool) Free(shard int, h Handle) {
	p.hot[h] = FlitHot{}
	p.cold[h] = FlitCold{}
	fl := &p.free[shard].list
	//nocvet:allow hotalloc free-list capacity is pre-reserved by Reserve; this append never grows in steady state
	*fl = append(*fl, h)
}

// Get assembles the full Flit for h into f.
func (p *FlitPool) Get(h Handle, f *Flit) {
	hot := &p.hot[h]
	cold := &p.cold[h]
	*f = Flit{
		Enq:     cold.Enq,
		Inject:  hot.Inject,
		Seq:     hot.Seq,
		Token:   cold.Token,
		Src:     cold.Src,
		Dst:     hot.Dst,
		Index:   hot.Index,
		Len:     hot.Len,
		Kind:    hot.Kind,
		VC:      hot.VC,
		CongBit: hot.CongBit,
	}
}

// Hot returns the hot plane of h. The pointer is valid until the next
// Reserve.
func (p *FlitPool) Hot(h Handle) *FlitHot { return &p.hot[h] }

// HotPlane returns the whole hot-plane slice, valid until the next
// Reserve. Fabrics cache it across one step so per-flit accesses are a
// single indexed load instead of two pointer chases through the pool.
func (p *FlitPool) HotPlane() []FlitHot { return p.hot }

// Cold returns the cold plane of h. The pointer is valid until the
// next Reserve.
func (p *FlitPool) Cold(h Handle) *FlitCold { return &p.cold[h] }

// Cap returns the number of allocatable slots in the pool.
func (p *FlitPool) Cap() int { return len(p.hot) - 1 }

// FreeSlots returns the total number of free handles across shards.
// Sequential regions only.
func (p *FlitPool) FreeSlots() int {
	n := 0
	for s := range p.free {
		n += len(p.free[s].list)
	}
	return n
}
