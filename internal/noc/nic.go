package noc

// NIC is a node's network interface. It holds the processor-side
// injection queues (bufferless routers have no in-network buffers, so
// flits wait here until an output link is free — §2.2), reassembles
// arriving flits into packets, and hands completed packets to the node.
//
// Two queues are kept: replies bypass requests so that throttling a
// node's own requests can never block the responses it owes other nodes
// (§5 "How to Throttle").
type NIC struct {
	node int32
	seq  uint64

	reqQ flitQueue
	repQ flitQueue

	pending   map[uint64]*pendingPacket
	delivered []Packet
}

type pendingPacket struct {
	got     uint8
	len     uint8
	kind    Kind
	src     int32
	token   uint64
	enq     int64
	inject  int64
	congBit bool
}

// flitQueue is a FIFO of flits with amortised O(1) pop.
type flitQueue struct {
	buf  []Flit
	head int
}

func (q *flitQueue) push(f Flit) { q.buf = append(q.buf, f) }
func (q *flitQueue) len() int    { return len(q.buf) - q.head }
func (q *flitQueue) empty() bool { return q.head >= len(q.buf) }
func (q *flitQueue) peek() *Flit { return &q.buf[q.head] }
func (q *flitQueue) pop() Flit {
	f := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return f
}

// NewNIC returns a NIC for the given node ID.
func NewNIC(node int) *NIC {
	return &NIC{node: int32(node), pending: make(map[uint64]*pendingPacket)}
}

// Node returns the node this NIC belongs to.
func (n *NIC) Node() int { return int(n.node) }

// Send enqueues a packet of nflits flits of the given kind toward dst.
// cycle timestamps queue entry. It returns the packet's sequence number.
func (n *NIC) Send(dst int, kind Kind, token uint64, nflits int, cycle int64) uint64 {
	if nflits < 1 || nflits > 255 {
		panic("noc: packet length out of range")
	}
	n.seq++
	seq := uint64(n.node)<<40 | n.seq
	f := Flit{
		Enq:   cycle,
		Seq:   seq,
		Token: token,
		Src:   n.node,
		Dst:   int32(dst),
		Len:   uint8(nflits),
		Kind:  kind,
	}
	q := &n.reqQ
	if kind != Request && kind != Writeback {
		q = &n.repQ
	}
	for i := 0; i < nflits; i++ {
		f.Index = uint8(i)
		q.push(f)
	}
	return seq
}

// QueueLen returns the number of flits waiting for injection.
func (n *NIC) QueueLen() int { return n.reqQ.len() + n.repQ.len() }

// HasTraffic reports whether any flit is waiting for injection.
func (n *NIC) HasTraffic() bool { return !n.reqQ.empty() || !n.repQ.empty() }

// Head returns the flit that would be injected next (replies have
// priority over requests) without removing it, or nil if none.
func (n *NIC) Head() *Flit {
	if !n.repQ.empty() {
		return n.repQ.peek()
	}
	if !n.reqQ.empty() {
		return n.reqQ.peek()
	}
	return nil
}

// Pop removes and returns the head flit. It panics if the NIC is empty.
func (n *NIC) Pop() Flit {
	if !n.repQ.empty() {
		return n.repQ.pop()
	}
	return n.reqQ.pop()
}

// HeadRequest returns the front flit of the request queue, or nil. The
// buffered fabric binds each injection pseudo-VC to one queue so that a
// reply arriving mid-packet never interleaves with a request packet's
// flit stream.
func (n *NIC) HeadRequest() *Flit {
	if n.reqQ.empty() {
		return nil
	}
	return n.reqQ.peek()
}

// HeadReply returns the front flit of the reply/control queue, or nil.
func (n *NIC) HeadReply() *Flit {
	if n.repQ.empty() {
		return nil
	}
	return n.repQ.peek()
}

// PopRequest removes and returns the front request flit.
func (n *NIC) PopRequest() Flit { return n.reqQ.pop() }

// PopReply removes and returns the front reply/control flit.
func (n *NIC) PopReply() Flit { return n.repQ.pop() }

// Receive accepts an ejected flit, reassembling it into its packet. When
// the final flit arrives the completed packet is queued for Delivered and
// returned with done=true.
func (n *NIC) Receive(f *Flit, cycle int64) (pkt Packet, done bool) {
	p := n.pending[f.Seq]
	if p == nil {
		p = &pendingPacket{
			len:    f.Len,
			kind:   f.Kind,
			src:    f.Src,
			token:  f.Token,
			enq:    f.Enq,
			inject: f.Inject,
		}
		n.pending[f.Seq] = p
	}
	p.got++
	if f.Inject < p.inject {
		p.inject = f.Inject
	}
	if f.CongBit {
		p.congBit = true
	}
	if p.got == p.len {
		delete(n.pending, f.Seq)
		pkt = Packet{
			Seq:     f.Seq,
			Token:   p.token,
			Src:     p.src,
			Dst:     n.node,
			Len:     p.len,
			Kind:    p.kind,
			Enq:     p.enq,
			Inject:  p.inject,
			Eject:   cycle,
			CongBit: p.congBit,
		}
		n.delivered = append(n.delivered, pkt)
		return pkt, true
	}
	return Packet{}, false
}

// Delivered returns the packets completed since the last call and resets
// the list. The returned slice is only valid until the next call.
func (n *NIC) Delivered() []Packet {
	d := n.delivered
	n.delivered = n.delivered[:0]
	return d
}

// PendingPackets returns the number of partially reassembled packets.
func (n *NIC) PendingPackets() int { return len(n.pending) }
