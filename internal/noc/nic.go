package noc

// NIC is a node's network interface. It holds the processor-side
// injection queues (bufferless routers have no in-network buffers, so
// flits wait here until an output link is free — §2.2), reassembles
// arriving flits into packets, and hands completed packets to the node.
//
// Two queues are kept: replies bypass requests so that throttling a
// node's own requests can never block the responses it owes other nodes
// (§5 "How to Throttle").
type NIC struct {
	node int32
	seq  uint64

	reqQ flitQueue
	repQ flitQueue

	pending   pendTable
	delivered []Packet

	// notify, when set, fires whenever Send turns an empty NIC
	// non-empty; the active-set fabrics use it to wake the node.
	notify func(node int)
}

// pendingPacket is one partially reassembled packet. seq doubles as
// the hash key and the empty-slot marker: real sequence numbers are
// never zero (Send pre-increments the per-node counter).
type pendingPacket struct {
	seq     uint64
	got     uint8
	len     uint8
	kind    Kind
	src     int32
	token   uint64
	enq     int64
	inject  int64
	congBit bool
}

// pendTable is an open-addressed, linear-probe hash of in-progress
// reassemblies, stored inline. It replaces a map[uint64]*pendingPacket
// whose per-packet heap allocation was the last steady-state allocator
// on the ejection path; the table allocates only when it doubles, so
// it goes quiet once sized to the peak concurrent-reassembly count.
type pendTable struct {
	slots []pendingPacket
	count int
}

// hashSeq is SplitMix64's finisher: packet sequence numbers are highly
// structured (node ID in the high bits, a counter below), so they need
// a full-avalanche mix before masking.
func hashSeq(seq uint64) uint64 {
	seq = (seq ^ (seq >> 30)) * 0xbf58476d1ce4e5b9
	seq = (seq ^ (seq >> 27)) * 0x94d049bb133111eb
	return seq ^ (seq >> 31)
}

// lookup returns the slot holding seq, or nil. The pointer is valid
// only until the next insert or remove.
func (t *pendTable) lookup(seq uint64) *pendingPacket {
	mask := uint64(len(t.slots) - 1)
	for i := hashSeq(seq) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.seq == seq {
			return s
		}
		if s.seq == 0 {
			return nil
		}
	}
}

// insert adds pp (whose seq must not be present) and returns its slot.
// The pointer is valid only until the next insert or remove.
func (t *pendTable) insert(pp pendingPacket) *pendingPacket {
	if (t.count+1)*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := hashSeq(pp.seq) & mask; ; i = (i + 1) & mask {
		if t.slots[i].seq == 0 {
			t.slots[i] = pp
			t.count++
			return &t.slots[i]
		}
	}
}

func (t *pendTable) grow() {
	old := t.slots
	//nocvet:allow hotalloc amortized grow-to-peak: doubles only until the table fits the workload's high-water mark, then never again
	t.slots = make([]pendingPacket, len(old)*2)
	t.count = 0
	for i := range old {
		if old[i].seq != 0 {
			t.insert(old[i])
		}
	}
}

// remove deletes seq, which must be present, using backward-shift
// deletion so probe chains stay intact without tombstones.
func (t *pendTable) remove(seq uint64) {
	mask := uint64(len(t.slots) - 1)
	i := hashSeq(seq) & mask
	for t.slots[i].seq != seq {
		i = (i + 1) & mask
	}
	for {
		t.slots[i] = pendingPacket{}
		j := i
		for {
			j = (j + 1) & mask
			if t.slots[j].seq == 0 {
				t.count--
				return
			}
			// Slot j can fill the hole at i only if its home position
			// is cyclically at-or-before i (otherwise moving it would
			// break its own probe chain).
			home := hashSeq(t.slots[j].seq) & mask
			if (j-home)&mask >= (j-i)&mask {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}

// flitQueue is a circular FIFO of flits. The ring's capacity tracks
// the queue's actual peak depth (a handful of flits at sub-saturation
// rates), not its cumulative throughput, so every queue reaches its
// terminal capacity on the first push and steady-state stepping never
// reallocates. The previous append-and-compact design kept a buffer
// proportional to its compaction threshold and reached it only after
// ~64 pops per queue — on a 4096-node mesh that trickle of late
// growths kept the hot path allocating for hundreds of thousands of
// cycles. Capacity is kept a power of two so indexing is a mask.
type flitQueue struct {
	buf   []Flit
	head  int
	count int
}

func (q *flitQueue) push(f Flit) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = f
	q.count++
}

func (q *flitQueue) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	//nocvet:allow hotalloc amortized grow-to-peak: doubles only until the queue fits the workload's high-water mark, then never again
	nb := make([]Flit, n)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

func (q *flitQueue) len() int    { return q.count }
func (q *flitQueue) empty() bool { return q.count == 0 }
func (q *flitQueue) peek() *Flit { return &q.buf[q.head] }
func (q *flitQueue) pop() Flit {
	f := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	return f
}

// NewNIC returns a NIC for the given node ID. The delivered list gets
// capacity for one cycle's worth of completions up front (EjectWidth
// bounds it) so the first busy cycle does not allocate mid-run.
func NewNIC(node int) *NIC {
	return &NIC{
		node:      int32(node),
		pending:   pendTable{slots: make([]pendingPacket, 16)},
		delivered: make([]Packet, 0, 4),
	}
}

// Node returns the node this NIC belongs to.
func (n *NIC) Node() int { return int(n.node) }

// SetNotify registers fn, called with the node ID whenever Send turns
// an empty NIC non-empty. Active-set fabrics hook this to re-flag the
// node for processing; fn must therefore be safe to call from whatever
// context drives Send (the fabrics' contract is that Sends happen only
// between fabric phases, or from the sender node's own shard).
func (n *NIC) SetNotify(fn func(node int)) { n.notify = fn }

// Send enqueues a packet of nflits flits of the given kind toward dst.
// cycle timestamps queue entry. It returns the packet's sequence number.
func (n *NIC) Send(dst int, kind Kind, token uint64, nflits int, cycle int64) uint64 {
	if nflits < 1 || nflits > 255 {
		panic("noc: packet length out of range")
	}
	wasEmpty := n.reqQ.empty() && n.repQ.empty()
	n.seq++
	seq := uint64(n.node)<<40 | n.seq
	f := Flit{
		Enq:   cycle,
		Seq:   seq,
		Token: token,
		Src:   n.node,
		Dst:   int32(dst),
		Len:   uint8(nflits),
		Kind:  kind,
	}
	q := &n.reqQ
	if kind != Request && kind != Writeback {
		q = &n.repQ
	}
	for i := 0; i < nflits; i++ {
		f.Index = uint8(i)
		q.push(f)
	}
	if wasEmpty && n.notify != nil {
		n.notify(int(n.node))
	}
	return seq
}

// QueueLen returns the number of flits waiting for injection.
func (n *NIC) QueueLen() int { return n.reqQ.len() + n.repQ.len() }

// HasTraffic reports whether any flit is waiting for injection.
func (n *NIC) HasTraffic() bool { return !n.reqQ.empty() || !n.repQ.empty() }

// Head returns the flit that would be injected next (replies have
// priority over requests) without removing it, or nil if none.
func (n *NIC) Head() *Flit {
	if !n.repQ.empty() {
		return n.repQ.peek()
	}
	if !n.reqQ.empty() {
		return n.reqQ.peek()
	}
	return nil
}

// Pop removes and returns the head flit. It panics if the NIC is empty.
func (n *NIC) Pop() Flit {
	if !n.repQ.empty() {
		return n.repQ.pop()
	}
	return n.reqQ.pop()
}

// HeadRequest returns the front flit of the request queue, or nil. The
// buffered fabric binds each injection pseudo-VC to one queue so that a
// reply arriving mid-packet never interleaves with a request packet's
// flit stream.
func (n *NIC) HeadRequest() *Flit {
	if n.reqQ.empty() {
		return nil
	}
	return n.reqQ.peek()
}

// HeadReply returns the front flit of the reply/control queue, or nil.
func (n *NIC) HeadReply() *Flit {
	if n.repQ.empty() {
		return nil
	}
	return n.repQ.peek()
}

// PopRequest removes and returns the front request flit.
func (n *NIC) PopRequest() Flit { return n.reqQ.pop() }

// PopReply removes and returns the front reply/control flit.
func (n *NIC) PopReply() Flit { return n.repQ.pop() }

// Receive accepts an ejected flit, reassembling it into its packet. When
// the final flit arrives the completed packet is queued for Delivered and
// returned with done=true.
func (n *NIC) Receive(f *Flit, cycle int64) (pkt Packet, done bool) {
	p := n.pending.lookup(f.Seq)
	if p == nil {
		p = n.pending.insert(pendingPacket{
			seq:    f.Seq,
			len:    f.Len,
			kind:   f.Kind,
			src:    f.Src,
			token:  f.Token,
			enq:    f.Enq,
			inject: f.Inject,
		})
	}
	p.got++
	if f.Inject < p.inject {
		p.inject = f.Inject
	}
	if f.CongBit {
		p.congBit = true
	}
	if p.got == p.len {
		pkt = Packet{
			Seq:     f.Seq,
			Token:   p.token,
			Src:     p.src,
			Dst:     n.node,
			Len:     p.len,
			Kind:    p.kind,
			Enq:     p.enq,
			Inject:  p.inject,
			Eject:   cycle,
			CongBit: p.congBit,
		}
		n.pending.remove(f.Seq)
		//nocvet:allow hotalloc delivered grows to the drained high-water mark; the harness drains it every cycle in steady state
		n.delivered = append(n.delivered, pkt)
		return pkt, true
	}
	return Packet{}, false
}

// Delivered returns the packets completed since the last call and resets
// the list. The returned slice is only valid until the next call.
func (n *NIC) Delivered() []Packet {
	d := n.delivered
	n.delivered = n.delivered[:0]
	return d
}

// PendingPackets returns the number of partially reassembled packets.
func (n *NIC) PendingPackets() int { return n.pending.count }
