// Package app defines the application workload profiles used throughout
// the evaluation. The paper drives its simulator with PinPoints traces of
// SPEC CPU2006 plus desktop/workstation/server applications; here each
// application is a synthetic profile calibrated to reproduce the IPF
// (instructions-per-flit) mean and variance that the paper's Table 1
// reports for the real trace, including the temporal phase behaviour of
// Fig. 6. IPF is a pure program property (it depends only on the L1 miss
// rate), so matching it reproduces the signal the paper's congestion
// controller actually consumes.
package app

import (
	"fmt"
	"math"
	"sort"
)

// Class is the network-intensity level used to build workload categories
// (§6.1): H (Heavy) for IPF < 2, M (Medium) for 2–100, L (Light) > 100.
type Class int

const (
	// Heavy applications have IPF below 2 (very network-intensive).
	Heavy Class = iota
	// Medium applications have IPF between 2 and 100.
	Medium
	// Light applications have IPF above 100 (CPU-bound).
	Light
)

func (c Class) String() string {
	switch c {
	case Heavy:
		return "H"
	case Medium:
		return "M"
	case Light:
		return "L"
	}
	return "?"
}

// ClassOf returns the intensity class of an IPF value (§6.1's bands).
func ClassOf(ipf float64) Class {
	switch {
	case ipf < 2:
		return Heavy
	case ipf <= 100:
		return Medium
	default:
		return Light
	}
}

// Profile describes one application.
type Profile struct {
	// Name is the benchmark name as in Table 1.
	Name string
	// IPFMean and IPFVar are the instructions-per-flit statistics the
	// synthetic trace is calibrated to (Table 1).
	IPFMean float64
	IPFVar  float64
}

// Class returns the profile's intensity class.
func (p Profile) Class() Class { return ClassOf(p.IPFMean) }

func (p Profile) String() string {
	return fmt.Sprintf("%s(IPF %.1f±%.1f, %v)", p.Name, p.IPFMean, math.Sqrt(p.IPFVar), p.Class())
}

// Table1 lists every application of the paper's Table 1 with its mean
// IPF and IPF variance.
var Table1 = []Profile{
	{Name: "matlab", IPFMean: 0.4, IPFVar: 0.4},
	{Name: "health", IPFMean: 0.9, IPFVar: 0.1},
	{Name: "mcf", IPFMean: 1.0, IPFVar: 0.3},
	{Name: "art.ref.train", IPFMean: 1.3, IPFVar: 1.3},
	{Name: "lbm", IPFMean: 1.6, IPFVar: 0.3},
	{Name: "soplex", IPFMean: 1.7, IPFVar: 0.9},
	{Name: "libquantum", IPFMean: 2.1, IPFVar: 0.6},
	{Name: "GemsFDTD", IPFMean: 2.2, IPFVar: 1.4},
	{Name: "leslie3d", IPFMean: 3.1, IPFVar: 1.3},
	{Name: "milc", IPFMean: 3.8, IPFVar: 1.1},
	{Name: "mcf2", IPFMean: 5.5, IPFVar: 17.4},
	{Name: "tpcc", IPFMean: 6.0, IPFVar: 7.1},
	{Name: "xalancbmk", IPFMean: 6.2, IPFVar: 6.1},
	{Name: "vpr", IPFMean: 6.4, IPFVar: 0.3},
	{Name: "astar", IPFMean: 8.0, IPFVar: 0.8},
	{Name: "hmmer", IPFMean: 9.6, IPFVar: 1.1},
	{Name: "sphinx3", IPFMean: 11.8, IPFVar: 95.2},
	{Name: "cactus", IPFMean: 14.6, IPFVar: 4.0},
	{Name: "gromacs", IPFMean: 19.4, IPFVar: 12.2},
	{Name: "bzip2", IPFMean: 65.5, IPFVar: 238.1},
	{Name: "xml_trace", IPFMean: 108.9, IPFVar: 339.1},
	{Name: "gobmk", IPFMean: 140.8, IPFVar: 1092.8},
	{Name: "sjeng", IPFMean: 141.8, IPFVar: 51.5},
	{Name: "wrf", IPFMean: 151.6, IPFVar: 357.1},
	{Name: "crafty", IPFMean: 157.2, IPFVar: 119.0},
	{Name: "gcc", IPFMean: 285.8, IPFVar: 81.5},
	{Name: "h264ref", IPFMean: 310.0, IPFVar: 1937.4},
	{Name: "namd", IPFMean: 684.3, IPFVar: 942.2},
	{Name: "omnetpp", IPFMean: 804.4, IPFVar: 3702.0},
	{Name: "dealII", IPFMean: 2804.8, IPFVar: 4267.8},
	{Name: "calculix", IPFMean: 3106.5, IPFVar: 4100.6},
	{Name: "tonto", IPFMean: 3823.5, IPFVar: 4863.9},
	{Name: "perlbench", IPFMean: 9803.8, IPFVar: 8856.1},
	{Name: "povray", IPFMean: 20708.5, IPFVar: 1501.8},
}

// ByName returns the Table 1 profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Table1 {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// MustByName is ByName that panics on unknown names.
func MustByName(name string) Profile {
	p, ok := ByName(name)
	if !ok {
		panic("app: unknown application " + name)
	}
	return p
}

// ByClass returns the Table 1 profiles in the given class, sorted by
// ascending IPF.
func ByClass(c Class) []Profile {
	var out []Profile
	for _, p := range Table1 {
		if p.Class() == c {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IPFMean < out[j].IPFMean })
	return out
}

// Synthetic builds an unnamed profile with the given IPF statistics,
// used for controlled experiments such as Fig. 11/12's IPF grid.
func Synthetic(ipfMean, ipfVar float64) Profile {
	return Profile{
		Name:    fmt.Sprintf("synthetic-ipf%g", ipfMean),
		IPFMean: ipfMean,
		IPFVar:  ipfVar,
	}
}
