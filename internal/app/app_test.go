package app

import "testing"

func TestTable1Complete(t *testing.T) {
	if len(Table1) != 34 {
		t.Fatalf("Table1 has %d applications, want 34", len(Table1))
	}
	seen := map[string]bool{}
	for _, p := range Table1 {
		if p.Name == "" || p.IPFMean <= 0 || p.IPFVar < 0 {
			t.Errorf("malformed profile %+v", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestClassBoundaries(t *testing.T) {
	cases := []struct {
		ipf  float64
		want Class
	}{
		{0.4, Heavy}, {1.99, Heavy}, {2.0, Medium}, {65.5, Medium},
		{100.0, Medium}, {100.1, Light}, {20708.5, Light},
	}
	for _, c := range cases {
		if got := ClassOf(c.ipf); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.ipf, got, c.want)
		}
	}
}

func TestPaperExamples(t *testing.T) {
	mcf := MustByName("mcf")
	if mcf.IPFMean != 1.0 || mcf.Class() != Heavy {
		t.Errorf("mcf profile wrong: %+v", mcf)
	}
	gromacs := MustByName("gromacs")
	if gromacs.IPFMean != 19.4 || gromacs.Class() != Medium {
		t.Errorf("gromacs profile wrong: %+v", gromacs)
	}
	povray := MustByName("povray")
	if povray.IPFMean != 20708.5 || povray.Class() != Light {
		t.Errorf("povray profile wrong: %+v", povray)
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent app")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic on unknown name")
		}
	}()
	MustByName("nonexistent")
}

func TestByClassPartition(t *testing.T) {
	total := 0
	for _, c := range []Class{Heavy, Medium, Light} {
		ps := ByClass(c)
		total += len(ps)
		for i, p := range ps {
			if p.Class() != c {
				t.Errorf("ByClass(%v) returned %v-class %s", c, p.Class(), p.Name)
			}
			if i > 0 && ps[i-1].IPFMean > p.IPFMean {
				t.Errorf("ByClass(%v) not sorted at %d", c, i)
			}
		}
	}
	if total != len(Table1) {
		t.Errorf("classes partition %d apps, want %d", total, len(Table1))
	}
}

func TestClassString(t *testing.T) {
	if Heavy.String() != "H" || Medium.String() != "M" || Light.String() != "L" {
		t.Error("Class.String mismatch")
	}
}

func TestSynthetic(t *testing.T) {
	p := Synthetic(10, 4)
	if p.IPFMean != 10 || p.IPFVar != 4 || p.Class() != Medium {
		t.Errorf("Synthetic profile wrong: %+v", p)
	}
}
